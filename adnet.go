// Package adnet is a Go implementation of "Distributed Computation and
// Reconfiguration in Actively Dynamic Networks" (Michail, Skretas,
// Spirakis; PODC 2020): a synchronous message-passing model in which
// nodes actively activate and deactivate edges under the distance-2
// rule, the paper's three (poly)logarithmic-time reconfiguration
// algorithms — GraphToStar, GraphToWreath, GraphToThinWreath — the
// baselines they are measured against, and the edge-complexity
// accounting (total edge activations, maximum activated edges per
// round, maximum activated degree) the paper introduces.
//
// Quick start:
//
//	g := adnet.Line(128)
//	res, err := adnet.Run(adnet.GraphToStar, g)
//	// res.FinalGraph() is a spanning star centered at the max UID,
//	// res.Metrics holds the paper's cost measures.
//
// The typed sub-packages remain available for advanced use: the engine
// (internal/sim), the temporal-graph ledger (internal/temporal) and
// the experiment harness (internal/expt) used by cmd/adnet-bench.
package adnet

import (
	"fmt"
	"math/rand"

	"adnet/internal/baseline"
	"adnet/internal/core"
	"adnet/internal/expt"
	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/tasks"
	"adnet/internal/temporal"
)

// Graph re-exports the static graph type used for initial networks.
type Graph = graph.Graph

// ID is a node identifier, doubling as its UID.
type ID = graph.ID

// Metrics re-exports the paper's cost measures.
type Metrics = temporal.Metrics

// Algorithm selects one of the implemented strategies.
type Algorithm int

// The implemented algorithms and baselines.
const (
	// GraphToStar is §3: O(log n) time, O(n log n) activations,
	// spanning star (diameter 2), linear degree.
	GraphToStar Algorithm = iota + 1
	// GraphToWreath is §4: O(log² n) time, O(n log² n) activations,
	// O(1) activated degree, spanning binary tree (depth log n).
	GraphToWreath
	// GraphToThinWreath is §5: polylog degree, shallower gadget.
	GraphToThinWreath
	// CliqueFormation is the trivial §1.2 strategy (Θ(n²) edges).
	CliqueFormation
	// Flooding never reconfigures: Θ(diameter) time, zero activations.
	Flooding
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case GraphToStar:
		return "GraphToStar"
	case GraphToWreath:
		return "GraphToWreath"
	case GraphToThinWreath:
		return "GraphToThinWreath"
	case CliqueFormation:
		return "CliqueFormation"
	case Flooding:
		return "Flooding"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Result is the outcome of Run.
type Result struct {
	// Algorithm that produced this result.
	Algorithm Algorithm
	// Rounds until every node halted.
	Rounds int
	// Metrics are the paper's edge-complexity measures.
	Metrics Metrics
	// Leader is the elected node (the maximum UID on success).
	Leader ID
	// LeaderElected reports whether exactly one leader emerged.
	LeaderElected bool

	res *sim.Result
}

// FinalGraph returns a copy of the final active network.
func (r *Result) FinalGraph() *Graph { return r.res.History.CurrentClone() }

// PerRound returns the per-round accounting (activations,
// deactivations, live edges).
func (r *Result) PerRound() []temporal.RoundStats { return r.res.History.PerRound() }

// VerifyDepthTree checks the Depth-d Tree post-condition (§2.2) on the
// final network.
func (r *Result) VerifyDepthTree(maxDepth int) error {
	return tasks.VerifyDepthTree(r.FinalGraph(), r.Leader, maxDepth)
}

// Option configures Run.
type Option = sim.Option

// WithMaxRounds caps the execution length.
func WithMaxRounds(rounds int) Option { return sim.WithMaxRounds(rounds) }

// WithConnectivityCheck makes Run fail if the active network ever
// disconnects (the paper's algorithms never disconnect it).
func WithConnectivityCheck() Option { return sim.WithConnectivityCheck() }

// Run executes the algorithm on the initial network gs, which must be
// connected. The initial graph is not modified.
func Run(algo Algorithm, gs *Graph, opts ...Option) (*Result, error) {
	var factory sim.Factory
	n := gs.NumNodes()
	var extra []Option
	switch algo {
	case GraphToStar:
		factory = core.NewGraphToStarFactory()
	case GraphToWreath:
		factory = core.NewGraphToWreathFactory()
		extra = append(extra, sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, false))))
	case GraphToThinWreath:
		factory = core.NewGraphToThinWreathFactory()
		extra = append(extra, sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, true))))
	case CliqueFormation:
		factory = baseline.NewCliqueFactory()
	case Flooding:
		factory = baseline.NewFloodFactory()
	default:
		return nil, fmt.Errorf("adnet: unknown algorithm %v", algo)
	}
	res, err := sim.Run(gs, factory, append(extra, opts...)...)
	if err != nil {
		return nil, err
	}
	leader, ok := res.Leader()
	return &Result{
		Algorithm:     algo,
		Rounds:        res.Rounds,
		Metrics:       res.Metrics,
		Leader:        leader,
		LeaderElected: ok,
		res:           res,
	}, nil
}

// Generators, re-exported for convenience.

// Line returns the spanning line on IDs 0..n-1 (the paper's worst
// case).
func Line(n int) *Graph { return graph.Line(n) }

// Ring returns the increasing-order ring (the Theorem 6.4 lower-bound
// instance).
func Ring(n int) *Graph { return graph.IncreasingRing(n) }

// RandomConnected returns a random connected graph with the given
// number of extra (non-tree) edges.
func RandomConnected(n, extra int, seed int64) *Graph {
	return graph.RandomConnected(n, extra, rand.New(rand.NewSource(seed)))
}

// RandomBoundedDegree returns a connected graph with maximum degree at
// most maxDeg (the GraphToWreath workload family).
func RandomBoundedDegree(n, maxDeg, extra int, seed int64) (*Graph, error) {
	return graph.RandomBoundedDegree(n, maxDeg, extra, rand.New(rand.NewSource(seed)))
}

// Tradeoff runs every algorithm (including the centralized Euler-tour
// strategy) on a spanning line of n nodes and returns the rendered
// §1.3 comparison table.
func Tradeoff(n int) (string, error) {
	t, err := expt.TradeoffTable(n)
	if err != nil {
		return "", err
	}
	return t.String(), nil
}
