// Reconfigurable robots: the paper's programmable-matter motivation
// (§1.4). A chain of robots (a spanning line — the worst case for
// information flow) reshapes itself into a complete binary tree so
// that command latency from the coordinator drops from Θ(n) to
// O(log n), while every intermediate shape keeps each robot within a
// constant number of active links (Proposition 2.2 / Theorem 4.2).
package main

import (
	"fmt"
	"log"

	"adnet"
)

func main() {
	const robots = 255
	chain := adnet.Line(robots)
	fmt.Printf("robot chain: %d modules, command latency %d hops\n",
		robots, chain.Diameter())

	res, err := adnet.Run(adnet.GraphToWreath, chain, adnet.WithConnectivityCheck())
	if err != nil {
		log.Fatal(err)
	}
	shape := res.FinalGraph()
	fmt.Printf("reshaped in %d rounds: coordinator=%d, latency %d hops, link budget %d per robot\n",
		res.Rounds, res.Leader, shape.Eccentricity(res.Leader), shape.MaxDegree())
	fmt.Printf("connectivity was preserved in every intermediate shape\n")
	fmt.Printf("peak transient links per robot (activated): %d\n",
		res.Metrics.MaxActivatedDegree)
	if err := res.VerifyDepthTree(9); err != nil { // ceil(log2 255)+1
		log.Fatal(err)
	}
	fmt.Println("verified: spanning tree of logarithmic depth")
}
