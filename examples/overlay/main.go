// Overlay bootstrap: a peer-to-peer scenario from the paper's related
// work (§1.4). Peers start with a sparse bounded-degree contact graph;
// GraphToWreath builds a low-diameter, constant-degree overlay, after
// which a broadcast from the elected leader reaches everyone in
// O(log n) hops instead of Θ(n).
package main

import (
	"fmt"
	"log"

	"adnet"
)

func main() {
	const peers = 200
	contacts, err := adnet.RandomBoundedDegree(peers, 3, peers/4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap contact graph: n=%d, max degree=%d, diameter=%d\n",
		peers, contacts.MaxDegree(), contacts.Diameter())

	res, err := adnet.Run(adnet.GraphToWreath, contacts)
	if err != nil {
		log.Fatal(err)
	}
	overlay := res.FinalGraph()
	fmt.Printf("overlay built in %d rounds: depth=%d, max degree=%d\n",
		res.Rounds, overlay.Eccentricity(res.Leader), overlay.MaxDegree())
	fmt.Printf("edge budget: %d total activations, ≤%d activated edges alive, degree ≤%d\n",
		res.Metrics.TotalActivations, res.Metrics.MaxActivatedEdges,
		res.Metrics.MaxActivatedDegree)

	// A leader broadcast on the overlay now takes depth rounds.
	bcast, err := adnet.Run(adnet.Flooding, overlay)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := adnet.Run(adnet.Flooding, contacts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dissemination: %d rounds on the overlay vs %d on the raw contacts\n",
		bcast.Rounds, direct.Rounds)
}
