// Quickstart: transform a sparse random network into a spanning star
// with GraphToStar (§3 of the paper), elect the maximum UID as leader,
// and read off the edge-complexity measures.
package main

import (
	"fmt"
	"log"

	"adnet"
)

func main() {
	// A connected random network of 64 nodes with UIDs 0..63.
	g := adnet.RandomConnected(64, 40, 42)
	fmt.Printf("initial network: n=%d m=%d diameter=%d\n",
		g.NumNodes(), g.NumEdges(), g.Diameter())

	res, err := adnet.Run(adnet.GraphToStar, g, adnet.WithConnectivityCheck())
	if err != nil {
		log.Fatal(err)
	}

	final := res.FinalGraph()
	fmt.Printf("after %d rounds: leader=%d, final diameter=%d\n",
		res.Rounds, res.Leader, final.Diameter())
	fmt.Printf("total edge activations : %d\n", res.Metrics.TotalActivations)
	fmt.Printf("max activated edges    : %d (bound: 2n = %d)\n",
		res.Metrics.MaxActivatedEdges, 2*g.NumNodes())
	fmt.Printf("max activated degree   : %d\n", res.Metrics.MaxActivatedDegree)
	if err := res.VerifyDepthTree(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: spanning star rooted at the maximum UID")
}
