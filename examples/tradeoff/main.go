// The paper's headline story (§1.3): every algorithm makes a different
// contribution to the time vs edge-complexity tradeoff. This example
// prints the full comparison on one workload — the same table the
// benchmark harness regenerates as T1.
package main

import (
	"fmt"
	"log"

	"adnet"
)

func main() {
	out, err := adnet.Tradeoff(256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("reading guide:")
	fmt.Println("  clique          — time optimal, pays Θ(n²) edges (the impractical strategy)")
	fmt.Println("  flood           — zero activations, pays Θ(n) rounds")
	fmt.Println("  graph-to-star   — O(log n) rounds at O(n log n) activations, linear degree")
	fmt.Println("  graph-to-wreath — bounded degree, one extra log factor in time")
	fmt.Println("  thinwreath      — polylog degree, shallower gadget")
	fmt.Println("  centralized     — the Θ(n)-activation optimum no distributed algorithm can match (Thm 6.4)")
}
