// Global computation by composition (§1.3): transform the network to
// (poly)log diameter, then compute any global function on inputs. Here
// every node holds an input value; after GraphToStar the star center
// aggregates max/sum in two rounds, against Θ(n) for flooding on the
// original line.
package main

import (
	"fmt"
	"log"

	"adnet"
)

func main() {
	const n = 512
	line := adnet.Line(n)

	// Phase 1: reconfigure to diameter 2.
	star, err := adnet.Run(adnet.GraphToStar, line)
	if err != nil {
		log.Fatal(err)
	}
	// Phase 2: disseminate all tokens on the transformed network.
	dissem, err := adnet.Run(adnet.Flooding, star.FinalGraph())
	if err != nil {
		log.Fatal(err)
	}
	composed := star.Rounds + dissem.Rounds

	// Baseline: never reconfigure.
	flood, err := adnet.Run(adnet.Flooding, line)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d spanning line\n", n)
	fmt.Printf("compose  : %d rounds transform + %d rounds dissemination = %d rounds\n",
		star.Rounds, dissem.Rounds, composed)
	fmt.Printf("flooding : %d rounds (no reconfiguration)\n", flood.Rounds)
	fmt.Printf("speedup  : %.1fx — at the price of %d edge activations\n",
		float64(flood.Rounds)/float64(composed), star.Metrics.TotalActivations)
}
