// Lower-bound mechanics (Lemma 6.1 / Definition D.1): watch the
// potential PO(u_left, u_right) — the distance from the nearest holder
// of the left endpoint's UID to the right endpoint — collapse as
// GraphToStar reconfigures a spanning line. The potential can at best
// halve per round, which is exactly why Ω(log n) rounds are
// unavoidable.
package main

import (
	"fmt"
	"log"
	"strings"

	"adnet/internal/bounds"
	"adnet/internal/core"
	"adnet/internal/graph"
)

func main() {
	const n = 128
	series, res, err := bounds.PotentialSeries(graph.Line(n),
		core.NewGraphToStarFactory(), 0, graph.ID(n-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PO(0, %d) per round on Line(%d), GraphToStar (%d rounds total):\n\n", n-1, n, res.Rounds)
	for r, po := range series {
		if po < 0 {
			continue
		}
		bar := strings.Repeat("#", po/2)
		if r%4 == 0 || po <= 2 {
			fmt.Printf("round %3d  PO=%4d  %s\n", r, po, bar)
		}
		if po <= 2 {
			break
		}
	}
	fmt.Printf("\nmax per-round shrink factor: %.2f (the halving bound of Lemma 6.1)\n",
		bounds.MinPotentialDropFactor(series))
}
