// Command adnet runs one reconfiguration algorithm on one generated
// initial network and prints the paper's cost measures.
//
// Usage:
//
//	adnet -algo graph-to-star -graph line -n 1024
//	adnet -algo graph-to-wreath -graph bounded-degree -n 256 -seed 7 -verify
//	adnet -algo centralized-euler -graph random -n 4096
//
// With -aggregate the run repeats across -seeds and prints the
// per-(algorithm, workload, n) statistics over those seeds — one row
// of the same table the server's aggregate endpoint serves:
//
//	adnet -algo graph-to-star -graph random -n 512 -aggregate -seeds 1,2,3,4,5
//
// With -csv the aggregate row is emitted as CSV (header + one row per
// (algorithm, workload, n) group) for plotting pipelines:
//
//	adnet -algo graph-to-star -graph random -n 512 -aggregate -csv
//
// With -robustness the grid runs once undisturbed and once per
// -dynamics class, and the success/overhead matrix is printed (or
// exported with -csv / -json); -gate compares the matrix against a
// committed snapshot and fails on regression:
//
//	adnet -robustness -graph line -n 32 -seeds 1,2,3
//	adnet -robustness -dynamics edge-churn,crash -json > ROBUSTNESS_LATEST.json
//	adnet -robustness -gate ROBUSTNESS_LATEST.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adnet/internal/dynamics"
	"adnet/internal/expt"
)

func main() {
	algo := flag.String("algo", expt.AlgoStar,
		"algorithm: "+strings.Join(expt.Algorithms(), ", "))
	workload := flag.String("graph", "line",
		"initial network: "+strings.Join(expt.Workloads(), ", "))
	n := flag.Int("n", 256, "number of nodes")
	seed := flag.Int64("seed", 1, "workload seed")
	verify := flag.Bool("verify", false, "fail unless a unique correct leader was elected")
	aggregate := flag.Bool("aggregate", false, "repeat across -seeds and print mean/min/max/stddev statistics")
	seedsFlag := flag.String("seeds", "1,2,3,4,5", "aggregate mode: comma-separated workload seeds")
	csvOut := flag.Bool("csv", false, "aggregate/robustness mode: emit CSV instead of a table")
	robustness := flag.Bool("robustness", false, "run the robustness matrix: baseline plus each -dynamics class over -algos x -graph x -n x -seeds")
	algosFlag := flag.String("algos", "", "robustness mode: comma-separated algorithms (default: every distributed algorithm)")
	dynFlag := flag.String("dynamics", strings.Join(dynamics.Classes(), ","), "robustness mode: comma-separated dynamics classes")
	jsonOut := flag.Bool("json", false, "robustness mode: emit the snapshot JSON (the ROBUSTNESS_LATEST.json shape)")
	gate := flag.String("gate", "", "robustness mode: fail unless every row of the snapshot FILE still succeeds as often")
	flag.Parse()

	if *csvOut && !*aggregate && !*robustness {
		fatal(fmt.Errorf("-csv requires -aggregate or -robustness"))
	}
	if *robustness {
		if err := runRobustness(*algosFlag, *workload, *n, *seedsFlag, *dynFlag, *csvOut, *jsonOut, *gate); err != nil {
			fatal(err)
		}
		return
	}
	if *aggregate {
		if err := runAggregate(*algo, *workload, *n, *seedsFlag, *verify, *csvOut); err != nil {
			fatal(err)
		}
		return
	}

	out, err := expt.Execute(expt.Request{
		Algorithm: *algo,
		Workload:  *workload,
		N:         *n,
		Seed:      *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm           %s\n", *algo)
	fmt.Printf("initial network     %s n=%d (seed %d)\n", *workload, *n, *seed)
	fmt.Printf("rounds              %d\n", out.Rounds)
	fmt.Printf("last edge activity  round %d\n", out.LastActivity)
	fmt.Printf("total activations   %d\n", out.TotalActivations)
	fmt.Printf("max activated edges %d\n", out.MaxActivatedEdges)
	fmt.Printf("max activated deg   %d\n", out.MaxActivatedDegree)
	fmt.Printf("total messages      %d\n", out.TotalMessages)
	fmt.Printf("final diameter      %d\n", out.FinalDiameter)
	fmt.Printf("final leader depth  %d\n", out.FinalDepth)
	fmt.Printf("leader elected      %v\n", out.LeaderOK)
	if *verify && !out.LeaderOK {
		fatal(fmt.Errorf("verification failed: no unique correct leader"))
	}
}

// runAggregate executes the single-(algorithm, workload, n) grid over
// every seed through the sweep fleet and prints the aggregate row —
// as an aligned table, or as CSV with asCSV.
func runAggregate(algo, workload string, n int, seedList string, verify, asCSV bool) error {
	seeds, err := expt.ParseSeeds(seedList)
	if err != nil {
		return err
	}
	groups, err := expt.AggregateSweep(expt.SweepSpec{
		Algorithms: []string{algo},
		Workloads:  []string{workload},
		Sizes:      []int{n},
		Seeds:      seeds,
	})
	if err != nil {
		return err
	}
	if asCSV {
		if err := expt.AggregateCSV(os.Stdout, groups); err != nil {
			return err
		}
	} else {
		fmt.Println(expt.AggregateTable(groups).String())
	}
	if verify {
		for _, g := range groups {
			if g.Errors > 0 || g.LeadersOK != g.Seeds {
				return fmt.Errorf("verification failed: %d/%d leaders, %d errors", g.LeadersOK, g.Seeds, g.Errors)
			}
		}
	}
	return nil
}

// runRobustness executes the robustness matrix over the requested
// algorithms, dynamics classes and seeds, renders it (table, CSV or
// snapshot JSON), and optionally gates it against a committed
// snapshot.
func runRobustness(algoList, workload string, n int, seedList, dynList string, asCSV, asJSON bool, gatePath string) error {
	seeds, err := expt.ParseSeeds(seedList)
	if err != nil {
		return err
	}
	algos := splitList(algoList)
	if len(algos) == 0 {
		for _, a := range expt.Algorithms() {
			if a != expt.AlgoCentralized {
				algos = append(algos, a)
			}
		}
	}
	var dyns []dynamics.Spec
	for _, class := range splitList(dynList) {
		dyns = append(dyns, dynamics.Spec{Class: class})
	}
	rows, err := expt.RobustnessMatrix(expt.RobustnessSpec{
		Algorithms: algos,
		Workloads:  []string{workload},
		Sizes:      []int{n},
		Seeds:      seeds,
		Dynamics:   dyns,
	})
	if err != nil {
		return err
	}
	switch {
	case asJSON:
		b, err := expt.RobustnessJSON(rows)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
	case asCSV:
		if err := expt.RobustnessCSV(os.Stdout, rows); err != nil {
			return err
		}
	default:
		fmt.Println(expt.RobustnessTable(rows).String())
	}
	if gatePath != "" {
		data, err := os.ReadFile(gatePath)
		if err != nil {
			return err
		}
		baseline, err := expt.ParseRobustness(data)
		if err != nil {
			return err
		}
		if err := expt.CompareRobustness(rows, baseline); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "adnet: robustness gate passed against %s (%d rows)\n", gatePath, len(baseline))
	}
	return nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adnet:", err)
	os.Exit(1)
}
