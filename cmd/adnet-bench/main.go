// Command adnet-bench regenerates the paper's evaluation: every
// experiment of the DESIGN.md index (E1–E13) plus the §1.3 tradeoff
// table, printed as aligned text tables.
//
// Usage:
//
//	adnet-bench                 # every experiment at default sizes
//	adnet-bench -only E3,E9     # a subset
//	adnet-bench -sizes 64,256   # override the size sweep
//	adnet-bench -tradeoff 512   # the headline comparison at one size
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adnet/internal/expt"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	sizesFlag := flag.String("sizes", "", "comma-separated n values (default: per-experiment)")
	tradeoff := flag.Int("tradeoff", 0, "also print the tradeoff table at this n")
	flag.Parse()

	var sizes []int
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad size %q", s))
			}
			sizes = append(sizes, v)
		}
	}
	ids := expt.ExperimentIDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tab, err := expt.Run(id, sizes)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Println(tab.String())
	}
	if *tradeoff > 0 {
		tab, err := expt.TradeoffTable(*tradeoff)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tab.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adnet-bench:", err)
	os.Exit(1)
}
