// Command adnet-bench regenerates the paper's evaluation: every
// experiment of the DESIGN.md index (E1–E13) plus the §1.3 tradeoff
// table, printed as aligned text tables.
//
// Usage:
//
//	adnet-bench                 # every experiment at default sizes
//	adnet-bench -only E3,E9     # a subset
//	adnet-bench -sizes 64,256   # override the size sweep
//	adnet-bench -tradeoff 512   # the headline comparison at one size
//
// With -json the command switches to the machine-readable performance
// mode used to track the perf trajectory across PRs (BENCH_*.json).
// The grid is enumerated through the same sweep path the service uses
// (expt.SweepSpec) and executed on one reusable engine:
//
//	adnet-bench -json                          # default perf suite
//	adnet-bench -json -algos graph-to-star \
//	            -workloads line,ring -sizes 1024,4096 > BENCH_PR3.json
//
// With -compare the command re-measures the grid recorded in a
// committed BENCH_*.json and diffs the two, failing when
// allocs/round (deterministic) or, if enabled, ns/round regress
// beyond the thresholds. This is the CI perf gate:
//
//	adnet-bench -compare BENCH_LATEST.json -alloc-threshold 0.25
//	adnet-bench -compare BENCH_LATEST.json -sizes 256 -workloads line
//
// With -fanout the command measures the broadcast hub's encode-once
// fan-out path instead of engine runs: frames published to one hub,
// drained by 1..N concurrent subscribers, reporting encodes and bytes
// fanned out per round. -fanout -compare re-measures the fan-out
// records of a committed baseline and fails if the encode-once
// invariant (encodes/round == 1 at any subscriber count) breaks:
//
//	adnet-bench -fanout -fanout-subs 1,64,1024 -json
//	adnet-bench -fanout -compare BENCH_LATEST.json
//
// With -aggregate the command runs the -algos × -workloads × -sizes ×
// -seeds grid through the sweep fleet and prints the per-(algorithm,
// workload, n) statistics over seeds — the same table shape the
// server's /v1/sweeps/{id}/aggregate endpoint serves:
//
//	adnet-bench -aggregate -algos graph-to-star,flood \
//	            -workloads line,ring -sizes 256,1024 -seeds 1,2,3,4,5
//	adnet-bench -aggregate -json ...   # groups as a JSON array
//	adnet-bench -aggregate -csv ...    # one CSV row per group
//
// Each record reports the workload, rounds executed, wall-clock
// ns/round and heap allocations (count and bytes) per round.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adnet/internal/expt"
	"adnet/internal/obs"
	"adnet/internal/service"
	"adnet/internal/sim"
)

// instrumentFold is the same per-run metrics fold the service performs
// (runs counter, rounds and ns/round histograms), attached to every
// measured run so the -compare perf gate times and alloc-counts the
// *instrumented* engine path. The registry is never scraped here; the
// point is paying the observer's true cost inside the measurement.
// measure chains it with its own RunSummary capture, since an engine
// run has exactly one observer.
var instrumentFold = func() func(sim.RunSummary) {
	reg := obs.NewRegistry()
	runs := reg.Counter("adnet_engine_runs_total",
		"Simulations executed to completion or failure.")
	rounds := reg.Histogram("adnet_engine_rounds_per_run",
		"Completed rounds per simulation run.", obs.ExpBuckets(1, 2, 16))
	roundSecs := reg.Histogram("adnet_engine_round_duration_seconds",
		"Mean wall-clock time per round, folded in once per run.", obs.ExpBuckets(1e-7, 4, 12))
	return func(s sim.RunSummary) {
		runs.Inc()
		rounds.Observe(float64(s.Rounds))
		if s.Rounds > 0 {
			roundSecs.Observe(s.Duration.Seconds() / float64(s.Rounds))
		}
	}
}()

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	sizesFlag := flag.String("sizes", "", "comma-separated n values (default: per-experiment)")
	tradeoff := flag.Int("tradeoff", 0, "also print the tradeoff table at this n")
	jsonOut := flag.Bool("json", false, "emit machine-readable perf records (JSON) instead of tables")
	algosFlag := flag.String("algos", "graph-to-star", "perf mode: comma-separated algorithms")
	workloadsFlag := flag.String("workloads", "line,ring", "perf mode: comma-separated workloads")
	seed := flag.Int64("seed", 1, "perf mode: workload seed")
	aggregate := flag.Bool("aggregate", false, "run the grid through the sweep path and print per-(algorithm, workload, n) aggregates over -seeds")
	seedsFlag := flag.String("seeds", "1,2,3,4,5", "aggregate mode: comma-separated workload seeds")
	csvOut := flag.Bool("csv", false, "aggregate mode: emit CSV (one row per group) instead of a table")
	fanout := flag.Bool("fanout", false, "measure the broadcast hub's fan-out path instead of engine runs (also selects fan-out records under -compare)")
	fanoutSubs := flag.String("fanout-subs", "1,64,1024", "fanout mode: comma-separated subscriber counts")
	fanoutRounds := flag.Int("fanout-rounds", 4096, "fanout mode: frames published per measured pass")
	compare := flag.String("compare", "", "re-measure the grid of this BENCH_*.json and diff (CI perf gate)")
	allocTh := flag.Float64("alloc-threshold", 0.25, "compare: max tolerated allocs/round regression (fraction)")
	nsTh := flag.Float64("ns-threshold", 0, "compare: max tolerated ns/round regression (fraction; 0 = report only)")
	flag.Parse()

	var sizes []int
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad size %q", s))
			}
			sizes = append(sizes, v)
		}
	}
	if *csvOut && (!*aggregate || *jsonOut) {
		fatal(fmt.Errorf("-csv requires -aggregate and excludes -json"))
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *compare != "" {
		err := runCompare(compareFilter{
			path:      *compare,
			algos:     filterSet(explicit["algos"], splitList(*algosFlag)),
			workloads: filterSet(explicit["workloads"], splitList(*workloadsFlag)),
			sizes:     sizes,
			allocTh:   *allocTh,
			nsTh:      *nsTh,
			fanout:    *fanout,
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	if *fanout {
		var subs []int
		for _, s := range strings.Split(*fanoutSubs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad subscriber count %q", s))
			}
			subs = append(subs, v)
		}
		if err := runFanout(subs, *fanoutRounds, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *aggregate {
		seeds, err := expt.ParseSeeds(*seedsFlag)
		if err != nil {
			fatal(err)
		}
		if err := runAggregate(splitList(*algosFlag), splitList(*workloadsFlag), sizes, seeds, *jsonOut, *csvOut); err != nil {
			fatal(err)
		}
		return
	}
	if *jsonOut {
		if err := runPerf(splitList(*algosFlag), splitList(*workloadsFlag), sizes, *seed); err != nil {
			fatal(err)
		}
		return
	}
	ids := expt.ExperimentIDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tab, err := expt.Run(id, sizes)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Println(tab.String())
	}
	if *tradeoff > 0 {
		tab, err := expt.TradeoffTable(*tradeoff)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tab.String())
	}
}

// perfRecord is one machine-readable measurement. The schema is append
// only: future PRs add fields but never rename these, so BENCH_*.json
// files stay comparable across the repo's history.
//
// The *_per_round figures divide whole-run cost — including the run's
// one-time setup (workload generation, machine construction, history
// reset) — by the number of rounds. They are trajectory metrics for
// the full engine path, not a pure round-loop microbenchmark; for the
// isolated round loop see BenchmarkRoundLoop in bench_test.go. Since
// PR 3 the measured pass runs on a reused engine (expt.Runner), the
// same path sweeps take.
type perfRecord struct {
	Algorithm      string  `json:"algorithm"`
	Workload       string  `json:"workload"`
	N              int     `json:"n"`
	Seed           int64   `json:"seed"`
	Rounds         int     `json:"rounds"`
	TotalNs        int64   `json:"total_ns"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
	// Workers and ParallelEfficiency (busy/(workers×wall), 1.0 when
	// sequential) report how the measured run was stepped. Added with
	// the parallel intra-round path; absent in older BENCH_*.json,
	// where they decode as zero and are ignored by -compare.
	Workers            int     `json:"workers"`
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	// Fan-out records (-fanout, Algorithm "broadcast-hub") measure the
	// encode-once streaming hub instead of an engine run: Subscribers
	// concurrent drains over Rounds published frames. EncodesPerRound
	// is the hub's marshal count per published frame — 1.0 when the
	// encode-once invariant holds, regardless of Subscribers —
	// FanoutBytesPerRound the encoded bytes delivered per frame across
	// all subscribers. Zero on engine records; engine fields Workers
	// and ParallelEfficiency are zero on fan-out records.
	Subscribers         int     `json:"subscribers,omitempty"`
	EncodesPerRound     float64 `json:"encodes_per_round,omitempty"`
	FanoutBytesPerRound float64 `json:"fanout_bytes_per_round,omitempty"`
}

// runPerf executes the algorithm × workload × size grid — enumerated
// through the sweep path — once per cell on a single reused engine
// and writes the records as a JSON array to stdout.
func runPerf(algos, workloads []string, sizes []int, seed int64) error {
	if len(sizes) == 0 {
		sizes = []int{256, 1024}
	}
	spec := expt.SweepSpec{
		Algorithms: algos,
		Workloads:  workloads,
		Sizes:      sizes,
		Seeds:      []int64{seed},
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	r := expt.NewRunner()
	defer r.Close()
	var records []perfRecord
	for _, cell := range spec.Cells() {
		rec, err := measure(r, cell)
		if err != nil {
			return fmt.Errorf("%s/%s n=%d: %w", cell.Algorithm, cell.Workload, cell.N, err)
		}
		records = append(records, rec)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// measure times one cell on the shared Runner — with the service's
// run-observer instrumentation attached, so the perf gate covers the
// observed path. One untimed warm-up keeps process-level one-time
// costs (lazy init, heap growth, engine buffer growth) out of the
// measured pass; per-run setup is still included, as documented on
// perfRecord.
func measure(r *expt.Runner, cell expt.Cell) (perfRecord, error) {
	req := cell.Request()
	var last sim.RunSummary
	req.SimOpts = append(req.SimOpts, sim.WithRunObserver(func(s sim.RunSummary) {
		instrumentFold(s)
		last = s
	}))
	if _, err := r.Execute(req); err != nil {
		return perfRecord{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	out, err := r.Execute(req)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return perfRecord{}, err
	}
	rounds := out.Rounds
	if rounds < 1 {
		rounds = 1
	}
	return perfRecord{
		Algorithm:          cell.Algorithm,
		Workload:           cell.Workload,
		N:                  cell.N,
		Seed:               cell.Seed,
		Rounds:             out.Rounds,
		TotalNs:            elapsed.Nanoseconds(),
		NsPerRound:         float64(elapsed.Nanoseconds()) / float64(rounds),
		AllocsPerRound:     float64(after.Mallocs-before.Mallocs) / float64(rounds),
		BytesPerRound:      float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		Workers:            last.Workers,
		ParallelEfficiency: last.ParallelEfficiency(),
	}, nil
}

// runFanout measures the broadcast hub's fan-out path at each
// subscriber count and emits the records — the encode-once headline
// numbers: encodes/round stays 1.0 while subscribers grow, so the
// per-subscriber cost is a raw byte write, not a marshal.
func runFanout(subs []int, rounds int, asJSON bool) error {
	var records []perfRecord
	for _, s := range subs {
		records = append(records, measureFanout(rounds, s))
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	fmt.Printf("%-14s %6s %8s | %10s %12s %10s %14s\n",
		"algorithm", "subs", "rounds", "ns/round", "allocs/round", "enc/round", "fanout B/round")
	for _, r := range records {
		fmt.Printf("%-14s %6d %8d | %10.0f %12.1f %10.2f %14.0f\n",
			r.Algorithm, r.Subscribers, r.Rounds,
			r.NsPerRound, r.AllocsPerRound, r.EncodesPerRound, r.FanoutBytesPerRound)
	}
	return nil
}

// measureFanout times one fan-out pass: rounds frames published to a
// hub drained by subs concurrent readers. One untimed warm-up pass
// absorbs lazy-init costs, mirroring measure.
func measureFanout(rounds, subs int) perfRecord {
	service.RunFanoutBench(64, subs)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := service.RunFanoutBench(rounds, subs)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return perfRecord{
		Algorithm:           "broadcast-hub",
		Workload:            "fanout",
		N:                   rounds,
		Rounds:              rounds,
		TotalNs:             elapsed.Nanoseconds(),
		NsPerRound:          float64(elapsed.Nanoseconds()) / float64(rounds),
		AllocsPerRound:      float64(after.Mallocs-before.Mallocs) / float64(rounds),
		BytesPerRound:       float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		Subscribers:         subs,
		EncodesPerRound:     float64(res.Encodes) / float64(rounds),
		FanoutBytesPerRound: float64(res.FannedBytes) / float64(rounds),
	}
}

// runAggregate executes the grid on the sweep fleet and prints the
// per-(algorithm, workload, n) statistics over seeds — the paper's
// table shape, computed exactly like the server's aggregate endpoint.
// With -json the groups are emitted as the same JSON array the
// /v1/sweeps/{id}/aggregate endpoint nests under "groups"; with -csv
// as one CSV row per group.
func runAggregate(algos, workloads []string, sizes []int, seeds []int64, asJSON, asCSV bool) error {
	if len(sizes) == 0 {
		sizes = []int{256, 1024}
	}
	groups, err := expt.AggregateSweep(expt.SweepSpec{
		Algorithms: algos,
		Workloads:  workloads,
		Sizes:      sizes,
		Seeds:      seeds,
	})
	if err != nil {
		return err
	}
	switch {
	case asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(groups)
	case asCSV:
		return expt.AggregateCSV(os.Stdout, groups)
	}
	fmt.Println(expt.AggregateTable(groups).String())
	return nil
}

// compareFilter scopes a -compare pass: nil/empty filters keep every
// baseline record.
type compareFilter struct {
	path      string
	algos     map[string]bool
	workloads map[string]bool
	sizes     []int
	allocTh   float64
	nsTh      float64
	// fanout selects the broadcast-hub fan-out records instead of the
	// engine records: a plain -compare never re-measures fan-out rows,
	// -fanout -compare re-measures only them.
	fanout bool
}

func (f compareFilter) keep(rec perfRecord) bool {
	if (rec.Subscribers > 0) != f.fanout {
		return false
	}
	if f.algos != nil && !f.algos[rec.Algorithm] {
		return false
	}
	if f.workloads != nil && !f.workloads[rec.Workload] {
		return false
	}
	if len(f.sizes) > 0 {
		found := false
		for _, n := range f.sizes {
			if n == rec.N {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// runCompare re-measures the baseline's grid on the current binary and
// prints per-record deltas. It returns an error (non-zero exit) when
// allocs/round — a deterministic function of the code path — regresses
// beyond allocTh, or ns/round beyond nsTh when nsTh > 0.
func runCompare(f compareFilter) error {
	data, err := os.ReadFile(f.path)
	if err != nil {
		return err
	}
	var baseline []perfRecord
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("%s: %w", f.path, err)
	}
	r := expt.NewRunner()
	defer r.Close()

	fmt.Printf("%-16s %-10s %6s | %12s %12s %8s | %10s %10s %8s\n",
		"algorithm", "workload", "n", "ns/rd(base)", "ns/rd(now)", "Δns",
		"allocs(base)", "allocs(now)", "Δallocs")
	var regressions []string
	kept := 0
	for _, base := range baseline {
		if !f.keep(base) {
			continue
		}
		kept++
		var cur perfRecord
		var id string
		if f.fanout {
			cur = measureFanout(base.Rounds, base.Subscribers)
			id = fmt.Sprintf("%s/%s subs=%d", base.Algorithm, base.Workload, base.Subscribers)
			// The encode-once invariant is the whole point of the hub:
			// any growth in marshals per published frame is a hard
			// regression no matter how cheap each marshal is.
			if cur.EncodesPerRound > base.EncodesPerRound*1.001 {
				regressions = append(regressions,
					fmt.Sprintf("%s: encodes/round %.3f, baseline %.3f — encode-once invariant broken",
						id, cur.EncodesPerRound, base.EncodesPerRound))
			}
		} else {
			var err error
			cur, err = measure(r, expt.Cell{
				Algorithm: base.Algorithm, Workload: base.Workload, N: base.N, Seed: base.Seed,
			})
			if err != nil {
				return fmt.Errorf("%s/%s n=%d: %w", base.Algorithm, base.Workload, base.N, err)
			}
			id = fmt.Sprintf("%s/%s n=%d", base.Algorithm, base.Workload, base.N)
		}
		dNs := delta(base.NsPerRound, cur.NsPerRound)
		dAllocs := delta(base.AllocsPerRound, cur.AllocsPerRound)
		fmt.Printf("%-16s %-10s %6d | %12.0f %12.0f %7.1f%% | %10.1f %10.1f %7.1f%%\n",
			base.Algorithm, base.Workload, base.N,
			base.NsPerRound, cur.NsPerRound, 100*dNs,
			base.AllocsPerRound, cur.AllocsPerRound, 100*dAllocs)
		if dAllocs > f.allocTh {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/round %+.1f%% (threshold %.0f%%)", id, 100*dAllocs, 100*f.allocTh))
		}
		if f.nsTh > 0 && dNs > f.nsTh {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/round %+.1f%% (threshold %.0f%%)", id, 100*dNs, 100*f.nsTh))
		}
	}
	if kept == 0 {
		return fmt.Errorf("no baseline records in %s match the filters", f.path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("perf regressions vs %s:\n  %s", f.path, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("OK: %d records within thresholds (allocs ≤ +%.0f%%%s)\n",
		kept, 100*f.allocTh, nsNote(f.nsTh))
	return nil
}

func nsNote(nsTh float64) string {
	if nsTh > 0 {
		return fmt.Sprintf(", ns ≤ +%.0f%%", 100*nsTh)
	}
	return ", ns informational"
}

// delta is the relative change from base to cur, with an allocation
// floor so near-zero baselines don't explode the ratio.
func delta(base, cur float64) float64 {
	if base < 1 {
		base = 1
	}
	return (cur - base) / base
}

func filterSet(explicit bool, names []string) map[string]bool {
	if !explicit {
		return nil
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adnet-bench:", err)
	os.Exit(1)
}
