// Command adnet-bench regenerates the paper's evaluation: every
// experiment of the DESIGN.md index (E1–E13) plus the §1.3 tradeoff
// table, printed as aligned text tables.
//
// Usage:
//
//	adnet-bench                 # every experiment at default sizes
//	adnet-bench -only E3,E9     # a subset
//	adnet-bench -sizes 64,256   # override the size sweep
//	adnet-bench -tradeoff 512   # the headline comparison at one size
//
// With -json the command switches to the machine-readable performance
// mode used to track the perf trajectory across PRs (BENCH_*.json):
//
//	adnet-bench -json                          # default perf suite
//	adnet-bench -json -algos graph-to-star \
//	            -workloads line,ring -sizes 1024,4096 > BENCH_PR2.json
//
// Each record reports the workload, rounds executed, wall-clock
// ns/round and heap allocations (count and bytes) per round.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adnet/internal/expt"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	sizesFlag := flag.String("sizes", "", "comma-separated n values (default: per-experiment)")
	tradeoff := flag.Int("tradeoff", 0, "also print the tradeoff table at this n")
	jsonOut := flag.Bool("json", false, "emit machine-readable perf records (JSON) instead of tables")
	algosFlag := flag.String("algos", "graph-to-star", "perf mode: comma-separated algorithms")
	workloadsFlag := flag.String("workloads", "line,ring", "perf mode: comma-separated workloads")
	seed := flag.Int64("seed", 1, "perf mode: workload seed")
	flag.Parse()

	var sizes []int
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad size %q", s))
			}
			sizes = append(sizes, v)
		}
	}
	if *jsonOut {
		if err := runPerf(splitList(*algosFlag), splitList(*workloadsFlag), sizes, *seed); err != nil {
			fatal(err)
		}
		return
	}
	ids := expt.ExperimentIDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tab, err := expt.Run(id, sizes)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Println(tab.String())
	}
	if *tradeoff > 0 {
		tab, err := expt.TradeoffTable(*tradeoff)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tab.String())
	}
}

// perfRecord is one machine-readable measurement. The schema is append
// only: future PRs add fields but never rename these, so BENCH_*.json
// files stay comparable across the repo's history.
//
// The *_per_round figures divide whole-run cost — including the run's
// one-time setup (workload generation, machine construction, history
// clones) — by the number of rounds. They are trajectory metrics for
// the full engine path, not a pure round-loop microbenchmark; for the
// isolated round loop see BenchmarkRoundLoop in bench_test.go.
type perfRecord struct {
	Algorithm      string  `json:"algorithm"`
	Workload       string  `json:"workload"`
	N              int     `json:"n"`
	Seed           int64   `json:"seed"`
	Rounds         int     `json:"rounds"`
	TotalNs        int64   `json:"total_ns"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
}

// runPerf executes each algorithm × workload × size combination once
// and writes the records as a JSON array to stdout.
func runPerf(algos, workloads []string, sizes []int, seed int64) error {
	if len(sizes) == 0 {
		sizes = []int{256, 1024}
	}
	var records []perfRecord
	for _, algo := range algos {
		for _, wl := range workloads {
			for _, n := range sizes {
				rec, err := measure(algo, wl, n, seed)
				if err != nil {
					return fmt.Errorf("%s/%s n=%d: %w", algo, wl, n, err)
				}
				records = append(records, rec)
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

func measure(algo, workload string, n int, seed int64) (perfRecord, error) {
	req := expt.Request{Algorithm: algo, Workload: workload, N: n, Seed: seed}
	// One untimed warm-up keeps process-level one-time costs (lazy
	// init, heap growth) out of the measured pass; per-run setup is
	// still included, as documented on perfRecord.
	if _, err := expt.Execute(req); err != nil {
		return perfRecord{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	out, err := expt.Execute(req)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return perfRecord{}, err
	}
	rounds := out.Rounds
	if rounds < 1 {
		rounds = 1
	}
	return perfRecord{
		Algorithm:      algo,
		Workload:       workload,
		N:              n,
		Seed:           seed,
		Rounds:         out.Rounds,
		TotalNs:        elapsed.Nanoseconds(),
		NsPerRound:     float64(elapsed.Nanoseconds()) / float64(rounds),
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(rounds),
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
	}, nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adnet-bench:", err)
	os.Exit(1)
}
