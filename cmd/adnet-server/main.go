// Command adnet-server serves the PODC-2020 reconfiguration
// algorithms as a streaming HTTP/JSON API: a bounded worker pool
// executes runs, an LRU cache answers repeated specs without
// re-simulation, and per-round statistics stream as NDJSON.
//
// Usage:
//
//	adnet-server -addr :8080 -workers 8 -queue 128 -cache 512
//
// Example session:
//
//	curl -s localhost:8080/v1/algorithms
//	curl -s -X POST localhost:8080/v1/runs \
//	    -d '{"algorithm":"graph-to-star","workload":"line","n":1024,"seed":7}'
//	curl -s localhost:8080/v1/runs/<id>
//	curl -sN localhost:8080/v1/runs/<id>/rounds
//	curl -sN localhost:8080/v1/runs/<id>/topology
//	curl -sN 'localhost:8080/v1/runs/<id>/topology?format=packed'
//	curl -s -X POST localhost:8080/v1/sweeps \
//	    -d '{"algorithms":["graph-to-star"],"workloads":["line","ring"],
//	         "sizes":[256,1024],"seeds":[1,2,3]}'
//	curl -s localhost:8080/v1/sweeps/<id>
//	curl -sN localhost:8080/v1/sweeps/<id>/cells
//	curl -s localhost:8080/v1/sweeps/<id>/aggregate
//	curl -s localhost:8080/metrics
//
// Every process exports its instruments in Prometheus text format at
// GET /metrics, logs structured lines (-log-format text|json) carrying
// the X-Adnet-Request-Id of the request that caused them, and can
// expose the runtime profiler under /debug/pprof/ with -pprof.
//
// With -data-dir the server keeps a write-ahead journal of every
// executed sweep cell: after a crash (kill -9 included) a restart on
// the same directory replays the intact journal prefix, re-marks the
// interrupted sweeps as resumable and re-executes only the missing
// cells — the final aggregate is byte-identical to an uninterrupted
// run. See the durability section of DESIGN.md.
//
// With -coordinator the server runs no local sweeps: it shards each
// sweep grid across the worker servers registered with -fleet-workers
// (or POST /v1/fleet/workers) and merges their cell streams and
// aggregates — see the fleet topology section of DESIGN.md:
//
//	adnet-server -addr :8080 -coordinator \
//	    -fleet-workers http://worker1:8081,http://worker2:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adnet/internal/fleet"
	"adnet/internal/obs"
	"adnet/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 128, "job queue depth")
	cache := flag.Int("cache", 512, "result cache capacity (entries)")
	maxN := flag.Int("max-n", service.DefaultMaxN, "largest accepted network size")
	timeLimit := flag.Duration("time-limit", 2*time.Minute, "wall-clock budget per run")
	retain := flag.Int("retain", 1024, "finished jobs kept queryable")
	sweepWorkers := flag.Int("sweep-workers", 0, "engine fleet size per sweep (0 = GOMAXPROCS)")
	sweepCells := flag.Int("sweep-cells", 1024, "largest accepted sweep grid (cells)")
	sweeps := flag.Int("sweeps", 2, "concurrent sweeps before 503")
	sweepTimeLimit := flag.Duration("sweep-time-limit", 10*time.Minute, "wall-clock budget per sweep job")
	retainSweeps := flag.Int("retain-sweeps", 64, "finished sweep jobs kept queryable")
	retainFrameBytes := flag.Int64("retain-frame-bytes", 4<<20, "encoded NDJSON frame bytes retained per stream (negative = unbounded)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 30*time.Second, "per-batch write deadline on streaming endpoints; stalled subscribers are dropped (negative = none)")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead sweep journal; on restart, intact journals resume interrupted sweeps re-executing only the missing cells (empty = no durability)")
	coordinator := flag.Bool("coordinator", false, "coordinator mode: shard sweep grids across registered worker servers instead of the local engine fleet")
	fleetWorkers := flag.String("fleet-workers", "", "coordinator mode: comma-separated worker base URLs registered at startup (more can join via POST /v1/fleet/workers)")
	logFormat := flag.String("log-format", "text", "log line format: text or json")
	pprofOn := flag.Bool("pprof", false, "expose the runtime profiler under /debug/pprof/")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fatal(err)
	}
	// One registry per process: the service manager and (in
	// coordinator mode) the fleet dispatcher register their instruments
	// side by side, so a single GET /metrics scrape covers both.
	reg := obs.NewRegistry()

	var coord *fleet.Coordinator
	switch {
	case *coordinator:
		coord = fleet.New(fleet.Config{Metrics: reg, Logger: logger})
		for _, u := range strings.Split(*fleetWorkers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			st, err := coord.Register(context.Background(), u)
			if err != nil {
				// Not fatal: the worker may come up later and register
				// itself (or be re-registered) via the fleet endpoint.
				logger.Warn("fleet registration failed", slog.String("url", u), slog.String("error", err.Error()))
				continue
			}
			logger.Info("fleet worker registered", slog.String("worker", st.ID), slog.String("url", st.URL))
		}
	case *fleetWorkers != "":
		fatal(errors.New("-fleet-workers requires -coordinator"))
	}

	mgr := service.NewManager(service.Config{
		Fleet:               coord,
		DataDir:             *dataDir,
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheSize:           *cache,
		MaxN:                *maxN,
		RunTimeLimit:        *timeLimit,
		RetainJobs:          *retain,
		SweepWorkers:        *sweepWorkers,
		MaxSweepCells:       *sweepCells,
		MaxConcurrentSweeps: *sweeps,
		SweepTimeLimit:      *sweepTimeLimit,
		RetainSweeps:        *retainSweeps,
		RetainFrameBytes:    *retainFrameBytes,
		StreamWriteTimeout:  *streamWriteTimeout,
		Metrics:             reg,
		Logger:              logger,
	})
	// Recover before serving: intact journals from a previous process
	// life seed the cache and resubmit interrupted sweeps. A corrupt
	// journal (mid-file checksum mismatch, not a torn tail) is refused
	// loudly rather than silently resumed over bad data.
	if err := mgr.Recover(); err != nil {
		fatal(err)
	}
	handler := service.NewHandler(mgr)
	if *pprofOn {
		// The profiler shares the listener but not the instrumented
		// mux: profile endpoints are ops-only and stay out of the
		// request metrics.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("adnet-server listening",
		slog.String("addr", *addr), slog.Bool("coordinator", coord != nil), slog.Bool("pprof", *pprofOn))

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	logger.Info("adnet-server shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown", slog.String("error", err.Error()))
	}
	mgr.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adnet-server:", err)
	os.Exit(1)
}
