// Command adnet-server serves the PODC-2020 reconfiguration
// algorithms as a streaming HTTP/JSON API: a bounded worker pool
// executes runs, an LRU cache answers repeated specs without
// re-simulation, and per-round statistics stream as NDJSON.
//
// Usage:
//
//	adnet-server -addr :8080 -workers 8 -queue 128 -cache 512
//
// Example session:
//
//	curl -s localhost:8080/v1/algorithms
//	curl -s -X POST localhost:8080/v1/runs \
//	    -d '{"algorithm":"graph-to-star","workload":"line","n":1024,"seed":7}'
//	curl -s localhost:8080/v1/runs/<id>
//	curl -sN localhost:8080/v1/runs/<id>/rounds
//	curl -s -X POST localhost:8080/v1/sweeps \
//	    -d '{"algorithms":["graph-to-star"],"workloads":["line","ring"],
//	         "sizes":[256,1024],"seeds":[1,2,3]}'
//	curl -s localhost:8080/v1/sweeps/<id>
//	curl -sN localhost:8080/v1/sweeps/<id>/cells
//	curl -s localhost:8080/v1/sweeps/<id>/aggregate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adnet/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 128, "job queue depth")
	cache := flag.Int("cache", 512, "result cache capacity (entries)")
	maxN := flag.Int("max-n", service.DefaultMaxN, "largest accepted network size")
	timeLimit := flag.Duration("time-limit", 2*time.Minute, "wall-clock budget per run")
	retain := flag.Int("retain", 1024, "finished jobs kept queryable")
	sweepWorkers := flag.Int("sweep-workers", 0, "engine fleet size per sweep (0 = GOMAXPROCS)")
	sweepCells := flag.Int("sweep-cells", 1024, "largest accepted sweep grid (cells)")
	sweeps := flag.Int("sweeps", 2, "concurrent sweeps before 503")
	sweepTimeLimit := flag.Duration("sweep-time-limit", 10*time.Minute, "wall-clock budget per sweep job")
	retainSweeps := flag.Int("retain-sweeps", 64, "finished sweep jobs kept queryable")
	flag.Parse()

	mgr := service.NewManager(service.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheSize:           *cache,
		MaxN:                *maxN,
		RunTimeLimit:        *timeLimit,
		RetainJobs:          *retain,
		SweepWorkers:        *sweepWorkers,
		MaxSweepCells:       *sweepCells,
		MaxConcurrentSweeps: *sweeps,
		SweepTimeLimit:      *sweepTimeLimit,
		RetainSweeps:        *retainSweeps,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("adnet-server listening on %s", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("adnet-server shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("adnet-server: shutdown: %v", err)
	}
	mgr.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adnet-server:", err)
	os.Exit(1)
}
