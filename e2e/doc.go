// Package e2e holds the end-to-end service test: it builds the real
// adnet-server binary, starts it as a child process, and drives the
// sweep-job lifecycle (submit, poll, stream cells, aggregate, cancel)
// over real HTTP, asserting the wire-level JSON/NDJSON shapes rather
// than reusing the service package's Go types.
//
// The test is build-tagged so the ordinary `go test ./...` run stays
// hermetic and fast; CI runs it as its own job:
//
//	go test -tags e2e -v -timeout 10m ./e2e
package e2e
