//go:build e2e

package e2e

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestDynamicsMetricsEndToEnd runs a churned sweep and a single
// crash-wave run against a real server process, then scrapes /metrics
// and asserts the adnet_dynamics_* series account for the injected
// perturbations. Flood tolerates churn, so the sweep completes without
// cell errors and every run folds its environment counters.
func TestDynamicsMetricsEndToEnd(t *testing.T) {
	base := startServer(t)

	const sweepBody = `{"algorithms":["flood"],"workloads":["line","ring"],"sizes":[16],"seeds":[1,2,3],` +
		`"dynamics":{"class":"edge-churn","rate":2}}`
	const cells = 2 * 3
	id, code := postSweep(t, base, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	status := awaitSweep(t, base, id, "done")
	var summary struct {
		Executed int `json:"executed"`
		Errors   int `json:"errors"`
	}
	json.Unmarshal(status["summary"], &summary)
	if summary.Errors != 0 || summary.Executed != cells {
		t.Fatalf("churned sweep: executed=%d errors=%d, want %d/0", summary.Executed, summary.Errors, cells)
	}

	runID, code := postRun(t, base,
		`{"algorithm":"flood","workload":"ring","n":24,"seed":5,"dynamics":{"class":"crash","rate":2,"down":2}}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	awaitRun(t, base, runID, "done")

	m := scrapeMetrics(t, base)
	if v, _ := m.Value("adnet_dynamics_runs_total", nil); v != cells+1 {
		t.Errorf("adnet_dynamics_runs_total = %v, want %d", v, cells+1)
	}
	acts, _ := m.Value("adnet_dynamics_env_activations_total", nil)
	deacts, _ := m.Value("adnet_dynamics_env_deactivations_total", nil)
	if acts+deacts <= 0 {
		t.Errorf("env edit counters = %v/%v, want > 0 after churned sweep", acts, deacts)
	}
	if v, _ := m.Value("adnet_dynamics_crashes_total", nil); v <= 0 {
		t.Errorf("adnet_dynamics_crashes_total = %v, want > 0 after crash run", v)
	}
	if v, ok := m.Value("adnet_dynamics_restarts_total", nil); !ok {
		t.Errorf("adnet_dynamics_restarts_total missing (%v)", v)
	}

	// A dynamics-free run must leave the dynamics counters untouched.
	runID, code = postRun(t, base, `{"algorithm":"flood","workload":"ring","n":24,"seed":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs (baseline) = %d", code)
	}
	awaitRun(t, base, runID, "done")
	m = scrapeMetrics(t, base)
	if v, _ := m.Value("adnet_dynamics_runs_total", nil); v != cells+1 {
		t.Errorf("baseline run bumped adnet_dynamics_runs_total to %v", v)
	}
}
