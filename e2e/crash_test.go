//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"adnet/internal/journal"
)

// journalTally reads the single sweep journal under dataDir off disk
// (the files a crashed process left behind) and totals its finished
// cells: kind-2 records are locally executed cells, kind-3 records are
// coordinator-mode shards carrying their cells inline.
func journalTally(t *testing.T, dataDir string) (cells int, shards int, finished bool) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dataDir, "sweeps", "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("data dir holds %d journals, want 1: %v", len(paths), paths)
	}
	recs, _, err := journal.ReadAll(paths[0])
	if err != nil {
		t.Fatalf("journal %s unreadable: %v", paths[0], err)
	}
	for _, r := range recs {
		switch r.Kind {
		case 2:
			cells++
		case 3:
			var shard struct {
				Cells []json.RawMessage `json:"cells"`
			}
			if err := json.Unmarshal(r.Data, &shard); err != nil {
				t.Fatalf("bad shard record: %v", err)
			}
			shards++
			cells += len(shard.Cells)
		case 4:
			finished = true
		}
	}
	return cells, shards, finished
}

// awaitResumedSweep polls a freshly restarted server until Recover's
// resubmission shows up in the sweep list, and returns its ID.
func awaitResumedSweep(t *testing.T, base string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var list []map[string]json.RawMessage
		if code := getJSON(t, base+"/v1/sweeps", &list); code == http.StatusOK && len(list) > 0 {
			var id string
			var resumed bool
			json.Unmarshal(list[0]["id"], &id)
			json.Unmarshal(list[0]["resumed"], &resumed)
			if !resumed {
				t.Fatalf("recovered sweep %s does not report resumed=true: %v", id, list[0])
			}
			return id
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("restarted server never resubmitted the journaled sweep")
	return ""
}

// TestCrashResumeEndToEnd is the durability acceptance test over a
// real process: a journaling server is SIGKILLed mid-grid, a new
// process on the same data dir resumes the sweep, re-executes ONLY the
// missing cells (proven by the journal metrics), and serves an
// aggregate byte-identical to an uninterrupted run of the same grid.
func TestCrashResumeEndToEnd(t *testing.T) {
	bin := buildServer(t)
	dataDir := t.TempDir()

	const (
		sweepBody = `{"algorithms":["graph-to-star"],"workloads":["line"],"sizes":[4096],"seeds":[1,2,3,4,5,6,7,8]}`
		cells     = 8
	)

	srv1 := launchServer(t, bin, "-data-dir", dataDir)
	id1, code := postSweep(t, srv1.base, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	// Let the grid get provably mid-flight, then kill -9.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		_, status := sweepState(t, srv1.base, id1)
		var done int
		json.Unmarshal(status["cells_done"], &done)
		if done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first cell never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv1.kill9(t)

	journaled, _, finished := journalTally(t, dataDir)
	if finished {
		t.Fatal("sweep finished before the kill; the test needs a mid-grid crash")
	}
	if journaled == 0 || journaled >= cells {
		t.Fatalf("journal holds %d of %d cells; the test needs a mid-grid crash", journaled, cells)
	}

	// Restart on the same data dir: Recover resubmits the sweep with
	// the journal as its done-set.
	srv2 := launchServer(t, bin, "-data-dir", dataDir)
	id2 := awaitResumedSweep(t, srv2.base)
	status := awaitSweep(t, srv2.base, id2, "done")
	var summary struct {
		Cells     int `json:"cells"`
		Executed  int `json:"executed"`
		Errors    int `json:"errors"`
		CacheHits int `json:"cache_hits"`
		Replayed  int `json:"replayed"`
	}
	json.Unmarshal(status["summary"], &summary)
	if summary.Cells != cells || summary.Errors != 0 {
		t.Fatalf("resumed summary = %+v", summary)
	}
	if summary.Replayed != journaled {
		t.Errorf("summary.replayed = %d, want the journal's %d cells", summary.Replayed, journaled)
	}
	if summary.Executed != cells-journaled {
		t.Errorf("summary.executed = %d, want only the %d missing cells", summary.Executed, cells-journaled)
	}

	// The journal metrics prove only the missing run keys re-executed:
	// replayed + engine runs cover the grid exactly.
	m := scrapeMetrics(t, srv2.base)
	replayed, _ := m.Value("adnet_journal_replayed_cells_total", nil)
	runs, _ := m.Value("adnet_engine_runs_total", nil)
	if int(replayed) != journaled {
		t.Errorf("replayed-cell counter = %v, want %d", replayed, journaled)
	}
	if int(runs) != cells-journaled {
		t.Errorf("engine runs after restart = %v, want %d (missing cells only)", runs, cells-journaled)
	}
	if v, _ := m.Value("adnet_journal_resumed_sweeps_total", nil); v != 1 {
		t.Errorf("resumed-sweep counter = %v, want 1", v)
	}

	// Acceptance criterion: byte-identical to an uninterrupted run of
	// the same grid on a fresh, journal-less server.
	resumedGroups := rawAggregateGroups(t, srv2.base, id2)
	ref := launchServer(t, bin)
	refID, code := postSweep(t, ref.base, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST reference sweep = %d", code)
	}
	awaitSweep(t, ref.base, refID, "done")
	refGroups := rawAggregateGroups(t, ref.base, refID)
	if !bytes.Equal(resumedGroups, refGroups) {
		t.Fatalf("resumed aggregate diverged from uninterrupted run:\n%s\nvs\n%s", resumedGroups, refGroups)
	}

	// The finished resume closed its journal with a terminal record: a
	// third process life has nothing to redo.
	if _, _, finished := journalTally(t, dataDir); !finished {
		t.Fatal("finished resumed sweep left no terminal record")
	}
}

// TestCoordinatorTakeoverEndToEnd is the fleet half of the durability
// story: a journaling coordinator is SIGKILLed after persisting at
// least one shard; a brand-new coordinator process over the same data
// dir (and the same still-running workers) resumes the grid, merges
// the journaled shards without re-dispatching them, and serves an
// aggregate byte-identical to the same sweep on a single worker.
func TestCoordinatorTakeoverEndToEnd(t *testing.T) {
	bin := buildServer(t)
	dataDir := t.TempDir()
	w1 := launchServer(t, bin)
	w2 := launchServer(t, bin)
	fleetWorkers := w1.base + "," + w2.base

	// Two (algorithm, workload, n) rows → two shards: the small row
	// persists while the large one is still running.
	const sweepBody = `{"algorithms":["graph-to-star"],"workloads":["line"],"sizes":[1024,4096],"seeds":[1,2,3,4]}`

	coord1 := launchServer(t, bin, "-coordinator", "-fleet-workers", fleetWorkers, "-data-dir", dataDir)
	if _, code := postSweep(t, coord1.base, sweepBody); code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps to coordinator = %d", code)
	}
	// Wait for the first durable shard, visible on the coordinator's
	// own journal metrics, then kill -9.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		m := scrapeMetrics(t, coord1.base)
		if v, _ := m.Value("adnet_journal_records_total", map[string]string{"kind": "shard"}); v >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard was ever journaled")
		}
		time.Sleep(25 * time.Millisecond)
	}
	coord1.kill9(t)

	journaled, shards, finished := journalTally(t, dataDir)
	if finished || shards == 0 || journaled >= 8 {
		t.Fatalf("journal holds %d shards / %d cells (finished=%v); need a mid-grid crash",
			shards, journaled, finished)
	}

	coord2 := launchServer(t, bin, "-coordinator", "-fleet-workers", fleetWorkers, "-data-dir", dataDir)
	id := awaitResumedSweep(t, coord2.base)
	status := awaitSweep(t, coord2.base, id, "done")
	var summary struct {
		Cells    int `json:"cells"`
		Errors   int `json:"errors"`
		Replayed int `json:"replayed"`
	}
	json.Unmarshal(status["summary"], &summary)
	if summary.Cells != 8 || summary.Errors != 0 {
		t.Fatalf("takeover summary = %+v", summary)
	}
	if summary.Replayed != journaled {
		t.Errorf("summary.replayed = %d, want the journal's %d shard cells", summary.Replayed, journaled)
	}

	m := scrapeMetrics(t, coord2.base)
	if v, _ := m.Value("adnet_journal_replayed_shards_total", nil); int(v) != shards {
		t.Errorf("replayed-shard counter = %v, want %d", v, shards)
	}
	if v, _ := m.Value("adnet_engine_runs_total", nil); v != 0 {
		t.Errorf("takeover coordinator ran %v local simulations, want 0", v)
	}

	// Byte-identical to the same grid swept directly on one worker.
	coordGroups := rawAggregateGroups(t, coord2.base, id)
	refID, code := postSweep(t, w1.base, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST reference sweep to worker = %d", code)
	}
	awaitSweep(t, w1.base, refID, "done")
	refGroups := rawAggregateGroups(t, w1.base, refID)
	if !bytes.Equal(coordGroups, refGroups) {
		t.Fatalf("takeover aggregate diverged from single-worker run:\n%s\nvs\n%s", coordGroups, refGroups)
	}
}

// TestCorruptJournalRefusesStartup pins Recover's strictness end to
// end: a journal with an interior checksum failure (not a torn tail)
// must fail startup with an error naming the corrupt file and offset.
func TestCorruptJournalRefusesStartup(t *testing.T) {
	bin := buildServer(t)
	dataDir := t.TempDir()

	srv := launchServer(t, bin, "-data-dir", dataDir)
	id, code := postSweep(t, srv.base,
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8,16],"seeds":[1,2]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	awaitSweep(t, srv.base, id, "done")
	srv.kill9(t)

	paths, err := filepath.Glob(filepath.Join(dataDir, "sweeps", "*.wal"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("journals = %v (%v)", paths, err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 64 {
		t.Fatalf("journal only %d bytes", len(raw))
	}
	// Flip a byte near the middle: an interior record's payload, far
	// from the tail, so this is corruption — not a torn write.
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(paths[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The next process must refuse to start, naming the corruption.
	// Recover runs before the listener binds, so the port is moot.
	logs := &bytes.Buffer{}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("server started over a corrupt journal; logs:\n%s", logs)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server kept running over a corrupt journal; logs:\n%s", logs)
	}
	out := logs.String()
	if !bytes.Contains([]byte(out), []byte("corrupt at offset")) {
		t.Fatalf("startup failure does not name the corruption offset:\n%s", out)
	}
}
