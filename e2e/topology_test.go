//go:build e2e

package e2e

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postRun submits one run spec and returns the job ID and HTTP code.
func postRun(t *testing.T, base, body string) (id string, code int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", resp.StatusCode
	}
	var sub struct {
		Job map[string]json.RawMessage `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	json.Unmarshal(sub.Job["id"], &id)
	return id, resp.StatusCode
}

// awaitRun polls the run until it reaches the wanted state and
// returns its final status object.
func awaitRun(t *testing.T, base, id, want string) map[string]json.RawMessage {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var status map[string]json.RawMessage
		if code := getJSON(t, base+"/v1/runs/"+id, &status); code != http.StatusOK {
			t.Fatalf("GET /v1/runs/%s = %d", id, code)
		}
		var state string
		json.Unmarshal(status["state"], &state)
		if state == want {
			return status
		}
		switch state {
		case "done", "failed", "canceled":
			t.Fatalf("run %s ended %s, want %s: %s", id, state, want, status["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return nil
}

// edgeKey is a canonical slot pair (a < b).
type edgeKey [2]int32

// applyPairs folds one flat slot-pair list into the live edge set,
// failing on inconsistent deltas (double activation, deactivating a
// missing edge) — the wire contract says deltas are exact.
func applyPairs(t *testing.T, edges map[edgeKey]bool, pairs []int32, activate bool, round int) {
	t.Helper()
	for i := 0; i+1 < len(pairs); i += 2 {
		k := edgeKey{pairs[i], pairs[i+1]}
		if k[0] >= k[1] {
			t.Fatalf("round %d: non-canonical pair (%d,%d)", round, k[0], k[1])
		}
		if activate {
			if edges[k] {
				t.Fatalf("round %d activates live edge (%d,%d)", round, k[0], k[1])
			}
			edges[k] = true
		} else {
			if !edges[k] {
				t.Fatalf("round %d deactivates missing edge (%d,%d)", round, k[0], k[1])
			}
			delete(edges, k)
		}
	}
}

// readUvarint pops one uvarint off buf.
func readUvarint(t *testing.T, buf []byte, what string) (uint64, []byte) {
	t.Helper()
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		t.Fatalf("packed frame: truncated %s", what)
	}
	return v, buf[n:]
}

// readPackedPairs decodes one length-prefixed delta-varint pair list —
// the client half of the format=packed wire contract: uvarint(#pairs),
// then per pair uvarint(a_i - a_{i-1}) and uvarint(b_i - a_i).
func readPackedPairs(t *testing.T, buf []byte) ([]int32, []byte) {
	t.Helper()
	count, buf := readUvarint(t, buf, "pair count")
	pairs := make([]int32, 0, 2*count)
	prevA := int32(0)
	for i := uint64(0); i < count; i++ {
		var da, db uint64
		da, buf = readUvarint(t, buf, "pair delta-a")
		db, buf = readUvarint(t, buf, "pair delta-b")
		a := prevA + int32(da)
		pairs = append(pairs, a, a+int32(db))
		prevA = a
	}
	return pairs, buf
}

// fetchStream GETs one NDJSON endpoint to completion and returns the
// raw body and its lines.
func fetchStream(t *testing.T, url string) (body []byte, lines [][]byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("GET %s Content-Type = %q", url, ct)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	return body, lines
}

// TestTopologyStreamEndToEnd drives the topology delta stream over
// real HTTP the way the README walkthrough does: submit one
// graph-to-star run, replay GET /v1/runs/{id}/topology frame by frame
// to reconstruct every D(i), do the same through format=packed with a
// from-scratch varint decoder, and check both replays land on the
// exact final topology — a perfect star. Then scrape /metrics and pin
// the encode-once accounting: one encode per frame per format, every
// frame fanned out exactly once, nobody dropped.
func TestTopologyStreamEndToEnd(t *testing.T) {
	srv := startServer(t)
	const n = 32
	id, code := postRun(t, srv, fmt.Sprintf(
		`{"algorithm":"graph-to-star","workload":"line","n":%d,"seed":5}`, n))
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	status := awaitRun(t, srv, id, "done")
	var rounds int
	json.Unmarshal(status["rounds_streamed"], &rounds)
	if rounds <= 0 {
		t.Fatalf("run finished with %d rounds", rounds)
	}

	// Replay the plain JSON stream.
	jsonBody, jsonLines := fetchStream(t, srv+"/v1/runs/"+id+"/topology")
	if len(jsonLines) != rounds+1 {
		t.Fatalf("topology stream has %d frames, want %d (header + one per round)", len(jsonLines), rounds+1)
	}
	edges := make(map[edgeKey]bool)
	for i, line := range jsonLines {
		var f struct {
			Round      int     `json:"round"`
			N          int     `json:"n"`
			Edges      []int32 `json:"edges"`
			Activate   []int32 `json:"activate"`
			Deactivate []int32 `json:"deactivate"`
		}
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Round != i {
			t.Fatalf("frame %d carries round %d — rounds must be gapless", i, f.Round)
		}
		if i == 0 {
			if f.N != n {
				t.Fatalf("header n = %d, want %d", f.N, n)
			}
			applyPairs(t, edges, f.Edges, true, 0)
			continue
		}
		applyPairs(t, edges, f.Activate, true, f.Round)
		applyPairs(t, edges, f.Deactivate, false, f.Round)
	}

	// Replay the packed stream with an independent decoder.
	packedBody, packedLines := fetchStream(t, srv+"/v1/runs/"+id+"/topology?format=packed")
	if len(packedLines) != rounds+1 {
		t.Fatalf("packed stream has %d frames, want %d", len(packedLines), rounds+1)
	}
	if len(packedBody) >= len(jsonBody) {
		t.Errorf("packed body is %d bytes, json %d — packing should shrink the stream", len(packedBody), len(jsonBody))
	}
	packedEdges := make(map[edgeKey]bool)
	for i, line := range packedLines {
		var f struct {
			Round int    `json:"round"`
			N     int    `json:"n"`
			P     string `json:"p"`
		}
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("packed frame %d: %v", i, err)
		}
		if f.Round != i {
			t.Fatalf("packed frame %d carries round %d", i, f.Round)
		}
		buf, err := base64.StdEncoding.DecodeString(f.P)
		if err != nil {
			t.Fatalf("packed frame %d: %v", i, err)
		}
		if i == 0 {
			if f.N != n {
				t.Fatalf("packed header n = %d, want %d", f.N, n)
			}
			initial, rest := readPackedPairs(t, buf)
			if len(rest) != 0 {
				t.Fatalf("packed header has %d trailing bytes", len(rest))
			}
			applyPairs(t, packedEdges, initial, true, 0)
			continue
		}
		act, rest := readPackedPairs(t, buf)
		deact, rest := readPackedPairs(t, rest)
		if len(rest) != 0 {
			t.Fatalf("packed frame %d has %d trailing bytes", i, len(rest))
		}
		applyPairs(t, packedEdges, act, true, f.Round)
		applyPairs(t, packedEdges, deact, false, f.Round)
	}

	// Both replays reconstruct the same final D(i) — and for
	// graph-to-star that topology is an exact star: n-1 edges, one
	// center of degree n-1.
	if len(edges) != len(packedEdges) {
		t.Fatalf("json replay has %d edges, packed %d", len(edges), len(packedEdges))
	}
	deg := make(map[int32]int)
	for k := range edges {
		if !packedEdges[k] {
			t.Fatalf("edge (%d,%d) only in the json replay", k[0], k[1])
		}
		deg[k[0]]++
		deg[k[1]]++
	}
	if len(edges) != n-1 {
		t.Errorf("final topology has %d edges, want %d (star)", len(edges), n-1)
	}
	centers := 0
	for _, d := range deg {
		if d == n-1 {
			centers++
		}
	}
	if centers != 1 {
		t.Errorf("final topology has %d nodes of degree %d, want exactly 1 (star center)", centers, n-1)
	}

	// Unknown formats are rejected.
	resp, err := http.Get(srv + "/v1/runs/" + id + "/topology?format=protobuf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=protobuf = %d, want 400", resp.StatusCode)
	}

	// Encode-once accounting on the real /metrics page: each format
	// encoded every frame exactly once (the run published them — no
	// subscriber triggered extra marshals), the two drains above fanned
	// out exactly those frames, and the backpressure policy dropped
	// nobody.
	m := scrapeMetrics(t, srv)
	frames := float64(rounds + 1)
	for _, kind := range []string{"topology", "topology_packed"} {
		if v, _ := m.Value("adnet_stream_frames_encoded_total",
			map[string]string{"stream": kind}); v != frames {
			t.Errorf("frames encoded {stream=%q} = %v, want %v", kind, v, frames)
		}
		if v, _ := m.Value("adnet_stream_frames_sent_total",
			map[string]string{"stream": kind}); v != frames {
			t.Errorf("frames sent {stream=%q} = %v, want %v", kind, v, frames)
		}
		if v, _ := m.Value("adnet_stream_subscribers",
			map[string]string{"stream": kind}); v != 0 {
			t.Errorf("subscriber gauge {stream=%q} = %v after drain, want 0", kind, v)
		}
		if v, _ := m.Value("adnet_stream_subscribers_dropped_total",
			map[string]string{"stream": kind}); v != 0 {
			t.Errorf("dropped {stream=%q} = %v, want 0", kind, v)
		}
	}
	if v, _ := m.Value("adnet_stream_bytes_sent_total",
		map[string]string{"stream": "topology"}); v != float64(len(jsonBody)) {
		t.Errorf("bytes sent {stream=\"topology\"} = %v, want %d (the drained body)", v, len(jsonBody))
	}
	if v, _ := m.Value("adnet_stream_frames_encoded_total",
		map[string]string{"stream": "rounds"}); v != float64(rounds) {
		t.Errorf("frames encoded {stream=\"rounds\"} = %v, want %d — rounds encode once even with no subscriber", v, rounds)
	}
}
