//go:build e2e

package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildServer compiles the real adnet-server binary once for a test
// and returns its path.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "adnet-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/adnet-server")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/adnet-server: %v\n%s", err, out)
	}
	return bin
}

// serverProc is one live adnet-server process. Crash tests reach for
// kill9; everything else just uses base.
type serverProc struct {
	base string
	cmd  *exec.Cmd
	logs *bytes.Buffer
	done chan struct{} // closed once Wait returns
}

// kill9 delivers SIGKILL — the crash the journal must survive — and
// reaps the process.
func (p *serverProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	<-p.done
}

// launchServer runs a pre-built adnet-server on a free localhost port
// with the extra flags appended and waits until it serves /healthz.
// The process is torn down (gracefully, then by force) with the test.
func launchServer(t *testing.T, bin string, extra ...string) *serverProc {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var logs bytes.Buffer
	args := append([]string{"-addr", addr, "-workers", "2", "-sweep-workers", "2"}, extra...)
	srv := exec.Command(bin, args...)
	srv.Stdout = &logs
	srv.Stderr = &logs
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serverProc{base: "http://" + addr, cmd: srv, logs: &logs, done: make(chan struct{})}
	go func() { srv.Wait(); close(p.done) }()
	t.Cleanup(func() {
		select {
		case <-p.done: // already dead (e.g. kill9)
		default:
			srv.Process.Signal(os.Interrupt)
			select {
			case <-p.done:
			case <-time.After(15 * time.Second):
				srv.Process.Kill()
				<-p.done
			}
		}
		if t.Failed() {
			t.Logf("server logs (%s):\n%s", addr, logs.String())
		}
	})

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v\n%s", err, logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// startServer builds and runs an adnet-server, returning its base URL.
func startServer(t *testing.T, extra ...string) string {
	t.Helper()
	return launchServer(t, buildServer(t), extra...).base
}

// requireKeys fails unless the JSON object has every named key —
// the wire-shape assertion clients depend on.
func requireKeys(t *testing.T, obj map[string]json.RawMessage, context string, keys ...string) {
	t.Helper()
	for _, k := range keys {
		if _, ok := obj[k]; !ok {
			t.Fatalf("%s: missing key %q in %v", context, k, keysOf(obj))
		}
	}
}

func keysOf(obj map[string]json.RawMessage) []string {
	out := make([]string, 0, len(obj))
	for k := range obj {
		out = append(out, k)
	}
	return out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postSweep(t *testing.T, base, body string) (id string, code int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode
	}
	var sub struct {
		Sweep map[string]json.RawMessage `json:"sweep"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, sub.Sweep, "submit response", "id", "state", "cells", "cells_done", "enqueued_at")
	json.Unmarshal(sub.Sweep["id"], &id)
	return id, resp.StatusCode
}

func sweepState(t *testing.T, base, id string) (state string, status map[string]json.RawMessage) {
	t.Helper()
	if code := getJSON(t, base+"/v1/sweeps/"+id, &status); code != http.StatusOK {
		t.Fatalf("GET /v1/sweeps/%s = %d", id, code)
	}
	json.Unmarshal(status["state"], &state)
	return state, status
}

func awaitSweep(t *testing.T, base, id, want string) map[string]json.RawMessage {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		state, status := sweepState(t, base, id)
		if state == want {
			return status
		}
		switch state {
		case "done", "failed", "canceled":
			t.Fatalf("sweep %s ended %s, want %s: %s", id, state, want, status["error"])
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached %s", id, want)
	return nil
}

// TestSweepJobEndToEnd drives the full sweep-job lifecycle against
// the real server binary over HTTP: submit returns a job ID
// immediately, the job completes in the background, cells stream as
// NDJSON in canonical order, and the aggregate endpoint serves
// per-(algorithm, workload, n) statistics over seeds.
func TestSweepJobEndToEnd(t *testing.T) {
	base := startServer(t)

	const (
		algos = 2
		sizes = 2
		seeds = 3
		cells = algos * sizes * seeds
	)
	id, code := postSweep(t, base,
		`{"algorithms":["graph-to-star","flood"],"workloads":["line"],"sizes":[16,24],"seeds":[1,2,3]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d, want 202", code)
	}
	if !strings.HasPrefix(id, "sweep-") {
		t.Fatalf("sweep job ID = %q", id)
	}

	status := awaitSweep(t, base, id, "done")
	requireKeys(t, status, "sweep status", "summary", "started_at", "finished_at")
	var summary map[string]json.RawMessage
	json.Unmarshal(status["summary"], &summary)
	requireKeys(t, summary, "summary", "done", "cells", "cache_hits", "executed", "errors")
	var executed int
	json.Unmarshal(summary["executed"], &executed)
	if executed != cells {
		t.Fatalf("summary.executed = %d, want %d", executed, cells)
	}

	// The NDJSON cell stream replays every cell in canonical order and
	// trails with the summary line.
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/cells")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("cells Content-Type = %q", ct)
	}
	type cellRounds struct {
		algo string
		n    int
		r    float64
	}
	var streamed []cellRounds
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
		if _, isSummary := obj["done"]; isSummary {
			requireKeys(t, obj, "stream summary", "cells", "executed", "errors")
			sawSummary = true
			continue
		}
		if sawSummary {
			t.Fatalf("cell line after summary: %s", line)
		}
		requireKeys(t, obj, "cell", "index", "algorithm", "workload", "n", "seed", "from_cache", "outcome")
		var idx, n int
		var algo string
		json.Unmarshal(obj["index"], &idx)
		json.Unmarshal(obj["n"], &n)
		json.Unmarshal(obj["algorithm"], &algo)
		if idx != len(streamed) {
			t.Fatalf("cell index %d at position %d: not canonical order", idx, len(streamed))
		}
		var outcome map[string]json.RawMessage
		json.Unmarshal(obj["outcome"], &outcome)
		requireKeys(t, outcome, "outcome",
			"N", "Rounds", "TotalActivations", "MaxActivatedEdges", "TotalMessages", "LeaderOK")
		var rounds float64
		json.Unmarshal(outcome["Rounds"], &rounds)
		streamed = append(streamed, cellRounds{algo: algo, n: n, r: rounds})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != cells || !sawSummary {
		t.Fatalf("streamed %d cells (summary=%v), want %d cells + summary", len(streamed), sawSummary, cells)
	}

	// The aggregate endpoint serves the paper-table shape: one group
	// per (algorithm, workload, n) with statistics over seeds.
	var agg struct {
		ID     string                       `json:"id"`
		State  string                       `json:"state"`
		Groups []map[string]json.RawMessage `json:"groups"`
	}
	if code := getJSON(t, base+"/v1/sweeps/"+id+"/aggregate", &agg); code != http.StatusOK {
		t.Fatalf("GET aggregate = %d, want 200", code)
	}
	if agg.ID != id || agg.State != "done" {
		t.Fatalf("aggregate header = %+v", agg)
	}
	if len(agg.Groups) != algos*sizes {
		t.Fatalf("groups = %d, want %d", len(agg.Groups), algos*sizes)
	}
	for _, g := range agg.Groups {
		requireKeys(t, g, "group", "algorithm", "workload", "n", "seeds", "errors", "leaders_ok",
			"rounds", "total_activations", "max_activated_edges", "max_activated_degree", "total_messages")
		var seedCount, errCount int
		json.Unmarshal(g["seeds"], &seedCount)
		json.Unmarshal(g["errors"], &errCount)
		if seedCount != seeds || errCount != 0 {
			t.Fatalf("group seeds/errors = %d/%d, want %d/0", seedCount, errCount, seeds)
		}
		var rounds struct {
			Mean, Min, Max float64
		}
		var stat map[string]json.RawMessage
		json.Unmarshal(g["rounds"], &stat)
		requireKeys(t, stat, "rounds stat", "mean", "min", "max", "stddev")
		json.Unmarshal(stat["mean"], &rounds.Mean)
		json.Unmarshal(stat["min"], &rounds.Min)
		json.Unmarshal(stat["max"], &rounds.Max)
		if rounds.Min > rounds.Mean || rounds.Mean > rounds.Max {
			t.Fatalf("rounds stat not ordered: %+v", rounds)
		}
		// Cross-check the group mean against the raw cells.
		var algo string
		var n int
		json.Unmarshal(g["algorithm"], &algo)
		json.Unmarshal(g["n"], &n)
		var sum float64
		count := 0
		for _, c := range streamed {
			if c.algo == algo && c.n == n {
				sum += c.r
				count++
			}
		}
		if count != seeds || sum/float64(count) != rounds.Mean {
			t.Fatalf("group %s/n=%d mean %v does not match cells (%v over %d)",
				algo, n, rounds.Mean, sum/float64(count), count)
		}
	}

	// The sweep list and healthz know the job.
	var list []map[string]json.RawMessage
	if code := getJSON(t, base+"/v1/sweeps", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("GET /v1/sweeps = %d with %d entries", code, len(list))
	}
	var health struct {
		Status string `json:"status"`
		Stats  struct {
			Sweeps       int   `json:"sweeps"`
			RunsExecuted int64 `json:"runs_executed"`
		} `json:"stats"`
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "ok" || health.Stats.Sweeps != 1 || health.Stats.RunsExecuted != cells {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestSweepJobCancelEndToEnd covers DELETE /v1/sweeps/{id} against
// the real binary: a long sweep is canceled mid-grid and reaches the
// canceled state promptly, with the aggregate still serving the cells
// that finished.
func TestSweepJobCancelEndToEnd(t *testing.T) {
	base := startServer(t)

	id, code := postSweep(t, base,
		`{"algorithms":["graph-to-star"],"workloads":["line"],"sizes":[4096],"seeds":[1,2,3,4,5,6,7,8]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sweeps/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		state, _ := sweepState(t, base, id)
		if state == "canceled" {
			break
		}
		if state == "done" || state == "failed" {
			t.Fatalf("canceled sweep ended %s", state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %s after cancel", state)
		}
		time.Sleep(25 * time.Millisecond)
	}
	var agg struct {
		State  string            `json:"state"`
		Groups []json.RawMessage `json:"groups"`
	}
	if code := getJSON(t, base+"/v1/sweeps/"+id+"/aggregate", &agg); code != http.StatusOK {
		t.Fatalf("aggregate after cancel = %d", code)
	}
	if agg.State != "canceled" {
		t.Fatalf("aggregate state = %q", agg.State)
	}

	// Unknown sweep IDs 404 on every verb.
	if code := getJSON(t, base+"/v1/sweeps/sweep-999999-ffffffff", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown sweep = %d", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/sweeps/sweep-999999-ffffffff", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown sweep = %d", resp.StatusCode)
	}
}

// TestFleetCoordinatorEndToEnd drives the distributed sweep fabric
// over real processes: one coordinator and two worker adnet-servers.
// The coordinator shards the grid across the workers, merges their
// NDJSON cell streams into canonical order, and serves a fold-merged
// aggregate byte-identical to the same sweep run directly on one
// worker — while executing zero simulations itself.
func TestFleetCoordinatorEndToEnd(t *testing.T) {
	w1 := startServer(t)
	w2 := startServer(t)
	coord := startServer(t, "-coordinator", "-fleet-workers", w1+","+w2)

	// The registry knows both workers and reports them healthy.
	var workers []map[string]json.RawMessage
	if code := getJSON(t, coord+"/v1/fleet/workers", &workers); code != http.StatusOK {
		t.Fatalf("GET /v1/fleet/workers = %d", code)
	}
	if len(workers) != 2 {
		t.Fatalf("registry has %d workers, want 2", len(workers))
	}
	for _, w := range workers {
		requireKeys(t, w, "worker", "id", "url", "healthy", "last_probe")
		var healthy bool
		json.Unmarshal(w["healthy"], &healthy)
		if !healthy {
			t.Fatalf("worker not healthy: %v", w)
		}
	}

	const (
		sweepBody = `{"algorithms":["graph-to-star","flood"],"workloads":["line"],"sizes":[16,24],"seeds":[1,2,3]}`
		cells     = 2 * 2 * 3
	)
	id, code := postSweep(t, coord, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps to coordinator = %d", code)
	}
	status := awaitSweep(t, coord, id, "done")
	var summary map[string]json.RawMessage
	json.Unmarshal(status["summary"], &summary)
	requireKeys(t, summary, "summary", "done", "cells", "cache_hits", "executed", "errors")
	var executed, errCount int
	json.Unmarshal(summary["executed"], &executed)
	json.Unmarshal(summary["errors"], &errCount)
	if executed != cells || errCount != 0 {
		t.Fatalf("summary executed/errors = %d/%d, want %d/0", executed, errCount, cells)
	}

	// The merged stream replays every cell in canonical order with the
	// same wire shape a single-process sweep streams.
	resp, err := http.Get(coord + "/v1/sweeps/" + id + "/cells")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("cells Content-Type = %q", ct)
	}
	streamed := 0
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
		if _, isSummary := obj["done"]; isSummary {
			sawSummary = true
			continue
		}
		requireKeys(t, obj, "merged cell", "index", "algorithm", "workload", "n", "seed", "from_cache", "outcome")
		var idx int
		json.Unmarshal(obj["index"], &idx)
		if idx != streamed {
			t.Fatalf("merged cell index %d at position %d: not canonical order", idx, streamed)
		}
		streamed++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if streamed != cells || !sawSummary {
		t.Fatalf("merged stream: %d cells (summary=%v), want %d + summary", streamed, sawSummary, cells)
	}

	// Acceptance criterion over real processes: the coordinator's
	// fold-merged aggregate is byte-identical to the same grid swept
	// directly on a single worker.
	coordGroups := rawAggregateGroups(t, coord, id)
	refID, code := postSweep(t, w1, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps to worker = %d", code)
	}
	awaitSweep(t, w1, refID, "done")
	workerGroups := rawAggregateGroups(t, w1, refID)
	if !bytes.Equal(coordGroups, workerGroups) {
		t.Fatalf("coordinator aggregate diverged from single-process worker:\n%s\nvs\n%s",
			coordGroups, workerGroups)
	}

	// The coordinator distributed all simulation work: its own engine
	// ran nothing, and the workers' healthz counters carry the grid.
	var health struct {
		Stats struct {
			RunsExecuted int64 `json:"runs_executed"`
			Coordinator  bool  `json:"coordinator"`
			FleetWorkers int   `json:"fleet_workers"`
		} `json:"stats"`
	}
	if code := getJSON(t, coord+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("coordinator healthz = %d", code)
	}
	if health.Stats.RunsExecuted != 0 || !health.Stats.Coordinator || health.Stats.FleetWorkers != 2 {
		t.Fatalf("coordinator healthz stats = %+v", health.Stats)
	}
	var total int64
	for _, w := range []string{w1, w2} {
		if code := getJSON(t, w+"/healthz", &health); code != http.StatusOK {
			t.Fatalf("worker healthz = %d", code)
		}
		total += health.Stats.RunsExecuted
	}
	// w1 additionally executed the fresh cells of the reference sweep
	// (its shard cells were cache hits), so the floor is the grid once.
	if total < cells {
		t.Fatalf("workers executed %d runs in total, want at least %d", total, cells)
	}
}

// rawAggregateGroups fetches an aggregate and returns the raw bytes of
// its "groups" array for byte-level comparison.
func rawAggregateGroups(t *testing.T, base, id string) []byte {
	t.Helper()
	var agg struct {
		Groups json.RawMessage `json:"groups"`
	}
	if code := getJSON(t, base+"/v1/sweeps/"+id+"/aggregate", &agg); code != http.StatusOK {
		t.Fatalf("GET %s/v1/sweeps/%s/aggregate = %d", base, id, code)
	}
	if len(agg.Groups) == 0 {
		t.Fatalf("aggregate of %s has no groups payload", id)
	}
	return agg.Groups
}

// TestHealthzShape pins the healthz wire shape a monitoring client
// scrapes.
func TestHealthzShape(t *testing.T) {
	base := startServer(t)
	var health map[string]json.RawMessage
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	requireKeys(t, health, "healthz", "status", "stats")
	var stats map[string]json.RawMessage
	json.Unmarshal(health["stats"], &stats)
	requireKeys(t, stats, "healthz stats",
		"workers", "queue_depth", "queued", "jobs", "sweeps", "runs_executed",
		"cache_size", "cache_hits", "cache_misses", "stream_bytes",
		"uptime_seconds", "go_version")
	var goVersion string
	json.Unmarshal(stats["go_version"], &goVersion)
	if !strings.HasPrefix(goVersion, "go") {
		t.Fatalf("go_version = %q", goVersion)
	}
}
