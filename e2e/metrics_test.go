//go:build e2e

package e2e

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"adnet/internal/obs"
)

// scrapeMetrics fetches a process's /metrics page and parses it with
// the strict in-repo exposition parser — a malformed page fails the
// test, exactly as it would fail a Prometheus scrape.
func scrapeMetrics(t *testing.T, base string) *obs.Metrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/metrics = %d", base, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	m, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("%s/metrics does not parse: %v", base, err)
	}
	return m
}

// TestFleetMetricsEndToEnd runs a sharded sweep across real processes
// and then scrapes /metrics on the coordinator and both workers,
// asserting the core series are consistent with the sweep the fabric
// just executed: the coordinator dispatched every shard and ran no
// simulations, the workers' cell counters add up to the grid, and all
// three processes export parseable expositions with HTTP series.
// The coordinator also runs with -pprof, pinning the profiler gate.
func TestFleetMetricsEndToEnd(t *testing.T) {
	w1 := startServer(t)
	w2 := startServer(t)
	coord := startServer(t, "-coordinator", "-fleet-workers", w1+","+w2, "-pprof", "-log-format", "json")

	const (
		sweepBody = `{"algorithms":["graph-to-star","flood"],"workloads":["line"],"sizes":[16,24],"seeds":[1,2,3]}`
		cells     = 2 * 2 * 3
		shards    = 2 * 2 // one shard per (algorithm, workload, n) group
	)
	id, code := postSweep(t, coord, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	status := awaitSweep(t, coord, id, "done")
	var summary struct {
		Executed int `json:"executed"`
		Errors   int `json:"errors"`
	}
	json.Unmarshal(status["summary"], &summary)
	if summary.Errors != 0 {
		t.Fatalf("sweep finished with %d errors", summary.Errors)
	}

	cm := scrapeMetrics(t, coord)
	if v, _ := cm.Value("adnet_fleet_shards_dispatched_total", nil); v < shards {
		t.Errorf("coordinator dispatched %v shards, want >= %d", v, shards)
	}
	if v, _ := cm.Value("adnet_fleet_shards_redispatched_total", nil); v != 0 {
		t.Errorf("re-dispatches = %v, want 0 (no worker died)", v)
	}
	if v, _ := cm.Value("adnet_fleet_workers", nil); v != 2 {
		t.Errorf("fleet worker gauge = %v, want 2", v)
	}
	if v, _ := cm.Value("adnet_fleet_workers_healthy", nil); v != 2 {
		t.Errorf("healthy worker gauge = %v, want 2", v)
	}
	if v, _ := cm.Value("adnet_engine_runs_total", nil); v != 0 {
		t.Errorf("coordinator engine runs = %v, want 0 (all work distributed)", v)
	}
	if v, _ := cm.Value("adnet_sweep_jobs_total", map[string]string{"state": "done"}); v != 1 {
		t.Errorf("coordinator sweep jobs done = %v, want 1", v)
	}
	// The coordinator counts every merged cell exactly once.
	if total, _ := cm.Sum("adnet_sweep_cells_total", nil); total != cells {
		t.Errorf("coordinator merged-cell counters sum to %v, want %d", total, cells)
	}
	if v, _ := cm.Value("adnet_http_requests_total",
		map[string]string{"route": "POST /v1/sweeps", "code": "202"}); v != 1 {
		t.Errorf("coordinator POST /v1/sweeps 202s = %v, want 1", v)
	}

	// Across the two workers the shard sweeps cover the whole grid:
	// cell counters sum to the grid size, engine runs to the executed
	// count the coordinator's summary reported.
	var workerCells, workerRuns, shardObs float64
	var cellsEncoded, cellFramesSent, cellBytesSent, subsDropped float64
	for _, w := range []string{w1, w2} {
		wm := scrapeMetrics(t, w)
		c, _ := wm.Sum("adnet_sweep_cells_total", nil)
		workerCells += c
		// Broadcast-hub counters: each worker's shard sweep published
		// its cells through the hub (one encode per cell), and the
		// coordinator drained them over GET /v1/sweeps/{id}/cells.
		v, _ := wm.Value("adnet_stream_frames_encoded_total", map[string]string{"stream": "cells"})
		cellsEncoded += v
		v, _ = wm.Value("adnet_stream_frames_sent_total", map[string]string{"stream": "cells"})
		cellFramesSent += v
		v, _ = wm.Value("adnet_stream_bytes_sent_total", map[string]string{"stream": "cells"})
		cellBytesSent += v
		v, _ = wm.Sum("adnet_stream_subscribers_dropped_total", nil)
		subsDropped += v
		r, _ := wm.Value("adnet_engine_runs_total", nil)
		workerRuns += r
		if v, ok := wm.Value("adnet_http_request_duration_seconds_count",
			map[string]string{"route": "POST /v1/sweeps"}); !ok || v < 1 {
			t.Errorf("worker %s has no POST /v1/sweeps latency series (%v/%v)", w, v, ok)
		}
		s, _ := wm.Sum("adnet_fleet_shard_duration_seconds_count", nil)
		shardObs += s
		// Every executed run folds one parallel-efficiency observation;
		// the ratio is bounded by 1, so the +Inf cumulative bucket and
		// the le="1" bucket both equal the engine run count.
		if r > 0 {
			if v, ok := wm.Value("adnet_engine_parallel_efficiency_ratio_count", nil); !ok || v != r {
				t.Errorf("worker %s efficiency observations = %v (ok=%v), want %v (engine runs)", w, v, ok, r)
			}
			if v, _ := wm.Value("adnet_engine_parallel_efficiency_ratio_bucket",
				map[string]string{"le": "1"}); v != r {
				t.Errorf("worker %s efficiency le=1 bucket = %v, want %v (ratio is clamped to [0,1])", w, v, r)
			}
		}
	}
	if workerCells != cells {
		t.Errorf("workers' cell counters sum to %v, want %d", workerCells, cells)
	}
	// Encode-once fan-out across the fleet: every cell was encoded
	// exactly once on its worker, every encoded frame crossed the wire
	// to the coordinator's merge tail, and no subscriber was dropped.
	if cellsEncoded != cells {
		t.Errorf("workers encoded %v cell frames, want %d (one per cell)", cellsEncoded, cells)
	}
	if cellFramesSent < cells {
		t.Errorf("workers fanned out %v cell frames, want >= %d (coordinator tailed every shard)", cellFramesSent, cells)
	}
	if cellBytesSent <= 0 {
		t.Errorf("workers fanned out %v cell bytes, want > 0", cellBytesSent)
	}
	if subsDropped != 0 {
		t.Errorf("workers dropped %v stream subscribers, want 0", subsDropped)
	}
	// The coordinator republishes each merged cell through its own hub.
	if v, _ := cm.Value("adnet_stream_frames_encoded_total",
		map[string]string{"stream": "cells"}); v != cells {
		t.Errorf("coordinator encoded %v merged cell frames, want %d", v, cells)
	}
	if workerRuns != float64(summary.Executed) {
		t.Errorf("workers' engine runs sum to %v, want %d (summary.executed)", workerRuns, summary.Executed)
	}
	// Workers are not coordinators: they export no fleet shard series.
	if shardObs != 0 {
		t.Errorf("workers export %v fleet shard observations, want 0", shardObs)
	}
	// The coordinator folded one latency observation per shard.
	if v, _ := cm.Sum("adnet_fleet_shard_duration_seconds_count", nil); v != shards {
		t.Errorf("coordinator shard-latency observations = %v, want %d", v, shards)
	}

	// -pprof mounts the profiler on the coordinator only.
	resp, err := http.Get(coord + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("coordinator /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(w1 + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("worker without -pprof serves /debug/pprof/ (%d)", resp.StatusCode)
	}
}
