package adnet

// The benchmark harness regenerates every table/figure-level claim of
// the paper (experiment index E1–E13 in DESIGN.md). Each benchmark
// reports the paper's cost measures via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the measured series next to wall-clock cost. Absolute times
// are simulator times; the claims under test are the *shapes*: rounds
// per log n, activations per n·log n, degree bounds, final depth, and
// the distributed-vs-centralized separation of Theorem 6.4.

import (
	"fmt"
	"math/bits"
	"testing"

	"adnet/internal/baseline"
	"adnet/internal/core"
	"adnet/internal/expt"
	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/subroutine"
)

func lineParents(n int) map[graph.ID]graph.ID {
	parents := make(map[graph.ID]graph.ID, n)
	for i := 0; i < n-1; i++ {
		parents[graph.ID(i)] = graph.ID(i + 1)
	}
	parents[graph.ID(n-1)] = graph.ID(n - 1)
	return parents
}

// BenchmarkTreeToStar — E1 (Proposition 2.1).
func BenchmarkTreeToStar(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds, act int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(graph.Line(n), subroutine.NewTreeToStarFactory(lineParents(n)))
				if err != nil {
					b.Fatal(err)
				}
				rounds, act = res.Rounds, res.Metrics.TotalActivations
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/float64(bits.Len(uint(n))), "rounds/logn")
			b.ReportMetric(float64(act), "activations")
		})
	}
}

// BenchmarkLineToCBT — E2 (Proposition 2.2).
func BenchmarkLineToCBT(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			factory, err := subroutine.NewLineToTreeFactory(subroutine.LineToTreeOptions{
				Branching: 2, Parents: lineParents(n),
			})
			if err != nil {
				b.Fatal(err)
			}
			var last, deg int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(graph.Line(n), factory)
				if err != nil {
					b.Fatal(err)
				}
				last, deg = res.Metrics.LastActivityRound, res.Metrics.MaxActivatedDegree
			}
			b.ReportMetric(float64(last), "activityRounds")
			b.ReportMetric(float64(deg), "maxActDegree")
		})
	}
}

// benchAlgo shares the E3/E4/E5 shape.
func benchAlgo(b *testing.B, algo Algorithm, gen func(n int) *Graph, sizes []int) {
	b.Helper()
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := gen(n)
			var out *Result
			for i := 0; i < b.N; i++ {
				var err error
				out, err = Run(algo, g)
				if err != nil {
					b.Fatal(err)
				}
			}
			ln := float64(bits.Len(uint(n)))
			b.ReportMetric(float64(out.Rounds), "rounds")
			b.ReportMetric(float64(out.Rounds)/ln, "rounds/logn")
			b.ReportMetric(float64(out.Metrics.TotalActivations)/(float64(n)*ln), "act/nlogn")
			b.ReportMetric(float64(out.Metrics.MaxActivatedDegree), "maxActDegree")
		})
	}
}

// BenchmarkGraphToStar — E3 (Theorem 3.8).
func BenchmarkGraphToStar(b *testing.B) {
	benchAlgo(b, GraphToStar, Line, []int{256, 1024, 4096})
}

// BenchmarkGraphToWreath — E4 (Theorem 4.2).
func BenchmarkGraphToWreath(b *testing.B) {
	gen := func(n int) *Graph {
		g, err := RandomBoundedDegree(n, 4, n/2, int64(n))
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	benchAlgo(b, GraphToWreath, gen, []int{128, 256, 512})
}

// BenchmarkGraphToThinWreath — E5 (Theorem 5.1).
func BenchmarkGraphToThinWreath(b *testing.B) {
	gen := func(n int) *Graph {
		g, err := RandomBoundedDegree(n, 4, n/2, int64(n))
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	// n <= ~450: the thin variant's validated envelope (DESIGN.md §3.3).
	benchAlgo(b, GraphToThinWreath, gen, []int{128, 256, 384})
}

// BenchmarkLowerBoundTime — E6 (Lemma 6.1): rounds stay ≥ log2 n on
// the spanning line for every algorithm.
func BenchmarkLowerBoundTime(b *testing.B) {
	for _, algo := range []Algorithm{GraphToStar, CliqueFormation} {
		b.Run(algo.String(), func(b *testing.B) {
			n := 1024
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := Run(algo, Line(n))
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(bits.Len(uint(n))), "log2n_floor")
		})
	}
}

// BenchmarkCentralizedLine — E7 (Lemmas D.3/D.4): Θ(n) activations.
func BenchmarkCentralizedLine(b *testing.B) {
	for _, n := range []int{1024, 16384, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var act, rounds int
			for i := 0; i < b.N; i++ {
				res, err := baseline.CutInHalfLine(n)
				if err != nil {
					b.Fatal(err)
				}
				act, rounds = res.Metrics.TotalActivations, res.Metrics.Rounds
			}
			b.ReportMetric(float64(act)/float64(n), "act/n")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkCentralizedEuler — E8 (Theorem 6.3): Θ(n) activations on
// arbitrary connected graphs.
func BenchmarkCentralizedEuler(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := RandomConnected(n, n, int64(n))
			var act, depth int
			for i := 0; i < b.N; i++ {
				res, err := baseline.EulerTourStrategy(g)
				if err != nil {
					b.Fatal(err)
				}
				act, depth = res.Metrics.TotalActivations, res.Depth
			}
			b.ReportMetric(float64(act)/float64(n), "act/n")
			b.ReportMetric(float64(depth), "finalDepth")
		})
	}
}

// BenchmarkDistributedActivations — E9 (Theorem 6.4): the Ω(n log n)
// vs Θ(n) separation on the increasing-order ring.
func BenchmarkDistributedActivations(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := Ring(n)
			var dist, cent int
			for i := 0; i < b.N; i++ {
				res, err := Run(GraphToStar, g)
				if err != nil {
					b.Fatal(err)
				}
				c, err := baseline.EulerTourStrategy(g)
				if err != nil {
					b.Fatal(err)
				}
				dist, cent = res.Metrics.TotalActivations, c.Metrics.TotalActivations
			}
			b.ReportMetric(float64(dist)/float64(cent), "dist/cent")
			b.ReportMetric(float64(dist)/(float64(n)*float64(bits.Len(uint(n)))), "distAct/nlogn")
		})
	}
}

// BenchmarkClique — E10 (§1.2): Θ(n²) edge complexity.
func BenchmarkClique(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var act int
			for i := 0; i < b.N; i++ {
				res, err := Run(CliqueFormation, Line(n))
				if err != nil {
					b.Fatal(err)
				}
				act = res.Metrics.TotalActivations
			}
			b.ReportMetric(float64(act)/float64(n*n), "act/n2")
		})
	}
}

// BenchmarkFlooding — E11 (§1.2): Θ(diameter) time, zero activations.
func BenchmarkFlooding(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := Run(Flooding, Line(n))
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(n), "rounds/n")
		})
	}
}

// BenchmarkCompose — E12 (§1.3): transform + disseminate vs flooding.
func BenchmarkCompose(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				g := Line(n)
				star, err := Run(GraphToStar, g)
				if err != nil {
					b.Fatal(err)
				}
				dissem, err := Run(Flooding, star.FinalGraph())
				if err != nil {
					b.Fatal(err)
				}
				flood, err := Run(Flooding, g)
				if err != nil {
					b.Fatal(err)
				}
				speedup = float64(flood.Rounds) / float64(star.Rounds+dissem.Rounds)
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkPhases — E13 (Lemmas 3.6/3.7): GraphToStar phase count.
func BenchmarkPhases(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := Run(GraphToStar, Line(n))
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			phases := (rounds + 7) / 8
			b.ReportMetric(float64(phases), "phases")
			b.ReportMetric(float64(phases)/float64(bits.Len(uint(n))), "phases/logn")
		})
	}
}

// BenchmarkTradeoffTable regenerates the §1.3 headline comparison.
func BenchmarkTradeoffTable(b *testing.B) {
	var tab fmt.Stringer
	for i := 0; i < b.N; i++ {
		t, err := expt.TradeoffTable(256)
		if err != nil {
			b.Fatal(err)
		}
		tab = t
	}
	_ = tab
}

// benchRoundMachine is the round-loop microbenchmark workload: every
// node broadcasts a small payload each round and halts after a fixed
// number of rounds. It isolates the engine's per-round overhead
// (message fan-out, delivery, intent merging) from algorithm logic.
type benchRoundMachine struct {
	rounds int
}

func (m *benchRoundMachine) Init(ctx *sim.Context) {}

func (m *benchRoundMachine) Send(ctx *sim.Context) {
	ctx.Broadcast(ctx.Round())
}

func (m *benchRoundMachine) Receive(ctx *sim.Context, inbox []sim.Message) {
	if ctx.Round() >= m.rounds {
		ctx.SetStatus(sim.StatusFollower)
		ctx.Halt()
	}
}

// benchChurnMachine adds edge churn on a ring: every node alternates
// between activating and deactivating the chord {u, u+2} (legal under
// the distance-2 rule via the common neighbor u+1), so every round
// pushes Θ(n) intents through temporal.History.Apply.
type benchChurnMachine struct {
	rounds int
	n      int
}

func (m *benchChurnMachine) Init(ctx *sim.Context) {}

func (m *benchChurnMachine) Send(ctx *sim.Context) {
	ctx.Broadcast(ctx.Round())
}

func (m *benchChurnMachine) Receive(ctx *sim.Context, inbox []sim.Message) {
	chord := graph.ID((int(ctx.ID()) + 2) % m.n)
	if ctx.Round()%2 == 1 {
		ctx.Activate(chord)
	} else {
		ctx.Deactivate(chord)
	}
	if ctx.Round() >= m.rounds {
		ctx.SetStatus(sim.StatusFollower)
		ctx.Halt()
	}
}

// benchRound shares the round-loop benchmark shape: run a fixed-length
// execution per iteration and report per-round cost next to -benchmem's
// per-op allocation figures.
func benchRound(b *testing.B, sizes []int, factory func(n int) sim.Factory) {
	b.Helper()
	const rounds = 16
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Ring(n)
			f := factory(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(g, f)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds != rounds {
					b.Fatalf("rounds = %d, want %d", res.Rounds, rounds)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
		})
	}
}

// BenchmarkEngineReuse measures the PR 3 headline: many runs through
// one reused Engine versus back-to-back sim.Run. Same workload, same
// semantics; the engine variant reuses contexts, inboxes, history
// scratch and the pinned worker pool across runs, so allocs/op (one
// op = one full run) drop by well over 5×.
func BenchmarkEngineReuse(b *testing.B) {
	const rounds = 16
	for _, n := range []int{256, 1024} {
		g := graph.Ring(n)
		f := func(id graph.ID, env sim.Env) sim.Machine {
			return &benchRoundMachine{rounds: rounds}
		}
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			e := sim.NewEngine()
			defer e.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := e.Reset(g, f); err != nil {
					b.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds != rounds {
					b.Fatalf("rounds = %d", res.Rounds)
				}
			}
		})
		b.Run(fmt.Sprintf("run/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(g, f)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds != rounds {
					b.Fatalf("rounds = %d", res.Rounds)
				}
			}
		})
	}
}

// BenchmarkRoundLoop measures the engine's message-only round loop:
// n broadcasting nodes on a ring, no edge reconfiguration.
func BenchmarkRoundLoop(b *testing.B) {
	benchRound(b, []int{256, 1024, 4096}, func(n int) sim.Factory {
		return func(id graph.ID, env sim.Env) sim.Machine {
			return &benchRoundMachine{rounds: 16}
		}
	})
}

// BenchmarkRoundLoopChurn measures the full round loop including Θ(n)
// edge activations/deactivations per round through temporal.Apply.
func BenchmarkRoundLoopChurn(b *testing.B) {
	benchRound(b, []int{256, 1024, 4096}, func(n int) sim.Factory {
		return func(id graph.ID, env sim.Env) sim.Machine {
			return &benchChurnMachine{rounds: 16, n: n}
		}
	})
}

// BenchmarkWreathAdmissionAblation sweeps the ThinWreath matchmaker's
// admission cap (DESIGN.md §3.3): tighter admission bounds per-phase
// merge fan-in, trading rounds for smaller splice groups.
func BenchmarkWreathAdmissionAblation(b *testing.B) {
	n := 128
	g, err := RandomBoundedDegree(n, 4, n/2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var rounds, act int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(g, core.NewWreathFactoryOpts(core.WreathOptions{AdmitCap: cap}),
					sim.WithMaxRounds(core.WreathMaxRounds(n, 2)))
				if err != nil {
					b.Fatal(err)
				}
				rounds, act = res.Rounds, res.Metrics.TotalActivations
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(act), "activations")
		})
	}
}

// BenchmarkWreathBranchingAblation sweeps the gadget arity: the §5
// lever. Wider trees are shallower (faster intra-committee
// communication) at higher degree.
func BenchmarkWreathBranchingAblation(b *testing.B) {
	n := 128
	g := Line(n)
	for _, br := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("b=%d", br), func(b *testing.B) {
			var depth, deg int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(g, core.NewWreathFactoryOpts(core.WreathOptions{Branching: br}),
					sim.WithMaxRounds(core.WreathMaxRounds(n, br)))
				if err != nil {
					b.Fatal(err)
				}
				leader, _ := res.Leader()
				depth = res.History.CurrentClone().Eccentricity(leader)
				deg = res.Metrics.MaxActivatedDegree
			}
			b.ReportMetric(float64(depth), "finalDepth")
			b.ReportMetric(float64(deg), "maxActDegree")
		})
	}
}
