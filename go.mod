module adnet

go 1.24
