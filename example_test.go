package adnet_test

import (
	"fmt"

	"adnet"
)

// ExampleRun demonstrates the paper's core task: transform a spanning
// line into a diameter-2 network in O(log n) rounds, electing the
// maximum UID on the way.
func ExampleRun() {
	g := adnet.Line(64)
	res, err := adnet.Run(adnet.GraphToStar, g)
	if err != nil {
		panic(err)
	}
	fmt.Println("leader:", res.Leader)
	fmt.Println("final diameter:", res.FinalGraph().Diameter())
	fmt.Println("activated edges never exceeded 2n:", res.Metrics.MaxActivatedEdges <= 2*64)
	// Output:
	// leader: 63
	// final diameter: 2
	// activated edges never exceeded 2n: true
}

// ExampleTradeoff prints the paper's §1.3 comparison on one workload.
func ExampleTradeoff() {
	out, err := adnet.Tradeoff(32)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out) > 0)
	// Output:
	// true
}
