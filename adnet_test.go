package adnet

import (
	"math/bits"
	"strings"
	"testing"
)

func TestRunGraphToStarPublicAPI(t *testing.T) {
	t.Parallel()
	g := Line(100)
	res, err := Run(GraphToStar, g, WithConnectivityCheck())
	if err != nil {
		t.Fatal(err)
	}
	if !res.LeaderElected || res.Leader != 99 {
		t.Fatalf("leader = %d (%v), want 99", res.Leader, res.LeaderElected)
	}
	if err := res.VerifyDepthTree(1); err != nil {
		t.Fatal(err)
	}
	if !res.FinalGraph().IsStarCentered(99) {
		t.Fatal("final graph is not a spanning star")
	}
	if res.Metrics.MaxActivatedEdges > 200 {
		t.Fatalf("activated edges %d > 2n", res.Metrics.MaxActivatedEdges)
	}
	if len(res.PerRound()) != res.Rounds {
		t.Fatalf("per-round records %d != rounds %d", len(res.PerRound()), res.Rounds)
	}
}

func TestRunGraphToWreathPublicAPI(t *testing.T) {
	t.Parallel()
	g, err := RandomBoundedDegree(80, 4, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(GraphToWreath, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LeaderElected {
		t.Fatal("no leader")
	}
	if err := res.VerifyDepthTree(bits.Len(80) + 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunThinWreathPublicAPI(t *testing.T) {
	t.Parallel()
	res, err := Run(GraphToThinWreath, Ring(48))
	if err != nil {
		t.Fatal(err)
	}
	if !res.LeaderElected || res.Leader != 47 {
		t.Fatalf("leader = %d", res.Leader)
	}
}

func TestBaselinesPublicAPI(t *testing.T) {
	t.Parallel()
	res, err := Run(CliqueFormation, Line(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalActivations != 20*19/2-19 {
		t.Fatalf("clique activations %d", res.Metrics.TotalActivations)
	}
	flood, err := Run(Flooding, Line(20))
	if err != nil {
		t.Fatal(err)
	}
	if flood.Metrics.TotalActivations != 0 {
		t.Fatal("flooding activated edges")
	}
	if flood.Rounds <= res.Rounds {
		t.Fatal("flooding should be slower than clique formation on a line")
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	t.Parallel()
	if _, err := Run(Algorithm(99), Line(4)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	t.Parallel()
	for algo, want := range map[Algorithm]string{
		GraphToStar: "GraphToStar", GraphToWreath: "GraphToWreath",
		GraphToThinWreath: "GraphToThinWreath", CliqueFormation: "CliqueFormation",
		Flooding: "Flooding", Algorithm(42): "Algorithm(42)",
	} {
		if algo.String() != want {
			t.Errorf("%d.String() = %q, want %q", algo, algo.String(), want)
		}
	}
}

func TestTradeoffRenders(t *testing.T) {
	t.Parallel()
	out, err := Tradeoff(48)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph-to-star", "clique", "centralized-euler"} {
		if !strings.Contains(out, want) {
			t.Errorf("tradeoff table missing %q", want)
		}
	}
}

func TestRandomConnectedHelper(t *testing.T) {
	t.Parallel()
	g := RandomConnected(40, 20, 3)
	if !g.IsConnected() || g.NumNodes() != 40 {
		t.Fatal("bad random graph")
	}
}
