package bounds

import (
	"math"
	"math/bits"
	"testing"

	"adnet/internal/baseline"
	"adnet/internal/core"
	"adnet/internal/graph"
	"adnet/internal/sim"
)

func TestKnowledgeTrackerOnFlood(t *testing.T) {
	t.Parallel()
	g := graph.Line(12)
	tracker := NewKnowledgeTracker(g.Nodes())
	_, err := sim.Run(g, baseline.NewFloodFactory(), sim.WithRoundHook(tracker.Hook()))
	if err != nil {
		t.Fatal(err)
	}
	// After a full flood, everyone may know everything.
	for _, u := range g.Nodes() {
		for _, v := range g.Nodes() {
			if !tracker.Knows(u, v) {
				t.Fatalf("node %d missing %d", u, v)
			}
		}
	}
}

func TestKnowledgePropagatesOneHopPerRound(t *testing.T) {
	t.Parallel()
	// Stop a flood after 3 rounds: knowledge of UID 0 must not have
	// travelled more than 3 hops.
	g := graph.Line(10)
	tracker := NewKnowledgeTracker(g.Nodes())
	factory := func(id graph.ID, env sim.Env) sim.Machine {
		return &stopAfter{inner: baseline.NewFloodFactory()(id, env), limit: 3}
	}
	if _, err := sim.Run(g, factory, sim.WithRoundHook(tracker.Hook())); err != nil {
		t.Fatal(err)
	}
	for _, w := range tracker.Holders(0) {
		if int(w) > 3 {
			t.Fatalf("UID 0 reached node %d in 3 rounds", w)
		}
	}
}

type stopAfter struct {
	inner sim.Machine
	limit int
}

func (s *stopAfter) Init(ctx *sim.Context) { s.inner.Init(ctx) }
func (s *stopAfter) Send(ctx *sim.Context) {
	if ctx.Round() <= s.limit {
		s.inner.Send(ctx)
	}
}
func (s *stopAfter) Receive(ctx *sim.Context, inbox []sim.Message) {
	if ctx.Round() <= s.limit {
		s.inner.Receive(ctx, inbox)
	}
	if ctx.Round() >= s.limit {
		ctx.Halt()
	}
}

// Lemma 6.1 mechanics: on the spanning line, the endpoint-to-endpoint
// potential can at best halve per round, so any algorithm needs
// Ω(log n) rounds. Verified on GraphToStar.
func TestPotentialDecayOnLine(t *testing.T) {
	t.Parallel()
	n := 64
	series, res, err := PotentialSeries(graph.Line(n), core.NewGraphToStarFactory(),
		0, graph.ID(n-1))
	if err != nil {
		t.Fatal(err)
	}
	if series[0] != n-1 {
		t.Fatalf("initial potential %d, want %d", series[0], n-1)
	}
	last := series[len(series)-1]
	if last > 2 {
		t.Fatalf("final potential %d, want <= 2 (spanning star)", last)
	}
	// The potential can never more than halve in a round (plus the
	// one-hop information step): factor <= ~2.2 with slack.
	if f := MinPotentialDropFactor(series); f > 3.0 {
		t.Fatalf("potential dropped by factor %.2f in one round", f)
	}
	// Consequently the run needed at least log2(n) - O(1) rounds.
	if res.Rounds < bits.Len(uint(n))-2 {
		t.Fatalf("finished in %d rounds, below the log n lower bound", res.Rounds)
	}
}

// Theorem 6.4 separation: on the increasing-order ring, the
// distributed GraphToStar pays Ω(n log n) total activations while the
// centralized strategy needs only Θ(n).
func TestDistributedVsCentralizedActivationGap(t *testing.T) {
	t.Parallel()
	for _, n := range []int{64, 128, 256} {
		g := graph.IncreasingRing(n)
		res, err := sim.Run(g, core.NewGraphToStarFactory())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		cent, err := baseline.EulerTourStrategy(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dist := float64(res.Metrics.TotalActivations)
		c := float64(cent.Metrics.TotalActivations)
		// The distributed cost grows superlinearly: at least c·n·log n
		// for a small c; the centralized cost stays ≤ 4n.
		if dist < 1.1*float64(n) {
			t.Errorf("n=%d: distributed activations %v suspiciously low", n, dist)
		}
		if c > 4*float64(n) {
			t.Errorf("n=%d: centralized activations %v not Θ(n)", n, c)
		}
		ratio := dist / c
		if ratio < 1.2 {
			t.Errorf("n=%d: no separation (ratio %.2f)", n, ratio)
		}
		_ = math.Log2
	}
}

func TestMinPotentialDropFactor(t *testing.T) {
	t.Parallel()
	if f := MinPotentialDropFactor([]int{8, 4, 2, 1}); f != 2.0 {
		t.Fatalf("factor = %v, want 2", f)
	}
	if f := MinPotentialDropFactor([]int{9, 3}); f != 3.0 {
		t.Fatalf("factor = %v, want 3", f)
	}
	if f := MinPotentialDropFactor([]int{5}); f != 1.0 {
		t.Fatalf("factor = %v, want 1", f)
	}
}
