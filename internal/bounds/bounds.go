// Package bounds instruments the paper's lower-bound machinery (§6,
// Appendix D): the potential function PO_{u,v} of Definition D.1 and a
// knowledge-propagation tracker, used to demonstrate empirically that
//
//   - Ω(log n) rounds are unavoidable on the spanning line (Lemma 6.1):
//     the potential drops by at most a factor ~2 plus 1 per round;
//   - O(log n)-time centralized strategies pay Ω(n) activations
//     (Lemma 6.2);
//   - distributed algorithms pay Ω(n log n) activations on the
//     increasing-order ring (Theorem 6.4).
package bounds

import (
	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/temporal"
)

// KnowledgeTracker follows which UIDs each node can possibly have
// learned, assuming maximally generous information flow: every message
// transfers the sender's entire knowledge set. This upper-bounds any
// real algorithm's knowledge, which is exactly what a lower-bound
// argument needs.
type KnowledgeTracker struct {
	knows map[graph.ID]map[graph.ID]bool
}

// NewKnowledgeTracker initializes each node knowing only its own UID.
func NewKnowledgeTracker(nodes []graph.ID) *KnowledgeTracker {
	k := &KnowledgeTracker{knows: make(map[graph.ID]map[graph.ID]bool, len(nodes))}
	for _, u := range nodes {
		k.knows[u] = map[graph.ID]bool{u: true}
	}
	return k
}

// Hook returns a sim.WithRoundHook callback that advances the tracker
// with every delivered message.
func (k *KnowledgeTracker) Hook() func(sim.RoundEvent) {
	return func(ev sim.RoundEvent) {
		// Transfer snapshots: messages within one round carry the
		// sender's knowledge from the round start.
		type delta struct {
			to   graph.ID
			uids []graph.ID
		}
		var deltas []delta
		for _, msg := range ev.Messages {
			src := k.knows[msg.From]
			uids := make([]graph.ID, 0, len(src))
			for u := range src {
				uids = append(uids, u)
			}
			deltas = append(deltas, delta{to: msg.To, uids: uids})
		}
		for _, d := range deltas {
			dst := k.knows[d.to]
			for _, u := range d.uids {
				dst[u] = true
			}
		}
	}
}

// Knows reports whether node w can possibly know UID u.
func (k *KnowledgeTracker) Knows(w, u graph.ID) bool { return k.knows[w][u] }

// Holders returns all nodes that can know UID u.
func (k *KnowledgeTracker) Holders(u graph.ID) []graph.ID {
	var out []graph.ID
	for w, set := range k.knows {
		if set[u] {
			out = append(out, w)
		}
	}
	return out
}

// Potential computes PO_{u,v} (Definition D.1) over the current
// snapshot: the minimum distance from any node that knows UID u to
// node v. It returns -1 if no holder can reach v.
func Potential(h *temporal.History, k *KnowledgeTracker, u, v graph.ID) int {
	cur := h.CurrentClone()
	dist := cur.BFS(v)
	best := -1
	for _, w := range k.Holders(u) {
		if d, ok := dist[w]; ok && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// PotentialSeries runs the machine on gs while recording PO_{u,v}
// after every round; it returns the series (index 0 = initial
// potential) together with the run result. The series is reconstructed
// post-run from the traced edge lists and the buffered message flow.
func PotentialSeries(gs *graph.Graph, factory sim.Factory, u, v graph.ID,
	opts ...sim.Option) ([]int, *sim.Result, error) {
	var perRound [][]sim.Message
	opts = append(opts,
		sim.WithTrace(),
		sim.WithRoundHook(func(ev sim.RoundEvent) {
			msgs := make([]sim.Message, len(ev.Messages))
			copy(msgs, ev.Messages)
			perRound = append(perRound, msgs)
		}))
	res, err := sim.Run(gs, factory, opts...)
	if err != nil {
		return nil, res, err
	}

	tracker := NewKnowledgeTracker(gs.Nodes())
	cur := gs.Clone()
	series := []int{potentialOn(cur, tracker, u, v)}
	for r := 1; r <= res.Rounds; r++ {
		if r-1 < len(perRound) {
			tracker.Hook()(sim.RoundEvent{Messages: perRound[r-1]})
		}
		act, deact, ok := res.History.TraceRound(r)
		if ok {
			for _, e := range act {
				cur.MustAddEdge(e.A, e.B)
			}
			for _, e := range deact {
				cur.RemoveEdge(e.A, e.B)
			}
		}
		series = append(series, potentialOn(cur, tracker, u, v))
	}
	return series, res, nil
}

// potentialOn computes PO_{u,v} over an explicit snapshot.
func potentialOn(cur *graph.Graph, k *KnowledgeTracker, u, v graph.ID) int {
	dist := cur.BFS(v)
	best := -1
	for _, w := range k.Holders(u) {
		if d, ok := dist[w]; ok && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// MinPotentialDropFactor examines a potential series and returns the
// largest per-round shrink factor observed, i.e. max over rounds of
// PO(i) / PO(i+1) ignoring the additive-1 information step. A
// factor bounded by ~2 across every round is the mechanism behind the
// Ω(log n) time lower bound of Lemma 6.1: halving per round is the
// best any strategy can do.
func MinPotentialDropFactor(series []int) float64 {
	worst := 1.0
	for i := 0; i+1 < len(series); i++ {
		cur, next := series[i], series[i+1]
		if cur <= 0 || next <= 0 {
			continue
		}
		f := float64(cur) / float64(next)
		if f > worst {
			worst = f
		}
	}
	return worst
}
