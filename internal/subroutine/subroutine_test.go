package subroutine

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/tasks"
)

// lineParents orients graph.Line(m) toward root m-1.
func lineParents(m int) map[graph.ID]graph.ID {
	parents := make(map[graph.ID]graph.ID, m)
	for i := 0; i < m-1; i++ {
		parents[graph.ID(i)] = graph.ID(i + 1)
	}
	parents[graph.ID(m-1)] = graph.ID(m - 1)
	return parents
}

func TestTreeToStarOnLine(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 4, 7, 16, 33, 100, 257} {
		parents := lineParents(n)
		res, err := sim.Run(graph.Line(n), NewTreeToStarFactory(parents),
			sim.WithConnectivityCheck())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		root := graph.ID(n - 1)
		final := res.History.CurrentClone()
		if !final.IsStarCentered(root) {
			t.Fatalf("n=%d: final graph is not a star centered at %d: %v", n, root, final)
		}
		if leader, ok := res.Leader(); !ok || leader != root {
			t.Fatalf("n=%d: leader = %v, %v", n, leader, ok)
		}
		// Proposition 2.1: ⌈log d⌉ rounds plus O(1) for the TERM wave.
		d := n - 1
		want := bits.Len(uint(d)) + 3
		if res.Rounds > want {
			t.Fatalf("n=%d: %d rounds, want <= ⌈log d⌉+3 = %d", n, res.Rounds, want)
		}
		if res.Metrics.MaxActiveEdges > 2*n-3 && n > 2 {
			t.Fatalf("n=%d: max active edges %d > 2n-3 = %d", n, res.Metrics.MaxActiveEdges, 2*n-3)
		}
	}
}

func TestTreeToStarOnRandomTrees(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 15; i++ {
		n := 2 + rng.Intn(150)
		g := graph.RandomTree(n, rng)
		root := g.MaxID()
		parents, ok := g.SpanningTree(root)
		if !ok {
			t.Fatalf("spanning tree failed")
		}
		res, err := sim.Run(g, NewTreeToStarFactory(parents), sim.WithConnectivityCheck())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.History.CurrentClone().IsStarCentered(root) {
			t.Fatalf("n=%d: not a star", n)
		}
		d := graph.TreeDepth(parents)
		if d > 0 && res.Rounds > bits.Len(uint(d))+3 {
			t.Fatalf("n=%d depth=%d: %d rounds", n, d, res.Rounds)
		}
	}
}

func TestTreeToStarOnCaterpillar(t *testing.T) {
	t.Parallel()
	g := graph.Caterpillar(40, 3)
	root := graph.ID(39) // far end of the spine
	parents, ok := g.SpanningTree(root)
	if !ok {
		t.Fatal("spanning tree failed")
	}
	res, err := sim.Run(g, NewTreeToStarFactory(parents), sim.WithConnectivityCheck())
	if err != nil {
		t.Fatal(err)
	}
	if !res.History.CurrentClone().IsStarCentered(root) {
		t.Fatal("caterpillar did not collapse to a star")
	}
}

func TestTreeToStarEdgeComplexity(t *testing.T) {
	t.Parallel()
	n := 512
	res, err := sim.Run(graph.Line(n), NewTreeToStarFactory(lineParents(n)))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// O(n log n) total activations: each node hops at most ⌈log n⌉ times.
	bound := n * (bits.Len(uint(n)) + 1)
	if m.TotalActivations > bound {
		t.Fatalf("total activations %d > n·⌈log n⌉ %d", m.TotalActivations, bound)
	}
	if m.TotalActivations < n-2 {
		t.Fatalf("suspiciously few activations: %d", m.TotalActivations)
	}
	if m.MaxActiveEdges > 2*n-3 {
		t.Fatalf("max active edges %d > %d", m.MaxActiveEdges, 2*n-3)
	}
}

func runLineToTree(t *testing.T, m, b int, wake map[graph.ID]int) *sim.Result {
	t.Helper()
	factory, err := NewLineToTreeFactory(LineToTreeOptions{
		Branching: b,
		Parents:   lineParents(m),
		Wake:      wake,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(graph.Line(m), factory, sim.WithConnectivityCheck())
	if err != nil {
		t.Fatalf("m=%d b=%d: %v", m, b, err)
	}
	return res
}

func TestLineToCompleteBinaryTreeShapes(t *testing.T) {
	t.Parallel()
	for m := 1; m <= 130; m++ {
		res := runLineToTree(t, m, 2, nil)
		final := res.History.CurrentClone()
		root := graph.ID(m - 1)
		depth, err := final.CompleteAryTreeShape(root, 2)
		if err != nil {
			t.Fatalf("m=%d: %v (edges %v)", m, err, final.Edges())
		}
		if want := bits.Len(uint(m)) - 1; depth != want {
			t.Fatalf("m=%d: depth %d, want %d", m, depth, want)
		}
	}
}

func TestLineToCompleteBinaryTreeComplexity(t *testing.T) {
	t.Parallel()
	for _, m := range []int{64, 256, 1024} {
		res := runLineToTree(t, m, 2, nil)
		met := res.Metrics
		// Proposition 2.2: ⌈log d⌉ hop levels; our cadence spends 2
		// rounds per level plus constant startup and ladder releases.
		// Rounds runs to the fixed budget; the structure is done at
		// LastActivityRound.
		if met.LastActivityRound > 3*bits.Len(uint(m))+12 {
			t.Fatalf("m=%d: activity until round %d", m, met.LastActivityRound)
		}
		if met.MaxActiveEdges > 2*m-3 {
			t.Fatalf("m=%d: max active edges %d > 2m-3", m, met.MaxActiveEdges)
		}
		// Bounded degree (Prop 2.2: at most 4).
		if met.MaxActivatedDegree > 4 {
			t.Fatalf("m=%d: max activated degree %d > 4", m, met.MaxActivatedDegree)
		}
		if met.TotalActivations > m*bits.Len(uint(m)) {
			t.Fatalf("m=%d: activations %d > m log m", m, met.TotalActivations)
		}
	}
}

// adoptRounds mirrors the factory's compression-depth choice: the
// largest k whose root child count 2^(2^k+1)-2 still respects b.
func adoptRounds(b int) int {
	k := 0
	for rootCC := 6; b >= rootCC; rootCC = (rootCC+2)*(rootCC+2)/2 - 2 {
		k++
	}
	return k
}

func TestLineToPolylogTreeShapes(t *testing.T) {
	t.Parallel()
	for _, b := range []int{3, 4, 8, 16} {
		for _, m := range []int{1, 2, 5, 9, 17, 40, 81, 150, 301} {
			res := runLineToTree(t, m, b, nil)
			final := res.History.CurrentClone()
			root := graph.ID(m - 1)
			if !final.IsTree() {
				t.Fatalf("m=%d b=%d: not a tree", m, b)
			}
			// Depth: the binary build reaches ⌈log2(m+1)⌉-1, then each
			// of the k compression rounds halves it.
			binDepth := bits.Len(uint(m)) - 1
			wantDepth := binDepth
			for k := adoptRounds(b); k > 0; k-- {
				wantDepth = (wantDepth + 1) / 2
			}
			if depth := final.Eccentricity(root); depth > wantDepth {
				t.Fatalf("m=%d b=%d: depth %d > %d", m, b, depth, wantDepth)
			}
			// Branching: every node at most b children.
			for _, u := range final.Nodes() {
				limit := b + 1
				if u == root {
					limit = b
				}
				if final.Degree(u) > limit {
					t.Fatalf("m=%d b=%d: node %d has degree %d (> b)", m, b, u, final.Degree(u))
				}
			}
		}
	}
}

func TestPolylogTreeDiameterShrinks(t *testing.T) {
	t.Parallel()
	m := 600
	resBin := runLineToTree(t, m, 2, nil)
	resPoly := runLineToTree(t, m, 10, nil)
	dBin := resBin.History.CurrentClone().Eccentricity(graph.ID(m - 1))
	dPoly := resPoly.History.CurrentClone().Eccentricity(graph.ID(m - 1))
	if dPoly >= dBin {
		t.Fatalf("polylog tree depth %d should beat binary depth %d", dPoly, dBin)
	}
	if dPoly > (dBin+1)/2 { // one compression round for b=10
		t.Fatalf("b=10 depth %d, want <= %d", dPoly, (dBin+1)/2)
	}
}

// Lemma B.4: the asynchronous execution produces exactly the edge set
// of the synchronous one, for any wake schedule.
func TestAsyncMatchesSyncProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, rawM uint8, rawMaxWake uint8) bool {
		m := int(rawM)%90 + 1
		maxWake := int(rawMaxWake) % 12
		rng := rand.New(rand.NewSource(seed))
		wake := make(map[graph.ID]int, m)
		for i := 0; i < m; i++ {
			wake[graph.ID(i)] = rng.Intn(maxWake + 1)
		}
		syncFactory, err := NewLineToTreeFactory(LineToTreeOptions{Branching: 2, Parents: lineParents(m)})
		if err != nil {
			return false
		}
		asyncFactory, err := NewLineToTreeFactory(LineToTreeOptions{Branching: 2, Parents: lineParents(m), Wake: wake})
		if err != nil {
			return false
		}
		syncRes, err := sim.Run(graph.Line(m), syncFactory)
		if err != nil {
			return false
		}
		asyncRes, err := sim.Run(graph.Line(m), asyncFactory)
		if err != nil {
			return false
		}
		return tasks.SameEdges(syncRes.History.CurrentClone(), asyncRes.History.CurrentClone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncStaggeredWakeStillCompletes(t *testing.T) {
	t.Parallel()
	// Adversarial schedule: nodes wake in reverse line order.
	m := 64
	wake := make(map[graph.ID]int, m)
	for i := 0; i < m; i++ {
		wake[graph.ID(i)] = (m - 1 - i) % 16
	}
	res := runLineToTree(t, m, 2, wake)
	if _, err := res.History.CurrentClone().CompleteAryTreeShape(graph.ID(m-1), 2); err != nil {
		t.Fatalf("staggered wake broke the tree: %v", err)
	}
}

func TestLineToTreeFactoryValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewLineToTreeFactory(LineToTreeOptions{Branching: 1, Parents: lineParents(3)}); err == nil {
		t.Error("branching 1 accepted")
	}
	if _, err := NewLineToTreeFactory(LineToTreeOptions{Branching: 2}); err == nil {
		t.Error("empty parents accepted")
	}
	bad := lineParents(4)
	bad[0] = 0 // second root
	if _, err := NewLineToTreeFactory(LineToTreeOptions{Branching: 2, Parents: bad}); err == nil {
		t.Error("two roots accepted")
	}
}

func TestLineToTreeElectsRootLeader(t *testing.T) {
	t.Parallel()
	res := runLineToTree(t, 33, 2, nil)
	leader, ok := res.Leader()
	if !ok || leader != 32 {
		t.Fatalf("leader = %v, %v; want 32, true", leader, ok)
	}
}
