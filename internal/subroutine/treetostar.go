// Package subroutine implements the paper's basic building blocks
// (§2.3, Appendices A and B): TreeToStar and the Line-To-Complete-
// Binary-Tree family, including the asynchronous variant driven by the
// EA/DEA counters of Appendix B and the polylogarithmic-branching
// variant used by GraphToThinWreath (§5).
//
// All subroutines are plain sim.Machine node programs: they run on the
// same engine, obey the same distance-2 activation rule and are
// measured by the same edge-complexity accounting as the main
// algorithms that embed them.
package subroutine

import (
	"adnet/internal/graph"
	"adnet/internal/sim"
)

// treeToStarState is broadcast by every TreeToStar node each round.
type treeToStarState struct {
	Parent graph.ID
	IsRoot bool
}

// treeToStarTerm is the root's termination wave, broadcast once every
// node has attached to the root.
type treeToStarTerm struct{}

// TreeToStar is the §2.3 subroutine: starting from a rooted tree in
// which every node knows its parent, every node repeatedly activates
// an edge to its grandparent and deactivates the edge to its parent,
// until it is adjacent to the root. The tree collapses into a spanning
// star centered at the root in ⌈log d⌉ rounds (Proposition 2.1).
//
// Nodes that reach the root keep broadcasting their state — late
// descendants still route their hops through them — and halt on the
// root's termination wave, which the root raises once its degree
// reaches n-1.
type TreeToStar struct {
	parent graph.ID // current parent; == own ID at the root
	root   bool
	placed bool // adjacent to the root; no more hops
	finish bool // root only: full degree observed, TERM goes out next
}

var _ sim.Machine = (*TreeToStar)(nil)

// NewTreeToStarFactory builds machines from a parent map (root maps to
// itself), e.g. the output of graph.SpanningTree.
func NewTreeToStarFactory(parent map[graph.ID]graph.ID) sim.Factory {
	return func(id graph.ID, _ sim.Env) sim.Machine {
		p := parent[id]
		return &TreeToStar{parent: p, root: p == id}
	}
}

// Init implements sim.Machine.
func (m *TreeToStar) Init(ctx *sim.Context) {
	if m.root {
		ctx.SetStatus(sim.StatusLeader)
	} else {
		ctx.SetStatus(sim.StatusFollower)
	}
}

// Send implements sim.Machine.
func (m *TreeToStar) Send(ctx *sim.Context) {
	if m.root && m.finish {
		ctx.Broadcast(treeToStarTerm{})
		return
	}
	ctx.Broadcast(treeToStarState{Parent: m.parent, IsRoot: m.root})
}

// Receive implements sim.Machine.
func (m *TreeToStar) Receive(ctx *sim.Context, inbox []sim.Message) {
	if m.root {
		if m.finish {
			// TERM was broadcast this round; everyone else halts on it.
			ctx.Halt()
			return
		}
		if ctx.Degree() == ctx.N()-1 {
			m.finish = true
		}
		return
	}
	// Pick out this round's message from the current parent before
	// acting: hopping mid-scan could otherwise match a message from the
	// new parent in the same inbox and hop twice in one round.
	var parentState *treeToStarState
	for i := range inbox {
		switch st := inbox[i].Payload.(type) {
		case treeToStarTerm:
			ctx.Halt()
			return
		case treeToStarState:
			if inbox[i].From == m.parent {
				parentState = &st
			}
		}
	}
	if m.placed || parentState == nil {
		return
	}
	if parentState.IsRoot {
		// Adjacent to the root: final position. Keep relaying state
		// for late-arriving children until TERM.
		m.placed = true
		return
	}
	// Hop: activate the grandparent edge over the (still active)
	// parent and parent→grandparent edges, then drop the parent edge.
	// Both edges are validated against the start-of-round snapshot, so
	// the simultaneous hop of the parent does not invalidate the
	// witness.
	ctx.Activate(parentState.Parent)
	ctx.Deactivate(m.parent)
	m.parent = parentState.Parent
}
