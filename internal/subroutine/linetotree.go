package subroutine

import (
	"fmt"
	"math/bits"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

// treeMsg is the per-round state broadcast of LineToTree nodes. All
// fields describe the sender at the beginning of the round; the
// Parent*/Old* fields forward the sender's latest knowledge about its
// own (old) parent, which is what lets a node reason about its
// grandparent without being adjacent to it.
type treeMsg struct {
	EA, DEA   int
	HasParent bool
	Parent    graph.ID
	Children  []graph.ID // attach order; index 0 is the firstborn

	ParentCC     int // grandparent child count (in-flight corrected); -1 unknown
	AmFirstChild bool
	ParentAwake  bool

	HasOld        bool
	OldParent     graph.ID
	OldParentCC   int // -1 unknown
	OldParentWake bool
	// LadderPending is true while the sender still expects one of its
	// children to climb through its retained old-parent edge; the old
	// parent must not release its own ladder before that climb lands.
	LadderPending bool
}

// LineToTree is the §2.3 / Appendix B subroutine family: it transforms
// an oriented line (every node knows its parent, the neighbor closer
// to the root) into a complete b-ary tree rooted at the line's
// endpoint.
//
//   - b == 2 is LineToCompleteBinaryTree (Proposition 2.2).
//   - b == ⌈log2 n⌉ is LineToCompletePolylogarithmicTree (§5).
//
// The machine follows the Appendix B discipline: odd rounds activate,
// even rounds deactivate, and per-node counters EA (edges activated)
// and DEA (edges deactivated) gate every action. A node u with parent
// v climbs by one of three moves, all with witness path u–v–target:
//
//   - aligned (EA_v == EA_u): hop to v's current parent — the
//     synchronous doubling step;
//   - ladder (EA_v == EA_u + 1): hop to v's old, not-yet-deactivated
//     parent. This is why the model retains the previous parent edge:
//     it is the ladder a lagging child climbs through (the condition
//     EA_x = DEA_u + 1 in the paper's deactivation rule is precisely
//     "my child has used the ladder");
//   - catch-up (EA_v < EA_u): hop past a permanently stopped parent
//     (e.g. a child of the root) to its current parent.
//
// Every move additionally requires the node to be its parent's
// firstborn, the target's child count (forwarded, corrected by
// departures in flight) to be below b, and the node's own ladder to be
// clean (DEA_u == EA_u). The handshake keeps |EA_u − EA_v| ≤ 1, so the
// three cases are exhaustive.
//
// The synchronous subroutine is the special case in which every node
// wakes at round 0; arbitrary wake rounds give the asynchronous
// variant, whose final edge set must equal the synchronous one
// (Lemma B.4) — enforced by property tests.
type LineToTree struct {
	b         int
	wake      int
	budget    int
	stage1End int // last round of the binary build; compression follows
	adoptK    int // number of adopt-grandchildren compression rounds
	selfID    graph.ID
	embedded  bool                     // hosted by a larger machine: never halt the node
	keep      func(peer graph.ID) bool // edges exempt from physical deactivation

	isRoot    bool
	parent    graph.ID
	oldParent graph.ID
	hasOld    bool
	ea, dea   int

	children []graph.ID // attach order
	childEA  map[graph.ID]int
	heard    map[graph.ID]treeMsg

	// inflight records departed children by the parent they claimed,
	// until that parent's broadcast child list includes them. It makes
	// the forwarded child counts immune to the one-round lag between
	// an arrival's hop and the target learning of it.
	inflight map[graph.ID]map[graph.ID]bool
}

var _ sim.Machine = (*LineToTree)(nil)

// LineToTreeOptions configures NewLineToTreeFactory.
type LineToTreeOptions struct {
	// Branching is the target arity b (>= 2).
	Branching int
	// Parents orients the initial line: each node maps to its
	// neighbor on the root side; the root maps to itself.
	Parents map[graph.ID]graph.ID
	// Wake optionally delays nodes (asynchronous variant). Nil or
	// missing entries mean round 0.
	Wake map[graph.ID]int
	// Budget overrides the computed round budget (0 = automatic).
	Budget int
}

// NewLineToTreeFactory validates the options and returns the factory.
func NewLineToTreeFactory(opts LineToTreeOptions) (sim.Factory, error) {
	if opts.Branching < 2 {
		return nil, fmt.Errorf("subroutine: branching %d < 2", opts.Branching)
	}
	if len(opts.Parents) == 0 {
		return nil, fmt.Errorf("subroutine: empty parent map")
	}
	roots := 0
	for u, p := range opts.Parents {
		if u == p {
			roots++
		}
	}
	if roots != 1 {
		return nil, fmt.Errorf("subroutine: parent map has %d roots, want 1", roots)
	}
	m := len(opts.Parents)
	maxWake := 0
	for _, w := range opts.Wake {
		if w > maxWake {
			maxWake = w
		}
	}
	// Stage 1 (binary build): ~2 rounds per hop level with
	// ⌈log2 m⌉+O(1) levels, doubled for ladder interleaving, plus wake
	// skew and slack. Stage 2 (compression, b > 2 only): k rounds of
	// grandchild adoption, each halving the depth and squaring the
	// branching — k is the largest value whose root child count
	// 2^(2^k + 1) − 2 still respects b. This is the log log n lever of
	// §5: depth drops from log m to ~log m / log b.
	stage1End := 4*(bits.Len(uint(m))+3) + maxWake + 8
	k := adoptK(opts.Branching)
	budget := opts.Budget
	if budget == 0 {
		budget = stage1End + 2*k + 4
	}
	// Initial children: invert the parent map, giving each node its
	// unique line child (the neighbor away from the root).
	childOf := make(map[graph.ID]graph.ID, m)
	for u, p := range opts.Parents {
		if u != p {
			childOf[p] = u
		}
	}
	return func(id graph.ID, _ sim.Env) sim.Machine {
		lt := &LineToTree{
			b:         opts.Branching,
			wake:      opts.Wake[id],
			budget:    budget,
			stage1End: stage1End,
			adoptK:    k,
			isRoot:    opts.Parents[id] == id,
			parent:    opts.Parents[id],
			childEA:   make(map[graph.ID]int),
			heard:     make(map[graph.ID]treeMsg),
			inflight:  make(map[graph.ID]map[graph.ID]bool),
		}
		if c, ok := childOf[id]; ok {
			lt.children = append(lt.children, c)
			lt.childEA[c] = 0
		}
		return lt
	}, nil
}

// Init implements sim.Machine.
func (m *LineToTree) Init(ctx *sim.Context) {
	m.selfID = ctx.ID()
	if m.isRoot {
		ctx.SetStatus(sim.StatusLeader)
	} else {
		ctx.SetStatus(sim.StatusFollower)
	}
}

// Send implements sim.Machine.
func (m *LineToTree) Send(ctx *sim.Context) {
	if ctx.Round() <= m.wake {
		return // still asleep
	}
	msg := treeMsg{
		EA:        m.ea,
		DEA:       m.dea,
		HasParent: !m.isRoot,
		Parent:    m.parent,
		Children:  append([]graph.ID(nil), m.children...),
		ParentCC:  -1, OldParentCC: -1,
		HasOld:    m.hasOld,
		OldParent: m.oldParent,
	}
	if m.hasOld {
		for _, c := range m.children {
			ea, known := m.childEA[c]
			if !known || ea <= m.dea {
				msg.LadderPending = true
				break
			}
		}
	}
	if !m.isRoot {
		if st, ok := m.heard[m.parent]; ok {
			msg.ParentAwake = true
			msg.ParentCC = m.correctedCC(m.parent, st.Children)
			msg.AmFirstChild = len(st.Children) > 0 && st.Children[0] == m.selfID
		}
	}
	if m.hasOld {
		if st, ok := m.heard[m.oldParent]; ok {
			msg.OldParentWake = true
			msg.OldParentCC = m.correctedCC(m.oldParent, st.Children)
		}
	}
	ctx.Broadcast(msg)
}

// correctedCC returns the child count of node t given its broadcast
// child list, adding departures of our own children toward t that t
// has not yet registered.
func (m *LineToTree) correctedCC(t graph.ID, listed []graph.ID) int {
	pending := m.inflight[t]
	if len(pending) == 0 {
		return len(listed)
	}
	inList := make(map[graph.ID]bool, len(listed))
	for _, c := range listed {
		inList[c] = true
	}
	cc := len(listed)
	for c := range pending {
		if inList[c] {
			delete(pending, c) // registered: stop correcting
		} else {
			cc++
		}
	}
	return cc
}

// Receive implements sim.Machine.
func (m *LineToTree) Receive(ctx *sim.Context, inbox []sim.Message) {
	round := ctx.Round()
	if round >= m.budget {
		if !m.embedded {
			ctx.Halt()
		}
		return
	}
	if round <= m.wake {
		return // asleep: ignore everything, touch nothing
	}

	clear(m.heard)
	for _, msg := range inbox {
		if st, ok := msg.Payload.(treeMsg); ok {
			m.heard[msg.From] = st
		}
	}
	m.refreshChildren()

	if round > m.stage1End {
		// Stage 2 (b > 2): compression. Every node with a grandparent
		// hops to it — one TreeToStar-style step per adoption slot —
		// which halves the depth and squares the branching.
		t := round - m.stage1End
		if t%2 == 0 && t/2 <= m.adoptK {
			m.adoptHop(ctx)
		}
		return
	}

	if round%2 == 1 {
		m.maybeActivate(ctx)
	} else {
		m.maybeDeactivate(ctx)
	}
}

// adoptHop performs one depth-halving step: climb to the grandparent
// and release the parent edge, exactly like TreeToStar but bounded to
// adoptK repetitions.
func (m *LineToTree) adoptHop(ctx *sim.Context) {
	if m.isRoot {
		return
	}
	v, ok := m.heard[m.parent]
	if !ok || !v.HasParent || v.Parent == m.selfID {
		return // parent is the root: already at depth 1
	}
	ctx.Activate(v.Parent)
	if m.keep == nil || !m.keep(m.parent) {
		ctx.Deactivate(m.parent)
	}
	m.parent = v.Parent
}

// refreshChildren integrates this round's parent claims: a node is our
// child exactly while it declares us as its parent. Asleep children
// (no broadcast yet) stay listed — silence is not departure.
func (m *LineToTree) refreshChildren() {
	kept := m.children[:0]
	for _, c := range m.children {
		st, ok := m.heard[c]
		if ok && (!st.HasParent || st.Parent != m.selfID) {
			delete(m.childEA, c)
			// Track the departure for child-count correction.
			if st.HasParent {
				if m.inflight[st.Parent] == nil {
					m.inflight[st.Parent] = make(map[graph.ID]bool)
				}
				m.inflight[st.Parent][c] = true
			}
			continue
		}
		if ok {
			m.childEA[c] = st.EA
		}
		kept = append(kept, c)
	}
	m.children = kept
	// Append new claimants in deterministic (ascending sender) order.
	for _, from := range sortedKeys(m.heard) {
		st := m.heard[from]
		if st.HasParent && st.Parent == m.selfID && !m.hasChild(from) {
			m.children = append(m.children, from)
			m.childEA[from] = st.EA
		}
	}
}

func (m *LineToTree) maybeActivate(ctx *sim.Context) {
	if m.isRoot || m.dea != m.ea {
		return // dirty ladder: the old parent edge must go first
	}
	v, ok := m.heard[m.parent] // parent must be awake this round
	if !ok {
		return
	}
	if len(v.Children) == 0 || v.Children[0] != m.selfID {
		return // only the firstborn climbs
	}

	var target graph.ID
	var targetCC int
	switch {
	case v.EA == m.ea:
		// Aligned: synchronous doubling step to v's current parent.
		if !v.HasParent || !v.ParentAwake || !v.AmFirstChild {
			return
		}
		target, targetCC = v.Parent, v.ParentCC
	case v.EA == m.ea+1:
		// Ladder: climb through v's retained old parent edge.
		if !v.HasOld || !v.OldParentWake {
			return
		}
		target, targetCC = v.OldParent, v.OldParentCC
	default:
		// v is behind (EA_v < EA_u): wait for it to catch up — the
		// positional invariant of Lemma B.4 forbids overtaking.
		return
	}
	if targetCC < 0 || targetCC >= 2 {
		return // unknown or full grandparent (stage 1 is binary)
	}
	if target == m.selfID {
		return // degenerate two-node corner: nothing above to climb
	}
	ctx.Activate(target)
	m.oldParent = m.parent
	m.hasOld = true
	m.parent = target
	m.ea++
}

var debugNode graph.ID = -1

func (m *LineToTree) maybeDeactivate(ctx *sim.Context) {
	dbg := m.selfID == debugNode
	if !m.hasOld || m.ea != m.dea+1 {
		if dbg {
			println("r", ctx.Round(), "no-old-or-misaligned", m.hasOld, m.ea, m.dea)
		}
		return
	}
	// Children at EA == DEA_u may still need the old edge as the
	// ladder for their next hop (their climb target IS our old
	// parent); cut only once every child has climbed past it
	// (EA_x >= DEA_u + 1, the paper's EA_x = DEA_u + 1 condition
	// generalized to several children). Unknown (asleep) children
	// block conservatively.
	for _, c := range m.children {
		ea, ok := m.childEA[c]
		if !ok || ea <= m.dea {
			if dbg {
				println("r", ctx.Round(), "child-block", int(c), ea, ok)
			}
			return
		}
	}
	// A neighbor that still holds its own pending ladder INTO us can
	// deliver a late-arriving child (a lagging descendant climbs
	// through that retained edge and lands here needing our ladder
	// next) — and a silent neighbor might be exactly that, still
	// asleep. Both block the cut; this is the message-passing
	// realization of the paper's "u, v, x are awake" guard.
	for _, nb := range ctx.Neighbors() {
		st, heardNb := m.heard[nb]
		if !heardNb {
			if dbg {
				println("r", ctx.Round(), "silent-block", int(nb))
			}
			return
		}
		if st.HasOld && st.OldParent == m.selfID && st.LadderPending {
			if dbg {
				println("r", ctx.Round(), "inladder-block", int(nb))
			}
			return
		}
	}
	if m.keep == nil || !m.keep(m.oldParent) {
		ctx.Deactivate(m.oldParent)
	}
	m.hasOld = false
	m.dea++
}

func (m *LineToTree) hasChild(id graph.ID) bool {
	for _, c := range m.children {
		if c == id {
			return true
		}
	}
	return false
}

func sortedKeys(ms map[graph.ID]treeMsg) []graph.ID {
	out := make([]graph.ID, 0, len(ms))
	for k := range ms {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
