package subroutine

import (
	"math/bits"

	"adnet/internal/graph"
)

// EmbeddedConfig builds a single LineToTree node for embedding inside
// a larger protocol — GraphToWreath and GraphToThinWreath run the
// line-to-tree rebuild as a window of their phase, delegating Send and
// Receive to an embedded instance.
type EmbeddedConfig struct {
	Self      graph.ID
	Branching int
	// Parent is the neighbor toward the line root; ignored if IsRoot.
	Parent graph.ID
	IsRoot bool
	// Child is the neighbor away from the root, if any.
	Child    graph.ID
	HasChild bool
	// StartRound is the first absolute engine round of the window; the
	// node acts from that round on.
	StartRound int
	// SizeBound is an upper bound on the line length, fixing the
	// budget (window length) identically at every node.
	SizeBound int
	// KeepEdge, if set, names edges that must never be physically
	// deactivated (the host's ring and original edges); the logical
	// counter discipline proceeds regardless.
	KeepEdge func(peer graph.ID) bool
}

// EmbeddedWindow returns the number of rounds an embedded rebuild
// window needs for the given size bound and branching: the binary
// build plus the compression stage.
func EmbeddedWindow(sizeBound, branching int) int {
	stage1 := 4*(bits.Len(uint(sizeBound))+3) + 8
	return stage1 + 2*adoptK(branching) + 4
}

// adoptK is the number of adopt-grandchildren compression rounds for
// branching b: the largest k whose root child count 2^(2^k+1)-2 still
// respects b.
func adoptK(b int) int {
	k := 0
	for rootCC := 6; b >= rootCC; rootCC = (rootCC+2)*(rootCC+2)/2 - 2 {
		k++
	}
	return k
}

// NewEmbedded constructs a LineToTree node outside the factory path.
// The caller is responsible for invoking Send and Receive during
// [StartRound, StartRound+EmbeddedWindow) and may read the final tree
// via FinalParent/FinalChildren afterwards. The embedded node never
// halts the hosting machine.
func NewEmbedded(cfg EmbeddedConfig) *LineToTree {
	base := cfg.StartRound - 1
	stage1 := 4*(bits.Len(uint(cfg.SizeBound))+3) + 8
	lt := &LineToTree{
		b:         cfg.Branching,
		wake:      base,
		budget:    base + stage1 + 2*adoptK(cfg.Branching) + 4,
		stage1End: base + stage1,
		adoptK:    adoptK(cfg.Branching),
		selfID:    cfg.Self,
		isRoot:    cfg.IsRoot,
		parent:    cfg.Parent,
		childEA:   make(map[graph.ID]int),
		heard:     make(map[graph.ID]treeMsg),
		inflight:  make(map[graph.ID]map[graph.ID]bool),
		embedded:  true,
		keep:      cfg.KeepEdge,
	}
	if cfg.IsRoot {
		lt.parent = cfg.Self
	}
	if cfg.HasChild {
		lt.children = append(lt.children, cfg.Child)
		lt.childEA[cfg.Child] = 0
	}
	return lt
}

// FinalParent returns the node's current tree parent and whether it is
// the root. Meaningful once the rebuild window has ended.
func (m *LineToTree) FinalParent() (graph.ID, bool) { return m.parent, m.isRoot }

// FinalChildren returns the node's current children in attach order.
func (m *LineToTree) FinalChildren() []graph.ID {
	return append([]graph.ID(nil), m.children...)
}

// Done reports whether the window budget has passed at the given
// absolute round.
func (m *LineToTree) Done(round int) bool { return round >= m.budget }
