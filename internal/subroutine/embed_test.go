package subroutine

import (
	"testing"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

// embedHost drives an embedded LineToTree instance from a host
// machine, mimicking how GraphToWreath delegates its rebuild window.
type embedHost struct {
	inner *LineToTree
}

func (h *embedHost) Init(ctx *sim.Context) {}
func (h *embedHost) Send(ctx *sim.Context) { h.inner.Send(ctx) }
func (h *embedHost) Receive(ctx *sim.Context, inbox []sim.Message) {
	h.inner.Receive(ctx, inbox)
	if h.inner.Done(ctx.Round()) {
		ctx.Halt()
	}
}

func TestEmbeddedLineToTree(t *testing.T) {
	t.Parallel()
	m := 33
	factory := func(id graph.ID, _ sim.Env) sim.Machine {
		cfg := EmbeddedConfig{
			Self:       id,
			Branching:  2,
			StartRound: 1,
			SizeBound:  m,
		}
		if id == graph.ID(m-1) {
			cfg.IsRoot = true
		} else {
			cfg.Parent = id + 1
		}
		if id > 0 {
			cfg.Child = id - 1
			cfg.HasChild = true
		}
		return &embedHost{inner: NewEmbedded(cfg)}
	}
	res, err := sim.Run(graph.Line(m), factory)
	if err != nil {
		t.Fatal(err)
	}
	final := res.History.CurrentClone()
	if _, err := final.CompleteAryTreeShape(graph.ID(m-1), 2); err != nil {
		t.Fatalf("embedded rebuild broken: %v", err)
	}
	// The getters expose a consistent tree.
	for id, mach := range res.Machines {
		inner := mach.(*embedHost).inner
		parent, isRoot := inner.FinalParent()
		if isRoot != (id == graph.ID(m-1)) {
			t.Errorf("node %d: isRoot=%v", id, isRoot)
		}
		if !isRoot && !final.HasEdge(id, parent) {
			t.Errorf("node %d: parent edge {%d,%d} missing", id, id, parent)
		}
		for _, c := range inner.FinalChildren() {
			if !final.HasEdge(id, c) {
				t.Errorf("node %d: child edge to %d missing", id, c)
			}
		}
	}
}

func TestEmbeddedKeepEdge(t *testing.T) {
	t.Parallel()
	// With KeepEdge covering the line edges, the rebuild must leave
	// every original edge active (the wreath's ring survival property).
	m := 17
	factory := func(id graph.ID, _ sim.Env) sim.Machine {
		cfg := EmbeddedConfig{
			Self:       id,
			Branching:  2,
			StartRound: 1,
			SizeBound:  m,
			KeepEdge: func(peer graph.ID) bool {
				return peer == id-1 || peer == id+1 // line edges
			},
		}
		if id == graph.ID(m-1) {
			cfg.IsRoot = true
		} else {
			cfg.Parent = id + 1
		}
		if id > 0 {
			cfg.Child = id - 1
			cfg.HasChild = true
		}
		return &embedHost{inner: NewEmbedded(cfg)}
	}
	res, err := sim.Run(graph.Line(m), factory)
	if err != nil {
		t.Fatal(err)
	}
	final := res.History.CurrentClone()
	for i := 0; i+1 < m; i++ {
		if !final.HasEdge(graph.ID(i), graph.ID(i+1)) {
			t.Fatalf("protected line edge {%d,%d} was deactivated", i, i+1)
		}
	}
	// And the logical tree on top is still complete: check via the
	// pointer getters rather than raw edges (the line edges overlay).
	tree := graph.New()
	for id, mach := range res.Machines {
		tree.AddNode(id)
		inner := mach.(*embedHost).inner
		if p, isRoot := inner.FinalParent(); !isRoot {
			tree.MustAddEdge(id, p)
		}
	}
	if _, err := tree.CompleteAryTreeShape(graph.ID(m-1), 2); err != nil {
		t.Fatalf("pointer tree broken: %v", err)
	}
}

func TestEmbeddedWindowMatchesBudget(t *testing.T) {
	t.Parallel()
	for _, b := range []int{2, 8, 32} {
		w := EmbeddedWindow(1000, b)
		lt := NewEmbedded(EmbeddedConfig{Self: 0, Branching: b, IsRoot: true, StartRound: 5, SizeBound: 1000})
		if !lt.Done(5 + w) {
			t.Errorf("b=%d: not done after its own window", b)
		}
		if lt.Done(5 + w - 2) {
			t.Errorf("b=%d: done too early", b)
		}
	}
}
