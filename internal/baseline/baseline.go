// Package baseline implements the comparison points the paper
// positions its algorithms against:
//
//   - the trivial clique-formation strategy of §1.2 (time optimal,
//     edge-complexity maximal);
//   - pure flooding over the static network (zero activations,
//     Θ(diameter) time — the "don't reconfigure" end of the tradeoff);
//   - the centralized strategies of §6/Appendix D: CutInHalf on a
//     spanning line and the Euler-tour construction of Theorem 6.3,
//     which achieve Θ(n) total activations — the separation the
//     distributed Ω(n log n) lower bound (Theorem 6.4) is measured
//     against.
//
// The centralized strategies manipulate the temporal graph directly
// through temporal.History, so they obey exactly the same model rules
// (distance-2 activation, per-round accounting) as the distributed
// algorithms.
package baseline

import (
	"fmt"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/temporal"
)

// CliqueMachine is the §1.2 strategy: every round, every node activates
// edges to all of its potential neighbors (distance-2 nodes). A
// spanning clique forms in ⌈log n⌉ rounds at a Θ(n²) edge cost. After
// the clique forms, the maximum UID declares itself leader and all
// nodes halt — one additional round, as the paper notes.
type CliqueMachine struct {
	known map[graph.ID]bool
}

var _ sim.Machine = (*CliqueMachine)(nil)

// NewCliqueFactory returns the clique-formation factory.
func NewCliqueFactory() sim.Factory {
	return func(id graph.ID, _ sim.Env) sim.Machine {
		return &CliqueMachine{known: map[graph.ID]bool{id: true}}
	}
}

// Init implements sim.Machine.
func (m *CliqueMachine) Init(*sim.Context) {}

// Send implements sim.Machine.
func (m *CliqueMachine) Send(ctx *sim.Context) {
	ctx.Broadcast(ctx.Neighbors())
}

// Receive implements sim.Machine.
func (m *CliqueMachine) Receive(ctx *sim.Context, inbox []sim.Message) {
	self := ctx.ID()
	for _, v := range ctx.Neighbors() {
		m.known[v] = true
	}
	grew := false
	for _, msg := range inbox {
		for _, w := range msg.Payload.([]graph.ID) {
			if w != self && !m.known[w] {
				m.known[w] = true
				ctx.Activate(w)
				grew = true
			}
		}
	}
	if !grew && ctx.Degree() == ctx.N()-1 {
		// Clique complete: elect max UID, one extra round of logic.
		max := self
		for v := range m.known {
			if v > max {
				max = v
			}
		}
		if max == self {
			ctx.SetStatus(sim.StatusLeader)
		} else {
			ctx.SetStatus(sim.StatusFollower)
		}
		ctx.Halt()
	}
}

// FloodMachine floods all known UIDs over the static network without
// activating any edge: Θ(diameter) rounds, zero edge complexity. It
// demonstrates the other end of the tradeoff: without reconfiguration,
// linear time on a line.
type FloodMachine struct {
	known   map[graph.ID]bool
	lastNew int
}

var _ sim.Machine = (*FloodMachine)(nil)

// NewFloodFactory returns the flooding factory. Nodes halt after the
// token set has been stable for two rounds and they have seen n tokens.
func NewFloodFactory() sim.Factory {
	return func(id graph.ID, _ sim.Env) sim.Machine {
		return &FloodMachine{known: map[graph.ID]bool{id: true}}
	}
}

// Known returns the set of tokens gathered so far (read-only view for
// verifiers).
func (m *FloodMachine) Known() map[graph.ID]bool { return m.known }

// Init implements sim.Machine.
func (m *FloodMachine) Init(*sim.Context) {}

// Send implements sim.Machine.
func (m *FloodMachine) Send(ctx *sim.Context) {
	tokens := make([]graph.ID, 0, len(m.known))
	for v := range m.known {
		tokens = append(tokens, v)
	}
	ctx.Broadcast(tokens)
}

// Receive implements sim.Machine.
func (m *FloodMachine) Receive(ctx *sim.Context, inbox []sim.Message) {
	for _, msg := range inbox {
		for _, v := range msg.Payload.([]graph.ID) {
			if !m.known[v] {
				m.known[v] = true
				m.lastNew = ctx.Round()
			}
		}
	}
	// Halt only after the token set has been quiet for two rounds: a
	// node that still receives new tokens is still on some other
	// node's dissemination path and must keep relaying.
	if len(m.known) == ctx.N() && ctx.Round() >= m.lastNew+2 {
		max := ctx.ID()
		for v := range m.known {
			if v > max {
				max = v
			}
		}
		if max == ctx.ID() {
			ctx.SetStatus(sim.StatusLeader)
		} else {
			ctx.SetStatus(sim.StatusFollower)
		}
		ctx.Halt()
	}
}

// CentralizedResult reports a centralized strategy's outcome.
type CentralizedResult struct {
	History *temporal.History
	Metrics temporal.Metrics
	Root    graph.ID
	Depth   int
}

// CutInHalfLine is the Appendix D strategy on a spanning line
// u_0 … u_{n-1}: in phase i it activates the edges u_j u_{j+2^i} for
// j ≡ 0 (mod 2^i), giving Θ(n) total activations (Σ n/2^i) and ⌈log n⌉
// rounds. The final graph contains a depth-⌈log n⌉ tree rooted at one
// endpoint; non-tree edges are deactivated in one final round.
func CutInHalfLine(n int) (*CentralizedResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: n=%d", n)
	}
	line := graph.Line(n)
	order := make([]graph.ID, n)
	for i := range order {
		order[i] = graph.ID(i)
	}
	return cutInHalf(line, order, graph.ID(0))
}

// EulerTourStrategy is Theorem 6.3 / D.5: for any connected graph,
// compute a spanning tree and its Euler tour (a virtual line of length
// ≤ 2n-1 over physical nodes), then run CutInHalf along the tour.
// Consecutive tour positions are tree-adjacent, so every shortcut obeys
// the distance-2 rule; duplicate pairs are no-ops. Total activations
// stay Θ(n) and the construction takes O(log n) rounds.
func EulerTourStrategy(gs *graph.Graph) (*CentralizedResult, error) {
	root := gs.MaxID()
	tour, ok := gs.EulerTour(root)
	if !ok {
		return nil, fmt.Errorf("baseline: graph disconnected")
	}
	return cutInHalf(gs, tour, root)
}

// cutInHalf runs the doubling shortcuts over a node sequence whose
// consecutive elements are adjacent in gs, then prunes to a BFS tree
// from root.
func cutInHalf(gs *graph.Graph, seq []graph.ID, root graph.ID) (*CentralizedResult, error) {
	h := temporal.NewHistory(gs)
	m := len(seq)
	for step := 1; step < m; step *= 2 {
		var acts []graph.Edge
		for j := 0; j+step < m; j += step {
			a, b := seq[j], seq[j+step]
			if a != b && !h.Active(a, b) {
				acts = append(acts, graph.NewEdge(a, b))
			}
		}
		if len(acts) == 0 {
			continue
		}
		if _, err := h.Apply(acts, nil); err != nil {
			return nil, fmt.Errorf("baseline: cut-in-half round: %w", err)
		}
	}
	// One final round: keep only a BFS tree from the root (edge
	// deactivations are free of activation cost).
	cur := h.CurrentClone()
	parent, ok := cur.SpanningTree(root)
	if !ok {
		return nil, fmt.Errorf("baseline: shortcut graph disconnected")
	}
	var deacts []graph.Edge
	for _, e := range cur.Edges() {
		if parent[e.A] != e.B && parent[e.B] != e.A {
			deacts = append(deacts, e)
		}
	}
	if len(deacts) > 0 {
		if _, err := h.Apply(nil, deacts); err != nil {
			return nil, fmt.Errorf("baseline: prune round: %w", err)
		}
	}
	depth := graph.TreeDepth(parent)
	return &CentralizedResult{History: h, Metrics: h.Metrics(), Root: root, Depth: depth}, nil
}
