package baseline

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/tasks"
)

func TestCliqueFormsCompleteGraph(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 5, 17, 40} {
		res, err := sim.Run(graph.Line(n), NewCliqueFactory())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Metrics.FinalActiveEdges != n*(n-1)/2 {
			t.Fatalf("n=%d: %d edges, want K_n", n, res.Metrics.FinalActiveEdges)
		}
		if err := tasks.VerifyLeaderElection(res, graph.ID(n-1)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// O(log n) rounds, Θ(n²) activations: the paper's impractical
		// corner of the tradeoff.
		if res.Rounds > bits.Len(uint(n))+3 {
			t.Fatalf("n=%d: %d rounds", n, res.Rounds)
		}
		if res.Metrics.TotalActivations != n*(n-1)/2-(n-1) {
			t.Fatalf("n=%d: activations %d", n, res.Metrics.TotalActivations)
		}
	}
}

func TestFloodLinearTimeZeroActivations(t *testing.T) {
	t.Parallel()
	n := 50
	res, err := sim.Run(graph.Line(n), NewFloodFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalActivations != 0 {
		t.Fatalf("flooding activated %d edges", res.Metrics.TotalActivations)
	}
	// Θ(diameter) rounds: the node at the far end needs n-1 rounds.
	if res.Rounds < n-1 {
		t.Fatalf("flooding finished in %d rounds, want >= %d", res.Rounds, n-1)
	}
	if err := tasks.VerifyLeaderElection(res, graph.ID(n-1)); err != nil {
		t.Fatal(err)
	}
	// Token dissemination completed at every node.
	all := graph.Line(n).Nodes()
	per := make(map[graph.ID]map[graph.ID]bool, n)
	for id, m := range res.Machines {
		per[id] = m.(*FloodMachine).Known()
	}
	if err := tasks.VerifyTokenDissemination(all, per); err != nil {
		t.Fatal(err)
	}
}

func TestCutInHalfLine(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 8, 33, 256, 1000} {
		res, err := CutInHalfLine(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		met := res.Metrics
		// Θ(n) total activations (Lemma D.3 optimum: ≈ n).
		if met.TotalActivations > 2*n {
			t.Fatalf("n=%d: %d activations > 2n", n, met.TotalActivations)
		}
		// ⌈log n⌉ + 1 rounds.
		if met.Rounds > bits.Len(uint(n))+2 {
			t.Fatalf("n=%d: %d rounds", n, met.Rounds)
		}
		if res.Depth > bits.Len(uint(n))+1 {
			t.Fatalf("n=%d: depth %d", n, res.Depth)
		}
		final := res.History.CurrentClone()
		if err := tasks.VerifyDepthTree(final, res.Root, bits.Len(uint(n))+1); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestEulerTourStrategyOnTrees(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		n := 5 + rng.Intn(200)
		g := graph.RandomTree(n, rng)
		res, err := EulerTourStrategy(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Theorem 6.3: Θ(n) activations (tour length ≤ 2n-1), O(log n)
		// rounds, Depth-log n tree.
		if res.Metrics.TotalActivations > 4*n {
			t.Fatalf("n=%d: %d activations", n, res.Metrics.TotalActivations)
		}
		if res.Metrics.Rounds > bits.Len(uint(2*n))+2 {
			t.Fatalf("n=%d: %d rounds", n, res.Metrics.Rounds)
		}
		if err := tasks.VerifyDepthTree(res.History.CurrentClone(), res.Root,
			bits.Len(uint(2*n))+2); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestEulerTourStrategyOnGeneralGraphs(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(120, 100, rng)
	res, err := EulerTourStrategy(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := tasks.VerifyDepthTree(res.History.CurrentClone(), g.MaxID(), 10); err != nil {
		t.Fatal(err)
	}
	res2, err := EulerTourStrategy(graph.Grid(8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.TotalActivations > 4*72 {
		t.Fatalf("grid activations %d", res2.Metrics.TotalActivations)
	}
}

// Property: the Euler strategy always yields a depth-O(log n) tree
// rooted at u_max with Θ(n) activations, on arbitrary connected graphs.
func TestEulerStrategyProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, rawN uint8, extra uint8) bool {
		n := int(rawN)%150 + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.PermuteIDs(graph.RandomConnected(n, int(extra)%n, rng), rng)
		res, err := EulerTourStrategy(g)
		if err != nil {
			return false
		}
		if res.Metrics.TotalActivations > 4*n {
			return false
		}
		return tasks.VerifyDepthTree(res.History.CurrentClone(), g.MaxID(),
			bits.Len(uint(2*n))+2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCutInHalfRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := CutInHalfLine(0); err == nil {
		t.Error("n=0 accepted")
	}
	bad := graph.New()
	bad.AddNode(1)
	bad.AddNode(2)
	if _, err := EulerTourStrategy(bad); err == nil {
		t.Error("disconnected graph accepted")
	}
}
