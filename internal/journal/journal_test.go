package journal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func mustOpen(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, path string) ([]Record, bool) {
	t.Helper()
	recs, torn, err := ReadAll(path)
	if err != nil {
		t.Fatalf("ReadAll(%s): %v", path, err)
	}
	return recs, torn
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l := mustOpen(t, path)
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: 1, Data: []byte(`{"header":true}`)},
		{Kind: 2, Data: []byte(`{"cell":0}`)},
		{Kind: 2, Data: []byte{}},
		{Kind: 255, Data: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	appendAll(t, l, want)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got, torn := replayAll(t, path)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d mismatch: kind %d/%d, %d/%d bytes",
				i, got[i].Kind, want[i].Kind, len(got[i].Data), len(want[i].Data))
		}
	}
}

func TestAppendBeforeReplayRejected(t *testing.T) {
	l := mustOpen(t, tmpLog(t))
	if err := l.Append(1, []byte("x")); !errors.Is(err, ErrNotReplayed) {
		t.Fatalf("Append before Replay = %v, want ErrNotReplayed", err)
	}
}

// TestTornFinalRecordTolerated truncates a valid log at every byte
// position inside its final record and asserts replay tolerates the
// tear, keeps the intact prefix, truncates the tail, and accepts new
// appends that are then replayed intact.
func TestTornFinalRecordTolerated(t *testing.T) {
	base := tmpLog(t)
	l := mustOpen(t, base)
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: 1, Data: []byte("first-record-payload")},
		{Kind: 2, Data: []byte("second-record-payload")},
	}
	appendAll(t, l, recs)
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	rec0End := headerSize + 1 + len(recs[0].Data)

	for cut := rec0End + 1; cut < len(full); cut++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lg, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		torn, err := lg.Replay(func(r Record) error { got = append(got, r); return nil })
		if err != nil {
			t.Fatalf("cut at %d: replay failed: %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut at %d: tear not reported", cut)
		}
		if len(got) != 1 || !bytes.Equal(got[0].Data, recs[0].Data) {
			t.Fatalf("cut at %d: intact prefix lost (%d records)", cut, len(got))
		}
		if lg.Size() != int64(rec0End) {
			t.Fatalf("cut at %d: size %d after truncate, want %d", cut, lg.Size(), rec0End)
		}
		// The log is immediately appendable past the tear.
		if err := lg.Append(3, []byte("appended-after-tear")); err != nil {
			t.Fatalf("cut at %d: append after tear: %v", cut, err)
		}
		lg.Close()
		again, torn2 := replayAll(t, path)
		if torn2 || len(again) != 2 || again[1].Kind != 3 {
			t.Fatalf("cut at %d: post-tear replay = %d records (torn=%v)", cut, len(again), torn2)
		}
	}
}

// TestMidFileCorruptionFailsWithOffset flips one byte in each
// non-final record and asserts replay fails with a CorruptError
// naming the broken record's offset and the file path.
func TestMidFileCorruptionFailsWithOffset(t *testing.T) {
	base := tmpLog(t)
	l := mustOpen(t, base)
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: 1, Data: []byte("record-zero")},
		{Kind: 2, Data: []byte("record-one")},
		{Kind: 3, Data: []byte("record-two")},
	}
	appendAll(t, l, recs)
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	offsets := []int64{0, int64(headerSize + 1 + len(recs[0].Data))}
	for i, off := range offsets {
		// Flip a payload byte of record i (past its header).
		path := filepath.Join(t.TempDir(), fmt.Sprintf("flip-%d.wal", i))
		mut := append([]byte(nil), full...)
		mut[off+headerSize+2] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := ReadAll(path)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("record %d corrupted: err = %v, want CorruptError", i, err)
		}
		if ce.Offset != off {
			t.Fatalf("record %d corrupted: offset %d, want %d", i, ce.Offset, off)
		}
		if !strings.Contains(ce.Error(), fmt.Sprintf("offset %d", off)) ||
			!strings.Contains(ce.Error(), path) {
			t.Fatalf("error %q does not name offset and path", ce.Error())
		}
	}

	// Flipping a byte in the FINAL record is a torn write, not
	// corruption: replay keeps the prefix.
	mut := append([]byte(nil), full...)
	mut[len(mut)-2] ^= 0xFF
	path := filepath.Join(t.TempDir(), "flip-final.wal")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	got, torn := replayAll(t, path)
	if !torn || len(got) != 2 {
		t.Fatalf("final-record flip: %d records (torn=%v), want 2 torn", len(got), torn)
	}
}

// TestReplayPropertyRandomBatches round-trips random record batches
// through append/replay across reopen cycles, with random truncation
// applied between cycles.
func TestReplayPropertyRandomBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 40; iter++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("prop-%d.wal", iter))
		var want []Record
		var wantSize int64

		// 1–4 append sessions, each reopening the file.
		sessions := 1 + rng.Intn(4)
		for s := 0; s < sessions; s++ {
			l, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			i := 0
			torn, err := l.Replay(func(r Record) error {
				if i >= len(want) || r.Kind != want[i].Kind || !bytes.Equal(r.Data, want[i].Data) {
					return fmt.Errorf("iter %d session %d: record %d diverged", iter, s, i)
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != len(want) {
				t.Fatalf("iter %d session %d: replayed %d, want %d (torn=%v)", iter, s, i, len(want), torn)
			}
			n := rng.Intn(20)
			for r := 0; r < n; r++ {
				rec := Record{Kind: byte(rng.Intn(256)), Data: make([]byte, rng.Intn(300))}
				rng.Read(rec.Data)
				if err := l.Append(rec.Kind, rec.Data); err != nil {
					t.Fatal(err)
				}
				want = append(want, rec)
			}
			wantSize = l.Size()
			l.Close()

			// Maybe tear the tail: truncate to a random point inside the
			// final record, dropping it from the expectation.
			if len(want) > 0 && rng.Intn(3) == 0 {
				last := want[len(want)-1]
				lastStart := wantSize - int64(headerSize+1+len(last.Data))
				cut := lastStart + 1 + rng.Int63n(int64(headerSize+len(last.Data)))
				if err := os.Truncate(path, cut); err != nil {
					t.Fatal(err)
				}
				want = want[:len(want)-1]
				wantSize = lastStart
			}
		}

		got, _ := replayAll(t, path)
		if len(got) != len(want) {
			t.Fatalf("iter %d: final replay %d records, want %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("iter %d: record %d diverged", iter, i)
			}
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l := mustOpen(t, tmpLog(t))
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, make([]byte, MaxRecord)); err == nil {
		t.Fatal("oversize append accepted")
	}
}
