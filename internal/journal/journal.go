// Package journal implements the on-disk write-ahead log behind
// durable sweeps: an append-only sequence of length-prefixed,
// checksummed records that a restarted process replays to rebuild the
// state a crash would otherwise throw away.
//
// Record layout (little-endian):
//
//	uint32 length   — byte count of kind+data
//	uint32 crc      — CRC-32C (Castagnoli) of kind+data
//	byte   kind     — caller-defined record type
//	[]byte data     — opaque payload (callers use JSON)
//
// Each Append issues one write syscall for the whole record, so under
// a process kill (SIGKILL) the page cache either has the record or it
// does not — the only failure that can tear a record mid-write is a
// machine crash. Replay therefore applies the classic WAL rule: a
// record whose declared extent runs past end-of-file, or whose
// checksum fails on the very last record, is a torn write — the log
// is truncated to the intact prefix and replay succeeds. A checksum
// failure anywhere before the final record means the file was
// corrupted after the fact and replay fails with a *CorruptError
// naming the byte offset, because silently skipping interior records
// would replay a state that never existed.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// MaxRecord bounds one record's kind+data bytes. It exists to turn a
// corrupted length prefix into a bounded read instead of an attempted
// multi-gigabyte allocation.
const MaxRecord = 64 << 20

const headerSize = 8 // uint32 length + uint32 crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a record that failed its checksum (or carried
// an impossible length) somewhere before the final record — damage
// replay must not paper over.
type CorruptError struct {
	Path   string // journal file
	Offset int64  // byte offset of the broken record's header
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// ErrNotReplayed guards the append path: a log must be replayed (even
// when empty) before it accepts appends, so a torn tail is always
// truncated before new records land after it.
var ErrNotReplayed = errors.New("journal: Append before Replay")

// Record is one intact log entry surfaced during replay.
type Record struct {
	Kind   byte
	Data   []byte
	Offset int64 // byte offset of the record's header in the file
}

// Log is an append-only record log over one file. Open it, Replay the
// intact prefix, then Append new records; all methods are safe for
// concurrent use, though replay-before-append is the caller's
// sequencing obligation (enforced via ErrNotReplayed).
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	off      int64 // end of the intact prefix = next append offset
	replayed bool
}

// Open opens (or creates) the journal file at path.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (l *Log) Path() string { return l.path }

// Size returns the byte size of the intact prefix after Replay (the
// next append offset).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Replay scans the log from the start, invoking fn for every intact
// record in order. A torn final record (extent past EOF, or a
// checksum failure on the last record) is tolerated: the file is
// truncated to the intact prefix, torn reports true, and the log is
// ready for appends. A checksum or length failure before the final
// record aborts with a *CorruptError. fn returning an error aborts
// the replay with that error (without truncating).
func (l *Log) Replay(fn func(Record) error) (torn bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return false, err
	}
	size := st.Size()

	var off int64
	hdr := make([]byte, headerSize)
	var payload []byte
	for off < size {
		if size-off < headerSize {
			torn = true // partial header at EOF
			break
		}
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return false, err
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		end := off + headerSize + length
		if length < 1 {
			if end == size {
				// A zero-length header at EOF: a torn header write.
				torn = true
				break
			}
			// An impossible record that further bytes follow:
			// corruption, not a torn tail.
			return false, &CorruptError{Path: l.path, Offset: off,
				Reason: fmt.Sprintf("record length %d out of range", length)}
		}
		if end > size {
			// The declared extent runs past EOF: final-write torn (also
			// the case for a garbage length from a torn header).
			torn = true
			break
		}
		if length > MaxRecord {
			return false, &CorruptError{Path: l.path, Offset: off,
				Reason: fmt.Sprintf("record length %d exceeds the %d-byte limit", length, int64(MaxRecord))}
		}
		if int64(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := l.f.ReadAt(payload, off+headerSize); err != nil {
			return false, err
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			if end == size {
				// Checksum failure on the very last record: a torn
				// payload write. Truncate it away like a short tail.
				torn = true
				break
			}
			return false, &CorruptError{Path: l.path, Offset: off,
				Reason: fmt.Sprintf("checksum mismatch (want %08x, got %08x)", want, got)}
		}
		if fn != nil {
			data := make([]byte, length-1)
			copy(data, payload[1:])
			if err := fn(Record{Kind: payload[0], Data: data, Offset: off}); err != nil {
				return false, err
			}
		}
		off = end
	}
	if torn {
		if err := l.f.Truncate(off); err != nil {
			return false, err
		}
	}
	l.off = off
	l.replayed = true
	return torn, nil
}

// Append writes one record at the end of the intact prefix. The whole
// record — header, kind, data — goes down in a single write call.
func (l *Log) Append(kind byte, data []byte) error {
	if len(data)+1 > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(data)+1, int64(MaxRecord))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.replayed {
		return ErrNotReplayed
	}
	buf := make([]byte, headerSize+1+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(1+len(data)))
	buf[headerSize] = kind
	copy(buf[headerSize+1:], data)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[headerSize:], castagnoli))
	if _, err := l.f.WriteAt(buf, l.off); err != nil {
		return err
	}
	l.off += int64(len(buf))
	return nil
}

// Sync flushes the file to stable storage. Appends survive a process
// kill without it (the page cache persists); Sync is for surviving a
// machine crash, so callers invoke it at milestones, not per record.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Close releases the file handle.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReadAll replays path (truncating a torn tail) and returns every
// intact record — the one-shot read used at recovery scan time.
func ReadAll(path string) (records []Record, torn bool, err error) {
	l, err := Open(path)
	if err != nil {
		return nil, false, err
	}
	defer l.Close()
	torn, err = l.Replay(func(r Record) error {
		records = append(records, r)
		return nil
	})
	if err != nil {
		return nil, torn, err
	}
	return records, torn, nil
}
