package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// RequestIDHeader carries a request's correlation ID between
// processes: the coordinator's dispatcher copies it onto every
// worker-bound request, so one sweep's lifecycle is traceable across
// the fleet by grepping logs for a single ID.
const RequestIDHeader = "X-Adnet-Request-Id"

type requestIDKey struct{}

// ContextWithRequestID attaches a request ID to the context.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID attached to the
// context, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// SetRequestIDHeader copies the context's request ID (if any) onto an
// outbound request — the dispatcher-side half of propagation.
func SetRequestIDHeader(req *http.Request) {
	if id := RequestIDFromContext(req.Context()); id != "" {
		req.Header.Set(RequestIDHeader, id)
	}
}

// newRequestID returns a fresh 16-hex-character request ID.
func newRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; an inert ID
		// beats an unreachable panic path in request handling.
		return "rand-unavailable"
	}
	return hex.EncodeToString(buf[:])
}

// HTTPMetrics instruments mux routes: per-route/per-status request
// counters, per-route latency histograms, request-ID assignment, and
// one structured access-log line per request.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
	log      *slog.Logger
}

// NewHTTPMetrics registers the HTTP metric families on reg. logger
// may be nil for metrics-only instrumentation (tests).
func NewHTTPMetrics(reg *Registry, logger *slog.Logger) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec("adnet_http_requests_total",
			"HTTP requests served, by mux route pattern and status code.",
			"route", "code"),
		latency: reg.HistogramVec("adnet_http_request_duration_seconds",
			"HTTP request latency by mux route pattern.",
			LatencyBuckets(), "route"),
		inflight: reg.Gauge("adnet_http_requests_in_flight",
			"HTTP requests currently being served."),
		log: logger,
	}
}

// Wrap instruments one handler under the given route label. Routes
// are the mux pattern strings — a finite set fixed at registration,
// never a raw URL path, keeping label cardinality bounded.
//
// The wrapper also owns the request ID: it reuses an inbound
// X-Adnet-Request-Id (worker side of fleet propagation) or assigns a
// fresh one, stores it in the request context, and echoes it on the
// response so clients can quote it back.
func (h *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	requests := h.requests
	latency := latencyObserver(h.latency, route)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		req = req.WithContext(ContextWithRequestID(req.Context(), id))
		w.Header().Set(RequestIDHeader, id)

		sw := &statusWriter{ResponseWriter: w}
		h.inflight.Inc()
		start := time.Now()
		next.ServeHTTP(sw, req)
		elapsed := time.Since(start)
		h.inflight.Dec()

		latency.Observe(elapsed.Seconds())
		requests.With(route, sw.codeText()).Inc()
		if h.log != nil {
			h.log.LogAttrs(req.Context(), slog.LevelInfo, "http request",
				slog.String("request_id", id),
				slog.String("method", req.Method),
				slog.String("route", route),
				slog.String("path", req.URL.Path),
				slog.Int("status", sw.code()),
				slog.Duration("elapsed", elapsed))
		}
	})
}

// latencyObserver resolves the per-route histogram once at wrap time
// so the per-request path is a pure Observe.
func latencyObserver(v *HistogramVec, route string) *Histogram {
	return v.With(route)
}

// statusWriter captures the response status code. It forwards Flush —
// the NDJSON streaming endpoints require the Flusher passthrough — and
// treats an unset code as 200, matching net/http's implicit
// WriteHeader.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer so http.ResponseController can
// reach the connection's deadline controls (the streaming endpoints
// set per-batch write deadlines through the middleware).
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// codeText returns the status code as a label value. The handful of
// codes the mux actually emits are returned as interned constants so
// the per-request path does not allocate.
func (w *statusWriter) codeText() string {
	switch w.code() {
	case http.StatusOK:
		return "200"
	case http.StatusAccepted:
		return "202"
	case http.StatusNoContent:
		return "204"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusConflict:
		return "409"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	default:
		return strconv.Itoa(w.code())
	}
}
