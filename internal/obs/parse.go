package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label
// pairs, and the value. Histogram families appear as their rendered
// _bucket/_sum/_count series.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics is a parsed exposition page with lookup helpers.
type Metrics struct {
	// Types maps family name → counter|gauge|histogram.
	Types   map[string]string
	samples []Sample
	byKey   map[string]float64
}

// ParseExposition parses a Prometheus text exposition page (version
// 0.0.4) strictly: malformed names, labels, values, duplicate series,
// samples without a preceding # TYPE, interleaved families and
// timestamps are all errors. It is the consistency gate the e2e suite
// runs against live /metrics pages, so it rejects rather than skips.
func ParseExposition(r io.Reader) (*Metrics, error) {
	m := &Metrics{
		Types: make(map[string]string),
		byKey: make(map[string]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	closed := make(map[string]bool) // families whose sample block has ended
	current := ""                   // family whose samples are being read
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("obs: exposition line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			if kind == "TYPE" {
				if _, dup := m.Types[name]; dup {
					return nil, fail("duplicate # TYPE for %s", name)
				}
				switch rest {
				case typeCounter, typeGauge, typeHistogram:
				default:
					return nil, fail("unknown metric type %q", rest)
				}
				m.Types[name] = rest
			}
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		fam := familyOf(s.Name, m.Types)
		if fam == "" {
			return nil, fail("sample %s has no preceding # TYPE", s.Name)
		}
		if closed[fam] {
			return nil, fail("family %s reappears after other families", fam)
		}
		if current != fam {
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		key := sampleKey(s.Name, s.Labels)
		if _, dup := m.byKey[key]; dup {
			return nil, fail("duplicate series %s", key)
		}
		m.byKey[key] = s.Value
		m.samples = append(m.samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseComment handles "# HELP name text" / "# TYPE name type".
// Other comment forms are rejected — this parser only accepts pages
// the registry (or a conforming exporter) writes.
func parseComment(line string) (kind, name, rest string, err error) {
	body, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return "", "", "", fmt.Errorf("bare comment")
	}
	kind, body, ok = strings.Cut(body, " ")
	if !ok || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", fmt.Errorf("comment is neither # HELP nor # TYPE")
	}
	name, rest, _ = strings.Cut(body, " ")
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if kind == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("# TYPE without a type")
	}
	return kind, name, rest, nil
}

// parseSample parses `name{label="value",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		end, err := parseLabels(line[i:], s.Labels)
		if err != nil {
			return s, err
		}
		i += end
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("missing value")
	}
	valueText := strings.TrimSpace(line[i+1:])
	if strings.ContainsAny(valueText, " \t") {
		return s, fmt.Errorf("trailing content after value (timestamps are not accepted)")
	}
	v, err := parseValue(valueText)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {a="x",b="y"} block starting at text[0] == '{'
// and returns the index just past the closing brace.
func parseLabels(text string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if text[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(text) && text[j] != '=' {
			j++
		}
		name := text[i:j]
		if !validLabelName(name) && name != "le" {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := into[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		if j+1 >= len(text) || text[j+1] != '"' {
			return 0, fmt.Errorf("label %q value is not quoted", name)
		}
		value, next, err := parseQuoted(text, j+1)
		if err != nil {
			return 0, err
		}
		into[name] = value
		i = next
		switch {
		case i < len(text) && text[i] == ',':
			i++
		case i < len(text) && text[i] == '}':
		default:
			return 0, fmt.Errorf("expected ',' or '}' after label %q", name)
		}
	}
}

// parseQuoted reads a quoted label value with \\, \" and \n escapes,
// starting at the opening quote, returning the value and the index
// just past the closing quote.
func parseQuoted(text string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(text) {
		switch c := text[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(text) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch text[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c in label value", text[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseValue(text string) (float64, error) {
	switch text {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", text)
	}
	return v, nil
}

// familyOf maps a sample name to its declared family: the name
// itself, or — for histogram sub-series — the base name with the
// _bucket/_sum/_count suffix stripped.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if ok && types[base] == typeHistogram {
			return base
		}
	}
	return ""
}

func sampleKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Value returns the sample with exactly the given labels (nil means
// no labels).
func (m *Metrics) Value(name string, labels map[string]string) (float64, bool) {
	v, ok := m.byKey[sampleKey(name, labels)]
	return v, ok
}

// Has reports whether any sample of the family exists (histogram
// sub-series count).
func (m *Metrics) Has(name string) bool {
	for _, s := range m.samples {
		if s.Name == name || familyOf(s.Name, m.Types) == name {
			return true
		}
	}
	return false
}

// Sum adds up every sample of name whose labels include all the match
// pairs, returning the total and how many series matched. Histogram
// sub-series are not summed through Sum — address them by their full
// _count/_sum names.
func (m *Metrics) Sum(name string, match map[string]string) (total float64, series int) {
	for _, s := range m.samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += s.Value
			series++
		}
	}
	return total, series
}
