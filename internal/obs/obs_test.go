package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("adnet_test_requests_total", "Requests.", "route", "code")
	c.With("/v1/runs", "200").Add(3)
	c.With("/v1/runs", "404").Inc()
	g := r.Gauge("adnet_test_inflight", "In flight.")
	g.Set(7)
	g.Dec()
	r.GaugeFunc("adnet_test_queue_depth", "Queue depth.", func() float64 { return 4 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP adnet_test_requests_total Requests.\n",
		"# TYPE adnet_test_requests_total counter\n",
		`adnet_test_requests_total{route="/v1/runs",code="200"} 3` + "\n",
		`adnet_test_requests_total{route="/v1/runs",code="404"} 1` + "\n",
		"# TYPE adnet_test_inflight gauge\n",
		"adnet_test_inflight 6\n",
		"adnet_test_queue_depth 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		v := r.CounterVec("adnet_test_b_total", "b", "x")
		v.With("2").Inc()
		v.With("1").Inc()
		r.Gauge("adnet_test_a", "a").Set(1)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("nondeterministic exposition:\n%s\nvs\n%s", first, got)
		}
	}
	if strings.Index(first, "adnet_test_a") > strings.Index(first, "adnet_test_b_total") {
		t.Errorf("families not sorted:\n%s", first)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("adnet_test_seconds", "Durations.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-55.65) > 1e-9 {
		t.Fatalf("Sum() = %v, want 55.65", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`adnet_test_seconds_bucket{le="0.1"} 2`, // le is inclusive
		`adnet_test_seconds_bucket{le="1"} 3`,
		`adnet_test_seconds_bucket{le="10"} 4`,
		`adnet_test_seconds_bucket{le="+Inf"} 5`,
		`adnet_test_seconds_sum 55.65`,
		`adnet_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecSharesBuckets(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("adnet_test_latency_seconds", "Latency.", []float64{1, 2}, "worker")
	v.With("w1").Observe(0.5)
	v.With("w2").Observe(1.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`adnet_test_latency_seconds_bucket{worker="w1",le="1"} 1`,
		`adnet_test_latency_seconds_bucket{worker="w2",le="1"} 0`,
		`adnet_test_latency_seconds_bucket{worker="w2",le="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestReregisterSameShapeReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("adnet_test_total", "t")
	b := r.Counter("adnet_test_total", "t")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || a != b {
		t.Fatalf("re-registration did not return the same counter (a=%v)", a.Value())
	}
}

func TestReregisterDifferentShapePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("adnet_test_total", "t")
	assertPanics(t, func() { r.Gauge("adnet_test_total", "t") })
	assertPanics(t, func() { r.CounterVec("adnet_test_total", "t", "route") })
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	assertPanics(t, func() { r.Counter("0bad", "t") })
	assertPanics(t, func() { r.Counter("has space", "t") })
	assertPanics(t, func() { r.CounterVec("adnet_ok_total", "t", "bad-label") })
	assertPanics(t, func() { r.Histogram("adnet_h", "t", []float64{2, 1}) })
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("adnet_test_total", "t", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `adnet_test_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong, want %q in:\n%s", want, b.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		3:      "3",
		-12:    "-12",
		0.25:   "0.25",
		1e21:   "1e+21",
		1.5e-7: "1.5e-07",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
