package obs

import (
	"strings"
	"testing"
)

// TestParseRoundTrip feeds the registry's own output through the
// strict parser — the invariant the e2e scrape test depends on.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("adnet_test_requests_total", "Requests.", "route", "code").
		With("/v1/runs/{id}", "200").Add(9)
	r.Gauge("adnet_test_inflight", "In flight.").Set(2)
	h := r.Histogram("adnet_test_seconds", "Durations.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(3)
	r.CounterVec("adnet_test_escape_total", "Escapes.", "v").With(`a"b\c`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, b.String())
	}

	if v, ok := m.Value("adnet_test_requests_total",
		map[string]string{"route": "/v1/runs/{id}", "code": "200"}); !ok || v != 9 {
		t.Errorf("requests = %v/%v, want 9", v, ok)
	}
	if v, ok := m.Value("adnet_test_inflight", nil); !ok || v != 2 {
		t.Errorf("inflight = %v/%v, want 2", v, ok)
	}
	if v, ok := m.Value("adnet_test_seconds_count", nil); !ok || v != 2 {
		t.Errorf("histogram count = %v/%v, want 2", v, ok)
	}
	if v, ok := m.Value("adnet_test_seconds_bucket",
		map[string]string{"le": "0.5"}); !ok || v != 1 {
		t.Errorf("le=0.5 bucket = %v/%v, want 1", v, ok)
	}
	if v, ok := m.Value("adnet_test_escape_total",
		map[string]string{"v": `a"b\c`}); !ok || v != 1 {
		t.Errorf("escaped label value lost: %v/%v", v, ok)
	}
	if m.Types["adnet_test_seconds"] != "histogram" {
		t.Errorf("type = %q, want histogram", m.Types["adnet_test_seconds"])
	}
	if !m.Has("adnet_test_seconds") || m.Has("adnet_absent") {
		t.Error("Has() wrong")
	}
}

func TestParseSum(t *testing.T) {
	page := `# TYPE adnet_cells_total counter
adnet_cells_total{status="ok"} 10
adnet_cells_total{status="cached"} 2
adnet_cells_total{status="error"} 1
`
	m, err := ParseExposition(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if total, n := m.Sum("adnet_cells_total", nil); total != 13 || n != 3 {
		t.Errorf("Sum(all) = %v over %d series, want 13 over 3", total, n)
	}
	if total, n := m.Sum("adnet_cells_total", map[string]string{"status": "ok"}); total != 10 || n != 1 {
		t.Errorf("Sum(ok) = %v over %d series, want 10 over 1", total, n)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "adnet_x 1\n",
		"bad name":           "# TYPE 0bad counter\n0bad 1\n",
		"bad type":           "# TYPE adnet_x widget\nadnet_x 1\n",
		"duplicate TYPE":     "# TYPE adnet_x counter\n# TYPE adnet_x counter\nadnet_x 1\n",
		"duplicate series":   "# TYPE adnet_x counter\nadnet_x 1\nadnet_x 2\n",
		"dup labeled series": "# TYPE adnet_x counter\nadnet_x{a=\"1\"} 1\nadnet_x{a=\"1\"} 2\n",
		"interleaved family": "# TYPE adnet_a counter\n# TYPE adnet_b counter\nadnet_a 1\nadnet_b 1\nadnet_a 2\n",
		"missing value":      "# TYPE adnet_x counter\nadnet_x\n",
		"timestamp":          "# TYPE adnet_x counter\nadnet_x 1 1712000000\n",
		"bad value":          "# TYPE adnet_x counter\nadnet_x one\n",
		"unterminated label": "# TYPE adnet_x counter\nadnet_x{a=\"1\" 1\n",
		"unquoted label":     "# TYPE adnet_x counter\nadnet_x{a=1} 1\n",
		"bad escape":         "# TYPE adnet_x counter\nadnet_x{a=\"\\t\"} 1\n",
		"duplicate label":    "# TYPE adnet_x counter\nadnet_x{a=\"1\",a=\"2\"} 1\n",
		"bare comment":       "#comment\n",
	}
	for name, page := range cases {
		if _, err := ParseExposition(strings.NewReader(page)); err == nil {
			t.Errorf("%s: parse accepted malformed page:\n%s", name, page)
		}
	}
}

func TestParseAcceptsValidVariants(t *testing.T) {
	page := `# HELP adnet_x Help text with spaces.
# TYPE adnet_x gauge
adnet_x -1.5
# TYPE adnet_h histogram
adnet_h_bucket{le="+Inf"} 0
adnet_h_sum 0
adnet_h_count 0
`
	m, err := ParseExposition(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("adnet_x", nil); !ok || v != -1.5 {
		t.Errorf("adnet_x = %v/%v, want -1.5", v, ok)
	}
}
