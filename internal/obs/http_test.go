package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWrapCountsRequestsAndAssignsID(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)
	var seenID string
	h := hm.Wrap("GET /v1/runs/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenID = RequestIDFromContext(r.Context())
		w.WriteHeader(http.StatusNotFound)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/runs/j1", nil))

	if seenID == "" {
		t.Error("handler saw no request ID in context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seenID {
		t.Errorf("response header ID = %q, want %q", got, seenID)
	}
	if v := hm.requests.With("GET /v1/runs/{id}", "404").Value(); v != 1 {
		t.Errorf("request counter = %d, want 1", v)
	}
	if c := hm.latency.With("GET /v1/runs/{id}").Count(); c != 1 {
		t.Errorf("latency observations = %d, want 1", c)
	}
	if v := hm.inflight.Value(); v != 0 {
		t.Errorf("inflight = %d after request, want 0", v)
	}
}

func TestWrapReusesInboundRequestID(t *testing.T) {
	reg := NewRegistry()
	h := NewHTTPMetrics(reg, nil).Wrap("POST /v1/sweeps",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("POST", "/v1/sweeps", nil)
	req.Header.Set(RequestIDHeader, "abc123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "abc123" {
		t.Errorf("inbound ID not reused: got %q", got)
	}
}

func TestWrapDefaultsTo200(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)
	h := hm.Wrap("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok")) // implicit 200
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	if v := hm.requests.With("GET /healthz", "200").Value(); v != 1 {
		t.Errorf("implicit 200 not counted: %d", v)
	}
}

// TestStatusWriterKeepsFlusher guards the NDJSON streaming endpoints:
// the wrapper must still satisfy http.Flusher.
func TestStatusWriterKeepsFlusher(t *testing.T) {
	reg := NewRegistry()
	flushed := false
	h := NewHTTPMetrics(reg, nil).Wrap("GET /v1/runs/{id}/rounds",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f, ok := w.(http.Flusher)
			if !ok {
				t.Fatal("wrapped writer lost http.Flusher")
			}
			f.Flush()
			flushed = true
		}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/runs/j1/rounds", nil))
	if !flushed {
		t.Error("Flush not reached")
	}
}

func TestSetRequestIDHeader(t *testing.T) {
	req := httptest.NewRequest("GET", "http://worker/healthz", nil)
	req = req.WithContext(ContextWithRequestID(req.Context(), "deadbeef"))
	SetRequestIDHeader(req)
	if got := req.Header.Get(RequestIDHeader); got != "deadbeef" {
		t.Errorf("outbound header = %q, want deadbeef", got)
	}

	// No ID in context → header untouched.
	bare := httptest.NewRequest("GET", "http://worker/healthz", nil)
	SetRequestIDHeader(bare)
	if got := bare.Header.Get(RequestIDHeader); got != "" {
		t.Errorf("header set without context ID: %q", got)
	}
}

func TestNewRequestIDShape(t *testing.T) {
	a, b := newRequestID(), newRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("request IDs a=%q b=%q: want distinct 16-hex strings", a, b)
	}
}

func TestLoggerAddsRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithRequestID(context.Background(), "feedface")
	logger.InfoContext(ctx, "sweep accepted", "sweep_id", "s1")

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["request_id"] != "feedface" {
		t.Errorf("request_id = %v, want feedface in %s", rec["request_id"], buf.String())
	}
	if rec["sweep_id"] != "s1" {
		t.Errorf("sweep_id = %v, want s1", rec["sweep_id"])
	}

	// Without a context ID, no request_id attribute appears.
	buf.Reset()
	logger.Info("plain line")
	if strings.Contains(buf.String(), "request_id") {
		t.Errorf("request_id attached without context: %s", buf.String())
	}
}

func TestNewLoggerRejectsUnknownFormat(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "yaml"); err == nil {
		t.Error("expected error for unknown format")
	}
}

func TestMetricsHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adnet_test_total", "t").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if _, err := ParseExposition(rec.Body); err != nil {
		t.Errorf("handler output does not parse: %v", err)
	}
}
