// Package obs is the fleet-wide observability layer: a
// zero-dependency metrics registry (atomic counters, gauges and
// fixed-bucket histograms) rendered in the Prometheus text exposition
// format, a strict parser for that format (the e2e suite's scrape
// assertions), an HTTP middleware that instruments every route with
// request counters and latency histograms, and structured logging
// (log/slog) that carries a request ID across process boundaries via
// the X-Adnet-Request-Id header.
//
// Design constraints, in order:
//
//   - Zero dependencies. Everything is stdlib; nothing here may pull a
//     module into go.mod.
//   - Zero allocations on instrumented hot paths. Counter.Add,
//     Gauge.Set and Histogram.Observe are pure atomic operations; the
//     engine's round loop is never touched at all (run-level metrics
//     are folded in once per run, after the loop).
//   - Label discipline. Label cardinality is bounded by construction:
//     routes come from the finite mux pattern set, states from the
//     job-lifecycle enum, worker IDs from the fleet registry. Nothing
//     user-controlled (spec contents, request IDs) ever becomes a
//     label value.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names as rendered in the exposition's # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families and renders them as Prometheus text
// exposition. All methods are safe for concurrent use. Registering
// the same (name, type, label names) twice returns the existing
// family; re-registering a name with a different shape panics — that
// is a wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric name: help, type, label names and its series.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu     sync.Mutex
	series map[string]*series // key: label values joined by \xff
}

// series is one label-value combination of a family. Exactly one of
// the value fields is set, matching the family type.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	fn          func() float64
	hist        *Histogram
}

func (r *Registry) family(name, help, typ string, labels []string) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabel(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// getOrAdd returns the series for the label values, creating it with
// make on first use.
func (f *family) getOrAdd(values []string, make func() *series) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	s.labelValues = append([]string(nil), values...)
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative n decrements).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the label values, creating it on first
// use. The result may be cached by callers on hot paths.
func (v *CounterVec) With(values ...string) *Counter {
	s := v.f.getOrAdd(values, func() *series { return &series{counter: &Counter{}} })
	return s.counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	s := v.f.getOrAdd(values, func() *series { return &series{gauge: &Gauge{}} })
	return s.gauge
}

// HistogramVec is a histogram family with labels; every series shares
// the family's buckets.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// With returns the histogram for the label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	s := v.f.getOrAdd(values, func() *series { return &series{hist: newHistogram(v.buckets)} })
	return s.hist
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labels)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labels)}
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the bridge for values another subsystem already tracks
// (queue depth, registry counts). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeGauge, nil)
	f.getOrAdd(nil, func() *series { return &series{fn: fn} })
}

// CounterFunc registers a counter whose value is computed by fn at
// scrape time. fn must be monotonically non-decreasing and safe for
// concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeCounter, nil)
	f.getOrAdd(nil, func() *series { return &series{fn: fn} })
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	mustAscending(name, buckets)
	f := r.family(name, help, typeHistogram, labels)
	return &HistogramVec{f: f, buckets: buckets}
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families and series in sorted
// order so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		families = append(families, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ss := make([]*series, 0, len(keys))
	for _, k := range keys {
		ss = append(ss, f.series[k])
	}
	f.mu.Unlock()

	for _, s := range ss {
		labels := renderLabels(f.labels, s.labelValues, "")
		switch {
		case s.counter != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(float64(s.counter.Value())))
		case s.gauge != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(float64(s.gauge.Value())))
		case s.fn != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(s.fn()))
		case s.hist != nil:
			s.hist.write(b, f.name, f.labels, s.labelValues)
		}
	}
}

// renderLabels renders {a="x",b="y"} (empty string for no labels).
// extra, when non-empty, is appended verbatim as one more pair.
func renderLabels(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a sample value: integers without an exponent,
// everything else in Go's shortest-exact form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves GET /metrics over the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabel(name string) {
	if !validLabelName(name) {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

func mustAscending(name string, buckets []float64) {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
