package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: Observe is a bucket search
// plus three atomic operations — no allocation, no lock — so it is
// safe to fold into per-run and per-request paths. Buckets are chosen
// at registration and never change.
type Histogram struct {
	uppers []float64
	counts []atomic.Int64 // len(uppers)+1; last bucket is +Inf
	count  atomic.Int64
	sum    atomicFloat
}

func newHistogram(uppers []float64) *Histogram {
	return &Histogram{
		uppers: append([]float64(nil), uppers...),
		counts: make([]atomic.Int64, len(uppers)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v — the le semantics.
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// write renders the _bucket/_sum/_count series with cumulative bucket
// counts, per the exposition format.
func (h *Histogram) write(b *strings.Builder, name string, labelNames, labelValues []string) {
	cum := int64(0)
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		le := fmt.Sprintf(`le="%s"`, formatFloat(upper))
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labelNames, labelValues, le), cum)
	}
	cum += h.counts[len(h.uppers)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labelNames, labelValues, `le="+Inf"`), cum)
	labels := renderLabels(labelNames, labelValues, "")
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.sum.load()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.count.Load())
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// LatencyBuckets is the shared bucket ladder for request, cell and
// shard durations, in seconds: 1ms to 60s, roughly 2.5× per step.
// One ladder for every latency family keeps cross-metric comparisons
// (and the DESIGN.md catalog) simple.
func LatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// ExpBuckets returns n ascending buckets starting at start, each
// factor times the previous — the ladder for open-ended count
// distributions (rounds per run, ns per round).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
