package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the process-wide structured logger. format is
// "text" or "json"; anything else is an error (surfaced as flag
// misuse by cmd/adnet-server). The handler is wrapped so any record
// logged with a context carrying a request ID gains a request_id
// attribute automatically — call sites use InfoContext/ErrorContext
// and never thread the ID by hand.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(&ctxHandler{inner: h}), nil
}

// NopLogger returns a logger that discards everything — the default
// for library components constructed without one, so tests stay
// quiet.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// ctxHandler decorates records with the context's request ID.
type ctxHandler struct {
	inner slog.Handler
}

func (h *ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestIDFromContext(ctx); id != "" && !hasAttr(rec, "request_id") {
		rec.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *ctxHandler) WithGroup(name string) slog.Handler {
	return &ctxHandler{inner: h.inner.WithGroup(name)}
}

// hasAttr reports whether the record already carries the key — the
// access-log line sets request_id explicitly and must not get it
// twice.
func hasAttr(rec slog.Record, key string) bool {
	found := false
	rec.Attrs(func(a slog.Attr) bool {
		if a.Key == key {
			found = true
			return false
		}
		return true
	})
	return found
}
