// Package dynamics is the adversarial / passively-dynamic environment
// layer: seeded schedules that perturb the network *between* algorithm
// rounds, attached to a run through sim.WithEnvironment. The paper
// assumes the algorithm alone edits edges; the related work (Emek &
// Uitto's dynamic networks of finite state machines, Casteigts et
// al.'s temporal-graph classes) studies underlays that change under
// the algorithm — this package reproduces those regimes so the
// robustness matrix (expt.RobustnessMatrix) can measure how gracefully
// the paper's algorithms degrade.
//
// Everything here is deterministic: a schedule is a pure function of
// its spec, its seed and the History it is shown, and the engine calls
// it from the round driver only, so runs with an environment stay
// byte-identical across worker counts like every other run.
package dynamics

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"slices"
	"strconv"
	"strings"

	"adnet/internal/sim"
	"adnet/internal/temporal"
)

// Dynamics classes.
const (
	// ClassEdgeChurn flips Rate random underlay edges per round:
	// inactive pairs come up, active edges go down. With Preserve the
	// schedule skips any cut that would disconnect the current graph.
	ClassEdgeChurn = "edge-churn"
	// ClassTargetedCut removes, each round, the Rate active edges the
	// algorithm itself activated whose endpoint activated-degrees are
	// highest — an adversary that keeps tearing down the hub structure
	// the paper's constructions build.
	ClassTargetedCut = "targeted-cut"
	// ClassBurst alternates Quiet calm rounds with Storm rounds of
	// edge churn at Rate flips per round.
	ClassBurst = "burst"
	// ClassCrash takes Rate random nodes down for Down rounds in
	// waves; Mode selects whether restarted machines resume with state
	// intact ("sleep") or are rebuilt from the factory ("reboot").
	ClassCrash = "crash"
)

// Crash restart modes.
const (
	ModeSleep  = "sleep"
	ModeReboot = "reboot"
)

// Classes lists every dynamics class accepted by Spec.Validate.
func Classes() []string {
	return []string{ClassEdgeChurn, ClassTargetedCut, ClassBurst, ClassCrash}
}

// Spec is the JSON-facing description of one dynamics environment, the
// "dynamics" block of RunSpec/SweepSpec. The zero value of every
// optional field means "class default" (see Normalize); Seed 0 derives
// the environment seed from the run seed, so a grid over run seeds
// varies the perturbations with the workload.
type Spec struct {
	Class    string `json:"class"`
	Rate     int    `json:"rate,omitempty"`     // edits per round / crash wave size (default 1)
	Preserve bool   `json:"preserve,omitempty"` // churn/burst: never disconnect the graph
	Quiet    int    `json:"quiet,omitempty"`    // burst: calm rounds per cycle (default 8)
	Storm    int    `json:"storm,omitempty"`    // burst: churn rounds per cycle (default 4)
	Down     int    `json:"down,omitempty"`     // crash: rounds a node stays down (default 3)
	Mode     string `json:"mode,omitempty"`     // crash: "sleep" (default) or "reboot"
	Seed     int64  `json:"seed,omitempty"`     // 0: derive from the run seed
}

// Normalize returns the spec with class defaults filled in, so equal
// environments render equal keys regardless of which optional fields
// the caller spelled out.
func (s Spec) Normalize() Spec {
	if s.Rate == 0 {
		s.Rate = 1
	}
	if s.Class == ClassBurst {
		if s.Quiet == 0 {
			s.Quiet = 8
		}
		if s.Storm == 0 {
			s.Storm = 4
		}
	}
	if s.Class == ClassCrash {
		if s.Down == 0 {
			s.Down = 3
		}
		if s.Mode == "" {
			s.Mode = ModeSleep
		}
	}
	return s
}

// Validate checks the spec. Field constraints are class-aware: burst
// phases must be positive, the crash mode must be known, and Rate must
// not be negative.
func (s Spec) Validate() error {
	if !slices.Contains(Classes(), s.Class) {
		return fmt.Errorf("dynamics: unknown class %q (want one of %v)", s.Class, Classes())
	}
	n := s.Normalize()
	if n.Rate < 1 {
		return fmt.Errorf("dynamics: rate must be positive, got %d", s.Rate)
	}
	if s.Class == ClassBurst && (n.Quiet < 1 || n.Storm < 1) {
		return fmt.Errorf("dynamics: burst needs positive quiet/storm phases, got quiet=%d storm=%d", s.Quiet, s.Storm)
	}
	if s.Class == ClassCrash {
		if n.Down < 1 {
			return fmt.Errorf("dynamics: crash down-time must be positive, got %d", s.Down)
		}
		if n.Mode != ModeSleep && n.Mode != ModeReboot {
			return fmt.Errorf("dynamics: unknown crash mode %q (want %q or %q)", s.Mode, ModeSleep, ModeReboot)
		}
	} else if s.Mode != "" {
		return fmt.Errorf("dynamics: mode applies to class %q only", ClassCrash)
	}
	return nil
}

// Key renders the normalized spec canonically: every field that
// influences the perturbation sequence, and only those. It is folded
// into run keys (runkey.WithDynamics), so caching, journaling and
// fleet dispatch distinguish dynamics variants of a run exactly when
// the executions can differ.
func (s Spec) Key() string {
	s = s.Normalize()
	var b strings.Builder
	b.WriteString(s.Class)
	b.WriteString(",k=")
	b.WriteString(strconv.Itoa(s.Rate))
	switch s.Class {
	case ClassEdgeChurn:
		fmt.Fprintf(&b, ",preserve=%t", s.Preserve)
	case ClassBurst:
		fmt.Fprintf(&b, ",preserve=%t,quiet=%d,storm=%d", s.Preserve, s.Quiet, s.Storm)
	case ClassCrash:
		fmt.Fprintf(&b, ",down=%d,mode=%s", s.Down, s.Mode)
	}
	fmt.Fprintf(&b, ",seed=%d", s.Seed)
	return b.String()
}

// Schedule is one perturbation policy: the class-specific logic behind
// an Env. Perturb appends this boundary's edits; it must be
// deterministic given Reset's rng and the observed History.
type Schedule interface {
	// Class names the schedule's dynamics class.
	Class() string
	// Reset binds the schedule to a run of n nodes drawing randomness
	// from rng (retained; shared with no one else).
	Reset(n int, rng *rand.Rand)
	// Perturb appends the boundary's edits after round `round`.
	Perturb(round int, hist *temporal.History, edits *sim.EnvEdits)
}

// NewSchedule builds the schedule a normalized, validated spec names.
func NewSchedule(spec Spec) (Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	switch spec.Class {
	case ClassEdgeChurn:
		return &churnSchedule{k: spec.Rate, preserve: spec.Preserve}, nil
	case ClassTargetedCut:
		return &targetedCutSchedule{k: spec.Rate}, nil
	case ClassBurst:
		return &burstSchedule{
			churnSchedule: churnSchedule{k: spec.Rate, preserve: spec.Preserve},
			quiet:         spec.Quiet,
			storm:         spec.Storm,
		}, nil
	case ClassCrash:
		return &crashSchedule{k: spec.Rate, down: spec.Down, reboot: spec.Mode == ModeReboot}, nil
	}
	return nil, fmt.Errorf("dynamics: unknown class %q (want one of %v)", spec.Class, Classes())
}

// Env adapts a Schedule to sim.Environment and keeps the fault
// counters the experiment harness reports. One Env serves one run at a
// time; Begin rebinds it (reseeding the rng), so an Env may be reused
// across runs like the engine that holds it.
type Env struct {
	spec     Spec
	seed     int64
	sched    Schedule
	rng      *rand.Rand
	crashes  int
	restarts int
}

// New builds the environment a spec describes for a run seeded with
// runSeed. A zero Spec.Seed derives the environment seed from runSeed
// and the class, so distinct seeds in a sweep grid see distinct
// perturbation sequences without extra configuration.
func New(spec Spec, runSeed int64) (*Env, error) {
	spec = spec.Normalize()
	sched, err := NewSchedule(spec)
	if err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = deriveSeed(runSeed, spec.Class)
	}
	return &Env{spec: spec, seed: seed, sched: sched}, nil
}

// Spec returns the normalized spec the environment was built from.
func (e *Env) Spec() Spec { return e.spec }

// Begin implements sim.Environment: it reseeds the schedule for a run
// of n nodes and zeroes the fault counters.
func (e *Env) Begin(n int) {
	e.rng = rand.New(rand.NewSource(e.seed))
	e.crashes, e.restarts = 0, 0
	e.sched.Reset(n, e.rng)
}

// Perturb implements sim.Environment.
func (e *Env) Perturb(round int, hist *temporal.History, edits *sim.EnvEdits) {
	e.sched.Perturb(round, hist, edits)
	e.crashes += len(edits.Crash)
	e.restarts += len(edits.Restart)
}

// Counts returns the crashes and restarts injected so far this run.
func (e *Env) Counts() (crashes, restarts int) { return e.crashes, e.restarts }

// deriveSeed mixes the run seed with the class name so every (seed,
// class) cell of a grid draws an independent perturbation sequence.
func deriveSeed(runSeed int64, class string) int64 {
	h := fnv.New64a()
	h.Write([]byte(class))
	seed := runSeed ^ int64(h.Sum64())
	if seed == 0 {
		seed = 1
	}
	return seed
}
