package dynamics

import (
	"math/rand"
	"slices"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/temporal"
)

// churnSchedule flips k random underlay edges per round. Each flip
// draws an unordered node pair: an inactive pair is activated, an
// active edge is cut. With preserve, a cut that would disconnect the
// graph is skipped (the flip is spent) — the Casteigts-style
// "always-connected" temporal class.
type churnSchedule struct {
	k        int
	preserve bool
	n        int
	rng      *rand.Rand
	work     *graph.Graph // preserve: working copy tracking this round's edits
	bfs      graph.BFSScratch
}

func (c *churnSchedule) Class() string { return ClassEdgeChurn }

func (c *churnSchedule) Reset(n int, rng *rand.Rand) {
	c.n, c.rng = n, rng
}

func (c *churnSchedule) Perturb(round int, hist *temporal.History, edits *sim.EnvEdits) {
	if c.n < 2 {
		return
	}
	view := hist.CurrentView()
	if c.preserve {
		// The connectivity probe must see this round's earlier edits
		// too: two individually-safe cuts can jointly disconnect.
		if c.work == nil {
			c.work = graph.New()
		}
		c.work.CopyCanonicalFrom(view)
	}
	for f := 0; f < c.k; f++ {
		u := graph.ID(c.rng.Intn(c.n))
		v := graph.ID(c.rng.Intn(c.n))
		if u == v {
			continue
		}
		if !c.preserve {
			if view.HasEdge(u, v) {
				edits.Deactivate = append(edits.Deactivate, graph.NewEdge(u, v))
			} else {
				edits.Activate = append(edits.Activate, graph.NewEdge(u, v))
			}
			continue
		}
		if c.work.HasEdge(u, v) {
			c.work.RemoveEdge(u, v)
			if !c.bfs.IsConnected(c.work) {
				c.work.MustAddEdge(u, v) // unsafe cut: skip the flip
				continue
			}
			edits.Deactivate = append(edits.Deactivate, graph.NewEdge(u, v))
		} else {
			c.work.MustAddEdge(u, v)
			edits.Activate = append(edits.Activate, graph.NewEdge(u, v))
		}
	}
}

// burstSchedule is churn gated by a quiet/storm cycle: quiet calm
// rounds, then storm rounds of churn, repeating.
type burstSchedule struct {
	churnSchedule
	quiet, storm int
}

func (b *burstSchedule) Class() string { return ClassBurst }

func (b *burstSchedule) Perturb(round int, hist *temporal.History, edits *sim.EnvEdits) {
	cycle := b.quiet + b.storm
	if (round-1)%cycle < b.quiet {
		return
	}
	b.churnSchedule.Perturb(round, hist, edits)
}

// targetedCutSchedule cuts, each round, the k activated-alive edges
// whose endpoint activated-degrees sum highest — it dismantles the
// algorithm's own construction where it is most load-bearing. It draws
// no randomness: the schedule is a pure function of the History.
type targetedCutSchedule struct {
	k    int
	cand []graph.Edge
}

func (t *targetedCutSchedule) Class() string { return ClassTargetedCut }

func (t *targetedCutSchedule) Reset(n int, rng *rand.Rand) {}

func (t *targetedCutSchedule) Perturb(round int, hist *temporal.History, edits *sim.EnvEdits) {
	t.cand = hist.AppendActivatedAlive(t.cand)
	if len(t.cand) == 0 {
		return
	}
	score := func(e graph.Edge) int {
		sa, _ := hist.SlotOf(e.A)
		sb, _ := hist.SlotOf(e.B)
		return hist.ActivatedDegreeAtSlot(sa) + hist.ActivatedDegreeAtSlot(sb)
	}
	// Highest score first; AppendActivatedAlive's canonical order breaks
	// ties, keeping the cut deterministic.
	slices.SortStableFunc(t.cand, func(a, b graph.Edge) int {
		return score(b) - score(a)
	})
	k := t.k
	if k > len(t.cand) {
		k = len(t.cand)
	}
	edits.Deactivate = append(edits.Deactivate, t.cand[:k]...)
}

// crashSchedule injects node outages in waves: once every node is back
// up, it takes k random nodes down for down rounds. reboot selects the
// restart semantics the engine applies (rebuild vs resume).
type crashSchedule struct {
	k, down int
	reboot  bool
	n       int
	rng     *rand.Rand
	downAt  []int // slot → boundaries remaining down (0 = up)
}

func (c *crashSchedule) Class() string { return ClassCrash }

func (c *crashSchedule) Reset(n int, rng *rand.Rand) {
	c.n, c.rng = n, rng
	if cap(c.downAt) < n {
		c.downAt = make([]int, n)
	} else {
		c.downAt = c.downAt[:n]
		clear(c.downAt)
	}
}

func (c *crashSchedule) Perturb(round int, hist *temporal.History, edits *sim.EnvEdits) {
	edits.Reboot = c.reboot
	// Age running outages; slots reaching zero restart at this boundary.
	stillDown := 0
	for s := range c.downAt {
		if c.downAt[s] == 0 {
			continue
		}
		c.downAt[s]--
		if c.downAt[s] == 0 {
			edits.Restart = append(edits.Restart, int32(s))
		} else {
			stillDown++
		}
	}
	// A new wave launches only after the previous one fully healed,
	// with one calm boundary in between (the restart round itself).
	if stillDown > 0 || len(edits.Restart) > 0 {
		return
	}
	k := c.k
	if k > c.n-1 {
		k = c.n - 1 // at least one node always stays up
	}
	for picked, tries := 0, 0; picked < k && tries < 20*k+20; tries++ {
		s := c.rng.Intn(c.n)
		if c.downAt[s] != 0 {
			continue
		}
		c.downAt[s] = c.down
		edits.Crash = append(edits.Crash, int32(s))
		picked++
	}
}
