package dynamics

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	good := []Spec{
		{Class: ClassEdgeChurn},
		{Class: ClassEdgeChurn, Rate: 3, Preserve: true},
		{Class: ClassTargetedCut, Rate: 2},
		{Class: ClassBurst, Quiet: 2, Storm: 5},
		{Class: ClassCrash, Down: 1, Mode: ModeReboot},
		{Class: ClassCrash},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []struct {
		spec Spec
		frag string
	}{
		{Spec{}, "unknown class"},
		{Spec{Class: "meteor"}, "unknown class"},
		{Spec{Class: ClassEdgeChurn, Rate: -1}, "rate must be positive"},
		{Spec{Class: ClassBurst, Quiet: -3}, "positive quiet/storm"},
		{Spec{Class: ClassCrash, Mode: "hibernate"}, "unknown crash mode"},
		{Spec{Class: ClassCrash, Down: -1}, "down-time must be positive"},
		{Spec{Class: ClassEdgeChurn, Mode: ModeSleep}, "mode applies"},
	}
	for _, tc := range bad {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Validate(%+v) = %v, want %q", tc.spec, err, tc.frag)
		}
	}
}

func TestSpecKeyCanonical(t *testing.T) {
	t.Parallel()
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Class: ClassEdgeChurn}, "edge-churn,k=1,preserve=false,seed=0"},
		{Spec{Class: ClassTargetedCut, Rate: 2}, "targeted-cut,k=2,seed=0"},
		{Spec{Class: ClassBurst}, "burst,k=1,preserve=false,quiet=8,storm=4,seed=0"},
		{Spec{Class: ClassCrash, Seed: 9}, "crash,k=1,down=3,mode=sleep,seed=9"},
	}
	for _, tc := range cases {
		if got := tc.spec.Key(); got != tc.want {
			t.Errorf("Key(%+v) = %q, want %q", tc.spec, got, tc.want)
		}
	}
	// Spelling out a default must render the same key as omitting it.
	if a, b := (Spec{Class: ClassBurst, Rate: 1, Quiet: 8}).Key(), (Spec{Class: ClassBurst}).Key(); a != b {
		t.Errorf("normalized keys differ: %q vs %q", a, b)
	}
}

func TestNewScheduleUnknownClass(t *testing.T) {
	t.Parallel()
	if _, err := NewSchedule(Spec{Class: "meteor"}); err == nil {
		t.Fatalf("NewSchedule accepted unknown class")
	}
	if _, err := New(Spec{Class: "meteor"}, 1); err == nil {
		t.Fatalf("New accepted unknown class")
	}
	for _, class := range Classes() {
		s, err := NewSchedule(Spec{Class: class})
		if err != nil {
			t.Fatalf("NewSchedule(%q): %v", class, err)
		}
		if s.Class() != class {
			t.Errorf("schedule for %q reports class %q", class, s.Class())
		}
	}
}

// expandMachine activates edges to unseen distance-2 nodes (a small
// clique-former), giving targeted-cut schedules activated edges to
// rank. It halts at a fixed round so perturbed runs still terminate.
type expandMachine struct{ rounds int }

func (m *expandMachine) Init(*sim.Context) {}

func (m *expandMachine) Send(ctx *sim.Context) {
	ctx.Broadcast(append([]graph.ID(nil), ctx.Neighbors()...))
}

func (m *expandMachine) Receive(ctx *sim.Context, inbox []sim.Message) {
	seen := map[graph.ID]bool{ctx.ID(): true}
	for _, v := range ctx.Neighbors() {
		seen[v] = true
	}
	for _, msg := range inbox {
		for _, w := range msg.Payload.([]graph.ID) {
			if !seen[w] {
				seen[w] = true
				ctx.Activate(w)
			}
		}
	}
	if ctx.Round() >= m.rounds {
		ctx.Halt()
	}
}

// envFingerprint runs the machine under a fresh Env for spec and
// returns a deterministic rendering of the full execution: final
// metrics plus every round's algorithm and environment trace.
func envFingerprint(t *testing.T, spec Spec, workers int) string {
	t.Helper()
	env, err := New(spec, 7)
	if err != nil {
		t.Fatalf("New(%+v): %v", spec, err)
	}
	factory := func(id graph.ID, _ sim.Env) sim.Machine { return &expandMachine{rounds: 24} }
	res, err := sim.Run(graph.Grid(4, 6), factory,
		sim.WithEnvironment(env),
		sim.WithTrace(),
		sim.WithMaxRounds(200),
		sim.WithParallelism(workers))
	if err != nil {
		t.Fatalf("Run(%+v, workers=%d): %v", spec, workers, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrics=%+v\n", res.Metrics)
	crashes, restarts := env.Counts()
	fmt.Fprintf(&b, "faults=%d/%d\n", crashes, restarts)
	for r := 1; ; r++ {
		act, deact, ok := res.History.TraceRound(r)
		if !ok {
			break
		}
		fmt.Fprintf(&b, "r%d alg %v %v", r, act, deact)
		if ea, ed, ok := res.History.TraceEnvRound(r); ok {
			fmt.Fprintf(&b, " env %v %v", ea, ed)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSchedulesDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	specs := []Spec{
		{Class: ClassEdgeChurn, Rate: 2},
		{Class: ClassEdgeChurn, Rate: 2, Preserve: true},
		{Class: ClassTargetedCut, Rate: 2},
		{Class: ClassBurst, Quiet: 3, Storm: 2},
		{Class: ClassCrash, Rate: 2, Down: 2},
		{Class: ClassCrash, Rate: 1, Down: 1, Mode: ModeReboot},
	}
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Key(), func(t *testing.T) {
			t.Parallel()
			want := envFingerprint(t, spec, workers[0])
			for _, w := range workers[1:] {
				if got := envFingerprint(t, spec, w); got != want {
					t.Fatalf("workers=%d diverged from workers=%d:\n%s\nvs\n%s", w, workers[0], got, want)
				}
			}
		})
	}
}

func TestChurnPreserveKeepsConnectivity(t *testing.T) {
	t.Parallel()
	// A tree is maximally fragile: any unguarded cut disconnects it.
	// With Preserve on, the engine-level connectivity check must never
	// fire — the run fails on the round limit instead (the passive
	// machine never halts), or completes.
	env, err := New(Spec{Class: ClassEdgeChurn, Rate: 3, Preserve: true}, 5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	factory := func(id graph.ID, _ sim.Env) sim.Machine { return &expandMachine{rounds: 40} }
	_, err = sim.Run(graph.CompleteBinaryTree(31), factory,
		sim.WithEnvironment(env),
		sim.WithConnectivityCheck(),
		sim.WithMaxRounds(60))
	if errors.Is(err, sim.ErrDisconnected) {
		t.Fatalf("preserve=true disconnected the graph: %v", err)
	}
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEnvCountsMatchMetrics(t *testing.T) {
	t.Parallel()
	env, err := New(Spec{Class: ClassCrash, Rate: 2, Down: 2}, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	factory := func(id graph.ID, _ sim.Env) sim.Machine { return &expandMachine{rounds: 30} }
	res, err := sim.Run(graph.Ring(12), factory,
		sim.WithEnvironment(env),
		sim.WithMaxRounds(100))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	crashes, restarts := env.Counts()
	if crashes == 0 {
		t.Fatalf("crash schedule injected no crashes over 30 rounds")
	}
	if restarts > crashes {
		t.Fatalf("restarts %d > crashes %d", restarts, crashes)
	}
	if res.Metrics.Rounds == 0 {
		t.Fatalf("no rounds recorded")
	}
	if !reflect.DeepEqual(env.Spec(), Spec{Class: ClassCrash, Rate: 2, Down: 2}.Normalize()) {
		t.Fatalf("Env.Spec() = %+v not normalized", env.Spec())
	}
}
