package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Stat summarizes one cost measure over the seeds of an aggregation
// group. StdDev is the population standard deviation (÷k, not ÷(k−1)):
// the seeds of a sweep are the whole population being reported, not a
// sample from a larger one.
type Stat struct {
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
}

// statOf computes a Stat over xs in slice order. The two-pass formula
// (mean first, then squared deviations) accumulates in a fixed order,
// so the same inputs always produce bit-identical floats regardless of
// how many workers executed the sweep.
func statOf(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	s := Stat{Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(xs)))
	return s
}

// AggregateGroup is the per-(algorithm, workload, n) summary over the
// seeds of a sweep — one row of the paper's tables: time (rounds),
// edge activations, and message volume per scheme and size.
type AggregateGroup struct {
	Algorithm string `json:"algorithm"`
	Workload  string `json:"workload"`
	N         int    `json:"n"`
	// Seeds counts the successful cells aggregated; Errors counts the
	// cells of this group excluded because their run failed (or was
	// canceled). Stats are over the successful cells only.
	Seeds  int `json:"seeds"`
	Errors int `json:"errors"`
	// LeadersOK counts successful cells that elected a unique correct
	// leader; equal to Seeds on a healthy sweep.
	LeadersOK int `json:"leaders_ok"`

	Rounds             Stat `json:"rounds"`
	TotalActivations   Stat `json:"total_activations"`
	MaxActivatedEdges  Stat `json:"max_activated_edges"`
	MaxActivatedDegree Stat `json:"max_activated_degree"`
	TotalMessages      Stat `json:"total_messages"`
}

// Aggregate folds sweep results into per-(algorithm, workload, n)
// groups, each summarizing its cost measures over the group's seeds.
// Results must be in canonical cell order (ExecuteSweep's output and
// Emit order) — seeds vary fastest there, so each group is one
// contiguous run and the output preserves grid order. Aggregation is
// pure slice arithmetic in that fixed order: its output — including
// the float statistics — is byte-for-byte deterministic for a given
// grid, regardless of sweep worker count.
func Aggregate(results []CellResult) []AggregateGroup {
	var groups []AggregateGroup
	for start := 0; start < len(results); {
		c := results[start].Cell
		end := start
		for end < len(results) {
			n := results[end].Cell
			if n.Algorithm != c.Algorithm || n.Workload != c.Workload || n.N != c.N {
				break
			}
			end++
		}
		groups = append(groups, aggregateGroup(results[start:end]))
		start = end
	}
	return groups
}

// aggregateGroup summarizes one contiguous (algorithm, workload, n)
// run of cells.
func aggregateGroup(cells []CellResult) AggregateGroup {
	g := AggregateGroup{
		Algorithm: cells[0].Cell.Algorithm,
		Workload:  cells[0].Cell.Workload,
		N:         cells[0].Cell.N,
	}
	var rounds, acts, maxEdges, maxDeg, msgs []float64
	for _, cr := range cells {
		if cr.Err != nil {
			g.Errors++
			continue
		}
		g.Seeds++
		if cr.Outcome.LeaderOK {
			g.LeadersOK++
		}
		rounds = append(rounds, float64(cr.Outcome.Rounds))
		acts = append(acts, float64(cr.Outcome.TotalActivations))
		maxEdges = append(maxEdges, float64(cr.Outcome.MaxActivatedEdges))
		maxDeg = append(maxDeg, float64(cr.Outcome.MaxActivatedDegree))
		msgs = append(msgs, float64(cr.Outcome.TotalMessages))
	}
	g.Rounds = statOf(rounds)
	g.TotalActivations = statOf(acts)
	g.MaxActivatedEdges = statOf(maxEdges)
	g.MaxActivatedDegree = statOf(maxDeg)
	g.TotalMessages = statOf(msgs)
	return g
}

// MergeAggregates fold-merges per-shard aggregate group lists into the
// whole-grid aggregate. Shards must partition the grid along group
// boundaries and arrive in canonical grid order — the fleet planner
// guarantees both (a shard is a whole number of (algorithm, workload,
// n) rows) — so each group's statistics were computed over exactly the
// seeds a single-process Aggregate of the same grid would use, and
// merging reduces to concatenation: the result is byte-for-byte
// identical to the single-process aggregate. A group repeated across
// shards (a re-dispatched shard overlapping a completed one) must be
// identical — runs are deterministic — and is deduplicated; a group
// whose statistics differ between shards means the shards split a
// group's seeds and cannot merge exactly, which is an error.
func MergeAggregates(shards ...[]AggregateGroup) ([]AggregateGroup, error) {
	type key struct {
		algorithm, workload string
		n                   int
	}
	var out []AggregateGroup
	seen := make(map[key]int)
	for _, shard := range shards {
		for _, g := range shard {
			k := key{g.Algorithm, g.Workload, g.N}
			if i, ok := seen[k]; ok {
				if out[i] != g {
					return nil, fmt.Errorf(
						"expt: group %s/%s n=%d split across shards: cannot fold-merge exactly",
						g.Algorithm, g.Workload, g.N)
				}
				continue
			}
			seen[k] = len(out)
			out = append(out, g)
		}
	}
	return out, nil
}

// AggregateSweep executes the grid on a default engine fleet and
// folds the results — the one-call form behind the CLIs' -aggregate
// modes, computing exactly what the service's aggregate endpoint
// serves for the same grid.
func AggregateSweep(spec SweepSpec) ([]AggregateGroup, error) {
	results, err := ExecuteSweep(spec, SweepOptions{})
	if err != nil {
		return nil, err
	}
	return Aggregate(results), nil
}

// ParseSeeds parses a comma-separated seed list ("1,2,3"), shared by
// the CLI -seeds flags.
func ParseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, v := range strings.Split(s, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expt: bad seed %q", v)
		}
		out = append(out, seed)
	}
	return out, nil
}

// AggregateTable renders groups as an aligned text table, one row per
// (algorithm, workload, n) — the figure-ready shape of the paper's
// comparison tables (mean ± stddev [min–max] over seeds).
func AggregateTable(groups []AggregateGroup) *Table {
	t := &Table{
		ID:    "AGG",
		Title: "per-(algorithm, workload, n) aggregates over seeds",
		Claim: "time, edge-activation and message costs per scheme (§2.2 measures)",
		Columns: []string{
			"algorithm", "workload", "n", "seeds", "err", "leader",
			"rounds", "activations", "max act edges", "max act deg", "messages",
		},
	}
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Algorithm,
			g.Workload,
			strconv.Itoa(g.N),
			strconv.Itoa(g.Seeds),
			strconv.Itoa(g.Errors),
			fmt.Sprintf("%d/%d", g.LeadersOK, g.Seeds),
			fmtStat(g.Rounds),
			fmtStat(g.TotalActivations),
			fmtStat(g.MaxActivatedEdges),
			fmtStat(g.MaxActivatedDegree),
			fmtStat(g.TotalMessages),
		})
	}
	return t
}

// fmtStat renders mean±stddev with the spread when it is non-trivial.
func fmtStat(s Stat) string {
	if s.Min == s.Max {
		return trimFloat(s.Mean)
	}
	return fmt.Sprintf("%s±%s [%s–%s]",
		trimFloat(s.Mean), f2(s.StdDev), trimFloat(s.Min), trimFloat(s.Max))
}

// trimFloat renders integral values without a fraction.
func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return strconv.FormatFloat(x, 'f', 0, 64)
	}
	return strconv.FormatFloat(x, 'f', 2, 64)
}

// csvMeasures is the single source of truth for the CSV export's
// measure columns: the same entry yields a measure's header names and
// its row values, so the two cannot drift apart.
var csvMeasures = []struct {
	name string
	stat func(AggregateGroup) Stat
}{
	{"rounds", func(g AggregateGroup) Stat { return g.Rounds }},
	{"total_activations", func(g AggregateGroup) Stat { return g.TotalActivations }},
	{"max_activated_edges", func(g AggregateGroup) Stat { return g.MaxActivatedEdges }},
	{"max_activated_degree", func(g AggregateGroup) Stat { return g.MaxActivatedDegree }},
	{"total_messages", func(g AggregateGroup) Stat { return g.TotalMessages }},
}

// AggregateCSV writes groups as CSV — a header row, then one row per
// (algorithm, workload, n) group with mean/min/max/stddev columns for
// every cost measure. Floats use the shortest exact representation
// (strconv 'g', precision -1), so the export round-trips the aggregate
// bit-for-bit into plotting pipelines. This is the figure-ready shape
// behind the CLIs' -csv flags.
func AggregateCSV(w io.Writer, groups []AggregateGroup) error {
	cw := csv.NewWriter(w)
	header := []string{"algorithm", "workload", "n", "seeds", "errors", "leaders_ok"}
	for _, m := range csvMeasures {
		header = append(header, m.name+"_mean", m.name+"_min", m.name+"_max", m.name+"_stddev")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, g := range groups {
		row := []string{
			g.Algorithm, g.Workload,
			strconv.Itoa(g.N), strconv.Itoa(g.Seeds), strconv.Itoa(g.Errors), strconv.Itoa(g.LeadersOK),
		}
		for _, m := range csvMeasures {
			s := m.stat(g)
			row = append(row, f(s.Mean), f(s.Min), f(s.Max), f(s.StdDev))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
