package expt

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"adnet/internal/dynamics"
)

// BaselineDynamicsKey labels the no-environment rows of a robustness
// matrix.
const BaselineDynamicsKey = "none"

// RobustnessSpec describes a robustness matrix: the sweep grid to run
// once undisturbed (the baseline) and once per dynamics environment,
// measuring how gracefully each algorithm degrades under each class of
// adversarial perturbation.
type RobustnessSpec struct {
	Algorithms []string
	Workloads  []string
	Sizes      []int
	Seeds      []int64
	// Dynamics lists the environments to measure against the baseline.
	// Duplicate specs (equal keys after normalization) are ignored
	// after the first.
	Dynamics []dynamics.Spec
	// MaxRounds, when positive, overrides every run's round limit; the
	// engine's default cap (64·n + 64) already bounds runs an
	// environment keeps from halting.
	MaxRounds int
	// Workers sizes each sweep's engine fleet (default GOMAXPROCS).
	// Matrix rows are byte-identical for every worker count.
	Workers int
}

// Validate checks the grid and every dynamics spec.
func (s RobustnessSpec) Validate() error {
	if err := s.sweep(nil).Validate(); err != nil {
		return err
	}
	if len(s.Dynamics) == 0 {
		return fmt.Errorf("expt: robustness matrix needs at least one dynamics spec")
	}
	for _, d := range s.Dynamics {
		if err := (SweepSpec{
			Algorithms: s.Algorithms, Workloads: s.Workloads,
			Sizes: s.Sizes, Seeds: s.Seeds, MaxRounds: s.MaxRounds,
			Dynamics: &d,
		}).Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s RobustnessSpec) sweep(dyn *dynamics.Spec) SweepSpec {
	return SweepSpec{
		Algorithms: s.Algorithms,
		Workloads:  s.Workloads,
		Sizes:      s.Sizes,
		Seeds:      s.Seeds,
		MaxRounds:  s.MaxRounds,
		Dynamics:   dyn,
	}
}

// RobustnessRow is one (algorithm, workload, n, dynamics) summary over
// the grid's seeds. A run succeeds when it completes within its round
// limit and elects the correct leader; under dynamics both can
// honestly fail, and the row reports how often. ActivationOverhead is
// the mean activation cost relative to the same cell's undisturbed
// baseline (1.0 = no overhead; 0 when either side has no successes).
type RobustnessRow struct {
	Algorithm          string  `json:"algorithm"`
	Workload           string  `json:"workload"`
	N                  int     `json:"n"`
	Dynamics           string  `json:"dynamics"` // dynamics.Spec.Key(), or "none"
	Runs               int     `json:"runs"`
	Successes          int     `json:"successes"`
	SuccessRate        float64 `json:"success_rate"`
	MeanRounds         float64 `json:"mean_rounds"`      // over successful runs
	MeanActivations    float64 `json:"mean_activations"` // over successful runs
	ActivationOverhead float64 `json:"activation_overhead"`
	EnvEdits           int     `json:"env_edits"` // environment edge edits, summed over runs
	Crashes            int     `json:"crashes"`
	Restarts           int     `json:"restarts"`
}

// RobustnessMatrix runs the grid once without dynamics and once per
// dynamics spec, and folds each sweep into per-(algorithm, workload,
// n) rows. Rows are grouped cell-major: each grid cell's baseline row
// first, then one row per environment in spec order. Sweeps run in
// ExecuteSweep's canonical cell order and the fold is pure slice
// arithmetic in that order, so the matrix — floats included — is
// byte-for-byte deterministic for a given spec, regardless of worker
// count.
func RobustnessMatrix(spec RobustnessSpec) ([]RobustnessRow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts := SweepOptions{Workers: spec.Workers}

	base, err := ExecuteSweep(spec.sweep(nil), opts)
	if err != nil {
		return nil, err
	}
	baseRows := foldRobustness(base, BaselineDynamicsKey)
	for i := range baseRows {
		if baseRows[i].Successes > 0 {
			baseRows[i].ActivationOverhead = 1
		}
	}

	variants := make([][]RobustnessRow, 0, len(spec.Dynamics))
	seen := map[string]bool{}
	for i := range spec.Dynamics {
		d := spec.Dynamics[i].Normalize()
		key := d.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		results, err := ExecuteSweep(spec.sweep(&d), opts)
		if err != nil {
			return nil, err
		}
		rows := foldRobustness(results, key)
		// Every sweep enumerates the same grid, so rows align by index
		// with the baseline fold.
		for j := range rows {
			if rows[j].Successes > 0 && baseRows[j].MeanActivations > 0 {
				rows[j].ActivationOverhead = rows[j].MeanActivations / baseRows[j].MeanActivations
			}
		}
		variants = append(variants, rows)
	}

	out := make([]RobustnessRow, 0, len(baseRows)*(len(variants)+1))
	for i := range baseRows {
		out = append(out, baseRows[i])
		for _, rows := range variants {
			out = append(out, rows[i])
		}
	}
	return out, nil
}

// foldRobustness groups canonical-order sweep results by (algorithm,
// workload, n) — seeds vary fastest — into robustness rows.
func foldRobustness(results []CellResult, dynKey string) []RobustnessRow {
	var rows []RobustnessRow
	for start := 0; start < len(results); {
		c := results[start].Cell
		end := start
		for end < len(results) {
			n := results[end].Cell
			if n.Algorithm != c.Algorithm || n.Workload != c.Workload || n.N != c.N {
				break
			}
			end++
		}
		row := RobustnessRow{Algorithm: c.Algorithm, Workload: c.Workload, N: c.N, Dynamics: dynKey}
		var sumRounds, sumActs int
		for _, cr := range results[start:end] {
			row.Runs++
			row.EnvEdits += cr.Outcome.EnvActivations + cr.Outcome.EnvDeactivations
			row.Crashes += cr.Outcome.Crashes
			row.Restarts += cr.Outcome.Restarts
			if cr.Err != nil || !cr.Outcome.LeaderOK {
				continue
			}
			row.Successes++
			sumRounds += cr.Outcome.Rounds
			sumActs += cr.Outcome.TotalActivations
		}
		row.SuccessRate = float64(row.Successes) / float64(row.Runs)
		if row.Successes > 0 {
			row.MeanRounds = float64(sumRounds) / float64(row.Successes)
			row.MeanActivations = float64(sumActs) / float64(row.Successes)
		}
		rows = append(rows, row)
		start = end
	}
	return rows
}

// RobustnessTable renders matrix rows as an aligned text table.
func RobustnessTable(rows []RobustnessRow) *Table {
	t := &Table{
		ID:    "ROBUST",
		Title: "success and overhead per (algorithm, workload, n, dynamics)",
		Claim: "graceful degradation under adversarial dynamics (related work: passively dynamic networks)",
		Columns: []string{
			"algorithm", "workload", "n", "dynamics", "ok",
			"rounds", "activations", "overhead", "env edits", "crashes",
		},
	}
	for _, r := range rows {
		overhead := "-"
		if r.ActivationOverhead > 0 {
			overhead = f2(r.ActivationOverhead)
		}
		crashes := "-"
		if r.Crashes > 0 {
			crashes = fmt.Sprintf("%d/%d", r.Crashes, r.Restarts)
		}
		t.Rows = append(t.Rows, []string{
			r.Algorithm,
			r.Workload,
			strconv.Itoa(r.N),
			r.Dynamics,
			fmt.Sprintf("%d/%d", r.Successes, r.Runs),
			trimFloat(r.MeanRounds),
			trimFloat(r.MeanActivations),
			overhead,
			strconv.Itoa(r.EnvEdits),
			crashes,
		})
	}
	return t
}

// RobustnessCSV writes matrix rows as CSV, floats in shortest exact
// form so the export round-trips bit-for-bit.
func RobustnessCSV(w io.Writer, rows []RobustnessRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"algorithm", "workload", "n", "dynamics", "runs", "successes",
		"success_rate", "mean_rounds", "mean_activations", "activation_overhead",
		"env_edits", "crashes", "restarts",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Algorithm, r.Workload, strconv.Itoa(r.N), r.Dynamics,
			strconv.Itoa(r.Runs), strconv.Itoa(r.Successes),
			f(r.SuccessRate), f(r.MeanRounds), f(r.MeanActivations), f(r.ActivationOverhead),
			strconv.Itoa(r.EnvEdits), strconv.Itoa(r.Crashes), strconv.Itoa(r.Restarts),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RobustnessJSON renders matrix rows as indented JSON — the snapshot
// format committed as ROBUSTNESS_LATEST.json and consumed by
// CompareRobustness in CI.
func RobustnessJSON(rows []RobustnessRow) ([]byte, error) {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseRobustness decodes a RobustnessJSON snapshot.
func ParseRobustness(data []byte) ([]RobustnessRow, error) {
	var rows []RobustnessRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("expt: bad robustness snapshot: %w", err)
	}
	return rows, nil
}

// CompareRobustness gates current matrix rows against a committed
// baseline snapshot: every baseline row must be present (matched by
// algorithm, workload, n and dynamics key) with at least as many
// successes. Runs are deterministic, so a success count can only drop
// through a code change — the gate makes that change bump the
// snapshot deliberately, like the benchmark baseline. Extra current
// rows (a grown matrix) pass.
func CompareRobustness(current, baseline []RobustnessRow) error {
	type key struct {
		algorithm, workload, dynamics string
		n                             int
	}
	cur := make(map[key]RobustnessRow, len(current))
	for _, r := range current {
		cur[key{r.Algorithm, r.Workload, r.Dynamics, r.N}] = r
	}
	var regressions []string
	for _, b := range baseline {
		k := key{b.Algorithm, b.Workload, b.Dynamics, b.N}
		c, ok := cur[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s n=%d dyn=%s: row missing from current matrix", b.Algorithm, b.Workload, b.N, b.Dynamics))
			continue
		}
		if c.Runs != b.Runs {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s n=%d dyn=%s: %d runs, baseline had %d (grid drifted)",
				b.Algorithm, b.Workload, b.N, b.Dynamics, c.Runs, b.Runs))
			continue
		}
		if c.Successes < b.Successes {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s n=%d dyn=%s: %d/%d succeeded, baseline had %d/%d",
				b.Algorithm, b.Workload, b.N, b.Dynamics, c.Successes, c.Runs, b.Successes, b.Runs))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("expt: robustness regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}
