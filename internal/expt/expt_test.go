package expt

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tab.Columns)
	return ""
}

func cellInt(t *testing.T, tab *Table, row int, col string) int {
	t.Helper()
	v, err := strconv.Atoi(cell(t, tab, row, col))
	if err != nil {
		t.Fatalf("cell %s[%d] = %q not an int", col, row, cell(t, tab, row, col))
	}
	return v
}

func cellFloat(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("cell %s[%d] not a float", col, row)
	}
	return v
}

func TestAllExperimentsRunSmall(t *testing.T) {
	t.Parallel()
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tab, err := Run(id, []int{32, 64})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if !strings.Contains(tab.String(), tab.ID) {
				t.Fatalf("%s: render broken", id)
			}
		})
	}
}

func TestE3ShapeHolds(t *testing.T) {
	t.Parallel()
	tab, err := E3GraphToStar([]int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if cell(t, tab, i, "leaderOK") != "true" {
			t.Errorf("row %d: leader election failed", i)
		}
		if d := cellInt(t, tab, i, "finalDepth"); d != 1 {
			t.Errorf("row %d: depth %d, want 1 (star)", i, d)
		}
		// Normalized activations stay bounded (the n log n shape).
		if r := cellFloat(t, tab, i, "act/(n log n)"); r > 4 {
			t.Errorf("row %d: activation ratio %v", i, r)
		}
	}
}

func TestE9SeparationGrows(t *testing.T) {
	t.Parallel()
	tab, err := E9DistributedActivations([]int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	r0 := cellFloat(t, tab, 0, "ratio")
	r1 := cellFloat(t, tab, 1, "ratio")
	if r1 <= r0 {
		t.Errorf("separation should grow with n: %v then %v", r0, r1)
	}
}

func TestE12SpeedupGrows(t *testing.T) {
	t.Parallel()
	tab, err := E12Compose([]int{64, 512})
	if err != nil {
		t.Fatal(err)
	}
	s0 := cellFloat(t, tab, 0, "speedup")
	s1 := cellFloat(t, tab, 1, "speedup")
	if s1 <= s0 {
		t.Errorf("composition speedup should grow with n: %v then %v", s0, s1)
	}
	if s1 < 2 {
		t.Errorf("composition should clearly beat flooding at n=512: %v", s1)
	}
}

func TestTradeoffTable(t *testing.T) {
	t.Parallel()
	tab, err := TradeoffTable(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Algorithms()) {
		t.Fatalf("rows %d, want %d", len(tab.Rows), len(Algorithms()))
	}
	// The clique strategy must dominate everyone on activations.
	var clique, star int
	for i := range tab.Rows {
		switch cell(t, tab, i, "algorithm") {
		case AlgoClique:
			clique = cellInt(t, tab, i, "totalAct")
		case AlgoStar:
			star = cellInt(t, tab, i, "totalAct")
		}
	}
	if clique <= star {
		t.Errorf("clique (%d) should cost more activations than star (%d)", clique, star)
	}
}

func TestWorkloadsAndAlgorithmNames(t *testing.T) {
	t.Parallel()
	for _, w := range []string{"line", "ring", "random-tree", "bounded-degree", "random", "star"} {
		g, err := Workload(w, 20, 1)
		if err != nil || g.NumNodes() != 20 {
			t.Errorf("workload %s: %v", w, err)
		}
	}
	if _, err := Workload("nope", 10, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := RunAlgorithm("nope", nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
