package expt

import (
	"strings"
	"testing"

	"adnet/internal/dynamics"
)

// S1: unknown-name errors must list the valid names, matching the
// service spec idiom.
func TestUnknownNameErrorsListValidNames(t *testing.T) {
	t.Parallel()
	_, err := Workload("no-such-family", 8, 1)
	if err == nil || !strings.Contains(err.Error(), "want one of") || !strings.Contains(err.Error(), "line") {
		t.Errorf("workload error should list families: %v", err)
	}
	_, err = Execute(Request{Algorithm: "no-such-algo", Workload: "line", N: 8})
	if err == nil || !strings.Contains(err.Error(), "want one of") || !strings.Contains(err.Error(), AlgoFlood) {
		t.Errorf("algorithm error should list algorithms: %v", err)
	}
	spec := SweepSpec{Algorithms: []string{"no-such-algo"}, Workloads: []string{"line"}, Sizes: []int{8}, Seeds: []int64{1}}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "want one of") {
		t.Errorf("sweep algorithm error should list algorithms: %v", err)
	}
}

func TestExecuteWithDynamics(t *testing.T) {
	t.Parallel()
	req := Request{
		Algorithm: AlgoFlood, Workload: "line", N: 16, Seed: 1,
		Dynamics: &dynamics.Spec{Class: dynamics.ClassEdgeChurn, Rate: 2},
	}
	out, err := Execute(req)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !out.LeaderOK {
		t.Fatalf("flood under churn failed: %+v", out)
	}
	if out.EnvActivations+out.EnvDeactivations == 0 {
		t.Fatalf("churn produced no env edits: %+v", out)
	}
	// The same request without dynamics carries no env effects.
	req.Dynamics = nil
	out, err = Execute(req)
	if err != nil {
		t.Fatalf("Execute baseline: %v", err)
	}
	if out.EnvActivations != 0 || out.EnvDeactivations != 0 || out.Crashes != 0 || out.Restarts != 0 {
		t.Fatalf("baseline outcome carries env effects: %+v", out)
	}
}

func TestExecuteRejectsDynamicsOnCentralized(t *testing.T) {
	t.Parallel()
	_, err := Execute(Request{
		Algorithm: AlgoCentralized, Workload: "line", N: 8, Seed: 1,
		Dynamics: &dynamics.Spec{Class: dynamics.ClassEdgeChurn},
	})
	if err == nil || !strings.Contains(err.Error(), "no simulation to perturb") {
		t.Fatalf("centralized + dynamics accepted: %v", err)
	}
	spec := SweepSpec{
		Algorithms: []string{AlgoCentralized}, Workloads: []string{"line"},
		Sizes: []int{8}, Seeds: []int64{1},
		Dynamics: &dynamics.Spec{Class: dynamics.ClassEdgeChurn},
	}
	if err := spec.Validate(); err == nil {
		t.Fatalf("sweep centralized + dynamics accepted")
	}
	badDyn := SweepSpec{
		Algorithms: []string{AlgoFlood}, Workloads: []string{"line"},
		Sizes: []int{8}, Seeds: []int64{1},
		Dynamics: &dynamics.Spec{Class: "meteor"},
	}
	if err := badDyn.Validate(); err == nil {
		t.Fatalf("sweep with bad dynamics class accepted")
	}
}

func TestSweepCellsCarryDynamics(t *testing.T) {
	t.Parallel()
	dyn := &dynamics.Spec{Class: dynamics.ClassCrash, Rate: 1, Down: 2}
	spec := SweepSpec{
		Algorithms: []string{AlgoFlood}, Workloads: []string{"line"},
		Sizes: []int{8, 16}, Seeds: []int64{1, 2},
		Dynamics: dyn,
	}
	cells := spec.Cells()
	if len(cells) != 4 {
		t.Fatalf("%d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Dynamics == nil || c.Dynamics.Class != dynamics.ClassCrash {
			t.Fatalf("cell %+v lost its dynamics spec", c)
		}
		if c.Request().Dynamics != c.Dynamics {
			t.Fatalf("cell request does not forward the dynamics spec")
		}
	}
}
