//go:build !race

package expt

import (
	"testing"

	"adnet/internal/sim"
)

// TestStarSteadyStateZeroAllocs pins the PR's headline property: after
// warm-up, a graph-to-star run on a reused Runner — workload
// generation, machine recycling, the full round loop, intent
// application, observer fold and post-run analysis — performs zero
// heap allocations. Excluded under -race because the detector's
// instrumentation allocates. Workloads cover both bench families.
func TestStarSteadyStateZeroAllocs(t *testing.T) {
	for _, workload := range []string{"line", "ring"} {
		r := NewRunner()
		obs := sim.WithRunObserver(func(sim.RunSummary) {})
		req := Request{Algorithm: AlgoStar, Workload: workload, N: 1024, Seed: 1,
			SimOpts: []sim.Option{obs}}
		// Two warm-up runs: the first grows every buffer, the second
		// verifies nothing regrows before measurement starts.
		for i := 0; i < 2; i++ {
			if _, err := r.Execute(req); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := r.Execute(req); err != nil {
				t.Fatal(err)
			}
		})
		r.Close()
		if allocs != 0 {
			t.Errorf("workload %s: steady-state allocs per run = %v, want 0", workload, allocs)
		}
	}
}
