package expt

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"adnet/internal/dynamics"
)

func robustnessTestSpec(workers int) RobustnessSpec {
	return RobustnessSpec{
		Algorithms: []string{AlgoStar, AlgoWreath, AlgoThinWreath, AlgoClique, AlgoFlood},
		Workloads:  []string{"line"},
		Sizes:      []int{12},
		Seeds:      []int64{1, 2},
		Dynamics: []dynamics.Spec{
			{Class: dynamics.ClassEdgeChurn, Rate: 1},
			{Class: dynamics.ClassTargetedCut, Rate: 1},
			{Class: dynamics.ClassBurst, Quiet: 2, Storm: 2},
			{Class: dynamics.ClassCrash, Down: 2},
		},
		MaxRounds: 300,
		Workers:   workers,
	}
}

// TestRobustnessMatrixDeterministicAcrossWorkers is the PR's
// acceptance bar: the full matrix — all five distributed algorithms
// against four dynamics classes — renders byte-identically no matter
// how many engine workers execute the sweeps.
func TestRobustnessMatrixDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	render := func(workers int) string {
		rows, err := RobustnessMatrix(robustnessTestSpec(workers))
		if err != nil {
			t.Fatalf("RobustnessMatrix(workers=%d): %v", workers, err)
		}
		js, err := RobustnessJSON(rows)
		if err != nil {
			t.Fatalf("RobustnessJSON: %v", err)
		}
		var csv bytes.Buffer
		if err := RobustnessCSV(&csv, rows); err != nil {
			t.Fatalf("RobustnessCSV: %v", err)
		}
		return string(js) + csv.String() + RobustnessTable(rows).String()
	}
	want := render(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := render(w); got != want {
			t.Fatalf("matrix diverged between workers=1 and workers=%d:\n%s\nvs\n%s", w, want, got)
		}
	}
}

func TestRobustnessMatrixShape(t *testing.T) {
	t.Parallel()
	spec := robustnessTestSpec(0)
	// A duplicate spec (same normalized key) must not add rows.
	spec.Dynamics = append(spec.Dynamics, dynamics.Spec{Class: dynamics.ClassEdgeChurn})
	rows, err := RobustnessMatrix(spec)
	if err != nil {
		t.Fatalf("RobustnessMatrix: %v", err)
	}
	// 5 algorithms x 1 workload x 1 size, each with baseline + 4
	// distinct environments.
	if len(rows) != 5*5 {
		t.Fatalf("%d rows, want 25", len(rows))
	}
	for i, r := range rows {
		if i%5 == 0 {
			if r.Dynamics != BaselineDynamicsKey {
				t.Fatalf("row %d: dynamics = %q, want baseline first per cell", i, r.Dynamics)
			}
			// The paper's constructions all succeed undisturbed.
			if r.Successes != r.Runs || r.Runs != 2 {
				t.Fatalf("baseline row %d: %d/%d succeeded", i, r.Successes, r.Runs)
			}
			if r.ActivationOverhead != 1 {
				t.Fatalf("baseline row %d: overhead = %v, want 1", i, r.ActivationOverhead)
			}
			if r.EnvEdits != 0 || r.Crashes != 0 || r.Restarts != 0 {
				t.Fatalf("baseline row %d carries env effects: %+v", i, r)
			}
		} else if r.Dynamics == BaselineDynamicsKey {
			t.Fatalf("row %d: unexpected baseline row", i)
		}
		if r.SuccessRate < 0 || r.SuccessRate > 1 {
			t.Fatalf("row %d: SuccessRate = %v", i, r.SuccessRate)
		}
	}
}

func TestRobustnessJSONRoundTrip(t *testing.T) {
	t.Parallel()
	rows := []RobustnessRow{
		{Algorithm: AlgoFlood, Workload: "line", N: 8, Dynamics: BaselineDynamicsKey,
			Runs: 2, Successes: 2, SuccessRate: 1, MeanRounds: 8.5, MeanActivations: 0, ActivationOverhead: 1},
		{Algorithm: AlgoFlood, Workload: "line", N: 8, Dynamics: "edge-churn,k=1,preserve=false,seed=0",
			Runs: 2, Successes: 1, SuccessRate: 0.5, MeanRounds: 9, EnvEdits: 17},
	}
	js, err := RobustnessJSON(rows)
	if err != nil {
		t.Fatalf("RobustnessJSON: %v", err)
	}
	back, err := ParseRobustness(js)
	if err != nil {
		t.Fatalf("ParseRobustness: %v", err)
	}
	js2, err := RobustnessJSON(back)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(js, js2) {
		t.Fatalf("snapshot did not round-trip:\n%s\nvs\n%s", js, js2)
	}
	if _, err := ParseRobustness([]byte("{")); err == nil {
		t.Fatalf("ParseRobustness accepted garbage")
	}
}

func TestCompareRobustness(t *testing.T) {
	t.Parallel()
	base := []RobustnessRow{
		{Algorithm: AlgoFlood, Workload: "line", N: 8, Dynamics: "none", Runs: 2, Successes: 2},
		{Algorithm: AlgoClique, Workload: "line", N: 8, Dynamics: "none", Runs: 2, Successes: 1},
	}
	// Identical matrix passes; improvements and extra rows pass too.
	cur := []RobustnessRow{base[0], {Algorithm: AlgoClique, Workload: "line", N: 8, Dynamics: "none", Runs: 2, Successes: 2},
		{Algorithm: AlgoStar, Workload: "ring", N: 16, Dynamics: "none", Runs: 2, Successes: 0}}
	if err := CompareRobustness(cur, base); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}
	// A success drop is a regression.
	drop := []RobustnessRow{base[0], {Algorithm: AlgoClique, Workload: "line", N: 8, Dynamics: "none", Runs: 2, Successes: 0}}
	if err := CompareRobustness(drop, base); err == nil || !strings.Contains(err.Error(), "succeeded") {
		t.Fatalf("success drop not flagged: %v", err)
	}
	// A missing row is a regression.
	if err := CompareRobustness(cur[:1], base); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing row not flagged: %v", err)
	}
	// A run-count change is grid drift.
	drift := []RobustnessRow{base[0], {Algorithm: AlgoClique, Workload: "line", N: 8, Dynamics: "none", Runs: 4, Successes: 4}}
	if err := CompareRobustness(drift, base); err == nil || !strings.Contains(err.Error(), "grid drifted") {
		t.Fatalf("grid drift not flagged: %v", err)
	}
}

func TestRobustnessSpecValidate(t *testing.T) {
	t.Parallel()
	spec := robustnessTestSpec(0)
	spec.Dynamics = nil
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "at least one dynamics spec") {
		t.Fatalf("empty dynamics accepted: %v", err)
	}
	spec = robustnessTestSpec(0)
	spec.Dynamics[0].Class = "meteor"
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("bad dynamics class accepted: %v", err)
	}
	spec = robustnessTestSpec(0)
	spec.Algorithms = []string{AlgoCentralized}
	if err := spec.Validate(); err == nil {
		t.Fatalf("centralized + dynamics accepted")
	}
}
