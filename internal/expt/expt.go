// Package expt is the experiment harness: it regenerates every
// table/figure-level claim of the paper (the experiment index E1–E13
// in DESIGN.md) as measured series, ready for EXPERIMENTS.md and the
// benchmark suite.
package expt

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strings"

	"adnet/internal/baseline"
	"adnet/internal/core"
	"adnet/internal/dynamics"
	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/tasks"
)

// Outcome is the unified measurement of one run, in the paper's cost
// measures (§2.2). The dynamics fields (environment edits and injected
// faults) are zero — and omitted from the wire shape — for runs
// without a dynamics environment, so pre-dynamics streams and caches
// stay byte-identical.
type Outcome struct {
	N                  int
	Rounds             int // rounds until every node halted
	LastActivity       int // last round with an edge activation/deactivation
	TotalActivations   int
	MaxActivatedEdges  int // max_i |E(i) \ E(1)|
	MaxActivatedDegree int
	TotalMessages      int // delivered point-to-point messages (0 for the centralized baseline)
	FinalDiameter      int // diameter of the final active graph
	FinalDepth         int // eccentricity of the elected leader
	LeaderOK           bool
	EnvActivations     int `json:"EnvActivations,omitempty"`   // edges the environment switched on
	EnvDeactivations   int `json:"EnvDeactivations,omitempty"` // edges the environment cut
	Crashes            int `json:"Crashes,omitempty"`          // node outages injected
	Restarts           int `json:"Restarts,omitempty"`         // node restarts injected
}

// Algorithm names for RunAlgorithm.
const (
	AlgoStar        = "graph-to-star"
	AlgoWreath      = "graph-to-wreath"
	AlgoThinWreath  = "graph-to-thinwreath"
	AlgoClique      = "clique"
	AlgoFlood       = "flood"
	AlgoCentralized = "centralized-euler"
)

// Algorithms lists every runnable algorithm name.
func Algorithms() []string {
	return []string{AlgoStar, AlgoWreath, AlgoThinWreath, AlgoClique, AlgoFlood, AlgoCentralized}
}

// Request names one deterministic run: an algorithm, a workload
// family, a size and a seed. It is the spec-driven entry point shared
// by the CLIs and the service layer (internal/service).
type Request struct {
	Algorithm string
	Workload  string
	N         int
	Seed      int64
	// Dynamics, when non-nil, attaches the described adversarial
	// environment (internal/dynamics) to the run: the network is
	// perturbed between rounds and the outcome's Env*/Crashes/Restarts
	// fields report the injected disruption. The centralized baseline
	// runs no simulation and rejects dynamics.
	Dynamics *dynamics.Spec
	// SimOpts are appended after the algorithm's own defaults, so
	// callers can override round limits or attach hooks. The
	// centralized baseline runs no simulation and ignores them.
	SimOpts []sim.Option
}

// Execute builds the workload and runs the algorithm on it.
func Execute(req Request) (Outcome, error) {
	env, err := applyDynamics(&req)
	if err != nil {
		return Outcome{}, err
	}
	g, err := Workload(req.Workload, req.N, req.Seed)
	if err != nil {
		return Outcome{}, err
	}
	out, err := RunAlgorithmOpts(req.Algorithm, g, req.SimOpts...)
	if err == nil && env != nil {
		out.Crashes, out.Restarts = env.Counts()
	}
	return out, err
}

// applyDynamics builds the environment a request's dynamics block
// names and appends it to the request's sim options. The returned Env
// is nil when the request carries no dynamics.
func applyDynamics(req *Request) (*dynamics.Env, error) {
	if req.Dynamics == nil {
		return nil, nil
	}
	if req.Algorithm == AlgoCentralized {
		return nil, fmt.Errorf("expt: dynamics do not apply to %s (no simulation to perturb)", AlgoCentralized)
	}
	env, err := dynamics.New(*req.Dynamics, req.Seed)
	if err != nil {
		return nil, err
	}
	req.SimOpts = append(req.SimOpts, sim.WithEnvironment(env))
	return env, nil
}

// Shared machine factories. The factories are stateless (all per-run
// state lives in the machines they build), so one instance serves
// every engine; caching them keeps runAlgorithm's steady state free of
// per-call closure allocations. starRecycleOpt likewise: graph-to-star
// machines implement sim.Recycler, so repeated star runs on one engine
// restore machines in place instead of rebuilding n of them.
var (
	starFactory       = core.NewGraphToStarFactory()
	wreathFactory     = core.NewGraphToWreathFactory()
	thinWreathFactory = core.NewGraphToThinWreathFactory()
	cliqueFactory     = baseline.NewCliqueFactory()
	floodFactory      = baseline.NewFloodFactory()
	starRecycleOpt    = sim.WithMachineRecycling(AlgoStar)
)

// RunAlgorithm executes the named algorithm on a copy of gs and
// returns the unified outcome.
func RunAlgorithm(name string, gs *graph.Graph) (Outcome, error) {
	return RunAlgorithmOpts(name, gs)
}

// RunAlgorithmOpts is RunAlgorithm with extra simulation options
// appended after the algorithm's defaults. It runs on a throwaway
// engine; hold a Runner instead when executing many runs.
func RunAlgorithmOpts(name string, gs *graph.Graph, extra ...sim.Option) (Outcome, error) {
	eng := sim.NewEngine()
	defer eng.Close()
	var sc graph.BFSScratch
	return runAlgorithm(eng, &sc, name, gs, extra...)
}

// runAlgorithm is the shared engine-backed execution path behind
// RunAlgorithmOpts, Runner.RunAlgorithm and ExecuteSweep. sc is the
// caller's BFS scratch for the post-run diameter/depth analysis.
func runAlgorithm(eng *sim.Engine, sc *graph.BFSScratch, name string, gs *graph.Graph, extra ...sim.Option) (Outcome, error) {
	known := false
	for _, a := range Algorithms() {
		if a == name {
			known = true
			break
		}
	}
	if !known {
		return Outcome{}, fmt.Errorf("expt: unknown algorithm %q (want one of %v)", name, Algorithms())
	}
	if gs == nil || gs.NumNodes() == 0 {
		return Outcome{}, fmt.Errorf("expt: empty initial graph")
	}
	n := gs.NumNodes()
	umax := gs.MaxID()
	if name == AlgoCentralized {
		res, err := baseline.EulerTourStrategy(gs)
		if err != nil {
			return Outcome{}, err
		}
		final := res.History.CurrentView()
		return Outcome{
			N:                  n,
			Rounds:             res.Metrics.Rounds,
			LastActivity:       res.Metrics.LastActivityRound,
			TotalActivations:   res.Metrics.TotalActivations,
			MaxActivatedEdges:  res.Metrics.MaxActivatedEdges,
			MaxActivatedDegree: res.Metrics.MaxActivatedDegree,
			FinalDiameter:      sc.ApproxDiameter(final),
			FinalDepth:         res.Depth,
			LeaderOK:           true, // the centralized controller knows u_max
		}, nil
	}

	var factory sim.Factory
	// optBuf keeps the option list off the heap: sim options are
	// consumed inside Reset and never retained, so the backing array
	// can live on this frame.
	var optBuf [8]sim.Option
	opts := optBuf[:0]
	switch name {
	case AlgoStar:
		factory = starFactory
		opts = append(opts, starRecycleOpt)
	case AlgoWreath:
		factory = wreathFactory
		opts = append(opts, sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, false))))
	case AlgoThinWreath:
		factory = thinWreathFactory
		opts = append(opts, sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, true))))
	case AlgoClique:
		factory = cliqueFactory
	case AlgoFlood:
		factory = floodFactory
	default:
		return Outcome{}, fmt.Errorf("expt: unknown algorithm %q (want one of %v)", name, Algorithms())
	}
	opts = append(opts, extra...)
	if err := eng.Reset(gs, factory, opts...); err != nil {
		return Outcome{}, fmt.Errorf("expt: %s on n=%d: %w", name, n, err)
	}
	res, err := eng.Run()
	if err != nil {
		return Outcome{}, fmt.Errorf("expt: %s on n=%d: %w", name, n, err)
	}
	// Post-run analysis reads the history's live snapshot (valid until
	// the engine's next Reset) through reusable BFS scratch instead of
	// cloning the final graph.
	final := res.History.CurrentView()
	out := Outcome{
		N:                  n,
		Rounds:             res.Rounds,
		LastActivity:       res.Metrics.LastActivityRound,
		TotalActivations:   res.Metrics.TotalActivations,
		MaxActivatedEdges:  res.Metrics.MaxActivatedEdges,
		MaxActivatedDegree: res.Metrics.MaxActivatedDegree,
		TotalMessages:      res.TotalMessages,
		FinalDiameter:      sc.ApproxDiameter(final),
		LeaderOK:           tasks.VerifyLeaderElection(res, umax) == nil,
		EnvActivations:     res.Metrics.EnvActivations,
		EnvDeactivations:   res.Metrics.EnvDeactivations,
	}
	if final.HasNode(umax) {
		out.FinalDepth = sc.Eccentricity(final, umax)
	}
	return out, nil
}

// Workloads lists every initial-network family name accepted by
// Workload, aliases included.
func Workloads() []string {
	return []string{"line", "ring", "increasing-ring", "random-tree", "bounded-degree", "random", "star", "power-law", "small-world"}
}

// Workload builds the named initial-network family at size n.
func Workload(name string, n int, seed int64) (*graph.Graph, error) {
	return WorkloadInto(graph.New(), nil, name, n, seed)
}

// WorkloadInto builds the named family at size n into dst, resetting
// and reusing its backing arrays (see graph.Reset). scratch, when
// non-nil, is reused the same way by families that need an
// intermediate graph ("random" permutes a generated graph); a nil
// scratch is allocated on demand. The per-Runner arena behind
// engine-fleet sweeps calls this so repeated cells pay workload
// generation only on growth; the generated graph is identical to
// Workload's for equal parameters.
func WorkloadInto(dst, scratch *graph.Graph, name string, n int, seed int64) (*graph.Graph, error) {
	if !knownName(Workloads(), name) {
		return nil, fmt.Errorf("expt: unknown workload %q (want one of %v)", name, Workloads())
	}
	// Every family needs at least two nodes; validating here, before
	// dispatch, keeps the contract uniform instead of per-generator.
	if n < 2 {
		return nil, fmt.Errorf("expt: workload %q needs n >= 2, got %d", name, n)
	}
	// The deterministic families skip the rng so their cells allocate
	// nothing per call.
	switch name {
	case "line":
		return graph.LineInto(dst, n), nil
	case "ring", "increasing-ring":
		return graph.IncreasingRingInto(dst, n), nil
	case "star":
		return graph.StarInto(dst, n), nil
	}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "random-tree":
		return graph.RandomTreeInto(dst, n, rng), nil
	case "bounded-degree":
		return graph.RandomBoundedDegreeInto(dst, n, 4, n/2, rng)
	case "random":
		if scratch == nil {
			scratch = graph.New()
		}
		return graph.PermuteIDsInto(dst, graph.RandomConnectedInto(scratch, n, n, rng), rng), nil
	case "power-law":
		// Barabási–Albert preferential attachment, m=2 links per new
		// node: heavy-tailed degrees, hubs for targeted-cut to attack.
		return graph.PowerLawInto(dst, n, 2, rng), nil
	case "small-world":
		// Watts–Strogatz ring lattice (k=2 span) with 10% rewiring:
		// high clustering, short paths.
		return graph.SmallWorldInto(dst, n, 2, 0.1, rng), nil
	default:
		return nil, fmt.Errorf("expt: unknown workload %q (want one of %v)", name, Workloads())
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim this table checks
	Columns []string
	Rows    [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// logn is ⌈log2 n⌉ as used throughout the bounds.
func logn(n int) int { return bits.Len(uint(n)) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// SortRows orders rows numerically by the first column (n).
func SortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(rows[i][0], "%d", &a)
		fmt.Sscanf(rows[j][0], "%d", &b)
		return a < b
	})
}
