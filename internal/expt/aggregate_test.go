package expt

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
)

// synthCell builds a CellResult with the measures the aggregator reads.
func synthCell(algo, workload string, n int, seed int64, rounds, acts, msgs int) CellResult {
	return CellResult{
		Cell: Cell{Algorithm: algo, Workload: workload, N: n, Seed: seed},
		Outcome: Outcome{
			N: n, Rounds: rounds, TotalActivations: acts,
			MaxActivatedEdges: acts, MaxActivatedDegree: 2,
			TotalMessages: msgs, LeaderOK: true,
		},
	}
}

// TestAggregateClosedForm checks every statistic against hand-computed
// values: rounds {2, 4, 6} has mean 4, min 2, max 6 and population
// stddev sqrt(8/3); messages {10, 30} has mean 20 and stddev 10.
func TestAggregateClosedForm(t *testing.T) {
	t.Parallel()
	results := []CellResult{
		synthCell("a", "line", 8, 1, 2, 5, 10),
		synthCell("a", "line", 8, 2, 4, 5, 30),
		synthCell("a", "line", 8, 3, 6, 5, 20),
		synthCell("a", "line", 16, 1, 7, 9, 40), // second group: one seed
	}
	groups := Aggregate(results)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	g := groups[0]
	if g.Algorithm != "a" || g.Workload != "line" || g.N != 8 || g.Seeds != 3 || g.Errors != 0 || g.LeadersOK != 3 {
		t.Fatalf("group header = %+v", g)
	}
	if g.Rounds.Mean != 4 || g.Rounds.Min != 2 || g.Rounds.Max != 6 {
		t.Fatalf("rounds = %+v, want mean 4 min 2 max 6", g.Rounds)
	}
	if want := math.Sqrt(8.0 / 3.0); math.Abs(g.Rounds.StdDev-want) > 1e-12 {
		t.Fatalf("rounds stddev = %v, want %v", g.Rounds.StdDev, want)
	}
	// Constant series: stddev exactly zero, min == mean == max.
	if g.TotalActivations != (Stat{Mean: 5, Min: 5, Max: 5, StdDev: 0}) {
		t.Fatalf("activations = %+v, want constant 5", g.TotalActivations)
	}
	// Messages {10, 30, 20}: mean 20, population stddev sqrt(200/3).
	if g.TotalMessages.Mean != 20 || g.TotalMessages.Min != 10 || g.TotalMessages.Max != 30 {
		t.Fatalf("messages = %+v", g.TotalMessages)
	}
	if want := math.Sqrt(200.0 / 3.0); math.Abs(g.TotalMessages.StdDev-want) > 1e-12 {
		t.Fatalf("messages stddev = %v, want %v", g.TotalMessages.StdDev, want)
	}
	// Single-seed group: degenerate stats.
	g2 := groups[1]
	if g2.N != 16 || g2.Seeds != 1 || g2.Rounds != (Stat{Mean: 7, Min: 7, Max: 7}) {
		t.Fatalf("single-seed group = %+v", g2)
	}
}

// TestAggregateCountsErrorsPerGroup: failed cells are excluded from
// the statistics but reported in the group's error count.
func TestAggregateCountsErrorsPerGroup(t *testing.T) {
	t.Parallel()
	results := []CellResult{
		synthCell("a", "line", 8, 1, 10, 1, 1),
		{Cell: Cell{Algorithm: "a", Workload: "line", N: 8, Seed: 2}, Err: errors.New("boom")},
		synthCell("a", "line", 8, 3, 20, 1, 1),
	}
	groups := Aggregate(results)
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	g := groups[0]
	if g.Seeds != 2 || g.Errors != 1 {
		t.Fatalf("seeds/errors = %d/%d, want 2/1", g.Seeds, g.Errors)
	}
	if g.Rounds.Mean != 15 || g.Rounds.Min != 10 || g.Rounds.Max != 20 {
		t.Fatalf("rounds excludes the failed cell: %+v", g.Rounds)
	}
	if Aggregate(nil) != nil {
		t.Fatal("empty input must aggregate to nil")
	}
}

// TestAggregateDeterministicAcrossWorkers pins the byte-level
// determinism the service endpoint relies on: the marshaled aggregate
// of the same grid is identical no matter how many sweep workers
// executed it.
func TestAggregateDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{AlgoStar, AlgoFlood},
		Workloads:  []string{"random-tree", "line"},
		Sizes:      []int{24, 48},
		Seeds:      []int64{1, 2, 3},
	}
	var base []byte
	for i, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		results, err := ExecuteSweep(spec, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out, err := json.Marshal(Aggregate(results))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = out
			continue
		}
		if !bytes.Equal(base, out) {
			t.Fatalf("workers=%d: aggregate bytes diverged:\n%s\nvs\n%s", workers, out, base)
		}
	}
	// Sanity on the shape: one group per (algorithm, workload, n).
	var groups []AggregateGroup
	if err := json.Unmarshal(base, &groups); err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(groups) != want {
		t.Fatalf("groups = %d, want %d", len(groups), want)
	}
	for _, g := range groups {
		if g.Seeds != 3 || g.Errors != 0 || g.LeadersOK != 3 {
			t.Fatalf("group = %+v", g)
		}
		if g.Rounds.Min > g.Rounds.Mean || g.Rounds.Mean > g.Rounds.Max {
			t.Fatalf("unordered rounds stat: %+v", g.Rounds)
		}
		if g.TotalMessages.Mean <= 0 {
			t.Fatalf("no messages aggregated: %+v", g)
		}
	}
}

// TestMergeAggregatesByteIdentical is the fold-merge determinism
// guarantee the fleet coordinator relies on: splitting a grid's
// results into K group-aligned shards — including uneven ones —
// aggregating each shard separately, and fold-merging must produce
// bytes identical to the single-process aggregate of the whole grid.
func TestMergeAggregatesByteIdentical(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{AlgoStar, AlgoFlood},
		Workloads:  []string{"line", "random-tree"},
		Sizes:      []int{16, 24, 32},
		Seeds:      []int64{1, 2, 3},
	}
	results, err := ExecuteSweep(spec, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := json.Marshal(Aggregate(results))
	if err != nil {
		t.Fatal(err)
	}

	seeds := len(spec.Seeds)
	rows := len(results) / seeds // 12 groups, one contiguous row each
	// Shard cut points in rows, deliberately uneven for K ∈ {1, 2, 3}.
	for _, cuts := range [][]int{
		{rows},
		{1, rows},
		{5, 7, rows},
	} {
		var shards [][]AggregateGroup
		prev := 0
		for _, end := range cuts {
			shards = append(shards, Aggregate(results[prev*seeds:end*seeds]))
			prev = end
		}
		merged, err := MergeAggregates(shards...)
		if err != nil {
			t.Fatalf("K=%d: %v", len(cuts), err)
		}
		out, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, out) {
			t.Fatalf("K=%d shards: merged aggregate diverged from single-process:\n%s\nvs\n%s",
				len(cuts), out, single)
		}
	}
}

// TestMergeAggregatesDedupsAndRejectsSplits pins the two edge rules: a
// group repeated identically across shards (a re-dispatched shard) is
// deduplicated, while a group whose statistics differ between shards —
// someone split a group's seeds — is an error, because no exact merge
// of already-folded statistics exists.
func TestMergeAggregatesDedupsAndRejectsSplits(t *testing.T) {
	t.Parallel()
	cells := []CellResult{
		synthCell("a", "line", 8, 1, 2, 5, 10),
		synthCell("a", "line", 8, 2, 4, 5, 30),
	}
	whole := Aggregate(cells)
	merged, err := MergeAggregates(whole, whole)
	if err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if len(merged) != 1 || merged[0] != whole[0] {
		t.Fatalf("merged = %+v, want the single deduplicated group", merged)
	}
	if _, err := MergeAggregates(Aggregate(cells[:1]), Aggregate(cells[1:])); err == nil {
		t.Fatal("split group must fail to fold-merge")
	}
	if merged, err := MergeAggregates(); err != nil || merged != nil {
		t.Fatalf("empty merge = %v, %v", merged, err)
	}
}

// TestAggregateCSV pins the CSV export: a header, one row per group,
// floats in shortest-exact form.
func TestAggregateCSV(t *testing.T) {
	t.Parallel()
	groups := Aggregate([]CellResult{
		synthCell("a", "line", 8, 1, 2, 5, 10),
		synthCell("a", "line", 8, 2, 4, 5, 30),
		synthCell("b", "ring", 16, 1, 7, 9, 40),
	})
	var buf bytes.Buffer
	if err := AggregateCSV(&buf, groups); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "algorithm,workload,n,seeds,errors,leaders_ok,rounds_mean,") ||
		!strings.Contains(lines[0], "total_messages_stddev") {
		t.Fatalf("header = %s", lines[0])
	}
	// Group a/line/8: rounds {2,4} → mean 3 min 2 max 4 stddev 1.
	if !strings.HasPrefix(lines[1], "a,line,8,2,0,2,3,2,4,1,") {
		t.Fatalf("row 1 = %s", lines[1])
	}
	if cols, want := strings.Count(lines[1], ",")+1, strings.Count(lines[0], ",")+1; cols != want {
		t.Fatalf("row has %d columns, header %d", cols, want)
	}
	if !strings.HasPrefix(lines[2], "b,ring,16,1,0,1,7,7,7,0,") {
		t.Fatalf("row 2 = %s", lines[2])
	}
}

// TestAggregateTableRendersEveryGroup keeps the CLI rendering honest:
// one row per group, spread shown only when it exists.
func TestAggregateTableRendersEveryGroup(t *testing.T) {
	t.Parallel()
	leaderless := synthCell("a", "line", 8, 2, 4, 5, 30)
	leaderless.Outcome.LeaderOK = false
	groups := Aggregate([]CellResult{
		synthCell("a", "line", 8, 1, 2, 5, 10),
		leaderless,
	})
	tab := AggregateTable(groups)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "3±1.00 [2–4]") {
		t.Fatalf("rounds cell missing mean±stddev [min–max]:\n%s", s)
	}
	if !strings.Contains(s, "1/2") { // leaders column is LeadersOK/Seeds
		t.Fatalf("table missing leader column:\n%s", s)
	}
}
