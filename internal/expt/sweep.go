package expt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adnet/internal/dynamics"
	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/temporal"
)

// Runner is an engine-backed executor: it holds one sim.Engine and
// reuses its buffers (contexts, inboxes, history scratch, worker
// pool) across Execute calls. One Runner serves one goroutine; for
// parallel grids use ExecuteSweep, which runs a shard-per-worker
// fleet of Runners.
type Runner struct {
	eng *sim.Engine
	// Workload arena: generators build into these two graphs (the
	// second is scratch for families that permute an intermediate),
	// so repeated Execute calls reuse the adjacency backing arrays
	// instead of allocating a fresh graph per cell. Safe because the
	// engine copies the initial graph canonically at Reset and never
	// retains the caller's graph.
	wg, wscratch *graph.Graph
	// bfs is the post-run analysis scratch (diameter/depth), reused so
	// steady-state Execute calls stay allocation-free.
	bfs graph.BFSScratch
}

// NewRunner returns a fresh Runner. Close it to release the engine's
// worker pool.
func NewRunner() *Runner {
	return &Runner{eng: sim.NewEngine(), wg: graph.New(), wscratch: graph.New()}
}

// Close releases the underlying engine.
func (r *Runner) Close() { r.eng.Close() }

// Execute builds the workload and runs the algorithm on it, like the
// package-level Execute but reusing the Runner's engine and workload
// arena.
func (r *Runner) Execute(req Request) (Outcome, error) {
	env, err := applyDynamics(&req)
	if err != nil {
		return Outcome{}, err
	}
	g, err := WorkloadInto(r.wg, r.wscratch, req.Workload, req.N, req.Seed)
	if err != nil {
		return Outcome{}, err
	}
	out, err := r.RunAlgorithm(req.Algorithm, g, req.SimOpts...)
	if err == nil && env != nil {
		out.Crashes, out.Restarts = env.Counts()
	}
	return out, err
}

// RunAlgorithm executes the named algorithm on gs through the
// Runner's engine, with extra simulation options appended after the
// algorithm's defaults.
func (r *Runner) RunAlgorithm(name string, gs *graph.Graph, extra ...sim.Option) (Outcome, error) {
	return runAlgorithm(r.eng, &r.bfs, name, gs, extra...)
}

// Cell is one point of a sweep grid: a deterministic run request. The
// dynamics pointer, when set, is shared across a sweep's cells and
// never mutated; it stays absent from the wire shape for sweeps
// without dynamics.
type Cell struct {
	Algorithm string         `json:"algorithm"`
	Workload  string         `json:"workload"`
	N         int            `json:"n"`
	Seed      int64          `json:"seed"`
	MaxRounds int            `json:"max_rounds,omitempty"`
	Dynamics  *dynamics.Spec `json:"dynamics,omitempty"`
}

// Request converts the cell to the spec-driven Request form.
func (c Cell) Request() Request {
	req := Request{Algorithm: c.Algorithm, Workload: c.Workload, N: c.N, Seed: c.Seed, Dynamics: c.Dynamics}
	if c.MaxRounds > 0 {
		req.SimOpts = append(req.SimOpts, sim.WithMaxRounds(c.MaxRounds))
	}
	return req
}

// SweepSpec describes a (algorithms × workloads × sizes × seeds)
// grid. MaxRounds, when positive, overrides every cell's round limit.
// Dynamics, when non-nil, attaches the same adversarial environment
// spec to every cell (each cell still derives its own perturbation
// seed from its run seed). Repeated values within a dimension are
// ignored (first occurrence wins), so a grid never contains duplicate
// cells: NumCells, Cells and Validate all see the deduplicated
// dimensions.
type SweepSpec struct {
	Algorithms []string
	Workloads  []string
	Sizes      []int
	Seeds      []int64
	MaxRounds  int
	Dynamics   *dynamics.Spec
}

// normalized returns the spec with duplicate dimension values
// removed, preserving first-occurrence order.
func (s SweepSpec) normalized() SweepSpec {
	return SweepSpec{
		Algorithms: dedup(s.Algorithms),
		Workloads:  dedup(s.Workloads),
		Sizes:      dedup(s.Sizes),
		Seeds:      dedup(s.Seeds),
		MaxRounds:  s.MaxRounds,
		Dynamics:   s.Dynamics,
	}
}

// NumCells returns the grid size (after dimension deduplication).
func (s SweepSpec) NumCells() int {
	n := s.normalized()
	return len(n.Algorithms) * len(n.Workloads) * len(n.Sizes) * len(n.Seeds)
}

// Cells enumerates the grid in canonical order: algorithm-major, then
// workload, size, seed. Sweep results and streams always follow this
// order.
func (s SweepSpec) Cells() []Cell {
	s = s.normalized()
	cells := make([]Cell, 0, s.NumCells())
	for _, a := range s.Algorithms {
		for _, w := range s.Workloads {
			for _, n := range s.Sizes {
				for _, seed := range s.Seeds {
					cells = append(cells, Cell{
						Algorithm: a, Workload: w, N: n, Seed: seed,
						MaxRounds: s.MaxRounds, Dynamics: s.Dynamics,
					})
				}
			}
		}
	}
	return cells
}

// dedup removes repeated values, keeping first-occurrence order.
func dedup[T comparable](xs []T) []T {
	seen := make(map[T]struct{}, len(xs))
	out := xs[:0:0]
	for _, x := range xs {
		if _, ok := seen[x]; ok {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}

// Validate checks that every named algorithm and workload exists,
// every size is at least 2, and the grid is non-empty.
func (s SweepSpec) Validate() error {
	if s.NumCells() == 0 {
		return errors.New("expt: empty sweep grid (every dimension needs at least one value)")
	}
	for _, a := range s.Algorithms {
		if !knownName(Algorithms(), a) {
			return fmt.Errorf("expt: unknown algorithm %q (want one of %v)", a, Algorithms())
		}
	}
	for _, w := range s.Workloads {
		if !knownName(Workloads(), w) {
			return fmt.Errorf("expt: unknown workload %q (want one of %v)", w, Workloads())
		}
	}
	for _, n := range s.Sizes {
		if n < 2 {
			return fmt.Errorf("expt: sweep size %d below minimum 2", n)
		}
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("expt: max rounds must be non-negative, got %d", s.MaxRounds)
	}
	if s.Dynamics != nil {
		if err := s.Dynamics.Validate(); err != nil {
			return err
		}
		if knownName(s.Algorithms, AlgoCentralized) {
			return fmt.Errorf("expt: dynamics do not apply to %s (no simulation to perturb)", AlgoCentralized)
		}
	}
	return nil
}

// CellResult is the measured product of one grid cell.
type CellResult struct {
	Index     int  // position in SweepSpec.Cells order
	Cell      Cell //
	Outcome   Outcome
	Rounds    []temporal.RoundStats // per-round stats when CollectRounds (or served by Lookup)
	FromCache bool                  // answered by Lookup or Done without running
	Ran       bool                  // a simulation actually executed
	Replayed  bool                  // answered by Done (a journal replay, not a live run)
	Err       error                 // run failure or cancellation for this cell
	// Duration is the wall-clock cost of executing the cell (zero for
	// cache hits and skipped cells). It feeds the service's
	// cell-duration histogram and never enters the wire shape, so
	// cross-process stream and aggregate comparisons stay byte-exact.
	Duration time.Duration
}

// WireCellResult reconstructs the CellResult a streamed wire cell (a
// sweep's NDJSON cell line) denotes, for re-folding streamed cells
// through Aggregate. The service's aggregate endpoint and the fleet
// coordinator's local fallback fold both go through this one
// conversion — which is what keeps their aggregates byte-identical to
// each other and to the worker that streamed the cells.
func WireCellResult(index int, cell Cell, fromCache bool, outcome *Outcome, errText string) CellResult {
	cr := CellResult{Index: index, Cell: cell, FromCache: fromCache}
	if errText != "" {
		cr.Err = errors.New(errText)
	} else if outcome != nil {
		cr.Outcome = *outcome
	}
	return cr
}

// SweepOptions configures ExecuteSweep.
type SweepOptions struct {
	// Workers sizes the engine fleet (default GOMAXPROCS, capped at
	// the number of cells). Each worker owns one Runner, so per-run
	// buffers are reused across that worker's shard of the grid.
	Workers int
	// SimOpts are appended to every cell's run (after algorithm
	// defaults and the cell's own MaxRounds). When the fleet has more
	// than one worker, each run's engine parallelism defaults to 1 —
	// the fleet, not per-run stepping, is the unit of concurrency —
	// and a sim.WithParallelism here overrides that.
	SimOpts []sim.Option
	// CellTimeLimit, when positive, is the wall-clock budget per
	// cell; runs over budget are aborted between rounds and recorded
	// as that cell's error.
	CellTimeLimit time.Duration
	// CollectRounds records per-round statistics into each
	// CellResult (cheap: five ints per round), so callers can cache
	// or stream them.
	CollectRounds bool
	// Done, when set, is the resume done-set: it is consulted before
	// Lookup, and a hit marks the cell Replayed (journal-recovered) as
	// well as FromCache. Replayed cells carry no per-round stats — the
	// journal persists outcomes, not round streams.
	Done func(Cell) (Outcome, bool)
	// Lookup, when set, is consulted before running a cell; a hit
	// skips the simulation. Store, when set, receives every
	// successful fresh result. Both may be called concurrently from
	// worker goroutines.
	Lookup func(Cell) (Outcome, []temporal.RoundStats, bool)
	Store  func(CellResult)
	// Emit, when set, receives every CellResult in canonical cell
	// order, from the calling goroutine, as soon as ordering allows.
	Emit func(CellResult)
	// Cancel aborts the sweep: cells not yet started fail fast with
	// sim.ErrCanceled, in-flight runs are aborted between rounds.
	Cancel <-chan struct{}
}

// ExecuteSweep runs the whole grid on a shard-per-worker fleet of
// engine-backed Runners and returns the results in canonical cell
// order. Individual cell failures are recorded in CellResult.Err and
// do not abort the sweep; the returned error is non-nil only for an
// invalid spec or a canceled sweep.
func ExecuteSweep(spec SweepSpec, opts SweepOptions) ([]CellResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Cells()
	results := make([]CellResult, len(cells))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// With a multi-worker fleet the CPUs are already saturated by
	// cell-level sharding: default every run to sequential stepping
	// (a caller-supplied WithParallelism, applied later, wins).
	simOpts := opts.SimOpts
	if workers > 1 {
		simOpts = append([]sim.Option{sim.WithParallelism(1)}, opts.SimOpts...)
	}

	canceled := func() bool {
		if opts.Cancel == nil {
			return false
		}
		select {
		case <-opts.Cancel:
			return true
		default:
			return false
		}
	}

	feed := make(chan int)
	done := make(chan int, len(cells))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewRunner()
			defer r.Close()
			for i := range feed {
				results[i] = runCell(r, i, cells[i], simOpts, opts, canceled)
				done <- i
			}
		}()
	}
	go func() {
		for i := range cells {
			feed <- i
		}
		close(feed)
	}()

	// Drain completions, emitting in canonical order.
	pending := make(map[int]bool, workers)
	next := 0
	for range cells {
		i := <-done
		pending[i] = true
		for pending[next] {
			if opts.Emit != nil {
				opts.Emit(results[next])
			}
			delete(pending, next)
			next++
		}
	}
	wg.Wait()

	if canceled() {
		return results, fmt.Errorf("expt: sweep: %w", sim.ErrCanceled)
	}
	return results, nil
}

// runCell executes (or serves from Lookup) one cell on the worker's
// Runner.
func runCell(r *Runner, idx int, cell Cell, simOpts []sim.Option, opts SweepOptions, canceled func() bool) CellResult {
	res := CellResult{Index: idx, Cell: cell}
	if canceled() {
		res.Err = fmt.Errorf("expt: cell skipped: %w", sim.ErrCanceled)
		return res
	}
	if opts.Done != nil {
		if out, ok := opts.Done(cell); ok {
			res.Outcome, res.FromCache, res.Replayed = out, true, true
			return res
		}
	}
	if opts.Lookup != nil {
		if out, rounds, ok := opts.Lookup(cell); ok {
			res.Outcome, res.Rounds, res.FromCache = out, rounds, true
			return res
		}
	}
	req := cell.Request()
	req.SimOpts = append(req.SimOpts, simOpts...)
	if opts.CollectRounds {
		req.SimOpts = append(req.SimOpts, sim.WithRoundHook(func(ev sim.RoundEvent) {
			res.Rounds = append(res.Rounds, ev.Stats)
		}))
	}
	var timedOut *atomic.Bool
	if opts.Cancel != nil || opts.CellTimeLimit > 0 {
		done, to, stop := mergeCancel(opts.Cancel, opts.CellTimeLimit)
		defer stop()
		timedOut = to
		req.SimOpts = append(req.SimOpts, sim.WithCancel(done))
	}
	res.Ran = true
	start := time.Now()
	out, err := r.Execute(req)
	res.Duration = time.Since(start)
	if err != nil {
		if timedOut != nil && timedOut.Load() {
			err = fmt.Errorf("expt: cell time limit %s exceeded: %w", opts.CellTimeLimit, err)
		}
		res.Err = err
		return res
	}
	res.Outcome = out
	if opts.Store != nil {
		opts.Store(res)
	}
	return res
}

// mergeCancel fans a sweep-level cancel channel and an optional
// per-cell wall-clock budget into one done channel for sim.WithCancel.
// stop releases the helper goroutine; timedOut reports (after the run
// returns) whether the budget, rather than the cancel, fired.
func mergeCancel(cancel <-chan struct{}, limit time.Duration) (done <-chan struct{}, timedOut *atomic.Bool, stop func()) {
	d := make(chan struct{})
	finished := make(chan struct{})
	timedOut = new(atomic.Bool)
	var timeout <-chan time.Time
	var timer *time.Timer
	if limit > 0 {
		timer = time.NewTimer(limit)
		timeout = timer.C
	}
	go func() {
		if timer != nil {
			defer timer.Stop()
		}
		select {
		case <-timeout:
			timedOut.Store(true)
			close(d)
		case <-cancel: // nil channel blocks forever: fine
			close(d)
		case <-finished:
		}
	}()
	var once sync.Once
	return d, timedOut, func() { once.Do(func() { close(finished) }) }
}

func knownName(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
