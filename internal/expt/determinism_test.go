package expt

import (
	"reflect"
	"runtime"
	"testing"

	"adnet/internal/baseline"
	"adnet/internal/core"
	"adnet/internal/sim"
)

// TestOutcomeDeterministicAcrossParallelism runs every distributed
// algorithm on a randomized workload with 1, 2 and GOMAXPROCS workers
// and requires identical Outcomes: worker count is an engineering
// knob, never an observable.
func TestOutcomeDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	cases := []struct {
		algo     string
		workload string
		n        int
	}{
		{AlgoStar, "random", 96},
		{AlgoWreath, "bounded-degree", 96},
		{AlgoThinWreath, "bounded-degree", 96},
		{AlgoClique, "random-tree", 64},
		{AlgoFlood, "random", 96},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.algo, func(t *testing.T) {
			t.Parallel()
			g, err := Workload(tc.workload, tc.n, 1234)
			if err != nil {
				t.Fatal(err)
			}
			var base Outcome
			for i, w := range workerCounts {
				out, err := RunAlgorithmOpts(tc.algo, g, sim.WithParallelism(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if i == 0 {
					base = out
					continue
				}
				if out != base {
					t.Errorf("workers=%d diverged:\n%+v\nvs workers=%d:\n%+v",
						w, out, workerCounts[0], base)
				}
			}
		})
	}
}

// TestTraceDeterministicAcrossParallelism pins the stronger property
// for every distributed algorithm: the full per-round activation/
// deactivation trace — not just the aggregate outcome — plus the final
// metrics and statuses are identical across worker counts. This is the
// PR 2 byte-identical-trace invariant carried through the parallel
// intent-collection and batch-apply path.
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	const n = 96
	cases := []struct {
		name    string
		factory sim.Factory
		opts    []sim.Option
	}{
		{AlgoStar, core.NewGraphToStarFactory(), nil},
		{AlgoWreath, core.NewGraphToWreathFactory(),
			[]sim.Option{sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, false)))}},
		{AlgoThinWreath, core.NewGraphToThinWreathFactory(),
			[]sim.Option{sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, true)))}},
		{AlgoClique, baseline.NewCliqueFactory(), nil},
		{AlgoFlood, baseline.NewFloodFactory(), nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			g, err := Workload("random", n, 77)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) *sim.Result {
				opts := append([]sim.Option{sim.WithParallelism(workers), sim.WithTrace()}, tc.opts...)
				res, err := sim.Run(g, tc.factory, opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}
			base := run(1)
			for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
				res := run(w)
				if res.Rounds != base.Rounds {
					t.Fatalf("workers=%d: rounds %d vs %d", w, res.Rounds, base.Rounds)
				}
				if res.Metrics != base.Metrics {
					t.Fatalf("workers=%d: metrics diverged:\n%+v\nvs\n%+v", w, res.Metrics, base.Metrics)
				}
				if !reflect.DeepEqual(res.Statuses, base.Statuses) {
					t.Fatalf("workers=%d: statuses diverged", w)
				}
				for i := 1; i <= base.Rounds; i++ {
					wantA, wantD, _ := base.History.TraceRound(i)
					gotA, gotD, ok := res.History.TraceRound(i)
					if !ok || !reflect.DeepEqual(wantA, gotA) || !reflect.DeepEqual(wantD, gotD) {
						t.Fatalf("workers=%d: trace diverged at round %d", w, i)
					}
				}
			}
		})
	}
}

// TestRunnerIsolationAcrossAlgorithms is the engine-reuse isolation
// test at the harness level: interleaving different algorithms and
// graph families on one Runner must leave each run's outcome
// untouched by its predecessors.
func TestRunnerIsolationAcrossAlgorithms(t *testing.T) {
	t.Parallel()
	r := NewRunner()
	defer r.Close()
	seq := []Request{
		{Algorithm: AlgoWreath, Workload: "bounded-degree", N: 64, Seed: 5},
		{Algorithm: AlgoFlood, Workload: "line", N: 16, Seed: 5},
		{Algorithm: AlgoStar, Workload: "increasing-ring", N: 128, Seed: 5},
		{Algorithm: AlgoWreath, Workload: "bounded-degree", N: 64, Seed: 5}, // repeat
	}
	got := make([]Outcome, len(seq))
	for i, req := range seq {
		out, err := r.Execute(req)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got[i] = out
	}
	if got[0] != got[3] {
		t.Errorf("same spec diverged across engine reuse:\n%+v\n%+v", got[0], got[3])
	}
	for i, req := range seq {
		fresh, err := Execute(req)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != fresh {
			t.Errorf("step %d leaked state: reused %+v, fresh %+v", i, got[i], fresh)
		}
	}
	// The deeper structural check: a fresh graph run right after the
	// interleaving still satisfies its post-condition.
	gstar, err := Workload("line", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.RunAlgorithm(AlgoStar, gstar)
	if err != nil {
		t.Fatal(err)
	}
	if !out.LeaderOK || out.FinalDiameter > 2 {
		t.Errorf("post-reuse run broke post-condition: %+v", out)
	}
}
