package expt

import (
	"errors"
	"testing"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

func TestWorkloadUnknownName(t *testing.T) {
	t.Parallel()
	if _, err := Workload("no-such-family", 8, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadsListBuildsConnectedGraphs(t *testing.T) {
	t.Parallel()
	for _, name := range Workloads() {
		g, err := Workload(name, 16, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.NumNodes() != 16 {
			t.Errorf("%s: %d nodes, want 16", name, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected initial graph", name)
		}
	}
}

func TestWorkloadTinySizes(t *testing.T) {
	t.Parallel()
	// Every family rejects n < 2 uniformly at dispatch, before any
	// generator runs, and accepts the minimum size n=2.
	for _, name := range Workloads() {
		for _, n := range []int{-1, 0, 1} {
			if _, err := Workload(name, n, 1); err == nil {
				t.Errorf("%s n=%d: accepted, want error", name, n)
			}
		}
		g, err := Workload(name, 2, 1)
		if err != nil {
			t.Errorf("%s n=2: %v", name, err)
			continue
		}
		if g.NumNodes() != 2 {
			t.Errorf("%s n=2: got %d nodes", name, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("%s n=2: disconnected", name)
		}
	}
}

func TestRunAlgorithmRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := RunAlgorithm("no-such-algo", graph.Line(4)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := RunAlgorithm(AlgoStar, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := RunAlgorithm(AlgoStar, graph.New()); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Execute(Request{Algorithm: AlgoStar, Workload: "no-such-family", N: 8}); err == nil {
		t.Error("Execute passed through an unknown workload")
	}
	if _, err := Execute(Request{Algorithm: "no-such-algo", Workload: "line", N: 8}); err == nil {
		t.Error("Execute passed through an unknown algorithm")
	}
}

func TestRunAlgorithmSingletonGraph(t *testing.T) {
	t.Parallel()
	for _, name := range Algorithms() {
		out, err := RunAlgorithm(name, graph.Line(1))
		if err != nil {
			t.Errorf("%s on singleton: %v", name, err)
			continue
		}
		if out.N != 1 || !out.LeaderOK {
			t.Errorf("%s on singleton: %+v", name, out)
		}
	}
}

// Every published algorithm name must round-trip through RunAlgorithm
// on a small line and elect the max-UID leader.
func TestEveryAlgorithmRunsOnSmallLine(t *testing.T) {
	t.Parallel()
	for _, name := range Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := RunAlgorithm(name, graph.Line(16))
			if err != nil {
				t.Fatal(err)
			}
			if out.N != 16 {
				t.Errorf("N = %d, want 16", out.N)
			}
			if out.Rounds <= 0 {
				t.Errorf("Rounds = %d, want > 0", out.Rounds)
			}
			if !out.LeaderOK {
				t.Error("no unique correct leader")
			}
		})
	}
}

func TestExecuteMatchesManualComposition(t *testing.T) {
	t.Parallel()
	req := Request{Algorithm: AlgoStar, Workload: "random-tree", N: 48, Seed: 11}
	got, err := Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Workload(req.Workload, req.N, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunAlgorithm(req.Algorithm, g)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Execute = %+v, manual = %+v", got, want)
	}
}

func TestExecuteExtraSimOptionsApply(t *testing.T) {
	t.Parallel()
	// A 1-round cap cannot complete GraphToStar on a 32-line; the
	// option must override the algorithm default.
	_, err := Execute(Request{
		Algorithm: AlgoStar, Workload: "line", N: 32, Seed: 1,
		SimOpts: []sim.Option{sim.WithMaxRounds(1)},
	})
	if !errors.Is(err, sim.ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit through Execute, got %v", err)
	}

	var rounds int
	out, err := Execute(Request{
		Algorithm: AlgoStar, Workload: "line", N: 32, Seed: 1,
		SimOpts: []sim.Option{sim.WithRoundHook(func(ev sim.RoundEvent) { rounds = ev.Round })},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != out.Rounds {
		t.Fatalf("hook saw %d rounds, outcome ran %d", rounds, out.Rounds)
	}
}
