package expt

import (
	"fmt"
	"math"

	"adnet/internal/baseline"
	"adnet/internal/bounds"
	"adnet/internal/core"
	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/subroutine"
)

// ExperimentIDs lists the implemented experiment identifiers in order.
func ExperimentIDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
}

// Run executes the experiment with the given ID at the given sizes
// (nil = defaults) and returns its table.
func Run(id string, sizes []int) (*Table, error) {
	switch id {
	case "E1":
		return E1TreeToStar(sizes)
	case "E2":
		return E2LineToCBT(sizes)
	case "E3":
		return E3GraphToStar(sizes)
	case "E4":
		return E4GraphToWreath(sizes)
	case "E5":
		return E5GraphToThinWreath(sizes)
	case "E6":
		return E6TimeLowerBound(sizes)
	case "E7":
		return E7CentralizedLine(sizes)
	case "E8":
		return E8CentralizedEuler(sizes)
	case "E9":
		return E9DistributedActivations(sizes)
	case "E10":
		return E10Clique(sizes)
	case "E11":
		return E11Flooding(sizes)
	case "E12":
		return E12Compose(sizes)
	case "E13":
		return E13Phases(sizes)
	default:
		return nil, fmt.Errorf("expt: unknown experiment %q", id)
	}
}

func defSizes(sizes []int, def []int) []int {
	if len(sizes) > 0 {
		return sizes
	}
	return def
}

// E1TreeToStar: Proposition 2.1 — TreeToStar finishes in ⌈log d⌉
// rounds with at most 2n-3 active edges per round.
func E1TreeToStar(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "TreeToStar on spanning lines (rooted at u_max)",
		Claim:   "Prop 2.1: ⌈log d⌉ rounds, ≤ 2n-3 active edges/round, O(n log n) activations",
		Columns: []string{"n", "rounds", "ceil(log d)", "maxActiveEdges", "2n-3", "totalAct"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024, 4096}) {
		parents := make(map[graph.ID]graph.ID, n)
		for i := 0; i < n-1; i++ {
			parents[graph.ID(i)] = graph.ID(i + 1)
		}
		parents[graph.ID(n-1)] = graph.ID(n - 1)
		res, err := sim.Run(graph.Line(n), subroutine.NewTreeToStarFactory(parents))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(res.Rounds), fmt.Sprint(logn(n - 1)),
			fmt.Sprint(res.Metrics.MaxActiveEdges), fmt.Sprint(2*n - 3),
			fmt.Sprint(res.Metrics.TotalActivations),
		})
	}
	return t, nil
}

// E2LineToCBT: Proposition 2.2 — LineToCompleteBinaryTree.
func E2LineToCBT(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "LineToCompleteBinaryTree",
		Claim:   "Prop 2.2: ⌈log d⌉ hop levels, degree ≤ 4, ≤ 2n-3 active edges/round",
		Columns: []string{"n", "lastActivity", "maxActDegree", "maxActiveEdges", "2n-3", "finalDepth"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024, 4096}) {
		parents := make(map[graph.ID]graph.ID, n)
		for i := 0; i < n-1; i++ {
			parents[graph.ID(i)] = graph.ID(i + 1)
		}
		parents[graph.ID(n-1)] = graph.ID(n - 1)
		factory, err := subroutine.NewLineToTreeFactory(subroutine.LineToTreeOptions{
			Branching: 2, Parents: parents,
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(graph.Line(n), factory)
		if err != nil {
			return nil, err
		}
		depth := res.History.CurrentClone().Eccentricity(graph.ID(n - 1))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(res.Metrics.LastActivityRound),
			fmt.Sprint(res.Metrics.MaxActivatedDegree),
			fmt.Sprint(res.Metrics.MaxActiveEdges), fmt.Sprint(2*n - 3),
			fmt.Sprint(depth),
		})
	}
	return t, nil
}

// mainAlgoTable shares the layout of E3/E4/E5.
func mainAlgoTable(id, title, claim, algo, workload string, sizes, def []int) (*Table, error) {
	t := &Table{
		ID: id, Title: title, Claim: claim,
		Columns: []string{"n", "rounds", "rounds/log n", "totalAct", "act/(n log n)",
			"maxActEdges", "maxActDeg", "finalDepth", "leaderOK"},
	}
	for _, n := range defSizes(sizes, def) {
		out, err := Execute(Request{Algorithm: algo, Workload: workload, N: n, Seed: int64(n)})
		if err != nil {
			return nil, err
		}
		ln := float64(logn(n))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(out.Rounds), f2(float64(out.Rounds) / ln),
			fmt.Sprint(out.TotalActivations), f2(float64(out.TotalActivations) / (float64(n) * ln)),
			fmt.Sprint(out.MaxActivatedEdges), fmt.Sprint(out.MaxActivatedDegree),
			fmt.Sprint(out.FinalDepth), fmt.Sprint(out.LeaderOK),
		})
	}
	return t, nil
}

// E3GraphToStar: Theorem 3.8.
func E3GraphToStar(sizes []int) (*Table, error) {
	return mainAlgoTable("E3", "GraphToStar on spanning lines",
		"Thm 3.8: O(log n) rounds, O(n log n) activations, ≤ 2n activated edges alive, diameter 2",
		AlgoStar, "line", sizes, []int{64, 256, 1024, 4096})
}

// E4GraphToWreath: Theorem 4.2.
func E4GraphToWreath(sizes []int) (*Table, error) {
	return mainAlgoTable("E4", "GraphToWreath on bounded-degree graphs",
		"Thm 4.2: O(log² n) rounds, O(n log² n) activations, O(n) active edges, O(1) degree, depth log n",
		AlgoWreath, "bounded-degree", sizes, []int{64, 128, 256, 512})
}

// E5GraphToThinWreath: Theorem 5.1.
func E5GraphToThinWreath(sizes []int) (*Table, error) {
	// Validated envelope: n ≤ ~450. A rare splice-composition corner
	// (one seed in five at n=512) fragments the merged ring in the
	// thin variant; see DESIGN.md §3.3 (known limitation).
	return mainAlgoTable("E5", "GraphToThinWreath on bounded-degree graphs",
		"Thm 5.1: polylog degree, diameter O(log n / log log n), time ≤ GraphToWreath",
		AlgoThinWreath, "bounded-degree", sizes, []int{64, 128, 256, 384})
}

// E6TimeLowerBound: Lemma 6.1/D.2 — potential decay forces Ω(log n)
// rounds on the spanning line.
func E6TimeLowerBound(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Potential decay PO(u_left, u_right) on the spanning line (GraphToStar)",
		Claim:   "Lemma 6.1: the potential at best halves per round ⇒ Ω(log n) rounds",
		Columns: []string{"n", "initialPO", "rounds", "log2(n)", "maxDropFactor"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024}) {
		series, res, err := bounds.PotentialSeries(graph.Line(n),
			core.NewGraphToStarFactory(), 0, graph.ID(n-1))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(series[0]), fmt.Sprint(res.Rounds),
			fmt.Sprint(logn(n)), f2(bounds.MinPotentialDropFactor(series)),
		})
	}
	return t, nil
}

// E7CentralizedLine: Lemma 6.2/D.3-D.4 + CutInHalf upper bound.
func E7CentralizedLine(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Centralized CutInHalf on the spanning line",
		Claim:   "Lemmas D.3/D.4: Θ(n) total activations, Ω(n/log n) per round, ⌈log n⌉ rounds",
		Columns: []string{"n", "rounds", "totalAct", "act/n", "maxPerRound"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024, 4096, 16384}) {
		res, err := baseline.CutInHalfLine(n)
		if err != nil {
			return nil, err
		}
		maxPerRound := 0
		for _, rs := range res.History.PerRound() {
			if rs.Activated > maxPerRound {
				maxPerRound = rs.Activated
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(res.Metrics.Rounds),
			fmt.Sprint(res.Metrics.TotalActivations),
			f2(float64(res.Metrics.TotalActivations) / float64(n)),
			fmt.Sprint(maxPerRound),
		})
	}
	return t, nil
}

// E8CentralizedEuler: Theorem 6.3 on general graphs.
func E8CentralizedEuler(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Centralized Euler-tour strategy on random connected graphs",
		Claim:   "Thm 6.3: Θ(n) total activations, O(log n) rounds, Depth-log n tree, any graph",
		Columns: []string{"n", "rounds", "totalAct", "act/n", "finalDepth", "log2(2n)"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024, 4096}) {
		g, err := Workload("random", n, int64(n))
		if err != nil {
			return nil, err
		}
		res, err := baseline.EulerTourStrategy(g)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(res.Metrics.Rounds),
			fmt.Sprint(res.Metrics.TotalActivations),
			f2(float64(res.Metrics.TotalActivations) / float64(n)),
			fmt.Sprint(res.Depth), fmt.Sprint(logn(2 * n)),
		})
	}
	return t, nil
}

// E9DistributedActivations: Theorem 6.4 — the distributed/centralized
// activation separation on the increasing-order ring.
func E9DistributedActivations(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Distributed vs centralized total activations on the increasing-order ring",
		Claim:   "Thm 6.4: distributed needs Ω(n log n); centralized needs only Θ(n)",
		Columns: []string{"n", "distAct", "centAct", "ratio", "distAct/(n log n)"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024}) {
		g := graph.IncreasingRing(n)
		out, err := RunAlgorithm(AlgoStar, g)
		if err != nil {
			return nil, err
		}
		cent, err := baseline.EulerTourStrategy(g)
		if err != nil {
			return nil, err
		}
		ratio := float64(out.TotalActivations) / float64(cent.Metrics.TotalActivations)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(out.TotalActivations),
			fmt.Sprint(cent.Metrics.TotalActivations), f2(ratio),
			f2(float64(out.TotalActivations) / (float64(n) * float64(logn(n)))),
		})
	}
	return t, nil
}

// E10Clique: §1.2 — time optimal, edge complexity maximal.
func E10Clique(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Clique formation (the trivial strategy)",
		Claim:   "§1.2: O(log n) rounds but Θ(n²) activations/edges and degree n-1",
		Columns: []string{"n", "rounds", "totalAct", "act/n²", "maxActDeg"},
	}
	for _, n := range defSizes(sizes, []int{32, 64, 128, 256}) {
		out, err := RunAlgorithm(AlgoClique, graph.Line(n))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(out.Rounds), fmt.Sprint(out.TotalActivations),
			f2(float64(out.TotalActivations) / float64(n*n)),
			fmt.Sprint(out.MaxActivatedDegree),
		})
	}
	return t, nil
}

// E11Flooding: §1.2 — no reconfiguration means Θ(diameter) time.
func E11Flooding(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Flooding on the spanning line (no reconfiguration)",
		Claim:   "§1.2: 0 activations but Θ(n) rounds — linear time is the price of a static network",
		Columns: []string{"n", "rounds", "rounds/n", "totalAct"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024}) {
		out, err := RunAlgorithm(AlgoFlood, graph.Line(n))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(out.Rounds),
			f2(float64(out.Rounds) / float64(n)), fmt.Sprint(out.TotalActivations),
		})
	}
	return t, nil
}

// E12Compose: §1.3 — transform + compute: after GraphToStar the
// network has diameter 2, so global dissemination costs O(1) extra
// rounds; the composed pipeline beats flooding by Θ(n / log n).
func E12Compose(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Composition: GraphToStar + token dissemination vs pure flooding (line)",
		Claim:   "§1.3: transform to polylog diameter, then any global function in +O(depth) rounds",
		Columns: []string{"n", "transformRounds", "dissemRounds", "composedTotal", "floodRounds", "speedup"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024}) {
		g := graph.Line(n)
		star, err := sim.Run(g, core.NewGraphToStarFactory())
		if err != nil {
			return nil, err
		}
		final := star.History.CurrentClone()
		flood, err := sim.Run(final, baseline.NewFloodFactory())
		if err != nil {
			return nil, err
		}
		pure, err := sim.Run(g, baseline.NewFloodFactory())
		if err != nil {
			return nil, err
		}
		composed := star.Rounds + flood.Rounds
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(star.Rounds), fmt.Sprint(flood.Rounds),
			fmt.Sprint(composed), fmt.Sprint(pure.Rounds),
			f2(float64(pure.Rounds) / float64(composed)),
		})
	}
	return t, nil
}

// E13Phases: Lemmas 3.6/3.7 — GraphToStar needs O(log n) phases of
// constant length.
func E13Phases(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "GraphToStar phase accounting",
		Claim:   "Lemmas 3.6/3.7: O(log n) phases, O(1) rounds per phase",
		Columns: []string{"n", "rounds", "phases", "phases/log n"},
	}
	for _, n := range defSizes(sizes, []int{64, 256, 1024, 4096}) {
		out, err := RunAlgorithm(AlgoStar, graph.Line(n))
		if err != nil {
			return nil, err
		}
		phases := int(math.Ceil(float64(out.Rounds) / 8.0))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(out.Rounds), fmt.Sprint(phases),
			f2(float64(phases) / float64(logn(n))),
		})
	}
	return t, nil
}

// TradeoffTable is the paper's headline comparison (§1.3): every
// algorithm on the same workload, all cost measures side by side.
func TradeoffTable(n int) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   fmt.Sprintf("The time/edge-complexity tradeoff at n=%d (spanning line)", n),
		Claim:   "§1.3: each algorithm trades time against edge complexity differently",
		Columns: []string{"algorithm", "rounds", "totalAct", "maxActEdges", "maxActDeg", "finalDepth", "leaderOK"},
	}
	for _, algo := range Algorithms() {
		g := graph.Line(n)
		out, err := RunAlgorithm(algo, g)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			algo, fmt.Sprint(out.Rounds), fmt.Sprint(out.TotalActivations),
			fmt.Sprint(out.MaxActivatedEdges), fmt.Sprint(out.MaxActivatedDegree),
			fmt.Sprint(out.FinalDepth), fmt.Sprint(out.LeaderOK),
		})
	}
	return t, nil
}
