package expt

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"adnet/internal/sim"
	"adnet/internal/temporal"
)

func TestSweepSpecCellsCanonicalOrder(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{AlgoFlood, AlgoStar},
		Workloads:  []string{"line"},
		Sizes:      []int{8, 16},
		Seeds:      []int64{1, 2},
	}
	cells := spec.Cells()
	if len(cells) != spec.NumCells() || len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	want := Cell{Algorithm: AlgoFlood, Workload: "line", N: 8, Seed: 1}
	if cells[0] != want {
		t.Fatalf("cells[0] = %+v", cells[0])
	}
	if cells[4].Algorithm != AlgoStar {
		t.Fatalf("cells not algorithm-major: %+v", cells[4])
	}
}

func TestSweepSpecDedupesDimensions(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{AlgoFlood, AlgoFlood},
		Workloads:  []string{"line", "ring", "line"},
		Sizes:      []int{8, 8, 16},
		Seeds:      []int64{1, 1},
	}
	if got := spec.NumCells(); got != 1*2*2*1 {
		t.Fatalf("NumCells = %d, want 4 after dedup", got)
	}
	cells := spec.Cells()
	if len(cells) != 4 {
		t.Fatalf("Cells = %d, want 4", len(cells))
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %+v survived dedup", c)
		}
		seen[c] = true
	}
	// First-occurrence order is preserved.
	if cells[0].Workload != "line" || cells[1].Workload != "line" || cells[2].Workload != "ring" {
		t.Fatalf("dedup reordered dimensions: %+v", cells)
	}
}

func TestSweepSpecValidate(t *testing.T) {
	t.Parallel()
	ok := SweepSpec{Algorithms: []string{AlgoFlood}, Workloads: []string{"line"},
		Sizes: []int{4}, Seeds: []int64{1}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []SweepSpec{
		{Algorithms: []string{"nope"}, Workloads: []string{"line"}, Sizes: []int{4}, Seeds: []int64{1}},
		{Algorithms: []string{AlgoFlood}, Workloads: []string{"nope"}, Sizes: []int{4}, Seeds: []int64{1}},
		{Algorithms: []string{AlgoFlood}, Workloads: []string{"line"}, Sizes: []int{1}, Seeds: []int64{1}},
		{Algorithms: []string{AlgoFlood}, Workloads: []string{"line"}, Sizes: []int{4}, Seeds: nil},
		{},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestExecuteSweepMatchesIndividualRuns(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{AlgoFlood, AlgoStar},
		Workloads:  []string{"line", "random-tree"},
		Sizes:      []int{16, 32},
		Seeds:      []int64{3},
	}
	var emitted []int
	results, err := ExecuteSweep(spec, SweepOptions{
		Workers: 3,
		Emit:    func(cr CellResult) { emitted = append(emitted, cr.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != spec.NumCells() {
		t.Fatalf("results = %d, want %d", len(results), spec.NumCells())
	}
	// Emit order is canonical regardless of worker scheduling.
	for i, idx := range emitted {
		if idx != i {
			t.Fatalf("emit order %v not canonical", emitted)
		}
	}
	for i, cr := range results {
		if cr.Err != nil {
			t.Fatalf("cell %d: %v", i, cr.Err)
		}
		if !cr.Ran || cr.FromCache {
			t.Fatalf("cell %d flags: %+v", i, cr)
		}
		want, err := Execute(cr.Cell.Request())
		if err != nil {
			t.Fatal(err)
		}
		if cr.Outcome != want {
			t.Errorf("cell %d (%+v): outcome %+v, individual run %+v", i, cr.Cell, cr.Outcome, want)
		}
	}
}

func TestExecuteSweepLookupAndStore(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{AlgoFlood},
		Workloads:  []string{"line"},
		Sizes:      []int{8, 16},
		Seeds:      []int64{1, 2},
	}
	var mu sync.Mutex
	type entry struct {
		out    Outcome
		rounds []temporal.RoundStats
	}
	cache := map[Cell]entry{}
	opts := SweepOptions{
		Workers:       2,
		CollectRounds: true,
		Lookup: func(c Cell) (Outcome, []temporal.RoundStats, bool) {
			mu.Lock()
			defer mu.Unlock()
			e, ok := cache[c]
			return e.out, e.rounds, ok
		},
		Store: func(cr CellResult) {
			mu.Lock()
			defer mu.Unlock()
			cache[cr.Cell] = entry{out: cr.Outcome, rounds: cr.Rounds}
		},
	}
	first, err := ExecuteSweep(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range first {
		if cr.Err != nil || !cr.Ran || cr.FromCache {
			t.Fatalf("first pass cell %d: %+v", i, cr)
		}
		if len(cr.Rounds) != cr.Outcome.Rounds {
			t.Fatalf("cell %d collected %d rounds, outcome ran %d", i, len(cr.Rounds), cr.Outcome.Rounds)
		}
	}
	second, err := ExecuteSweep(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range second {
		if cr.Err != nil || cr.Ran || !cr.FromCache {
			t.Fatalf("second pass cell %d not served from cache: %+v", i, cr)
		}
		if cr.Outcome != first[i].Outcome {
			t.Fatalf("cached outcome differs for cell %d", i)
		}
		if !reflect.DeepEqual(cr.Rounds, first[i].Rounds) {
			t.Fatalf("cached rounds differ for cell %d", i)
		}
	}
}

func TestExecuteSweepCellErrorDoesNotAbort(t *testing.T) {
	t.Parallel()
	// bounded-degree at tiny n errors in the generator for some seeds;
	// instead rely on a round-limited star run: MaxRounds 1 cannot
	// finish GraphToStar, so that cell errs while flood succeeds.
	spec := SweepSpec{
		Algorithms: []string{AlgoStar},
		Workloads:  []string{"line"},
		Sizes:      []int{32},
		Seeds:      []int64{1},
		MaxRounds:  1,
	}
	results, err := ExecuteSweep(spec, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("round-limited cell did not err")
	}
	if !errors.Is(results[0].Err, sim.ErrRoundLimit) {
		t.Fatalf("cell err = %v, want round limit", results[0].Err)
	}
}

func TestExecuteSweepCellTimeLimit(t *testing.T) {
	t.Parallel()
	// A 10ms budget against runs that take hundreds of milliseconds:
	// every cell errs with the time-limit message, but the sweep
	// itself still completes.
	spec := SweepSpec{
		Algorithms: []string{AlgoStar},
		Workloads:  []string{"line"},
		Sizes:      []int{4096},
		Seeds:      []int64{1, 2},
	}
	results, err := ExecuteSweep(spec, SweepOptions{Workers: 1, CellTimeLimit: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range results {
		if cr.Err == nil {
			t.Fatalf("cell %d finished within 1ns", i)
		}
		if !errors.Is(cr.Err, sim.ErrCanceled) || !strings.Contains(cr.Err.Error(), "time limit") {
			t.Fatalf("cell %d err = %v, want time-limit cancellation", i, cr.Err)
		}
	}
}

func TestExecuteSweepCancel(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{AlgoFlood},
		Workloads:  []string{"line"},
		Sizes:      []int{8, 16, 32, 64},
		Seeds:      []int64{1, 2, 3, 4},
	}
	cancel := make(chan struct{})
	close(cancel) // canceled before the sweep starts
	results, err := ExecuteSweep(spec, SweepOptions{Workers: 2, Cancel: cancel})
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	for i, cr := range results {
		if cr.Err == nil {
			t.Fatalf("cell %d ran after cancellation", i)
		}
	}
}

func TestRunnerReuseMatchesExecute(t *testing.T) {
	t.Parallel()
	r := NewRunner()
	defer r.Close()
	reqs := []Request{
		{Algorithm: AlgoStar, Workload: "line", N: 64, Seed: 1},
		{Algorithm: AlgoFlood, Workload: "random-tree", N: 48, Seed: 9},
		{Algorithm: AlgoClique, Workload: "ring", N: 24, Seed: 2},
		{Algorithm: AlgoStar, Workload: "line", N: 64, Seed: 1}, // repeat of the first
	}
	for i, req := range reqs {
		got, err := r.Execute(req)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		want, err := Execute(req)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("req %d: runner %+v, fresh %+v", i, got, want)
		}
	}
}
