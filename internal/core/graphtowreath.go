package core

import (
	"fmt"
	"math/bits"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/subroutine"
)

// GraphToWreath message payloads (§4, Appendix B). The phase is a fixed
// global schedule of windows (see wreathSched); each payload belongs to
// one window.
type (
	// wReport is the convergecast aggregate flowing up the committee
	// tree: the best foreign committee seen plus the border pair that
	// saw it, and whether any foreign committee is adjacent at all.
	wReport struct {
		HasBest    bool
		Best       graph.ID // foreign committee UID
		BorderX    graph.ID // our member adjacent to it
		ContactY   graph.ID // their member it is adjacent to
		AnyForeign bool
	}
	// wDecision flows down the committee tree after the leader decides.
	wDecision struct {
		Terminate bool
		Selected  bool
		Target    graph.ID // target committee UID (its leader)
		BorderX   graph.ID
		ContactY  graph.ID
	}
	// wAttach is the border-to-contact request opening a splice.
	wAttach struct{ CommitteeUID graph.ID }
	// wTailRev is the border's follow-up one step later: its exact ear
	// tail (known only after its own admissions settled) and whether
	// it is itself hosting attachers this phase — in which case its
	// tail is a dangling path end rather than a splice point.
	wTailRev struct {
		Tail    graph.ID
		Hosting bool
	}
	// wChain is the host's splice assignment to an admitted border.
	wChain struct {
		NewCCW     graph.ID // the border's new ccw ring neighbor
		TailTarget graph.ID // where the border's tail must connect
		TailNone   bool     // dangling ear: no tail connection (path end)
	}
	// wReject denies an attach for this phase.
	wReject struct{}
	// wExpect tells the host's old cw neighbor its new ccw neighbor.
	wExpect struct{ NewCCW graph.ID }
	// wSplice instructs the border's tail where to connect.
	wSplice struct{ Target graph.ID }
	// wFlagUp convergecasts attach/reject flags to the leader.
	wFlagUp struct{ Attached, Rejected bool }
	// wEngaged broadcasts the leader's merge-participation verdict.
	wEngaged struct{ Engaged bool }
	// wCut tells a ring's far end that it has no line child.
	wCut struct{}
	// wParent is broadcast during the closure window so the hopping
	// tail can climb the fresh tree toward the root.
	wParent struct {
		Parent graph.ID
		IsRoot bool
	}
	// wRingClose tells the root the ring closure edge has arrived.
	wRingClose struct{}
	// wInfo floods the merged committee's new leader down the new tree.
	wInfo struct{ Leader graph.ID }
)

// wreathSched fixes the per-phase window offsets, identical at every
// node (computed from n, which §5 grants to all nodes; for §4 it is a
// scheduling simplification documented in DESIGN.md §3.2).
type wreathSched struct {
	d       int // tree-communication window length
	rebuild int // rebuild window length

	oAnnounce int
	oUp       int
	oDown     int
	oAttach   int
	oTail     int
	oChain    int
	oSplice0  int
	oSplice1  int
	oSplice2  int
	oFlagUp   int
	oEngDown  int
	oCut      int
	oRebuild  int
	oClose    int
	oInfo     int
	length    int
}

func newWreathSched(n, branching int) wreathSched {
	// Window size: covers the worst committee tree depth with margin.
	// The rebuilt binary tree has depth <= ceil(log2 n)+1, but partial
	// merges can stack a constant number of extra levels per phase, so
	// budget double that plus slack.
	d := 2*bits.Len(uint(n)) + 6
	rb := subroutine.EmbeddedWindow(n, branching)
	s := wreathSched{d: d, rebuild: rb}
	at := 0
	next := func(width int) int {
		o := at
		at += width
		return o
	}
	s.oAnnounce = next(1)
	s.oUp = next(d)
	s.oDown = next(d)
	s.oAttach = next(1)
	s.oTail = next(1)
	s.oChain = next(1)
	s.oSplice0 = next(1)
	s.oSplice1 = next(1)
	s.oSplice2 = next(1)
	s.oFlagUp = next(d)
	s.oEngDown = next(d)
	s.oCut = next(1)
	s.oRebuild = next(rb)
	s.oClose = next(d + 2)
	s.oInfo = next(d + 1)
	s.length = at
	return s
}

// WreathPhaseLength returns the fixed phase length (rounds) of
// GraphToWreath / GraphToThinWreath for n nodes and the given gadget
// branching factor.
func WreathPhaseLength(n, branching int) int { return newWreathSched(n, branching).length }

// WreathBranching returns the gadget arity used for n nodes: 2 for the
// wreath, ⌈log2 n⌉ (at least 2) for the thin wreath.
func WreathBranching(n int, thin bool) int {
	if !thin {
		return 2
	}
	b := bits.Len(uint(n))
	if b < 2 {
		b = 2
	}
	return b
}

// WreathMaxRounds is a generous engine round limit for the wreath
// algorithms: O(log n) phases of the fixed phase length.
func WreathMaxRounds(n, branching int) int {
	return WreathPhaseLength(n, branching) * (6*bits.Len(uint(n)) + 16)
}

// GraphToWreath is the §4 algorithm (and, via NewGraphToThinWreath-
// Factory, the §5 GraphToThinWreath). Committees are wreaths — a
// spanning ring plus a complete b-ary tree rooted at the leader. Each
// phase: committees discover neighbors over original edges, select the
// greatest neighbor committee, merge by splicing their rings into the
// target's ring (concurrent ear insertion with a tail-revision
// handshake; singleton chains compose as oriented paths), rebuild the
// tree from the merged line with the embedded line-to-tree subroutine,
// close the ring again by hopping the line's tail up the fresh tree,
// and flood the new leader. It solves Depth-log n Tree with O(1)
// maximum activated degree (Theorem 4.2); the thin variant keeps
// polylog degree with a shallower gadget (Theorem 5.1).
type GraphToWreath struct {
	selfID   graph.ID
	n        int
	branch   int
	admitCap int // >0: per-contact admission cap (ThinWreath matchmaker)
	sched    wreathSched

	leader graph.ID
	// Ring/path pointers; == selfID means none on that side.
	cw, ccw graph.ID
	// Tree pointers; parent == selfID at the root (the leader).
	parent   graph.ID
	children []graph.ID

	origSet map[graph.ID]bool // static original neighborhood

	// --- phase scratch ---
	foreign  map[graph.ID]graph.ID // orig nbr -> its committee UID
	up       wReport               // aggregate so far
	decision wDecision
	decided  bool

	rawReqs      []wAttachEnv // host: raw attach requests
	attachers    []wAttachEnv // host: admitted, chain order
	rejectedReqs []wAttachEnv
	danglerLast  bool     // last admitted ear dangles (path end)
	oldCW        graph.ID // host: cw at admission time
	hostActive   bool

	chainCCW   graph.ID // border: my new ccw
	tailTarget graph.ID // border: where my tail connects
	tailNone   bool
	chainOK    bool
	rejected   bool
	spliceT    graph.ID // tail role: target to connect to
	spliceSet  bool
	tempBridge bool

	attachedFlag bool
	flagUp       wFlagUp
	engaged      bool
	engagedMark  bool
	amRoot       bool
	noLineChild  bool
	inner        *subroutine.LineToTree

	// Closure-window scratch: the line tail hops up the new tree.
	closing   bool
	anchor    graph.ID
	heardPar  map[graph.ID]wParent
	closeDone bool
	closeSent bool

	infoLeader  graph.ID
	infoSeen    bool
	terminating bool
	halted      bool
}

type wAttachEnv struct {
	From    graph.ID
	UID     graph.ID
	Tail    graph.ID
	Hosting bool
}

var _ sim.Machine = (*GraphToWreath)(nil)

// NewGraphToWreathFactory returns the §4 machine factory (binary-tree
// wreath gadget, unlimited admission).
func NewGraphToWreathFactory() sim.Factory {
	return newWreathFactory(false)
}

// NewGraphToThinWreathFactory returns the §5 machine factory
// (⌈log n⌉-ary gadget, per-contact admission cap — the matchmaker of
// Appendix C reduced to bounded admission, see DESIGN.md §3.3).
func NewGraphToThinWreathFactory() sim.Factory {
	return newWreathFactory(true)
}

func newWreathFactory(thin bool) sim.Factory {
	admit := 0
	if thin {
		admit = 2
	}
	return NewWreathFactoryOpts(WreathOptions{Thin: thin, AdmitCap: admit})
}

// WreathOptions tunes the wreath family for ablation studies.
type WreathOptions struct {
	// Thin selects the ⌈log n⌉-ary gadget (§5) over the binary one (§4).
	Thin bool
	// AdmitCap bounds how many attachers one contact admits per phase
	// (0 = unlimited). The ThinWreath matchmaker uses 2.
	AdmitCap int
	// Branching overrides the gadget arity (0 = derive from Thin/n).
	Branching int
}

// NewWreathFactoryOpts returns a wreath machine factory with explicit
// knobs; the ablation benchmarks sweep AdmitCap and Branching.
func NewWreathFactoryOpts(o WreathOptions) sim.Factory {
	return func(id graph.ID, env sim.Env) sim.Machine {
		b := o.Branching
		if b == 0 {
			b = WreathBranching(env.N, o.Thin)
		}
		return &GraphToWreath{
			selfID:   id,
			n:        env.N,
			branch:   b,
			admitCap: o.AdmitCap,
			sched:    newWreathSched(env.N, b),
			leader:   id,
			cw:       id,
			ccw:      id,
			parent:   id,
			foreign:  make(map[graph.ID]graph.ID),
			heardPar: make(map[graph.ID]wParent),
		}
	}
}

// Leader returns the node's current committee leader.
func (m *GraphToWreath) Leader() graph.ID { return m.leader }

// RingNeighbors returns the node's ring pointers (selfID on a side
// with no neighbor).
func (m *GraphToWreath) RingNeighbors() (cw, ccw graph.ID) { return m.cw, m.ccw }

// TreeParent returns the node's tree parent (itself at the root).
func (m *GraphToWreath) TreeParent() graph.ID { return m.parent }

func (m *GraphToWreath) step(round int) int { return (round - 1) % m.sched.length }

func (m *GraphToWreath) in(step, o, width int) bool { return step >= o && step < o+width }

// Init implements sim.Machine.
func (m *GraphToWreath) Init(ctx *sim.Context) {
	m.origSet = make(map[graph.ID]bool)
	for _, v := range ctx.OrigNeighbors() {
		m.origSet[v] = true
	}
}

// Send implements sim.Machine.
func (m *GraphToWreath) Send(ctx *sim.Context) {
	if m.halted {
		return
	}
	st := m.step(ctx.Round())
	sc := &m.sched
	switch {
	case st == sc.oAnnounce:
		ann := Announce{Leader: m.leader, Mode: ModeSelection}
		for _, v := range ctx.OrigNeighbors() {
			ctx.Send(v, ann)
		}
	case m.in(st, sc.oUp, sc.d):
		if m.parent != m.selfID {
			ctx.Send(m.parent, m.up)
		}
	case m.in(st, sc.oDown, sc.d):
		if m.isLeader() && !m.decided {
			m.decide()
		}
		if m.decided {
			for _, c := range m.children {
				ctx.Send(c, m.decision)
			}
		}
	case st == sc.oAttach:
		if m.decided && m.decision.Selected && m.decision.BorderX == m.selfID {
			ctx.Send(m.decision.ContactY, wAttach{CommitteeUID: m.leader})
		}
	case st == sc.oTail:
		if m.decided && m.decision.Selected && m.decision.BorderX == m.selfID {
			ctx.Send(m.decision.ContactY, wTailRev{Tail: m.earTail(), Hosting: len(m.rawReqs) > 0})
		}
	case st == sc.oChain:
		m.sendChainAssignments(ctx)
	case st == sc.oSplice0:
		if m.chainOK && !m.tailNone && m.ccw != m.selfID {
			ctx.Send(m.ccw, wSplice{Target: m.tailTarget})
		}
	case m.in(st, sc.oFlagUp, sc.d):
		if m.parent != m.selfID {
			ctx.Send(m.parent, m.flagUp)
		}
	case m.in(st, sc.oEngDown, sc.d):
		if m.isLeader() && !m.engagedMark {
			selectedOK := m.decision.Selected && !m.flagUp.Rejected
			m.engaged = selectedOK || m.flagUp.Attached
			m.amRoot = m.flagUp.Attached && !selectedOK
			m.engagedMark = true
		}
		if m.engagedMark {
			for _, c := range m.children {
				if wreathDebugHook != nil {
					wreathDebugHook(ctx.Round(), m.selfID, fmt.Sprintf("engsend->%d %v", c, m.engaged))
				}
				ctx.Send(c, wEngaged{Engaged: m.engaged})
			}
		}
	case st == sc.oCut:
		if m.engaged && m.isLeader() && m.amRoot && m.ccw != m.selfID {
			ctx.Send(m.ccw, wCut{})
		}
	case m.in(st, sc.oRebuild, sc.rebuild):
		if m.inner != nil {
			m.inner.Send(ctx)
		}
	case m.in(st, sc.oClose, sc.d+2):
		if m.engaged {
			ctx.Broadcast(wParent{Parent: m.parent, IsRoot: m.parent == m.selfID})
			if m.closeDone && !m.closeSent {
				ctx.Send(m.anchor, wRingClose{})
				m.closeSent = true
			}
		}
	case m.in(st, sc.oInfo, sc.d+1):
		if m.infoSeen {
			for _, c := range m.children {
				ctx.Send(c, wInfo{Leader: m.infoLeader})
			}
		}
	}
}

// Receive implements sim.Machine.
func (m *GraphToWreath) Receive(ctx *sim.Context, inbox []sim.Message) {
	if m.halted {
		return
	}
	st := m.step(ctx.Round())
	sc := &m.sched
	switch {
	case st == sc.oAnnounce:
		m.checkInvariants(ctx)
		m.resetPhase()
		for _, msg := range inbox {
			if ann, ok := msg.Payload.(Announce); ok && ann.Leader != m.leader {
				m.foreign[msg.From] = ann.Leader
			}
		}
		m.seedAggregate()
	case m.in(st, sc.oUp, sc.d):
		for _, msg := range inbox {
			if rep, ok := msg.Payload.(wReport); ok {
				m.mergeReport(rep)
			}
		}
	case m.in(st, sc.oDown, sc.d):
		if m.terminating {
			m.terminate(ctx)
			return
		}
		for _, msg := range inbox {
			if dec, ok := msg.Payload.(wDecision); ok && msg.From == m.parent {
				m.decision = dec
				m.decided = true
				if dec.Terminate {
					m.terminating = true
				}
			}
		}
	case st == sc.oAttach:
		for _, msg := range inbox {
			if req, ok := msg.Payload.(wAttach); ok {
				m.rawReqs = append(m.rawReqs, wAttachEnv{From: msg.From, UID: req.CommitteeUID})
			}
		}
	case st == sc.oTail:
		m.finalizeAdmissions(inbox)
	case st == sc.oChain:
		for _, msg := range inbox {
			switch pl := msg.Payload.(type) {
			case wChain:
				m.chainOK = true
				m.chainCCW = pl.NewCCW
				m.tailTarget = pl.TailTarget
				m.tailNone = pl.TailNone
			case wReject:
				m.rejected = true
			case wExpect:
				m.ccw = pl.NewCCW // safe: t-rule keeps borders out of this slot
			}
		}
		m.flagUp = wFlagUp{Attached: m.attachedFlag, Rejected: m.rejected}
	case st == sc.oSplice0:
		for _, msg := range inbox {
			if sp, ok := msg.Payload.(wSplice); ok {
				m.spliceT = sp.Target
				m.spliceSet = true
			}
		}
	case st == sc.oSplice1:
		m.spliceRound1(ctx)
	case st == sc.oSplice2:
		m.spliceRound2(ctx)
	case m.in(st, sc.oFlagUp, sc.d):
		for _, msg := range inbox {
			if f, ok := msg.Payload.(wFlagUp); ok {
				m.flagUp.Attached = m.flagUp.Attached || f.Attached
				m.flagUp.Rejected = m.flagUp.Rejected || f.Rejected
			}
		}
	case m.in(st, sc.oEngDown, sc.d):
		for _, msg := range inbox {
			if e, ok := msg.Payload.(wEngaged); ok && msg.From == m.parent {
				if wreathDebugHook != nil {
					wreathDebugHook(ctx.Round(), m.selfID, fmt.Sprintf("engrecv<-%d %v", msg.From, e.Engaged))
				}
				m.engaged = e.Engaged
				m.engagedMark = true
			}
		}
	case st == sc.oCut:
		for _, msg := range inbox {
			if _, ok := msg.Payload.(wCut); ok {
				m.noLineChild = true
			}
		}
		m.prepareRebuild(ctx)
	case m.in(st, sc.oRebuild, sc.rebuild):
		if m.inner != nil {
			m.inner.Receive(ctx, inbox)
			if st == sc.oRebuild+sc.rebuild-1 {
				m.adoptRebuiltTree(ctx)
			}
		}
	case m.in(st, sc.oClose, sc.d+2):
		m.closeRing(ctx, inbox)
	case m.in(st, sc.oInfo, sc.d+1):
		for _, msg := range inbox {
			if info, ok := msg.Payload.(wInfo); ok && msg.From == m.parent {
				m.infoLeader = info.Leader
				m.infoSeen = true
				m.leader = info.Leader
			}
		}
	}
}

// wreathDebugHook, when set by white-box tests, receives descriptions
// of per-node structural invariant violations at every phase boundary.
var wreathDebugHook func(round int, id graph.ID, desc string)

// checkInvariants verifies that every structural pointer is backed by
// an active edge. It is a no-op unless a test installed the hook.
func (m *GraphToWreath) checkInvariants(ctx *sim.Context) {
	if wreathDebugHook == nil {
		return
	}
	chk := func(p graph.ID, what string) {
		if p != m.selfID && !ctx.HasNeighbor(p) {
			wreathDebugHook(ctx.Round(), m.selfID, what)
		}
	}
	chk(m.cw, "cw")
	chk(m.ccw, "ccw")
	chk(m.parent, "parent")
	for _, c := range m.children {
		chk(c, "child")
	}
}
