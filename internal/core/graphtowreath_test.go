package core

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/tasks"
)

// runWreath executes GraphToWreath (or the thin variant) on g with the
// connectivity invariant enforced and checks the Depth-log n Tree
// post-conditions.
func runWreath(t *testing.T, g *graph.Graph, thin bool) *sim.Result {
	t.Helper()
	n := g.NumNodes()
	factory := NewGraphToWreathFactory()
	if thin {
		factory = NewGraphToThinWreathFactory()
	}
	res, err := sim.Run(g, factory,
		sim.WithConnectivityCheck(),
		sim.WithMaxRounds(WreathMaxRounds(n, WreathBranching(n, thin))))
	if err != nil {
		t.Fatalf("wreath(thin=%v) on n=%d: %v", thin, n, err)
	}
	umax := g.MaxID()
	final := res.History.CurrentClone()
	if err := tasks.VerifyLeaderElection(res, umax); err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	// Depth-log n Tree: spanning tree rooted at u_max of logarithmic
	// depth. The binary gadget gives ⌈log2 n⌉+1; the thin gadget only
	// less.
	maxDepth := bits.Len(uint(n)) + 1
	if err := tasks.VerifyDepthTree(final, umax, maxDepth); err != nil {
		t.Fatalf("n=%d: %v (m=%d)", n, err, final.NumEdges())
	}
	return res
}

func TestWreathSingleton(t *testing.T) {
	t.Parallel()
	g := graph.New()
	g.AddNode(3)
	runWreath(t, g, false)
}

func TestWreathPair(t *testing.T) {
	t.Parallel()
	runWreath(t, graph.Line(2), false)
}

func TestWreathTriangle(t *testing.T) {
	t.Parallel()
	runWreath(t, graph.Ring(3), false)
}

func TestWreathSmallLines(t *testing.T) {
	t.Parallel()
	for _, n := range []int{3, 4, 5, 6, 7, 8} {
		runWreath(t, graph.Line(n), false)
	}
}

func TestWreathLines(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 33, 64, 100} {
		runWreath(t, graph.Line(n), false)
	}
}

func TestWreathRings(t *testing.T) {
	t.Parallel()
	for _, n := range []int{4, 8, 17, 64} {
		runWreath(t, graph.Ring(n), false)
	}
}

func TestWreathBoundedDegreeGraphs(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 5; i++ {
		n := 16 + rng.Intn(100)
		g, err := graph.RandomBoundedDegree(n, 4, n/2, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := runWreath(t, g, false)
		// Theorem 4.2: O(1) maximum activated degree. Ring(2) +
		// tree(3) + climb(2) + splice bridges(2) + slack.
		if res.Metrics.MaxActivatedDegree > 12 {
			t.Errorf("n=%d: max activated degree %d > 12", n, res.Metrics.MaxActivatedDegree)
		}
	}
}

func TestWreathTreesAndGrids(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	runWreath(t, graph.RandomTree(60, rng), false)
	runWreath(t, graph.Grid(6, 8), false)
	runWreath(t, graph.Caterpillar(15, 2), false)
}

func TestWreathComplexity(t *testing.T) {
	t.Parallel()
	for _, n := range []int{64, 256} {
		res := runWreath(t, graph.Line(n), false)
		met := res.Metrics
		logn := bits.Len(uint(n))
		// O(log^2 n) time: phases of Θ(log n) rounds, O(log n) phases.
		if maxR := WreathPhaseLength(n, 2) * (3*logn + 8); res.Rounds > maxR {
			t.Errorf("n=%d: %d rounds > %d", n, res.Rounds, maxR)
		}
		// O(n) active edges per round beyond the original graph.
		if met.MaxActivatedEdges > 4*n {
			t.Errorf("n=%d: %d activated edges alive > 4n", n, met.MaxActivatedEdges)
		}
		// O(n log^2 n) total activations.
		if bound := 4 * n * logn * logn; met.TotalActivations > bound {
			t.Errorf("n=%d: %d activations > %d", n, met.TotalActivations, bound)
		}
	}
}

func TestThinWreathSmall(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 5, 8, 16} {
		runWreath(t, graph.Line(n), true)
	}
}

func TestThinWreathDiameterAndDegree(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(41))
	g, err := graph.RandomBoundedDegree(200, 4, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := runWreath(t, g, true)
	final := res.History.CurrentClone()
	umax := g.MaxID()
	// Theorem 5.1: the thin gadget's diameter beats the binary tree's.
	depth := final.Eccentricity(umax)
	binDepth := bits.Len(uint(200)) - 1 // 7
	if depth > binDepth {
		t.Errorf("thin wreath depth %d, want <= binary %d", depth, binDepth)
	}
	// Polylogarithmic degree.
	b := WreathBranching(200, true)
	if final.MaxDegree() > b+1 {
		t.Errorf("max degree %d > b+1 = %d", final.MaxDegree(), b+1)
	}
	if res.Metrics.MaxActivatedDegree > b+10 {
		t.Errorf("max activated degree %d", res.Metrics.MaxActivatedDegree)
	}
}

// Property: wreath on random bounded-degree graphs with permuted IDs
// always yields the Depth-log n tree with the right leader.
func TestWreathProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%60 + 2
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomBoundedDegree(n, 3, n/3, rng)
		if err != nil {
			return false
		}
		g = graph.PermuteIDs(g, rng)
		res, err := sim.Run(g, NewGraphToWreathFactory(),
			sim.WithConnectivityCheck(),
			sim.WithMaxRounds(WreathMaxRounds(n, 2)))
		if err != nil {
			return false
		}
		umax := g.MaxID()
		if err := tasks.VerifyLeaderElection(res, umax); err != nil {
			return false
		}
		return tasks.VerifyDepthTree(res.History.CurrentClone(), umax, bits.Len(uint(n))+1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
