package core

import (
	"fmt"
	"math/rand"
	"testing"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

// TestWreathStructuralInvariants installs the white-box debug hook and
// asserts that no node ever carries a dangling ring/tree pointer at a
// phase boundary, across a mix of topologies and both gadget variants.
func TestWreathStructuralInvariants(t *testing.T) {
	var violations []string
	wreathDebugHook = func(round int, id graph.ID, desc string) {
		// The hook also receives verbose trace lines; only pointer
		// violations are single words.
		switch desc {
		case "cw", "ccw", "parent", "child":
			violations = append(violations, fmt.Sprintf("round %d node %d: %s", round, id, desc))
		}
	}
	defer func() { wreathDebugHook = nil }()

	rng := rand.New(rand.NewSource(99))
	cases := []*graph.Graph{
		graph.Line(40),
		graph.Ring(33),
		graph.RandomTree(50, rng),
		graph.Grid(5, 7),
	}
	if g, err := graph.RandomBoundedDegree(64, 4, 30, rng); err == nil {
		cases = append(cases, g)
	}
	for _, thin := range []bool{false, true} {
		for _, g := range cases {
			violations = violations[:0]
			factory := NewGraphToWreathFactory()
			if thin {
				factory = NewGraphToThinWreathFactory()
			}
			n := g.NumNodes()
			b := WreathBranching(n, thin)
			if _, err := sim.Run(g, factory, sim.WithMaxRounds(WreathMaxRounds(n, b))); err != nil {
				t.Fatalf("thin=%v n=%d: %v", thin, n, err)
			}
			if len(violations) > 0 {
				t.Fatalf("thin=%v n=%d: %d dangling pointers, first: %s",
					thin, n, len(violations), violations[0])
			}
		}
	}
}
