package core

import (
	"testing"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

// newTestWreath builds a bare machine for white-box admission tests.
func newTestWreath(self graph.ID, admitCap int) *GraphToWreath {
	return &GraphToWreath{
		selfID:   self,
		n:        16,
		branch:   2,
		admitCap: admitCap,
		leader:   self,
		cw:       self,
		ccw:      self,
		parent:   self,
		foreign:  make(map[graph.ID]graph.ID),
		heardPar: make(map[graph.ID]wParent),
		origSet:  map[graph.ID]bool{},
	}
}

func rev(from graph.ID, tail graph.ID, hosting bool) sim.Message {
	return sim.Message{From: from, Payload: wTailRev{Tail: tail, Hosting: hosting}}
}

func TestAdmissionSortsByUIDDescending(t *testing.T) {
	t.Parallel()
	m := newTestWreath(100, 0)
	m.rawReqs = []wAttachEnv{{From: 3, UID: 3}, {From: 9, UID: 9}, {From: 5, UID: 5}}
	m.finalizeAdmissions([]sim.Message{rev(3, 3, false), rev(9, 9, false), rev(5, 5, false)})
	if len(m.attachers) != 3 {
		t.Fatalf("admitted %d, want 3", len(m.attachers))
	}
	want := []graph.ID{9, 5, 3}
	for i, a := range m.attachers {
		if a.From != want[i] {
			t.Fatalf("order %v, want %v", m.attachers, want)
		}
	}
	if m.danglerLast {
		t.Fatal("no dangler expected")
	}
}

func TestAdmissionCapRejectsOverflow(t *testing.T) {
	t.Parallel()
	m := newTestWreath(100, 1)
	m.rawReqs = []wAttachEnv{{From: 3, UID: 3}, {From: 9, UID: 9}}
	m.finalizeAdmissions([]sim.Message{rev(3, 3, false), rev(9, 9, false)})
	if len(m.attachers) != 1 || m.attachers[0].From != 9 {
		t.Fatalf("admitted %v, want just 9", m.attachers)
	}
	if len(m.rejectedReqs) != 1 || m.rejectedReqs[0].From != 3 {
		t.Fatalf("rejected %v, want just 3", m.rejectedReqs)
	}
}

func TestAdmissionMissingRevisionRejected(t *testing.T) {
	t.Parallel()
	m := newTestWreath(100, 0)
	m.rawReqs = []wAttachEnv{{From: 3, UID: 3}}
	m.finalizeAdmissions(nil)
	if len(m.attachers) != 0 || len(m.rejectedReqs) != 1 {
		t.Fatalf("attacher without revision must be rejected: %v %v", m.attachers, m.rejectedReqs)
	}
}

func TestAdmissionTailConflictRule(t *testing.T) {
	t.Parallel()
	// The host's committee selected through border 7, and the host's
	// cw pointer is exactly 7: hosting would double-book the cut edge.
	m := newTestWreath(100, 0)
	m.cw = 7
	m.decided = true
	m.decision = wDecision{Selected: true, BorderX: 7}
	m.rawReqs = []wAttachEnv{{From: 3, UID: 3}}
	m.finalizeAdmissions([]sim.Message{rev(3, 3, false)})
	if len(m.attachers) != 0 || len(m.rejectedReqs) != 1 {
		t.Fatalf("tail-conflict attacher must be rejected")
	}
}

func TestAdmissionHostingAttacherOnlyAtPathEnd(t *testing.T) {
	t.Parallel()
	// A mid-ring host (cw points elsewhere) must reject hosting
	// attachers: their ear tail is still in flux.
	m := newTestWreath(100, 0)
	m.cw, m.ccw = 50, 51
	m.rawReqs = []wAttachEnv{{From: 3, UID: 3}}
	m.finalizeAdmissions([]sim.Message{rev(3, 3, true)})
	if len(m.attachers) != 0 {
		t.Fatalf("mid-ring host admitted a hosting attacher")
	}

	// A path-end host (singleton) admits exactly one, placed last,
	// with the dangler flag.
	m2 := newTestWreath(100, 0)
	m2.rawReqs = []wAttachEnv{
		{From: 3, UID: 3}, {From: 9, UID: 9}, {From: 5, UID: 5},
	}
	m2.finalizeAdmissions([]sim.Message{rev(3, 3, true), rev(9, 9, true), rev(5, 5, false)})
	if len(m2.attachers) != 2 {
		t.Fatalf("admitted %v, want settled 5 + dangler 9", m2.attachers)
	}
	if m2.attachers[0].From != 5 || m2.attachers[1].From != 9 {
		t.Fatalf("order %v, want [5 9]", m2.attachers)
	}
	if !m2.danglerLast {
		t.Fatal("dangler flag missing")
	}
	if len(m2.rejectedReqs) != 1 || m2.rejectedReqs[0].From != 3 {
		t.Fatalf("hosting attacher 3 should be rejected: %v", m2.rejectedReqs)
	}
}

func TestAdmissionRejectsRingSlotOccupants(t *testing.T) {
	t.Parallel()
	// Degenerate geometry: the attacher (or its tail) already sits in
	// one of our ring slots.
	m := newTestWreath(100, 0)
	m.cw, m.ccw = 3, 51
	m.rawReqs = []wAttachEnv{{From: 3, UID: 3}, {From: 9, UID: 9}}
	m.finalizeAdmissions([]sim.Message{rev(3, 3, false), rev(9, 51, false)})
	if len(m.attachers) != 0 {
		t.Fatalf("degenerate attachers admitted: %v", m.attachers)
	}
	if len(m.rejectedReqs) != 2 {
		t.Fatalf("rejected %v, want both", m.rejectedReqs)
	}
}

func TestWreathOnIncreasingRingBootstrap(t *testing.T) {
	t.Parallel()
	// The adversarial singleton-chain case: every node's max neighbor
	// is its successor. The path-composition rule must merge the whole
	// chain in few phases rather than serializing (DESIGN.md §3.2).
	for _, n := range []int{16, 48, 96} {
		g := graph.IncreasingRing(n)
		res, err := sim.Run(g, NewGraphToWreathFactory(),
			sim.WithMaxRounds(WreathMaxRounds(n, 2)), sim.WithConnectivityCheck())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		phases := res.Rounds / WreathPhaseLength(n, 2)
		if phases > 8 {
			t.Errorf("n=%d: %d phases — the singleton chain serialized", n, phases)
		}
	}
}

func TestWreathAblationAdmitCap(t *testing.T) {
	t.Parallel()
	// Tighter admission must never break correctness, only defer
	// merges; both settings elect the right leader.
	g := graph.IncreasingRing(40)
	for _, cap := range []int{0, 1, 3} {
		res, err := sim.Run(g, NewWreathFactoryOpts(WreathOptions{AdmitCap: cap}),
			sim.WithMaxRounds(WreathMaxRounds(40, 2)))
		if err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
		if leader, ok := res.Leader(); !ok || leader != 39 {
			t.Errorf("cap=%d: leader %v %v", cap, leader, ok)
		}
	}
}

func TestWreathAblationBranching(t *testing.T) {
	t.Parallel()
	// Wider gadgets yield shallower final trees on the same workload.
	g := graph.Line(120)
	var depths []int
	for _, b := range []int{2, 8} {
		res, err := sim.Run(g, NewWreathFactoryOpts(WreathOptions{Branching: b, AdmitCap: 0}),
			sim.WithMaxRounds(WreathMaxRounds(120, b)))
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		leader, ok := res.Leader()
		if !ok {
			t.Fatalf("b=%d: no leader", b)
		}
		depths = append(depths, res.History.CurrentClone().Eccentricity(leader))
	}
	if depths[1] >= depths[0] {
		t.Errorf("branching 8 depth %d should beat binary depth %d", depths[1], depths[0])
	}
}
