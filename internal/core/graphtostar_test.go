package core

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/tasks"
)

// runGTS executes GraphToStar on g with the connectivity invariant
// enforced and the standard post-conditions checked: spanning star at
// u_max, unique elected leader.
func runGTS(t *testing.T, g *graph.Graph) *sim.Result {
	t.Helper()
	res, err := sim.Run(g, NewGraphToStarFactory(), sim.WithConnectivityCheck())
	if err != nil {
		t.Fatalf("GraphToStar: %v", err)
	}
	umax := g.MaxID()
	final := res.History.CurrentClone()
	if !final.IsStarCentered(umax) {
		t.Fatalf("final graph is not a spanning star at u_max=%d (n=%d m=%d)",
			umax, final.NumNodes(), final.NumEdges())
	}
	if err := tasks.VerifyLeaderElection(res, umax); err != nil {
		t.Fatal(err)
	}
	if err := tasks.VerifyDepthTree(final, umax, 1); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGraphToStarSingleton(t *testing.T) {
	t.Parallel()
	g := graph.New()
	g.AddNode(7)
	runGTS(t, g)
}

func TestGraphToStarPair(t *testing.T) {
	t.Parallel()
	runGTS(t, graph.Line(2))
}

func TestGraphToStarLines(t *testing.T) {
	t.Parallel()
	for _, n := range []int{3, 4, 5, 8, 16, 17, 33, 64, 100, 129} {
		runGTS(t, graph.Line(n))
	}
}

func TestGraphToStarRings(t *testing.T) {
	t.Parallel()
	for _, n := range []int{3, 4, 7, 16, 63, 128} {
		runGTS(t, graph.Ring(n))
	}
}

func TestGraphToStarIncreasingRing(t *testing.T) {
	t.Parallel()
	// The Theorem 6.4 lower-bound instance.
	runGTS(t, graph.IncreasingRing(64))
}

func TestGraphToStarStars(t *testing.T) {
	t.Parallel()
	// Already a star — but centered at the MINIMUM UID, so the
	// algorithm must re-center it at u_max.
	runGTS(t, graph.Star(32))
}

func TestGraphToStarCompleteGraph(t *testing.T) {
	t.Parallel()
	runGTS(t, graph.Complete(24))
}

func TestGraphToStarTreesAndGrids(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	runGTS(t, graph.RandomTree(85, rng))
	runGTS(t, graph.Grid(7, 9))
	runGTS(t, graph.Caterpillar(20, 2))
	runGTS(t, graph.Lollipop(8, 12))
	runGTS(t, graph.CompleteBinaryTree(63))
}

func TestGraphToStarRandomGraphs(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		n := 10 + rng.Intn(150)
		g := graph.RandomConnected(n, rng.Intn(2*n), rng)
		runGTS(t, graph.PermuteIDs(g, rng))
	}
}

func TestGraphToStarComplexityBounds(t *testing.T) {
	t.Parallel()
	for _, n := range []int{64, 256, 1024} {
		res := runGTS(t, graph.Line(n))
		met := res.Metrics
		logn := bits.Len(uint(n))
		// Theorem 3.8: O(log n) time. Our phase is 8 rounds and the
		// phase count is O(log n); allow a generous constant.
		if maxRounds := gtsPhaseLen * (4*logn + 8); res.Rounds > maxRounds {
			t.Errorf("n=%d: %d rounds > %d (phase len %d)", n, res.Rounds, maxRounds, gtsPhaseLen)
		}
		// At most 2n activated edges alive in any round.
		if met.MaxActivatedEdges > 2*n {
			t.Errorf("n=%d: %d activated edges alive > 2n", n, met.MaxActivatedEdges)
		}
		// O(n log n) total activations.
		if bound := 4 * n * logn; met.TotalActivations > bound {
			t.Errorf("n=%d: %d total activations > %d", n, met.TotalActivations, bound)
		}
	}
}

func TestGraphToStarPhaseCountLogarithmic(t *testing.T) {
	t.Parallel()
	// Lemma 3.6: O(log n) phases. Doubling n adds O(1) phases.
	var prevPhases int
	for _, n := range []int{32, 64, 128, 256, 512} {
		res := runGTS(t, graph.Line(n))
		phases := (res.Rounds + gtsPhaseLen - 1) / gtsPhaseLen
		if prevPhases > 0 && phases > prevPhases+6 {
			t.Errorf("n=%d: phase count %d jumped from %d — not logarithmic growth",
				n, phases, prevPhases)
		}
		prevPhases = phases
	}
}

func TestGraphToStarCommitteeInvariants(t *testing.T) {
	t.Parallel()
	// After every run, all machines agree the final committee is led
	// by u_max and every non-leader is a follower.
	g := graph.Grid(6, 6)
	res := runGTS(t, g)
	umax := g.MaxID()
	for id, mach := range res.Machines {
		gts := mach.(*GraphToStar)
		if gts.Leader() != umax {
			t.Errorf("node %d believes leader is %d, want %d", id, gts.Leader(), umax)
		}
		wantRole := RoleFollower
		if id == umax {
			wantRole = RoleLeader
		}
		if gts.Role() != wantRole {
			t.Errorf("node %d role %v, want %v", id, gts.Role(), wantRole)
		}
	}
}

// Property: on arbitrary random connected graphs with permuted UIDs,
// GraphToStar terminates with the spanning star, the correct leader,
// and never exceeds the 2n activated-edge budget.
func TestGraphToStarProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, rawN uint8, rawExtra uint8) bool {
		n := int(rawN)%120 + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.PermuteIDs(graph.RandomConnected(n, int(rawExtra)%n, rng), rng)
		res, err := sim.Run(g, NewGraphToStarFactory(), sim.WithConnectivityCheck())
		if err != nil {
			return false
		}
		umax := g.MaxID()
		if !res.History.CurrentClone().IsStarCentered(umax) {
			return false
		}
		if err := tasks.VerifyLeaderElection(res, umax); err != nil {
			return false
		}
		return res.Metrics.MaxActivatedEdges <= 2*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestModeStrings(t *testing.T) {
	t.Parallel()
	for m, want := range map[Mode]string{
		ModeSelection: "selection", ModeMerging: "merging", ModePulling: "pulling",
		ModeWaiting: "waiting", ModeTermination: "termination", Mode(0): "invalid",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	if RoleLeader.String() != "leader" || RoleFollower.String() != "follower" {
		t.Error("Role strings broken")
	}
}
