package core

import (
	"fmt"
	"sort"

	"adnet/internal/graph"
	"adnet/internal/sim"
	"adnet/internal/subroutine"
)

func (m *GraphToWreath) isLeader() bool { return m.leader == m.selfID }

// mustKeep reports whether the edge to p is load-bearing: a ring/path
// pointer, a tree pointer (the old tree carries this phase's flag and
// engagement windows until teardown), or an original edge.
func (m *GraphToWreath) mustKeep(p graph.ID) bool {
	if p == m.cw || p == m.ccw || m.origSet[p] {
		return true
	}
	if m.parent != m.selfID && p == m.parent {
		return true
	}
	for _, c := range m.children {
		if c == p {
			return true
		}
	}
	return false
}

// seedAggregate initializes this phase's convergecast aggregate from
// the node's own original-edge neighborhood.
func (m *GraphToWreath) seedAggregate() {
	m.up = wReport{}
	for via, uid := range m.foreign {
		m.up.AnyForeign = true
		if !m.up.HasBest || uid > m.up.Best ||
			(uid == m.up.Best && via < m.up.ContactY) {
			m.up.HasBest = true
			m.up.Best = uid
			m.up.BorderX = m.selfID
			m.up.ContactY = via
		}
	}
}

// mergeReport folds a child's aggregate into ours (max by committee
// UID, deterministic tie-breaks).
func (m *GraphToWreath) mergeReport(rep wReport) {
	m.up.AnyForeign = m.up.AnyForeign || rep.AnyForeign
	if !rep.HasBest {
		return
	}
	if !m.up.HasBest || rep.Best > m.up.Best ||
		(rep.Best == m.up.Best && (rep.BorderX < m.up.BorderX ||
			(rep.BorderX == m.up.BorderX && rep.ContactY < m.up.ContactY))) {
		m.up.HasBest = true
		m.up.Best = rep.Best
		m.up.BorderX = rep.BorderX
		m.up.ContactY = rep.ContactY
	}
}

// decide is the leader's phase decision at the top of the DOWN window.
func (m *GraphToWreath) decide() {
	m.decided = true
	if !m.up.AnyForeign {
		m.decision = wDecision{Terminate: true}
		m.terminating = true
		return
	}
	if m.up.HasBest && m.up.Best > m.selfID {
		m.decision = wDecision{
			Selected: true,
			Target:   m.up.Best,
			BorderX:  m.up.BorderX,
			ContactY: m.up.ContactY,
		}
		return
	}
	m.decision = wDecision{}
}

// earTail reports this border's ear tail as of the attach: the ring
// ccw run end, or itself for a singleton. If the committee is itself
// hosting this phase the tail is superseded by the Hosting flag — the
// host will leave the ear dangling instead of splicing its end.
func (m *GraphToWreath) earTail() graph.ID {
	if m.ccw == m.selfID {
		return m.selfID
	}
	return m.ccw
}

// finalizeAdmissions runs at the tail-revision step: raw attach
// requests plus their revisions become the final admitted chain.
//
// Rules (DESIGN.md §3.2):
//   - tail-conflict: if our committee selected through border x and we
//     are x's ring-ccw neighbor, our cw-side cut edge is the border's
//     ccw-side cut edge; hosting here would double-book it. Reject.
//   - hosting attachers (their ear tail is still in flux) are admitted
//     only at a path end (our cw side is open), at most one, placed
//     last, with a dangling ear. This is what lets singleton chains -
//     the increasing-line worst case - compose into one path per
//     phase instead of serializing.
//   - an admission cap (ThinWreath) bounds the chain length.
func (m *GraphToWreath) finalizeAdmissions(inbox []sim.Message) {
	if len(m.rawReqs) == 0 {
		return
	}
	rev := make(map[graph.ID]wTailRev, len(inbox))
	for _, msg := range inbox {
		if r, ok := msg.Payload.(wTailRev); ok {
			rev[msg.From] = r
		}
	}
	reject := func(a wAttachEnv) { m.rejectedReqs = append(m.rejectedReqs, a) }
	if m.decided && m.decision.Selected && m.cw == m.decision.BorderX && m.cw != m.selfID {
		for _, a := range m.rawReqs {
			reject(a)
		}
		return
	}
	var settled, hosting []wAttachEnv
	for _, a := range m.rawReqs {
		r, ok := rev[a.From]
		if !ok {
			reject(a) // no revision: treat as unreliable
			continue
		}
		if a.From == m.cw || a.From == m.ccw || r.Tail == m.cw || r.Tail == m.ccw {
			// The attacher (or its tail) already occupies one of our
			// ring slots — a degenerate geometry; retry next phase.
			reject(a)
			continue
		}
		a.Tail = r.Tail
		a.Hosting = r.Hosting
		if a.Hosting {
			hosting = append(hosting, a)
		} else {
			settled = append(settled, a)
		}
	}
	byUID := func(s []wAttachEnv) {
		sort.Slice(s, func(i, j int) bool { return s[i].UID > s[j].UID })
	}
	byUID(settled)
	byUID(hosting)

	admitted := settled
	pathEnd := m.cw == m.selfID
	var dangler *wAttachEnv
	if pathEnd && len(hosting) > 0 {
		dangler = &hosting[0]
		hosting = hosting[1:]
	}
	for _, a := range hosting {
		reject(a)
	}
	if m.admitCap > 0 {
		limit := m.admitCap
		if dangler != nil {
			limit--
		}
		if limit < 0 {
			limit = 0
		}
		if len(admitted) > limit {
			for _, a := range admitted[limit:] {
				reject(a)
			}
			admitted = admitted[:limit]
		}
	}
	if dangler != nil {
		admitted = append(admitted, *dangler)
	}
	m.attachers = admitted
	m.attachedFlag = len(admitted) > 0
	m.danglerLast = dangler != nil
}

// sendChainAssignments is the host side of the splice: hand every
// admitted border its new ccw neighbor and its tail's connection
// target, chained in UID order; tell our old cw neighbor its new ccw;
// reject the rest.
func (m *GraphToWreath) sendChainAssignments(ctx *sim.Context) {
	for _, r := range m.rejectedReqs {
		ctx.Send(r.From, wReject{})
	}
	if len(m.attachers) == 0 {
		return
	}
	m.hostActive = true
	m.oldCW = m.cw
	last := len(m.attachers) - 1
	for i, a := range m.attachers {
		ch := wChain{}
		if i == 0 {
			ch.NewCCW = m.selfID
		} else {
			ch.NewCCW = m.attachers[i-1].Tail
		}
		switch {
		case i < last:
			ch.TailTarget = m.attachers[i+1].From
		case m.danglerLast || m.oldCW == m.selfID:
			// Dangling ear or open cw side: the merged structure stays
			// a path here; the closure window will turn it back into a
			// ring after the rebuild.
			ch.TailNone = true
		default:
			ch.TailTarget = m.oldCW
		}
		if wreathDebugHook != nil {
			wreathDebugHook(ctx.Round(), m.selfID, fmt.Sprintf("chain->%d ccw=%d tail=%d none=%v", a.From, ch.NewCCW, ch.TailTarget, ch.TailNone))
		}
		ctx.Send(a.From, ch)
	}
	if m.oldCW != m.selfID {
		if wreathDebugHook != nil {
			wreathDebugHook(ctx.Round(), m.selfID, fmt.Sprintf("expect->%d ccw=%d", m.oldCW, m.attachers[last].Tail))
		}
		ctx.Send(m.oldCW, wExpect{NewCCW: m.attachers[last].Tail})
	}
}

// spliceRound1 lays the temporary bridges the ear tails will climb
// over; singleton borders connect directly (their ear tail is
// themselves).
func (m *GraphToWreath) spliceRound1(ctx *sim.Context) {
	if !m.chainOK || m.tailNone {
		return
	}
	if m.tailTarget == m.selfID {
		// Degenerate assignment (the chain closed on ourselves): treat
		// the ear as dangling; the closure window reconnects the ring.
		m.tailNone = true
		return
	}
	// Witness path: border-contact (original) plus contact-target
	// (original toward the next border, ring edge toward the host's
	// old cw neighbor).
	if !ctx.HasNeighbor(m.tailTarget) {
		ctx.Activate(m.tailTarget)
	}
	m.tempBridge = m.ccw != m.selfID
}

// spliceRound2 completes the splice: tails connect over the bridges,
// bridges are torn down, pointers commit, and replaced ring edges are
// dropped where no pointer references them anymore.
func (m *GraphToWreath) spliceRound2(ctx *sim.Context) {
	// Tail role: connect to the assigned target over our border's
	// bridge, and point cw at it.
	if m.spliceSet && m.spliceT != m.selfID {
		if !ctx.HasNeighbor(m.spliceT) {
			ctx.Activate(m.spliceT)
		}
		if wreathDebugHook != nil {
			wreathDebugHook(ctx.Round(), m.selfID, fmt.Sprintf("tailconnect cw:=%d", m.spliceT))
		}
		m.cw = m.spliceT
	}
	// Border role: commit ccw; retire the bridge and the replaced ring
	// edge.
	if m.chainOK {
		oldCCW := m.ccw
		wasSingleton := oldCCW == m.selfID
		m.ccw = m.chainCCW
		if wasSingleton {
			if !m.tailNone {
				m.cw = m.tailTarget // direct connection made in round 1
			}
		} else {
			if m.tempBridge && !m.mustKeep(m.tailTarget) {
				ctx.Deactivate(m.tailTarget)
			}
			if !m.mustKeep(oldCCW) {
				ctx.Deactivate(oldCCW)
			}
		}
	}
	// Host role: commit cw to the first admitted border, retire the
	// replaced cw edge.
	if m.hostActive {
		old := m.oldCW
		m.cw = m.attachers[0].From
		if old != m.selfID && !m.mustKeep(old) {
			ctx.Deactivate(old)
		}
	}
}

// prepareRebuild runs at the teardown step: engaged nodes drop their
// old tree edges (ring/path and original edges persist) and stand up
// the embedded line-to-tree instance over the merged line, oriented
// ccw toward the root committee's leader.
func (m *GraphToWreath) prepareRebuild(ctx *sim.Context) {
	if !m.engaged {
		return
	}
	keepPtr := func(p graph.ID) bool {
		return p == m.cw || p == m.ccw || m.origSet[p]
	}
	if m.parent != m.selfID && !keepPtr(m.parent) {
		ctx.Deactivate(m.parent)
	}
	for _, c := range m.children {
		if !keepPtr(c) {
			ctx.Deactivate(c)
		}
	}
	m.children = nil
	isRoot := m.isLeader() && m.amRoot
	m.parent = m.selfID
	cfg := subroutine.EmbeddedConfig{
		Self:       m.selfID,
		Branching:  m.branch,
		IsRoot:     isRoot,
		StartRound: ctx.Round() + 1,
		SizeBound:  m.n,
		KeepEdge:   keepPtr,
	}
	if !isRoot {
		cfg.Parent = m.ccw
	}
	// The line runs cw-ward from the root. A node with an open cw side
	// is the far end of a path merge; a node told by wCut is the far
	// end of a ring merge (the root's ccw ring edge is the logically
	// cut one - it stays active but carries no line orientation).
	if m.cw != m.selfID && !m.noLineChild {
		cfg.Child = m.cw
		cfg.HasChild = true
	}
	m.inner = subroutine.NewEmbedded(cfg)
}

// adoptRebuiltTree installs the rebuilt tree pointers at the end of
// the rebuild window. Children whose claims were in flight when the
// window closed (they hopped away in the very last activation round)
// are pruned by checking the actual edge.
func (m *GraphToWreath) adoptRebuiltTree(ctx *sim.Context) {
	parent, isRoot := m.inner.FinalParent()
	m.children = m.children[:0]
	for _, c := range m.inner.FinalChildren() {
		if ctx.HasNeighbor(c) {
			m.children = append(m.children, c)
		}
	}
	if isRoot {
		m.parent = m.selfID
		m.leader = m.selfID
		m.infoLeader = m.selfID
		m.infoSeen = true
	} else {
		m.parent = parent
	}
	if wreathDebugHook != nil {
		wreathDebugHook(ctx.Round(), m.selfID, fmt.Sprintf("adopt parent=%d root=%v children=%v", parent, isRoot, m.children))
	}
	m.inner = nil
	// Closure bootstrap: a node whose cw side is open is the tail of a
	// path merge and must re-close the ring by climbing the new tree.
	if m.engaged && m.cw == m.selfID && !isRoot {
		m.closing = true
		m.anchor = m.parent
	}
}

// closeRing runs during the closure window: a path-merge tail hops its
// closure edge up the fresh tree, one level per round, until it
// reaches the root; the resulting (tail, root) edge is the ring
// closure (O(log n) rounds, O(1) degree).
func (m *GraphToWreath) closeRing(ctx *sim.Context, inbox []sim.Message) {
	if !m.engaged {
		return
	}
	clear(m.heardPar)
	for _, msg := range inbox {
		switch pl := msg.Payload.(type) {
		case wParent:
			m.heardPar[msg.From] = pl
		case wRingClose:
			// Only the structure's root (tree root) may accept the
			// closure edge; strays from a fragmented merge are ignored.
			if m.parent == m.selfID {
				m.ccw = msg.From
			}
		}
	}
	if !m.closing || m.closeDone {
		return
	}
	st, ok := m.heardPar[m.anchor]
	if !ok {
		return
	}
	if st.IsRoot {
		// The anchor is the head: the (tail, head) edge closes the
		// ring. It already exists (it is the current hop edge); the
		// notification goes out in the next Send slot of the window.
		m.cw = m.anchor
		if wreathDebugHook != nil {
			wreathDebugHook(ctx.Round(), m.selfID, fmt.Sprintf("ringclose->%d", m.anchor))
		}
		m.closeDone = true
		return
	}
	next := st.Parent
	if next == m.selfID || next == m.anchor {
		return
	}
	ctx.Activate(next) // witness: (tail, anchor), (anchor, next)
	if !m.mustKeep(m.anchor) {
		ctx.Deactivate(m.anchor)
	}
	m.anchor = next
}

// terminate executes the Termination mode: keep only the spanning tree
// (the paper's Gf), declare statuses, halt.
func (m *GraphToWreath) terminate(ctx *sim.Context) {
	keep := make(map[graph.ID]bool, len(m.children)+1)
	if m.parent != m.selfID {
		keep[m.parent] = true
	}
	for _, c := range m.children {
		keep[c] = true
	}
	for _, v := range ctx.Neighbors() {
		if !keep[v] {
			ctx.Deactivate(v)
		}
	}
	if m.isLeader() {
		ctx.SetStatus(sim.StatusLeader)
	} else {
		ctx.SetStatus(sim.StatusFollower)
	}
	m.halted = true
	ctx.Halt()
}

func (m *GraphToWreath) resetPhase() {
	clear(m.foreign)
	m.up = wReport{}
	m.decision = wDecision{}
	m.decided = false
	m.rawReqs = nil
	m.attachers = nil
	m.rejectedReqs = nil
	m.danglerLast = false
	m.oldCW = 0
	m.hostActive = false
	m.chainCCW = 0
	m.tailTarget = 0
	m.tailNone = false
	m.chainOK = false
	m.rejected = false
	m.spliceT = 0
	m.spliceSet = false
	m.tempBridge = false
	m.attachedFlag = false
	m.flagUp = wFlagUp{}
	m.engaged = false
	m.engagedMark = false
	m.amRoot = false
	m.noLineChild = false
	m.inner = nil
	m.closing = false
	m.anchor = 0
	m.closeDone = false
	m.closeSent = false
	m.infoLeader = 0
	m.infoSeen = false
}
