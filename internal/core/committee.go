// Package core implements the paper's three main algorithms —
// GraphToStar (§3), GraphToWreath (§4) and GraphToThinWreath (§5) —
// as node programs for the synchronous engine in internal/sim.
//
// All three share the committee discipline of §2.4: the nodes are
// always partitioned into committees, each internally organized as the
// algorithm's gadget network (star / wreath / thin wreath) with the
// maximum-UID member as leader; committees compete, the greater UID
// wins, and the unique survivor is the committee of u_max, at which
// point u_max is the elected leader and the gadget is (or quickly
// becomes) the target network.
package core

import "adnet/internal/graph"

// Role distinguishes committee leaders from followers.
type Role int

// Roles. Every node starts as the leader of its own singleton committee.
const (
	RoleLeader Role = iota + 1
	RoleFollower
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleLeader {
		return "leader"
	}
	return "follower"
}

// Mode is the committee mode of the GraphToStar phase machine (§3).
type Mode int

// GraphToStar committee modes, §3. Selection and Waiting committees
// are selectable; Merging, Pulling and Termination are not.
const (
	ModeSelection Mode = iota + 1
	ModeMerging
	ModePulling
	ModeWaiting
	ModeTermination
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSelection:
		return "selection"
	case ModeMerging:
		return "merging"
	case ModePulling:
		return "pulling"
	case ModeWaiting:
		return "waiting"
	case ModeTermination:
		return "termination"
	default:
		return "invalid"
	}
}

// selectable reports whether a committee announcing this mode may be
// chosen as a selection target. The paper excludes pulling committees;
// we additionally exclude merging (dying) committees, which is
// strictly safer and leaves the growth argument intact (DESIGN.md
// §3.1).
func (m Mode) selectable() bool { return m == ModeSelection || m == ModeWaiting }

// Announce is the phase-start broadcast over original edges: the
// sender's committee identity and mode. Original edges persist until
// termination, so committee neighborhood discovery runs on them.
type Announce struct {
	Leader graph.ID
	Mode   Mode
}
