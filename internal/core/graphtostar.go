package core

import (
	"slices"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

// GraphToStar message payloads. Each is exchanged at a fixed step of
// the 8-round phase schedule (DESIGN.md §3.1).
type (
	// gtsReport is a member's phase report to its leader: the best
	// selectable foreign committee seen over original edges, and
	// whether any foreign committee is adjacent at all.
	gtsReport struct {
		HasBest    bool
		BestLeader graph.ID // highest selectable foreign committee UID
		Via        graph.ID // the foreign member it was seen through
		AnyForeign bool
	}
	// gtsQuery asks a pulling target for its situation.
	gtsQuery struct{}
	// gtsReply answers a gtsQuery: either "I am a root, merge into me"
	// or "follow my outgoing link / my leader".
	gtsReply struct {
		Root bool
		Next graph.ID
	}
	// gtsLeaderLink announces a fresh leader-to-leader selection edge.
	gtsLeaderLink struct{}
	// gtsSelState answers a gtsLeaderLink: Paired means the target did
	// not itself select, so the sender should merge; otherwise the
	// sender enters pulling mode (§3, Selection).
	gtsSelState struct{ Paired bool }
	// gtsJoined registers the sender as a new follower of the receiver.
	gtsJoined struct{}
	// gtsNextMode is the leader's phase-end broadcast fixing the
	// committee mode (and merge target) for the next phase.
	gtsNextMode struct {
		Mode   Mode
		Target graph.ID
	}
)

const gtsPhaseLen = 8

// GraphToStar is the §3 algorithm: committees are stars; selection
// links star centers; pairs merge in one phase and trees of committees
// collapse through the pulling mode (TreeToStar on committees). It
// solves Depth-1 Tree — the final network is a spanning star centered
// at u_max, the elected leader — in O(log n) rounds with O(n log n)
// total edge activations and at most 2n activated edges alive per
// round (Theorem 3.8).
type GraphToStar struct {
	selfID graph.ID
	role   Role
	leader graph.ID
	mode   Mode
	// target is the node this committee acts toward: the merge target
	// in merging mode, the currently queried node in pulling mode.
	target graph.ID
	// followers is the leader's member list, kept sorted ascending so
	// membership tests are binary searches and iteration is
	// deterministic.
	followers []graph.ID

	// Phase scratch, reset at every phase start.
	foreign     map[graph.ID]Announce // orig neighbor -> its announcement
	reports     []gtsReport
	queriers    []graph.ID // pulling committees that queried us
	linkers     []graph.ID // leaders that linked to us this phase
	selecting   bool
	selTarget   graph.ID // leader of the selected committee
	hop1        graph.ID // border member used as the first hop
	hop1Temp    bool     // hop1 edge was activated and must be dropped
	gotLink     bool     // received a leader link this phase
	repliedRoot bool     // answered a pulling query with Root
	paired      bool
	replySeen   bool
	noForeign   bool

	// Pulling scratch: the query reply and the hop it induced.
	replyRootSeen   bool
	replyFollowSeen bool
	replyNext       graph.ID
	hopped          bool
	prevTarget      graph.ID

	// execMerge is true during the phase that actually executes this
	// committee's merge (mode was already Merging at phase start), as
	// opposed to the phase in which the merge was merely scheduled by
	// a pairing reply or a pulling Root reply.
	execMerge bool

	// Outgoing payload scratch. Multi-field payloads are sent as
	// pointers to these machine-owned values so a round's broadcasts
	// box no interfaces and allocate nothing: the engine's Send/Receive
	// phases are barrier-separated and receivers copy what they keep,
	// so the pointee is stable for exactly as long as it is readable.
	// (Round hooks that retain messages must deep-copy such payloads;
	// see sim.RoundEvent.)
	annOut   Announce
	repOut   gtsReport
	replyOut gtsReply
	selOut   gtsSelState
	nextOut  gtsNextMode
}

var _ sim.Machine = (*GraphToStar)(nil)

// NewGraphToStarFactory returns the machine factory for the §3
// algorithm.
func NewGraphToStarFactory() sim.Factory {
	return func(id graph.ID, _ sim.Env) sim.Machine {
		return &GraphToStar{
			selfID:  id,
			role:    RoleLeader,
			leader:  id,
			mode:    ModeSelection,
			foreign: make(map[graph.ID]Announce),
		}
	}
}

var _ sim.Recycler = (*GraphToStar)(nil)

// Recycle implements sim.Recycler: it restores the machine to its
// factory-fresh state for (id, env) while keeping the follower slice,
// report buffer and foreign map capacity, making repeated runs through
// a recycling engine allocation-free.
func (m *GraphToStar) Recycle(id graph.ID, _ sim.Env) {
	clear(m.foreign)
	*m = GraphToStar{
		selfID:    id,
		role:      RoleLeader,
		leader:    id,
		mode:      ModeSelection,
		followers: m.followers[:0],
		foreign:   m.foreign,
		reports:   m.reports[:0],
		queriers:  m.queriers[:0],
		linkers:   m.linkers[:0],
	}
}

// Leader returns the node's current committee leader (itself if it is
// a leader). Exposed for tests and invariant checks.
func (m *GraphToStar) Leader() graph.ID { return m.leader }

// Role returns the node's current role.
func (m *GraphToStar) Role() Role { return m.role }

// CommitteeMode returns the node's view of its committee's mode.
func (m *GraphToStar) CommitteeMode() Mode { return m.mode }

func phaseStep(round int) int { return (round - 1) % gtsPhaseLen }

// Init implements sim.Machine.
func (m *GraphToStar) Init(*sim.Context) {}

// Send implements sim.Machine.
func (m *GraphToStar) Send(ctx *sim.Context) {
	switch phaseStep(ctx.Round()) {
	case 0: // ANNOUNCE over original edges
		if m.mode == ModeTermination {
			return // this phase tears down and halts instead
		}
		m.annOut = Announce{Leader: m.leader, Mode: m.mode}
		for _, v := range ctx.OrigNeighbors() {
			ctx.Send(v, &m.annOut)
		}
	case 1: // REPORT to leader
		if m.role == RoleFollower {
			m.repOut = m.makeReport()
			ctx.Send(m.leader, &m.repOut)
		} else {
			m.reports = append(m.reports, m.makeReport())
		}
	case 2: // pulling leaders query their target
		if m.role == RoleLeader && m.mode == ModePulling {
			ctx.Send(m.target, gtsQuery{})
		}
	case 3: // query replies; merging members register with the winner
		if len(m.queriers) > 0 {
			m.replyOut = m.makeReply()
			for _, q := range m.queriers {
				ctx.Send(q, &m.replyOut)
			}
			m.queriers = m.queriers[:0]
		}
		if m.mode == ModeMerging {
			// Both the dying leader (over its leader link) and its
			// followers (over the star edges activated at step 2)
			// register as followers of the winner.
			ctx.Send(m.target, gtsJoined{})
		}
	case 4: // fresh selection links announce themselves
		if m.role == RoleLeader && m.selecting {
			ctx.Send(m.selTarget, gtsLeaderLink{})
		}
	case 5: // link replies
		if len(m.linkers) > 0 {
			m.selOut = gtsSelState{Paired: m.isPairable()}
			for _, l := range m.linkers {
				ctx.Send(l, &m.selOut)
			}
		}
	case 7: // NEXTMODE broadcast to followers
		if m.role == RoleLeader {
			m.decideNextMode()
			m.nextOut = gtsNextMode{Mode: m.mode, Target: m.target}
			for _, f := range m.followers {
				ctx.Send(f, &m.nextOut)
			}
		}
	}
}

// Receive implements sim.Machine.
func (m *GraphToStar) Receive(ctx *sim.Context, inbox []sim.Message) {
	switch phaseStep(ctx.Round()) {
	case 0:
		if m.mode == ModeTermination {
			m.terminate(ctx)
			return
		}
		m.resetPhase()
		for _, msg := range inbox {
			if ann, ok := msg.Payload.(*Announce); ok && ann.Leader != m.leader {
				m.foreign[msg.From] = *ann
			}
		}
	case 1:
		if m.role == RoleLeader {
			for _, msg := range inbox {
				if rep, ok := msg.Payload.(*gtsReport); ok {
					m.reports = append(m.reports, *rep)
				}
			}
		}
	case 2:
		for _, msg := range inbox {
			if _, ok := msg.Payload.(gtsQuery); ok {
				m.queriers = append(m.queriers, msg.From)
			}
		}
		if m.role == RoleLeader {
			m.decideSelection(ctx)
		}
		if m.role == RoleFollower && m.mode == ModeMerging {
			// Move to the winning star: f-w via f-m(star), m-w(link).
			ctx.Activate(m.target)
		}
	case 3:
		joined := false
		for _, msg := range inbox {
			switch pl := msg.Payload.(type) {
			case gtsJoined:
				m.followers = append(m.followers, msg.From)
				joined = true
			case *gtsReply:
				if m.role == RoleLeader && m.mode == ModePulling && msg.From == m.target {
					if pl.Root {
						m.replyRootSeen = true
					} else {
						m.replyFollowSeen = true
						m.replyNext = pl.Next
					}
				}
			}
		}
		if joined {
			// Restore the sorted invariant (new joiners arrive in sender
			// order, not globally sorted) and drop any duplicates.
			slices.Sort(m.followers)
			m.followers = slices.Compact(m.followers)
		}
		if m.role == RoleLeader && m.selecting && m.hop1 != m.selTarget {
			// Second hop: connect to the target committee's leader over
			// the border member's star edge.
			ctx.Activate(m.selTarget)
		}
		if m.role == RoleFollower && m.mode == ModeMerging {
			if !ctx.IsOriginal(m.leader) {
				ctx.Deactivate(m.leader)
			}
			m.leader = m.target
		}
	case 4:
		for _, msg := range inbox {
			if _, ok := msg.Payload.(gtsLeaderLink); ok {
				m.linkers = append(m.linkers, msg.From)
				m.gotLink = true
			}
		}
		if m.role == RoleLeader {
			if m.selecting && m.hop1Temp && m.hop1 != m.selTarget && !ctx.IsOriginal(m.hop1) {
				ctx.Deactivate(m.hop1)
			}
			if m.mode == ModePulling {
				m.pullHop(ctx)
			}
		}
	case 5:
		for _, msg := range inbox {
			if st, ok := msg.Payload.(*gtsSelState); ok && msg.From == m.selTarget {
				m.paired = st.Paired
				m.replySeen = true
			}
		}
		if m.role == RoleLeader && m.mode == ModePulling && m.hopped && !ctx.IsOriginal(m.prevTarget) {
			ctx.Deactivate(m.prevTarget)
		}
	case 7:
		if m.role == RoleFollower {
			for _, msg := range inbox {
				if nm, ok := msg.Payload.(*gtsNextMode); ok && msg.From == m.leader {
					m.mode = nm.Mode
					m.target = nm.Target
				}
			}
		}
	}
}

// makeReport summarizes this phase's foreign announcements.
func (m *GraphToStar) makeReport() gtsReport {
	rep := gtsReport{AnyForeign: len(m.foreign) > 0}
	for via, ann := range m.foreign {
		if !ann.Mode.selectable() {
			continue
		}
		if !rep.HasBest || ann.Leader > rep.BestLeader ||
			(ann.Leader == rep.BestLeader && via < rep.Via) {
			rep.HasBest = true
			rep.BestLeader = ann.Leader
			rep.Via = via
		}
	}
	return rep
}

// decideSelection aggregates reports at step 2 for any leader: it
// detects the no-foreign (termination) condition, and in selection
// mode picks the greatest selectable foreign committee above our own
// UID and starts building the leader link (first hop to the border
// member).
func (m *GraphToStar) decideSelection(ctx *sim.Context) {
	best := gtsReport{}
	anyForeign := false
	for _, rep := range m.reports {
		anyForeign = anyForeign || rep.AnyForeign
		if rep.HasBest && (!best.HasBest || rep.BestLeader > best.BestLeader ||
			(rep.BestLeader == best.BestLeader && rep.Via < best.Via)) {
			best = rep
			best.HasBest = true
		}
	}
	if !anyForeign {
		m.noForeign = true
		return
	}
	if m.mode != ModeSelection {
		return
	}
	if !best.HasBest || best.BestLeader <= m.selfID {
		return // nothing greater around: remain in selection
	}
	m.selecting = true
	m.selTarget = best.BestLeader
	m.hop1 = best.Via
	if !ctx.HasNeighbor(m.hop1) {
		// First hop: L-y via the reporting member x (star edge L-x and
		// original edge x-y are both active).
		ctx.Activate(m.hop1)
		m.hop1Temp = true
	}
}

// makeReply answers a pulling query given our current situation.
func (m *GraphToStar) makeReply() gtsReply {
	if m.role == RoleFollower {
		return gtsReply{Next: m.leader}
	}
	switch {
	case m.selecting:
		return gtsReply{Next: m.selTarget}
	case m.mode == ModeMerging || m.mode == ModePulling:
		return gtsReply{Next: m.target}
	default:
		m.repliedRoot = true
		return gtsReply{Root: true}
	}
}

// isFollower reports membership in the sorted follower list.
func (m *GraphToStar) isFollower(v graph.ID) bool {
	_, ok := slices.BinarySearch(m.followers, v)
	return ok
}

// isPairable reports whether a selector of this committee should merge
// (we are a root: not selecting, not dying) rather than pull.
func (m *GraphToStar) isPairable() bool {
	return m.role == RoleLeader && !m.selecting &&
		m.mode != ModeMerging && m.mode != ModePulling
}

// pullHop processes the query reply in pulling mode: hop along the
// tree of committees (TreeToStar on committees) or switch to merging
// if the target turned out to be a root.
func (m *GraphToStar) pullHop(ctx *sim.Context) {
	if !m.replyRootSeen && !m.replyFollowSeen {
		return
	}
	if m.replyRootSeen {
		m.mode = ModeMerging // merge into target next phase
		return
	}
	next := m.replyNext
	if next == m.target {
		return
	}
	ctx.Activate(next) // witness: L-target, target-next
	m.prevTarget = m.target
	m.target = next
	m.hopped = true
}

// terminate executes the Termination mode (§3): drop every edge except
// the star edges, declare statuses, halt.
func (m *GraphToStar) terminate(ctx *sim.Context) {
	ctx.EachNeighbor(func(v graph.ID) bool {
		switch {
		case m.role == RoleFollower && v == m.leader:
		case m.role == RoleLeader && m.isFollower(v):
		default:
			ctx.Deactivate(v)
		}
		return true
	})
	if m.role == RoleLeader {
		ctx.SetStatus(sim.StatusLeader)
	} else {
		ctx.SetStatus(sim.StatusFollower)
	}
	ctx.Halt()
}

// decideNextMode is the leader's phase-end transition (step 7).
func (m *GraphToStar) decideNextMode() {
	switch m.mode {
	case ModeSelection, ModeWaiting:
		switch {
		case m.noForeign:
			m.mode = ModeTermination
		case m.selecting && m.replySeen && m.paired:
			m.mode = ModeMerging
			m.target = m.selTarget
		case m.selecting && m.replySeen && !m.paired:
			m.mode = ModePulling
			m.target = m.selTarget
		case m.selecting && !m.replySeen:
			// Defensive: the link is up but unanswered; resolve it via
			// the pulling query protocol next phase.
			m.mode = ModePulling
			m.target = m.selTarget
		case m.gotLink || m.repliedRoot:
			m.mode = ModeWaiting
		default:
			m.mode = ModeSelection
		}
	case ModeMerging:
		if !m.execMerge {
			// Merge scheduled by a pulling Root reply this phase; it
			// executes next phase.
			return
		}
		// The committee has merged; this leader is now a follower of
		// the winner. Its erstwhile followers already moved.
		m.role = RoleFollower
		m.leader = m.target
		m.followers = m.followers[:0]
	case ModePulling:
		// mode may have been flipped to merging by pullHop; nothing to
		// do otherwise - the next phase queries the new target.
	}
}

func (m *GraphToStar) resetPhase() {
	m.execMerge = m.mode == ModeMerging
	clear(m.foreign)
	m.reports = m.reports[:0]
	m.selecting = false
	m.selTarget = 0
	m.hop1 = 0
	m.hop1Temp = false
	m.gotLink = false
	m.repliedRoot = false
	m.paired = false
	m.replySeen = false
	m.noForeign = false
	m.queriers = m.queriers[:0]
	m.linkers = m.linkers[:0]
	m.replyRootSeen = false
	m.replyFollowSeen = false
	m.replyNext = 0
	m.hopped = false
	m.prevTarget = 0
}
