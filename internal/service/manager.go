package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adnet/internal/expt"
	"adnet/internal/fleet"
	"adnet/internal/obs"
	"adnet/internal/sim"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle: queued → running → one of the three terminal states.
// Cache hits are born StateDone.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Submission errors surfaced to the API layer.
var (
	ErrQueueFull  = errors.New("service: job queue full")
	ErrClosed     = errors.New("service: manager closed")
	ErrNotFound   = errors.New("service: no such job")
	ErrNotRunning = errors.New("service: job already finished")
)

// Config sizes the manager. Zero values pick the documented defaults.
type Config struct {
	// Workers is the number of concurrent simulations (default:
	// GOMAXPROCS). Each runs the engine sequentially, so the pool —
	// not per-run parallelism — is the service's unit of concurrency.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64);
	// submissions beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// CacheSize is the LRU capacity in entries (default 256; 0 uses
	// the default, negative disables caching).
	CacheSize int
	// MaxN caps RunSpec.N (default DefaultMaxN).
	MaxN int
	// RunTimeLimit is the wall-clock budget per run (default 2m);
	// runs over budget — including individual sweep cells — are
	// canceled between rounds and fail. The centralized-euler
	// baseline runs no round loop, so it streams no rounds and cannot
	// be interrupted mid-computation.
	RunTimeLimit time.Duration
	// RetainJobs bounds how many finished jobs stay queryable
	// (default 1024): the oldest finished jobs are evicted from the
	// table as new ones finish. Live jobs are never evicted.
	RetainJobs int
	// SweepWorkers sizes the engine fleet of one sweep (default:
	// GOMAXPROCS). Each worker owns a reusable engine, so the fleet —
	// not per-run parallelism — is a sweep's unit of concurrency.
	SweepWorkers int
	// MaxSweepCells caps a single sweep's grid volume (default 1024;
	// negative disables the cap).
	MaxSweepCells int
	// MaxConcurrentSweeps bounds sweeps running at once (default 2);
	// further POST /v1/sweeps fail fast with ErrSweepBusy.
	MaxConcurrentSweeps int
	// SweepTimeLimit is the wall-clock budget for a whole sweep job
	// (default 10m); sweeps over budget are aborted between cells and
	// fail, with the cells finished so far retained.
	SweepTimeLimit time.Duration
	// RetainSweeps bounds how many finished sweep jobs stay queryable
	// (default 64). A retained sweep keeps its full cell stream in
	// memory, so the bound is deliberately tighter than RetainJobs.
	RetainSweeps int
	// RetainFrameBytes bounds the encoded-frame log of each stream
	// (default 4 MiB per stream; negative disables the bound). Beyond
	// it the oldest encoded frames are evicted — the typed items stay,
	// and a subscriber replaying the evicted range gets per-subscriber
	// re-encoded frames, so no data is lost, only the shared-log
	// memory is capped.
	RetainFrameBytes int64
	// StreamWriteTimeout is the per-write-batch deadline on the NDJSON
	// streaming endpoints (default 30s; negative disables). A
	// subscriber that cannot drain a batch within it is dropped — the
	// backpressure policy that keeps one stalled reader from pinning
	// connection buffers while the encode-once hub keeps every other
	// subscriber live.
	StreamWriteTimeout time.Duration
	// DataDir, when set, makes sweeps durable: every sweep job writes
	// a write-ahead journal under <DataDir>/sweeps — the spec at
	// submission, then each finished cell (or, in coordinator mode,
	// each completed shard). After a crash, Recover replays the intact
	// journals, rebuilds finished outcomes into the result cache, and
	// resubmits interrupted grids so only their missing run keys
	// re-execute. Empty disables journaling (the pre-durability
	// in-memory behavior).
	DataDir string
	// Fleet, when set, runs the manager in coordinator mode: sweep
	// grids are sharded across the coordinator's registered worker
	// servers (internal/fleet) instead of the local engine fleet, the
	// /v1/fleet/workers endpoints are mounted, and the aggregate
	// endpoint serves the fold-merge of the per-shard worker
	// aggregates. Run jobs still execute locally.
	Fleet *fleet.Coordinator
	// Metrics receives the manager's instruments and is served at
	// GET /metrics (default: a fresh private registry). A server
	// sharing one registry between its fleet coordinator and manager
	// passes the same instance to both configs.
	Metrics *obs.Registry
	// Logger receives structured lifecycle and access logs (default:
	// discard). Records logged with a request-scoped context carry the
	// request ID automatically.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxN <= 0 {
		c.MaxN = DefaultMaxN
	}
	if c.RunTimeLimit <= 0 {
		c.RunTimeLimit = 2 * time.Minute
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSweepCells == 0 {
		c.MaxSweepCells = 1024
	}
	if c.MaxConcurrentSweeps <= 0 {
		c.MaxConcurrentSweeps = 2
	}
	if c.SweepTimeLimit <= 0 {
		c.SweepTimeLimit = 10 * time.Minute
	}
	if c.RetainSweeps <= 0 {
		c.RetainSweeps = 64
	}
	if c.RetainFrameBytes == 0 {
		c.RetainFrameBytes = 4 << 20
	}
	if c.StreamWriteTimeout == 0 {
		c.StreamWriteTimeout = 30 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Job tracks one submitted RunSpec through its lifecycle.
type Job struct {
	ID   string
	Spec RunSpec
	// FromCache marks jobs answered by the result cache without
	// executing a simulation.
	FromCache bool

	stream *RoundStream
	topo   *TopologyStream
	cancel chan struct{}

	mu         sync.Mutex
	cancelOnce sync.Once
	state      JobState
	outcome    *expt.Outcome
	err        error
	enqueued   time.Time
	started    time.Time
	finished   time.Time
}

// JobStatus is the JSON-facing snapshot of a Job.
type JobStatus struct {
	ID         string        `json:"id"`
	Spec       RunSpec       `json:"spec"`
	State      JobState      `json:"state"`
	FromCache  bool          `json:"from_cache"`
	Outcome    *expt.Outcome `json:"outcome,omitempty"`
	Error      string        `json:"error,omitempty"`
	EnqueuedAt time.Time     `json:"enqueued_at"`
	StartedAt  *time.Time    `json:"started_at,omitempty"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
	Rounds     int           `json:"rounds_streamed"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.ID,
		Spec:       j.Spec,
		State:      j.state,
		FromCache:  j.FromCache,
		EnqueuedAt: j.enqueued,
		Rounds:     j.stream.Len(),
	}
	if j.outcome != nil {
		o := *j.outcome
		st.Outcome = &o
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Stream exposes the job's round stream for subscribers.
func (j *Job) Stream() *RoundStream { return j.stream }

// Topology exposes the job's topology delta stream for subscribers.
func (j *Job) Topology() *TopologyStream { return j.topo }

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	switch s {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCanceled:
		j.finished = time.Now()
	}
}

// State returns the current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Manager owns the worker pool, the job table, the sweep-job table,
// the in-flight dedup index, the result cache, and the sweep gate.
type Manager struct {
	cfg       Config
	cache     *resultCache
	queue     chan *Job
	wg        sync.WaitGroup
	sweepWG   sync.WaitGroup
	sweepGate chan struct{}

	mu            sync.Mutex
	jobs          map[string]*Job
	inWork        map[string]*Job // spec key → live (queued/running) job
	retired       []string        // finished job IDs, oldest first
	sweeps        map[string]*SweepJob
	retiredSweeps []string // finished sweep IDs, oldest first
	// openJournals tracks which sweep spec keys currently own their
	// on-disk journal; a second concurrent sweep over the same grid
	// runs unjournaled instead of interleaving writers in one file.
	openJournals map[string]struct{}
	closed       bool

	seq          atomic.Int64
	runsExecuted atomic.Int64

	metrics *metrics
	logger  *slog.Logger
	start   time.Time
}

// NewManager starts cfg.Workers workers; callers must Close it.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:          cfg,
		cache:        newResultCache(cfg.CacheSize),
		queue:        make(chan *Job, cfg.QueueDepth),
		jobs:         make(map[string]*Job),
		inWork:       make(map[string]*Job),
		sweeps:       make(map[string]*SweepJob),
		openJournals: make(map[string]struct{}),
		sweepGate:    make(chan struct{}, cfg.MaxConcurrentSweeps),
		logger:       cfg.Logger,
		start:        time.Now(),
	}
	m.metrics = newMetrics(cfg.Metrics, cfg.Logger)
	m.registerManagerGauges(cfg.Metrics)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry exposes the manager's metrics registry — the one
// GET /metrics serves.
func (m *Manager) Registry() *obs.Registry { return m.cfg.Metrics }

// Logger exposes the manager's structured logger.
func (m *Manager) Logger() *slog.Logger { return m.logger }

// Close stops accepting submissions, cancels live sweep jobs, and
// waits for in-flight work. Queued run jobs still run (to drop them,
// Cancel first); sweeps are canceled rather than drained because a
// grid can legally run for SweepTimeLimit — graceful shutdown must
// not stall behind it, and a sweep's in-memory cells die with the
// process anyway.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	sweeps := make([]*SweepJob, 0, len(m.sweeps))
	for _, j := range m.sweeps {
		sweeps = append(sweeps, j)
	}
	m.mu.Unlock()
	for _, j := range sweeps {
		j.cancelOnce.Do(func() { close(j.cancel) })
	}
	close(m.queue)
	m.wg.Wait()
	m.sweepWG.Wait()
}

// isClosed reports whether Close has begun. Sweep journals consult it
// at terminal time: a shutdown-canceled sweep writes no terminal
// record, so the next startup resumes it like a crash.
func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Submit validates spec and returns a job for it: a pre-completed one
// on a cache hit (cached=true), the already-live job when an
// identical spec is in flight, or a freshly enqueued one. It fails
// fast with ErrQueueFull when the queue is at capacity.
func (m *Manager) Submit(spec RunSpec) (job *Job, cached bool, err error) {
	if err := spec.Validate(m.cfg.MaxN); err != nil {
		return nil, false, fmt.Errorf("service: invalid spec: %w", err)
	}
	key := spec.Key()
	if entry, ok := m.cache.Get(key); ok {
		j := m.newJob(spec, true)
		out := entry.Outcome
		j.outcome = &out
		j.state = StateDone
		j.finished = time.Now()
		j.stream = newClosedStream(entry.Rounds, m.frameBudget(), m.metrics.roundsObs)
		j.topo = newClosedTopologyStream(entry.Topo, m.frameBudget(),
			m.metrics.topoObs, m.metrics.topoPackedObs)
		m.register(j)
		m.retire(j)
		m.metrics.runSubmissions.With("cached").Inc()
		return j, true, nil
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, ErrClosed
	}
	// Join an identical in-flight spec — unless it has been canceled
	// (the new submitter deserves a fresh run, not someone else's
	// cancellation) or has already reached a terminal state (a finished
	// job can linger in inWork until its worker's deferred cleanup
	// runs; joining it would skip a requested re-execution).
	if live, ok := m.inWork[key]; ok && !wasCanceled(live.cancel) {
		if st := live.State(); st == StateQueued || st == StateRunning {
			m.mu.Unlock()
			m.metrics.runSubmissions.With("joined").Inc()
			return live, false, nil
		}
	}
	j := m.newJob(spec, false)
	j.state = StateQueued
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		m.metrics.runSubmissions.With("rejected").Inc()
		return nil, false, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.inWork[key] = j
	m.mu.Unlock()
	m.metrics.runSubmissions.With("new").Inc()
	return j, false, nil
}

// liveJob returns the queued/running, non-canceled job for a spec
// key, or nil. Sweeps use it to coalesce cells with in-flight runs.
func (m *Manager) liveJob(key string) *Job {
	m.mu.Lock()
	j, ok := m.inWork[key]
	m.mu.Unlock()
	if !ok || wasCanceled(j.cancel) {
		return nil
	}
	if st := j.State(); st != StateQueued && st != StateRunning {
		return nil
	}
	return j
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every known job's status, newest first not
// guaranteed — callers sort as needed.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel aborts a queued or running job. Terminal jobs return
// ErrNotRunning.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		j.mu.Unlock()
		return ErrNotRunning
	}
	j.mu.Unlock()
	j.cancelOnce.Do(func() { close(j.cancel) })
	return nil
}

// Stats is the healthz payload. The fleet fields are always present —
// a coordinator with zero healthy workers must scrape as 0, not as a
// missing key: Coordinator marks the mode, FleetWorkers counts
// registered workers, FleetHealthy those healthy as of their last
// probe (both 0 on a non-coordinator).
type Stats struct {
	Workers      int   `json:"workers"`
	QueueDepth   int   `json:"queue_depth"`
	Queued       int   `json:"queued"`
	Jobs         int   `json:"jobs"`
	Sweeps       int   `json:"sweeps"`
	RunsExecuted int64 `json:"runs_executed"`
	CacheSize    int   `json:"cache_size"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Coordinator  bool  `json:"coordinator"`
	FleetWorkers int   `json:"fleet_workers"`
	FleetHealthy int   `json:"fleet_healthy"`
	// StreamBytes is the encoded NDJSON frame bytes currently retained
	// by the broadcast hubs of every tracked job and sweep — the
	// server's streaming memory footprint under the RetainFrameBytes
	// bound.
	StreamBytes int64 `json:"stream_bytes"`
	// UptimeSeconds and GoVersion let probes distinguish a restarted
	// server from a live one and audit the deployed toolchain.
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
}

// Stats reports live counters.
func (m *Manager) Stats() Stats {
	size, hits, misses := m.cache.Stats()
	m.mu.Lock()
	jobs := len(m.jobs)
	sweeps := len(m.sweeps)
	var streamBytes int64
	for _, j := range m.jobs {
		streamBytes += j.stream.FrameBytes() + j.topo.FrameBytes()
	}
	for _, j := range m.sweeps {
		streamBytes += j.cells.FrameBytes()
	}
	m.mu.Unlock()
	st := Stats{
		Workers:       m.cfg.Workers,
		QueueDepth:    m.cfg.QueueDepth,
		Queued:        len(m.queue),
		Jobs:          jobs,
		Sweeps:        sweeps,
		RunsExecuted:  m.runsExecuted.Load(),
		CacheSize:     size,
		CacheHits:     hits,
		CacheMisses:   misses,
		StreamBytes:   streamBytes,
		UptimeSeconds: time.Since(m.start).Seconds(),
		GoVersion:     runtime.Version(),
	}
	if m.cfg.Fleet != nil {
		st.Coordinator = true
		st.FleetWorkers, st.FleetHealthy = m.cfg.Fleet.Counts()
	}
	return st
}

// Fleet returns the coordinator when the manager runs in coordinator
// mode, nil otherwise.
func (m *Manager) Fleet() *fleet.Coordinator { return m.cfg.Fleet }

// RunsExecuted counts simulations actually executed (cache hits and
// dedup joins excluded) — the observable for "no re-simulation".
func (m *Manager) RunsExecuted() int64 { return m.runsExecuted.Load() }

// frameBudget maps the config's RetainFrameBytes to the stream bound
// (negative config means unbounded, which the streams spell as 0).
func (m *Manager) frameBudget() int64 {
	if m.cfg.RetainFrameBytes < 0 {
		return 0
	}
	return m.cfg.RetainFrameBytes
}

func (m *Manager) newJob(spec RunSpec, fromCache bool) *Job {
	seq := m.seq.Add(1)
	return &Job{
		ID:        fmt.Sprintf("run-%06d-%s", seq, spec.keyHash()),
		Spec:      spec,
		FromCache: fromCache,
		stream:    newRoundStream(m.frameBudget(), m.metrics.roundsObs),
		topo:      newTopologyStream(m.frameBudget(), m.metrics.topoObs, m.metrics.topoPackedObs),
		cancel:    make(chan struct{}),
		enqueued:  time.Now(),
	}
}

func (m *Manager) register(j *Job) {
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.mu.Unlock()
}

// retire records a finished job and evicts the oldest finished jobs
// beyond the retention bound, keeping the table's memory bounded on
// an always-on server.
func (m *Manager) retire(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retired = append(m.retired, j.ID)
	for len(m.retired) > m.cfg.RetainJobs {
		delete(m.jobs, m.retired[0])
		m.retired = m.retired[1:]
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.execute(j)
	}
}

func (m *Manager) execute(j *Job) {
	key := j.Spec.Key()
	defer func() {
		m.mu.Lock()
		if m.inWork[key] == j {
			delete(m.inWork, key)
		}
		m.mu.Unlock()
		j.stream.close()
		j.topo.close()
		m.retire(j)
	}()

	select {
	case <-j.cancel:
		j.setState(StateCanceled)
		j.mu.Lock()
		j.err = context.Canceled
		j.mu.Unlock()
		m.metrics.runJobs.With(string(StateCanceled)).Inc()
		return
	default:
	}
	j.setState(StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.RunTimeLimit)
	defer cancel()
	go func() {
		select {
		case <-j.cancel:
			cancel()
		case <-ctx.Done():
		}
	}()

	opts := []sim.Option{
		sim.WithRoundHook(func(ev sim.RoundEvent) { j.stream.publish(ev.Stats) }),
		sim.WithStartHook(func(ev sim.StartEvent) { j.topo.publishHeader(ev.N, ev.Edges) }),
		sim.WithDeltaHook(j.topo.publishDelta),
		sim.WithCancel(ctx.Done()),
		sim.WithRunObserver(m.metrics.observeRun),
	}
	if j.Spec.MaxRounds > 0 {
		opts = append(opts, sim.WithMaxRounds(j.Spec.MaxRounds))
	}
	m.runsExecuted.Add(1)
	out, err := expt.Execute(expt.Request{
		Algorithm: j.Spec.Algorithm,
		Workload:  j.Spec.Workload,
		N:         j.Spec.N,
		Seed:      j.Spec.Seed,
		Dynamics:  j.Spec.Dynamics,
		SimOpts:   opts,
	})
	if err == nil && j.Spec.Dynamics != nil {
		m.metrics.observeDynamics(out)
	}

	j.mu.Lock()
	switch {
	case err == nil:
		j.outcome = &out
		j.mu.Unlock()
		m.cache.Add(key, cacheEntry{
			Outcome: out,
			Rounds:  j.stream.snapshot(),
			Topo:    j.topo.Frames(),
		})
		j.setState(StateDone)
	case errors.Is(err, sim.ErrCanceled) && wasCanceled(j.cancel):
		j.err = fmt.Errorf("canceled by request: %w", err)
		j.mu.Unlock()
		j.setState(StateCanceled)
	case errors.Is(err, sim.ErrCanceled):
		j.err = fmt.Errorf("run time limit %s exceeded: %w", m.cfg.RunTimeLimit, err)
		j.mu.Unlock()
		j.setState(StateFailed)
	default:
		j.err = err
		j.mu.Unlock()
		j.setState(StateFailed)
	}
	state := j.State()
	m.metrics.runJobs.With(string(state)).Inc()
	if state == StateFailed {
		m.logger.Error("run failed",
			slog.String("job_id", j.ID),
			slog.String("error", err.Error()))
	}
}

func wasCanceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
