package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"adnet/internal/expt"
	"adnet/internal/fleet"
	"adnet/internal/obs"
	"adnet/internal/runkey"
	"adnet/internal/sim"
	"adnet/internal/temporal"
)

// Sweep submission/aggregation errors surfaced to the API layer.
var (
	// ErrSweepBusy is returned when the concurrent-sweep limit is reached.
	ErrSweepBusy = errors.New("service: too many concurrent sweeps")
	// ErrSweepRunning rejects aggregation of a sweep that has not
	// reached a terminal state yet.
	ErrSweepRunning = errors.New("service: sweep still running")
)

// SweepCell is the NDJSON-facing result of one grid cell.
type SweepCell struct {
	Index     int           `json:"index"`
	Algorithm string        `json:"algorithm"`
	Workload  string        `json:"workload"`
	N         int           `json:"n"`
	Seed      int64         `json:"seed"`
	MaxRounds int           `json:"max_rounds,omitempty"`
	FromCache bool          `json:"from_cache"`
	Outcome   *expt.Outcome `json:"outcome,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// SweepSummary trails the per-cell stream with sweep-level totals.
// Replayed counts cells answered from the sweep's journal done-set
// (they count as cache hits too); omitempty keeps the wire shape of
// an uninterrupted run byte-identical to pre-durability servers.
type SweepSummary struct {
	Done      bool `json:"done"`
	Cells     int  `json:"cells"`
	CacheHits int  `json:"cache_hits"`
	Executed  int  `json:"executed"`
	Errors    int  `json:"errors"`
	Replayed  int  `json:"replayed,omitempty"`
}

// SweepJob tracks one submitted SweepSpec grid through the same
// lifecycle as a run Job: queued → running → done/failed/canceled.
// Finished cells are retained on the job's CellStream (bounded by the
// sweep-cell limit) so any number of late subscribers can replay them;
// individual cell results additionally land in the manager's LRU
// result cache under their canonical run keys.
type SweepJob struct {
	ID   string
	Spec SweepSpec

	grid   expt.SweepSpec
	cells  *CellStream
	cancel chan struct{}
	// reqID is the request ID of the submitting HTTP request; the
	// background execution re-attaches it to its context so sweep
	// lifecycle logs — and coordinator→worker dispatches — stay
	// correlatable with the submission.
	reqID string

	// Durability (nil/false without a DataDir): journal is the job's
	// write-ahead log; doneCells/doneShards are the replayed done-sets
	// of a resumed grid (read-only once execution starts); resumed
	// marks a job whose journal carried prior work at submission.
	journal    *sweepJournal
	doneCells  map[string]SweepCell
	doneShards map[string]shardRecord
	resumed    bool

	mu         sync.Mutex
	cancelOnce sync.Once
	state      JobState
	summary    *SweepSummary
	// aggregate, when non-nil, is the fold-merge of per-shard worker
	// aggregates recorded by a coordinator-mode sweep; Aggregate
	// serves it directly instead of re-folding the cell stream. The
	// two are byte-identical for a completed sweep — storing the
	// merged groups keeps the endpoint on the distributed path.
	aggregate []expt.AggregateGroup
	err       error
	enqueued  time.Time
	started   time.Time
	finished  time.Time
}

// SweepStatus is the JSON-facing snapshot of a SweepJob.
type SweepStatus struct {
	ID    string    `json:"id"`
	Spec  SweepSpec `json:"spec"`
	State JobState  `json:"state"`
	// Cells is the grid volume; CellsDone counts cells already
	// finished and streamed.
	Cells     int `json:"cells"`
	CellsDone int `json:"cells_done"`
	// StreamBytes is the encoded NDJSON bytes currently retained in
	// the sweep's cell-stream frame log (bounded by RetainFrameBytes).
	StreamBytes int64 `json:"stream_bytes"`
	// Resumed marks a job whose journal carried work from a previous
	// process life: only the missing run keys execute.
	Resumed    bool          `json:"resumed,omitempty"`
	Summary    *SweepSummary `json:"summary,omitempty"`
	Error      string        `json:"error,omitempty"`
	EnqueuedAt time.Time     `json:"enqueued_at"`
	StartedAt  *time.Time    `json:"started_at,omitempty"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
}

// Status snapshots the sweep job.
func (j *SweepJob) Status() SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		ID:          j.ID,
		Spec:        j.Spec,
		State:       j.state,
		Cells:       j.grid.NumCells(),
		CellsDone:   j.cells.Len(),
		StreamBytes: j.cells.FrameBytes(),
		Resumed:     j.resumed,
		EnqueuedAt:  j.enqueued,
	}
	if j.summary != nil {
		s := *j.summary
		st.Summary = &s
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Stream exposes the job's cell stream for subscribers.
func (j *SweepJob) Stream() *CellStream { return j.cells }

// State returns the current lifecycle phase.
func (j *SweepJob) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *SweepJob) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	switch s {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCanceled:
		j.finished = time.Now()
	}
}

// finish publishes the terminal state, summary and error in one
// critical section: a status poll must never observe a summary (or
// error) on a still-running sweep — clients treat summary presence as
// completion.
func (j *SweepJob) finish(state JobState, sum SweepSummary, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.summary = &sum
	j.err = err
	j.finished = time.Now()
}

// Aggregate folds the sweep's finished cells into per-(algorithm,
// workload, n) statistics over seeds. Only terminal sweeps aggregate
// (ErrSweepRunning otherwise); a canceled or failed sweep aggregates
// the cells that did finish, with the rest counted as group errors.
func (j *SweepJob) Aggregate() ([]expt.AggregateGroup, error) {
	switch j.State() {
	case StateDone, StateFailed, StateCanceled:
	default:
		return nil, ErrSweepRunning
	}
	j.mu.Lock()
	stored := j.aggregate
	j.mu.Unlock()
	if stored != nil {
		return stored, nil
	}
	cells := j.cells.snapshot()
	results := make([]expt.CellResult, len(cells))
	for i, c := range cells {
		results[i] = expt.WireCellResult(c.Index, expt.Cell{
			Algorithm: c.Algorithm, Workload: c.Workload,
			N: c.N, Seed: c.Seed, MaxRounds: c.MaxRounds,
		}, c.FromCache, c.Outcome, c.Error)
	}
	return expt.Aggregate(results), nil
}

// SubmitSweep validates spec and registers a fire-and-forget sweep
// job: the call returns as soon as the job exists, the grid runs on
// its own engine fleet in the background. Concurrent sweeps are
// bounded by cfg.MaxConcurrentSweeps; beyond that SubmitSweep fails
// fast with ErrSweepBusy. ctx is the submission's context: its
// request ID (when present) is carried into the background execution
// for log correlation and coordinator→worker propagation; ctx's
// cancellation does NOT cancel the sweep.
func (m *Manager) SubmitSweep(ctx context.Context, spec SweepSpec) (*SweepJob, error) {
	if err := spec.Validate(m.cfg.MaxN, m.cfg.MaxSweepCells); err != nil {
		return nil, fmt.Errorf("service: invalid sweep: %w", err)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case m.sweepGate <- struct{}{}:
	default:
		m.mu.Unlock()
		m.metrics.sweepRejections.Inc()
		return nil, ErrSweepBusy
	}
	j := m.newSweepJob(spec)
	j.reqID = obs.RequestIDFromContext(ctx)
	m.sweeps[j.ID] = j
	m.sweepWG.Add(1)
	m.mu.Unlock()
	m.metrics.sweepsActive.Inc()
	if m.cfg.DataDir != "" {
		// Attach the write-ahead journal (and replay any previous
		// life's done-set) before execution starts; failures degrade to
		// an unjournaled sweep, never a rejected submission.
		m.openSweepJournal(j)
	}
	m.logger.InfoContext(ctx, "sweep accepted",
		slog.String("sweep_id", j.ID),
		slog.Int("cells", j.grid.NumCells()))
	go m.executeSweep(j)
	return j, nil
}

func (m *Manager) newSweepJob(spec SweepSpec) *SweepJob {
	seq := m.seq.Add(1)
	return &SweepJob{
		ID:       fmt.Sprintf("sweep-%06d-%s", seq, runkey.ShortHash(spec.Key())),
		Spec:     spec,
		grid:     spec.Expt(),
		cells:    newCellStream(m.frameBudget(), m.metrics.cellsObs),
		cancel:   make(chan struct{}),
		state:    StateQueued,
		enqueued: time.Now(),
	}
}

// GetSweep looks a sweep job up by ID.
func (m *Manager) GetSweep(id string) (*SweepJob, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.sweeps[id]
	return j, ok
}

// Sweeps snapshots every known sweep job's status.
func (m *Manager) Sweeps() []SweepStatus {
	m.mu.Lock()
	jobs := make([]*SweepJob, 0, len(m.sweeps))
	for _, j := range m.sweeps {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]SweepStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// CancelSweep aborts a queued or running sweep: cells not yet started
// are skipped, in-flight cells are interrupted between rounds.
// Terminal sweeps return ErrNotRunning.
func (m *Manager) CancelSweep(id string) error {
	j, ok := m.GetSweep(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		j.mu.Unlock()
		return ErrNotRunning
	}
	j.mu.Unlock()
	j.cancelOnce.Do(func() { close(j.cancel) })
	return nil
}

// retireSweep records a finished sweep and evicts the oldest finished
// sweeps beyond the retention bound.
func (m *Manager) retireSweep(j *SweepJob) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retiredSweeps = append(m.retiredSweeps, j.ID)
	for len(m.retiredSweeps) > m.cfg.RetainSweeps {
		delete(m.sweeps, m.retiredSweeps[0])
		m.retiredSweeps = m.retiredSweeps[1:]
	}
}

// executeSweep is the sweep job's background lifecycle: acquire state,
// run the grid with cancellation and the sweep time limit attached,
// publish cells, record the summary, close the stream.
func (m *Manager) executeSweep(j *SweepJob) {
	defer m.sweepWG.Done()
	defer func() {
		<-m.sweepGate
		m.metrics.sweepsActive.Dec()
		if j.journal != nil {
			// Seal the journal — unless the manager is shutting down:
			// a shutdown-canceled sweep must look like a crash so the
			// next startup resumes it.
			if st := j.Status(); st.Summary != nil && !m.isClosed() {
				j.journal.append(recDone, doneRecord{State: st.State, Summary: *st.Summary})
			}
			j.journal.sync()
			j.journal.close()
		}
		j.cells.close()
		m.retireSweep(j)
	}()
	// The submission's request ID rides along on the background
	// context: lifecycle logs and coordinator→worker dispatches all
	// carry it.
	base := obs.ContextWithRequestID(context.Background(), j.reqID)
	defer func() {
		st := j.State()
		m.metrics.sweepJobs.With(string(st)).Inc()
		m.logger.InfoContext(base, "sweep finished",
			slog.String("sweep_id", j.ID),
			slog.String("state", string(st)))
	}()

	select {
	case <-j.cancel:
		// Keep the wire contract uniform even when no cell ran: a
		// pre-start-canceled sweep streams the same shape a mid-grid
		// cancellation produces for its unreached cells — one
		// error-marked line per cell, then a summary counting them.
		skipErr := fmt.Sprintf("expt: cell skipped: %v", sim.ErrCanceled)
		for i, c := range j.grid.Cells() {
			j.cells.publish(SweepCell{
				Index: i, Algorithm: c.Algorithm, Workload: c.Workload,
				N: c.N, Seed: c.Seed, MaxRounds: c.MaxRounds, Error: skipErr,
			})
		}
		n := j.grid.NumCells()
		j.finish(StateCanceled, SweepSummary{Cells: n, Errors: n}, context.Canceled)
		return
	default:
	}
	j.setState(StateRunning)

	ctx, cancel := context.WithTimeout(base, m.cfg.SweepTimeLimit)
	defer cancel()
	go func() {
		select {
		case <-j.cancel:
			cancel()
		case <-ctx.Done():
		}
	}()

	emit := func(c SweepCell) { j.cells.publish(c) }
	var sum SweepSummary
	var groups []expt.AggregateGroup
	var err error
	if m.cfg.Fleet != nil {
		sum, groups, err = m.runGridFleet(ctx, j, emit)
	} else {
		sum, err = m.runGrid(ctx, j, emit)
	}
	switch {
	case err == nil:
		if groups != nil {
			j.mu.Lock()
			j.aggregate = groups
			j.mu.Unlock()
		}
		j.finish(StateDone, sum, nil)
	case errors.Is(err, sim.ErrCanceled) && wasCanceled(j.cancel):
		j.finish(StateCanceled, sum, fmt.Errorf("canceled by request: %w", err))
	case errors.Is(err, sim.ErrCanceled):
		j.finish(StateFailed, sum, fmt.Errorf("sweep time limit %s exceeded: %w", m.cfg.SweepTimeLimit, err))
	default:
		j.finish(StateFailed, sum, err)
	}
}

// runGrid executes the job's grid on an engine fleet of
// cfg.SweepWorkers runners, consulting the job's journal done-set
// first (replayed cells re-execute nothing), then the manager's
// result cache per cell (the keys are canonical, so cells repeat runs
// submitted via POST /v1/runs and vice versa), and storing fresh
// results — with per-round statistics, so later cache-hit runs can
// still replay their round streams. Every successfully finished,
// non-replayed cell is appended to the job's journal, so a crash
// re-executes only the missing run keys. emit receives cells in
// canonical grid order from the calling goroutine. Cancellation via
// ctx aborts between rounds/cells.
func (m *Manager) runGrid(ctx context.Context, j *SweepJob, emit func(SweepCell)) (SweepSummary, error) {
	spec := j.grid
	sum := SweepSummary{Cells: spec.NumCells()}
	workers := m.cfg.SweepWorkers
	if n := spec.NumCells(); workers > n {
		workers = n
	}
	// busy accumulates executed-cell wall time (Emit runs on this
	// goroutine only); with the grid's wall-clock it yields the
	// engine-fleet utilization fold after the sweep.
	var busy time.Duration
	start := time.Now()
	_, err := expt.ExecuteSweep(spec, expt.SweepOptions{
		Workers:       m.cfg.SweepWorkers,
		SimOpts:       []sim.Option{sim.WithRunObserver(m.metrics.observeRun)},
		CollectRounds: true,
		Cancel:        ctx.Done(),
		CellTimeLimit: m.cfg.RunTimeLimit,
		Done: func(c expt.Cell) (expt.Outcome, bool) {
			if j.doneCells == nil {
				return expt.Outcome{}, false
			}
			cell, ok := j.doneCells[cellKey(c)]
			if !ok || cell.Outcome == nil || cell.Error != "" {
				return expt.Outcome{}, false
			}
			m.metrics.journalReplayedCells.Inc()
			return *cell.Outcome, true
		},
		Lookup: func(c expt.Cell) (expt.Outcome, []temporal.RoundStats, bool) {
			key := cellKey(c)
			if e, ok := m.cache.Get(key); ok {
				return e.Outcome, e.Rounds, true
			}
			// Coalesce with an identical spec already in flight as a
			// /v1/runs job (same dedup Submit does via inWork): wait
			// for it instead of simulating the same deterministic run
			// twice. Its completion populates the cache.
			if j := m.liveJob(key); j != nil {
				j.stream.Wait(ctx, math.MaxInt)
				if e, ok := m.cache.Get(key); ok {
					return e.Outcome, e.Rounds, true
				}
			}
			return expt.Outcome{}, nil, false
		},
		Store: func(cr expt.CellResult) {
			m.cache.Add(cellKey(cr.Cell), cacheEntry{Outcome: cr.Outcome, Rounds: cr.Rounds})
		},
		Emit: func(cr expt.CellResult) {
			if cr.Ran {
				m.runsExecuted.Add(1)
				sum.Executed++
				busy += cr.Duration
			}
			if cr.FromCache {
				sum.CacheHits++
			}
			if cr.Replayed {
				sum.Replayed++
			}
			m.metrics.observeCell(cr.Ran, cr.FromCache, cr.Err != nil, cr.Duration.Seconds())
			if cr.Cell.Dynamics != nil && cr.Err == nil {
				m.metrics.observeDynamics(cr.Outcome)
			}
			cell := SweepCell{
				Index:     cr.Index,
				Algorithm: cr.Cell.Algorithm,
				Workload:  cr.Cell.Workload,
				N:         cr.Cell.N,
				Seed:      cr.Cell.Seed,
				MaxRounds: cr.Cell.MaxRounds,
				FromCache: cr.FromCache,
			}
			if cr.Err != nil {
				cell.Error = cr.Err.Error()
				sum.Errors++
			} else {
				out := cr.Outcome
				cell.Outcome = &out
			}
			// Journal every successful cell that is not itself a replay
			// (replays are already on disk). Error cells stay out so a
			// resumed sweep retries them.
			if j.journal != nil && cr.Err == nil && !cr.Replayed {
				j.journal.append(recCell, cellRecord{RunKey: cellKey(cr.Cell), Cell: cell})
			}
			if emit != nil {
				emit(cell)
			}
		},
	})
	if wall := time.Since(start); wall > 0 && workers > 0 {
		m.metrics.gridUtilization.Observe(busy.Seconds() / (wall.Seconds() * float64(workers)))
	}
	sum.Done = err == nil
	return sum, err
}

// runGridFleet is runGrid's coordinator-mode counterpart: the grid is
// sharded across the fleet's registered workers (fleet.RunGrid), each
// worker's cell stream is tailed and merged back into canonical grid
// order, and the per-shard worker aggregates fold-merge into the
// returned groups — byte-identical to what a single-process run of
// the same grid would aggregate. Worker failure mid-shard re-dispatches
// the shard to a healthy worker inside fleet.RunGrid; emit still
// receives every cell exactly once, in canonical order, from this
// goroutine. Durability works at shard granularity: completed shards
// are journaled via the Persist hook, and a resumed grid serves them
// back through Completed instead of re-dispatching — a fresh
// coordinator on a dead one's data dir picks the grid up exactly
// where the journal left it. Cell results are not entered into the
// local result cache: they already live in the worker-side caches, and
// a coordinator exists to stay out of simulation work entirely.
func (m *Manager) runGridFleet(ctx context.Context, j *SweepJob, emit func(SweepCell)) (SweepSummary, []expt.AggregateGroup, error) {
	var hooks fleet.GridHooks
	if len(j.doneShards) > 0 {
		hooks.Completed = func(shardKey string) (fleet.ShardResult, bool) {
			sr, ok := j.doneShards[shardKey]
			if !ok {
				return fleet.ShardResult{}, false
			}
			m.metrics.journalReplayedShards.Inc()
			return fleet.ShardResult{
				Key: sr.Key, Index: sr.Index, Offset: sr.Offset,
				Cells: sr.Cells, Groups: sr.Groups,
			}, true
		}
	}
	if j.journal != nil {
		hooks.Persist = func(res fleet.ShardResult) {
			// Called from dispatcher goroutines; journal appends are
			// serialized by the log's own lock. A completed shard is a
			// milestone worth an fsync.
			j.journal.append(recShard, shardRecord{
				Key: res.Key, Index: res.Index, Offset: res.Offset,
				Cells: res.Cells, Groups: res.Groups,
			})
			j.journal.sync()
		}
	}
	fsum, groups, err := m.cfg.Fleet.RunGrid(ctx, j.grid, func(c fleet.Cell) {
		// The coordinator counts merged cells too (no durations — the
		// workers own those), so cross-process cell totals can be
		// checked against each other at scrape time.
		m.metrics.observeCell(false, c.FromCache, c.Error != "", 0)
		emit(SweepCell{
			Index:     c.Index,
			Algorithm: c.Algorithm,
			Workload:  c.Workload,
			N:         c.N,
			Seed:      c.Seed,
			MaxRounds: c.MaxRounds,
			FromCache: c.FromCache,
			Outcome:   c.Outcome,
			Error:     c.Error,
		})
	}, hooks)
	sum := SweepSummary{
		Done:      err == nil,
		Cells:     fsum.Cells,
		CacheHits: fsum.CacheHits,
		Executed:  fsum.Executed,
		Errors:    fsum.Errors,
		Replayed:  fsum.Replayed,
	}
	return sum, groups, err
}
