package service

import (
	"context"
	"errors"
	"math"

	"adnet/internal/expt"
	"adnet/internal/temporal"
)

// ErrSweepBusy is returned when the concurrent-sweep limit is reached.
var ErrSweepBusy = errors.New("service: too many concurrent sweeps")

// SweepCell is the NDJSON-facing result of one grid cell.
type SweepCell struct {
	Index     int           `json:"index"`
	Algorithm string        `json:"algorithm"`
	Workload  string        `json:"workload"`
	N         int           `json:"n"`
	Seed      int64         `json:"seed"`
	MaxRounds int           `json:"max_rounds,omitempty"`
	FromCache bool          `json:"from_cache"`
	Outcome   *expt.Outcome `json:"outcome,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// SweepSummary trails the per-cell stream with sweep-level totals.
type SweepSummary struct {
	Done      bool `json:"done"`
	Cells     int  `json:"cells"`
	CacheHits int  `json:"cache_hits"`
	Executed  int  `json:"executed"`
	Errors    int  `json:"errors"`
}

// Sweep is a validated, ready-to-run grid bound to its Manager.
type Sweep struct {
	m    *Manager
	spec expt.SweepSpec
}

// PrepareSweep validates spec against the service limits and returns
// the runnable sweep. Validation happens here — before any bytes are
// streamed — so the HTTP layer can still answer 400.
func (m *Manager) PrepareSweep(spec SweepSpec) (*Sweep, error) {
	if err := spec.Validate(m.cfg.MaxN, m.cfg.MaxSweepCells); err != nil {
		return nil, err
	}
	return &Sweep{m: m, spec: spec.Expt()}, nil
}

// NumCells returns the grid size.
func (s *Sweep) NumCells() int { return s.spec.NumCells() }

// Run executes the grid on an engine fleet of cfg.SweepWorkers
// runners, consulting the manager's result cache per cell (the keys
// are canonical, so cells repeat runs submitted via POST /v1/runs and
// vice versa) and storing fresh results — with per-round statistics,
// so later cache-hit runs can still replay their round streams. emit
// receives cells in canonical grid order from the calling goroutine,
// followed by nothing else; the caller renders the summary returned
// by Run. Cancellation via ctx aborts between rounds/cells.
//
// Concurrent sweeps are bounded by cfg.MaxConcurrentSweeps; beyond
// that Run fails fast with ErrSweepBusy.
func (s *Sweep) Run(ctx context.Context, emit func(SweepCell)) (SweepSummary, error) {
	m := s.m
	select {
	case m.sweepGate <- struct{}{}:
		defer func() { <-m.sweepGate }()
	default:
		return SweepSummary{}, ErrSweepBusy
	}

	sum := SweepSummary{Cells: s.spec.NumCells()}
	_, err := expt.ExecuteSweep(s.spec, expt.SweepOptions{
		Workers:       m.cfg.SweepWorkers,
		CollectRounds: true,
		Cancel:        ctx.Done(),
		CellTimeLimit: m.cfg.RunTimeLimit,
		Lookup: func(c expt.Cell) (expt.Outcome, []temporal.RoundStats, bool) {
			key := cellKey(c)
			if e, ok := m.cache.Get(key); ok {
				return e.Outcome, e.Rounds, true
			}
			// Coalesce with an identical spec already in flight as a
			// /v1/runs job (same dedup Submit does via inWork): wait
			// for it instead of simulating the same deterministic run
			// twice. Its completion populates the cache.
			if j := m.liveJob(key); j != nil {
				j.stream.Wait(ctx, math.MaxInt)
				if e, ok := m.cache.Get(key); ok {
					return e.Outcome, e.Rounds, true
				}
			}
			return expt.Outcome{}, nil, false
		},
		Store: func(cr expt.CellResult) {
			m.cache.Add(cellKey(cr.Cell), cacheEntry{Outcome: cr.Outcome, Rounds: cr.Rounds})
		},
		Emit: func(cr expt.CellResult) {
			if cr.Ran {
				m.runsExecuted.Add(1)
				sum.Executed++
			}
			if cr.FromCache {
				sum.CacheHits++
			}
			cell := SweepCell{
				Index:     cr.Index,
				Algorithm: cr.Cell.Algorithm,
				Workload:  cr.Cell.Workload,
				N:         cr.Cell.N,
				Seed:      cr.Cell.Seed,
				MaxRounds: cr.Cell.MaxRounds,
				FromCache: cr.FromCache,
			}
			if cr.Err != nil {
				cell.Error = cr.Err.Error()
				sum.Errors++
			} else {
				out := cr.Outcome
				cell.Outcome = &out
			}
			if emit != nil {
				emit(cell)
			}
		},
	})
	sum.Done = err == nil
	return sum, err
}
