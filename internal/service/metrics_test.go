package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adnet/internal/obs"
)

// scrape fetches and strictly parses the server's /metrics page.
func scrape(t *testing.T, srv *httptest.Server) *obs.Metrics {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	m, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return m
}

func metricValue(t *testing.T, m *obs.Metrics, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := m.Value(name, labels)
	if !ok {
		t.Fatalf("metric %s%v absent", name, labels)
	}
	return v
}

// TestHealthzWireShape is the regression test for the healthz
// payload: decoding into a raw map pins the field names the probes
// depend on, including the uptime/go_version additions.
func TestHealthzWireShape(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Status string         `json:"status"`
		Stats  map[string]any `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.Status != "ok" {
		t.Fatalf("status = %q", raw.Status)
	}
	for _, key := range []string{
		"workers", "queue_depth", "queued", "jobs", "sweeps",
		"runs_executed", "cache_size", "cache_hits", "cache_misses",
		"coordinator", "fleet_workers", "fleet_healthy",
		"stream_bytes", "uptime_seconds", "go_version",
	} {
		if _, ok := raw.Stats[key]; !ok {
			t.Errorf("healthz stats missing %q: %v", key, raw.Stats)
		}
	}
	if up, _ := raw.Stats["uptime_seconds"].(float64); up < 0 {
		t.Errorf("uptime_seconds = %v, want >= 0", up)
	}
	if gv, _ := raw.Stats["go_version"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %q", raw.Stats["go_version"])
	}
}

// TestMetricsCoverSweepLifecycle drives one local sweep through the
// HTTP surface and checks the exported series against the sweep's own
// summary — the same consistency contract the e2e fleet scrape
// asserts across processes.
func TestMetricsCoverSweepLifecycle(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 2})

	spec := SweepSpec{
		Algorithms: []string{"graph-to-star"},
		Workloads:  []string{"line"},
		Sizes:      []int{16, 32},
		Seeds:      []int64{1, 2, 3},
	}
	st, code := postSweepJob(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	awaitSweepState(t, srv, st.ID, StateDone)

	m := scrape(t, srv)
	cells := float64(2 * 3)
	// The line workload ignores the seed, so seeds 2 and 3 of each
	// size hit the cache populated by seed 1: total = ok + cached.
	ok, _ := m.Sum("adnet_sweep_cells_total", map[string]string{"status": "ok"})
	cached, _ := m.Sum("adnet_sweep_cells_total", map[string]string{"status": "cached"})
	errs, _ := m.Sum("adnet_sweep_cells_total", map[string]string{"status": "error"})
	if ok+cached != cells || errs != 0 {
		t.Errorf("cells ok=%v cached=%v errors=%v, want ok+cached=%v errors=0", ok, cached, errs, cells)
	}
	if runs := metricValue(t, m, "adnet_engine_runs_total", nil); runs != ok {
		t.Errorf("engine runs = %v, want %v (one per executed cell)", runs, ok)
	}
	if v := metricValue(t, m, "adnet_engine_rounds_per_run_count", nil); v != ok {
		t.Errorf("rounds-per-run observations = %v, want %v", v, ok)
	}
	if v := metricValue(t, m, "adnet_sweep_cell_duration_seconds_count", nil); v != ok {
		t.Errorf("cell duration observations = %v, want %v (executed cells only)", v, ok)
	}
	if v := metricValue(t, m, "adnet_sweep_jobs_total", map[string]string{"state": "done"}); v != 1 {
		t.Errorf("sweep jobs done = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_sweep_grid_utilization_ratio_count", nil); v != 1 {
		t.Errorf("grid utilization folds = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_sweeps_active", nil); v != 0 {
		t.Errorf("sweeps active after completion = %v, want 0", v)
	}
	// The HTTP middleware counted the submission and the status polls.
	if v := metricValue(t, m, "adnet_http_requests_total",
		map[string]string{"route": "POST /v1/sweeps", "code": "202"}); v != 1 {
		t.Errorf("POST /v1/sweeps 202s = %v, want 1", v)
	}
	if v, ok := m.Value("adnet_http_request_duration_seconds_count",
		map[string]string{"route": "GET /v1/sweeps/{id}"}); !ok || v < 1 {
		t.Errorf("status-poll latency series = %v/%v, want >= 1", v, ok)
	}
}

// TestMetricsCountRunSubmissions checks the submission-resolution
// counter across the new/cached paths plus terminal job states.
func TestMetricsCountRunSubmissions(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})

	sub, _ := postRun(t, srv, fastSpec(91))
	awaitDone(t, srv, sub.Job.ID)
	if _, code := postRun(t, srv, fastSpec(91)); code != http.StatusOK {
		t.Fatalf("repeat POST = %d, want 200", code)
	}

	m := scrape(t, srv)
	if v := metricValue(t, m, "adnet_run_submissions_total", map[string]string{"result": "new"}); v != 1 {
		t.Errorf("new submissions = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_run_submissions_total", map[string]string{"result": "cached"}); v != 1 {
		t.Errorf("cached submissions = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_run_jobs_total", map[string]string{"state": "done"}); v != 1 {
		t.Errorf("done jobs = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_runs_executed_total", nil); v != 1 {
		t.Errorf("runs executed = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_cache_hits_total", nil); v < 1 {
		t.Errorf("cache hits = %v, want >= 1", v)
	}
}

// TestMetricsSweepGateRejections fills the sweep gate and checks the
// load-shedding counter moves with the 503.
func TestMetricsSweepGateRejections(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 1})

	// One slow sweep occupies the gate; the next submission bounces.
	st, code := postSweepJob(t, srv, slowSweepSpec(1, 2, 3, 4))
	if code != http.StatusAccepted {
		t.Fatalf("first sweep = %d", code)
	}
	if _, code := postSweepJob(t, srv, slowSweepSpec(9)); code != http.StatusServiceUnavailable {
		t.Fatalf("second sweep = %d, want 503", code)
	}

	m := scrape(t, srv)
	if v := metricValue(t, m, "adnet_sweep_gate_rejections_total", nil); v != 1 {
		t.Errorf("gate rejections = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_sweeps_active", nil); v != 1 {
		t.Errorf("sweeps active = %v, want 1", v)
	}
	if v := metricValue(t, m, "adnet_http_requests_total",
		map[string]string{"route": "POST /v1/sweeps", "code": "503"}); v != 1 {
		t.Errorf("503 counter = %v, want 1", v)
	}

	// Cancel so server shutdown does not wait for the grid.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	awaitSweepState(t, srv, st.ID, StateCanceled)
}

// TestRequestIDPropagatesToResponse pins the request-ID contract on
// the service surface: inbound IDs are echoed, absent IDs are
// assigned.
func TestRequestIDPropagatesToResponse(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "test-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "test-req-1" {
		t.Errorf("echoed request ID = %q, want test-req-1", got)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); len(got) != 16 {
		t.Errorf("assigned request ID = %q, want 16 hex chars", got)
	}
}

// TestMetricsCoverBroadcastHub pins the hub instrument family: one
// encode per published frame regardless of subscribers, fan-out
// counters moving with each subscriber, and the gauge returning to
// zero after the streams drain.
func TestMetricsCoverBroadcastHub(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 1})

	sub, _ := postRun(t, srv, fastSpec(77))
	awaitDone(t, srv, sub.Job.ID)
	job, _ := m.Get(sub.Job.ID)
	rounds := float64(job.Stream().Len())

	// Two subscribers per stream kind: encodes must not double.
	for i := 0; i < 2; i++ {
		for _, path := range []string{"/rounds", "/topology", "/topology?format=packed"} {
			resp, err := http.Get(srv.URL + "/v1/runs/" + sub.Job.ID + path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}

	mx := scrape(t, srv)
	if v := metricValue(t, mx, "adnet_stream_frames_encoded_total",
		map[string]string{"stream": "rounds"}); v != rounds {
		t.Errorf("rounds encodes = %v, want %v (one per round, any subscriber count)", v, rounds)
	}
	// Topology encodes one header plus one delta per round, per format.
	for _, kind := range []string{"topology", "topology_packed"} {
		if v := metricValue(t, mx, "adnet_stream_frames_encoded_total",
			map[string]string{"stream": kind}); v != rounds+1 {
			t.Errorf("%s encodes = %v, want %v", kind, v, rounds+1)
		}
		if v := metricValue(t, mx, "adnet_stream_frames_sent_total",
			map[string]string{"stream": kind}); v != 2*(rounds+1) {
			t.Errorf("%s frames sent = %v, want %v (two subscribers)", kind, v, 2*(rounds+1))
		}
	}
	if v := metricValue(t, mx, "adnet_stream_frames_sent_total",
		map[string]string{"stream": "rounds"}); v != 2*rounds {
		t.Errorf("rounds frames sent = %v, want %v", v, 2*rounds)
	}
	if v := metricValue(t, mx, "adnet_stream_bytes_sent_total",
		map[string]string{"stream": "rounds"}); v <= 0 {
		t.Errorf("rounds bytes sent = %v, want > 0", v)
	}
	if v := metricValue(t, mx, "adnet_stream_encode_duration_seconds_count", nil); v <= 0 {
		t.Errorf("encode latency observations = %v, want > 0", v)
	}
	for _, kind := range []string{"rounds", "topology", "topology_packed"} {
		if v := metricValue(t, mx, "adnet_stream_subscribers",
			map[string]string{"stream": kind}); v != 0 {
			t.Errorf("%s subscribers after drain = %v, want 0", kind, v)
		}
		if v := metricValue(t, mx, "adnet_stream_subscribers_dropped_total",
			map[string]string{"stream": kind}); v != 0 {
			t.Errorf("%s dropped = %v, want 0 (no stalled readers here)", kind, v)
		}
	}
}
