package service

import (
	"context"
	"sync"
	"sync/atomic"

	"adnet/internal/temporal"
)

// FanoutBenchResult is one measured pass over the broadcast hub's
// fan-out path: how many marshals the hub performed (the encode-once
// invariant makes this equal the round count regardless of subscriber
// count) and how many encoded bytes were delivered across all
// subscribers.
type FanoutBenchResult struct {
	Encodes     int64
	FannedBytes int64
}

// RunFanoutBench publishes rounds RoundStats frames through one hub
// while subscribers concurrent readers drain it to exhaustion via the
// same WaitFrames path the HTTP handlers use. It is the measured core
// of adnet-bench -fanout; the caller wraps it in wall-clock and
// allocation accounting, exactly like the engine perf records.
func RunFanoutBench(rounds, subscribers int) FanoutBenchResult {
	s := newRoundStream(0, nil)
	ctx := context.Background()
	var fanned atomic.Int64
	var wg sync.WaitGroup
	wg.Add(subscribers)
	for range subscribers {
		go func() {
			defer wg.Done()
			var local int64
			cursor := 0
			for {
				batch, ok := s.WaitFrames(ctx, cursor)
				if !ok {
					break
				}
				for _, f := range batch {
					local += int64(len(f))
				}
				cursor += len(batch)
			}
			fanned.Add(local)
		}()
	}
	for i := range rounds {
		s.publish(temporal.RoundStats{
			Round:          i + 1,
			Activated:      i % 7,
			Deactivated:    i % 3,
			ActiveEdges:    1024 + i,
			ActivatedAlive: i % 11,
		})
	}
	s.close()
	wg.Wait()
	return FanoutBenchResult{Encodes: s.Encodes(), FannedBytes: fanned.Load()}
}
