package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"adnet/internal/temporal"
)

// streamObs carries the hub instruments one stream folds into on the
// producer side (encode count/latency, retained bytes are read via
// FrameBytes at scrape time). nil disables instrumentation — tests
// and library callers construct bare streams.
type streamObs struct {
	encoded    func(d time.Duration, frameBytes int)
	reencoded  func(frames int)
	frameEvict func(frames int, bytes int)
}

// stream is the shared broadcast hub behind RoundStream, CellStream
// and the topology streams: a producer publishes items in order, any
// number of subscribers read with a cursor, so late subscribers replay
// the full history before tailing live items. close marks the end of
// the stream; replay of a closed stream still works.
//
// Every published item is encoded exactly once, at publish time, into
// an immutable NDJSON byte frame appended to the frame log; the HTTP
// fan-out writes those raw frames, so N subscribers cost N writes but
// one marshal per item regardless of N. The frame log is bounded by
// maxFrameBytes: when the retained encoded bytes exceed it, the oldest
// frames are evicted (the typed items stay — they bound memory by the
// round/cell limits as before) and a subscriber replaying the evicted
// range gets per-subscriber re-encoded frames, preserving the wire
// format while keeping the shared log's memory capped.
type stream[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []T
	done  bool

	// Frame log: frames[i] is the encoded NDJSON line of
	// items[frameBase+i]. frameBytes accounts the retained encoded
	// bytes; encodes counts marshals performed (the O(1)-per-item
	// invariant BenchmarkFanout pins).
	frames        [][]byte
	frameBase     int
	frameBytes    int64
	maxFrameBytes int64
	encodes       int64

	// lazyFrames marks a pre-closed replay stream (cache hits): frames
	// are built on the first subscriber, once, instead of at
	// construction — a cache-hit job nobody ever tails encodes nothing.
	lazyFrames bool

	// enc overrides the frame encoding (default jsonFrame): how the
	// packed topology format shares the hub machinery with a different
	// wire rendering of the same items.
	enc func(T) []byte

	obs *streamObs
}

func (s *stream[T]) init() { s.cond = sync.NewCond(&s.mu) }

func (s *stream[T]) encodeFrame(item T) []byte {
	if s.enc != nil {
		return s.enc(item)
	}
	return jsonFrame(item)
}

// jsonFrame is the frame encoder: exactly what json.Encoder.Encode
// writes per item (Marshal output plus a trailing newline), so the
// frame fan-out is byte-identical to the per-connection-encoder wire
// format it replaced.
func jsonFrame[T any](item T) []byte {
	b, err := json.Marshal(item)
	if err != nil {
		// The stream item types (RoundStats, SweepCell, TopologyFrame)
		// marshal unconditionally; surface the impossible case as a
		// well-formed NDJSON error line rather than corrupting framing.
		b, _ = json.Marshal(errorResponse{Error: ErrorBody{
			Code: codeInternal, Message: "encode: " + err.Error(),
		}})
	}
	return append(b, '\n')
}

func (s *stream[T]) publish(item T) {
	start := time.Now()
	frame := s.encodeFrame(item)
	s.mu.Lock()
	s.items = append(s.items, item)
	s.appendFrameLocked(frame)
	obs := s.obs
	s.mu.Unlock()
	s.cond.Broadcast()
	if obs != nil && obs.encoded != nil {
		obs.encoded(time.Since(start), len(frame))
	}
}

// appendFrameLocked appends one encoded frame and evicts the oldest
// frames beyond the byte bound. Callers hold s.mu.
func (s *stream[T]) appendFrameLocked(frame []byte) {
	s.frames = append(s.frames, frame)
	s.frameBytes += int64(len(frame))
	s.encodes++
	if s.maxFrameBytes <= 0 {
		return
	}
	evicted, evictedBytes := 0, 0
	for s.frameBytes > s.maxFrameBytes && len(s.frames) > 1 {
		evictedBytes += len(s.frames[0])
		s.frameBytes -= int64(len(s.frames[0]))
		s.frames = s.frames[1:]
		s.frameBase++
		evicted++
	}
	if evicted > 0 && s.obs != nil && s.obs.frameEvict != nil {
		s.obs.frameEvict(evicted, evictedBytes)
	}
}

func (s *stream[T]) close() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Len returns the number of items published so far.
func (s *stream[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// FrameBytes returns the encoded bytes currently retained in the
// frame log — the stream's share of the server's streaming memory,
// surfaced through sweep status and /healthz.
func (s *stream[T]) FrameBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frameBytes
}

// Encodes returns the number of marshals performed over the stream's
// lifetime (the per-item encode-once invariant: Encodes == items
// published, + re-encodes after eviction).
func (s *stream[T]) Encodes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.encodes
}

// snapshot returns the items published so far as a capped three-index
// subslice — items are append-only and never mutated in place, so
// sharing the backing array is safe and the O(n) copy under the lock
// (previously taken on every status poll and cache store) is gone.
func (s *stream[T]) snapshot() []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.items)
	return s.items[0:n:n]
}

// Wait blocks until items beyond cursor are available and returns
// them (as a capped slice the caller may range over but not append
// to). It returns ok=false when the stream is finished and fully
// consumed, or when ctx is canceled.
func (s *stream[T]) Wait(ctx context.Context, cursor int) ([]T, bool) {
	stop := context.AfterFunc(ctx, func() {
		// Broadcast under the lock: otherwise the wakeup could slip
		// between a waiter's ctx check and its cond.Wait and be lost.
		s.mu.Lock()
		defer s.mu.Unlock()
		s.cond.Broadcast()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if cursor < len(s.items) {
			n := len(s.items)
			return s.items[cursor:n:n], true
		}
		if s.done || ctx.Err() != nil {
			return nil, false
		}
		s.cond.Wait()
	}
}

// reencodeBatch caps how many evicted frames one WaitFrames call
// rebuilds, bounding the per-call allocation burst of a cold replay.
const reencodeBatch = 256

// WaitFrames blocks until frames beyond cursor are available and
// returns a batch of encoded NDJSON frames (and ok=false exactly when
// Wait would: stream finished and consumed, or ctx canceled). The hot
// tail — every subscriber at or near the head — is served as a capped
// subslice of the shared frame log: zero copies, zero encodes. Only a
// subscriber replaying a range the byte bound already evicted gets
// frames re-encoded for it (counted via the reencoded hook), outside
// the lock, from the append-only items.
func (s *stream[T]) WaitFrames(ctx context.Context, cursor int) ([][]byte, bool) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.cond.Broadcast()
	})
	defer stop()
	s.mu.Lock()
	for {
		if cursor < len(s.items) {
			if s.lazyFrames && s.frames == nil {
				s.buildLazyFramesLocked()
			}
			if cursor >= s.frameBase {
				n := len(s.frames)
				out := s.frames[cursor-s.frameBase : n : n]
				s.mu.Unlock()
				return out, true
			}
			// Cold replay below the eviction horizon: re-encode from
			// the retained items, per subscriber, outside the lock.
			end := min(s.frameBase, cursor+reencodeBatch)
			items := s.items[cursor:end:end]
			obs := s.obs
			s.mu.Unlock()
			out := make([][]byte, len(items))
			for i, item := range items {
				out[i] = s.encodeFrame(item)
			}
			if obs != nil && obs.reencoded != nil {
				obs.reencoded(len(out))
			}
			return out, true
		}
		if s.done || ctx.Err() != nil {
			s.mu.Unlock()
			return nil, false
		}
		s.cond.Wait()
	}
}

// buildLazyFramesLocked encodes every item of a pre-closed replay
// stream, once, on first subscription. Only closed streams are built
// lazily, so no publisher can race the build.
func (s *stream[T]) buildLazyFramesLocked() {
	s.frames = make([][]byte, len(s.items))
	for i, item := range s.items {
		start := time.Now()
		s.frames[i] = s.encodeFrame(item)
		s.frameBytes += int64(len(s.frames[i]))
		s.encodes++
		// A lazy replay build is still one encode per item — fold it
		// into the same producer-side series publish uses, so the
		// encoded counter tracks Encodes() for cache-hit jobs too.
		if s.obs != nil && s.obs.encoded != nil {
			s.obs.encoded(time.Since(start), len(s.frames[i]))
		}
	}
	s.lazyFrames = false
	// The replay may exceed the byte bound; trim to it like publish
	// does, leaving the evicted prefix to the re-encode path.
	if s.maxFrameBytes > 0 {
		for s.frameBytes > s.maxFrameBytes && len(s.frames) > 1 {
			s.frameBytes -= int64(len(s.frames[0]))
			s.frames = s.frames[1:]
			s.frameBase++
		}
	}
}

// RoundStream is the per-job publication channel for round statistics.
// The worker publishes one temporal.RoundStats per completed round.
// Memory is bounded by the job's round limit — RoundStats is five ints.
type RoundStream struct {
	stream[temporal.RoundStats]
}

func newRoundStream(maxFrameBytes int64, obs *streamObs) *RoundStream {
	s := &RoundStream{}
	s.init()
	s.maxFrameBytes = maxFrameBytes
	s.obs = obs
	return s
}

// newClosedStream builds an already-finished stream holding rounds —
// the replay source for cache-hit jobs. Frames are built lazily on
// the first subscriber (still exactly once per item).
func newClosedStream(rounds []temporal.RoundStats, maxFrameBytes int64, obs *streamObs) *RoundStream {
	s := newRoundStream(maxFrameBytes, obs)
	s.items = rounds
	s.done = true
	s.lazyFrames = true
	return s
}

// CellStream is the per-sweep-job publication channel for finished
// grid cells, in canonical cell order. Subscribers replay completed
// cells and tail live ones exactly like RoundStream subscribers;
// memory is bounded by the sweep-cell limit.
type CellStream struct {
	stream[SweepCell]
}

func newCellStream(maxFrameBytes int64, obs *streamObs) *CellStream {
	s := &CellStream{}
	s.init()
	s.maxFrameBytes = maxFrameBytes
	s.obs = obs
	return s
}
