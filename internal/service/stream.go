package service

import (
	"context"
	"sync"

	"adnet/internal/temporal"
)

// RoundStream is the per-job publication channel for round statistics.
// The worker publishes one temporal.RoundStats per completed round;
// any number of subscribers read with a cursor, so late subscribers
// (including cache hits, whose streams are pre-filled) replay the
// full history before tailing live rounds. Memory is bounded by the
// job's round limit — RoundStats is five ints.
type RoundStream struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rounds []temporal.RoundStats
	done   bool
}

func newRoundStream() *RoundStream {
	s := &RoundStream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// newClosedStream builds an already-finished stream holding rounds —
// the replay source for cache-hit jobs.
func newClosedStream(rounds []temporal.RoundStats) *RoundStream {
	s := newRoundStream()
	s.rounds = rounds
	s.done = true
	return s
}

func (s *RoundStream) publish(rs temporal.RoundStats) {
	s.mu.Lock()
	s.rounds = append(s.rounds, rs)
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *RoundStream) close() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Len returns the number of rounds published so far.
func (s *RoundStream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rounds)
}

// snapshot returns the rounds published so far.
func (s *RoundStream) snapshot() []temporal.RoundStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]temporal.RoundStats, len(s.rounds))
	copy(out, s.rounds)
	return out
}

// Wait blocks until rounds beyond cursor are available and returns
// them (as a capped slice the caller may range over but not append
// to). It returns ok=false when the stream is finished and fully
// consumed, or when ctx is canceled.
func (s *RoundStream) Wait(ctx context.Context, cursor int) ([]temporal.RoundStats, bool) {
	stop := context.AfterFunc(ctx, func() {
		// Broadcast under the lock: otherwise the wakeup could slip
		// between a waiter's ctx check and its cond.Wait and be lost.
		s.mu.Lock()
		defer s.mu.Unlock()
		s.cond.Broadcast()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if cursor < len(s.rounds) {
			n := len(s.rounds)
			return s.rounds[cursor:n:n], true
		}
		if s.done || ctx.Err() != nil {
			return nil, false
		}
		s.cond.Wait()
	}
}
