package service

import (
	"context"
	"sync"

	"adnet/internal/temporal"
)

// stream is the shared publish/replay channel behind RoundStream and
// CellStream: a producer publishes items in order, any number of
// subscribers read with a cursor, so late subscribers replay the full
// history before tailing live items. close marks the end of the
// stream; replay of a closed stream still works.
type stream[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []T
	done  bool
}

func (s *stream[T]) init() { s.cond = sync.NewCond(&s.mu) }

func (s *stream[T]) publish(item T) {
	s.mu.Lock()
	s.items = append(s.items, item)
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *stream[T]) close() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Len returns the number of items published so far.
func (s *stream[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// snapshot returns the items published so far.
func (s *stream[T]) snapshot() []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]T, len(s.items))
	copy(out, s.items)
	return out
}

// Wait blocks until items beyond cursor are available and returns
// them (as a capped slice the caller may range over but not append
// to). It returns ok=false when the stream is finished and fully
// consumed, or when ctx is canceled.
func (s *stream[T]) Wait(ctx context.Context, cursor int) ([]T, bool) {
	stop := context.AfterFunc(ctx, func() {
		// Broadcast under the lock: otherwise the wakeup could slip
		// between a waiter's ctx check and its cond.Wait and be lost.
		s.mu.Lock()
		defer s.mu.Unlock()
		s.cond.Broadcast()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if cursor < len(s.items) {
			n := len(s.items)
			return s.items[cursor:n:n], true
		}
		if s.done || ctx.Err() != nil {
			return nil, false
		}
		s.cond.Wait()
	}
}

// RoundStream is the per-job publication channel for round statistics.
// The worker publishes one temporal.RoundStats per completed round.
// Memory is bounded by the job's round limit — RoundStats is five ints.
type RoundStream struct {
	stream[temporal.RoundStats]
}

func newRoundStream() *RoundStream {
	s := &RoundStream{}
	s.init()
	return s
}

// newClosedStream builds an already-finished stream holding rounds —
// the replay source for cache-hit jobs.
func newClosedStream(rounds []temporal.RoundStats) *RoundStream {
	s := newRoundStream()
	s.items = rounds
	s.done = true
	return s
}

// CellStream is the per-sweep-job publication channel for finished
// grid cells, in canonical cell order. Subscribers replay completed
// cells and tail live ones exactly like RoundStream subscribers;
// memory is bounded by the sweep-cell limit.
type CellStream struct {
	stream[SweepCell]
}

func newCellStream() *CellStream {
	s := &CellStream{}
	s.init()
	return s
}
