package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"testing"

	"adnet/internal/baseline"
	"adnet/internal/core"
	"adnet/internal/dynamics"
	"adnet/internal/expt"
	"adnet/internal/graph"
	"adnet/internal/sim"
)

func TestPackPairsRoundTrip(t *testing.T) {
	t.Parallel()
	cases := [][]int32{
		nil,
		{0, 1},
		{0, 1, 0, 5, 2, 3, 2, 100, 7, 8},
		{5, 4000, 5, 4001, 4000, 4001},
	}
	for _, pairs := range cases {
		buf := packPairs(nil, pairs)
		got, rest, err := unpackPairs(buf)
		if err != nil {
			t.Fatalf("unpack(%v): %v", pairs, err)
		}
		if len(rest) != 0 {
			t.Errorf("unpack(%v) left %d bytes", pairs, len(rest))
		}
		if len(got) != len(pairs) {
			t.Fatalf("roundtrip(%v) = %v", pairs, got)
		}
		for i := range pairs {
			if got[i] != pairs[i] {
				t.Fatalf("roundtrip(%v) = %v", pairs, got)
			}
		}
	}
	// Two lists appended back to back unpack in sequence.
	buf := packPairs(nil, []int32{0, 2, 1, 3})
	buf = packPairs(buf, []int32{4, 9})
	first, rest, err := unpackPairs(buf)
	if err != nil || len(first) != 4 {
		t.Fatalf("first list = %v, %v", first, err)
	}
	second, rest, err := unpackPairs(rest)
	if err != nil || len(second) != 2 || len(rest) != 0 {
		t.Fatalf("second list = %v, rest=%d, %v", second, len(rest), err)
	}
	if _, _, err := unpackPairs([]byte{}); err == nil {
		t.Error("unpack of empty buffer should fail")
	}
}

// edgeSet replays topology frames into the active slot-pair edge set.
type edgeSet map[[2]int32]bool

func (es edgeSet) apply(t *testing.T, round int, activate, deactivate []int32) {
	t.Helper()
	for i := 0; i+1 < len(activate); i += 2 {
		k := [2]int32{activate[i], activate[i+1]}
		if es[k] {
			t.Fatalf("round %d activates already-active edge %v", round, k)
		}
		es[k] = true
	}
	for i := 0; i+1 < len(deactivate); i += 2 {
		k := [2]int32{deactivate[i], deactivate[i+1]}
		if !es[k] {
			t.Fatalf("round %d deactivates inactive edge %v", round, k)
		}
		delete(es, k)
	}
}

func (es edgeSet) sorted() [][2]int32 {
	out := make([][2]int32, 0, len(es))
	for k := range es {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// finalSlotPairs renders a graph as the sorted slot-pair set the
// topology stream's deltas should reconstruct.
func finalSlotPairs(g *graph.Graph) [][2]int32 {
	var out [][2]int32
	n := g.NumNodes()
	for su := 0; su < n; su++ {
		u := g.IDAt(su)
		g.EachNeighbor(u, func(v graph.ID) bool {
			if sv, _ := g.Slot(v); sv > su {
				out = append(out, [2]int32{int32(su), int32(sv)})
			}
			return true
		})
	}
	return out
}

// replayTopologyJSON drains a closed json-format topology stream and
// replays header + deltas into the reconstructed edge set.
func replayTopologyJSON(t *testing.T, s *stream[TopologyFrame], wantN int) edgeSet {
	t.Helper()
	es := make(edgeSet)
	cursor, next := 0, 0
	for {
		batch, ok := s.WaitFrames(context.Background(), cursor)
		if !ok {
			return es
		}
		for _, line := range batch {
			var f TopologyFrame
			if err := json.Unmarshal(line, &f); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			if f.Round != next {
				t.Fatalf("frame round %d, want %d (no gaps, no reorder)", f.Round, next)
			}
			next++
			if f.Round == 0 {
				if f.N != wantN {
					t.Fatalf("header n=%d, want %d", f.N, wantN)
				}
				es.apply(t, 0, f.Edges, nil)
				continue
			}
			es.apply(t, f.Round, f.Activate, f.Deactivate)
			es.apply(t, f.Round, f.EnvActivate, f.EnvDeactivate)
		}
		cursor += len(batch)
	}
}

// replayTopologyPacked does the same through the format=packed wire.
func replayTopologyPacked(t *testing.T, s *stream[TopologyFrame], wantN int) edgeSet {
	t.Helper()
	es := make(edgeSet)
	cursor, next := 0, 0
	for {
		batch, ok := s.WaitFrames(context.Background(), cursor)
		if !ok {
			return es
		}
		for _, line := range batch {
			var f packedTopologyFrame
			if err := json.Unmarshal(line, &f); err != nil {
				t.Fatalf("bad packed frame %q: %v", line, err)
			}
			if f.Round != next {
				t.Fatalf("packed frame round %d, want %d", f.Round, next)
			}
			next++
			payload, err := base64.StdEncoding.DecodeString(f.P)
			if err != nil {
				t.Fatalf("round %d: bad base64: %v", f.Round, err)
			}
			if f.Round == 0 {
				if f.N != wantN {
					t.Fatalf("packed header n=%d, want %d", f.N, wantN)
				}
				edges, rest, err := unpackPairs(payload)
				if err != nil || len(rest) != 0 {
					t.Fatalf("header unpack: %v (rest=%d)", err, len(rest))
				}
				es.apply(t, 0, edges, nil)
				continue
			}
			act, rest, err := unpackPairs(payload)
			if err != nil {
				t.Fatalf("round %d: activate unpack: %v", f.Round, err)
			}
			deact, rest, err := unpackPairs(rest)
			if err != nil {
				t.Fatalf("round %d: deactivate unpack: %v", f.Round, err)
			}
			es.apply(t, f.Round, act, deact)
			// Bytes past the two algorithm lists are the environment
			// extension: env activations then env deactivations.
			if len(rest) > 0 {
				envAct, envRest, err := unpackPairs(rest)
				if err != nil {
					t.Fatalf("round %d: env activate unpack: %v", f.Round, err)
				}
				envDeact, envRest, err := unpackPairs(envRest)
				if err != nil || len(envRest) != 0 {
					t.Fatalf("round %d: env deactivate unpack: %v (rest=%d)", f.Round, err, len(envRest))
				}
				es.apply(t, f.Round, envAct, envDeact)
			}
		}
		cursor += len(batch)
	}
}

// TestTopologyDeltaReconstruction is the differential test for the
// delta wire format: for every distributed algorithm, a subscriber
// replaying the stream's header + per-round deltas — in both the json
// and packed formats — must reconstruct exactly the final D(i) the
// engine's History holds.
func TestTopologyDeltaReconstruction(t *testing.T) {
	t.Parallel()
	const n = 48
	algos := []struct {
		name    string
		factory sim.Factory
		opts    []sim.Option
	}{
		{name: expt.AlgoStar, factory: core.NewGraphToStarFactory()},
		{name: expt.AlgoWreath, factory: core.NewGraphToWreathFactory(),
			opts: []sim.Option{sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, false)))}},
		{name: expt.AlgoThinWreath, factory: core.NewGraphToThinWreathFactory(),
			opts: []sim.Option{sim.WithMaxRounds(core.WreathMaxRounds(n, core.WreathBranching(n, true)))}},
		{name: expt.AlgoClique, factory: baseline.NewCliqueFactory()},
		{name: expt.AlgoFlood, factory: baseline.NewFloodFactory()},
	}
	for _, algo := range algos {
		for _, workload := range []string{"line", "random-tree"} {
			t.Run(fmt.Sprintf("%s/%s", algo.name, workload), func(t *testing.T) {
				t.Parallel()
				g, err := expt.Workload(workload, n, 11)
				if err != nil {
					t.Fatal(err)
				}
				ts := newTopologyStream(0, nil, nil)
				opts := append([]sim.Option{
					sim.WithStartHook(func(ev sim.StartEvent) { ts.publishHeader(ev.N, ev.Edges) }),
					sim.WithDeltaHook(ts.publishDelta),
				}, algo.opts...)
				res, err := sim.Run(g, algo.factory, opts...)
				if err != nil {
					t.Fatalf("%s run: %v", algo.name, err)
				}
				ts.close()

				want := finalSlotPairs(res.History.CurrentView())
				frames := ts.Frames()
				if len(frames) == 0 || frames[0].Round != 0 {
					t.Fatal("stream must start with the round-0 header")
				}
				if got := len(frames) - 1; got != res.Rounds {
					t.Errorf("stream carries %d delta frames, want one per round (%d)", got, res.Rounds)
				}

				for name, got := range map[string][][2]int32{
					"json":   replayTopologyJSON(t, &ts.json, n).sorted(),
					"packed": replayTopologyPacked(t, &ts.packed, n).sorted(),
				} {
					if len(got) != len(want) {
						t.Fatalf("%s replay: %d edges, want %d", name, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s replay: edge[%d] = %v, want %v", name, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestTopologyDeltaReconstructionWithEnv extends the differential test
// to perturbed runs: with a dynamics environment attached, the frames
// carry the environment's edits as a distinct tagged delta source, and
// replaying all four lists (algorithm + environment) — in both wire
// formats — must still reconstruct exactly the final graph. The
// paper's constructions may honestly fail under perturbation
// (round-limit or contained panic); the stream up to the abort must
// replay exactly regardless.
func TestTopologyDeltaReconstructionWithEnv(t *testing.T) {
	t.Parallel()
	const n = 48
	specs := []dynamics.Spec{
		{Class: dynamics.ClassEdgeChurn, Rate: 2},
		{Class: dynamics.ClassEdgeChurn, Rate: 2, Preserve: true},
		{Class: dynamics.ClassBurst, Quiet: 3, Storm: 2},
		{Class: dynamics.ClassCrash, Rate: 2, Down: 2},
	}
	factories := map[string]sim.Factory{
		expt.AlgoStar:  core.NewGraphToStarFactory(),
		expt.AlgoFlood: baseline.NewFloodFactory(),
	}
	for name, factory := range factories {
		for _, spec := range specs {
			t.Run(fmt.Sprintf("%s/%s", name, spec.Class), func(t *testing.T) {
				t.Parallel()
				g, err := expt.Workload("random-tree", n, 11)
				if err != nil {
					t.Fatal(err)
				}
				env, err := dynamics.New(spec, 11)
				if err != nil {
					t.Fatal(err)
				}
				ts := newTopologyStream(0, nil, nil)
				res, runErr := sim.Run(g, factory,
					sim.WithStartHook(func(ev sim.StartEvent) { ts.publishHeader(ev.N, ev.Edges) }),
					sim.WithDeltaHook(ts.publishDelta),
					sim.WithEnvironment(env),
					sim.WithMaxRounds(200))
				ts.close()
				if res == nil {
					t.Fatalf("run returned no result (err=%v)", runErr)
				}

				frames := ts.Frames()
				if len(frames) == 0 || frames[0].Round != 0 {
					t.Fatal("stream must start with the round-0 header")
				}
				envEdits := 0
				for _, f := range frames {
					envEdits += len(f.EnvActivate) + len(f.EnvDeactivate)
				}
				if spec.Class != dynamics.ClassCrash && envEdits == 0 {
					t.Errorf("%s stream carries no environment edits", spec.Class)
				}

				want := finalSlotPairs(res.History.CurrentView())
				for kind, got := range map[string][][2]int32{
					"json":   replayTopologyJSON(t, &ts.json, n).sorted(),
					"packed": replayTopologyPacked(t, &ts.packed, n).sorted(),
				} {
					if len(got) != len(want) {
						t.Fatalf("%s replay: %d edges, want %d (run err=%v)", kind, len(got), len(want), runErr)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s replay: edge[%d] = %v, want %v", kind, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestAPITopologyEndpoint exercises GET /v1/runs/{id}/topology over
// HTTP: the json body must be the frame-log rendering line for line, a
// cache-hit replay job must serve a byte-identical stream, the packed
// format must reconstruct the same edge set, and an unknown format is
// a 400.
func TestAPITopologyEndpoint(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 1})

	sub, code := postRun(t, srv, fastSpec(55))
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	awaitDone(t, srv, sub.Job.ID)
	job, _ := m.Get(sub.Job.ID)

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := get("/v1/runs/" + sub.Job.ID + "/topology")
	var want bytes.Buffer
	frames := job.Topology().Frames()
	if len(frames) == 0 {
		t.Fatal("job published no topology frames")
	}
	for _, f := range frames {
		want.Write(jsonFrame(f))
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Error("topology endpoint body differs from the frame-log rendering")
	}

	// The header must carry the run's n, and deltas one frame per round.
	var header TopologyFrame
	if err := json.Unmarshal(body[:bytes.IndexByte(body, '\n')+1], &header); err != nil {
		t.Fatal(err)
	}
	if header.Round != 0 || header.N != fastSpec(55).N {
		t.Errorf("header = %+v", header)
	}

	// Packed format reconstructs the same final edge set.
	packedBody := get("/v1/runs/" + sub.Job.ID + "/topology?format=packed")
	if len(packedBody) >= len(body) {
		t.Errorf("packed body (%d bytes) not smaller than json body (%d bytes)", len(packedBody), len(body))
	}
	jsonSet := replayTopologyJSON(t, &job.Topology().json, header.N).sorted()
	packedSet := replayTopologyPacked(t, &job.Topology().packed, header.N).sorted()
	if len(jsonSet) != len(packedSet) {
		t.Fatalf("json and packed reconstructions disagree: %d vs %d edges", len(jsonSet), len(packedSet))
	}
	for i := range jsonSet {
		if jsonSet[i] != packedSet[i] {
			t.Fatalf("edge[%d]: json %v, packed %v", i, jsonSet[i], packedSet[i])
		}
	}

	// A cache hit serves a byte-identical topology replay.
	cachedSub, code := postRun(t, srv, fastSpec(55))
	if code != http.StatusOK || !cachedSub.Cached {
		t.Fatalf("resubmit = (%d, cached=%v), want cache hit", code, cachedSub.Cached)
	}
	if cachedBody := get("/v1/runs/" + cachedSub.Job.ID + "/topology"); !bytes.Equal(cachedBody, body) {
		t.Error("cache-hit topology replay is not byte-identical to the original stream")
	}

	resp, err := http.Get(srv.URL + "/v1/runs/" + sub.Job.ID + "/topology?format=protobuf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", resp.StatusCode)
	}
}
