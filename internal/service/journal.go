package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"time"

	"adnet/internal/expt"
	"adnet/internal/fleet"
	"adnet/internal/journal"
	"adnet/internal/runkey"
)

// Sweep journal record kinds. The payloads are JSON; the kind byte
// routes them without parsing. New kinds append — replay skips kinds
// it does not know, so old servers tolerate newer journals.
const (
	recHeader byte = 1 // sweepHeader: written once at submission
	recCell   byte = 2 // cellRecord: one finished ok cell (local mode)
	recShard  byte = 3 // shardRecord: one completed shard (coordinator mode)
	recDone   byte = 4 // doneRecord: the sweep reached a terminal state
)

// recKindLabel maps a record kind to its metric label.
func recKindLabel(kind byte) string {
	switch kind {
	case recHeader:
		return "header"
	case recCell:
		return "cell"
	case recShard:
		return "shard"
	case recDone:
		return "done"
	}
	return "unknown"
}

// sweepHeader opens every journal: the spec is enough to resubmit the
// sweep after a crash, the key pins the file to its grid (the filename
// is a hash of it), and Cells records the expected grid volume.
type sweepHeader struct {
	Key   string    `json:"key"`
	Spec  SweepSpec `json:"spec"`
	Cells int       `json:"cells"`
}

// cellRecord persists one successfully finished cell of a locally
// executed grid, keyed by its canonical run key. Error cells are never
// journaled — a resumed sweep retries them.
type cellRecord struct {
	RunKey string    `json:"run_key"`
	Cell   SweepCell `json:"cell"`
}

// shardRecord persists one completed shard of a coordinator-mode grid:
// the cells in shard-local canonical order plus the worker's shard
// aggregate, exactly what the merge needs to fold the shard without
// re-dispatching it.
type shardRecord struct {
	Key    string                `json:"key"`
	Index  int                   `json:"index"`
	Offset int                   `json:"offset"`
	Cells  []fleet.Cell          `json:"cells"`
	Groups []expt.AggregateGroup `json:"groups"`
}

// doneRecord closes a journal: the sweep reached a terminal state and
// must not be auto-resumed at the next startup. It is deliberately NOT
// written when the manager is shutting down — a graceful-shutdown
// cancellation is an interruption, not a result, and resumes like a
// crash would.
type doneRecord struct {
	State   JobState     `json:"state"`
	Summary SweepSummary `json:"summary"`
}

// sweepJournal binds one sweep job to its write-ahead log. Append
// failures degrade durability, never correctness: they are logged and
// the sweep continues in-memory-only.
type sweepJournal struct {
	log     *journal.Log
	mt      *metrics
	logger  *slog.Logger
	release func()
}

func (sj *sweepJournal) append(kind byte, v any) {
	data, err := json.Marshal(v)
	if err == nil {
		err = sj.log.Append(kind, data)
	}
	if err != nil {
		sj.logger.Error("sweep journal append failed",
			slog.String("path", sj.log.Path()),
			slog.String("kind", recKindLabel(kind)),
			slog.String("error", err.Error()))
		return
	}
	sj.mt.journalRecords.With(recKindLabel(kind)).Inc()
	sj.mt.journalBytes.Add(int64(len(data)))
}

// sync flushes at milestones (shard done, sweep terminal). Per-cell
// appends rely on the page cache — they survive a process kill without
// an fsync; only a machine crash can lose them, and replay tolerates
// the resulting torn tail.
func (sj *sweepJournal) sync() { _ = sj.log.Sync() }

func (sj *sweepJournal) close() {
	_ = sj.log.Close()
	if sj.release != nil {
		sj.release()
	}
}

// journalState is one journal's parsed content: the intact prefix
// folded down to the latest header, the done-set of cells and shards,
// and the terminal record if the sweep finished.
type journalState struct {
	header *sweepHeader
	cells  map[string]SweepCell   // run key → finished cell
	shards map[string]shardRecord // shard key → completed shard
	done   *doneRecord
}

func parseJournal(path string, recs []journal.Record) (journalState, error) {
	st := journalState{
		cells:  make(map[string]SweepCell),
		shards: make(map[string]shardRecord),
	}
	for _, r := range recs {
		var err error
		switch r.Kind {
		case recHeader:
			var h sweepHeader
			if err = json.Unmarshal(r.Data, &h); err == nil {
				st.header = &h
			}
		case recCell:
			var c cellRecord
			if err = json.Unmarshal(r.Data, &c); err == nil {
				st.cells[c.RunKey] = c.Cell
			}
		case recShard:
			var s shardRecord
			if err = json.Unmarshal(r.Data, &s); err == nil {
				st.shards[s.Key] = s
			}
		case recDone:
			var d doneRecord
			if err = json.Unmarshal(r.Data, &d); err == nil {
				st.done = &d
			}
		default:
			// Unknown kind: a newer writer's record; skip.
		}
		if err != nil {
			// The record passed its checksum, so this is version skew or
			// an impossible encode — surface it, do not guess.
			return st, fmt.Errorf("journal: %s: bad %s record at offset %d: %w",
				path, recKindLabel(r.Kind), r.Offset, err)
		}
	}
	return st, nil
}

// journalDir is where sweep journals live under the data dir.
func (m *Manager) journalDir() string {
	return filepath.Join(m.cfg.DataDir, "sweeps")
}

// openSweepJournal attaches j to its on-disk journal: replay whatever
// a previous life of the same grid left behind into the job's
// done-sets, then write the header if the file is fresh. All failure
// paths degrade to an unjournaled sweep (logged) — submission must not
// fail because the disk does. Strictness about corrupt files lives in
// Recover, where it can stop a startup.
func (m *Manager) openSweepJournal(j *SweepJob) {
	key := j.Spec.Key()
	dir := m.journalDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		m.logger.Error("sweep journal dir unavailable; running unjournaled",
			slog.String("sweep_id", j.ID), slog.String("error", err.Error()))
		return
	}
	m.mu.Lock()
	if _, busy := m.openJournals[key]; busy {
		m.mu.Unlock()
		// A second concurrent sweep over the same grid: the first owns
		// the journal; this one runs unjournaled rather than interleave
		// two writers in one file.
		m.logger.Warn("sweep journal already owned by a concurrent sweep; running unjournaled",
			slog.String("sweep_id", j.ID))
		return
	}
	m.openJournals[key] = struct{}{}
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		delete(m.openJournals, key)
		m.mu.Unlock()
	}

	path := filepath.Join(dir, runkey.Hash(key)+".wal")
	lg, err := journal.Open(path)
	if err != nil {
		release()
		m.logger.Error("sweep journal open failed; running unjournaled",
			slog.String("sweep_id", j.ID), slog.String("error", err.Error()))
		return
	}
	var recs []journal.Record
	torn, err := lg.Replay(func(r journal.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err == nil {
		var st journalState
		st, err = parseJournal(path, recs)
		if err == nil && st.header != nil && st.header.Key != key {
			err = fmt.Errorf("journal: %s belongs to a different grid (%s)", path, st.header.Key)
		}
		if err == nil {
			if torn {
				m.metrics.journalTorn.Inc()
			}
			sj := &sweepJournal{log: lg, mt: m.metrics, logger: m.logger, release: release}
			if st.header == nil {
				sj.append(recHeader, sweepHeader{Key: key, Spec: j.Spec, Cells: j.grid.NumCells()})
				sj.sync()
			}
			j.mu.Lock()
			j.journal = sj
			if st.header != nil {
				j.resumed = true
				j.doneCells = st.cells
				j.doneShards = st.shards
			}
			j.mu.Unlock()
			if st.header != nil && st.done == nil {
				m.metrics.journalResumedSweeps.Inc()
				m.logger.Info("sweep resuming from journal",
					slog.String("sweep_id", j.ID),
					slog.Int("journaled_cells", len(st.cells)),
					slog.Int("journaled_shards", len(st.shards)))
			}
			return
		}
	}
	_ = lg.Close()
	release()
	m.logger.Error("sweep journal unusable; running unjournaled",
		slog.String("sweep_id", j.ID), slog.String("error", err.Error()))
}

// Recover scans every sweep journal under DataDir: finished cells are
// rebuilt into the result cache (outcomes only — journals do not
// persist round streams), and every journal without a terminal record
// is resubmitted as a fresh sweep job whose done-set makes it
// re-execute only the missing run keys. A corrupt journal (mid-file
// checksum failure, unparseable record) fails recovery — and with it
// startup — naming the file and offset: silently skipping interior
// records would serve a state that never existed. Call Recover once,
// after the manager (and in coordinator mode the worker registry) is
// up but before serving traffic; it is a no-op without a DataDir.
func (m *Manager) Recover() error {
	if m.cfg.DataDir == "" {
		return nil
	}
	dir := m.journalDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: recover: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return fmt.Errorf("service: recover: %w", err)
	}
	sort.Strings(paths)
	var resume []SweepSpec
	for _, p := range paths {
		recs, torn, err := journal.ReadAll(p)
		if err != nil {
			return fmt.Errorf("service: recover: %w", err)
		}
		if torn {
			m.metrics.journalTorn.Inc()
		}
		st, err := parseJournal(p, recs)
		if err != nil {
			return fmt.Errorf("service: recover: %w", err)
		}
		if st.header == nil {
			continue // empty file (e.g. torn before the header landed)
		}
		cached := 0
		for key, cell := range st.cells {
			if cell.Outcome != nil && cell.Error == "" {
				m.cache.Add(key, cacheEntry{Outcome: *cell.Outcome})
				cached++
			}
		}
		for _, sr := range st.shards {
			for _, c := range sr.Cells {
				if c.Outcome != nil && c.Error == "" {
					m.cache.Add(cellKey(expt.Cell{
						Algorithm: c.Algorithm, Workload: c.Workload,
						N: c.N, Seed: c.Seed, MaxRounds: c.MaxRounds,
					}), cacheEntry{Outcome: *c.Outcome})
					cached++
				}
			}
		}
		m.logger.Info("sweep journal recovered",
			slog.String("path", p),
			slog.Int("cells", len(st.cells)),
			slog.Int("shards", len(st.shards)),
			slog.Int("cached", cached),
			slog.Bool("torn", torn),
			slog.Bool("finished", st.done != nil))
		if st.done == nil {
			resume = append(resume, st.header.Spec)
		}
	}
	for _, spec := range resume {
		go m.resumeSweep(spec)
	}
	return nil
}

// resumeSweep resubmits an interrupted grid, pacing retries through
// the sweep gate: more incomplete journals than MaxConcurrentSweeps
// simply queue up behind it.
func (m *Manager) resumeSweep(spec SweepSpec) {
	for {
		j, err := m.SubmitSweep(context.Background(), spec)
		switch {
		case err == nil:
			m.logger.Info("sweep resume submitted", slog.String("sweep_id", j.ID))
			return
		case errors.Is(err, ErrSweepBusy):
			time.Sleep(200 * time.Millisecond)
			if m.isClosed() {
				return
			}
		default:
			m.logger.Error("sweep resume failed", slog.String("error", err.Error()))
			return
		}
	}
}
