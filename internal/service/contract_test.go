package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"adnet/internal/obs"
)

// TestErrorCodeStatusTable pins the code→status table of the v1 error
// envelope. Changing a mapping, or adding a code without one, is an
// API contract change and must be made here deliberately.
func TestErrorCodeStatusTable(t *testing.T) {
	t.Parallel()
	want := map[string]int{
		"invalid_request":  http.StatusBadRequest,
		"invalid_cursor":   http.StatusBadRequest,
		"not_found":        http.StatusNotFound,
		"already_done":     http.StatusConflict,
		"sweep_running":    http.StatusConflict,
		"queue_full":       http.StatusServiceUnavailable,
		"sweep_busy":       http.StatusServiceUnavailable,
		"shutting_down":    http.StatusServiceUnavailable,
		"worker_unhealthy": http.StatusBadGateway,
		"internal":         http.StatusInternalServerError,
	}
	if len(codeStatus) != len(want) {
		t.Fatalf("codeStatus has %d codes, the pinned table %d", len(codeStatus), len(want))
	}
	for code, status := range want {
		if got, ok := codeStatus[code]; !ok || got != status {
			t.Errorf("codeStatus[%q] = %d (present %v), want %d", code, got, ok, status)
		}
	}
}

// getEnvelope performs a request expecting an error and decodes the v1
// envelope strictly: the body must be exactly
// {"error":{"code","message","request_id"}}.
func getEnvelope(t *testing.T, req *http.Request) (int, ErrorBody) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: Content-Type = %q, want application/json", req.Method, req.URL.Path, ct)
	}
	var envelope errorResponse
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&envelope); err != nil {
		t.Fatalf("%s %s: body is not the v1 envelope: %v", req.Method, req.URL.Path, err)
	}
	return resp.StatusCode, envelope.Error
}

// TestErrorEnvelopeShape exercises the envelope across representative
// failure routes: every v1 error is {"error":{code,message,request_id}}
// with the status derived from the code and the request ID echoing the
// middleware's X-Adnet-Request-Id.
func TestErrorEnvelopeShape(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode string
	}{
		{"unknown run", http.MethodGet, "/v1/runs/run-0-nope", "", "not_found"},
		{"unknown sweep", http.MethodGet, "/v1/sweeps/sweep-0-nope", "", "not_found"},
		{"unknown route", http.MethodGet, "/v1/bogus", "", "not_found"},
		{"bad run spec", http.MethodPost, "/v1/runs", `{"algorithm":"nope","workload":"line","n":8,"seed":1}`, "invalid_request"},
		{"bad sweep spec", http.MethodPost, "/v1/sweeps", `{not json`, "invalid_request"},
		{"bad cursor", http.MethodGet, "/v1/runs/run-0-nope/rounds?cursor=banana", "", "not_found"},
		{"unknown aggregate", http.MethodGet, "/v1/sweeps/sweep-0-nope/aggregate", "", "not_found"},
		{"cancel unknown run", http.MethodDelete, "/v1/runs/run-0-nope", "", "not_found"},
	}
	for _, tc := range cases {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(obs.RequestIDHeader, "envelope-test-1")
		status, eb := getEnvelope(t, req)
		if eb.Code != tc.wantCode {
			t.Errorf("%s: code = %q, want %q (message %q)", tc.name, eb.Code, tc.wantCode, eb.Message)
		}
		if want := codeStatus[eb.Code]; status != want {
			t.Errorf("%s: status = %d, want %d (the table's mapping for %q)", tc.name, status, want, eb.Code)
		}
		if eb.Message == "" {
			t.Errorf("%s: empty message", tc.name)
		}
		if eb.RequestID != "envelope-test-1" {
			t.Errorf("%s: request_id = %q, want the header's ID", tc.name, eb.RequestID)
		}
	}

	// An invalid cursor on an existing stream maps to invalid_cursor.
	sub, code := postRun(t, srv, fastSpec(71))
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	awaitDone(t, srv, sub.Job.ID)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/runs/"+sub.Job.ID+"/rounds?cursor=-3", nil)
	status, eb := getEnvelope(t, req)
	if status != http.StatusBadRequest || eb.Code != "invalid_cursor" {
		t.Fatalf("negative cursor = %d %q, want 400 invalid_cursor", status, eb.Code)
	}
	if len(eb.RequestID) != 16 {
		t.Fatalf("request_id = %q, want a middleware-assigned 16-hex ID", eb.RequestID)
	}
}

// TestDeleteFinishedJobsAlreadyDone is the regression test for the
// DELETE conflict semantics: canceling a job or sweep that already
// reached a terminal state answers 409 with the explicit already_done
// code — distinguishable by code alone from a 404 (unknown ID) and
// from a live cancel's 204.
func TestDeleteFinishedJobsAlreadyDone(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 1})

	sub, _ := postRun(t, srv, fastSpec(72))
	awaitDone(t, srv, sub.Job.ID)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+sub.Job.ID, nil)
	status, eb := getEnvelope(t, req)
	if status != http.StatusConflict || eb.Code != "already_done" {
		t.Fatalf("DELETE finished run = %d %q, want 409 already_done", status, eb.Code)
	}

	job, _ := postSweepJob(t, srv, sweepSpec())
	awaitSweepState(t, srv, job.ID, StateDone)
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+job.ID, nil)
	status, eb = getEnvelope(t, req)
	if status != http.StatusConflict || eb.Code != "already_done" {
		t.Fatalf("DELETE finished sweep = %d %q, want 409 already_done", status, eb.Code)
	}
}

// streamLines drains one NDJSON stream response and returns its lines
// plus the X-Adnet-Next-Cursor trailer (readable only after EOF).
func streamLines(t *testing.T, url string) ([]string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, resp.Trailer.Get(nextCursorTrailer)
}

// TestStreamCursorResumesAndTrailer pins the ?cursor=N replay
// contract on the rounds and cells streams: cursor=N skips the first
// N frames, and the next resume cursor comes back in the
// X-Adnet-Next-Cursor trailer. The cells stream's trailing summary
// line is not a frame and does not advance the cursor.
func TestStreamCursorResumesAndTrailer(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 2})

	sub, _ := postRun(t, srv, fastSpec(73))
	st := awaitDone(t, srv, sub.Job.ID)
	total := st.Outcome.Rounds
	if total < 3 {
		t.Fatalf("fastSpec ran only %d rounds; the test needs at least 3", total)
	}

	full, trailer := streamLines(t, srv.URL+"/v1/runs/"+sub.Job.ID+"/rounds")
	if len(full) != total {
		t.Fatalf("full stream = %d lines, outcome ran %d rounds", len(full), total)
	}
	if trailer != strconv.Itoa(total) {
		t.Fatalf("full-stream trailer = %q, want %d", trailer, total)
	}

	cursor := total - 2
	tail, trailer := streamLines(t, srv.URL+"/v1/runs/"+sub.Job.ID+"/rounds?cursor="+strconv.Itoa(cursor))
	if len(tail) != 2 {
		t.Fatalf("cursor=%d stream = %d lines, want 2", cursor, len(tail))
	}
	var first struct {
		Round int `json:"round"`
	}
	if err := json.Unmarshal([]byte(tail[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Round != cursor+1 {
		t.Fatalf("first resumed line is round %d, want %d", first.Round, cursor+1)
	}
	if trailer != strconv.Itoa(total) {
		t.Fatalf("resumed-stream trailer = %q, want %d", trailer, total)
	}

	// Resuming from the trailer's cursor yields nothing new — it is
	// exactly one past the last frame served.
	empty, trailer := streamLines(t, srv.URL+"/v1/runs/"+sub.Job.ID+"/rounds?cursor="+trailer)
	if len(empty) != 0 {
		t.Fatalf("resume from the trailer cursor replayed %d lines, want 0", len(empty))
	}
	if trailer != strconv.Itoa(total) {
		t.Fatalf("empty-resume trailer = %q, want %d", trailer, total)
	}

	// The cells stream: the cursor counts cell frames; the summary line
	// trails every completed drain regardless of the cursor.
	spec := sweepSpec()
	job, _ := postSweepJob(t, srv, spec)
	awaitSweepState(t, srv, job.ID, StateDone)
	cells := spec.Expt().NumCells()
	half := cells / 2
	lines, trailer := streamLines(t, srv.URL+"/v1/sweeps/"+job.ID+"/cells?cursor="+strconv.Itoa(half))
	if trailer != strconv.Itoa(cells) {
		t.Fatalf("cells trailer = %q, want %d", trailer, cells)
	}
	if want := cells - half + 1; len(lines) != want { // +1: the summary line
		t.Fatalf("cells?cursor=%d = %d lines, want %d cells + summary", half, len(lines), want-1)
	}
	var cell SweepCell
	if err := json.Unmarshal([]byte(lines[0]), &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Index != half {
		t.Fatalf("first resumed cell has index %d, want %d", cell.Index, half)
	}
	if !strings.Contains(lines[len(lines)-1], `"done"`) {
		t.Fatalf("last line is not the summary: %q", lines[len(lines)-1])
	}
}
