package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"adnet/internal/temporal"
)

// fastSpec is small enough to finish in milliseconds.
func fastSpec(seed int64) RunSpec {
	return RunSpec{Algorithm: "graph-to-star", Workload: "line", N: 64, Seed: seed}
}

// slowSpec keeps a worker busy for a few hundred milliseconds so
// lifecycle tests can observe intermediate states. The line workload
// ignores the seed, but distinct seeds still make distinct cache keys.
func slowSpec(seed int64) RunSpec {
	return RunSpec{Algorithm: "graph-to-star", Workload: "line", N: 4096, Seed: seed}
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %q, want %q", j.ID, j.State(), want)
}

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	valid := fastSpec(1)
	if err := valid.Validate(0); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []RunSpec{
		{Algorithm: "no-such-algo", Workload: "line", N: 8},
		{Algorithm: "graph-to-star", Workload: "no-such-family", N: 8},
		{Algorithm: "graph-to-star", Workload: "line", N: 1},
		{Algorithm: "graph-to-star", Workload: "line", N: 0},
		{Algorithm: "graph-to-star", Workload: "line", N: DefaultMaxN + 1},
		{Algorithm: "graph-to-star", Workload: "line", N: 8, MaxRounds: -1},
	}
	for _, s := range bad {
		if err := s.Validate(0); err == nil {
			t.Errorf("spec %+v passed validation", s)
		}
	}
}

func TestSpecKeyDistinguishesFields(t *testing.T) {
	t.Parallel()
	base := fastSpec(1)
	variants := []RunSpec{
		{Algorithm: "graph-to-wreath", Workload: base.Workload, N: base.N, Seed: base.Seed},
		{Algorithm: base.Algorithm, Workload: "star", N: base.N, Seed: base.Seed},
		{Algorithm: base.Algorithm, Workload: base.Workload, N: base.N + 1, Seed: base.Seed},
		{Algorithm: base.Algorithm, Workload: base.Workload, N: base.N, Seed: base.Seed + 1},
		{Algorithm: base.Algorithm, Workload: base.Workload, N: base.N, Seed: base.Seed, MaxRounds: 9},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Errorf("key collision for %+v", v)
		}
		seen[v.Key()] = true
	}
	if base.Key() != fastSpec(1).Key() {
		t.Error("identical specs must share a key")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	t.Parallel()
	c := newResultCache(2)
	entry := func(n int) cacheEntry {
		return cacheEntry{Rounds: make([]temporal.RoundStats, n)}
	}
	c.Add("a", entry(1))
	c.Add("b", entry(2))
	if _, ok := c.Get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.Add("c", entry(3)) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.Get("a"); !ok || len(got.Rounds) != 1 {
		t.Error("a should have survived eviction")
	}
	if got, ok := c.Get("c"); !ok || len(got.Rounds) != 3 {
		t.Error("c should be cached")
	}
	if size, hits, misses := c.Stats(); size != 2 || hits != 3 || misses != 1 {
		t.Errorf("stats = (%d,%d,%d), want (2,3,1)", size, hits, misses)
	}
}

func TestManagerRunCompletesAndCaches(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 2})
	defer m.Close()

	job, cached, err := m.Submit(fastSpec(7))
	if err != nil || cached {
		t.Fatalf("Submit = (cached=%v, err=%v)", cached, err)
	}
	waitState(t, job, StateDone)
	st := job.Status()
	if st.Outcome == nil || !st.Outcome.LeaderOK {
		t.Fatalf("outcome = %+v, want elected leader", st.Outcome)
	}
	if st.Rounds == 0 || st.Rounds != st.Outcome.Rounds {
		t.Fatalf("streamed %d rounds, outcome says %d", st.Rounds, st.Outcome.Rounds)
	}

	// The identical spec must be a cache hit: answered instantly,
	// with the same outcome and the full round replay, without
	// executing another simulation.
	hit, cached, err := m.Submit(fastSpec(7))
	if err != nil || !cached {
		t.Fatalf("resubmit = (cached=%v, err=%v), want cache hit", cached, err)
	}
	if hit.State() != StateDone || !hit.FromCache {
		t.Fatalf("cache-hit job state = %s from_cache=%v", hit.State(), hit.FromCache)
	}
	if got := hit.Status(); *got.Outcome != *st.Outcome || got.Rounds != st.Rounds {
		t.Fatalf("cache-hit mismatch: %+v vs %+v", got, st)
	}
	if hit.ID == job.ID {
		t.Error("cache hit must mint a fresh job id")
	}
	if runs := m.RunsExecuted(); runs != 1 {
		t.Fatalf("RunsExecuted = %d, want 1 (no re-simulation)", runs)
	}

	// A different seed is a different run.
	other, cached, err := m.Submit(fastSpec(8))
	if err != nil || cached {
		t.Fatalf("different seed = (cached=%v, err=%v)", cached, err)
	}
	waitState(t, other, StateDone)
	if runs := m.RunsExecuted(); runs != 2 {
		t.Fatalf("RunsExecuted = %d, want 2", runs)
	}
}

func TestManagerDedupesInFlightSpec(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, QueueDepth: 8})
	defer m.Close()

	first, _, err := m.Submit(slowSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	second, cached, err := m.Submit(slowSpec(3))
	if err != nil || cached {
		t.Fatalf("dup submit = (cached=%v, err=%v)", cached, err)
	}
	if second != first {
		t.Fatalf("in-flight duplicate spawned a second job: %s vs %s", second.ID, first.ID)
	}
	waitState(t, first, StateDone)
	if runs := m.RunsExecuted(); runs != 1 {
		t.Fatalf("RunsExecuted = %d, want 1", runs)
	}
}

func TestManagerRetentionBoundsJobTable(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, CacheSize: -1, RetainJobs: 2})
	defer m.Close()

	var last *Job
	for seed := int64(0); seed < 4; seed++ {
		j, _, err := m.Submit(fastSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		last = j
	}
	jobs := m.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("table holds %d jobs, want 2 (retention bound)", len(jobs))
	}
	if _, ok := m.Get(last.ID); !ok {
		t.Error("newest finished job must survive retention")
	}
}

func TestManagerDedupSkipsCanceledJob(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, QueueDepth: 8})
	defer m.Close()

	// Occupy the worker so the target spec stays queued.
	blocker, _, err := m.Submit(slowSpec(60))
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := m.Submit(slowSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	// A fresh submitter of the same spec must get a new run, not the
	// canceled job.
	fresh, cached, err := m.Submit(slowSpec(61))
	if err != nil || cached {
		t.Fatalf("resubmit = (cached=%v, err=%v)", cached, err)
	}
	if fresh == queued {
		t.Fatal("dedup handed out a canceled job")
	}
	waitState(t, blocker, StateDone)
	waitState(t, queued, StateCanceled)
	waitState(t, fresh, StateDone)
}

func TestManagerQueueFull(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()

	var sawFull bool
	for seed := int64(0); seed < 8; seed++ {
		_, _, err := m.Submit(slowSpec(100 + seed))
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("never hit ErrQueueFull with 1 worker and queue depth 1")
	}
}

func TestManagerCancelRunningJob(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	job, _, err := m.Submit(slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning)
	if err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.State() != StateCanceled && job.State() != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", job.State())
		}
		time.Sleep(time.Millisecond)
	}
	// The run may legitimately have finished in the race window; a
	// canceled verdict must carry the error and reject re-cancel.
	if job.State() == StateCanceled {
		if st := job.Status(); st.Error == "" {
			t.Error("canceled job must record an error")
		}
		if err := m.Cancel(job.ID); !errors.Is(err, ErrNotRunning) {
			t.Errorf("re-cancel = %v, want ErrNotRunning", err)
		}
	}
	if err := m.Cancel("run-999999-ffffffff"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown = %v, want ErrNotFound", err)
	}
}

func TestManagerTimeLimitFailsRun(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, RunTimeLimit: time.Millisecond})
	defer m.Close()

	job, _, err := m.Submit(slowSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateFailed)
	if st := job.Status(); st.Error == "" {
		t.Error("time-limited job must record an error")
	}
	if runs := m.RunsExecuted(); runs != 1 {
		t.Fatalf("RunsExecuted = %d, want 1", runs)
	}
	// Failures are not cached: the same spec runs again.
	if _, cached, _ := m.Submit(slowSpec(9)); cached {
		t.Error("failed run must not be served from cache")
	}
}

func TestManagerRejectsInvalidSpec(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, MaxN: 128})
	defer m.Close()
	if _, _, err := m.Submit(RunSpec{Algorithm: "nope", Workload: "line", N: 8}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, _, err := m.Submit(RunSpec{Algorithm: "graph-to-star", Workload: "line", N: 256}); err == nil {
		t.Error("n over MaxN accepted")
	}
}

func TestManagerCloseRejectsSubmit(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1})
	m.Close()
	if _, _, err := m.Submit(fastSpec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestRoundStreamReplayAndLiveTail(t *testing.T) {
	t.Parallel()
	s := newRoundStream(0, nil)
	for i := 1; i <= 3; i++ {
		s.publish(temporal.RoundStats{Round: i})
	}
	ctx := context.Background()

	// Replay: a late subscriber sees all published rounds at once.
	batch, ok := s.Wait(ctx, 0)
	if !ok || len(batch) != 3 {
		t.Fatalf("replay batch = (%d, %v), want 3 rounds", len(batch), ok)
	}

	// Live tail: a blocked Wait is released by the next publish.
	got := make(chan int, 1)
	go func() {
		b, _ := s.Wait(ctx, 3)
		got <- len(b)
	}()
	time.Sleep(10 * time.Millisecond)
	s.publish(temporal.RoundStats{Round: 4})
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("tail batch = %d rounds, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never woke on publish")
	}

	// Close drains: consumed streams return ok=false.
	s.close()
	if _, ok := s.Wait(ctx, 4); ok {
		t.Fatal("Wait on a closed, fully-consumed stream must return false")
	}
	if batch, ok := s.Wait(ctx, 0); !ok || len(batch) != 4 {
		t.Fatal("closed stream must still replay history")
	}
}

func TestRoundStreamWaitHonorsContext(t *testing.T) {
	t.Parallel()
	s := newRoundStream(0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Wait(ctx, 0)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("canceled Wait must return ok=false")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait ignored context cancellation")
	}
}

func TestConcurrentSubmissionsThroughBoundedPool(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 4, QueueDepth: 64})
	defer m.Close()

	const jobs = 16
	jobsCh := make(chan *Job, jobs)
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		go func(seed int64) {
			j, _, err := m.Submit(fastSpec(seed))
			if err != nil {
				errs <- err
				return
			}
			jobsCh <- j
		}(int64(i))
	}
	for i := 0; i < jobs; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case j := <-jobsCh:
			waitState(t, j, StateDone)
			if st := j.Status(); st.Outcome == nil || !st.Outcome.LeaderOK {
				t.Fatalf("job %s: bad outcome %+v", j.ID, st.Outcome)
			}
		}
	}
	if runs := m.RunsExecuted(); runs != jobs {
		t.Fatalf("RunsExecuted = %d, want %d", runs, jobs)
	}
}

func TestDeterministicOutcomesAcrossJobs(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 2, CacheSize: -1}) // cache disabled
	defer m.Close()
	var last *Job
	for i := 0; i < 2; i++ {
		j, cached, err := m.Submit(RunSpec{Algorithm: "graph-to-wreath", Workload: "random-tree", N: 96, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatal("cache disabled but hit")
		}
		waitState(t, j, StateDone)
		if last != nil {
			a, b := last.Status(), j.Status()
			if *a.Outcome != *b.Outcome {
				t.Fatalf("same spec, different outcomes: %+v vs %+v", a.Outcome, b.Outcome)
			}
		}
		last = j
	}
	if fmt.Sprint(m.RunsExecuted()) != "2" {
		t.Fatalf("RunsExecuted = %d, want 2", m.RunsExecuted())
	}
}
