package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adnet/internal/expt"
	"adnet/internal/fleet"
	"adnet/internal/journal"
	"adnet/internal/runkey"
)

// newCoordinator builds a coordinator-mode test server backed by
// workerCount real worker servers (each a full manager + handler).
func newCoordinator(t *testing.T, workerCount int) (*httptest.Server, *Manager) {
	t.Helper()
	coord := fleet.New(fleet.Config{RetryBackoff: time.Millisecond})
	for i := 0; i < workerCount; i++ {
		worker, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 4})
		if _, err := coord.Register(t.Context(), worker.URL); err != nil {
			t.Fatal(err)
		}
	}
	return newTestServer(t, Config{Workers: 1, Fleet: coord})
}

// TestCoordinatorSweepMatchesSingleProcessByteForByte is the
// acceptance criterion end to end through the service layer: a
// coordinator with two workers serves a merged cell stream in
// canonical order and an aggregate byte-identical to the same grid
// run on one ordinary (single-process) server — while executing no
// simulation of its own.
func TestCoordinatorSweepMatchesSingleProcessByteForByte(t *testing.T) {
	t.Parallel()
	spec := SweepSpec{
		Algorithms: []string{"graph-to-star", "flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{16, 24},
		Seeds:      []int64{1, 2, 3},
	}

	coordSrv, coordMgr := newCoordinator(t, 2)
	job, code := postSweepJob(t, coordSrv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST sweep to coordinator = %d", code)
	}
	awaitSweepState(t, coordSrv, job.ID, StateDone)

	cells, sum := readCells(t, coordSrv, job.ID)
	grid := spec.Expt().Cells()
	if len(cells) != len(grid) {
		t.Fatalf("merged stream has %d cells, grid %d", len(cells), len(grid))
	}
	for i, c := range cells {
		want := grid[i]
		if c.Index != i || c.Algorithm != want.Algorithm || c.N != want.N || c.Seed != want.Seed {
			t.Fatalf("cell %d = %+v, want %+v", i, c, want)
		}
		if c.Error != "" || c.Outcome == nil {
			t.Fatalf("cell %d failed: %q", i, c.Error)
		}
	}
	if sum == nil || !sum.Done || sum.Cells != len(grid) || sum.Errors != 0 || sum.Executed != len(grid) {
		t.Fatalf("summary = %+v", sum)
	}

	// Reference: the identical grid on a plain single-process server.
	singleSrv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 2})
	ref, _ := postSweepJob(t, singleSrv, spec)
	awaitSweepState(t, singleSrv, ref.ID, StateDone)

	distAgg, code := getAggregate(t, coordSrv, job.ID)
	if code != http.StatusOK {
		t.Fatalf("coordinator aggregate = %d", code)
	}
	singleAgg, code := getAggregate(t, singleSrv, ref.ID)
	if code != http.StatusOK {
		t.Fatalf("single-process aggregate = %d", code)
	}
	distBytes, _ := json.Marshal(distAgg.Groups)
	singleBytes, _ := json.Marshal(singleAgg.Groups)
	if !bytes.Equal(distBytes, singleBytes) {
		t.Fatalf("coordinator aggregate diverged from single-process:\n%s\nvs\n%s", distBytes, singleBytes)
	}

	// The coordinator distributed everything: no local simulations.
	if n := coordMgr.RunsExecuted(); n != 0 {
		t.Fatalf("coordinator executed %d runs locally, want 0", n)
	}
}

// TestCoordinatorJournalTakeover is the in-process coordinator
// failover test: a journaling coordinator dies mid-grid with at least
// one shard persisted; a brand-new coordinator (fresh registry, same
// workers, same data dir) recovers, replays the persisted shards
// without re-dispatching them, completes only the missing ones, and
// folds an aggregate byte-identical to an uninterrupted run.
func TestCoordinatorJournalTakeover(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	// Two rows → two shards; the small row finishes while the large
	// one is still running, so the interruption lands between shards.
	spec := SweepSpec{
		Algorithms: []string{"graph-to-star"},
		Workloads:  []string{"line"},
		Sizes:      []int{1024, 4096},
		Seeds:      []int64{1, 2, 3, 4},
	}
	total := spec.Expt().NumCells()
	path := filepath.Join(dir, "sweeps", runkey.Hash(spec.Key())+".wal")

	var workerURLs []string
	for i := 0; i < 2; i++ {
		w, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 4})
		workerURLs = append(workerURLs, w.URL)
	}
	newCoordMgr := func() *Manager {
		coord := fleet.New(fleet.Config{RetryBackoff: time.Millisecond})
		for _, u := range workerURLs {
			if _, err := coord.Register(t.Context(), u); err != nil {
				t.Fatal(err)
			}
		}
		return NewManager(Config{Workers: 1, Fleet: coord, DataDir: dir})
	}
	journaledShards := func() (int, int) {
		recs, _, err := journal.ReadAll(path)
		if err != nil {
			return 0, 0
		}
		st, err := parseJournal(path, recs)
		if err != nil {
			t.Fatal(err)
		}
		cells := 0
		for _, sr := range st.shards {
			cells += len(sr.Cells)
		}
		return len(st.shards), cells
	}

	m1 := newCoordMgr()
	if _, err := m1.SubmitSweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		if n, _ := journaledShards(); n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard was ever persisted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m1.Close() // the "crash": no terminal record is written

	shardsDone, cellsDone := journaledShards()
	if shardsDone == 0 || cellsDone >= total {
		t.Fatalf("journal holds %d shards / %d cells of %d; need a mid-grid interruption",
			shardsDone, cellsDone, total)
	}

	m2 := newCoordMgr()
	defer m2.Close()
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	var resumed *SweepJob
	deadline = time.Now().Add(60 * time.Second)
	for resumed == nil {
		if time.Now().After(deadline) {
			t.Fatal("takeover coordinator never resubmitted the sweep")
		}
		for _, st := range m2.Sweeps() {
			resumed, _ = m2.GetSweep(st.ID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline = time.Now().Add(120 * time.Second)
	for resumed.State() != StateDone {
		if s := resumed.State(); s == StateFailed || s == StateCanceled {
			t.Fatalf("resumed sweep ended %s: %s", s, resumed.Status().Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed sweep stuck in %s", resumed.State())
		}
		time.Sleep(2 * time.Millisecond)
	}

	st := resumed.Status()
	if !st.Resumed || st.Summary == nil {
		t.Fatalf("takeover status = %+v", st)
	}
	if st.Summary.Replayed != cellsDone {
		t.Errorf("replayed = %d, want the %d journaled shard cells", st.Summary.Replayed, cellsDone)
	}
	if st.Summary.Errors != 0 {
		t.Errorf("takeover sweep reported %d errors", st.Summary.Errors)
	}
	if n := m2.RunsExecuted(); n != 0 {
		t.Errorf("takeover coordinator ran %d local simulations", n)
	}

	groups, err := resumed.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(groups)
	ref, err := expt.AggregateSweep(spec.Expt())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(ref)
	if !bytes.Equal(got, want) {
		t.Fatalf("takeover aggregate diverged from uninterrupted reference:\n%s\nvs\n%s", got, want)
	}
}

// TestFleetWorkerEndpoints covers the registry API: mounted only in
// coordinator mode, validates URLs, probes health, reports workers.
func TestFleetWorkerEndpoints(t *testing.T) {
	t.Parallel()

	// Without a fleet, the routes do not exist.
	plain, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(plain.URL + "/v1/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/fleet/workers on a plain server = %d, want 404", resp.StatusCode)
	}

	coordSrv, _ := newCoordinator(t, 1)
	worker, _ := newTestServer(t, Config{Workers: 1})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(coordSrv.URL+"/v1/fleet/workers", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"url":"` + worker.URL + `"}`); code != http.StatusCreated {
		t.Fatalf("register = %d, want 201", code)
	}
	if code := post(`{"url":"` + worker.URL + `"}`); code != http.StatusOK {
		t.Fatalf("duplicate register = %d, want 200", code)
	}
	if code := post(`{"url":"not-absolute"}`); code != http.StatusBadRequest {
		t.Fatalf("bad URL = %d, want 400", code)
	}
	if code := post(`{"url":"http://127.0.0.1:1"}`); code != http.StatusBadGateway {
		t.Fatalf("unreachable worker = %d, want 502", code)
	}

	var workers []fleet.WorkerStatus
	resp, err = http.Get(coordSrv.URL + "/v1/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 {
		t.Fatalf("registry has %d workers, want 2", len(workers))
	}
	for _, w := range workers {
		if !w.Healthy {
			t.Fatalf("worker %+v unhealthy", w)
		}
	}

	// healthz reports the fleet counters in coordinator mode.
	var health struct {
		Stats Stats `json:"stats"`
	}
	resp, err = http.Get(coordSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Stats.Coordinator || health.Stats.FleetWorkers != 2 || health.Stats.FleetHealthy != 2 {
		t.Fatalf("healthz fleet stats = %+v", health.Stats)
	}
}

// TestCoordinatorSweepFailsCleanlyWithoutWorkers: an empty registry
// must fail the sweep job — with the full skip-marked cell stream and
// a summary — rather than hang or run locally.
func TestCoordinatorSweepFailsCleanlyWithoutWorkers(t *testing.T) {
	t.Parallel()
	coordSrv, coordMgr := newTestServer(t, Config{Workers: 1, Fleet: fleet.New(fleet.Config{})})
	spec := SweepSpec{
		Algorithms: []string{"flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{8},
		Seeds:      []int64{1, 2},
	}
	job, _ := postSweepJob(t, coordSrv, spec)
	st := awaitSweepState(t, coordSrv, job.ID, StateFailed)
	if !strings.Contains(st.Error, "no healthy workers") {
		t.Fatalf("error = %q", st.Error)
	}
	cells, sum := readCells(t, coordSrv, job.ID)
	if len(cells) != 2 || sum == nil || sum.Errors != 2 {
		t.Fatalf("cells = %d, summary = %+v", len(cells), sum)
	}
	for _, c := range cells {
		if !strings.Contains(c.Error, "skipped") {
			t.Fatalf("cell not skip-marked: %+v", c)
		}
	}
	if n := coordMgr.RunsExecuted(); n != 0 {
		t.Fatalf("coordinator ran %d local simulations", n)
	}
}
