package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postSweepJob submits a sweep spec and returns the parsed job status.
func postSweepJob(t *testing.T, srv *httptest.Server, spec SweepSpec) (SweepStatus, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return SweepStatus{}, resp.StatusCode
	}
	var sub sweepSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub.Sweep, resp.StatusCode
}

func getSweepStatus(t *testing.T, srv *httptest.Server, id string) SweepStatus {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps/%s = %d", id, resp.StatusCode)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitSweepState polls until the sweep reaches one of the wanted
// terminal states.
func awaitSweepState(t *testing.T, srv *httptest.Server, id string, want ...JobState) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getSweepStatus(t, srv, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			t.Fatalf("sweep %s ended %s (want %v): %s", id, st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached %v", id, want)
	return SweepStatus{}
}

// readCells consumes the cell NDJSON stream to EOF and splits it into
// per-cell lines and the optional trailing summary.
func readCells(t *testing.T, srv *httptest.Server, id string) ([]SweepCell, *SweepSummary) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/cells")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cells = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var cells []SweepCell
	var summary *SweepSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if summary != nil {
			t.Fatalf("line after summary: %q", line)
		}
		if strings.Contains(line, `"done"`) {
			summary = new(SweepSummary)
			if err := json.Unmarshal([]byte(line), summary); err != nil {
				t.Fatalf("bad summary %q: %v", line, err)
			}
			continue
		}
		var cell SweepCell
		if err := json.Unmarshal([]byte(line), &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		cells = append(cells, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return cells, summary
}

func getAggregate(t *testing.T, srv *httptest.Server, id string) (sweepAggregateResponse, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg sweepAggregateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
			t.Fatal(err)
		}
	}
	return agg, resp.StatusCode
}

func sweepSpec() SweepSpec {
	return SweepSpec{
		Algorithms: []string{"graph-to-star", "flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{16, 24},
		Seeds:      []int64{1, 2},
	}
}

// slowSweepSpec keeps one sweep worker busy for seconds: each cell is
// a slowSpec-sized run, so cancellation promptness is observable.
func slowSweepSpec(seeds ...int64) SweepSpec {
	return SweepSpec{
		Algorithms: []string{"graph-to-star"},
		Workloads:  []string{"line"},
		Sizes:      []int{4096},
		Seeds:      seeds,
	}
}

func TestSweepJobLifecycleStreamsEveryCellInOrder(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 1, SweepWorkers: 3})

	spec := sweepSpec()
	sub, code := postSweepJob(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d, want 202", code)
	}
	if sub.ID == "" || !strings.HasPrefix(sub.ID, "sweep-") {
		t.Fatalf("sweep ID = %q", sub.ID)
	}
	wantCells := len(spec.Algorithms) * len(spec.Workloads) * len(spec.Sizes) * len(spec.Seeds)
	if sub.Cells != wantCells {
		t.Fatalf("submit status cells = %d, want %d", sub.Cells, wantCells)
	}

	st := awaitSweepState(t, srv, sub.ID, StateDone)
	if st.Summary == nil || !st.Summary.Done || st.Summary.Cells != wantCells ||
		st.Summary.Executed != wantCells || st.Summary.Errors != 0 || st.Summary.CacheHits != 0 {
		t.Fatalf("summary = %+v", st.Summary)
	}
	if st.CellsDone != wantCells {
		t.Fatalf("cells_done = %d, want %d", st.CellsDone, wantCells)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Error("finished sweep must carry timestamps")
	}

	// A late subscriber replays the full cell history in canonical
	// order, with the summary trailing.
	cells, summary := readCells(t, srv, sub.ID)
	if len(cells) != wantCells {
		t.Fatalf("streamed %d cells, want %d", len(cells), wantCells)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d: stream not in canonical order", i, c.Index)
		}
		if c.Error != "" || c.Outcome == nil {
			t.Fatalf("cell %d: %+v", i, c)
		}
		if c.FromCache {
			t.Fatalf("cell %d from cache on a cold manager", i)
		}
		if !c.Outcome.LeaderOK {
			t.Fatalf("cell %d outcome: %+v", i, c.Outcome)
		}
		if c.Algorithm != "centralized-euler" && c.Outcome.TotalMessages == 0 {
			t.Fatalf("cell %d reports no messages: %+v", i, c.Outcome)
		}
	}
	if cells[0].Algorithm != "graph-to-star" || cells[wantCells-1].Algorithm != "flood" {
		t.Fatalf("order wrong: first %s, last %s", cells[0].Algorithm, cells[wantCells-1].Algorithm)
	}
	if summary == nil || *summary != *st.Summary {
		t.Fatalf("streamed summary %+v, status summary %+v", summary, st.Summary)
	}
	if got := m.RunsExecuted(); got != int64(wantCells) {
		t.Fatalf("RunsExecuted = %d, want %d", got, wantCells)
	}

	// The job list knows the sweep.
	var list []SweepStatus
	mustGetJSON(t, srv, "/v1/sweeps", &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("sweep list = %+v", list)
	}
}

func TestSweepJobPerCellCacheHits(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	spec := sweepSpec()

	// Seed the cache with ONE cell via the individual-run path: the
	// canonical runkey makes the sweep reuse it.
	sub, code := postRun(t, srv, RunSpec{Algorithm: "flood", Workload: "line", N: 16, Seed: 1})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	awaitDone(t, srv, sub.Job.ID)
	if m.RunsExecuted() != 1 {
		t.Fatalf("RunsExecuted = %d after priming run", m.RunsExecuted())
	}

	job, _ := postSweepJob(t, srv, spec)
	st := awaitSweepState(t, srv, job.ID, StateDone)
	cells, _ := readCells(t, srv, job.ID)
	wantCells := 8
	hits := 0
	for _, c := range cells {
		if c.FromCache {
			hits++
			if c.Algorithm != "flood" || c.N != 16 || c.Seed != 1 {
				t.Fatalf("unexpected cache hit: %+v", c)
			}
		}
	}
	if hits != 1 || st.Summary.CacheHits != 1 {
		t.Fatalf("cache hits = %d (summary %d), want 1", hits, st.Summary.CacheHits)
	}
	if st.Summary.Executed != wantCells-1 {
		t.Fatalf("executed = %d, want %d", st.Summary.Executed, wantCells-1)
	}
	if got := m.RunsExecuted(); got != int64(wantCells) { // 1 priming + 7 fresh
		t.Fatalf("RunsExecuted = %d, want %d", got, wantCells)
	}

	// A repeated identical sweep re-simulates nothing.
	job2, _ := postSweepJob(t, srv, spec)
	st2 := awaitSweepState(t, srv, job2.ID, StateDone)
	if st2.Summary.CacheHits != wantCells || st2.Summary.Executed != 0 {
		t.Fatalf("repeat sweep summary = %+v, want all cache hits", st2.Summary)
	}
	if got := m.RunsExecuted(); got != int64(wantCells) {
		t.Fatalf("RunsExecuted grew to %d on a fully cached sweep", got)
	}

	// And the reverse direction: a run submitted after the sweep hits
	// the sweep-populated cache, including round replay.
	hit, code := postRun(t, srv, RunSpec{Algorithm: "graph-to-star", Workload: "line", N: 24, Seed: 2})
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("post-sweep run not served from cache: code=%d cached=%v", code, hit.Cached)
	}
	if rounds := readRounds(t, srv, hit.Job.ID); len(rounds) != hit.Job.Outcome.Rounds {
		t.Fatalf("sweep-cached run replayed %d rounds, want %d", len(rounds), hit.Job.Outcome.Rounds)
	}
}

func TestSweepJobValidation(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, MaxSweepCells: 4, MaxN: 64})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	bad := []string{
		`{not json`,
		`{"algorithms":["nope"],"workloads":["line"],"sizes":[8],"seeds":[1]}`,
		`{"algorithms":["flood"],"workloads":["nope"],"sizes":[8],"seeds":[1]}`,
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[1],"seeds":[1]}`,
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[128],"seeds":[1]}`,         // > MaxN
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8],"seeds":[]}`,            // empty grid
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8,16,24],"seeds":[1,2]}`,   // 6 > MaxSweepCells
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8],"seeds":[1],"bogus":1}`, // unknown field
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8],"seeds":[1],"max_rounds":-1}`,
	}
	for i, body := range bad {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("bad spec %d: code = %d, want 400", i, code)
		}
	}
	// The limit is inclusive: exactly MaxSweepCells cells pass.
	if code := post(`{"algorithms":["flood"],"workloads":["line"],"sizes":[8,16],"seeds":[1,2]}`); code != http.StatusAccepted {
		t.Errorf("4-cell sweep rejected with %d", code)
	}
}

func TestSweepCoalescesWithInFlightRun(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 1, SweepWorkers: 1})

	// Start a slow run, then sweep the same cell while it is still in
	// flight: the sweep must wait for the job instead of re-simulating.
	spec := slowSpec(61)
	sub, code := postRun(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	job, code := postSweepJob(t, srv, SweepSpec{
		Algorithms: []string{spec.Algorithm},
		Workloads:  []string{spec.Workload},
		Sizes:      []int{spec.N},
		Seeds:      []int64{spec.Seed},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	swst := awaitSweepState(t, srv, job.ID, StateDone)
	st := awaitDone(t, srv, sub.Job.ID)
	cells, _ := readCells(t, srv, job.ID)
	if len(cells) != 1 || cells[0].Error != "" || !cells[0].FromCache {
		t.Fatalf("cells = %+v, want one coalesced cache-served cell", cells)
	}
	if *cells[0].Outcome != *st.Outcome {
		t.Fatalf("coalesced outcome differs: %+v vs %+v", cells[0].Outcome, st.Outcome)
	}
	if swst.Summary.Executed != 0 || swst.Summary.CacheHits != 1 {
		t.Fatalf("summary = %+v", swst.Summary)
	}
	if runs := m.RunsExecuted(); runs != 1 {
		t.Fatalf("RunsExecuted = %d, want 1 — the sweep re-simulated an in-flight spec", runs)
	}
}

func TestSweepCellsHonorRunTimeLimit(t *testing.T) {
	t.Parallel()
	// A 10ms per-run budget against a run that takes hundreds of
	// milliseconds (the slowSpec workload): the cell is aborted
	// between rounds and reported as that cell's error, and the sweep
	// still completes with a summary — no indefinite engine-fleet
	// occupancy.
	srv, _ := newTestServer(t, Config{Workers: 1, RunTimeLimit: 10 * time.Millisecond})
	job, code := postSweepJob(t, srv, slowSweepSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("code = %d", code)
	}
	st := awaitSweepState(t, srv, job.ID, StateDone)
	cells, _ := readCells(t, srv, job.ID)
	if len(cells) != 1 || cells[0].Error == "" {
		t.Fatalf("cells = %+v", cells)
	}
	if !strings.Contains(cells[0].Error, "time limit") {
		t.Fatalf("cell error %q does not mention the time limit", cells[0].Error)
	}
	if !st.Summary.Done || st.Summary.Errors != 1 {
		t.Fatalf("summary = %+v", st.Summary)
	}
}

func TestSweepErrorsReportedPerCell(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})
	// MaxRounds 1 cannot finish graph-to-star: the cell errs, the
	// sweep completes.
	job, code := postSweepJob(t, srv, SweepSpec{
		Algorithms: []string{"graph-to-star", "flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{8},
		Seeds:      []int64{1},
		MaxRounds:  1,
	})
	if code != http.StatusAccepted {
		t.Fatalf("code = %d", code)
	}
	st := awaitSweepState(t, srv, job.ID, StateDone)
	cells, _ := readCells(t, srv, job.ID)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Error == "" || cells[0].Outcome != nil {
		t.Fatalf("round-limited star cell: %+v", cells[0])
	}
	if !st.Summary.Done || st.Summary.Errors == 0 {
		t.Fatalf("summary = %+v", st.Summary)
	}
}

func TestSweepBusyFailsFastWith503(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 1})

	job, code := postSweepJob(t, srv, slowSweepSpec(1, 2, 3, 4))
	if code != http.StatusAccepted {
		t.Fatalf("first sweep = %d", code)
	}
	if _, code := postSweepJob(t, srv, sweepSpec()); code != http.StatusServiceUnavailable {
		t.Fatalf("second concurrent sweep = %d, want 503", code)
	}
	// Cancel the occupant; the slot frees and a new sweep is accepted.
	cancelSweep(t, srv, job.ID, http.StatusNoContent)
	awaitSweepState(t, srv, job.ID, StateCanceled)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, code := postSweepJob(t, srv, sweepSpec()); code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep slot never freed after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func cancelSweep(t *testing.T, srv *httptest.Server, id string, want int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("DELETE /v1/sweeps/%s = %d, want %d", id, resp.StatusCode, want)
	}
}

// TestSweepCancelPropagatesIntoCellsPromptly pins the fix for the
// old synchronous handler's weakness: cancellation must reach the
// engine fleet between rounds, not after the grid drains. An 8-cell
// grid of ~100ms cells on one worker would run for seconds; canceling
// after the first cell must reach a terminal state in a fraction of
// that, with the unreached cells reported as per-cell errors.
func TestSweepCancelPropagatesIntoCellsPromptly(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 1})

	job, code := postSweepJob(t, srv, slowSweepSpec(1, 2, 3, 4, 5, 6, 7, 8))
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	// Wait for the first cell to finish so the sweep is provably
	// mid-grid, then cancel.
	deadline := time.Now().Add(60 * time.Second)
	for getSweepStatus(t, srv, job.ID).CellsDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first cell never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	canceledAt := time.Now()
	cancelSweep(t, srv, job.ID, http.StatusNoContent)
	st := awaitSweepState(t, srv, job.ID, StateCanceled)
	if elapsed := time.Since(canceledAt); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s to reach the fleet", elapsed)
	}
	if st.Error == "" || st.Summary == nil || st.Summary.Done {
		t.Fatalf("canceled sweep status = %+v", st)
	}
	if st.Summary.Errors == 0 {
		t.Fatalf("summary = %+v, want skipped cells reported as errors", st.Summary)
	}
	// The stream still replays what finished, trailed by the summary.
	cells, summary := readCells(t, srv, job.ID)
	if len(cells) != st.Summary.Cells {
		t.Fatalf("stream replayed %d cells, summary says %d", len(cells), st.Summary.Cells)
	}
	if summary == nil || summary.Done {
		t.Fatalf("streamed summary = %+v", summary)
	}
	finished := 0
	for _, c := range cells {
		if c.Error == "" {
			finished++
		} else if !strings.Contains(c.Error, "cancel") {
			t.Fatalf("unreached cell error %q does not mention cancellation", c.Error)
		}
	}
	if finished == 0 || finished == len(cells) {
		t.Fatalf("finished %d of %d cells; want a mid-grid cancellation", finished, len(cells))
	}
	// Aggregation over the partial sweep still works, counting the
	// canceled cells as errors.
	agg, code := getAggregate(t, srv, job.ID)
	if code != http.StatusOK || len(agg.Groups) != 1 {
		t.Fatalf("aggregate = %d %+v", code, agg)
	}
	if g := agg.Groups[0]; g.Seeds != finished || g.Errors != len(cells)-finished {
		t.Fatalf("group = %+v, want %d seeds and %d errors", g, finished, len(cells)-finished)
	}
	// Re-cancel is a conflict.
	cancelSweep(t, srv, job.ID, http.StatusConflict)
}

// TestSweepSubscriberDisconnectDoesNotCancelJob pins the other half
// of the job promotion: a /cells subscriber going away must end only
// its own stream — the sweep (and any other subscriber) continues.
func TestSweepSubscriberDisconnectDoesNotCancelJob(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 1})

	job, code := postSweepJob(t, srv, slowSweepSpec(1, 2, 3))
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	// Subscribe, read one line, then drop the connection.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/sweeps/"+job.ID+"/cells", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("first cell line: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The sweep still runs to completion with every cell successful.
	st := awaitSweepState(t, srv, job.ID, StateDone)
	if st.Summary.Executed != 3 || st.Summary.Errors != 0 {
		t.Fatalf("summary after subscriber disconnect = %+v", st.Summary)
	}
	cells, summary := readCells(t, srv, job.ID)
	if len(cells) != 3 || summary == nil || !summary.Done {
		t.Fatalf("late replay got %d cells, summary %+v", len(cells), summary)
	}
}

func TestSweepAggregateEndpoint(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, SweepWorkers: 2})

	spec := SweepSpec{
		Algorithms: []string{"graph-to-star", "flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{16, 24},
		Seeds:      []int64{1, 2, 3},
	}
	job, _ := postSweepJob(t, srv, spec)
	awaitSweepState(t, srv, job.ID, StateDone)
	cells, _ := readCells(t, srv, job.ID)

	agg, code := getAggregate(t, srv, job.ID)
	if code != http.StatusOK {
		t.Fatalf("GET aggregate = %d", code)
	}
	if agg.ID != job.ID || agg.State != StateDone {
		t.Fatalf("aggregate header = %+v", agg)
	}
	wantGroups := len(spec.Algorithms) * len(spec.Workloads) * len(spec.Sizes)
	if len(agg.Groups) != wantGroups {
		t.Fatalf("groups = %d, want %d", len(agg.Groups), wantGroups)
	}
	// Cross-check one group against the raw cells.
	g := agg.Groups[0]
	if g.Algorithm != "graph-to-star" || g.Workload != "line" || g.N != 16 {
		t.Fatalf("first group = %+v, want canonical order", g)
	}
	var sum, minR, maxR float64
	count := 0
	for _, c := range cells {
		if c.Algorithm == g.Algorithm && c.Workload == g.Workload && c.N == g.N {
			r := float64(c.Outcome.Rounds)
			if count == 0 || r < minR {
				minR = r
			}
			if count == 0 || r > maxR {
				maxR = r
			}
			sum += r
			count++
		}
	}
	if g.Seeds != count || g.Seeds != len(spec.Seeds) || g.Errors != 0 {
		t.Fatalf("group seeds = %d errors = %d, want %d/0", g.Seeds, g.Errors, count)
	}
	if g.LeadersOK != g.Seeds {
		t.Fatalf("leaders_ok = %d, want %d", g.LeadersOK, g.Seeds)
	}
	if want := sum / float64(count); g.Rounds.Mean != want || g.Rounds.Min != minR || g.Rounds.Max != maxR {
		t.Fatalf("rounds stat = %+v, want mean %v min %v max %v", g.Rounds, want, minR, maxR)
	}
	if g.Rounds.Min > g.Rounds.Mean || g.Rounds.Mean > g.Rounds.Max {
		t.Fatalf("rounds stat not ordered: %+v", g.Rounds)
	}
	if g.TotalMessages.Mean <= 0 {
		t.Fatalf("message stat empty: %+v", g.TotalMessages)
	}

	// Unknown sweep → 404; running sweep → 409. The 409 assertion
	// must tolerate the sweep winning the race and finishing first.
	if _, code := getAggregate(t, srv, "sweep-999999-ffffffff"); code != http.StatusNotFound {
		t.Fatalf("aggregate of unknown sweep = %d, want 404", code)
	}
	running, _ := postSweepJob(t, srv, slowSweepSpec(7, 8, 9, 10))
	_, code = getAggregate(t, srv, running.ID)
	switch st := getSweepStatus(t, srv, running.ID); {
	case code == http.StatusConflict:
	case code == http.StatusOK && st.State == StateDone:
		t.Log("sweep finished before the aggregate call; 200 is correct")
	default:
		t.Fatalf("aggregate of %s sweep = %d", st.State, code)
	}
	awaitSweepState(t, srv, running.ID, StateDone)
}

// TestSweepAggregateNonTerminalReturns409 is the regression test for
// the endpoint's status mapping: aggregating a sweep that has not
// reached a terminal state is a client-resolvable conflict — 409 with
// the ErrSweepRunning message — never a 500. Only a genuine server
// fault may produce 500.
func TestSweepAggregateNonTerminalReturns409(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 1, SweepWorkers: 1})

	job, code := postSweepJob(t, srv, slowSweepSpec(1, 2, 3, 4))
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + job.ID + "/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusInternalServerError {
		t.Fatalf("non-terminal aggregate returned 500: %s", body)
	}
	switch st := getSweepStatus(t, srv, job.ID); {
	case resp.StatusCode == http.StatusConflict:
		if !strings.Contains(string(body), "still running") {
			t.Fatalf("409 body = %s, want the ErrSweepRunning message", body)
		}
	case resp.StatusCode == http.StatusOK && st.State == StateDone:
		t.Log("sweep finished before the aggregate call; 200 is correct")
	default:
		t.Fatalf("aggregate of %s sweep = %d: %s", st.State, resp.StatusCode, body)
	}

	// Once terminal — even canceled — the endpoint serves 200 with the
	// cells that did finish.
	if err := m.CancelSweep(job.ID); err != nil && !errors.Is(err, ErrNotRunning) {
		t.Fatal(err)
	}
	awaitSweepState(t, srv, job.ID, StateDone, StateCanceled)
	if _, code := getAggregate(t, srv, job.ID); code != http.StatusOK {
		t.Fatalf("aggregate after terminal state = %d, want 200", code)
	}
}

// TestManagerCloseCancelsRunningSweeps pins the graceful-shutdown
// contract: Close must not stall behind a sweep that could legally
// run for SweepTimeLimit — it cancels live sweeps and returns once
// the fleet aborts between rounds.
func TestManagerCloseCancelsRunningSweeps(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, SweepWorkers: 1})

	j, err := m.SubmitSweep(context.Background(), slowSweepSpec(1, 2, 3, 4, 5, 6, 7, 8))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	m.Close()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("Close stalled %s behind a running sweep", elapsed)
	}
	if st := j.State(); st != StateCanceled {
		t.Fatalf("sweep state after Close = %s, want canceled", st)
	}
	if st := j.Status(); st.Summary == nil {
		t.Fatal("canceled sweep must still carry a summary")
	}
}

func TestSweepRetentionBoundsSweepTable(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 1, RetainSweeps: 2})
	defer m.Close()

	small := SweepSpec{
		Algorithms: []string{"flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{8},
	}
	var last *SweepJob
	for seed := int64(0); seed < 4; seed++ {
		small.Seeds = []int64{seed}
		j, err := m.SubmitSweep(context.Background(), small)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for j.State() != StateDone {
			if time.Now().After(deadline) {
				t.Fatalf("sweep stuck in %s", j.State())
			}
			time.Sleep(time.Millisecond)
		}
		last = j
	}
	if got := len(m.Sweeps()); got != 2 {
		t.Fatalf("sweep table holds %d jobs, want 2 (retention bound)", got)
	}
	if _, ok := m.GetSweep(last.ID); !ok {
		t.Error("newest finished sweep must survive retention")
	}
}
