package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postSweep posts a sweep spec and returns the parsed NDJSON stream:
// per-cell lines plus the trailing summary.
func postSweep(t *testing.T, srv *httptest.Server, spec SweepSpec) ([]SweepCell, SweepSummary, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, SweepSummary{}, resp.StatusCode
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var cells []SweepCell
	var summary SweepSummary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if sawSummary {
			t.Fatalf("line after summary: %q", line)
		}
		if strings.Contains(line, `"done"`) {
			if err := json.Unmarshal([]byte(line), &summary); err != nil {
				t.Fatalf("bad summary %q: %v", line, err)
			}
			sawSummary = true
			continue
		}
		var cell SweepCell
		if err := json.Unmarshal([]byte(line), &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		cells = append(cells, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return cells, summary, resp.StatusCode
}

func sweepSpec() SweepSpec {
	return SweepSpec{
		Algorithms: []string{"graph-to-star", "flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{16, 24},
		Seeds:      []int64{1, 2},
	}
}

func TestSweepE2EStreamsEveryCellInOrder(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 1, SweepWorkers: 3})

	spec := sweepSpec()
	cells, summary, code := postSweep(t, srv, spec)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	wantCells := len(spec.Algorithms) * len(spec.Workloads) * len(spec.Sizes) * len(spec.Seeds)
	if len(cells) != wantCells {
		t.Fatalf("streamed %d cells, want %d", len(cells), wantCells)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d: stream not in canonical order", i, c.Index)
		}
		if c.Error != "" || c.Outcome == nil {
			t.Fatalf("cell %d: %+v", i, c)
		}
		if c.FromCache {
			t.Fatalf("cell %d from cache on a cold manager", i)
		}
		if !c.Outcome.LeaderOK {
			t.Fatalf("cell %d outcome: %+v", i, c.Outcome)
		}
	}
	// Canonical order: algorithm-major; first half graph-to-star.
	if cells[0].Algorithm != "graph-to-star" || cells[wantCells-1].Algorithm != "flood" {
		t.Fatalf("order wrong: first %s, last %s", cells[0].Algorithm, cells[wantCells-1].Algorithm)
	}
	if !summary.Done || summary.Cells != wantCells || summary.Executed != wantCells ||
		summary.CacheHits != 0 || summary.Errors != 0 {
		t.Fatalf("summary = %+v", summary)
	}
	if got := m.RunsExecuted(); got != int64(wantCells) {
		t.Fatalf("RunsExecuted = %d, want %d", got, wantCells)
	}
}

func TestSweepE2EPerCellCacheHits(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	spec := sweepSpec()

	// Seed the cache with ONE cell via the individual-run path: the
	// canonical runkey makes the sweep reuse it.
	sub, code := postRun(t, srv, RunSpec{Algorithm: "flood", Workload: "line", N: 16, Seed: 1})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	awaitDone(t, srv, sub.Job.ID)
	if m.RunsExecuted() != 1 {
		t.Fatalf("RunsExecuted = %d after priming run", m.RunsExecuted())
	}

	cells, summary, _ := postSweep(t, srv, spec)
	wantCells := 8
	hits := 0
	for _, c := range cells {
		if c.FromCache {
			hits++
			if c.Algorithm != "flood" || c.N != 16 || c.Seed != 1 {
				t.Fatalf("unexpected cache hit: %+v", c)
			}
		}
	}
	if hits != 1 || summary.CacheHits != 1 {
		t.Fatalf("cache hits = %d (summary %d), want 1", hits, summary.CacheHits)
	}
	if summary.Executed != wantCells-1 {
		t.Fatalf("executed = %d, want %d", summary.Executed, wantCells-1)
	}
	if got := m.RunsExecuted(); got != int64(wantCells) { // 1 priming + 7 fresh
		t.Fatalf("RunsExecuted = %d, want %d", got, wantCells)
	}

	// A repeated identical sweep re-simulates nothing.
	_, summary2, _ := postSweep(t, srv, spec)
	if summary2.CacheHits != wantCells || summary2.Executed != 0 {
		t.Fatalf("repeat sweep summary = %+v, want all cache hits", summary2)
	}
	if got := m.RunsExecuted(); got != int64(wantCells) {
		t.Fatalf("RunsExecuted grew to %d on a fully cached sweep", got)
	}

	// And the reverse direction: a run submitted after the sweep hits
	// the sweep-populated cache, including round replay.
	hit, code := postRun(t, srv, RunSpec{Algorithm: "graph-to-star", Workload: "line", N: 24, Seed: 2})
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("post-sweep run not served from cache: code=%d cached=%v", code, hit.Cached)
	}
	if rounds := readRounds(t, srv, hit.Job.ID); len(rounds) != hit.Job.Outcome.Rounds {
		t.Fatalf("sweep-cached run replayed %d rounds, want %d", len(rounds), hit.Job.Outcome.Rounds)
	}
}

func TestSweepE2EValidation(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, MaxSweepCells: 4, MaxN: 64})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	bad := []string{
		`{not json`,
		`{"algorithms":["nope"],"workloads":["line"],"sizes":[8],"seeds":[1]}`,
		`{"algorithms":["flood"],"workloads":["nope"],"sizes":[8],"seeds":[1]}`,
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[1],"seeds":[1]}`,
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[128],"seeds":[1]}`,          // > MaxN
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8],"seeds":[]}`,             // empty grid
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8,16,24],"seeds":[1,2]}`,    // 6 > MaxSweepCells
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8],"seeds":[1],"bogus":1}`,  // unknown field
		`{"algorithms":["flood"],"workloads":["line"],"sizes":[8],"seeds":[1],"max_rounds":-1}`,
	}
	for i, body := range bad {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("bad spec %d: code = %d, want 400", i, code)
		}
	}
	// The limit is inclusive: exactly MaxSweepCells cells pass.
	if code := post(`{"algorithms":["flood"],"workloads":["line"],"sizes":[8,16],"seeds":[1,2]}`); code != http.StatusOK {
		t.Errorf("4-cell sweep rejected with %d", code)
	}
}

func TestSweepCoalescesWithInFlightRun(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 1, SweepWorkers: 1})

	// Start a slow run, then sweep the same cell while it is still in
	// flight: the sweep must wait for the job instead of re-simulating.
	spec := slowSpec(61)
	sub, code := postRun(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	cells, summary, code := postSweep(t, srv, SweepSpec{
		Algorithms: []string{spec.Algorithm},
		Workloads:  []string{spec.Workload},
		Sizes:      []int{spec.N},
		Seeds:      []int64{spec.Seed},
	})
	if code != http.StatusOK {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	st := awaitDone(t, srv, sub.Job.ID)
	if len(cells) != 1 || cells[0].Error != "" || !cells[0].FromCache {
		t.Fatalf("cells = %+v, want one coalesced cache-served cell", cells)
	}
	if *cells[0].Outcome != *st.Outcome {
		t.Fatalf("coalesced outcome differs: %+v vs %+v", cells[0].Outcome, st.Outcome)
	}
	if summary.Executed != 0 || summary.CacheHits != 1 {
		t.Fatalf("summary = %+v", summary)
	}
	if runs := m.RunsExecuted(); runs != 1 {
		t.Fatalf("RunsExecuted = %d, want 1 — the sweep re-simulated an in-flight spec", runs)
	}
}

func TestSweepCellsHonorRunTimeLimit(t *testing.T) {
	t.Parallel()
	// A 10ms per-run budget against a run that takes hundreds of
	// milliseconds (the slowSpec workload): the cell is aborted
	// between rounds and reported as that cell's error, and the sweep
	// still completes with a summary — no indefinite engine-fleet
	// occupancy.
	srv, _ := newTestServer(t, Config{Workers: 1, RunTimeLimit: 10 * time.Millisecond})
	spec := SweepSpec{
		Algorithms: []string{"graph-to-star"},
		Workloads:  []string{"line"},
		Sizes:      []int{4096},
		Seeds:      []int64{1},
	}
	cells, summary, code := postSweep(t, srv, spec)
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if len(cells) != 1 || cells[0].Error == "" {
		t.Fatalf("cells = %+v", cells)
	}
	if !strings.Contains(cells[0].Error, "time limit") {
		t.Fatalf("cell error %q does not mention the time limit", cells[0].Error)
	}
	if !summary.Done || summary.Errors != 1 {
		t.Fatalf("summary = %+v", summary)
	}
}

func TestSweepErrorsReportedPerCell(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})
	// MaxRounds 1 cannot finish graph-to-star: the cell errs, the
	// sweep completes.
	spec := SweepSpec{
		Algorithms: []string{"graph-to-star", "flood"},
		Workloads:  []string{"line"},
		Sizes:      []int{8},
		Seeds:      []int64{1},
		MaxRounds:  1,
	}
	cells, summary, code := postSweep(t, srv, spec)
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Error == "" || cells[0].Outcome != nil {
		t.Fatalf("round-limited star cell: %+v", cells[0])
	}
	if cells[1].Error != "" { // flood on line(8) finishes within 8 rounds? No: needs 7 rounds with limit 1 — also errs.
		t.Logf("flood cell err: %s", cells[1].Error)
	}
	if !summary.Done || summary.Errors == 0 {
		t.Fatalf("summary = %+v", summary)
	}
}
