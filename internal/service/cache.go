package service

import (
	"container/list"
	"sync"

	"adnet/internal/expt"
	"adnet/internal/temporal"
)

// cacheEntry is the replayable product of one successful run: the
// unified outcome plus the per-round statistics and topology delta
// frames, so cache hits can serve the NDJSON round and topology
// streams as well as the summary.
type cacheEntry struct {
	Outcome expt.Outcome
	Rounds  []temporal.RoundStats
	Topo    []TopologyFrame
}

// resultCache is a fixed-capacity LRU over cacheEntry keyed by
// RunSpec.Key(). Only successful runs are stored — failures may be
// transient (time limits) and are cheap to refuse to cache.
type resultCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   int64
	misses int64
}

type lruItem struct {
	key   string
	entry cacheEntry
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached entry and promotes it to most recently used.
func (c *resultCache) Get(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return cacheEntry{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Add stores (or refreshes) an entry, evicting the least recently
// used item when over capacity.
func (c *resultCache) Add(key string, e cacheEntry) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruItem).entry = e
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: e})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

// Stats reports (size, hits, misses).
func (c *resultCache) Stats() (int, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits, c.misses
}
