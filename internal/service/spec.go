// Package service turns the deterministic simulation engine
// (internal/sim + internal/expt) into an always-on backend: a bounded
// job manager executes canonical RunSpecs, an LRU cache serves
// repeated specs without re-simulation (runs are deterministic by
// seed), and per-round statistics are published to stream subscribers
// via sim.WithRoundHook. The HTTP surface over this lives in api.go
// and is served by cmd/adnet-server.
package service

import (
	"fmt"

	"adnet/internal/dynamics"
	"adnet/internal/expt"
	"adnet/internal/runkey"
)

// DefaultMaxN caps spec sizes unless the manager configures its own
// limit; it keeps a single request from monopolizing the pool.
const DefaultMaxN = 1 << 16

// RunSpec is the canonical description of one simulation run. Two
// specs with equal Key() produce identical Outcomes: every workload
// generator is seeded and the engine is deterministic regardless of
// parallelism, which is what makes result caching sound.
type RunSpec struct {
	Algorithm string `json:"algorithm"`
	Workload  string `json:"workload"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	// MaxRounds overrides the algorithm's default round limit when
	// positive. It is part of the cache key: a tighter limit can turn
	// a completing run into a round-limit failure.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Dynamics, when present, attaches an adversarial environment
	// (internal/dynamics) to the run. Its canonical key joins the
	// cache key, so perturbed runs never collide with clean ones.
	Dynamics *dynamics.Spec `json:"dynamics,omitempty"`
}

// Validate checks the spec against the known algorithm and workload
// names and the size cap (maxN; 0 means DefaultMaxN).
func (s RunSpec) Validate(maxN int) error {
	if !contains(expt.Algorithms(), s.Algorithm) {
		return fmt.Errorf("unknown algorithm %q (want one of %v)", s.Algorithm, expt.Algorithms())
	}
	if !contains(expt.Workloads(), s.Workload) {
		return fmt.Errorf("unknown workload %q (want one of %v)", s.Workload, expt.Workloads())
	}
	if maxN <= 0 {
		maxN = DefaultMaxN
	}
	if s.N < 2 {
		return fmt.Errorf("n must be at least 2, got %d", s.N)
	}
	if s.N > maxN {
		return fmt.Errorf("n=%d exceeds the service limit %d", s.N, maxN)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("max_rounds must be non-negative, got %d", s.MaxRounds)
	}
	if s.Dynamics != nil {
		if err := s.Dynamics.Validate(); err != nil {
			return err
		}
		if s.Algorithm == expt.AlgoCentralized {
			return fmt.Errorf("dynamics do not apply to %s (no simulation to perturb)", expt.AlgoCentralized)
		}
	}
	return nil
}

// Key is the stable cache key: the canonical runkey rendering of
// every field that influences the simulation outcome. Sweep cells
// produce the same keys (see cellKey), so a sweep and an individual
// run share cache entries.
func (s RunSpec) Key() string {
	return runkey.WithDynamics(
		runkey.Key(s.Algorithm, s.Workload, s.N, s.Seed, s.MaxRounds), dynKey(s.Dynamics))
}

// keyHash is a short stable digest of the cache key, used in job IDs.
func (s RunSpec) keyHash() string {
	return runkey.ShortHash(s.Key())
}

// cellKey is the canonical key of a sweep grid cell — by construction
// identical to the RunSpec key for the same parameters.
func cellKey(c expt.Cell) string {
	return runkey.WithDynamics(
		runkey.Key(c.Algorithm, c.Workload, c.N, c.Seed, c.MaxRounds), dynKey(c.Dynamics))
}

// dynKey renders a dynamics spec's canonical key, "" when absent —
// which is what keeps every dynamics-free key byte-identical to its
// pre-dynamics form.
func dynKey(d *dynamics.Spec) string {
	if d == nil {
		return ""
	}
	return d.Key()
}

// SweepSpec is the JSON-facing description of a sweep grid: the
// cartesian product of algorithms × workloads × sizes × seeds, with an
// optional shared round-limit override.
type SweepSpec struct {
	Algorithms []string `json:"algorithms"`
	Workloads  []string `json:"workloads"`
	Sizes      []int    `json:"sizes"`
	Seeds      []int64  `json:"seeds"`
	MaxRounds  int      `json:"max_rounds,omitempty"`
	// Dynamics, when present, attaches the same adversarial
	// environment spec to every cell of the grid.
	Dynamics *dynamics.Spec `json:"dynamics,omitempty"`
}

// Expt converts the spec to the harness-level grid.
func (s SweepSpec) Expt() expt.SweepSpec {
	return expt.SweepSpec{
		Algorithms: s.Algorithms,
		Workloads:  s.Workloads,
		Sizes:      s.Sizes,
		Seeds:      s.Seeds,
		MaxRounds:  s.MaxRounds,
		Dynamics:   s.Dynamics,
	}
}

// Key is the canonical runkey rendering of the grid, hashed into
// sweep job IDs.
func (s SweepSpec) Key() string {
	return runkey.WithDynamics(
		runkey.SweepKey(s.Algorithms, s.Workloads, s.Sizes, s.Seeds, s.MaxRounds), dynKey(s.Dynamics))
}

// Validate checks names, sizes against maxN (0 means DefaultMaxN) and
// the grid volume against maxCells.
func (s SweepSpec) Validate(maxN, maxCells int) error {
	es := s.Expt()
	if err := es.Validate(); err != nil {
		return err
	}
	if maxN <= 0 {
		maxN = DefaultMaxN
	}
	for _, n := range s.Sizes {
		if n > maxN {
			return fmt.Errorf("n=%d exceeds the service limit %d", n, maxN)
		}
	}
	if cells := es.NumCells(); maxCells > 0 && cells > maxCells {
		return fmt.Errorf("sweep has %d cells, exceeding the service limit %d", cells, maxCells)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
