package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adnet/internal/expt"
	"adnet/internal/journal"
	"adnet/internal/runkey"
)

// journaledCells parses a spec's journal off disk and returns its
// done-set size — the cells a resumed sweep must NOT re-execute.
func journaledCells(t *testing.T, dataDir string, spec SweepSpec) int {
	t.Helper()
	path := filepath.Join(dataDir, "sweeps", runkey.Hash(spec.Key())+".wal")
	recs, _, err := journal.ReadAll(path)
	if err != nil {
		t.Fatalf("read journal %s: %v", path, err)
	}
	st, err := parseJournal(path, recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.header == nil {
		t.Fatalf("journal %s has no header", path)
	}
	if st.done != nil {
		t.Fatalf("interrupted sweep's journal carries a terminal record: %+v", st.done)
	}
	return len(st.cells)
}

// TestSweepJournalResumeAfterInterruption is the in-process version of
// the e2e crash test: a journaled sweep interrupted mid-grid (Close
// cancels it without a terminal record, exactly like a kill would) is
// resubmitted by Recover on a fresh manager over the same data dir,
// re-executes only the missing cells, and folds to an aggregate
// byte-identical to an uninterrupted single-process run.
func TestSweepJournalResumeAfterInterruption(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := slowSweepSpec(1, 2, 3, 4, 5, 6, 7, 8)
	total := spec.Expt().NumCells()

	m1 := NewManager(Config{Workers: 1, SweepWorkers: 1, DataDir: dir})
	j1, err := m1.SubmitSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the sweep get provably mid-grid, then interrupt it.
	deadline := time.Now().Add(60 * time.Second)
	for j1.Status().CellsDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first cell never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m1.Close()

	done := journaledCells(t, dir, spec)
	if done == 0 || done >= total {
		t.Fatalf("journal holds %d of %d cells; the test needs a mid-grid interruption", done, total)
	}

	m2 := NewManager(Config{Workers: 1, SweepWorkers: 1, DataDir: dir})
	defer m2.Close()
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Recover resubmits asynchronously; find the resumed job.
	var resumed *SweepJob
	deadline = time.Now().Add(60 * time.Second)
	for resumed == nil {
		if time.Now().After(deadline) {
			t.Fatal("Recover never resubmitted the interrupted sweep")
		}
		for _, st := range m2.Sweeps() {
			if j, ok := m2.GetSweep(st.ID); ok {
				resumed = j
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline = time.Now().Add(120 * time.Second)
	for resumed.State() != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("resumed sweep stuck in %s", resumed.State())
		}
		if s := resumed.State(); s == StateFailed || s == StateCanceled {
			t.Fatalf("resumed sweep ended %s", s)
		}
		time.Sleep(2 * time.Millisecond)
	}

	st := resumed.Status()
	if !st.Resumed {
		t.Error("resumed job does not report resumed=true")
	}
	if st.Summary == nil {
		t.Fatal("no summary on the resumed sweep")
	}
	if st.Summary.Replayed != done {
		t.Errorf("summary replayed = %d, want the journal's %d cells", st.Summary.Replayed, done)
	}
	if st.Summary.Errors != 0 {
		t.Errorf("resumed sweep reported %d cell errors", st.Summary.Errors)
	}
	if st.Summary.Executed != total-done {
		t.Errorf("executed = %d, want only the %d missing cells", st.Summary.Executed, total-done)
	}
	if got := m2.RunsExecuted(); got != int64(total-done) {
		t.Errorf("RunsExecuted = %d, want %d — replayed cells must not re-simulate", got, total-done)
	}

	// The merged aggregate is byte-identical to an uninterrupted run.
	groups, err := resumed.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(groups)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := expt.AggregateSweep(spec.Expt())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed aggregate diverged from uninterrupted reference:\n%s\nvs\n%s", got, want)
	}

	// The finished resume wrote its terminal record: a third startup
	// has nothing to resume.
	m2.Close()
	path := filepath.Join(dir, "sweeps", runkey.Hash(spec.Key())+".wal")
	recs, _, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	stj, err := parseJournal(path, recs)
	if err != nil {
		t.Fatal(err)
	}
	if stj.done == nil {
		t.Fatal("finished resumed sweep left no terminal record")
	}
	m3 := NewManager(Config{Workers: 1, DataDir: dir})
	defer m3.Close()
	if err := m3.Recover(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := len(m3.Sweeps()); n != 0 {
		t.Fatalf("recovery after a finished sweep resubmitted %d jobs, want 0", n)
	}
}

// TestRecoverRefusesCorruptJournal pins the strictness split: a
// mid-file checksum mismatch (not a torn tail) must fail Recover — and
// with it startup — naming the file and offset, never silently serve a
// journal state that never existed.
func TestRecoverRefusesCorruptJournal(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sweepDir := filepath.Join(dir, "sweeps")
	if err := os.MkdirAll(sweepDir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec := sweepSpec()
	path := filepath.Join(sweepDir, runkey.Hash(spec.Key())+".wal")
	lg, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Replay(func(journal.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	header, _ := json.Marshal(sweepHeader{Key: spec.Key(), Spec: spec, Cells: spec.Expt().NumCells()})
	payload, _ := json.Marshal(cellRecord{RunKey: "k"})
	for _, rec := range [][2]any{{recHeader, header}, {recCell, payload}, {recCell, payload}} {
		if err := lg.Append(rec[0].(byte), rec[1].([]byte)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the MIDDLE record: an interior checksum
	// failure, not a torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	middle := 8 + len(header) + 1 + 8 + 4 // into record 1's payload
	raw[middle] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewManager(Config{Workers: 1, DataDir: dir})
	defer m.Close()
	err = m.Recover()
	if err == nil {
		t.Fatal("Recover accepted a journal with an interior checksum failure")
	}
	if !strings.Contains(err.Error(), "corrupt at offset") || !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the corruption offset and file", err)
	}
}
