package service

import (
	"log/slog"
	"time"

	"adnet/internal/expt"
	"adnet/internal/obs"
	"adnet/internal/sim"
)

// metrics holds the service layer's instruments. Every Manager owns
// its own set, registered on the Config.Metrics registry — there is
// no package-global state, so parallel Managers (tests, in-process
// fleets) never share counters.
type metrics struct {
	httpm *obs.HTTPMetrics

	// Job lifecycle. Submissions are counted by how they resolved
	// (new/cached/joined/rejected); jobs and sweeps by the terminal
	// state they reached.
	runSubmissions *obs.CounterVec
	runJobs        *obs.CounterVec
	sweepJobs      *obs.CounterVec
	// sweepRejections counts POST /v1/sweeps turned away by the
	// concurrent-sweep gate (the 503s load-shedding emits).
	sweepRejections *obs.Counter
	sweepsActive    *obs.Gauge

	// Sweep execution. Cells are counted by status; durations and
	// utilization are folded in once per cell / once per grid.
	sweepCells  *obs.CounterVec
	cellSeconds *obs.Histogram
	// gridUtilization is busy-time / (workers × wall-clock) of one
	// locally executed grid — how well the engine fleet was kept fed.
	gridUtilization *obs.Histogram

	// Dynamics environments: runs executed under an adversarial
	// environment and the disruption they absorbed, folded once per
	// finished run/cell from the outcome — never from the round loop.
	dynRuns             *obs.Counter
	dynEnvActivations   *obs.Counter
	dynEnvDeactivations *obs.Counter
	dynCrashes          *obs.Counter
	dynRestarts         *obs.Counter

	// Engine digests, folded once per run by the run observer; the
	// round hot loop is never touched.
	engineRuns       *obs.Counter
	engineRounds     *obs.Histogram
	engineRoundSecs  *obs.Histogram
	engineEfficiency *obs.Histogram

	// Broadcast hub. Producer side: one encode per published frame
	// (latency histogram + counter by stream kind), re-encodes for
	// subscribers replaying evicted ranges, frames evicted by the
	// retention bound. Subscriber side: live subscriber gauge, frames
	// and bytes fanned out, subscribers dropped by the backpressure
	// policy (write deadline exceeded or connection gone mid-batch).
	streamEncoded     *obs.CounterVec
	streamEncodeSecs  *obs.Histogram
	streamReencoded   *obs.CounterVec
	streamEvicted     *obs.CounterVec
	streamSubscribers *obs.GaugeVec
	streamFramesSent  *obs.CounterVec
	streamBytesSent   *obs.CounterVec
	streamDropped     *obs.CounterVec

	// Sweep journal (durability layer). Records/bytes count appends;
	// replayed cells/shards prove, at scrape time, that a resumed
	// sweep re-executed only its missing run keys; resumed sweeps
	// count journals picked up with prior work in them; torn records
	// count truncated final records tolerated during replay.
	journalRecords        *obs.CounterVec
	journalBytes          *obs.Counter
	journalReplayedCells  *obs.Counter
	journalReplayedShards *obs.Counter
	journalResumedSweeps  *obs.Counter
	journalTorn           *obs.Counter

	// Per-kind producer hooks handed to the streams at construction.
	roundsObs, cellsObs, topoObs, topoPackedObs *streamObs
	// Per-kind fan-out-side series, resolved once for the handlers.
	roundsSub, cellsSub, topoSub, topoPackedSub subscriberObs
}

// Stream kind label values: one per NDJSON endpoint format.
const (
	streamRounds     = "rounds"
	streamCells      = "cells"
	streamTopo       = "topology"
	streamTopoPacked = "topology_packed"
)

func newMetrics(reg *obs.Registry, logger *slog.Logger) *metrics {
	m := &metrics{
		httpm: obs.NewHTTPMetrics(reg, logger),
		runSubmissions: reg.CounterVec("adnet_run_submissions_total",
			"Run submissions by resolution: new (enqueued), cached (served from the result cache), joined (coalesced with an identical in-flight run), rejected (queue full).",
			"result"),
		runJobs: reg.CounterVec("adnet_run_jobs_total",
			"Run jobs that reached a terminal state, by state.",
			"state"),
		sweepJobs: reg.CounterVec("adnet_sweep_jobs_total",
			"Sweep jobs that reached a terminal state, by state.",
			"state"),
		sweepRejections: reg.Counter("adnet_sweep_gate_rejections_total",
			"Sweep submissions rejected by the concurrent-sweep gate."),
		sweepsActive: reg.Gauge("adnet_sweeps_active",
			"Sweep jobs currently admitted through the gate."),
		sweepCells: reg.CounterVec("adnet_sweep_cells_total",
			"Sweep cells finished, by status: ok (executed), cached (served without running), error.",
			"status"),
		cellSeconds: reg.Histogram("adnet_sweep_cell_duration_seconds",
			"Wall-clock duration of executed sweep cells (cache hits excluded).",
			obs.LatencyBuckets()),
		gridUtilization: reg.Histogram("adnet_sweep_grid_utilization_ratio",
			"Per-grid engine-fleet utilization: total cell busy time over workers times wall-clock.",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}),
		dynRuns: reg.Counter("adnet_dynamics_runs_total",
			"Runs executed under an adversarial dynamics environment (runs and sweep cells with a dynamics spec)."),
		dynEnvActivations: reg.Counter("adnet_dynamics_env_activations_total",
			"Edges activated by dynamics environments, summed over finished runs."),
		dynEnvDeactivations: reg.Counter("adnet_dynamics_env_deactivations_total",
			"Edges cut by dynamics environments, summed over finished runs."),
		dynCrashes: reg.Counter("adnet_dynamics_crashes_total",
			"Node crashes injected by dynamics environments, summed over finished runs."),
		dynRestarts: reg.Counter("adnet_dynamics_restarts_total",
			"Node restarts injected by dynamics environments, summed over finished runs."),
		engineRuns: reg.Counter("adnet_engine_runs_total",
			"Simulations executed to completion or failure."),
		engineRounds: reg.Histogram("adnet_engine_rounds_per_run",
			"Completed rounds per simulation run.",
			obs.ExpBuckets(1, 2, 16)),
		engineRoundSecs: reg.Histogram("adnet_engine_round_duration_seconds",
			"Mean wall-clock time per round, folded in once per run.",
			obs.ExpBuckets(1e-7, 4, 12)),
		engineEfficiency: reg.Histogram("adnet_engine_parallel_efficiency_ratio",
			"Per-run intra-round parallel efficiency: worker busy time over workers times wall-clock (1.0 for sequential runs).",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}),
		streamEncoded: reg.CounterVec("adnet_stream_frames_encoded_total",
			"Frames encoded by the broadcast hub, by stream kind — one per published item regardless of subscriber count.",
			"stream"),
		streamEncodeSecs: reg.Histogram("adnet_stream_encode_duration_seconds",
			"Per-frame encode latency in the broadcast hub (all stream kinds).",
			obs.ExpBuckets(1e-7, 4, 12)),
		streamReencoded: reg.CounterVec("adnet_stream_frames_reencoded_total",
			"Frames re-encoded per subscriber replaying a range the retention bound already evicted, by stream kind.",
			"stream"),
		streamEvicted: reg.CounterVec("adnet_stream_frames_evicted_total",
			"Frames evicted from the shared frame log by the retention byte bound, by stream kind.",
			"stream"),
		streamSubscribers: reg.GaugeVec("adnet_stream_subscribers",
			"NDJSON subscribers currently attached, by stream kind.",
			"stream"),
		streamFramesSent: reg.CounterVec("adnet_stream_frames_sent_total",
			"Encoded frames fanned out to subscribers, by stream kind.",
			"stream"),
		streamBytesSent: reg.CounterVec("adnet_stream_bytes_sent_total",
			"Encoded bytes fanned out to subscribers, by stream kind.",
			"stream"),
		streamDropped: reg.CounterVec("adnet_stream_subscribers_dropped_total",
			"Subscribers dropped by the backpressure policy (write deadline exceeded or write error), by stream kind.",
			"stream"),
		journalRecords: reg.CounterVec("adnet_journal_records_total",
			"Sweep journal records appended, by kind (header, cell, shard, done).",
			"kind"),
		journalBytes: reg.Counter("adnet_journal_appended_bytes_total",
			"Payload bytes appended to sweep journals (framing excluded)."),
		journalReplayedCells: reg.Counter("adnet_journal_replayed_cells_total",
			"Grid cells answered from a sweep journal's done-set instead of executing."),
		journalReplayedShards: reg.Counter("adnet_journal_replayed_shards_total",
			"Coordinator shards served from a sweep journal instead of re-dispatching."),
		journalResumedSweeps: reg.Counter("adnet_journal_resumed_sweeps_total",
			"Sweep jobs that picked up prior work from an incomplete journal."),
		journalTorn: reg.Counter("adnet_journal_torn_records_total",
			"Torn final journal records truncated and tolerated during replay."),
	}
	m.roundsObs = m.streamObsFor(streamRounds)
	m.cellsObs = m.streamObsFor(streamCells)
	m.topoObs = m.streamObsFor(streamTopo)
	m.topoPackedObs = m.streamObsFor(streamTopoPacked)
	m.roundsSub = m.subscriberObsFor(streamRounds)
	m.cellsSub = m.subscriberObsFor(streamCells)
	m.topoSub = m.subscriberObsFor(streamTopo)
	m.topoPackedSub = m.subscriberObsFor(streamTopoPacked)
	return m
}

// streamObsFor resolves one kind's series once so the per-frame path
// is a pure Add/Observe.
func (mt *metrics) streamObsFor(kind string) *streamObs {
	encoded := mt.streamEncoded.With(kind)
	reencoded := mt.streamReencoded.With(kind)
	evictFrames := mt.streamEvicted.With(kind)
	encodeSecs := mt.streamEncodeSecs
	return &streamObs{
		encoded: func(d time.Duration, frameBytes int) {
			encoded.Inc()
			encodeSecs.Observe(d.Seconds())
		},
		reencoded: func(frames int) {
			reencoded.Add(int64(frames))
		},
		frameEvict: func(frames, bytes int) {
			evictFrames.Add(int64(frames))
		},
	}
}

// subscriberObs bundles the fan-out-side series for one stream kind,
// resolved once per connection by the streaming handlers.
type subscriberObs struct {
	subscribers *obs.Gauge
	frames      *obs.Counter
	bytes       *obs.Counter
	dropped     *obs.Counter
}

func (mt *metrics) subscriberObsFor(kind string) subscriberObs {
	return subscriberObs{
		subscribers: mt.streamSubscribers.With(kind),
		frames:      mt.streamFramesSent.With(kind),
		bytes:       mt.streamBytesSent.With(kind),
		dropped:     mt.streamDropped.With(kind),
	}
}

// registerManagerGauges binds scrape-time views of state the manager
// already tracks. Called once from NewManager, after the queue and
// cache exist.
func (m *Manager) registerManagerGauges(reg *obs.Registry) {
	reg.GaugeFunc("adnet_run_queue_depth",
		"Run jobs waiting for a worker.",
		func() float64 { return float64(len(m.queue)) })
	reg.GaugeFunc("adnet_run_queue_capacity",
		"Run queue capacity (QueueDepth).",
		func() float64 { return float64(cap(m.queue)) })
	reg.GaugeFunc("adnet_run_workers",
		"Size of the run worker pool.",
		func() float64 { return float64(m.cfg.Workers) })
	reg.GaugeFunc("adnet_jobs_tracked",
		"Run jobs in the table (live and retained).",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.jobs))
		})
	reg.GaugeFunc("adnet_sweeps_tracked",
		"Sweep jobs in the table (live and retained).",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.sweeps))
		})
	reg.CounterFunc("adnet_runs_executed_total",
		"Simulations actually executed by this server (cache hits and dedup joins excluded).",
		func() float64 { return float64(m.runsExecuted.Load()) })
	reg.CounterFunc("adnet_cache_hits_total",
		"Result-cache hits.",
		func() float64 { _, hits, _ := m.cache.Stats(); return float64(hits) })
	reg.CounterFunc("adnet_cache_misses_total",
		"Result-cache misses.",
		func() float64 { _, _, misses := m.cache.Stats(); return float64(misses) })
	reg.GaugeFunc("adnet_cache_entries",
		"Result-cache entries resident.",
		func() float64 { size, _, _ := m.cache.Stats(); return float64(size) })
}

// observeRun is the sim.WithRunObserver hook shared by run jobs and
// locally executed sweep cells: one fold per run, after the loop.
func (mt *metrics) observeRun(s sim.RunSummary) {
	mt.engineRuns.Inc()
	mt.engineRounds.Observe(float64(s.Rounds))
	if s.Rounds > 0 {
		mt.engineRoundSecs.Observe(s.Duration.Seconds() / float64(s.Rounds))
	}
	if eff := s.ParallelEfficiency(); eff > 0 {
		mt.engineEfficiency.Observe(eff)
	}
}

// observeDynamics folds one finished dynamics run's disruption totals.
func (mt *metrics) observeDynamics(out expt.Outcome) {
	mt.dynRuns.Inc()
	mt.dynEnvActivations.Add(int64(out.EnvActivations))
	mt.dynEnvDeactivations.Add(int64(out.EnvDeactivations))
	mt.dynCrashes.Add(int64(out.Crashes))
	mt.dynRestarts.Add(int64(out.Restarts))
}

// observeCell counts a finished cell and folds its cost in.
func (mt *metrics) observeCell(ran, fromCache bool, errText bool, dur float64) {
	switch {
	case errText:
		mt.sweepCells.With("error").Inc()
	case fromCache:
		mt.sweepCells.With("cached").Inc()
	default:
		mt.sweepCells.With("ok").Inc()
	}
	if ran {
		mt.cellSeconds.Observe(dur)
	}
}
