package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"adnet/internal/expt"
)

// NewHandler builds the HTTP surface over a Manager:
//
//	POST   /v1/runs             enqueue a RunSpec (JSON body) or hit the cache
//	GET    /v1/runs             list all known jobs
//	GET    /v1/runs/{id}        job status + Outcome when finished
//	GET    /v1/runs/{id}/rounds NDJSON stream of per-round stats (replay + live tail)
//	DELETE /v1/runs/{id}        cancel a queued or running job
//	POST   /v1/sweeps           run a SweepSpec grid, NDJSON per-cell stream
//	GET    /v1/algorithms       runnable algorithm names
//	GET    /v1/workloads        initial-network family names
//	GET    /healthz             liveness + pool/cache counters
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var spec RunSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, cached, err := m.Submit(spec)
		switch {
		case err == nil:
		case errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		default:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		code := http.StatusAccepted
		if cached {
			code = http.StatusOK
		}
		writeJSON(w, code, submitResponse{Job: job.Status(), Cached: cached})
	})
	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := m.Cancel(r.PathValue("id"))
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusConflict, err)
		}
	})
	mux.HandleFunc("GET /v1/runs/{id}/rounds", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			// Push the status line now: the first batch may be a
			// long Wait away and clients time out on a silent start.
			flusher.Flush()
		}
		enc := json.NewEncoder(w)
		cursor := 0
		for {
			batch, ok := job.Stream().Wait(r.Context(), cursor)
			if !ok {
				return
			}
			for _, rs := range batch {
				if err := enc.Encode(rs); err != nil {
					return
				}
			}
			cursor += len(batch)
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec SweepSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sweep, err := m.PrepareSweep(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		started := false
		start := func() {
			if started {
				return
			}
			started = true
			w.WriteHeader(http.StatusOK)
			if flusher != nil {
				flusher.Flush()
			}
		}
		summary, err := sweep.Run(r.Context(), func(cell SweepCell) {
			start()
			_ = enc.Encode(cell)
			if flusher != nil {
				flusher.Flush()
			}
		})
		if err != nil && !started {
			// Nothing streamed yet: a proper status line is still possible.
			switch {
			case errors.Is(err, ErrSweepBusy):
				writeError(w, http.StatusServiceUnavailable, err)
			case r.Context().Err() != nil:
				// Client is gone; nothing useful to write.
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		start()
		_ = enc.Encode(summary)
	})
	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, expt.Algorithms())
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, expt.Workloads())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: m.Stats()})
	})
	return mux
}

type submitResponse struct {
	Job    JobStatus `json:"job"`
	Cached bool      `json:"cached"`
}

type healthResponse struct {
	Status string `json:"status"`
	Stats  Stats  `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encode errors after the status line is committed can only be
	// surfaced by aborting the connection; let the client see EOF.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
