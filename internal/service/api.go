package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"adnet/internal/expt"
	"adnet/internal/fleet"
	"adnet/internal/obs"
)

// API error codes: the stable vocabulary of the v1 error envelope.
// Every error response is {"error":{"code","message","request_id"}} —
// clients branch on code, log message, and correlate with request_id;
// the HTTP status is derived from the code via codeStatus, never
// chosen ad hoc per handler.
const (
	codeInvalidRequest  = "invalid_request"
	codeInvalidCursor   = "invalid_cursor"
	codeNotFound        = "not_found"
	codeAlreadyDone     = "already_done"
	codeSweepRunning    = "sweep_running"
	codeQueueFull       = "queue_full"
	codeSweepBusy       = "sweep_busy"
	codeShuttingDown    = "shutting_down"
	codeWorkerUnhealthy = "worker_unhealthy"
	codeInternal        = "internal"
)

// codeStatus is the single code→status mapping, pinned by
// TestErrorCodeStatusTable: adding a code without a status (or
// changing a mapping) is an API contract change and must show up in
// the test diff.
var codeStatus = map[string]int{
	codeInvalidRequest:  http.StatusBadRequest,
	codeInvalidCursor:   http.StatusBadRequest,
	codeNotFound:        http.StatusNotFound,
	codeAlreadyDone:     http.StatusConflict,
	codeSweepRunning:    http.StatusConflict,
	codeQueueFull:       http.StatusServiceUnavailable,
	codeSweepBusy:       http.StatusServiceUnavailable,
	codeShuttingDown:    http.StatusServiceUnavailable,
	codeWorkerUnhealthy: http.StatusBadGateway,
	codeInternal:        http.StatusInternalServerError,
}

// ErrorBody is the inner object of the v1 error envelope.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// writeAPIError renders err under the v1 envelope: the status comes
// from codeStatus, the request ID from the middleware-assigned
// X-Adnet-Request-Id already on r's context.
func writeAPIError(w http.ResponseWriter, r *http.Request, code string, err error) {
	status, ok := codeStatus[code]
	if !ok {
		code, status = codeInternal, http.StatusInternalServerError
	}
	body := ErrorBody{Code: code, Message: err.Error()}
	if r != nil {
		body.RequestID = obs.RequestIDFromContext(r.Context())
	}
	writeJSON(w, status, errorResponse{Error: body})
}

// submitCode maps a manager submission error to its envelope code.
// Unmapped errors are validation failures (invalid_request) — the
// submission paths return no other kind.
func submitCode(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return codeQueueFull
	case errors.Is(err, ErrSweepBusy):
		return codeSweepBusy
	case errors.Is(err, ErrClosed):
		return codeShuttingDown
	default:
		return codeInvalidRequest
	}
}

// nextCursorTrailer carries the stream's next replay cursor as an
// HTTP trailer: after draining a stream to its end, cursor=<value>
// resumes exactly where this response stopped.
const nextCursorTrailer = "X-Adnet-Next-Cursor"

// parseCursor reads the optional ?cursor=N replay offset of the
// NDJSON streams (frame index to resume from; default 0).
func parseCursor(r *http.Request) (int, error) {
	q := r.URL.Query().Get("cursor")
	if q == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("service: invalid cursor %q (want a non-negative integer)", q)
	}
	return n, nil
}

// NewHandler builds the HTTP surface over a Manager:
//
//	POST   /v1/runs                  enqueue a RunSpec (JSON body) or hit the cache
//	GET    /v1/runs                  list all known jobs
//	GET    /v1/runs/{id}             job status + Outcome when finished
//	GET    /v1/runs/{id}/rounds      NDJSON stream of per-round stats (replay + live tail)
//	GET    /v1/runs/{id}/topology    NDJSON stream of per-round topology deltas
//	                                 (?format=packed for delta-varint frames)
//	DELETE /v1/runs/{id}             cancel a queued or running job
//	POST   /v1/sweeps                submit a SweepSpec grid as a fire-and-forget job
//	GET    /v1/sweeps                list all known sweep jobs
//	GET    /v1/sweeps/{id}           sweep status + summary when finished
//	GET    /v1/sweeps/{id}/cells     NDJSON stream of per-cell results (replay + live tail)
//	GET    /v1/sweeps/{id}/aggregate per-(algorithm, workload, n) stats over seeds
//	DELETE /v1/sweeps/{id}           cancel a queued or running sweep
//	GET    /v1/algorithms            runnable algorithm names
//	GET    /v1/workloads             initial-network family names
//	GET    /healthz                  liveness + pool/cache counters
//
// The NDJSON streams accept ?cursor=N to resume replay from frame N
// instead of frame zero, and echo the next resume cursor in the
// X-Adnet-Next-Cursor trailer when the stream completes.
//
// In coordinator mode (Config.Fleet set) two more routes manage the
// worker registry, and sweeps are executed by sharding the grid across
// the registered workers rather than on the local engine fleet:
//
//	POST   /v1/fleet/workers         register a worker server {"url": ...}
//	GET    /v1/fleet/workers         registry with per-worker health
//
// Every route is wrapped by the manager's HTTP instrumentation: the
// mux pattern becomes the metric route label (bounded cardinality —
// never the raw path), a request ID is assigned or reused from
// X-Adnet-Request-Id, and GET /metrics serves the registry in
// Prometheus text exposition format. Every error response, including
// the unknown-route fallback, wears the v1 JSON envelope.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, m.metrics.httpm.Wrap(pattern, h))
	}
	handle("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var spec RunSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeAPIError(w, r, codeInvalidRequest, err)
			return
		}
		job, cached, err := m.Submit(spec)
		if err != nil {
			writeAPIError(w, r, submitCode(err), err)
			return
		}
		code := http.StatusAccepted
		if cached {
			code = http.StatusOK
		}
		writeJSON(w, code, submitResponse{Job: job.Status(), Cached: cached})
	})
	handle("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	handle("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeAPIError(w, r, codeNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	handle("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := m.Cancel(r.PathValue("id"))
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, ErrNotFound):
			writeAPIError(w, r, codeNotFound, err)
		default:
			// Terminal jobs: nothing left to cancel.
			writeAPIError(w, r, codeAlreadyDone, err)
		}
	})
	handle("GET /v1/runs/{id}/rounds", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeAPIError(w, r, codeNotFound, ErrNotFound)
			return
		}
		cursor, err := parseCursor(r)
		if err != nil {
			writeAPIError(w, r, codeInvalidCursor, err)
			return
		}
		streamNDJSON(w, r, &job.Stream().stream, cursor, m.cfg.StreamWriteTimeout, m.metrics.roundsSub)
	})
	handle("GET /v1/runs/{id}/topology", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeAPIError(w, r, codeNotFound, ErrNotFound)
			return
		}
		cursor, err := parseCursor(r)
		if err != nil {
			writeAPIError(w, r, codeInvalidCursor, err)
			return
		}
		switch r.URL.Query().Get("format") {
		case "", "json":
			streamNDJSON(w, r, &job.Topology().json, cursor, m.cfg.StreamWriteTimeout, m.metrics.topoSub)
		case "packed":
			streamNDJSON(w, r, &job.Topology().packed, cursor, m.cfg.StreamWriteTimeout, m.metrics.topoPackedSub)
		default:
			writeAPIError(w, r, codeInvalidRequest,
				errors.New("service: unknown topology format (want json or packed)"))
		}
	})
	handle("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec SweepSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeAPIError(w, r, codeInvalidRequest, err)
			return
		}
		job, err := m.SubmitSweep(r.Context(), spec)
		if err != nil {
			writeAPIError(w, r, submitCode(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, sweepSubmitResponse{Sweep: job.Status()})
	})
	handle("GET /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Sweeps())
	})
	handle("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.GetSweep(r.PathValue("id"))
		if !ok {
			writeAPIError(w, r, codeNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	handle("DELETE /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := m.CancelSweep(r.PathValue("id"))
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, ErrNotFound):
			writeAPIError(w, r, codeNotFound, err)
		default:
			// The sweep already reached a terminal state: an explicit
			// already_done, distinguishable from a live cancel's 204.
			writeAPIError(w, r, codeAlreadyDone, err)
		}
	})
	handle("GET /v1/sweeps/{id}/cells", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.GetSweep(r.PathValue("id"))
		if !ok {
			writeAPIError(w, r, codeNotFound, ErrNotFound)
			return
		}
		cursor, err := parseCursor(r)
		if err != nil {
			writeAPIError(w, r, codeInvalidCursor, err)
			return
		}
		// A subscriber disconnect ends only this stream — the sweep
		// keeps running for other subscribers. The summary line trails
		// the cells once the sweep is terminal.
		done := streamNDJSON(w, r, &job.Stream().stream, cursor, m.cfg.StreamWriteTimeout, m.metrics.cellsSub)
		if !done {
			return
		}
		if st := job.Status(); st.Summary != nil {
			_, _ = w.Write(jsonFrame(st.Summary))
		}
	})
	handle("GET /v1/sweeps/{id}/aggregate", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.GetSweep(r.PathValue("id"))
		if !ok {
			writeAPIError(w, r, codeNotFound, ErrNotFound)
			return
		}
		groups, err := job.Aggregate()
		switch {
		case err == nil:
		case errors.Is(err, ErrSweepRunning):
			// A non-terminal sweep is a caller-resolvable conflict
			// (retry once the job is terminal), not a server fault.
			writeAPIError(w, r, codeSweepRunning, err)
			return
		default:
			writeAPIError(w, r, codeInternal, err)
			return
		}
		writeJSON(w, http.StatusOK, sweepAggregateResponse{
			ID:     job.ID,
			State:  job.State(),
			Groups: groups,
		})
	})
	if fl := m.Fleet(); fl != nil {
		handle("POST /v1/fleet/workers", func(w http.ResponseWriter, r *http.Request) {
			var req workerRegistration
			dec := json.NewDecoder(r.Body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				writeAPIError(w, r, codeInvalidRequest, err)
				return
			}
			st, err := fl.Register(r.Context(), req.URL)
			switch {
			case err == nil:
				writeJSON(w, http.StatusCreated, st)
			case errors.Is(err, fleet.ErrDuplicateWorker):
				// Idempotent re-registration: report the existing
				// worker's freshly probed status.
				writeJSON(w, http.StatusOK, st)
			case errors.Is(err, fleet.ErrInvalidWorkerURL):
				writeAPIError(w, r, codeInvalidRequest, err)
			default:
				// The worker exists but failed its health probe.
				writeAPIError(w, r, codeWorkerUnhealthy, err)
			}
		})
		handle("GET /v1/fleet/workers", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, fl.Workers(r.Context()))
		})
	}
	handle("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, expt.Algorithms())
	})
	handle("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, expt.Workloads())
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: m.Stats()})
	})
	mux.Handle("GET /metrics", m.metrics.httpm.Wrap("GET /metrics", m.Registry().Handler()))
	// Unmatched routes get the envelope too, not the mux's plaintext
	// 404 — one error shape across the whole surface.
	mux.Handle("/", m.metrics.httpm.Wrap("fallback", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, r, codeNotFound,
			fmt.Errorf("service: no route for %s %s", r.Method, r.URL.Path))
	})))
	return mux
}

// streamNDJSON replays s to the client as NDJSON — history from the
// request's cursor (frame index, default 0), then a live tail until
// the stream closes. The wire bytes come from the stream's encode-once
// frame log: each published item was marshaled exactly once, and every
// subscriber writes the same immutable frames, so fan-out to N
// connections costs N writes but one encode per item. It returns
// done=true when the stream was fully drained, done=false when the
// subscriber was dropped mid-stream; callers append trailing lines
// (e.g. a sweep summary) only when done. The frame index one past the
// last frame written — the cursor that resumes exactly after this
// response — is echoed in the X-Adnet-Next-Cursor trailer.
//
// Backpressure: each write batch runs under writeTimeout (via
// http.ResponseController). A subscriber that cannot drain a batch in
// time fails its write and is dropped — the producer, publishing into
// the shared frame log, is never blocked by a stalled reader, and
// other subscribers keep tailing unaffected.
func streamNDJSON[T any](w http.ResponseWriter, r *http.Request, s *stream[T], cursor int, writeTimeout time.Duration, sub subscriberObs) (done bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Declared before the status line so the client knows to expect
	// it; the value lands when the handler returns.
	w.Header().Set("Trailer", nextCursorTrailer)
	defer func() {
		w.Header().Set(nextCursorTrailer, strconv.Itoa(cursor))
	}()
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the status line now: the first batch may be a long
		// Wait away and clients time out on a silent start.
		flusher.Flush()
	}
	rc := http.NewResponseController(w)
	if sub.subscribers != nil {
		sub.subscribers.Inc()
		defer sub.subscribers.Dec()
	}
	for {
		batch, more := s.WaitFrames(r.Context(), cursor)
		if !more {
			return r.Context().Err() == nil
		}
		if writeTimeout > 0 {
			// Errors are deliberately ignored: a ResponseWriter without
			// deadline support (in-process tests) streams without one.
			_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		var batchBytes int64
		for _, frame := range batch {
			if _, err := w.Write(frame); err != nil {
				if sub.dropped != nil {
					sub.dropped.Inc()
				}
				return false
			}
			batchBytes += int64(len(frame))
		}
		cursor += len(batch)
		if sub.frames != nil {
			sub.frames.Add(int64(len(batch)))
			sub.bytes.Add(batchBytes)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

type submitResponse struct {
	Job    JobStatus `json:"job"`
	Cached bool      `json:"cached"`
}

type sweepSubmitResponse struct {
	Sweep SweepStatus `json:"sweep"`
}

type workerRegistration struct {
	URL string `json:"url"`
}

type sweepAggregateResponse struct {
	ID     string                `json:"id"`
	State  JobState              `json:"state"`
	Groups []expt.AggregateGroup `json:"groups"`
}

type healthResponse struct {
	Status string `json:"status"`
	Stats  Stats  `json:"stats"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encode errors after the status line is committed can only be
	// surfaced by aborting the connection; let the client see EOF.
	_ = json.NewEncoder(w).Encode(v)
}
