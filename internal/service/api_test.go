package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adnet/internal/temporal"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return srv, m
}

func postRun(t *testing.T, srv *httptest.Server, spec RunSpec) (submitResponse, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func getStatus(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/runs/%s = %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func awaitDone(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, srv, id)
		switch st.State {
		case StateDone:
			return st
		case StateFailed, StateCanceled:
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

func TestAPISubmitAndStatus(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 2})

	sub, code := postRun(t, srv, fastSpec(11))
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	if sub.Cached || sub.Job.ID == "" {
		t.Fatalf("submit response = %+v", sub)
	}
	st := awaitDone(t, srv, sub.Job.ID)
	if st.Outcome == nil || !st.Outcome.LeaderOK {
		t.Fatalf("outcome = %+v", st.Outcome)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Error("finished job must carry timestamps")
	}
}

func TestAPICacheHitSkipsSimulation(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 2})

	sub, code := postRun(t, srv, fastSpec(12))
	if code != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", code)
	}
	first := awaitDone(t, srv, sub.Job.ID)

	hit, code := postRun(t, srv, fastSpec(12))
	if code != http.StatusOK {
		t.Fatalf("repeat POST = %d, want 200 (cache hit)", code)
	}
	if !hit.Cached || !hit.Job.FromCache || hit.Job.State != StateDone {
		t.Fatalf("repeat submit = %+v, want completed cache hit", hit)
	}
	if *hit.Job.Outcome != *first.Outcome {
		t.Fatalf("cached outcome differs: %+v vs %+v", hit.Job.Outcome, first.Outcome)
	}
	if runs := m.RunsExecuted(); runs != 1 {
		t.Fatalf("RunsExecuted = %d, want 1 — cache hit must not re-simulate", runs)
	}
	// The cached job's stream replays the full per-round history.
	lines := readRounds(t, srv, hit.Job.ID)
	if len(lines) != first.Outcome.Rounds {
		t.Fatalf("cached stream has %d rounds, want %d", len(lines), first.Outcome.Rounds)
	}
}

func TestAPIConcurrentSubmissions(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	const clients = 12
	type result struct {
		id   string
		err  error
		code int
	}
	results := make(chan result, clients)
	for i := 0; i < clients; i++ {
		go func(seed int64) {
			body, _ := json.Marshal(fastSpec(seed))
			resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var sub submitResponse
			err = json.NewDecoder(resp.Body).Decode(&sub)
			results <- result{id: sub.Job.ID, err: err, code: resp.StatusCode}
		}(int64(i))
	}
	ids := make([]string, 0, clients)
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusAccepted {
			t.Fatalf("concurrent POST = %d, want 202", r.code)
		}
		ids = append(ids, r.id)
	}
	for _, id := range ids {
		st := awaitDone(t, srv, id)
		if st.Outcome == nil || !st.Outcome.LeaderOK {
			t.Fatalf("job %s: outcome %+v", id, st.Outcome)
		}
	}
	if runs := m.RunsExecuted(); runs != clients {
		t.Fatalf("RunsExecuted = %d, want %d", runs, clients)
	}
}

// readRounds consumes the NDJSON stream to EOF, validating every line.
func readRounds(t *testing.T, srv *httptest.Server, id string) []temporal.RoundStats {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/runs/" + id + "/rounds")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET rounds = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rounds []temporal.RoundStats
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rs temporal.RoundStats
		if err := json.Unmarshal([]byte(line), &rs); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		rounds = append(rounds, rs)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rounds
}

func TestAPIRoundsStreamsLiveNDJSON(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})

	// Subscribe while the job is still queued/running: the stream
	// must tail rounds live and terminate when the job does.
	sub, code := postRun(t, srv, slowSpec(21))
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	rounds := readRounds(t, srv, sub.Job.ID)
	st := awaitDone(t, srv, sub.Job.ID)
	if len(rounds) == 0 {
		t.Fatal("live stream delivered no rounds")
	}
	if len(rounds) != st.Outcome.Rounds {
		t.Fatalf("streamed %d rounds, outcome ran %d", len(rounds), st.Outcome.Rounds)
	}
	for i, rs := range rounds {
		if rs.Round != i+1 {
			t.Fatalf("line %d has round %d, want %d", i, rs.Round, i+1)
		}
	}
}

func TestAPIErrors(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})

	check := func(method, path, body string, want int) {
		t.Helper()
		req, _ := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			b, _ := io.ReadAll(resp.Body)
			t.Errorf("%s %s = %d (%s), want %d", method, path, resp.StatusCode, b, want)
		}
	}
	check("POST", "/v1/runs", `{not json`, http.StatusBadRequest)
	check("POST", "/v1/runs", `{"algorithm":"nope","workload":"line","n":8}`, http.StatusBadRequest)
	check("POST", "/v1/runs", `{"algorithm":"graph-to-star","workload":"line","n":8,"bogus":1}`, http.StatusBadRequest)
	check("GET", "/v1/runs/run-000000-ffffffff", "", http.StatusNotFound)
	check("GET", "/v1/runs/run-000000-ffffffff/rounds", "", http.StatusNotFound)
	check("DELETE", "/v1/runs/run-000000-ffffffff", "", http.StatusNotFound)
	check("GET", "/v1/nope", "", http.StatusNotFound)
}

func TestAPIQueueFullReturns503(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	saw503 := false
	for seed := int64(0); seed < 8 && !saw503; seed++ {
		_, code := postRun(t, srv, slowSpec(200+seed))
		switch code {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("POST = %d", code)
		}
	}
	if !saw503 {
		t.Fatal("never saw 503 with a saturated queue")
	}
}

func TestAPICancel(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})
	sub, _ := postRun(t, srv, slowSpec(31))
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+sub.Job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, srv, sub.Job.ID)
		if st.State == StateCanceled || st.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAPIIntrospectionAndHealth(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, Config{Workers: 1})

	var algos []string
	mustGetJSON(t, srv, "/v1/algorithms", &algos)
	if len(algos) == 0 || !contains(algos, "graph-to-star") {
		t.Errorf("algorithms = %v", algos)
	}
	var loads []string
	mustGetJSON(t, srv, "/v1/workloads", &loads)
	if len(loads) == 0 || !contains(loads, "line") {
		t.Errorf("workloads = %v", loads)
	}

	sub, _ := postRun(t, srv, fastSpec(41))
	awaitDone(t, srv, sub.Job.ID)
	var health healthResponse
	mustGetJSON(t, srv, "/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("health = %+v", health)
	}
	if health.Stats.Workers != 1 || health.Stats.RunsExecuted != 1 || health.Stats.Jobs != 1 {
		t.Errorf("stats = %+v", health.Stats)
	}

	var jobs []JobStatus
	mustGetJSON(t, srv, "/v1/runs", &jobs)
	if len(jobs) != 1 || jobs[0].ID != sub.Job.ID {
		t.Errorf("job list = %+v", jobs)
	}
}

func mustGetJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}
