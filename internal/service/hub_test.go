package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adnet/internal/expt"
	"adnet/internal/obs"
	"adnet/internal/temporal"
)

// collectFrames drains every frame of s from cursor 0 and returns the
// concatenated wire bytes. The stream must be closed (or get closed
// concurrently) or the call blocks.
func collectFrames[T any](t *testing.T, s *stream[T]) []byte {
	t.Helper()
	var buf bytes.Buffer
	cursor := 0
	for {
		batch, ok := s.WaitFrames(context.Background(), cursor)
		if !ok {
			return buf.Bytes()
		}
		for _, f := range batch {
			buf.Write(f)
		}
		cursor += len(batch)
	}
}

func sampleRounds(n int) []temporal.RoundStats {
	out := make([]temporal.RoundStats, n)
	for i := range out {
		out[i] = temporal.RoundStats{
			Round: i + 1, Activated: 3 * i, Deactivated: i % 5,
			ActiveEdges: 100 + i, ActivatedAlive: 2 * i,
		}
	}
	return out
}

// TestFrameLogByteIdentity pins the wire format: the encode-once frame
// log must produce exactly the bytes the old per-connection
// json.Encoder loop wrote — including HTML escaping and the trailing
// newline — for both round stats and sweep cells.
func TestFrameLogByteIdentity(t *testing.T) {
	t.Parallel()

	rs := newRoundStream(0, nil)
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for _, st := range sampleRounds(50) {
		rs.publish(st)
		if err := enc.Encode(st); err != nil {
			t.Fatal(err)
		}
	}
	rs.close()
	if got := collectFrames(t, &rs.stream); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("rounds frame bytes differ from json.Encoder output:\ngot  %q\nwant %q", got, want.Bytes())
	}

	cs := newCellStream(0, nil)
	want.Reset()
	out := expt.Outcome{N: 64, Rounds: 12, LeaderOK: true, FinalDiameter: 2}
	cells := []SweepCell{
		{Index: 0, Algorithm: "graph-to-star", Workload: "line", N: 64, Seed: 1, Outcome: &out},
		{Index: 1, Algorithm: "flood", Workload: "ring", N: 64, Seed: 2, FromCache: true, Outcome: &out},
		// HTML-escaping characters must keep escaping the way
		// json.Encoder did (<, >, & become \u escapes).
		{Index: 2, Algorithm: "clique", Workload: "star", N: 8, Seed: 3, Error: `limit <exceeded> & "quoted"`},
	}
	for _, c := range cells {
		cs.publish(c)
		if err := enc.Encode(c); err != nil {
			t.Fatal(err)
		}
	}
	cs.close()
	if got := collectFrames(t, &cs.stream); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("cells frame bytes differ from json.Encoder output:\ngot  %q\nwant %q", got, want.Bytes())
	}
}

// TestEndpointByteIdentity runs a real job through the HTTP surface
// and checks the rounds endpoint's NDJSON body is byte-for-byte what a
// per-item json.Encoder would write for the same history — the
// regression gate for swapping the encoder loop out for frame fan-out.
func TestEndpointByteIdentity(t *testing.T) {
	t.Parallel()
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	job, _, err := m.Submit(fastSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)

	resp, err := http.Get(srv.URL + "/v1/runs/" + job.ID + "/rounds")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds endpoint: status=%d err=%v", resp.StatusCode, err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for _, st := range job.Stream().snapshot() {
		if err := enc.Encode(st); err != nil {
			t.Fatal(err)
		}
	}
	if want.Len() == 0 {
		t.Fatal("job streamed no rounds")
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("rounds endpoint body differs from per-item encoder output:\ngot  %q\nwant %q", body, want.Bytes())
	}
}

// TestEncodeOncePerItem pins the tentpole invariant: marshals per item
// stay at one no matter how many subscribers drain the stream — live
// and lazily-built (cache replay) alike.
func TestEncodeOncePerItem(t *testing.T) {
	t.Parallel()
	const items, subs = 100, 32
	rounds := sampleRounds(items)

	live := newRoundStream(0, nil)
	for _, st := range rounds {
		live.publish(st)
	}
	live.close()
	replay := newClosedStream(rounds, 0, nil)

	for name, s := range map[string]*RoundStream{"live": live, "replay": replay} {
		var wg sync.WaitGroup
		for i := 0; i < subs; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				collectFrames(t, &s.stream)
			}()
		}
		wg.Wait()
		if got := s.Encodes(); got != items {
			t.Errorf("%s stream: %d encodes for %d items across %d subscribers, want exactly %d",
				name, got, items, subs, items)
		}
	}
}

// TestFrameLogEvictionAndReencode bounds the shared log and checks a
// late subscriber still replays the full, byte-identical history via
// per-subscriber re-encoding of the evicted prefix.
func TestFrameLogEvictionAndReencode(t *testing.T) {
	t.Parallel()
	var reencoded, evicted int
	hooks := &streamObs{
		reencoded:  func(frames int) { reencoded += frames },
		frameEvict: func(frames, bytes int) { evicted += frames },
	}
	s := newRoundStream(256, hooks) // a handful of ~70-byte frames
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for _, st := range sampleRounds(80) {
		s.publish(st)
		if err := enc.Encode(st); err != nil {
			t.Fatal(err)
		}
	}
	s.close()
	if evicted == 0 {
		t.Fatal("byte bound never evicted a frame")
	}
	if fb := s.FrameBytes(); fb > 256 {
		t.Errorf("retained frame bytes %d exceed the 256-byte bound", fb)
	}
	if got := collectFrames(t, &s.stream); !bytes.Equal(got, want.Bytes()) {
		t.Error("cold replay across the eviction horizon is not byte-identical")
	}
	if reencoded == 0 {
		t.Error("cold replay should have been counted as re-encodes")
	}
	// The hot tail is still served from the shared log: a subscriber
	// starting past the eviction horizon triggers no re-encode.
	before := reencoded
	if _, ok := s.WaitFrames(context.Background(), 79); !ok {
		t.Fatal("tail read failed")
	}
	if reencoded != before {
		t.Error("hot-tail read re-encoded frames")
	}
}

// TestStalledSubscriberDropped starts a real TCP server, attaches one
// subscriber that never reads and one that drains, and checks the
// backpressure policy: the stalled connection is dropped by the write
// deadline while the producer and the healthy subscriber proceed
// unimpeded. Both the rounds-shaped and topology-shaped streams go
// through the same streamNDJSON path the endpoints use.
func TestStalledSubscriberDropped(t *testing.T) {
	t.Parallel()
	// Big frames fill the socket buffers fast; 4096 slot pairs is
	// ~50KB of JSON per frame.
	bigDelta := make([]int32, 8192)
	for i := range bigDelta {
		bigDelta[i] = int32(i)
	}
	for _, tc := range []struct {
		name  string
		kind  string
		serve func(mt *metrics, timeout time.Duration) (http.HandlerFunc, func(i int), func(), *int64)
	}{
		{
			name: "topology",
			kind: streamTopo,
			serve: func(mt *metrics, timeout time.Duration) (http.HandlerFunc, func(i int), func(), *int64) {
				ts := newTopologyStream(0, nil, nil)
				var total int64
				handler := func(w http.ResponseWriter, r *http.Request) {
					streamNDJSON(w, r, &ts.json, 0, timeout, mt.topoSub)
				}
				publish := func(i int) {
					f := TopologyFrame{Round: i + 1, Activate: bigDelta}
					total += int64(len(jsonFrame(f)))
					ts.publish(f)
				}
				return handler, publish, ts.close, &total
			},
		},
		{
			name: "rounds",
			kind: streamRounds,
			serve: func(mt *metrics, timeout time.Duration) (http.HandlerFunc, func(i int), func(), *int64) {
				rs := newRoundStream(0, nil)
				var total int64
				handler := func(w http.ResponseWriter, r *http.Request) {
					streamNDJSON(w, r, &rs.stream, 0, timeout, mt.roundsSub)
				}
				publish := func(i int) {
					st := temporal.RoundStats{Round: i + 1, Activated: i, ActiveEdges: 1 << 20}
					total += int64(len(jsonFrame(st)))
					rs.publish(st)
				}
				return handler, publish, rs.close, &total
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mt := newMetrics(obs.NewRegistry(), nil)
			handler, publish, closeStream, total := tc.serve(mt, 150*time.Millisecond)
			srv := httptest.NewServer(http.HandlerFunc(handler))
			defer srv.Close()

			// Stalled subscriber: a raw connection that sends the request
			// and then never reads a byte.
			stalled, err := net.Dial("tcp", srv.Listener.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer stalled.Close()
			fmt.Fprintf(stalled, "GET /stream HTTP/1.1\r\nHost: test\r\n\r\n")

			// Healthy subscriber: drains the stream to the end.
			healthy := make(chan int64, 1)
			go func() {
				resp, err := http.Get(srv.URL + "/stream")
				if err != nil {
					healthy <- -1
					return
				}
				defer resp.Body.Close()
				n, _ := io.Copy(io.Discard, bufio.NewReader(resp.Body))
				healthy <- n
			}()
			// Give both subscribers time to attach so the stall overlaps
			// the publishing.
			waitFor(t, func() bool { return mt.streamSubscribers.With(tc.kind).Value() == 2 },
				"subscribers never attached")

			// Producer: publishing never blocks on the stalled reader.
			// Push enough bytes to overrun any socket buffering between
			// server and stalled client.
			start := time.Now()
			i := 0
			for *total < 32<<20 {
				publish(i)
				i++
			}
			producerElapsed := time.Since(start)

			// The stalled subscriber must get dropped by the write
			// deadline well before the healthy one finishes the stream.
			waitFor(t, func() bool { return mt.streamDropped.With(tc.kind).Value() >= 1 },
				"stalled subscriber was never dropped")
			closeStream()

			select {
			case n := <-healthy:
				if n != *total {
					t.Errorf("healthy subscriber read %d bytes, want %d", n, *total)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("healthy subscriber never finished")
			}
			// The producer is decoupled from subscribers by construction;
			// this catches regressions that reintroduce producer-side
			// blocking (e.g. bounded per-subscriber queues).
			if producerElapsed > 10*time.Second {
				t.Errorf("producer took %v with a stalled subscriber attached", producerElapsed)
			}
		})
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestStreamFanoutRace exercises concurrent publish, subscribe, status
// reads and close under the race detector (the CI race job runs this
// package with -race).
func TestStreamFanoutRace(t *testing.T) {
	t.Parallel()
	s := newRoundStream(512, nil)
	const items, subs = 400, 8
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, st := range sampleRounds(items) {
			s.publish(st)
		}
		s.close()
	}()
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursor := 0
			for {
				batch, ok := s.WaitFrames(context.Background(), cursor)
				if !ok {
					return
				}
				for _, f := range batch {
					if len(f) == 0 || f[len(f)-1] != '\n' {
						t.Error("malformed frame")
						return
					}
				}
				cursor += len(batch)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 200; j++ {
			_ = s.Len()
			_ = s.FrameBytes()
			_ = s.snapshot()
		}
	}()
	wg.Wait()
	if got := s.Len(); got != items {
		t.Fatalf("published %d items, stream holds %d", items, got)
	}
}

// BenchmarkFanout contrasts the encode-once hub with the
// per-connection-encoder baseline it replaced. The hub's per-subscriber
// cost must be an order of magnitude below the baseline's at high
// fan-out: the baseline marshals every item once per subscriber, the
// hub once per stream.
func BenchmarkFanout(b *testing.B) {
	const items = 256
	rounds := sampleRounds(items)
	for _, subs := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("encoder/subs=%d", subs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < subs; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						enc := json.NewEncoder(io.Discard)
						for j := range rounds {
							if err := enc.Encode(rounds[j]); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			}
		})
		b.Run(fmt.Sprintf("hub/subs=%d", subs), func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				s := newRoundStream(0, nil)
				for j := range rounds {
					s.publish(rounds[j])
				}
				s.close()
				var wg sync.WaitGroup
				for k := 0; k < subs; k++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						cursor := 0
						var sink int
						for {
							batch, ok := s.WaitFrames(ctx, cursor)
							if !ok {
								return
							}
							for _, f := range batch {
								sink += len(f)
							}
							cursor += len(batch)
						}
					}()
				}
				wg.Wait()
				if got := s.Encodes(); got != items {
					b.Fatalf("hub performed %d encodes, want %d", got, items)
				}
			}
		})
	}
}
