package service

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"

	"adnet/internal/temporal"
)

// TopologyFrame is one NDJSON line of the GET /v1/runs/{id}/topology
// stream: the compact per-round reconfiguration delta a subscriber
// replays to reconstruct D(i) without the server ever materializing
// full adjacency per subscriber.
//
// The first frame is the header (Round 0): the node count and the
// initial active edge set E(1). Every following frame carries round
// i's committed activations and deactivations. Edge lists are flat
// slot pairs [a0,b0,a1,b1,...] in ascending canonical edge order,
// where a slot is a node's ascending-ID rank — the engine applies
// reconfiguration deterministically in exactly this order, so the
// deltas are a complete, canonical wire format for the dynamic graph.
type TopologyFrame struct {
	Round int `json:"round"`
	// Header fields (Round 0 only).
	N     int     `json:"n,omitempty"`
	Edges []int32 `json:"edges,omitempty"`
	// Delta fields (Round >= 1).
	Activate   []int32 `json:"activate,omitempty"`
	Deactivate []int32 `json:"deactivate,omitempty"`
	// Environment delta fields: edits the dynamics environment (not
	// the algorithm) committed after the round's own reconfiguration.
	// Always empty — and absent from the wire — for runs without a
	// dynamics spec, so those streams are byte-identical to the
	// pre-dynamics format.
	EnvActivate   []int32 `json:"env_activate,omitempty"`
	EnvDeactivate []int32 `json:"env_deactivate,omitempty"`
}

// packedTopologyFrame is the format=packed rendering of the same
// frame: the slot pairs are delta-varint packed (see packPairs) and
// base64'd into a single string field, cutting frame bytes by 3-6x on
// dense rounds while staying one JSON line per round.
type packedTopologyFrame struct {
	Round int    `json:"round"`
	N     int    `json:"n,omitempty"`
	P     string `json:"p"`
}

// packedFrame is the frame encoder of the packed topology stream. The
// header packs its initial edge list; delta frames pack activations
// then deactivations (each length-prefixed), and — only when a
// dynamics environment edited anything this round — the environment's
// activations and deactivations as a third and fourth list. Decoders
// detect the extension by the remaining bytes, and dynamics-free
// streams stay byte-identical to the two-list format.
func packedFrame(f TopologyFrame) []byte {
	var buf []byte
	if f.Round == 0 {
		buf = packPairs(nil, f.Edges)
	} else {
		buf = packPairs(nil, f.Activate)
		buf = packPairs(buf, f.Deactivate)
		if len(f.EnvActivate) > 0 || len(f.EnvDeactivate) > 0 {
			buf = packPairs(buf, f.EnvActivate)
			buf = packPairs(buf, f.EnvDeactivate)
		}
	}
	return jsonFrame(packedTopologyFrame{
		Round: f.Round,
		N:     f.N,
		P:     base64.StdEncoding.EncodeToString(buf),
	})
}

// packPairs appends one length-prefixed, delta-varint packed edge
// list to buf: uvarint(#pairs), then per pair uvarint(a_i - a_{i-1})
// (the first slots are ascending in canonical order, so consecutive
// deltas are small) followed by uvarint(b_i - a_i) (b > a for
// canonical pairs). pairs is flat [a0,b0,a1,b1,...].
func packPairs(buf []byte, pairs []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(pairs)/2))
	prevA := int32(0)
	for i := 0; i+1 < len(pairs); i += 2 {
		a, b := pairs[i], pairs[i+1]
		buf = binary.AppendUvarint(buf, uint64(a-prevA))
		buf = binary.AppendUvarint(buf, uint64(b-a))
		prevA = a
	}
	return buf
}

// unpackPairs reads one packed edge list from buf, returning the flat
// slot pairs and the remaining bytes. It is the inverse of packPairs;
// the topology differential tests replay packed streams through it.
func unpackPairs(buf []byte) ([]int32, []byte, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("service: packed frame: bad pair count")
	}
	buf = buf[n:]
	pairs := make([]int32, 0, 2*count)
	prevA := int32(0)
	for i := uint64(0); i < count; i++ {
		da, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, nil, fmt.Errorf("service: packed frame: truncated pair %d", i)
		}
		buf = buf[n:]
		db, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, nil, fmt.Errorf("service: packed frame: truncated pair %d", i)
		}
		buf = buf[n:]
		a := prevA + int32(da)
		pairs = append(pairs, a, a+int32(db))
		prevA = a
	}
	return pairs, buf, nil
}

// TopologyStream is the per-job publication channel for topology
// delta frames. It is two encode-once hubs over the same frames — one
// per wire format (plain JSON and format=packed) — so a round costs
// exactly one marshal per format regardless of subscriber count, and
// a closed lazy replay (cache hit) encodes a format only when its
// first subscriber arrives.
type TopologyStream struct {
	json   stream[TopologyFrame]
	packed stream[TopologyFrame]
}

func newTopologyStream(maxFrameBytes int64, jsonObs, packedObs *streamObs) *TopologyStream {
	ts := &TopologyStream{}
	ts.json.init()
	ts.json.maxFrameBytes = maxFrameBytes
	ts.json.obs = jsonObs
	ts.packed.init()
	ts.packed.maxFrameBytes = maxFrameBytes
	ts.packed.enc = packedFrame
	ts.packed.obs = packedObs
	return ts
}

// newClosedTopologyStream builds the replay source for cache-hit jobs:
// both sides are pre-closed over the shared frame slice, with encoded
// frames built lazily on the first subscriber of each format.
func newClosedTopologyStream(frames []TopologyFrame, maxFrameBytes int64, jsonObs, packedObs *streamObs) *TopologyStream {
	ts := newTopologyStream(maxFrameBytes, jsonObs, packedObs)
	ts.json.items = frames
	ts.json.done = true
	ts.json.lazyFrames = true
	ts.packed.items = frames
	ts.packed.done = true
	ts.packed.lazyFrames = true
	return ts
}

// publish appends one frame to both formats.
func (ts *TopologyStream) publish(f TopologyFrame) {
	ts.json.publish(f)
	ts.packed.publish(f)
}

// publishHeader emits the round-0 header from a sim.StartEvent's
// scratch edge slice (copied — the engine reuses it).
func (ts *TopologyStream) publishHeader(n int, edges []int32) {
	ts.publish(TopologyFrame{
		Round: 0,
		N:     n,
		Edges: append([]int32(nil), edges...),
	})
}

// publishDelta emits one round's delta from the History's scratch
// (copied — the engine reuses it next round). Rounds with no
// reconfiguration still emit a frame: the stream is the round clock,
// and an empty delta is two bytes of payload.
func (ts *TopologyStream) publishDelta(d temporal.RoundDelta) {
	f := TopologyFrame{
		Round:      d.Round,
		Activate:   append([]int32(nil), d.Activate...),
		Deactivate: append([]int32(nil), d.Deactivate...),
	}
	if len(d.EnvActivate) > 0 {
		f.EnvActivate = append([]int32(nil), d.EnvActivate...)
	}
	if len(d.EnvDeactivate) > 0 {
		f.EnvDeactivate = append([]int32(nil), d.EnvDeactivate...)
	}
	ts.publish(f)
}

func (ts *TopologyStream) close() {
	ts.json.close()
	ts.packed.close()
}

// Frames snapshots the typed frames for cache storage.
func (ts *TopologyStream) Frames() []TopologyFrame { return ts.json.snapshot() }

// FrameBytes is the stream's retained encoded bytes across both
// formats.
func (ts *TopologyStream) FrameBytes() int64 {
	return ts.json.FrameBytes() + ts.packed.FrameBytes()
}
