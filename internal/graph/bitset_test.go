package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// newBitsetProneGraph returns a graph whose slots promote to bitsets
// at degree 3, so tiny randomized graphs exercise both representations
// and the transitions between them.
func newBitsetProneGraph() *Graph {
	g := New()
	g.minDeg = 3
	return g
}

func (g *Graph) anyEngaged() bool {
	for s := range g.bdeg {
		if g.engaged(s) {
			return true
		}
	}
	return false
}

// TestBitsetDifferential drives the hybrid Graph — with the promotion
// threshold forced low enough that slots flip to bitsets and back
// constantly — against the map reference model over thousands of
// randomized mutation sequences, asserting observational equality of
// HasEdge, Degree, Neighbors (and its allocation-free variants),
// HaveCommonNeighbor and Edges canonical order at every checkpoint.
func TestBitsetDifferential(t *testing.T) {
	t.Parallel()
	const (
		seeds = 300
		steps = 400
	)
	engagedSequences := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		idSpace := ID(rng.Intn(48) + 8)
		g := newBitsetProneGraph()
		ref := newMapGraph()
		sawEngaged := false
		for step := 0; step < steps; step++ {
			u := ID(rng.Intn(int(idSpace)))
			v := ID(rng.Intn(int(idSpace)))
			switch rng.Intn(10) {
			case 0:
				g.AddNode(u)
				ref.addNode(u)
			case 1, 2, 3, 4, 5:
				err := g.AddEdge(u, v)
				ok := ref.addEdge(u, v)
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: AddEdge(%d,%d) err=%v, ref ok=%v", seed, step, u, v, err, ok)
				}
			case 6, 7:
				if got, want := g.RemoveEdge(u, v), ref.removeEdge(u, v); got != want {
					t.Fatalf("seed %d step %d: RemoveEdge(%d,%d) = %v, want %v", seed, step, u, v, got, want)
				}
			case 8:
				if got, want := g.HasEdge(u, v), ref.hasEdge(u, v); got != want {
					t.Fatalf("seed %d step %d: HasEdge(%d,%d) = %v, want %v", seed, step, u, v, got, want)
				}
			case 9:
				if got, want := g.Degree(u), len(ref.adj[u]); got != want {
					t.Fatalf("seed %d step %d: Degree(%d) = %d, want %d", seed, step, u, got, want)
				}
			}
			if g.NumEdges() != ref.numEdges() {
				t.Fatalf("seed %d step %d: NumEdges = %d, want %d", seed, step, g.NumEdges(), ref.numEdges())
			}
			sawEngaged = sawEngaged || g.anyEngaged()
			// Periodic deep checkpoint; every step would be quadratic.
			if step%37 != 0 {
				continue
			}
			checkGraphMatchesModel(t, g, ref, seed, step)
		}
		checkGraphMatchesModel(t, g, ref, seed, steps)
		if sawEngaged {
			engagedSequences++
		}
	}
	// The point of the test is the hybrid paths: almost every sequence
	// must actually have promoted at least one slot.
	if engagedSequences < seeds*9/10 {
		t.Fatalf("only %d/%d sequences engaged the bitset representation", engagedSequences, seeds)
	}
}

// equalIDs compares slice contents, treating nil and empty alike.
func equalIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkGraphMatchesModel compares every observable accessor of g with
// the reference model.
func checkGraphMatchesModel(t *testing.T, g *Graph, ref *mapGraph, seed int64, step int) {
	t.Helper()
	if got, want := g.Nodes(), ref.nodes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("seed %d step %d: Nodes() = %v, want %v", seed, step, got, want)
	}
	if got, want := g.MaxDegree(), ref.maxDegree(); got != want {
		t.Fatalf("seed %d step %d: MaxDegree() = %d, want %d", seed, step, got, want)
	}
	for _, u := range ref.nodes() {
		want := ref.neighbors(u)
		if got := g.Neighbors(u); !equalIDs(got, want) {
			t.Fatalf("seed %d step %d: Neighbors(%d) = %v, want %v", seed, step, u, got, want)
		}
		if got := g.NeighborsInto(u, nil); !equalIDs(got, want) {
			t.Fatalf("seed %d step %d: NeighborsInto(%d) = %v, want %v", seed, step, u, got, want)
		}
		if view := g.NeighborsView(u); !equalIDs(view, want) {
			t.Fatalf("seed %d step %d: NeighborsView(%d) = %v, want %v", seed, step, u, view, want)
		}
		each := make([]ID, 0, len(want))
		g.EachNeighbor(u, func(v ID) bool { each = append(each, v); return true })
		if !equalIDs(each, want) {
			t.Fatalf("seed %d step %d: EachNeighbor(%d) = %v, want %v", seed, step, u, each, want)
		}
		if got, want := g.Degree(u), len(ref.adj[u]); got != want {
			t.Fatalf("seed %d step %d: Degree(%d) = %d, want %d", seed, step, u, got, want)
		}
		// Slot-addressed probes agree with the ID-addressed ones.
		su, _ := g.Slot(u)
		for _, v := range ref.nodes() {
			sv, _ := g.Slot(v)
			if got, want := g.HasEdgeSlots(su, sv), ref.hasEdge(u, v); got != want {
				t.Fatalf("seed %d step %d: HasEdgeSlots(%d,%d) = %v, want %v", seed, step, u, v, got, want)
			}
		}
	}
	// Edges in canonical lexicographic order.
	edges := g.Edges()
	if len(edges) != ref.numEdges() {
		t.Fatalf("seed %d step %d: Edges() len = %d, want %d", seed, step, len(edges), ref.numEdges())
	}
	for i, e := range edges {
		if !ref.hasEdge(e.A, e.B) || e.A >= e.B {
			t.Fatalf("seed %d step %d: bad edge %v", seed, step, e)
		}
		if i > 0 {
			p := edges[i-1]
			if p.A > e.A || (p.A == e.A && p.B >= e.B) {
				t.Fatalf("seed %d step %d: Edges() not sorted at %d: %v, %v", seed, step, i, p, e)
			}
		}
	}
	// HaveCommonNeighbor over all pairs (covers bitset×bitset,
	// bitset×slice and slice×slice combinations as slots flip).
	nodes := ref.nodes()
	for _, u := range nodes {
		for _, v := range nodes {
			want := false
			for w := range ref.adj[u] {
				if _, ok := ref.adj[v][w]; ok {
					want = true
					break
				}
			}
			if got := g.HaveCommonNeighbor(u, v); got != want {
				t.Fatalf("seed %d step %d: HaveCommonNeighbor(%d,%d) = %v, want %v", seed, step, u, v, got, want)
			}
		}
	}
}

// TestBitsetThresholdCrossing grows one hub past the promotion
// threshold, checks the representation actually flipped, shrinks it
// back through the hysteresis band until it demotes, and asserts every
// accessor stays correct across both crossings — including a second
// promotion to verify backing arrays survive the round trip.
func TestBitsetThresholdCrossing(t *testing.T) {
	t.Parallel()
	g := New()
	g.minDeg = 8
	const n = 64
	hub := ID(0)
	for i := ID(1); i < n; i++ {
		g.MustAddEdge(hub, i)
	}
	slot, _ := g.Slot(hub)
	if !g.engaged(slot) {
		t.Fatalf("hub with degree %d not promoted (threshold %d)", g.Degree(hub), g.promoteThreshold())
	}
	if got := g.Degree(hub); got != n-1 {
		t.Fatalf("Degree(hub) = %d, want %d", got, n-1)
	}
	if !g.HasEdge(hub, 5) || g.HasEdge(5, 7) {
		t.Fatal("bitset membership wrong after promotion")
	}
	if !g.HaveCommonNeighbor(5, 7) {
		t.Fatal("spokes must share the hub")
	}
	// Remove spokes one at a time; correctness must hold through the
	// demotion point, and the hub must eventually be slice-backed.
	for i := ID(1); i < n; i++ {
		if !g.RemoveEdge(hub, i) {
			t.Fatalf("RemoveEdge(hub,%d) = false", i)
		}
		wantDeg := int(n - 1 - i)
		if got := g.Degree(hub); got != wantDeg {
			t.Fatalf("after removing %d: Degree(hub) = %d, want %d", i, got, wantDeg)
		}
		if g.HasEdge(hub, i) {
			t.Fatalf("edge {hub,%d} still present after removal", i)
		}
		if wantDeg > 0 && !g.HasEdge(hub, n-1) {
			t.Fatalf("edge {hub,%d} lost at degree %d", n-1, wantDeg)
		}
		nbrs := g.Neighbors(hub)
		if len(nbrs) != wantDeg {
			t.Fatalf("Neighbors(hub) len = %d, want %d", len(nbrs), wantDeg)
		}
		for j := 1; j < len(nbrs); j++ {
			if nbrs[j-1] >= nbrs[j] {
				t.Fatalf("Neighbors(hub) unsorted: %v", nbrs)
			}
		}
	}
	if g.engaged(slot) {
		t.Fatal("empty hub still bitset-backed: demotion never happened")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	// Second promotion reuses the retained bitset backing array.
	for i := ID(1); i < n; i++ {
		g.MustAddEdge(hub, i)
	}
	if !g.engaged(slot) {
		t.Fatal("hub not re-promoted")
	}
	if got := g.Degree(hub); got != n-1 {
		t.Fatalf("after re-promotion Degree(hub) = %d, want %d", got, n-1)
	}
}

// TestBitsetCanonicalCopySliceBacked pins the CopyCanonicalFrom
// contract the engine depends on: copies of graphs with bitset-backed
// slots come out slice-backed (NeighborsView on initial snapshots must
// stay zero-copy) and edge-identical.
func TestBitsetCanonicalCopySliceBacked(t *testing.T) {
	t.Parallel()
	src := New()
	src.minDeg = 4
	const n = 32
	for i := ID(1); i < n; i++ {
		src.MustAddEdge(0, i)
		if i > 1 {
			src.MustAddEdge(i-1, i)
		}
	}
	if !src.anyEngaged() {
		t.Fatal("source graph never engaged a bitset")
	}
	dst := New()
	dst.CopyCanonicalFrom(src)
	if dst.anyEngaged() {
		t.Fatal("canonical copy has bitset-backed slots")
	}
	if !reflect.DeepEqual(dst.Edges(), src.Edges()) {
		t.Fatal("canonical copy edges differ from source")
	}
	for i := ID(0); i < n; i++ {
		if !reflect.DeepEqual(dst.Neighbors(i), src.Neighbors(i)) {
			t.Fatalf("Neighbors(%d) differ between copy and source", i)
		}
	}
	// Slots of the canonical copy are ascending-ID ranks.
	for i := 0; i < dst.NumNodes(); i++ {
		if dst.IDAt(i) != ID(i) {
			t.Fatalf("canonical slot %d holds ID %d", i, dst.IDAt(i))
		}
	}
}
