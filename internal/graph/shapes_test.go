package graph

import "testing"

func TestIsStarCentered(t *testing.T) {
	t.Parallel()
	if !Star(10).IsStarCentered(0) {
		t.Error("Star(10) not recognized")
	}
	if Star(10).IsStarCentered(3) {
		t.Error("leaf accepted as center")
	}
	single := New()
	single.AddNode(5)
	if !single.IsStarCentered(5) {
		t.Error("singleton should be a star")
	}
	if single.IsStarCentered(6) {
		t.Error("absent center accepted")
	}
	if Line(4).IsStarCentered(1) {
		t.Error("line accepted as star")
	}
	// Star plus an extra leaf-leaf edge is not a star.
	g := Star(5)
	g.MustAddEdge(1, 2)
	if g.IsStarCentered(0) {
		t.Error("star with chord accepted")
	}
}

func TestCompleteAryTreeShape(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 3, 7, 10, 15} {
		g := CompleteBinaryTree(n)
		if _, err := g.CompleteAryTreeShape(0, 2); err != nil {
			t.Errorf("CBT(%d): %v", n, err)
		}
	}
	// A line of 7 rooted at an end is a valid (degenerate-free) tree
	// but not a complete binary tree: level 1 has one node.
	if _, err := Line(7).CompleteAryTreeShape(0, 2); err == nil {
		t.Error("line accepted as complete binary tree")
	}
	// Rings are not trees.
	if _, err := Ring(8).CompleteAryTreeShape(0, 2); err == nil {
		t.Error("ring accepted")
	}
	// Branching factor below 2 is rejected.
	if _, err := Star(3).CompleteAryTreeShape(0, 1); err == nil {
		t.Error("b=1 accepted")
	}
	// Missing root.
	if _, err := CompleteBinaryTree(7).CompleteAryTreeShape(99, 2); err == nil {
		t.Error("absent root accepted")
	}
	// Depth is reported correctly.
	if d, err := CompleteBinaryTree(15).CompleteAryTreeShape(0, 2); err != nil || d != 3 {
		t.Errorf("depth = %d, %v; want 3", d, err)
	}
	// A 4-ary star is a complete 4-ary tree of depth 1.
	if d, err := Star(5).CompleteAryTreeShape(0, 4); err != nil || d != 1 {
		t.Errorf("4-ary star: depth %d, %v", d, err)
	}
	// ... but exceeds branching 3.
	if _, err := Star(5).CompleteAryTreeShape(0, 3); err == nil {
		t.Error("4 children accepted at b=3")
	}
}
