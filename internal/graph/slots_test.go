package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestSlotAccessors(t *testing.T) {
	t.Parallel()
	g := New()
	g.MustAddEdge(5, 2)
	g.MustAddEdge(2, 9)
	for _, u := range g.Nodes() {
		s, ok := g.Slot(u)
		if !ok {
			t.Fatalf("Slot(%d) missing", u)
		}
		if got := g.IDAt(s); got != u {
			t.Fatalf("IDAt(Slot(%d)) = %d", u, got)
		}
	}
	if _, ok := g.Slot(77); ok {
		t.Fatal("Slot(77) reported present")
	}
	s2, _ := g.Slot(2)
	s5, _ := g.Slot(5)
	s9, _ := g.Slot(9)
	if !g.HasEdgeSlots(s2, s5) || !g.HasEdgeSlots(s9, s2) {
		t.Fatal("HasEdgeSlots missed present edges")
	}
	if g.HasEdgeSlots(s5, s9) {
		t.Fatal("HasEdgeSlots invented edge {5,9}")
	}
}

func TestNeighborsViewSharesStorage(t *testing.T) {
	t.Parallel()
	g := Line(4)
	v := g.NeighborsView(1)
	if !reflect.DeepEqual(v, []ID{0, 2}) {
		t.Fatalf("NeighborsView(1) = %v", v)
	}
	if g.NeighborsView(42) != nil {
		t.Fatal("NeighborsView of unknown node not nil")
	}
	// The view reflects later mutation (callers must not hold it across
	// mutations; this just pins down that it aliases, not copies).
	g.MustAddEdge(1, 3)
	if got := g.NeighborsView(1); !reflect.DeepEqual(got, []ID{0, 2, 3}) {
		t.Fatalf("view after mutation = %v", got)
	}
}

func TestCopyCanonicalFrom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	src := PermuteIDs(RandomConnected(40, 60, rng), rng)
	dst := New()
	dst.CopyCanonicalFrom(src)

	if dst.NumNodes() != src.NumNodes() || dst.NumEdges() != src.NumEdges() {
		t.Fatalf("size mismatch: %v vs %v", dst, src)
	}
	if dst.MaxID() != src.MaxID() {
		t.Fatalf("MaxID = %d, want %d", dst.MaxID(), src.MaxID())
	}
	// Slots are ascending-ID ranks.
	nodes := src.Nodes()
	for i, u := range nodes {
		s, ok := dst.Slot(u)
		if !ok || s != i {
			t.Fatalf("Slot(%d) = %d,%v; want %d", u, s, ok, i)
		}
		if !reflect.DeepEqual(dst.Neighbors(u), src.Neighbors(u)) {
			t.Fatalf("neighbors of %d differ", u)
		}
	}
	if !reflect.DeepEqual(dst.AppendNodes(nil), nodes) {
		t.Fatalf("AppendNodes not ascending: %v", dst.AppendNodes(nil))
	}

	// Re-copy into the same receiver from a smaller graph: semantics
	// must be identical to a fresh canonical copy.
	src2 := Line(5)
	dst.CopyCanonicalFrom(src2)
	if !reflect.DeepEqual(dst.Edges(), src2.Edges()) {
		t.Fatalf("recopy edges = %v", dst.Edges())
	}
	if dst.NumNodes() != 5 {
		t.Fatalf("recopy nodes = %d", dst.NumNodes())
	}
	if _, ok := dst.Slot(nodes[len(nodes)-1]); ok && !src2.HasNode(nodes[len(nodes)-1]) {
		t.Fatal("stale node survived recopy")
	}
}
