package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	t.Parallel()
	e := NewEdge(5, 2)
	if e.A != 2 || e.B != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want {2,5}", e)
	}
	if NewEdge(2, 5) != e {
		t.Fatalf("NewEdge is not order independent")
	}
}

func TestEdgeOther(t *testing.T) {
	t.Parallel()
	e := NewEdge(1, 9)
	if got := e.Other(1); got != 9 {
		t.Errorf("Other(1) = %d, want 9", got)
	}
	if got := e.Other(9); got != 1 {
		t.Errorf("Other(9) = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Other on non-endpoint should panic")
		}
	}()
	e.Other(3)
}

func TestAddEdgeBasics(t *testing.T) {
	t.Parallel()
	g := New()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatalf("self-loop accepted")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatalf("edge should be present in both directions")
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Fatalf("got n=%d m=%d, want 2, 1", g.NumNodes(), g.NumEdges())
	}
	// Duplicate insertion is a no-op.
	if err := g.AddEdge(2, 1); err != nil {
		t.Fatalf("duplicate AddEdge: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge changed edge count")
	}
}

func TestRemoveEdge(t *testing.T) {
	t.Parallel()
	g := Line(4)
	if !g.RemoveEdge(1, 2) {
		t.Fatalf("RemoveEdge(1,2) = false, want true")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatalf("second RemoveEdge(1,2) = true, want false")
	}
	if g.HasEdge(2, 1) {
		t.Fatalf("edge still present after removal")
	}
	if g.IsConnected() {
		t.Fatalf("line with middle edge removed should be disconnected")
	}
}

func TestNodesAndNeighborsSorted(t *testing.T) {
	t.Parallel()
	g := New()
	g.MustAddEdge(7, 3)
	g.MustAddEdge(7, 5)
	g.MustAddEdge(7, 1)
	nodes := g.Nodes()
	want := []ID{1, 3, 5, 7}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", nodes, want)
		}
	}
	nbrs := g.Neighbors(7)
	wantN := []ID{1, 3, 5}
	for i := range wantN {
		if nbrs[i] != wantN[i] {
			t.Fatalf("Neighbors(7) = %v, want %v", nbrs, wantN)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	g := Ring(5)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatalf("mutating clone affected original")
	}
	if c.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("clone edge count wrong")
	}
}

func TestMaxID(t *testing.T) {
	t.Parallel()
	if got := New().MaxID(); got != -1 {
		t.Errorf("empty MaxID = %d, want -1", got)
	}
	if got := Line(10).MaxID(); got != 9 {
		t.Errorf("Line(10).MaxID = %d, want 9", got)
	}
}

func TestLine(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 10, 100} {
		g := Line(n)
		if g.NumNodes() != n {
			t.Fatalf("Line(%d) has %d nodes", n, g.NumNodes())
		}
		if want := n - 1; n > 0 && g.NumEdges() != want {
			t.Fatalf("Line(%d) has %d edges, want %d", n, g.NumEdges(), want)
		}
		if !g.IsConnected() {
			t.Fatalf("Line(%d) disconnected", n)
		}
		if n >= 2 && g.Diameter() != n-1 {
			t.Fatalf("Line(%d) diameter = %d, want %d", n, g.Diameter(), n-1)
		}
	}
}

func TestRing(t *testing.T) {
	t.Parallel()
	g := Ring(6)
	if g.NumEdges() != 6 {
		t.Fatalf("Ring(6) edges = %d, want 6", g.NumEdges())
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) != 2 {
			t.Fatalf("Ring(6) degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
	if g.Diameter() != 3 {
		t.Fatalf("Ring(6) diameter = %d, want 3", g.Diameter())
	}
}

func TestStarAndComplete(t *testing.T) {
	t.Parallel()
	s := Star(8)
	if s.Degree(0) != 7 || s.Diameter() != 2 {
		t.Fatalf("Star(8): center degree %d, diameter %d", s.Degree(0), s.Diameter())
	}
	k := Complete(6)
	if k.NumEdges() != 15 || k.Diameter() != 1 {
		t.Fatalf("Complete(6): m=%d diam=%d", k.NumEdges(), k.Diameter())
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 7, 15, 20, 31} {
		g := CompleteBinaryTree(n)
		if !g.IsTree() {
			t.Fatalf("CompleteBinaryTree(%d) is not a tree", n)
		}
		if g.MaxDegree() > 3 {
			t.Fatalf("CompleteBinaryTree(%d) max degree %d > 3", n, g.MaxDegree())
		}
	}
	// Depth of a 15-node complete binary tree is 3.
	g := CompleteBinaryTree(15)
	if ecc := g.Eccentricity(0); ecc != 3 {
		t.Fatalf("CBT(15) root eccentricity = %d, want 3", ecc)
	}
}

func TestGrid(t *testing.T) {
	t.Parallel()
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("Grid(3,4) nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3*3+2*4 {
		t.Fatalf("Grid(3,4) edges = %d, want 17", g.NumEdges())
	}
	if g.Diameter() != 5 {
		t.Fatalf("Grid(3,4) diameter = %d, want 5", g.Diameter())
	}
}

func TestCaterpillar(t *testing.T) {
	t.Parallel()
	g := Caterpillar(5, 2)
	if g.NumNodes() != 15 {
		t.Fatalf("Caterpillar(5,2) nodes = %d, want 15", g.NumNodes())
	}
	if !g.IsTree() {
		t.Fatalf("caterpillar must be a tree")
	}
}

func TestLollipop(t *testing.T) {
	t.Parallel()
	g := Lollipop(5, 4)
	if g.NumNodes() != 9 {
		t.Fatalf("Lollipop(5,4) nodes = %d, want 9", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatalf("lollipop disconnected")
	}
	if g.Diameter() != 5 {
		t.Fatalf("Lollipop(5,4) diameter = %d, want 5", g.Diameter())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{1, 2, 3, 4, 8, 33, 100} {
			g := RandomTree(n, rng)
			if g.NumNodes() != n {
				t.Fatalf("seed %d n %d: nodes = %d", seed, n, g.NumNodes())
			}
			if !g.IsTree() {
				t.Fatalf("seed %d n %d: not a tree (m=%d, connected=%v)",
					seed, n, g.NumEdges(), g.IsConnected())
			}
		}
	}
}

func TestRandomConnected(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	g := RandomConnected(50, 60, rng)
	if !g.IsConnected() {
		t.Fatalf("RandomConnected output disconnected")
	}
	if g.NumEdges() != 49+60 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 109)
	}
	// extra beyond the complete graph saturates rather than looping.
	small := RandomConnected(4, 100, rng)
	if small.NumEdges() != 6 {
		t.Fatalf("saturated K4 edges = %d, want 6", small.NumEdges())
	}
}

func TestRandomBoundedDegree(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	g, err := RandomBoundedDegree(64, 4, 40, rng)
	if err != nil {
		t.Fatalf("RandomBoundedDegree: %v", err)
	}
	if !g.IsConnected() {
		t.Fatalf("bounded-degree graph disconnected")
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("max degree %d > 4", g.MaxDegree())
	}
	if _, err := RandomBoundedDegree(10, 1, 0, rng); err == nil {
		t.Fatalf("maxDeg=1 should be rejected")
	}
}

func TestPermuteIDsPreservesStructure(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(40, 30, rng)
	p := PermuteIDs(g, rng)
	if p.NumNodes() != g.NumNodes() || p.NumEdges() != g.NumEdges() {
		t.Fatalf("permuted graph changed size")
	}
	if p.Diameter() != g.Diameter() {
		t.Fatalf("permuted diameter %d != %d", p.Diameter(), g.Diameter())
	}
	degG := map[int]int{}
	degP := map[int]int{}
	for _, u := range g.Nodes() {
		degG[g.Degree(u)]++
	}
	for _, u := range p.Nodes() {
		degP[p.Degree(u)]++
	}
	for d, c := range degG {
		if degP[d] != c {
			t.Fatalf("degree histogram differs at %d: %d vs %d", d, c, degP[d])
		}
	}
}

func TestBFSAndDist(t *testing.T) {
	t.Parallel()
	g := Line(6)
	d := g.BFS(0)
	for i := 0; i < 6; i++ {
		if d[ID(i)] != i {
			t.Fatalf("BFS dist to %d = %d, want %d", i, d[ID(i)], i)
		}
	}
	if g.Dist(0, 5) != 5 || g.Dist(5, 0) != 5 || g.Dist(2, 2) != 0 {
		t.Fatalf("Dist wrong on line")
	}
	g2 := New()
	g2.AddNode(0)
	g2.AddNode(1)
	if g2.Dist(0, 1) != -1 {
		t.Fatalf("Dist across components should be -1")
	}
}

func TestEccentricityAndDiameterDisconnected(t *testing.T) {
	t.Parallel()
	g := New()
	g.MustAddEdge(0, 1)
	g.AddNode(2)
	if g.Eccentricity(0) != -1 {
		t.Fatalf("eccentricity in disconnected graph should be -1")
	}
	if g.Diameter() != -1 {
		t.Fatalf("diameter of disconnected graph should be -1")
	}
	if g.ApproxDiameter() != -1 {
		t.Fatalf("approx diameter of disconnected graph should be -1")
	}
}

func TestApproxDiameterOnTrees(t *testing.T) {
	t.Parallel()
	// Double BFS is exact on trees.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		g := RandomTree(60, rng)
		if got, want := g.ApproxDiameter(), g.Diameter(); got != want {
			t.Fatalf("tree approx diameter %d != exact %d", got, want)
		}
	}
}

func TestSpanningTree(t *testing.T) {
	t.Parallel()
	g := Grid(4, 4)
	parent, ok := g.SpanningTree(0)
	if !ok {
		t.Fatalf("spanning tree of connected graph failed")
	}
	if len(parent) != 16 || parent[0] != 0 {
		t.Fatalf("bad parent map")
	}
	// Every parent edge must exist in g.
	for u, p := range parent {
		if u != p && !g.HasEdge(u, p) {
			t.Fatalf("parent edge {%d,%d} not in graph", u, p)
		}
	}
	if TreeDepth(parent) != 6 {
		t.Fatalf("BFS tree depth = %d, want 6 (distance to far corner)", TreeDepth(parent))
	}
	bad := New()
	bad.AddNode(1)
	bad.AddNode(2)
	if _, ok := bad.SpanningTree(1); ok {
		t.Fatalf("spanning tree of disconnected graph should fail")
	}
}

func TestEulerTour(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 5, 17, 40} {
		g := RandomTree(n, rng)
		root := g.MaxID()
		tour, ok := g.EulerTour(root)
		if !ok {
			t.Fatalf("n=%d: Euler tour failed", n)
		}
		if want := 2*(n-1) + 1; n >= 1 && len(tour) != want {
			t.Fatalf("n=%d: tour length %d, want %d", n, len(tour), want)
		}
		if tour[0] != root || tour[len(tour)-1] != root {
			t.Fatalf("tour should start and end at root")
		}
		visits := map[ID]bool{}
		for i := 0; i+1 < len(tour); i++ {
			if !g.HasEdge(tour[i], tour[i+1]) {
				t.Fatalf("tour step {%d,%d} is not an edge", tour[i], tour[i+1])
			}
			visits[tour[i]] = true
		}
		visits[tour[len(tour)-1]] = true
		if len(visits) != n {
			t.Fatalf("tour visits %d of %d nodes", len(visits), n)
		}
	}
}

func TestEulerTourEdgeMultiplicity(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	g := RandomTree(30, rng)
	tour, ok := g.EulerTour(g.MaxID())
	if !ok {
		t.Fatal("tour failed")
	}
	count := map[Edge]int{}
	for i := 0; i+1 < len(tour); i++ {
		count[NewEdge(tour[i], tour[i+1])]++
	}
	for e, c := range count {
		if c != 2 {
			t.Fatalf("tree edge %v traversed %d times, want 2", e, c)
		}
	}
}

func TestIsTree(t *testing.T) {
	t.Parallel()
	if !Line(10).IsTree() {
		t.Errorf("line should be a tree")
	}
	if Ring(10).IsTree() {
		t.Errorf("ring should not be a tree")
	}
	if !New().IsTree() {
		t.Errorf("empty graph counts as a tree")
	}
}

// Property: RandomTree produces connected acyclic graphs for arbitrary
// seeds and sizes.
func TestRandomTreeProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%200 + 1
		g := RandomTree(n, rand.New(rand.NewSource(seed)))
		return g.IsTree() && g.NumNodes() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Euler tour of any random tree has exactly 2(n-1)+1
// stops and every consecutive pair is a tree edge.
func TestEulerTourProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%120 + 1
		g := RandomTree(n, rand.New(rand.NewSource(seed)))
		tour, ok := g.EulerTour(g.MaxID())
		if !ok || len(tour) != 2*(n-1)+1 {
			return false
		}
		for i := 0; i+1 < len(tour); i++ {
			if !g.HasEdge(tour[i], tour[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
