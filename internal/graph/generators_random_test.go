package graph

import (
	"math/rand"
	"testing"
)

func TestPowerLawShape(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 8, 33, 100} {
		g := PowerLaw(n, 2, rand.New(rand.NewSource(7)))
		if g.NumNodes() != n {
			t.Errorf("PowerLaw(%d): %d nodes", n, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("PowerLaw(%d): not connected", n)
		}
		// Connected, so at least a spanning tree's worth of edges.
		if g.NumEdges() < n-1 {
			t.Errorf("PowerLaw(%d): %d edges < n-1", n, g.NumEdges())
		}
	}
}

func TestPowerLawHeavyTail(t *testing.T) {
	t.Parallel()
	// Preferential attachment should grow hubs: the max degree on a
	// decently sized instance must clearly exceed the attachment
	// parameter m (a uniform random graph with the same edge count
	// concentrates near 2m).
	g := PowerLaw(200, 2, rand.New(rand.NewSource(3)))
	if g.MaxDegree() < 8 {
		t.Errorf("PowerLaw(200, 2): MaxDegree = %d, want a hub (>= 8)", g.MaxDegree())
	}
}

func TestSmallWorldShape(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 8, 33, 100} {
		for _, p := range []float64{0, 0.1, 1} {
			g := SmallWorld(n, 2, p, rand.New(rand.NewSource(7)))
			if g.NumNodes() != n {
				t.Errorf("SmallWorld(%d, p=%v): %d nodes", n, p, g.NumNodes())
			}
			// The span-1 ring is never rewired, so every p stays
			// connected.
			if !g.IsConnected() {
				t.Errorf("SmallWorld(%d, p=%v): not connected", n, p)
			}
		}
	}
}

func TestSmallWorldLatticeAtPZero(t *testing.T) {
	t.Parallel()
	// p=0 is the pure ring lattice: each node linked to its k nearest
	// clockwise neighbors, so n*k edges (minus collisions on tiny n).
	g := SmallWorld(20, 2, 0, rand.New(rand.NewSource(1)))
	if g.NumEdges() != 40 {
		t.Errorf("SmallWorld(20, 2, 0): %d edges, want 40", g.NumEdges())
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) != 4 {
			t.Errorf("SmallWorld(20, 2, 0): Degree(%d) = %d, want 4", u, g.Degree(u))
		}
	}
}

func TestRandomGeneratorsDeterministic(t *testing.T) {
	t.Parallel()
	a := PowerLaw(64, 3, rand.New(rand.NewSource(42)))
	b := PowerLaw(64, 3, rand.New(rand.NewSource(42)))
	equalGraphs(t, a, b, "PowerLaw same seed")
	c := SmallWorld(64, 2, 0.2, rand.New(rand.NewSource(42)))
	d := SmallWorld(64, 2, 0.2, rand.New(rand.NewSource(42)))
	equalGraphs(t, c, d, "SmallWorld same seed")
}

func TestRandomGeneratorsInto(t *testing.T) {
	t.Parallel()
	// Dirty the arena first so Reset coverage is real.
	g := Complete(9)
	equalGraphs(t, PowerLaw(40, 2, rand.New(rand.NewSource(5))),
		PowerLawInto(g, 40, 2, rand.New(rand.NewSource(5))), "PowerLawInto")
	equalGraphs(t, SmallWorld(40, 2, 0.3, rand.New(rand.NewSource(5))),
		SmallWorldInto(g, 40, 2, 0.3, rand.New(rand.NewSource(5))), "SmallWorldInto")
}
