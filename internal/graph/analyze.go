package graph

import "slices"

// BFSScratch holds reusable breadth-first-search working memory. The
// zero value is ready to use; each call resizes the buffers to the
// graph at hand and retains them, so repeated analyses (the engine's
// per-run connectivity check, the experiment layer's diameter checks)
// are allocation-free in steady state. A scratch is owned by one
// goroutine; concurrent analyses need one scratch each.
type BFSScratch struct {
	dist  []int
	queue []int
}

// bfsSlots runs a breadth-first search from the slot src and returns
// per-slot distances (-1 for unreachable) plus the number of reached
// slots. The returned slice aliases sc.dist and is valid until the
// next call on sc.
func (sc *BFSScratch) bfsSlots(g *Graph, src int) (dist []int, reached int) {
	n := len(g.ids)
	if cap(sc.dist) < n {
		sc.dist = make([]int, n)
	}
	dist = sc.dist[:n]
	for i := range dist {
		dist[i] = -1
	}
	if cap(sc.queue) < n {
		sc.queue = make([]int, 0, n)
	}
	queue := sc.queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	reached = 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if g.engaged(u) {
			for w, word := range g.bits[u] {
				base := ID(w << 6)
				for word != 0 {
					v := base + ID(trailingZeros64(word))
					word &= word - 1
					sv := g.index[v]
					if dist[sv] < 0 {
						dist[sv] = du + 1
						queue = append(queue, sv)
						reached++
					}
				}
			}
			continue
		}
		for _, v := range g.adj[u] {
			sv := g.index[v]
			if dist[sv] < 0 {
				dist[sv] = du + 1
				queue = append(queue, sv)
				reached++
			}
		}
	}
	sc.queue = queue
	return dist, reached
}

// IsConnected is Graph.IsConnected using sc's buffers.
func (sc *BFSScratch) IsConnected(g *Graph) bool {
	if len(g.ids) == 0 {
		return true
	}
	_, reached := sc.bfsSlots(g, 0)
	return reached == len(g.ids)
}

// Eccentricity is Graph.Eccentricity using sc's buffers.
func (sc *BFSScratch) Eccentricity(g *Graph, u ID) int {
	s, ok := g.index[u]
	if !ok {
		return -1
	}
	dist, reached := sc.bfsSlots(g, s)
	if reached != len(g.ids) {
		return -1
	}
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// ApproxDiameter is Graph.ApproxDiameter using sc's buffers.
func (sc *BFSScratch) ApproxDiameter(g *Graph) int {
	if len(g.ids) == 0 {
		return 0
	}
	dist, reached := sc.bfsSlots(g, 0)
	if reached != len(g.ids) {
		return -1
	}
	far, farD := g.ids[0], 0
	for slot, d := range dist {
		v := g.ids[slot]
		if d > farD || (d == farD && v < far) {
			far, farD = v, d
		}
	}
	return sc.Eccentricity(g, far)
}

// bfsSlots without a caller-provided scratch allocates a throwaway one.
func (g *Graph) bfsSlots(src int) (dist []int, reached int) {
	var sc BFSScratch
	return sc.bfsSlots(g, src)
}

// BFS runs a breadth-first search from src and returns the distance of
// every reachable node. Unreachable nodes are absent from the map.
func (g *Graph) BFS(src ID) map[ID]int {
	out := make(map[ID]int, len(g.ids))
	s, ok := g.index[src]
	if !ok {
		return out
	}
	dist, _ := g.bfsSlots(s)
	for slot, d := range dist {
		if d >= 0 {
			out[g.ids[slot]] = d
		}
	}
	return out
}

// Dist returns the hop distance between u and v, or -1 if v is
// unreachable from u.
func (g *Graph) Dist(u, v ID) int {
	if u == v && g.HasNode(u) {
		return 0
	}
	d, ok := g.BFS(u)[v]
	if !ok {
		return -1
	}
	return d
}

// IsConnected reports whether g is connected. The empty graph counts as
// connected.
func (g *Graph) IsConnected() bool {
	if len(g.ids) == 0 {
		return true
	}
	_, reached := g.bfsSlots(0)
	return reached == len(g.ids)
}

// Eccentricity returns the greatest distance from u to any node, or -1
// if some node is unreachable.
func (g *Graph) Eccentricity(u ID) int {
	s, ok := g.index[u]
	if !ok {
		return -1
	}
	dist, reached := g.bfsSlots(s)
	if reached != len(g.ids) {
		return -1
	}
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter of g (the maximum eccentricity),
// or -1 if g is disconnected. It runs a BFS from every node, so it is
// O(n·m); use ApproxDiameter for large instances.
func (g *Graph) Diameter() int {
	diam := 0
	for _, u := range g.ids {
		ecc := g.Eccentricity(u)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// ApproxDiameter returns a 2-approximation lower bound on the diameter
// via double BFS (eccentricity of the farthest node from an arbitrary
// start). It returns -1 if g is disconnected. The true diameter lies in
// [result, 2·result].
func (g *Graph) ApproxDiameter() int {
	if len(g.ids) == 0 {
		return 0
	}
	dist, reached := g.bfsSlots(0)
	if reached != len(g.ids) {
		return -1
	}
	far, farD := g.ids[0], 0
	for slot, d := range dist {
		v := g.ids[slot]
		if d > farD || (d == farD && v < far) {
			far, farD = v, d
		}
	}
	return g.Eccentricity(far)
}

// SpanningTree returns a BFS spanning tree of g rooted at root, as a
// parent map (the root maps to itself). It returns false if g is
// disconnected or root is absent.
func (g *Graph) SpanningTree(root ID) (map[ID]ID, bool) {
	if !g.HasNode(root) {
		return nil, false
	}
	parent := map[ID]ID{root: root}
	frontier := []ID{root}
	for len(frontier) > 0 {
		var next []ID
		for _, u := range frontier {
			// Deterministic order keeps tree shape reproducible.
			for _, v := range g.Neighbors(u) {
				if _, seen := parent[v]; !seen {
					parent[v] = u
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	if len(parent) != len(g.adj) {
		return nil, false
	}
	return parent, true
}

// TreeDepth returns the depth of the tree encoded by a parent map (root
// maps to itself): the maximum number of parent hops from any node.
func TreeDepth(parent map[ID]ID) int {
	depth := make(map[ID]int, len(parent))
	var depthOf func(u ID) int
	depthOf = func(u ID) int {
		if d, ok := depth[u]; ok {
			return d
		}
		p := parent[u]
		if p == u {
			depth[u] = 0
			return 0
		}
		d := depthOf(p) + 1
		depth[u] = d
		return d
	}
	maxDepth := 0
	for u := range parent {
		if d := depthOf(u); d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// IsTree reports whether g is a tree (connected with exactly n-1 edges).
func (g *Graph) IsTree() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	return g.NumEdges() == n-1 && g.IsConnected()
}

// EulerTour returns an Euler tour of the BFS spanning tree of g rooted
// at root: a closed walk visiting every tree edge exactly twice, as a
// sequence of node IDs of length 2(n-1)+1 that starts and ends at root.
// It returns false if g is disconnected. The tour is the virtual line
// used by the centralized strategy of Theorem 6.3.
func (g *Graph) EulerTour(root ID) ([]ID, bool) {
	parent, ok := g.SpanningTree(root)
	if !ok {
		return nil, false
	}
	children := make(map[ID][]ID, len(parent))
	for u, p := range parent {
		if u != p {
			children[p] = append(children[p], u)
		}
	}
	for _, cs := range children {
		sortIDs(cs)
	}
	// Iterative DFS producing the tour, to stay safe on path graphs
	// (recursion depth would be Θ(n)).
	tour := make([]ID, 0, 2*len(parent))
	type frame struct {
		node ID
		next int
	}
	stack := []frame{{node: root}}
	tour = append(tour, root)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		cs := children[top.node]
		if top.next < len(cs) {
			child := cs[top.next]
			top.next++
			stack = append(stack, frame{node: child})
			tour = append(tour, child)
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			tour = append(tour, stack[len(stack)-1].node)
		}
	}
	return tour, true
}

func sortIDs(ids []ID) {
	slices.Sort(ids)
}
