package graph

import "fmt"

// IsStarCentered reports whether g is a spanning star centered at c:
// every other node is adjacent to c and has degree exactly 1. A
// single-node graph is a star centered at that node.
func (g *Graph) IsStarCentered(c ID) bool {
	if !g.HasNode(c) {
		return false
	}
	n := g.NumNodes()
	if n == 1 {
		return g.NumEdges() == 0
	}
	if g.Degree(c) != n-1 || g.NumEdges() != n-1 {
		return false
	}
	for _, u := range g.Nodes() {
		if u != c && g.Degree(u) != 1 {
			return false
		}
	}
	return true
}

// CompleteAryTreeShape checks that g is a tree rooted at root in which
// every node has at most b children and every depth level except the
// last is fully populated (level i holds b^i nodes). It returns the
// tree depth. This is the target-shape validator for the paper's
// LineToCompleteBinaryTree (b = 2) and its polylogarithmic variant.
func (g *Graph) CompleteAryTreeShape(root ID, b int) (depth int, err error) {
	if b < 2 {
		return 0, fmt.Errorf("graph: branching factor %d < 2", b)
	}
	if !g.IsTree() {
		return 0, fmt.Errorf("graph: not a tree (n=%d, m=%d, connected=%v)",
			g.NumNodes(), g.NumEdges(), g.IsConnected())
	}
	if !g.HasNode(root) {
		return 0, fmt.Errorf("graph: root %d absent", root)
	}
	dist := g.BFS(root)
	levels := make(map[int]int)
	for _, d := range dist {
		levels[d]++
		if d > depth {
			depth = d
		}
	}
	// Child-count bound: the root has up to b neighbors, everyone else
	// has a parent plus at most b children.
	for _, u := range g.Nodes() {
		limit := b + 1
		if u == root {
			limit = b
		}
		if g.Degree(u) > limit {
			return 0, fmt.Errorf("graph: node %d has %d children (> %d)", u, g.Degree(u), b)
		}
	}
	// Full levels: level i < depth must hold exactly b^i... except that
	// the top of the tree can only be "complete" up to capacity; demand
	// capacity-fullness for all levels above the last.
	capacity := 1
	for i := 0; i < depth; i++ {
		if levels[i] != capacity {
			return 0, fmt.Errorf("graph: level %d holds %d nodes, want %d", i, levels[i], capacity)
		}
		if capacity > g.NumNodes() { // overflow guard for big b
			break
		}
		capacity *= b
	}
	return depth, nil
}
