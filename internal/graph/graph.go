// Package graph provides the static undirected graphs that actively
// dynamic networks start from: a deterministic adjacency structure,
// standard analyses (BFS, diameter, spanning trees, Euler tours) and a
// family of generators used by the paper's workloads (lines, rings,
// increasing-order rings, trees, bounded-degree random graphs, ...).
//
// Node identity doubles as the paper's unique identifier (UID): the
// algorithms in internal/core are comparison based, so a node's ID is
// the only thing they ever compare.
//
// Representation (see DESIGN.md): nodes are interned into dense slots
// (ID → int) and adjacency is stored as sorted []ID slices per slot,
// with the edge count maintained incrementally. This keeps the round
// loop of internal/sim allocation free: NeighborsInto and EachNeighbor
// expose the sorted adjacency without copying-and-sorting maps, and
// NumEdges is O(1). Nodes are never removed, so MaxID is incremental
// too. The public semantics are identical to the original map-based
// implementation (see TestDenseMatchesMapModel).
package graph

import (
	"fmt"
	"sort"
)

// ID identifies a node and serves as its UID. IDs must be non-negative
// and unique within a graph.
type ID int

// Edge is an undirected pair of node IDs, stored in canonical order
// (A < B) so it can be used as a map key.
type Edge struct {
	A, B ID
}

// NewEdge returns the canonical form of the undirected edge {u, v}.
func NewEdge(u, v ID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{A: u, B: v}
}

// Other returns the endpoint of e that is not u. It panics if u is not
// an endpoint, which always indicates a programming error.
func (e Edge) Other(u ID) ID {
	switch u {
	case e.A:
		return e.B
	case e.B:
		return e.A
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", u, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.A, e.B) }

// Graph is a simple undirected graph. The zero value is not usable;
// call New.
type Graph struct {
	index map[ID]int // ID → dense slot, assigned in insertion order
	ids   []ID       // slot → ID
	adj   [][]ID     // slot → neighbor IDs, sorted ascending
	edges int        // undirected edge count, maintained incrementally
	maxID ID         // largest ID ever added (-1 when empty); nodes are never removed
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[ID]int), maxID: -1}
}

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(u ID) {
	if _, ok := g.index[u]; ok {
		return
	}
	g.index[u] = len(g.ids)
	g.ids = append(g.ids, u)
	if n := len(g.adj); n < cap(g.adj) {
		// Reclaim the adjacency array this slot held before Reset.
		g.adj = g.adj[:n+1]
		g.adj[n] = g.adj[n][:0]
	} else {
		g.adj = append(g.adj, nil)
	}
	if u > g.maxID {
		g.maxID = u
	}
}

// Reset clears g to the empty graph while retaining allocated
// capacity: the slot index, the ID table and every per-slot adjacency
// list keep their backing arrays, so the next build into the same
// receiver allocates only on growth. Together with the *Into generator
// variants this makes repeated workload generation allocation-light in
// steady state. Like any mutation, Reset invalidates NeighborsView
// results.
func (g *Graph) Reset() {
	clear(g.index)
	g.ids = g.ids[:0]
	g.adj = g.adj[:0]
	g.edges = 0
	g.maxID = -1
}

// HasNode reports whether u is a node of g.
func (g *Graph) HasNode(u ID) bool {
	_, ok := g.index[u]
	return ok
}

// AddEdge inserts the undirected edge {u, v}, adding the endpoints if
// necessary. Self-loops are rejected with an error because the model
// has no use for them; duplicate edges are a no-op.
func (g *Graph) AddEdge(u, v ID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	g.AddNode(u)
	g.AddNode(v)
	su, sv := g.index[u], g.index[v]
	var inserted bool
	g.adj[su], inserted = insertSorted(g.adj[su], v)
	if inserted {
		g.adj[sv], _ = insertSorted(g.adj[sv], u)
		g.edges++
	}
	return nil
}

// MustAddEdge is AddEdge for construction code where a self-loop is a
// programming error.
func (g *Graph) MustAddEdge(u, v ID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it existed.
func (g *Graph) RemoveEdge(u, v ID) bool {
	su, ok := g.index[u]
	if !ok {
		return false
	}
	sv, ok := g.index[v]
	if !ok {
		return false
	}
	var removed bool
	g.adj[su], removed = removeSorted(g.adj[su], v)
	if !removed {
		return false
	}
	g.adj[sv], _ = removeSorted(g.adj[sv], u)
	g.edges--
	return true
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v ID) bool {
	su, ok := g.index[u]
	if !ok {
		return false
	}
	sv, ok := g.index[v]
	if !ok {
		return false
	}
	// Search the lower-degree endpoint.
	if len(g.adj[su]) > len(g.adj[sv]) {
		su, v = sv, u
	}
	return containsSorted(g.adj[su], v)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.ids) }

// NumEdges returns the number of undirected edges in O(1).
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []ID {
	out := make([]ID, len(g.ids))
	copy(out, g.ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the neighbors of u in ascending order. The result
// is a fresh slice owned by the caller; use NeighborsInto or
// EachNeighbor on hot paths.
func (g *Graph) Neighbors(u ID) []ID {
	su, ok := g.index[u]
	if !ok {
		return []ID{}
	}
	out := make([]ID, len(g.adj[su]))
	copy(out, g.adj[su])
	return out
}

// NeighborsInto appends the neighbors of u, ascending, to dst[:0] and
// returns it, reusing dst's backing array when it is large enough. The
// result aliases dst, not the graph's internal storage.
func (g *Graph) NeighborsInto(u ID, dst []ID) []ID {
	dst = dst[:0]
	if su, ok := g.index[u]; ok {
		dst = append(dst, g.adj[su]...)
	}
	return dst
}

// EachNeighbor calls fn for every neighbor of u in ascending order,
// stopping early if fn returns false. It performs no allocation. The
// graph must not be mutated during the iteration.
func (g *Graph) EachNeighbor(u ID, fn func(v ID) bool) {
	su, ok := g.index[u]
	if !ok {
		return
	}
	for _, v := range g.adj[su] {
		if !fn(v) {
			return
		}
	}
}

// HaveCommonNeighbor reports whether u and v share at least one common
// neighbor, by merge-walking the two sorted adjacency lists. It is the
// allocation-free primitive behind the model's distance-2 rule.
func (g *Graph) HaveCommonNeighbor(u, v ID) bool {
	su, ok := g.index[u]
	if !ok {
		return false
	}
	sv, ok := g.index[v]
	if !ok {
		return false
	}
	a, b := g.adj[su], g.adj[sv]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Degree returns the degree of u.
func (g *Graph) Degree(u ID) int {
	su, ok := g.index[u]
	if !ok {
		return 0
	}
	return len(g.adj[su])
}

// MaxDegree returns the maximum degree over all nodes (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > maxDeg {
			maxDeg = len(nbrs)
		}
	}
	return maxDeg
}

// Edges returns all edges in canonical form, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for _, u := range g.Nodes() {
		for _, v := range g.adj[g.index[u]] {
			if u < v {
				out = append(out, Edge{A: u, B: v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		index: make(map[ID]int, len(g.index)),
		ids:   make([]ID, len(g.ids)),
		adj:   make([][]ID, len(g.adj)),
		edges: g.edges,
		maxID: g.maxID,
	}
	copy(c.ids, g.ids)
	for u, s := range g.index {
		c.index[u] = s
	}
	for s, nbrs := range g.adj {
		if len(nbrs) > 0 {
			c.adj[s] = append([]ID(nil), nbrs...)
		}
	}
	return c
}

// MaxID returns the largest node ID in g, or -1 for an empty graph.
// In the paper's terms this is u_max, the eventual unique leader.
func (g *Graph) MaxID() ID { return g.maxID }

// Slot returns u's dense slot (assigned in insertion order) and
// whether u is a node of g. Slots are stable as long as no node is
// added: the simulation engine relies on this to address per-node
// state by index instead of by map lookup.
func (g *Graph) Slot(u ID) (int, bool) {
	s, ok := g.index[u]
	return s, ok
}

// IDAt returns the ID occupying the given slot. The slot must be in
// [0, NumNodes()).
func (g *Graph) IDAt(slot int) ID { return g.ids[slot] }

// HasEdgeSlots reports whether the edge between the nodes at slots su
// and sv is present. Both slots must be valid; it is the map-free
// counterpart of HasEdge for slot-addressed callers.
func (g *Graph) HasEdgeSlots(su, sv int) bool {
	// Search the lower-degree endpoint.
	if len(g.adj[su]) > len(g.adj[sv]) {
		su, sv = sv, su
	}
	return containsSorted(g.adj[su], g.ids[sv])
}

// NeighborsView returns u's neighbors in ascending order as a view of
// the graph's internal storage: zero-copy, but callers must not modify
// it, and any mutation of g invalidates it. Unknown nodes yield nil.
func (g *Graph) NeighborsView(u ID) []ID {
	su, ok := g.index[u]
	if !ok {
		return nil
	}
	return g.adj[su]
}

// AppendNodes appends all node IDs in slot order to dst[:0] and
// returns it, reusing dst's backing array when it has capacity. For
// canonical graphs (see CopyCanonicalFrom) slot order is ascending ID
// order.
func (g *Graph) AppendNodes(dst []ID) []ID {
	return append(dst[:0], g.ids...)
}

// CopyCanonicalFrom makes g a canonical deep copy of src: the same
// nodes and edges, with slots assigned in ascending ID order. Existing
// backing arrays (ids, adjacency lists, the index map) are reused, so
// repeated copies into the same receiver do not allocate in steady
// state. The temporal.History layer keeps its graphs canonical this
// way, which is what lets the engine equate slots with ascending-ID
// ranks.
func (g *Graph) CopyCanonicalFrom(src *Graph) {
	n := len(src.ids)
	g.ids = append(g.ids[:0], src.ids...)
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	if g.index == nil {
		g.index = make(map[ID]int, n)
	} else {
		clear(g.index)
	}
	for i, id := range g.ids {
		g.index[id] = i
	}
	if cap(g.adj) < n {
		adj := make([][]ID, n)
		copy(adj, g.adj[:cap(g.adj)])
		g.adj = adj
	} else {
		g.adj = g.adj[:n]
	}
	for i, id := range g.ids {
		g.adj[i] = append(g.adj[i][:0], src.adj[src.index[id]]...)
	}
	g.edges = src.edges
	g.maxID = src.maxID
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}

// insertSorted inserts v into the ascending slice s, reporting whether
// it was not already present.
func insertSorted(s []ID, v ID) ([]ID, bool) {
	i := searchID(s, v)
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// removeSorted deletes v from the ascending slice s, reporting whether
// it was present.
func removeSorted(s []ID, v ID) ([]ID, bool) {
	i := searchID(s, v)
	if i >= len(s) || s[i] != v {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// containsSorted reports whether v occurs in the ascending slice s.
func containsSorted(s []ID, v ID) bool {
	i := searchID(s, v)
	return i < len(s) && s[i] == v
}

// searchID returns the smallest index i with s[i] >= v (binary search).
func searchID(s []ID, v ID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
