// Package graph provides the static undirected graphs that actively
// dynamic networks start from: a deterministic adjacency structure,
// standard analyses (BFS, diameter, spanning trees, Euler tours) and a
// family of generators used by the paper's workloads (lines, rings,
// increasing-order rings, trees, bounded-degree random graphs, ...).
//
// Node identity doubles as the paper's unique identifier (UID): the
// algorithms in internal/core are comparison based, so a node's ID is
// the only thing they ever compare.
//
// Representation (see DESIGN.md): nodes are interned into dense slots
// (ID → int) and adjacency is stored per slot in one of two forms. A
// slot starts as a sorted []ID slice; once its degree crosses
// max(bitsetMinDeg, words(maxID+1)) — the point where an ID-indexed
// bitset is both faster and no larger than the slice — the slot is
// promoted to a bitset, making HasEdge, AddEdge and RemoveEdge O(1)
// and HaveCommonNeighbor a word-wise AND. This is what keeps the dense
// star phases of internal/core subquadratic at n = 10^6: the star
// center's adjacency would otherwise pay an O(deg) memmove per edge
// flip. Slots demote back to slices (with hysteresis) as they thin
// out, and both representations iterate neighbors in ascending ID
// order, so the public semantics are identical to the original
// map-based implementation (see TestDenseMatchesMapModel and the
// randomized differential tests in bitset_test.go). Nodes are never
// removed, so MaxID is incremental and NumEdges is O(1).
package graph

import (
	"fmt"
	"slices"
)

// ID identifies a node and serves as its UID. IDs must be non-negative
// and unique within a graph.
type ID int

// Edge is an undirected pair of node IDs, stored in canonical order
// (A < B) so it can be used as a map key.
type Edge struct {
	A, B ID
}

// NewEdge returns the canonical form of the undirected edge {u, v}.
func NewEdge(u, v ID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{A: u, B: v}
}

// Other returns the endpoint of e that is not u. It panics if u is not
// an endpoint, which always indicates a programming error.
func (e Edge) Other(u ID) ID {
	switch u {
	case e.A:
		return e.B
	case e.B:
		return e.A
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", u, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.A, e.B) }

// Graph is a simple undirected graph. The zero value is not usable;
// call New.
type Graph struct {
	index map[ID]int // ID → dense slot, assigned in insertion order
	ids   []ID       // slot → ID
	adj   [][]ID     // slot → neighbor IDs, sorted ascending (slice-backed slots)
	bits  [][]uint64 // slot → neighbor bitset indexed by ID (bitset-backed slots)
	bdeg  []int      // slot → degree when bitset-backed, -1 when slice-backed
	edges int        // undirected edge count, maintained incrementally
	maxID ID         // largest ID ever added (-1 when empty); nodes are never removed

	// minDeg overrides bitsetMinDeg when positive. It exists for tests
	// that need the bitset representation to engage on tiny graphs; it
	// survives Reset (configuration, not content) and is propagated by
	// Clone and CopyCanonicalFrom.
	minDeg int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[ID]int), maxID: -1}
}

// engaged reports whether slot s is bitset-backed.
func (g *Graph) engaged(s int) bool { return s < len(g.bdeg) && g.bdeg[s] >= 0 }

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(u ID) {
	if _, ok := g.index[u]; ok {
		return
	}
	g.index[u] = len(g.ids)
	g.ids = append(g.ids, u)
	if n := len(g.adj); n < cap(g.adj) {
		// Reclaim the adjacency array this slot held before Reset.
		g.adj = g.adj[:n+1]
		g.adj[n] = g.adj[n][:0]
	} else {
		g.adj = append(g.adj, nil)
	}
	if n := len(g.bits); n < cap(g.bits) {
		g.bits = g.bits[:n+1]
		g.bits[n] = g.bits[n][:0]
	} else {
		g.bits = append(g.bits, nil)
	}
	g.bdeg = append(g.bdeg, -1)
	if u > g.maxID {
		g.maxID = u
	}
}

// Reset clears g to the empty graph while retaining allocated
// capacity: the slot index, the ID table and every per-slot adjacency
// list (slice or bitset) keep their backing arrays, so the next build
// into the same receiver allocates only on growth. Together with the
// *Into generator variants this makes repeated workload generation
// allocation-light in steady state. Like any mutation, Reset
// invalidates NeighborsView results.
func (g *Graph) Reset() {
	clear(g.index)
	g.ids = g.ids[:0]
	g.adj = g.adj[:0]
	g.bits = g.bits[:0]
	g.bdeg = g.bdeg[:0]
	g.edges = 0
	g.maxID = -1
}

// HasNode reports whether u is a node of g.
func (g *Graph) HasNode(u ID) bool {
	_, ok := g.index[u]
	return ok
}

// AddEdge inserts the undirected edge {u, v}, adding the endpoints if
// necessary. Self-loops are rejected with an error because the model
// has no use for them; duplicate edges are a no-op.
func (g *Graph) AddEdge(u, v ID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	g.AddNode(u)
	g.AddNode(v)
	su, sv := g.index[u], g.index[v]
	if g.insertNeighbor(su, v) {
		g.insertNeighbor(sv, u)
		g.edges++
		g.maybePromote(su)
		g.maybePromote(sv)
	}
	return nil
}

// insertNeighbor adds v to slot s's neighbor set, reporting whether it
// was not already present.
func (g *Graph) insertNeighbor(s int, v ID) bool {
	if g.engaged(s) {
		if bitsetHas(g.bits[s], v) {
			return false
		}
		g.bits[s] = bitsetSet(g.bits[s], v)
		g.bdeg[s]++
		return true
	}
	var inserted bool
	g.adj[s], inserted = insertSorted(g.adj[s], v)
	return inserted
}

// removeNeighbor deletes v from slot s's neighbor set, reporting
// whether it was present.
func (g *Graph) removeNeighbor(s int, v ID) bool {
	if g.engaged(s) {
		if !bitsetHas(g.bits[s], v) {
			return false
		}
		bitsetUnset(g.bits[s], v)
		g.bdeg[s]--
		return true
	}
	var removed bool
	g.adj[s], removed = removeSorted(g.adj[s], v)
	return removed
}

// promoteThreshold is the degree at which a slice-backed slot switches
// to a bitset. The words(maxID+1) term doubles as a density gate: a
// bitset over sparse IDs would be mostly zero words, and it also keeps
// bitset memory at or below the memory of the slice it replaces.
func (g *Graph) promoteThreshold() int {
	t := bitsetMinDeg
	if g.minDeg > 0 {
		t = g.minDeg
	}
	if g.maxID >= 0 {
		if w := bitsetWords(g.maxID); w > t {
			t = w
		}
	}
	return t
}

func (g *Graph) maybePromote(s int) {
	if !g.engaged(s) && len(g.adj[s]) >= g.promoteThreshold() {
		g.promote(s)
	}
}

// promote rebuilds slot s's adjacency as a bitset. The sorted slice's
// backing array is retained (truncated to zero length) so a later
// demotion reuses it.
func (g *Graph) promote(s int) {
	w := bitsetWords(g.maxID)
	b := g.bits[s]
	if cap(b) < w {
		b = make([]uint64, w)
	} else {
		b = b[:w]
		clear(b)
	}
	for _, v := range g.adj[s] {
		b[int(v>>6)] |= 1 << (uint(v) & 63)
	}
	g.bits[s] = b
	g.bdeg[s] = len(g.adj[s])
	g.adj[s] = g.adj[s][:0]
}

// maybeDemote demotes slot s back to a sorted slice once its degree
// falls below half the promotion threshold. The factor-of-two
// hysteresis keeps a slot oscillating around the threshold from
// rebuilding its representation every round.
func (g *Graph) maybeDemote(s int) {
	if g.engaged(s) && g.bdeg[s]*2 < g.promoteThreshold() {
		g.demote(s)
	}
}

// demote rebuilds slot s's adjacency as a sorted slice from its
// bitset. Bitset iteration ascends by ID, so the slice comes out
// sorted for free; the bitset's backing array is retained for a later
// promotion.
func (g *Graph) demote(s int) {
	out := g.adj[s][:0]
	out = appendBitset(out, g.bits[s])
	g.adj[s] = out
	g.bits[s] = g.bits[s][:0]
	g.bdeg[s] = -1
}

// MustAddEdge is AddEdge for construction code where a self-loop is a
// programming error.
func (g *Graph) MustAddEdge(u, v ID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it existed.
func (g *Graph) RemoveEdge(u, v ID) bool {
	su, ok := g.index[u]
	if !ok {
		return false
	}
	sv, ok := g.index[v]
	if !ok {
		return false
	}
	if !g.removeNeighbor(su, v) {
		return false
	}
	g.removeNeighbor(sv, u)
	g.edges--
	g.maybeDemote(su)
	g.maybeDemote(sv)
	return true
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v ID) bool {
	su, ok := g.index[u]
	if !ok {
		return false
	}
	sv, ok := g.index[v]
	if !ok {
		return false
	}
	return g.hasEdgeSlots(su, sv, u, v)
}

// hasEdgeSlots is the shared core of HasEdge and HasEdgeSlots: su/sv
// are the endpoint slots, u/v their IDs.
func (g *Graph) hasEdgeSlots(su, sv int, u, v ID) bool {
	// A bitset endpoint answers in O(1).
	if g.engaged(su) {
		return bitsetHas(g.bits[su], v)
	}
	if g.engaged(sv) {
		return bitsetHas(g.bits[sv], u)
	}
	// Both slices: search the lower-degree endpoint.
	if len(g.adj[su]) > len(g.adj[sv]) {
		su, v = sv, u
	}
	return containsSorted(g.adj[su], v)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.ids) }

// NumEdges returns the number of undirected edges in O(1).
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []ID {
	out := make([]ID, len(g.ids))
	copy(out, g.ids)
	slices.Sort(out)
	return out
}

// Neighbors returns the neighbors of u in ascending order. The result
// is a fresh slice owned by the caller; use NeighborsInto or
// EachNeighbor on hot paths.
func (g *Graph) Neighbors(u ID) []ID {
	su, ok := g.index[u]
	if !ok {
		return []ID{}
	}
	if g.engaged(su) {
		return appendBitset(make([]ID, 0, g.bdeg[su]), g.bits[su])
	}
	out := make([]ID, len(g.adj[su]))
	copy(out, g.adj[su])
	return out
}

// NeighborsInto appends the neighbors of u, ascending, to dst[:0] and
// returns it, reusing dst's backing array when it is large enough. The
// result aliases dst, not the graph's internal storage.
func (g *Graph) NeighborsInto(u ID, dst []ID) []ID {
	dst = dst[:0]
	su, ok := g.index[u]
	if !ok {
		return dst
	}
	if g.engaged(su) {
		return appendBitset(dst, g.bits[su])
	}
	return append(dst, g.adj[su]...)
}

// EachNeighbor calls fn for every neighbor of u in ascending order,
// stopping early if fn returns false. It performs no allocation. The
// graph must not be mutated during the iteration.
func (g *Graph) EachNeighbor(u ID, fn func(v ID) bool) {
	su, ok := g.index[u]
	if !ok {
		return
	}
	g.eachNeighborSlot(su, fn)
}

// eachNeighborSlot is EachNeighbor addressed by slot.
func (g *Graph) eachNeighborSlot(su int, fn func(v ID) bool) {
	if g.engaged(su) {
		for w, word := range g.bits[su] {
			base := ID(w << 6)
			for word != 0 {
				v := base + ID(trailingZeros64(word))
				if !fn(v) {
					return
				}
				word &= word - 1
			}
		}
		return
	}
	for _, v := range g.adj[su] {
		if !fn(v) {
			return
		}
	}
}

// HaveCommonNeighbor reports whether u and v share at least one common
// neighbor. It is the allocation-free primitive behind the model's
// distance-2 rule: a word-wise AND when both endpoints are
// bitset-backed, a membership probe of the bitset when one is, and a
// merge walk of the two sorted lists when neither is.
func (g *Graph) HaveCommonNeighbor(u, v ID) bool {
	su, ok := g.index[u]
	if !ok {
		return false
	}
	sv, ok := g.index[v]
	if !ok {
		return false
	}
	eu, ev := g.engaged(su), g.engaged(sv)
	switch {
	case eu && ev:
		return bitsetIntersects(g.bits[su], g.bits[sv])
	case eu:
		return sliceMeetsBitset(g.adj[sv], g.bits[su])
	case ev:
		return sliceMeetsBitset(g.adj[su], g.bits[sv])
	}
	a, b := g.adj[su], g.adj[sv]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// sliceMeetsBitset reports whether any ID of the sorted slice s has
// its bit set in b.
func sliceMeetsBitset(s []ID, b []uint64) bool {
	for _, v := range s {
		if bitsetHas(b, v) {
			return true
		}
	}
	return false
}

// Degree returns the degree of u.
func (g *Graph) Degree(u ID) int {
	su, ok := g.index[u]
	if !ok {
		return 0
	}
	return g.degreeSlot(su)
}

func (g *Graph) degreeSlot(su int) int {
	if g.engaged(su) {
		return g.bdeg[su]
	}
	return len(g.adj[su])
}

// MaxDegree returns the maximum degree over all nodes (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for s := range g.adj {
		if d := g.degreeSlot(s); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Edges returns all edges in canonical form, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for _, u := range g.Nodes() {
		su := g.index[u]
		g.eachNeighborSlot(su, func(v ID) bool {
			if u < v {
				out = append(out, Edge{A: u, B: v})
			}
			return true
		})
	}
	return out
}

// Clone returns a deep copy of g, including each slot's current
// representation.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		index:  make(map[ID]int, len(g.index)),
		ids:    make([]ID, len(g.ids)),
		adj:    make([][]ID, len(g.adj)),
		bits:   make([][]uint64, len(g.bits)),
		bdeg:   make([]int, len(g.bdeg)),
		edges:  g.edges,
		maxID:  g.maxID,
		minDeg: g.minDeg,
	}
	copy(c.ids, g.ids)
	copy(c.bdeg, g.bdeg)
	for u, s := range g.index {
		c.index[u] = s
	}
	for s, nbrs := range g.adj {
		if len(nbrs) > 0 {
			c.adj[s] = append([]ID(nil), nbrs...)
		}
	}
	for s, b := range g.bits {
		if g.engaged(s) {
			c.bits[s] = append([]uint64(nil), b...)
		}
	}
	return c
}

// MaxID returns the largest node ID in g, or -1 for an empty graph.
// In the paper's terms this is u_max, the eventual unique leader.
func (g *Graph) MaxID() ID { return g.maxID }

// Slot returns u's dense slot (assigned in insertion order) and
// whether u is a node of g. Slots are stable as long as no node is
// added: the simulation engine relies on this to address per-node
// state by index instead of by map lookup.
func (g *Graph) Slot(u ID) (int, bool) {
	s, ok := g.index[u]
	return s, ok
}

// IDAt returns the ID occupying the given slot. The slot must be in
// [0, NumNodes()).
func (g *Graph) IDAt(slot int) ID { return g.ids[slot] }

// HasEdgeSlots reports whether the edge between the nodes at slots su
// and sv is present. Both slots must be valid; it is the map-free
// counterpart of HasEdge for slot-addressed callers.
func (g *Graph) HasEdgeSlots(su, sv int) bool {
	return g.hasEdgeSlots(su, sv, g.ids[su], g.ids[sv])
}

// NeighborsView returns u's neighbors in ascending order, zero-copy
// when u's slot is slice-backed: callers must not modify the result,
// and any mutation of g invalidates it. For bitset-backed slots a
// fresh slice is materialized, so hot paths should prefer EachNeighbor
// or NeighborsInto; the engine only calls NeighborsView on initial
// snapshots, which CopyCanonicalFrom always leaves slice-backed.
// Unknown nodes yield nil.
func (g *Graph) NeighborsView(u ID) []ID {
	su, ok := g.index[u]
	if !ok {
		return nil
	}
	if g.engaged(su) {
		return appendBitset(make([]ID, 0, g.bdeg[su]), g.bits[su])
	}
	return g.adj[su]
}

// AppendNodes appends all node IDs in slot order to dst[:0] and
// returns it, reusing dst's backing array when it has capacity. For
// canonical graphs (see CopyCanonicalFrom) slot order is ascending ID
// order.
func (g *Graph) AppendNodes(dst []ID) []ID {
	return append(dst[:0], g.ids...)
}

// CopyCanonicalFrom makes g a canonical deep copy of src: the same
// nodes and edges, with slots assigned in ascending ID order and every
// slot slice-backed regardless of src's representations (mutation
// re-promotes dense slots on the first edge flip past the threshold;
// keeping copies slice-backed is what guarantees NeighborsView on
// initial snapshots stays zero-copy). Existing backing arrays (ids,
// adjacency lists, bitsets, the index map) are reused, so repeated
// copies into the same receiver do not allocate in steady state. The
// temporal.History layer keeps its graphs canonical this way, which is
// what lets the engine equate slots with ascending-ID ranks.
func (g *Graph) CopyCanonicalFrom(src *Graph) {
	n := len(src.ids)
	g.ids = append(g.ids[:0], src.ids...)
	slices.Sort(g.ids)
	if g.index == nil {
		g.index = make(map[ID]int, n)
	} else {
		clear(g.index)
	}
	for i, id := range g.ids {
		g.index[id] = i
	}
	if cap(g.adj) < n {
		adj := make([][]ID, n)
		copy(adj, g.adj[:cap(g.adj)])
		g.adj = adj
	} else {
		g.adj = g.adj[:n]
	}
	if cap(g.bits) < n {
		bits := make([][]uint64, n)
		copy(bits, g.bits[:cap(g.bits)])
		g.bits = bits
	} else {
		g.bits = g.bits[:n]
	}
	if cap(g.bdeg) < n {
		g.bdeg = make([]int, n)
	} else {
		g.bdeg = g.bdeg[:n]
	}
	for i, id := range g.ids {
		g.bdeg[i] = -1
		ss := src.index[id]
		if src.engaged(ss) {
			g.adj[i] = appendBitset(g.adj[i][:0], src.bits[ss])
		} else {
			g.adj[i] = append(g.adj[i][:0], src.adj[ss]...)
		}
	}
	g.edges = src.edges
	g.maxID = src.maxID
	g.minDeg = src.minDeg
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}

// insertSorted inserts v into the ascending slice s, reporting whether
// it was not already present.
func insertSorted(s []ID, v ID) ([]ID, bool) {
	i := searchID(s, v)
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// removeSorted deletes v from the ascending slice s, reporting whether
// it was present.
func removeSorted(s []ID, v ID) ([]ID, bool) {
	i := searchID(s, v)
	if i >= len(s) || s[i] != v {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// containsSorted reports whether v occurs in the ascending slice s.
func containsSorted(s []ID, v ID) bool {
	i := searchID(s, v)
	return i < len(s) && s[i] == v
}

// searchID returns the smallest index i with s[i] >= v (binary search).
func searchID(s []ID, v ID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
