// Package graph provides the static undirected graphs that actively
// dynamic networks start from: a deterministic adjacency structure,
// standard analyses (BFS, diameter, spanning trees, Euler tours) and a
// family of generators used by the paper's workloads (lines, rings,
// increasing-order rings, trees, bounded-degree random graphs, ...).
//
// Node identity doubles as the paper's unique identifier (UID): the
// algorithms in internal/core are comparison based, so a node's ID is
// the only thing they ever compare.
package graph

import (
	"fmt"
	"sort"
)

// ID identifies a node and serves as its UID. IDs must be non-negative
// and unique within a graph.
type ID int

// Edge is an undirected pair of node IDs, stored in canonical order
// (A < B) so it can be used as a map key.
type Edge struct {
	A, B ID
}

// NewEdge returns the canonical form of the undirected edge {u, v}.
func NewEdge(u, v ID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{A: u, B: v}
}

// Other returns the endpoint of e that is not u. It panics if u is not
// an endpoint, which always indicates a programming error.
func (e Edge) Other(u ID) ID {
	switch u {
	case e.A:
		return e.B
	case e.B:
		return e.A
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", u, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.A, e.B) }

// Graph is a simple undirected graph. The zero value is not usable;
// call New.
type Graph struct {
	adj map[ID]map[ID]struct{}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[ID]map[ID]struct{})}
}

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(u ID) {
	if _, ok := g.adj[u]; !ok {
		g.adj[u] = make(map[ID]struct{})
	}
}

// HasNode reports whether u is a node of g.
func (g *Graph) HasNode(u ID) bool {
	_, ok := g.adj[u]
	return ok
}

// AddEdge inserts the undirected edge {u, v}, adding the endpoints if
// necessary. Self-loops are rejected with an error because the model
// has no use for them; duplicate edges are a no-op.
func (g *Graph) AddEdge(u, v ID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	return nil
}

// MustAddEdge is AddEdge for construction code where a self-loop is a
// programming error.
func (g *Graph) MustAddEdge(u, v ID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it existed.
func (g *Graph) RemoveEdge(u, v ID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	return true
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v ID) bool {
	nbrs, ok := g.adj[u]
	if !ok {
		return false
	}
	_, ok = nbrs[v]
	return ok
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []ID {
	out := make([]ID, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the neighbors of u in ascending order. The result
// is a fresh slice owned by the caller.
func (g *Graph) Neighbors(u ID) []ID {
	nbrs := g.adj[u]
	out := make([]ID, 0, len(nbrs))
	for v := range nbrs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the degree of u.
func (g *Graph) Degree(u ID) int { return len(g.adj[u]) }

// MaxDegree returns the maximum degree over all nodes (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > maxDeg {
			maxDeg = len(nbrs)
		}
	}
	return maxDeg
}

// Edges returns all edges in canonical form, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u < v {
				out = append(out, Edge{A: u, B: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for u, nbrs := range g.adj {
		c.AddNode(u)
		for v := range nbrs {
			c.adj[u][v] = struct{}{}
		}
	}
	return c
}

// MaxID returns the largest node ID in g, or -1 for an empty graph.
// In the paper's terms this is u_max, the eventual unique leader.
func (g *Graph) MaxID() ID {
	maxID := ID(-1)
	for u := range g.adj {
		if u > maxID {
			maxID = u
		}
	}
	return maxID
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}
