package graph

import (
	"fmt"
	"math/rand"
)

// Line returns a spanning line u_0 - u_1 - ... - u_{n-1} with IDs 0..n-1.
// The spanning line is the paper's canonical worst case: diameter n-1
// and Θ(n) distance between the extreme UIDs.
func Line(n int) *Graph { return LineInto(New(), n) }

// LineInto builds Line(n) into g, resetting it first. The *Into
// generator variants reuse g's backing arrays (see Graph.Reset), so a
// caller generating many workloads — the sweep fleet's per-worker
// Runner — pays for graph construction only on growth.
func LineInto(g *Graph, n int) *Graph {
	g.Reset()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(ID(i), ID(i+1))
	}
	return g
}

// Ring returns a cycle on IDs 0..n-1 (n >= 3); for n < 3 it degenerates
// to a line.
func Ring(n int) *Graph { return RingInto(New(), n) }

// RingInto builds Ring(n) into g, resetting it first.
func RingInto(g *Graph, n int) *Graph {
	g = LineInto(g, n)
	if n >= 3 {
		g.MustAddEdge(ID(n-1), ID(0))
	}
	return g
}

// IncreasingRing returns the increasing order ring of Definition D.8:
// UIDs assigned in increasing order clockwise around a cycle. This is
// the lower-bound instance of Theorem 6.4 (distributed algorithms pay
// Ω(n log n) total edge activations on it).
func IncreasingRing(n int) *Graph { return Ring(n) }

// IncreasingRingInto builds IncreasingRing(n) into g, resetting it first.
func IncreasingRingInto(g *Graph, n int) *Graph { return RingInto(g, n) }

// Star returns a star with center 0 and leaves 1..n-1.
func Star(n int) *Graph { return StarInto(New(), n) }

// StarInto builds Star(n) into g, resetting it first.
func StarInto(g *Graph, n int) *Graph {
	g.Reset()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, ID(i))
	}
	return g
}

// Complete returns the clique K_n on IDs 0..n-1.
func Complete(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(ID(i), ID(j))
		}
	}
	return g
}

// CompleteBinaryTree returns a complete binary tree on IDs 0..n-1 in
// heap order (children of i are 2i+1 and 2i+2).
func CompleteBinaryTree(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			g.MustAddEdge(ID(i), ID(l))
		}
		if r := 2*i + 2; r < n {
			g.MustAddEdge(ID(i), ID(r))
		}
	}
	return g
}

// Grid returns an r x c grid graph with row-major IDs.
func Grid(r, c int) *Graph {
	g := New()
	at := func(i, j int) ID { return ID(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			g.AddNode(at(i, j))
			if i > 0 {
				g.MustAddEdge(at(i, j), at(i-1, j))
			}
			if j > 0 {
				g.MustAddEdge(at(i, j), at(i, j-1))
			}
		}
	}
	return g
}

// Caterpillar returns a spine of the given length with legs pendant
// nodes attached to every spine node. It is a bounded-degree tree whose
// depth stays linear in the spine, a useful TreeToStar workload.
func Caterpillar(spine, legs int) *Graph {
	g := Line(spine)
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(ID(s), ID(next))
			next++
		}
	}
	return g
}

// Lollipop returns a clique of size k attached to a path of length p:
// the classic low-conductance instance.
func Lollipop(k, p int) *Graph {
	g := Complete(k)
	prev := ID(k - 1)
	for i := 0; i < p; i++ {
		next := ID(k + i)
		g.MustAddEdge(prev, next)
		prev = next
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on IDs 0..n-1,
// generated from a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph { return RandomTreeInto(New(), n, rng) }

// RandomTreeInto builds RandomTree(n, rng) into g, resetting it first.
// It draws exactly the same random sequence as RandomTree, so the two
// produce identical trees for equal rng states.
func RandomTreeInto(g *Graph, n int, rng *rand.Rand) *Graph {
	g.Reset()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.MustAddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Standard Prüfer decoding with a scan pointer + leaf reuse.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		g.MustAddEdge(ID(leaf), ID(v))
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Two leaves remain; the larger one is n-1.
	g.MustAddEdge(ID(leaf), ID(n-1))
	return g
}

// RandomConnected returns a connected graph on IDs 0..n-1: a random
// tree plus extra random non-parallel edges. extra may exceed the
// number of available non-edges; insertion stops when the graph is
// complete.
func RandomConnected(n, extra int, rng *rand.Rand) *Graph {
	return RandomConnectedInto(New(), n, extra, rng)
}

// RandomConnectedInto builds RandomConnected(n, extra, rng) into g,
// resetting it first, with the same random sequence as RandomConnected.
func RandomConnectedInto(g *Graph, n, extra int, rng *rand.Rand) *Graph {
	g = RandomTreeInto(g, n, rng)
	maxEdges := n * (n - 1) / 2
	for added := 0; added < extra && g.NumEdges() < maxEdges; {
		u := ID(rng.Intn(n))
		v := ID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g
}

// RandomBoundedDegree returns a connected graph with maximum degree at
// most maxDeg >= 2: a random spanning line (keeping degree 2) plus
// random chords that respect the bound. It is the workload family for
// GraphToWreath, which preserves bounded degree.
func RandomBoundedDegree(n, maxDeg, extra int, rng *rand.Rand) (*Graph, error) {
	return RandomBoundedDegreeInto(New(), n, maxDeg, extra, rng)
}

// RandomBoundedDegreeInto builds RandomBoundedDegree(n, maxDeg, extra,
// rng) into g, resetting it first, with the same random sequence as
// RandomBoundedDegree.
func RandomBoundedDegreeInto(g *Graph, n, maxDeg, extra int, rng *rand.Rand) (*Graph, error) {
	if maxDeg < 2 {
		return nil, fmt.Errorf("graph: maxDeg %d < 2 cannot stay connected beyond n=2", maxDeg)
	}
	perm := rng.Perm(n)
	g.Reset()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(ID(perm[i]), ID(perm[i+1]))
	}
	for added, tries := 0, 0; added < extra && tries < 20*extra+100; tries++ {
		u := ID(rng.Intn(n))
		v := ID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g, nil
}

// PowerLaw returns a Barabási–Albert preferential-attachment graph on
// IDs 0..n-1: a connected seed line on m+1 nodes, then each new node
// attaches m edges whose targets are drawn proportionally to current
// degree. The resulting degree distribution is heavy-tailed — the hub
// structure the paper's star/wreath constructions are sensitive to.
func PowerLaw(n, m int, rng *rand.Rand) *Graph { return PowerLawInto(New(), n, m, rng) }

// PowerLawInto builds PowerLaw(n, m, rng) into g, resetting it first,
// with the same random sequence as PowerLaw.
func PowerLawInto(g *Graph, n, m int, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	g.Reset()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	if n <= 1 {
		return g
	}
	seed := m + 1
	if seed > n {
		seed = n
	}
	for i := 0; i+1 < seed; i++ {
		g.MustAddEdge(ID(i), ID(i+1))
	}
	// Preferential attachment via the repeated-endpoints list: every
	// committed edge contributes both endpoints, so a uniform draw from
	// the list is a degree-proportional draw from the nodes.
	targets := make([]int32, 0, 2*(seed-1)+2*m*(n-seed))
	for i := 0; i+1 < seed; i++ {
		targets = append(targets, int32(i), int32(i+1))
	}
	for v := seed; v < n; v++ {
		added := 0
		for tries := 0; added < m && tries < 50*m+50; tries++ {
			t := targets[rng.Intn(len(targets))]
			u := ID(t)
			if int(u) == v || g.HasEdge(u, ID(v)) {
				continue
			}
			g.MustAddEdge(u, ID(v))
			targets = append(targets, t, int32(v))
			added++
		}
		if added == 0 {
			// Degenerate rng streak: fall back to the previous node so
			// the graph stays connected.
			g.MustAddEdge(ID(v-1), ID(v))
			targets = append(targets, int32(v-1), int32(v))
		}
	}
	return g
}

// SmallWorld returns a Watts–Strogatz small-world graph on IDs 0..n-1:
// a ring lattice where each node links to its k nearest clockwise
// neighbors, with every lattice edge of span >= 2 rewired to a uniform
// random endpoint with probability p. The span-1 ring is never rewired,
// so the graph stays connected for every p — the variant that keeps
// the family usable as a sim workload (the engine requires connected
// initial graphs).
func SmallWorld(n, k int, p float64, rng *rand.Rand) *Graph {
	return SmallWorldInto(New(), n, k, p, rng)
}

// SmallWorldInto builds SmallWorld(n, k, p, rng) into g, resetting it
// first, with the same random sequence as SmallWorld.
func SmallWorldInto(g *Graph, n, k int, p float64, rng *rand.Rand) *Graph {
	if k < 1 {
		k = 1
	}
	g.Reset()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	if n <= 1 {
		return g
	}
	// Span-1 ring backbone (a line edge for n == 2).
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if !g.HasEdge(ID(i), ID(j)) {
			g.MustAddEdge(ID(i), ID(j))
		}
	}
	for d := 2; d <= k && 2*d <= n; d++ {
		for i := 0; i < n; i++ {
			u, v := ID(i), ID((i+d)%n)
			if rng.Float64() < p {
				if w, ok := rewireTarget(g, u, rng, n); ok {
					g.MustAddEdge(u, w)
					continue
				}
			}
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// rewireTarget draws a uniform random non-neighbor of u, giving up
// (and reporting !ok, so the caller keeps the lattice edge) after a
// bounded number of rejections.
func rewireTarget(g *Graph, u ID, rng *rand.Rand, n int) (ID, bool) {
	for tries := 0; tries < 32; tries++ {
		w := ID(rng.Intn(n))
		if w == u || g.HasEdge(u, w) {
			continue
		}
		return w, true
	}
	return 0, false
}

// PermuteIDs returns a copy of g whose IDs are relabelled by a random
// permutation of 0..n-1 drawn from rng. Structural properties are
// preserved while UID placement — which comparison-based algorithms are
// sensitive to — is randomized.
func PermuteIDs(g *Graph, rng *rand.Rand) *Graph {
	return PermuteIDsInto(New(), g, rng)
}

// PermuteIDsInto builds PermuteIDs(src, rng) into dst, resetting it
// first, with the same random sequence as PermuteIDs. dst must not be
// src.
func PermuteIDsInto(dst, src *Graph, rng *rand.Rand) *Graph {
	nodes := src.Nodes()
	perm := rng.Perm(len(nodes))
	mapping := make(map[ID]ID, len(nodes))
	for i, u := range nodes {
		mapping[u] = nodes[perm[i]]
	}
	dst.Reset()
	for _, u := range nodes {
		dst.AddNode(mapping[u])
	}
	for _, u := range nodes {
		mu := mapping[u]
		src.EachNeighbor(u, func(v ID) bool {
			if u < v {
				dst.MustAddEdge(mu, mapping[v])
			}
			return true
		})
	}
	return dst
}
