package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// mapGraph is the original map-of-maps implementation, kept here as the
// reference model for the differential test: the dense, index-addressed
// Graph must be observationally identical to it under any sequence of
// add/remove/query operations.
type mapGraph struct {
	adj map[ID]map[ID]struct{}
}

func newMapGraph() *mapGraph { return &mapGraph{adj: make(map[ID]map[ID]struct{})} }

func (g *mapGraph) addNode(u ID) {
	if _, ok := g.adj[u]; !ok {
		g.adj[u] = make(map[ID]struct{})
	}
}

func (g *mapGraph) addEdge(u, v ID) bool {
	if u == v {
		return false
	}
	g.addNode(u)
	g.addNode(v)
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	return true
}

func (g *mapGraph) removeEdge(u, v ID) bool {
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	return true
}

func (g *mapGraph) hasEdge(u, v ID) bool {
	_, ok := g.adj[u][v]
	return ok
}

func (g *mapGraph) numEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

func (g *mapGraph) nodes() []ID {
	out := make([]ID, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *mapGraph) neighbors(u ID) []ID {
	out := make([]ID, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *mapGraph) maxID() ID {
	m := ID(-1)
	for u := range g.adj {
		if u > m {
			m = u
		}
	}
	return m
}

func (g *mapGraph) maxDegree() int {
	m := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > m {
			m = len(nbrs)
		}
	}
	return m
}

// TestDenseMatchesMapModel drives the dense Graph and the map reference
// through identical randomized add/remove/query sequences and asserts
// identical observable behavior at every step.
func TestDenseMatchesMapModel(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		idSpace := ID(rng.Intn(40) + 8) // small space forces collisions
		dense := New()
		ref := newMapGraph()
		for step := 0; step < 600; step++ {
			u := ID(rng.Intn(int(idSpace)))
			v := ID(rng.Intn(int(idSpace)))
			switch rng.Intn(10) {
			case 0, 1:
				dense.AddNode(u)
				ref.addNode(u)
			case 2, 3, 4, 5:
				err := dense.AddEdge(u, v)
				ok := ref.addEdge(u, v)
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: AddEdge(%d,%d) err=%v, ref ok=%v", seed, step, u, v, err, ok)
				}
			case 6, 7:
				if got, want := dense.RemoveEdge(u, v), ref.removeEdge(u, v); got != want {
					t.Fatalf("seed %d step %d: RemoveEdge(%d,%d) = %v, want %v", seed, step, u, v, got, want)
				}
			case 8:
				if got, want := dense.HasEdge(u, v), ref.hasEdge(u, v); got != want {
					t.Fatalf("seed %d step %d: HasEdge(%d,%d) = %v, want %v", seed, step, u, v, got, want)
				}
			case 9:
				if got, want := dense.Degree(u), len(ref.adj[u]); got != want {
					t.Fatalf("seed %d step %d: Degree(%d) = %d, want %d", seed, step, u, got, want)
				}
			}
			// Cheap invariants every step.
			if dense.NumNodes() != len(ref.adj) {
				t.Fatalf("seed %d step %d: NumNodes = %d, want %d", seed, step, dense.NumNodes(), len(ref.adj))
			}
			if dense.NumEdges() != ref.numEdges() {
				t.Fatalf("seed %d step %d: NumEdges = %d, want %d", seed, step, dense.NumEdges(), ref.numEdges())
			}
		}
		// Full-state comparison at the end of every sequence.
		if got, want := dense.Nodes(), ref.nodes(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Nodes() = %v, want %v", seed, got, want)
		}
		if got, want := dense.MaxID(), ref.maxID(); got != want {
			t.Fatalf("seed %d: MaxID() = %d, want %d", seed, got, want)
		}
		if got, want := dense.MaxDegree(), ref.maxDegree(); got != want {
			t.Fatalf("seed %d: MaxDegree() = %d, want %d", seed, got, want)
		}
		for _, u := range ref.nodes() {
			got, want := dense.Neighbors(u), ref.neighbors(u)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Neighbors(%d) = %v, want %v", seed, u, got, want)
			}
			// The allocation-free accessors must agree with Neighbors.
			into := dense.NeighborsInto(u, nil)
			if !reflect.DeepEqual([]ID(into), got) {
				t.Fatalf("seed %d: NeighborsInto(%d) = %v, want %v", seed, u, into, got)
			}
			var each []ID
			dense.EachNeighbor(u, func(v ID) bool { each = append(each, v); return true })
			if len(each) != len(got) {
				t.Fatalf("seed %d: EachNeighbor(%d) visited %d, want %d", seed, u, len(each), len(got))
			}
			for i := range each {
				if each[i] != got[i] {
					t.Fatalf("seed %d: EachNeighbor(%d) = %v, want %v", seed, u, each, got)
				}
			}
		}
		// Edges() canonical order and HaveCommonNeighbor spot checks.
		edges := dense.Edges()
		if len(edges) != ref.numEdges() {
			t.Fatalf("seed %d: Edges() len = %d, want %d", seed, len(edges), ref.numEdges())
		}
		for i := 1; i < len(edges); i++ {
			p, q := edges[i-1], edges[i]
			if p.A > q.A || (p.A == q.A && p.B >= q.B) {
				t.Fatalf("seed %d: Edges() not sorted at %d: %v, %v", seed, i, p, q)
			}
		}
		for trial := 0; trial < 50; trial++ {
			u := ID(rng.Intn(int(idSpace)))
			v := ID(rng.Intn(int(idSpace)))
			want := false
			for w := range ref.adj[u] {
				if _, ok := ref.adj[v][w]; ok {
					want = true
					break
				}
			}
			if got := dense.HaveCommonNeighbor(u, v); got != want {
				t.Fatalf("seed %d: HaveCommonNeighbor(%d,%d) = %v, want %v", seed, u, v, got, want)
			}
		}
		// Clone must be deep and equal.
		clone := dense.Clone()
		if !reflect.DeepEqual(clone.Nodes(), dense.Nodes()) || clone.NumEdges() != dense.NumEdges() {
			t.Fatalf("seed %d: clone differs from original", seed)
		}
		if len(edges) > 0 {
			e := edges[0]
			clone.RemoveEdge(e.A, e.B)
			if !dense.HasEdge(e.A, e.B) {
				t.Fatalf("seed %d: mutating clone affected original", seed)
			}
		}
	}
}
