package graph

import "math/bits"

// bitsetMinDeg is the minimum degree before a slot's adjacency is
// promoted from a sorted []ID slice to an ID-indexed bitset. Promotion
// additionally requires deg >= bitsetWords(maxID), which bounds the
// bitset's memory by the memory of the slice it replaces (one word per
// 64 IDs versus one word per neighbor). Tests force promotion on tiny
// graphs through the per-graph minDeg override.
const bitsetMinDeg = 64

// bitsetWords returns the number of 64-bit words a bitset covering IDs
// 0..maxID needs. maxID must be >= 0.
func bitsetWords(maxID ID) int { return (int(maxID) >> 6) + 1 }

// bitsetHas reports whether bit v is set. Words beyond len(b) are
// implicitly zero, so short bitsets are always safe to query.
func bitsetHas(b []uint64, v ID) bool {
	w := int(v >> 6)
	return w < len(b) && b[w]&(1<<(uint(v)&63)) != 0
}

// bitsetSet sets bit v, growing b with zero words as needed.
func bitsetSet(b []uint64, v ID) []uint64 {
	w := int(v >> 6)
	for len(b) <= w {
		b = append(b, 0)
	}
	b[w] |= 1 << (uint(v) & 63)
	return b
}

// bitsetUnset clears bit v if it is in range.
func bitsetUnset(b []uint64, v ID) {
	if w := int(v >> 6); w < len(b) {
		b[w] &^= 1 << (uint(v) & 63)
	}
}

// appendBitset appends the IDs of all set bits of b, ascending, to dst.
func appendBitset(dst []ID, b []uint64) []ID {
	for w, word := range b {
		base := ID(w << 6)
		for word != 0 {
			dst = append(dst, base+ID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// trailingZeros64 re-exports math/bits for files that iterate bitset
// words inline.
func trailingZeros64(x uint64) int { return bits.TrailingZeros64(x) }

// bitsetIntersects reports whether a and b share a set bit. Trailing
// words present in only one operand are implicitly zero in the other.
func bitsetIntersects(a, b []uint64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}
