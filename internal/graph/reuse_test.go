package graph

import (
	"math/rand"
	"testing"
)

// equalGraphs compares node sets and canonical edge lists.
func equalGraphs(t *testing.T, want, got *Graph, context string) {
	t.Helper()
	wn, gn := want.Nodes(), got.Nodes()
	if len(wn) != len(gn) {
		t.Fatalf("%s: %d nodes, want %d", context, len(gn), len(wn))
	}
	for i := range wn {
		if wn[i] != gn[i] {
			t.Fatalf("%s: node[%d] = %d, want %d", context, i, gn[i], wn[i])
		}
	}
	we, ge := want.Edges(), got.Edges()
	if len(we) != len(ge) {
		t.Fatalf("%s: %d edges, want %d", context, len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("%s: edge[%d] = %v, want %v", context, i, ge[i], we[i])
		}
	}
	if want.MaxID() != got.MaxID() {
		t.Fatalf("%s: MaxID = %d, want %d", context, got.MaxID(), want.MaxID())
	}
}

// TestIntoVariantsMatchFreshGenerators drives every *Into generator
// through one shared receiver across different shapes and sizes —
// including shrinking builds, where stale state would leak — and
// checks each build against the fresh-graph generator.
func TestIntoVariantsMatchFreshGenerators(t *testing.T) {
	g := New()
	tmp := New()
	for _, n := range []int{64, 9, 33, 2, 17} {
		equalGraphs(t, Line(n), LineInto(g, n), "LineInto")
		equalGraphs(t, Ring(n), RingInto(g, n), "RingInto")
		equalGraphs(t, Star(n), StarInto(g, n), "StarInto")

		seed := int64(100 + n)
		equalGraphs(t, RandomTree(n, rand.New(rand.NewSource(seed))),
			RandomTreeInto(g, n, rand.New(rand.NewSource(seed))), "RandomTreeInto")
		equalGraphs(t, RandomConnected(n, n, rand.New(rand.NewSource(seed))),
			RandomConnectedInto(g, n, n, rand.New(rand.NewSource(seed))), "RandomConnectedInto")

		want, err := RandomBoundedDegree(n, 4, n/2, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RandomBoundedDegreeInto(g, n, 4, n/2, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		equalGraphs(t, want, got, "RandomBoundedDegreeInto")

		base := RandomConnected(n, n, rand.New(rand.NewSource(seed)))
		equalGraphs(t, PermuteIDs(base, rand.New(rand.NewSource(seed))),
			PermuteIDsInto(tmp, base, rand.New(rand.NewSource(seed))), "PermuteIDsInto")
	}
}

// TestResetRetainsCapacity checks that rebuilding the same shape into
// a reset graph reaches allocation-free steady state: the slot table,
// ID slice and adjacency lists must all be reused.
func TestResetRetainsCapacity(t *testing.T) {
	g := New()
	RingInto(g, 512)
	allocs := testing.AllocsPerRun(20, func() {
		RingInto(g, 512)
	})
	if allocs > 0 {
		t.Fatalf("RingInto into a warm receiver allocates %.1f/op, want 0", allocs)
	}
}

// TestResetYieldsEmptyUsableGraph pins Reset's contract directly.
func TestResetYieldsEmptyUsableGraph(t *testing.T) {
	g := Ring(16)
	g.Reset()
	if g.NumNodes() != 0 || g.NumEdges() != 0 || g.MaxID() != -1 {
		t.Fatalf("after Reset: n=%d m=%d maxID=%d", g.NumNodes(), g.NumEdges(), g.MaxID())
	}
	if g.HasNode(3) || g.HasEdge(3, 4) || g.Degree(3) != 0 {
		t.Fatal("reset graph still answers for old nodes")
	}
	g.MustAddEdge(7, 9)
	if !g.HasEdge(7, 9) || g.NumNodes() != 2 || g.MaxID() != 9 {
		t.Fatalf("rebuild after Reset broken: %v", g)
	}
	if nbrs := g.Neighbors(7); len(nbrs) != 1 || nbrs[0] != 9 {
		t.Fatalf("Neighbors(7) = %v after rebuild", g.Neighbors(7))
	}
}
