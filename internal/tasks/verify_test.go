package tasks

import (
	"testing"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

// statusMachine halts immediately with a preset status.
type statusMachine struct{ status sim.Status }

func (m statusMachine) Init(*sim.Context) {}
func (m statusMachine) Send(*sim.Context) {}
func (m statusMachine) Receive(ctx *sim.Context, _ []sim.Message) {
	ctx.SetStatus(m.status)
	ctx.Halt()
}

func runWithStatuses(t *testing.T, statuses map[graph.ID]sim.Status) *sim.Result {
	t.Helper()
	g := graph.Line(len(statuses))
	res, err := sim.Run(g, func(id graph.ID, _ sim.Env) sim.Machine {
		return statusMachine{status: statuses[id]}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSameEdges(t *testing.T) {
	t.Parallel()
	a := graph.Line(5)
	b := graph.Line(5)
	if !SameEdges(a, b) {
		t.Error("identical lines differ")
	}
	b.RemoveEdge(1, 2)
	if SameEdges(a, b) {
		t.Error("edge-removed copy equal")
	}
	b.MustAddEdge(1, 3) // same edge count, different edges
	if SameEdges(a, b) {
		t.Error("different edge sets equal")
	}
	c := graph.New()
	c.AddNode(9)
	if SameEdges(a, c) {
		t.Error("different node sets equal")
	}
}

func TestVerifyLeaderElection(t *testing.T) {
	t.Parallel()
	good := runWithStatuses(t, map[graph.ID]sim.Status{
		0: sim.StatusFollower, 1: sim.StatusFollower, 2: sim.StatusLeader,
	})
	if err := VerifyLeaderElection(good, 2); err != nil {
		t.Errorf("valid election rejected: %v", err)
	}
	if err := VerifyLeaderElection(good, 1); err == nil {
		t.Error("wrong leader accepted")
	}
	none := runWithStatuses(t, map[graph.ID]sim.Status{
		0: sim.StatusFollower, 1: sim.StatusFollower, 2: sim.StatusFollower,
	})
	if err := VerifyLeaderElection(none, 2); err == nil {
		t.Error("zero leaders accepted")
	}
	two := runWithStatuses(t, map[graph.ID]sim.Status{
		0: sim.StatusLeader, 1: sim.StatusFollower, 2: sim.StatusLeader,
	})
	if err := VerifyLeaderElection(two, 2); err == nil {
		t.Error("two leaders accepted")
	}
	undecided := runWithStatuses(t, map[graph.ID]sim.Status{
		0: sim.StatusNone, 1: sim.StatusFollower, 2: sim.StatusLeader,
	})
	if err := VerifyLeaderElection(undecided, 2); err == nil {
		t.Error("undecided node accepted")
	}
}

func TestVerifyDepthTree(t *testing.T) {
	t.Parallel()
	star := graph.Star(8)
	if err := VerifyDepthTree(star, 0, 1); err != nil {
		t.Errorf("star rejected: %v", err)
	}
	if err := VerifyDepthTree(star, 0, 0); err == nil {
		t.Error("depth bound ignored")
	}
	if err := VerifyDepthTree(star, 99, 1); err == nil {
		t.Error("missing root accepted")
	}
	if err := VerifyDepthTree(graph.Ring(6), 0, 10); err == nil {
		t.Error("cycle accepted as tree")
	}
	line := graph.Line(5)
	if err := VerifyDepthTree(line, 0, 4); err != nil {
		t.Errorf("line-as-tree rejected: %v", err)
	}
	if err := VerifyDepthTree(line, 2, 2); err != nil {
		t.Errorf("mid-rooted line rejected: %v", err)
	}
}

func TestVerifyTokenDissemination(t *testing.T) {
	t.Parallel()
	all := []graph.ID{1, 2, 3}
	full := map[graph.ID]map[graph.ID]bool{
		1: {1: true, 2: true, 3: true},
		2: {1: true, 2: true, 3: true},
		3: {1: true, 2: true, 3: true},
	}
	if err := VerifyTokenDissemination(all, full); err != nil {
		t.Errorf("complete dissemination rejected: %v", err)
	}
	full[2] = map[graph.ID]bool{1: true, 2: true}
	if err := VerifyTokenDissemination(all, full); err == nil {
		t.Error("missing token accepted")
	}
}
