// Package tasks defines the paper's distributed tasks (§2.2) as
// verifiable post-conditions — Leader Election, Depth-d Tree, Token
// Dissemination — plus the structural checks shared by tests and the
// experiment harness.
package tasks

import (
	"fmt"

	"adnet/internal/graph"
	"adnet/internal/sim"
)

// SameEdges reports whether two graphs have identical node and edge
// sets.
func SameEdges(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, u := range a.Nodes() {
		if !b.HasNode(u) {
			return false
		}
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.A, e.B) {
			return false
		}
	}
	return true
}

// VerifyLeaderElection checks the §2.2 definition: exactly one node has
// status Leader, all others Follower, and — for the paper's comparison
// based algorithms — the leader is u_max, the maximum UID.
func VerifyLeaderElection(res *sim.Result, wantLeader graph.ID) error {
	leaders, followers, undecided := 0, 0, 0
	var got graph.ID = -1
	for id, s := range res.Statuses {
		switch s {
		case sim.StatusLeader:
			leaders++
			got = id
		case sim.StatusFollower:
			followers++
		default:
			undecided++
		}
	}
	if leaders != 1 {
		return fmt.Errorf("tasks: %d leaders, want 1", leaders)
	}
	if undecided != 0 {
		return fmt.Errorf("tasks: %d nodes never decided a status", undecided)
	}
	if got != wantLeader {
		return fmt.Errorf("tasks: leader is %d, want u_max = %d", got, wantLeader)
	}
	return nil
}

// VerifyDepthTree checks the Depth-d Tree target (§2.2): the final
// active graph is a spanning tree rooted at root with depth at most
// maxDepth.
func VerifyDepthTree(final *graph.Graph, root graph.ID, maxDepth int) error {
	if !final.IsTree() {
		return fmt.Errorf("tasks: final graph is not a tree (n=%d, m=%d, connected=%v)",
			final.NumNodes(), final.NumEdges(), final.IsConnected())
	}
	if !final.HasNode(root) {
		return fmt.Errorf("tasks: root %d missing", root)
	}
	depth := final.Eccentricity(root)
	if depth < 0 {
		return fmt.Errorf("tasks: root cannot reach all nodes")
	}
	if depth > maxDepth {
		return fmt.Errorf("tasks: tree depth %d exceeds %d", depth, maxDepth)
	}
	return nil
}

// VerifyTokenDissemination checks that every node's collected token set
// equals the full UID set of the graph.
func VerifyTokenDissemination(all []graph.ID, perNode map[graph.ID]map[graph.ID]bool) error {
	want := len(all)
	for _, u := range all {
		got := perNode[u]
		if len(got) != want {
			return fmt.Errorf("tasks: node %d holds %d of %d tokens", u, len(got), want)
		}
		for _, v := range all {
			if !got[v] {
				return fmt.Errorf("tasks: node %d is missing token %d", u, v)
			}
		}
	}
	return nil
}
