package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"adnet/internal/dynamics"
	"adnet/internal/expt"
	"adnet/internal/obs"
)

// Cell mirrors one line of a worker's NDJSON cell stream (the
// service's SweepCell wire shape). The coordinator rewrites Index from
// shard-local to global before merging.
type Cell struct {
	Index     int           `json:"index"`
	Algorithm string        `json:"algorithm"`
	Workload  string        `json:"workload"`
	N         int           `json:"n"`
	Seed      int64         `json:"seed"`
	MaxRounds int           `json:"max_rounds,omitempty"`
	FromCache bool          `json:"from_cache"`
	Outcome   *expt.Outcome `json:"outcome,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// shardSummary is the worker's trailing sweep-summary line.
type shardSummary struct {
	Done      bool `json:"done"`
	Cells     int  `json:"cells"`
	CacheHits int  `json:"cache_hits"`
	Executed  int  `json:"executed"`
	Errors    int  `json:"errors"`
}

// sweepSpecWire is the POST /v1/sweeps request body (the service's
// SweepSpec wire shape, written from the client side).
type sweepSpecWire struct {
	Algorithms []string       `json:"algorithms"`
	Workloads  []string       `json:"workloads"`
	Sizes      []int          `json:"sizes"`
	Seeds      []int64        `json:"seeds"`
	MaxRounds  int            `json:"max_rounds,omitempty"`
	Dynamics   *dynamics.Spec `json:"dynamics,omitempty"`
}

// errWorkerBusy marks a dispatch rejected by the worker's sweep gate
// (HTTP 503): the worker is saturated with its own client sweeps, not
// broken, so the dispatcher requeues the shard without taking the
// worker out of rotation.
var errWorkerBusy = errors.New("fleet: worker sweep gate busy")

// errSweepIncomplete marks a dispatch whose worker-side sweep ended
// without completing (done:false — a worker sweep time limit or a
// third-party cancellation). The worker proved itself alive by
// streaming the full canceled shape, so like errWorkerBusy this
// requeues the shard without costing the worker its health.
var errSweepIncomplete = errors.New("fleet: worker sweep ended incomplete")

// errDispatchRejected marks a shard POST the worker deterministically
// refused (4xx — e.g. the worker's sweep cell/size limits are tighter
// than the coordinator's). Retrying elsewhere would fail identically,
// so the dispatcher fails the sweep fast without poisoning any
// worker's health.
var errDispatchRejected = errors.New("fleet: worker rejected the shard spec")

// shardProgress is the coordinator's per-shard bookkeeping. It is
// owned by whichever dispatcher currently runs the shard — ownership
// is handed over through the shard queue, never shared — so no lock
// is needed.
type shardProgress struct {
	// attempts counts failed dispatches; at cfg.ShardAttempts the
	// sweep fails.
	attempts int
	// summary, groups and cells are recorded by the dispatch that
	// completed the shard (cells in shard-local order — what
	// GridHooks.Persist journals).
	summary *shardSummary
	groups  []expt.AggregateGroup
	cells   []Cell
}

// runShard executes one shard on one worker: submit the sub-grid
// sweep, tail its cell stream, and — only once the worker's summary
// confirms the sweep completed (done=true, so a worker-side timeout
// or third-party cancellation never masquerades as a result) —
// deliver every cell with its global index, in shard order, and fetch
// the worker's aggregate for the shard. Delivering after completion
// rather than live means a failed dispatch delivers nothing: a
// re-dispatched shard merges exactly once, with no cross-attempt
// cursor to reconcile. A dispatch that fails for any reason cancels
// its worker-side sweep best-effort so an abandoned shard does not
// keep burning worker time.
func (c *Coordinator) runShard(ctx context.Context, w *worker, sh Shard, sp *shardProgress, deliver func(Cell)) (err error) {
	id, err := c.postSweep(ctx, w, sh.Spec)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil || ctx.Err() != nil {
			c.cancelSweep(ctx, w, id)
		}
	}()

	n := sh.NumCells()
	collected := make([]Cell, n)
	have := make([]bool, n)
	var sum *shardSummary
	// cursor carries across resume attempts: each pass asks the worker
	// to replay only the frames this dispatch has not consumed yet.
	cursor := 0
	for resumes := 0; ; resumes++ {
		if resumes > 0 {
			c.metrics.streamResumes.Inc()
		}
		err := c.tailCells(ctx, w, id, collected, have, &sum, &cursor)
		if err == nil && sum != nil {
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if resumes >= c.cfg.StreamResumes {
			if err == nil {
				err = errors.New("stream closed before the summary line")
			}
			return fmt.Errorf("fleet: shard %d stream on %s gave up after %d resumes: %w",
				sh.Index, w.url, resumes, err)
		}
		select {
		case <-time.After(c.cfg.RetryBackoff):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if !sum.Done {
		// The worker streamed the one-line-per-cell shape of a failed
		// or canceled sweep (time limit, external DELETE): not a
		// result — re-dispatch.
		return fmt.Errorf("%w: shard %d on %s (%d/%d errors)",
			errSweepIncomplete, sh.Index, w.url, sum.Errors, sum.Cells)
	}
	for i, ok := range have {
		if !ok {
			return fmt.Errorf("fleet: shard %d: worker %s never streamed cell %d", sh.Index, w.url, i)
		}
	}
	sp.summary = sum
	sp.cells = collected
	for i, cell := range collected {
		cell.Index = sh.Offset + i
		deliver(cell)
	}

	// Prefer the worker's own aggregate of the shard — the sweep is
	// terminal, so the endpoint serves it — and fall back to folding
	// the collected cells locally (byte-identical: same cells, same
	// canonical order, same arithmetic) if the worker died in between.
	groups, err := c.fetchAggregate(ctx, w, id)
	if err != nil {
		groups = localAggregate(collected)
	}
	sp.groups = groups
	return nil
}

// tailCells streams one pass of GET /v1/sweeps/{id}/cells into
// collected, resuming from *cursor (the ?cursor=N replay offset: how
// many cell frames previous passes already consumed) and advancing it
// per cell. Returns nil when the stream ended cleanly (the caller
// checks whether the summary arrived).
func (c *Coordinator) tailCells(ctx context.Context, w *worker, id string,
	collected []Cell, have []bool, sum **shardSummary, cursor *int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/sweeps/%s/cells?cursor=%d", w.url, id, *cursor), nil)
	if err != nil {
		return err
	}
	obs.SetRequestIDHeader(req)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cells stream returned %d", resp.StatusCode)
	}

	passSeen := *cursor
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done  *bool `json:"done"`
			Index *int  `json:"index"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("bad NDJSON line: %w", err)
		}
		if probe.Done != nil {
			s := &shardSummary{}
			if err := json.Unmarshal(line, s); err != nil {
				return fmt.Errorf("bad summary line: %w", err)
			}
			*sum = s
			continue
		}
		var cell Cell
		if err := json.Unmarshal(line, &cell); err != nil {
			return fmt.Errorf("bad cell line: %w", err)
		}
		if cell.Index != passSeen || cell.Index >= len(collected) {
			return fmt.Errorf("non-canonical cell stream: index %d at position %d", cell.Index, passSeen)
		}
		collected[cell.Index] = cell
		have[cell.Index] = true
		passSeen++
		*cursor = passSeen
	}
	return sc.Err()
}

// postSweep submits the shard's sub-grid and returns the worker-side
// sweep job ID. A 503 — the worker's fail-fast sweep gate, hit when
// the worker is saturated with its own client sweeps — surfaces as
// errWorkerBusy; the dispatcher paces the retries.
func (c *Coordinator) postSweep(ctx context.Context, w *worker, spec expt.SweepSpec) (string, error) {
	body, err := json.Marshal(sweepSpecWire{
		Algorithms: spec.Algorithms,
		Workloads:  spec.Workloads,
		Sizes:      spec.Sizes,
		Seeds:      spec.Seeds,
		MaxRounds:  spec.MaxRounds,
		Dynamics:   spec.Dynamics,
	})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.SetRequestIDHeader(req)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer drainClose(resp)
	switch {
	case resp.StatusCode == http.StatusAccepted:
	case resp.StatusCode == http.StatusServiceUnavailable:
		return "", fmt.Errorf("%w: %s", errWorkerBusy, w.url)
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return "", fmt.Errorf("%w: %s returned %d: %s",
			errDispatchRejected, w.url, resp.StatusCode, errorMessage(resp.Body))
	default:
		return "", fmt.Errorf("POST /v1/sweeps returned %d: %s", resp.StatusCode, errorMessage(resp.Body))
	}
	var sub struct {
		Sweep struct {
			ID string `json:"id"`
		} `json:"sweep"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return "", err
	}
	if sub.Sweep.ID == "" {
		return "", errors.New("submit response carried no sweep ID")
	}
	return sub.Sweep.ID, nil
}

// errorMessage extracts the service's v1 error envelope
// ({"error":{"code","message",...}}) from a failed response body,
// falling back to the raw (trimmed, bounded) text for non-conforming
// bodies.
func errorMessage(body io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(body, 512))
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		return fmt.Sprintf("%s: %s", env.Error.Code, env.Error.Message)
	}
	return strings.TrimSpace(string(raw))
}

// fetchAggregate reads the worker's fold of a terminal shard sweep.
func (c *Coordinator) fetchAggregate(ctx context.Context, w *worker, id string) ([]expt.AggregateGroup, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/sweeps/"+id+"/aggregate", nil)
	if err != nil {
		return nil, err
	}
	obs.SetRequestIDHeader(req)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("aggregate returned %d", resp.StatusCode)
	}
	var out struct {
		Groups []expt.AggregateGroup `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Groups, nil
}

// cancelSweep aborts an abandoned worker sweep, detached from the
// (already canceled) sweep context's deadline but keeping its values,
// so the DELETE still carries the sweep's request ID.
func (c *Coordinator) cancelSweep(ctx context.Context, w *worker, id string) {
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(dctx, http.MethodDelete, w.url+"/v1/sweeps/"+id, nil)
	if err != nil {
		return
	}
	obs.SetRequestIDHeader(req)
	if resp, err := c.cfg.Client.Do(req); err == nil {
		drainClose(resp)
	}
}

// localAggregate folds a shard's collected cells exactly like the
// worker's aggregate endpoint does: same cells, same canonical order,
// same conversion (expt.WireCellResult), same arithmetic — the
// fallback is byte-identical to the fetch.
func localAggregate(cells []Cell) []expt.AggregateGroup {
	results := make([]expt.CellResult, len(cells))
	for i, c := range cells {
		results[i] = expt.WireCellResult(i, expt.Cell{
			Algorithm: c.Algorithm, Workload: c.Workload,
			N: c.N, Seed: c.Seed, MaxRounds: c.MaxRounds,
		}, c.FromCache, c.Outcome, c.Error)
	}
	return expt.Aggregate(results)
}

// drainClose consumes what remains of a response body (bounded) so
// the transport can reuse the connection, then closes it.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}
