package fleet

import (
	"adnet/internal/dynamics"
	"adnet/internal/expt"
	"adnet/internal/runkey"
)

// Shard is one dispatchable slice of a sweep grid: a whole
// (algorithm, workload, n) row with every seed, i.e. exactly one
// aggregation group. Group alignment is what makes the distributed
// aggregate exact: each worker aggregates complete groups, so the
// coordinator's fold-merge (expt.MergeAggregates) is byte-identical to
// a single-process aggregate of the grid. Parallelism therefore comes
// from the grid's group dimensions — which the paper's tables make
// wide — not from splitting seed lists.
type Shard struct {
	// Index is the shard's position in canonical grid order.
	Index int
	// Key is the shard's stable identity (runkey.ShardKey): it names
	// the same cells no matter which worker executes it or how often
	// it is re-dispatched.
	Key string
	// Offset is the global canonical index of the shard's first cell.
	Offset int
	// Spec is the shard's sub-grid. Its canonical cell order equals
	// the global order of the parent grid restricted to this shard, so
	// global index = Offset + local index.
	Spec expt.SweepSpec
}

// NumCells returns the shard's cell count.
func (s Shard) NumCells() int { return s.Spec.NumCells() }

// PlanShards partitions the grid's canonical cell sequence into
// contiguous, group-aligned shards: one per (algorithm, workload, n)
// row, in runkey order. The plan is a pure function of the spec —
// every coordinator (and every retry) produces the same shards with
// the same keys.
// dynKey renders a dynamics spec's canonical key, "" when absent, so
// dynamics-free shard keys stay byte-identical to their pre-dynamics
// form.
func dynKey(d *dynamics.Spec) string {
	if d == nil {
		return ""
	}
	return d.Key()
}

func PlanShards(spec expt.SweepSpec) []Shard {
	cells := spec.Cells()
	sweepKey := runkey.WithDynamics(
		runkey.SweepKey(spec.Algorithms, spec.Workloads, spec.Sizes, spec.Seeds, spec.MaxRounds), dynKey(spec.Dynamics))
	var shards []Shard
	for start := 0; start < len(cells); {
		c := cells[start]
		end := start
		seeds := make([]int64, 0, 8)
		for end < len(cells) {
			n := cells[end]
			if n.Algorithm != c.Algorithm || n.Workload != c.Workload || n.N != c.N {
				break
			}
			seeds = append(seeds, n.Seed)
			end++
		}
		shards = append(shards, Shard{
			Index:  len(shards),
			Key:    runkey.ShardKey(sweepKey, len(shards), start, end-start),
			Offset: start,
			Spec: expt.SweepSpec{
				Algorithms: []string{c.Algorithm},
				Workloads:  []string{c.Workload},
				Sizes:      []int{c.N},
				Seeds:      seeds,
				MaxRounds:  spec.MaxRounds,
				Dynamics:   spec.Dynamics,
			},
		})
		start = end
	}
	return shards
}
