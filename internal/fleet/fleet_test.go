package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adnet/internal/expt"
	"adnet/internal/fleet"
	"adnet/internal/obs"
	"adnet/internal/service"
)

// scrapeRegistry renders and strictly re-parses a registry, the same
// round trip a Prometheus scrape takes.
func scrapeRegistry(t *testing.T, reg *obs.Registry) *obs.Metrics {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startWorker runs a real service manager + HTTP handler — an
// in-process adnet-server — and returns its base URL.
func startWorker(t *testing.T) string {
	t.Helper()
	mgr := service.NewManager(service.Config{
		Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 4,
	})
	srv := httptest.NewServer(service.NewHandler(mgr))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv.URL
}

func testConfig() fleet.Config {
	return fleet.Config{
		HealthTimeout: 2 * time.Second,
		ShardAttempts: 3,
		StreamResumes: 1,
		RetryBackoff:  time.Millisecond,
	}
}

func register(t *testing.T, c *fleet.Coordinator, url string) {
	t.Helper()
	if _, err := c.Register(context.Background(), url); err != nil {
		t.Fatalf("register %s: %v", url, err)
	}
}

var testSpec = expt.SweepSpec{
	Algorithms: []string{"graph-to-star", "flood"},
	Workloads:  []string{"line"},
	Sizes:      []int{8, 12},
	Seeds:      []int64{1, 2, 3},
}

// singleProcessAggregate is the reference the distributed fold-merge
// must match byte-for-byte.
func singleProcessAggregate(t *testing.T, spec expt.SweepSpec) []byte {
	t.Helper()
	groups, err := expt.AggregateSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(groups)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkMergedCells asserts the merged stream kept the wire contract:
// one cell per grid position, in canonical order, with global indices.
func checkMergedCells(t *testing.T, spec expt.SweepSpec, got []fleet.Cell) {
	t.Helper()
	cells := spec.Cells()
	if len(got) != len(cells) {
		t.Fatalf("merged %d cells, grid has %d", len(got), len(cells))
	}
	for i, g := range got {
		want := cells[i]
		if g.Index != i || g.Algorithm != want.Algorithm || g.Workload != want.Workload ||
			g.N != want.N || g.Seed != want.Seed {
			t.Fatalf("merged cell %d = %+v, want grid cell %+v", i, g, want)
		}
	}
}

// TestRegisterAndHealth covers the registry: URL validation, probe
// gating, duplicate handling and status reporting.
func TestRegisterAndHealth(t *testing.T) {
	t.Parallel()
	c := fleet.New(testConfig())
	if _, err := c.Register(context.Background(), "not-a-url"); err == nil {
		t.Fatal("relative URL accepted")
	}
	if _, err := c.Register(context.Background(), "http://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable worker registered")
	}
	if w, h := c.Counts(); w != 0 || h != 0 {
		t.Fatalf("counts after failed registrations = %d/%d", w, h)
	}

	url := startWorker(t)
	st, err := c.Register(context.Background(), url+"/")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Healthy || st.URL != url || !strings.HasPrefix(st.ID, "worker-") {
		t.Fatalf("status = %+v", st)
	}
	if _, err := c.Register(context.Background(), url); !errors.Is(err, fleet.ErrDuplicateWorker) {
		t.Fatalf("duplicate registration: %v", err)
	}
	ws := c.Workers(context.Background())
	if len(ws) != 1 || !ws[0].Healthy {
		t.Fatalf("workers = %+v", ws)
	}
	if w, h := c.Counts(); w != 1 || h != 1 {
		t.Fatalf("counts = %d/%d", w, h)
	}

	// Fleets do not nest: a coordinator-mode server is not a worker.
	coordMgr := service.NewManager(service.Config{Workers: 1, Fleet: fleet.New(fleet.Config{})})
	coordSrv := httptest.NewServer(service.NewHandler(coordMgr))
	t.Cleanup(func() {
		coordSrv.Close()
		coordMgr.Close()
	})
	if _, err := c.Register(context.Background(), coordSrv.URL); err == nil ||
		!strings.Contains(err.Error(), "coordinator") {
		t.Fatalf("registering a coordinator as a worker: %v, want nesting rejection", err)
	}
}

// TestRunGridMergesAcrossWorkers is the happy-path acceptance test: a
// two-worker fleet executes the grid, the merged stream is canonical
// and complete, and the fold-merged aggregate is byte-identical to a
// single-process run of the same grid.
func TestRunGridMergesAcrossWorkers(t *testing.T) {
	t.Parallel()
	c := fleet.New(testConfig())
	register(t, c, startWorker(t))
	register(t, c, startWorker(t))

	var merged []fleet.Cell
	sum, groups, err := c.RunGrid(context.Background(), testSpec, func(cell fleet.Cell) {
		merged = append(merged, cell)
	}, fleet.GridHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedCells(t, testSpec, merged)
	for i, cell := range merged {
		if cell.Error != "" || cell.Outcome == nil {
			t.Fatalf("cell %d: error=%q outcome=%v", i, cell.Error, cell.Outcome)
		}
	}
	cells := testSpec.NumCells()
	if sum.Cells != cells || sum.Executed != cells || sum.Errors != 0 || sum.Shards != 4 || sum.Redispatches != 0 {
		t.Fatalf("summary = %+v", sum)
	}

	out, err := json.Marshal(groups)
	if err != nil {
		t.Fatal(err)
	}
	if want := singleProcessAggregate(t, testSpec); !bytes.Equal(out, want) {
		t.Fatalf("fold-merged aggregate diverged from single-process:\n%s\nvs\n%s", out, want)
	}
}

// flakyFront fronts a real worker handler: it lets one cell line
// through on the first stream, then cuts the stream and plays dead —
// every later request, health probes included, fails. It models a
// worker process dying mid-shard.
type flakyFront struct {
	real http.Handler

	mu    sync.Mutex
	lines int
	dead  bool
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		http.Error(w, "worker died", http.StatusInternalServerError)
		return
	}
	if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/cells") {
		f.real.ServeHTTP(&cuttingWriter{ResponseWriter: w, front: f}, r)
		return
	}
	f.real.ServeHTTP(w, r)
}

// cuttingWriter forwards one line, then reports the worker dead and
// fails every subsequent write.
type cuttingWriter struct {
	http.ResponseWriter
	front *flakyFront
}

func (cw *cuttingWriter) Write(p []byte) (int, error) {
	cw.front.mu.Lock()
	if cw.front.lines >= 1 {
		cw.front.dead = true
		cw.front.mu.Unlock()
		return 0, errors.New("connection cut")
	}
	cw.front.lines++
	cw.front.mu.Unlock()
	n, err := cw.ResponseWriter.Write(p)
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	return n, err
}

func (cw *cuttingWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestRunGridRedispatchesShardWhenWorkerDies kills one worker after it
// streamed a single cell: the coordinator must mark it unhealthy,
// re-dispatch the shard to the surviving worker, skip the
// already-merged cell on the replayed stream, and still complete the
// full grid with a byte-identical aggregate — and its metrics must
// record the churn (unhealthy-worker gauge, re-dispatch counter).
func TestRunGridRedispatchesShardWhenWorkerDies(t *testing.T) {
	t.Parallel()
	mgr := service.NewManager(service.Config{Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 4})
	front := &flakyFront{real: service.NewHandler(mgr)}
	flaky := httptest.NewServer(front)
	t.Cleanup(func() {
		flaky.Close()
		mgr.Close()
	})

	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Metrics = reg
	c := fleet.New(cfg)
	register(t, c, flaky.URL)
	register(t, c, startWorker(t))

	var merged []fleet.Cell
	sum, groups, err := c.RunGrid(context.Background(), testSpec, func(cell fleet.Cell) {
		merged = append(merged, cell)
	}, fleet.GridHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedCells(t, testSpec, merged)
	for i, cell := range merged {
		if cell.Error != "" {
			t.Fatalf("cell %d carries error %q", i, cell.Error)
		}
	}
	if sum.Redispatches == 0 {
		t.Fatal("worker death did not re-dispatch any shard")
	}

	out, err := json.Marshal(groups)
	if err != nil {
		t.Fatal(err)
	}
	if want := singleProcessAggregate(t, testSpec); !bytes.Equal(out, want) {
		t.Fatalf("aggregate after re-dispatch diverged:\n%s\nvs\n%s", out, want)
	}

	// The dead worker is out of rotation and reported unhealthy.
	for _, w := range c.Workers(context.Background()) {
		if w.URL == flaky.URL && w.Healthy {
			t.Fatalf("dead worker still healthy: %+v", w)
		}
	}

	// The churn is visible on the coordinator's metrics: the healthy
	// gauge dropped to the surviving worker, the re-dispatch counter
	// agrees with the summary, and the death was counted as exactly
	// one transition into unhealthy.
	m := scrapeRegistry(t, reg)
	if v, ok := m.Value("adnet_fleet_workers_healthy", nil); !ok || v != 1 {
		t.Errorf("healthy-worker gauge = %v/%v, want 1", v, ok)
	}
	if v, ok := m.Value("adnet_fleet_workers", nil); !ok || v != 2 {
		t.Errorf("worker gauge = %v/%v, want 2", v, ok)
	}
	if v, _ := m.Value("adnet_fleet_shards_redispatched_total", nil); v != float64(sum.Redispatches) {
		t.Errorf("re-dispatch counter = %v, want %d (the summary's count)", v, sum.Redispatches)
	}
	if v, _ := m.Value("adnet_fleet_worker_health_transitions_total",
		map[string]string{"to": "unhealthy"}); v != 1 {
		t.Errorf("unhealthy transitions = %v, want 1", v)
	}
	if v, _ := m.Value("adnet_fleet_shards_dispatched_total", nil); v < float64(sum.Shards+sum.Redispatches) {
		t.Errorf("dispatch attempts = %v, want >= %d", v, sum.Shards+sum.Redispatches)
	}
	if v, _ := m.Value("adnet_fleet_shard_duration_seconds_count", map[string]string{"worker": "worker-002"}); v < 1 {
		t.Errorf("surviving worker's shard-latency observations = %v, want >= 1", v)
	}
}

// busyFront fronts a real worker and rejects the first `rejects`
// sweep submissions with the service's fail-fast 503, as a worker
// saturated by its own client sweeps would.
type busyFront struct {
	real http.Handler

	mu      sync.Mutex
	rejects int
}

func (b *busyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/v1/sweeps") {
		b.mu.Lock()
		reject := b.rejects > 0
		if reject {
			b.rejects--
		}
		b.mu.Unlock()
		if reject {
			http.Error(w, `{"error":"service: too many concurrent sweeps"}`, http.StatusServiceUnavailable)
			return
		}
	}
	b.real.ServeHTTP(w, r)
}

// sabotagingFront fronts a real worker and replaces the first cell
// stream with the one-line-per-cell canceled shape — error-marked
// cells trailed by a done:false summary — exactly what a worker-side
// time limit or a third-party DELETE produces. Everything else passes
// through to the real worker.
type sabotagingFront struct {
	real http.Handler

	mu        sync.Mutex
	sabotages int
	lastSpec  struct {
		Algorithms []string `json:"algorithms"`
		Workloads  []string `json:"workloads"`
		Sizes      []int    `json:"sizes"`
		Seeds      []int64  `json:"seeds"`
	}
}

func (s *sabotagingFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/v1/sweeps") {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		json.Unmarshal(body, &s.lastSpec)
		s.mu.Unlock()
		r.Body = io.NopCloser(bytes.NewReader(body))
		s.real.ServeHTTP(w, r)
		return
	}
	if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/cells") {
		s.mu.Lock()
		sabotage := s.sabotages > 0
		if sabotage {
			s.sabotages--
		}
		spec := s.lastSpec
		s.mu.Unlock()
		if sabotage {
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc := json.NewEncoder(w)
			idx := 0
			for _, a := range spec.Algorithms {
				for _, wl := range spec.Workloads {
					for _, n := range spec.Sizes {
						for _, seed := range spec.Seeds {
							enc.Encode(map[string]any{
								"index": idx, "algorithm": a, "workload": wl, "n": n,
								"seed": seed, "from_cache": false,
								"error": "expt: cell skipped: sim: canceled",
							})
							idx++
						}
					}
				}
			}
			enc.Encode(map[string]any{
				"done": false, "cells": idx, "cache_hits": 0, "executed": 0, "errors": idx,
			})
			return
		}
	}
	s.real.ServeHTTP(w, r)
}

// TestRunGridRejectsIncompleteWorkerSweep: a worker sweep that ends
// canceled/failed streams error-marked cells and a done:false summary;
// the coordinator must treat that as a failed dispatch and re-run the
// shard — never merge the error cells as results.
func TestRunGridRejectsIncompleteWorkerSweep(t *testing.T) {
	t.Parallel()
	mgr := service.NewManager(service.Config{Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 4})
	front := &sabotagingFront{real: service.NewHandler(mgr), sabotages: 1}
	srv := httptest.NewServer(front)
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})

	c := fleet.New(testConfig())
	register(t, c, srv.URL)

	var merged []fleet.Cell
	_, groups, err := c.RunGrid(context.Background(), testSpec, func(cell fleet.Cell) {
		merged = append(merged, cell)
	}, fleet.GridHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedCells(t, testSpec, merged)
	for i, cell := range merged {
		if cell.Error != "" || cell.Outcome == nil {
			t.Fatalf("cell %d from the sabotaged sweep leaked into the merge: %+v", i, cell)
		}
	}
	out, errj := json.Marshal(groups)
	if errj != nil {
		t.Fatal(errj)
	}
	if want := singleProcessAggregate(t, testSpec); !bytes.Equal(out, want) {
		t.Fatalf("aggregate diverged after sabotaged dispatch:\n%s\nvs\n%s", out, want)
	}
}

// TestRunGridWaitsOutBusyWorker: a worker whose sweep gate rejects the
// first dispatches (503) is saturated, not broken — the coordinator
// must retry with backoff, keep the worker healthy, and complete the
// sweep without re-dispatch.
func TestRunGridWaitsOutBusyWorker(t *testing.T) {
	t.Parallel()
	mgr := service.NewManager(service.Config{Workers: 1, SweepWorkers: 1, MaxConcurrentSweeps: 4})
	front := &busyFront{real: service.NewHandler(mgr), rejects: 2}
	busy := httptest.NewServer(front)
	t.Cleanup(func() {
		busy.Close()
		mgr.Close()
	})

	c := fleet.New(testConfig())
	register(t, c, busy.URL)

	var merged []fleet.Cell
	sum, groups, err := c.RunGrid(context.Background(), testSpec, func(cell fleet.Cell) {
		merged = append(merged, cell)
	}, fleet.GridHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkMergedCells(t, testSpec, merged)
	if sum.Redispatches != 0 {
		t.Fatalf("busy worker counted as %d re-dispatches", sum.Redispatches)
	}
	if groups == nil {
		t.Fatal("no merged aggregate")
	}
	ws := c.Workers(context.Background())
	if len(ws) != 1 || !ws[0].Healthy {
		t.Fatalf("busy worker lost its health: %+v", ws)
	}
}

// TestRunGridNoWorkersKeepsWireContract: with nothing registered the
// sweep fails fast but still emits one skip-marked line per cell.
func TestRunGridNoWorkersKeepsWireContract(t *testing.T) {
	t.Parallel()
	c := fleet.New(testConfig())
	var merged []fleet.Cell
	sum, groups, err := c.RunGrid(context.Background(), testSpec, func(cell fleet.Cell) {
		merged = append(merged, cell)
	}, fleet.GridHooks{})
	if !errors.Is(err, fleet.ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if groups != nil {
		t.Fatalf("groups = %v on a failed sweep", groups)
	}
	checkMergedCells(t, testSpec, merged)
	for i, cell := range merged {
		if !strings.Contains(cell.Error, "skipped") {
			t.Fatalf("cell %d not skip-marked: %+v", i, cell)
		}
	}
	if sum.Errors != testSpec.NumCells() {
		t.Fatalf("summary errors = %d, want %d", sum.Errors, testSpec.NumCells())
	}
}

// TestRunGridCancelMidSweep cancels from the emit callback after the
// first merged cell: the sweep must unwind promptly, report
// cancellation, and still emit the full per-cell wire shape.
func TestRunGridCancelMidSweep(t *testing.T) {
	t.Parallel()
	c := fleet.New(testConfig())
	register(t, c, startWorker(t))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var merged []fleet.Cell
	_, groups, err := c.RunGrid(ctx, testSpec, func(cell fleet.Cell) {
		merged = append(merged, cell)
		cancel()
	}, fleet.GridHooks{})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if groups != nil {
		t.Fatal("canceled sweep produced merged groups")
	}
	checkMergedCells(t, testSpec, merged)
	if merged[0].Error != "" || merged[0].Outcome == nil {
		t.Fatalf("first cell should have merged before the cancel: %+v", merged[0])
	}
	skipped := 0
	for _, cell := range merged {
		if strings.Contains(cell.Error, "skipped") {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no cells skip-marked after cancel")
	}
}
