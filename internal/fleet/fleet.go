// Package fleet is the coordinator side of the distributed sweep
// fabric: it turns a farm of independent adnet-server processes into
// one logical sweep executor. The coordinator keeps a registry of
// worker servers (health-checked over their /healthz endpoints),
// partitions a sweep grid into deterministic, group-aligned shards
// (plan.go), dispatches each shard to a worker over the ordinary
// /v1/sweeps HTTP API and tails its NDJSON cell stream — broken
// streams are resumed with ?cursor=N, replaying only the frames this
// dispatch has not consumed yet (dispatch.go) — and re-emits one
// merged cell stream in canonical grid order plus a fold-merged
// aggregate that is byte-identical to a single-process run of the
// same grid (run.go).
//
// Failure semantics: a shard delivers its cells to the merger only
// after the worker's trailing summary confirms a completed sweep, so
// a worker that dies, times out, or has its sweep canceled mid-shard
// contributes nothing — it is marked unhealthy and the shard is
// re-dispatched to another healthy worker, merging exactly once. A
// worker that merely rejects the dispatch with its sweep gate (503)
// keeps its health; the shard retries with backoff. The sweep fails
// only when a shard exhausts its dispatch attempts or no healthy
// worker remains.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"adnet/internal/obs"
)

// Registration and execution errors surfaced to the service layer.
var (
	// ErrNoWorkers fails a sweep that has no healthy worker to run on.
	ErrNoWorkers = errors.New("fleet: no healthy workers registered")
	// ErrDuplicateWorker rejects re-registration of a known worker URL.
	ErrDuplicateWorker = errors.New("fleet: worker already registered")
	// ErrInvalidWorkerURL rejects registration of a malformed base URL.
	ErrInvalidWorkerURL = errors.New("fleet: worker URL must be absolute http(s)")
)

// Config sizes the coordinator. Zero values pick the documented
// defaults.
type Config struct {
	// Client issues every worker request. The default client has no
	// overall timeout — a shard's cell stream legally stays open for
	// minutes — so non-streaming calls are bounded by per-request
	// contexts instead.
	Client *http.Client
	// HealthTimeout bounds one /healthz probe (default 3s).
	HealthTimeout time.Duration
	// ShardAttempts is how many dispatches one shard may consume —
	// across different workers — before the whole sweep fails
	// (default 3).
	ShardAttempts int
	// StreamResumes is how many times a broken cell stream is resumed
	// on the same worker sweep before the shard counts as failed on
	// that worker and is re-dispatched elsewhere (default 2).
	StreamResumes int
	// RetryBackoff separates stream resume attempts (default 200ms).
	RetryBackoff time.Duration
	// Metrics receives the coordinator's instruments (shard dispatch
	// counters, worker health transitions, per-worker shard latency).
	// Nil gets a private registry, so an unwired coordinator still
	// counts — it just exports nowhere.
	Metrics *obs.Registry
	// Logger carries the coordinator's structured log. Nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 3 * time.Second
	}
	if c.ShardAttempts <= 0 {
		c.ShardAttempts = 3
	}
	if c.StreamResumes <= 0 {
		c.StreamResumes = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 200 * time.Millisecond
	}
	return c
}

// Coordinator owns the worker registry and executes sweep grids across
// it. All methods are safe for concurrent use.
type Coordinator struct {
	cfg     Config
	metrics *fleetMetrics

	mu      sync.Mutex
	workers []*worker
	seq     int
}

// New returns a coordinator with an empty registry.
func New(cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults()}
	c.metrics = newFleetMetrics(c.cfg.Metrics, c.cfg.Logger, c)
	return c
}

// worker is one registered adnet-server process.
type worker struct {
	id  string
	url string
	// obs counts this worker's health transitions; set once at
	// creation, before the worker is shared.
	obs *fleetMetrics

	mu         sync.Mutex
	healthy    bool
	lastProbe  time.Time
	lastErr    string
	shardsDone int
}

// WorkerStatus is the JSON-facing snapshot of a registered worker.
type WorkerStatus struct {
	ID         string    `json:"id"`
	URL        string    `json:"url"`
	Healthy    bool      `json:"healthy"`
	LastProbe  time.Time `json:"last_probe"`
	Error      string    `json:"error,omitempty"`
	ShardsDone int       `json:"shards_done"`
}

func (w *worker) status() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStatus{
		ID:         w.id,
		URL:        w.url,
		Healthy:    w.healthy,
		LastProbe:  w.lastProbe,
		Error:      w.lastErr,
		ShardsDone: w.shardsDone,
	}
}

func (w *worker) setHealth(healthy bool, errText string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.healthy != healthy {
		w.obs.noteHealthTransition(healthy)
	}
	w.healthy = healthy
	w.lastErr = errText
	w.lastProbe = time.Now()
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

func (w *worker) noteShardDone() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.shardsDone++
}

// Register adds a worker server by base URL after a successful health
// probe; an unreachable worker is not registered. The URL is
// normalized (trailing slash stripped) and must be absolute http(s).
// Registering a URL twice returns ErrDuplicateWorker alongside the
// existing worker's freshly probed status.
func (c *Coordinator) Register(ctx context.Context, rawURL string) (WorkerStatus, error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return WorkerStatus{}, fmt.Errorf("%w: %q", ErrInvalidWorkerURL, rawURL)
	}
	base := u.String()
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}

	c.mu.Lock()
	for _, w := range c.workers {
		if w.url == base {
			c.mu.Unlock()
			c.probe(ctx, w)
			return w.status(), ErrDuplicateWorker
		}
	}
	c.seq++
	w := &worker{id: fmt.Sprintf("worker-%03d", c.seq), url: base, obs: c.metrics}
	c.mu.Unlock()

	if ok := c.probe(ctx, w); !ok {
		return w.status(), fmt.Errorf("fleet: worker %s failed its health probe: %s", base, w.status().Error)
	}
	c.mu.Lock()
	// Re-check: a concurrent Register for the same URL may have won.
	for _, existing := range c.workers {
		if existing.url == base {
			c.mu.Unlock()
			return existing.status(), ErrDuplicateWorker
		}
	}
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	c.cfg.Logger.InfoContext(ctx, "fleet worker registered",
		slog.String("worker", w.id), slog.String("url", base))
	return w.status(), nil
}

// Workers re-probes every registered worker — concurrently, so a
// registry full of unreachable workers costs one HealthTimeout, not
// one per worker — and returns their statuses, sorted by worker ID
// (registration order).
func (c *Coordinator) Workers(ctx context.Context) []WorkerStatus {
	ws := c.snapshot()
	c.probeAll(ctx, ws)
	out := make([]WorkerStatus, len(ws))
	for i, w := range ws {
		out[i] = w.status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// probeAll probes the given workers concurrently.
func (c *Coordinator) probeAll(ctx context.Context, ws []*worker) {
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probe(ctx, w)
		}(w)
	}
	wg.Wait()
}

// Counts returns (registered, healthy-as-of-last-probe) worker counts
// without probing — the cheap form behind the coordinator's healthz
// counters.
func (c *Coordinator) Counts() (workers, healthy int) {
	for _, w := range c.snapshot() {
		workers++
		if w.isHealthy() {
			healthy++
		}
	}
	return workers, healthy
}

func (c *Coordinator) snapshot() []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*worker(nil), c.workers...)
}

// probe hits the worker's /healthz once, records the result, and
// reports health. The probe detaches from the caller's cancellation
// (keeping only its own HealthTimeout): recorded health must reflect
// the worker, never the patience of whichever client happened to
// trigger the probe — a scraper disconnecting from GET
// /v1/fleet/workers must not poison the registry. A target whose
// healthz identifies it as a coordinator is rejected: fleets do not
// nest, and dispatching a shard to another coordinator would recurse.
func (c *Coordinator) probe(ctx context.Context, w *worker) bool {
	pctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		w.setHealth(false, err.Error())
		return false
	}
	obs.SetRequestIDHeader(req)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		w.setHealth(false, err.Error())
		return false
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.setHealth(false, fmt.Sprintf("healthz returned %d", resp.StatusCode))
		return false
	}
	var health struct {
		Status string `json:"status"`
		Stats  struct {
			Coordinator bool `json:"coordinator"`
		} `json:"stats"`
	}
	// Any 200 is not enough: the body must be an adnet-server healthz,
	// or shard dispatches to some unrelated service would fail only
	// mid-sweep instead of at registration.
	if json.Unmarshal(body, &health) != nil || health.Status != "ok" {
		w.setHealth(false, "healthz response is not an adnet-server worker")
		return false
	}
	if health.Stats.Coordinator {
		w.setHealth(false, "target is a coordinator, not a worker (fleets do not nest)")
		return false
	}
	w.setHealth(true, "")
	return true
}

// healthyWorkers probes the registry (concurrently) and returns the
// workers that answered.
func (c *Coordinator) healthyWorkers(ctx context.Context) []*worker {
	ws := c.snapshot()
	c.probeAll(ctx, ws)
	var out []*worker
	for _, w := range ws {
		if w.isHealthy() {
			out = append(out, w)
		}
	}
	return out
}
