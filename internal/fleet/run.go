package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"adnet/internal/expt"
	"adnet/internal/sim"
)

// Summary totals a distributed sweep. CacheHits and Errors are counted
// over the merged cell stream (synthesized skip-cells included);
// Executed sums the completing workers' own summaries, so it keeps the
// worker-side "a simulation actually ran" semantics. Replayed counts
// cells served from journaled shards (GridHooks.Completed) without
// re-dispatching.
type Summary struct {
	Cells        int
	CacheHits    int
	Executed     int
	Errors       int
	Shards       int
	Redispatches int
	Replayed     int
}

// ShardResult is one completed shard's durable payload: the cells in
// shard-local canonical order plus the worker's shard aggregate —
// exactly what the merge needs to fold the shard without ever
// re-dispatching it.
type ShardResult struct {
	Key    string
	Index  int
	Offset int
	Cells  []Cell
	Groups []expt.AggregateGroup
}

// GridHooks wires RunGrid to a durability layer. Completed is asked
// once per planned shard (by canonical shard key) before dispatch; a
// hit delivers the recorded cells (marked FromCache) and aggregate
// instead of running the shard. Persist receives every shard this run
// completes, after its cells were delivered — it may be called
// concurrently from dispatcher goroutines. Either hook may be nil.
type GridHooks struct {
	Completed func(shardKey string) (ShardResult, bool)
	Persist   func(ShardResult)
}

// RunGrid executes the grid across the registry's healthy workers and
// emits every cell — Index rewritten to the global canonical position —
// in canonical grid order from the calling goroutine. On success the
// returned groups are the fold-merge of the per-shard aggregates,
// byte-identical to a single-process aggregate of the same grid.
//
// On failure (cancellation, or a shard out of dispatch attempts with
// no healthy worker left) RunGrid still emits one line per cell: the
// cells that merged before the failure, then error-marked skip cells
// for the rest — the same wire contract a single-process sweep keeps
// under cancellation — and returns the failure alongside nil groups.
//
// hooks connects the grid to a shard journal: shards hooks.Completed
// recognizes are merged from their recorded cells without dispatching
// (a grid whose shards all replay needs no workers at all), and every
// freshly completed shard is handed to hooks.Persist.
func (c *Coordinator) RunGrid(ctx context.Context, spec expt.SweepSpec, emit func(Cell), hooks GridHooks) (Summary, []expt.AggregateGroup, error) {
	if err := spec.Validate(); err != nil {
		return Summary{}, nil, err
	}
	shards := PlanShards(spec)
	cells := spec.Cells()
	sum := Summary{Cells: len(cells), Shards: len(shards)}

	replayed := make(map[int]ShardResult)
	if hooks.Completed != nil {
		for i := range shards {
			res, ok := hooks.Completed(shards[i].Key)
			if !ok {
				continue
			}
			if len(res.Cells) != shards[i].NumCells() {
				// A record that does not cover the shard is unusable;
				// dispatch the shard normally.
				c.cfg.Logger.WarnContext(ctx, "journaled shard incomplete; re-dispatching",
					slog.Int("shard", i), slog.Int("cells", len(res.Cells)))
				continue
			}
			replayed[i] = res
			sum.Replayed += len(res.Cells)
		}
	}

	workers := c.healthyWorkers(ctx)
	c.cfg.Logger.InfoContext(ctx, "fleet sweep dispatching",
		slog.Int("cells", len(cells)), slog.Int("shards", len(shards)),
		slog.Int("replayed_shards", len(replayed)),
		slog.Int("workers", len(workers)))
	progress, runErr := c.dispatchAll(ctx, shards, workers, &sum, cells, emit, replayed, hooks.Persist)
	// Shards that completed before a failure still did their work:
	// keep their Executed counts in the summary, like the incremental
	// single-process summary would.
	for i := range progress {
		if s := progress[i].summary; s != nil {
			sum.Executed += s.Executed
		}
	}
	if runErr != nil {
		return sum, nil, runErr
	}

	shardGroups := make([][]expt.AggregateGroup, len(shards))
	for i := range progress {
		shardGroups[i] = progress[i].groups
	}
	groups, err := expt.MergeAggregates(shardGroups...)
	if err != nil {
		return sum, nil, err
	}
	return sum, groups, nil
}

// dispatchAll runs the shard queue to completion and merges
// deliveries. It owns the merge/emit loop; dispatcher goroutines own
// shard execution. Shards in replayed never touch the queue: their
// recorded cells are injected into the delivery stream by a local
// replayer goroutine and their progress is pre-seeded as complete.
func (c *Coordinator) dispatchAll(ctx context.Context, shards []Shard, workers []*worker,
	sum *Summary, cells []expt.Cell, emit func(Cell),
	replayed map[int]ShardResult, persist func(ShardResult)) ([]shardProgress, error) {
	progress := make([]shardProgress, len(shards))
	for idx, res := range replayed {
		// Executed stays 0: the replayed work ran in a previous process
		// life, not this one.
		progress[idx].summary = &shardSummary{Done: true, Cells: len(res.Cells)}
		progress[idx].groups = res.Groups
	}

	emitCount := func(cell Cell) {
		if cell.Error != "" {
			sum.Errors++
		} else if cell.FromCache {
			sum.CacheHits++
		}
		if emit != nil {
			emit(cell)
		}
	}

	fail := func(next int, buffered map[int]Cell, cause error) ([]shardProgress, error) {
		// Keep the wire contract: one line per cell. Merged and
		// buffered cells stand; the gaps become skip cells.
		skip := fmt.Sprintf("fleet: cell skipped: %v", cause)
		for ; next < len(cells); next++ {
			if cell, ok := buffered[next]; ok {
				emitCount(cell)
				continue
			}
			cc := cells[next]
			emitCount(Cell{
				Index: next, Algorithm: cc.Algorithm, Workload: cc.Workload,
				N: cc.N, Seed: cc.Seed, MaxRounds: cc.MaxRounds, Error: skip,
			})
		}
		return progress, cause
	}

	// A fully replayed grid needs no workers; anything left to dispatch
	// does.
	if len(workers) == 0 && len(replayed) < len(shards) {
		return fail(0, nil, ErrNoWorkers)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// queue holds shard indices; capacity len(shards) means a requeue
	// never blocks (a shard is in at most one place: queued, running,
	// or done). The queue is closed exactly once, by the dispatcher
	// that finishes the last shard — a requeue implies an unfinished
	// shard, so no send can race the close. Fatal shutdown goes
	// through runCtx cancellation instead of a close: idle dispatchers
	// wake on Done, and a closed-channel send is impossible.
	queue := make(chan int, len(shards))
	for i := range shards {
		if _, ok := replayed[i]; !ok {
			queue <- i
		}
	}
	var closeOnce sync.Once
	closeQueue := func() { closeOnce.Do(func() { close(queue) }) }

	deliveries := make(chan Cell, 64)

	var (
		done         atomic.Int32
		fatalMu      sync.Mutex
		fatalErr     error
		redispatches atomic.Int32
		wg           sync.WaitGroup
	)
	// Replayed shards are born done; with nothing left to dispatch the
	// queue closes now so idle dispatchers drain out immediately.
	done.Store(int32(len(replayed)))
	if int(done.Load()) == len(shards) {
		closeQueue()
	}
	setFatal := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
		cancel()
	}

	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for {
				var idx int
				var ok bool
				select {
				case <-runCtx.Done():
					return
				case idx, ok = <-queue:
					if !ok {
						return
					}
				}
				sp := &progress[idx]
				c.metrics.shardsDispatched.Inc()
				dispatchStart := time.Now()
				err := c.runShard(runCtx, w, shards[idx], sp, func(cell Cell) {
					select {
					case deliveries <- cell:
					case <-runCtx.Done():
					}
				})
				if err == nil {
					c.metrics.shardSeconds.With(w.id).Observe(time.Since(dispatchStart).Seconds())
					w.noteShardDone()
					if persist != nil {
						persist(ShardResult{
							Key: shards[idx].Key, Index: idx, Offset: shards[idx].Offset,
							Cells: sp.cells, Groups: sp.groups,
						})
					}
					if int(done.Add(1)) == len(shards) {
						closeQueue()
					}
					continue
				}
				if runCtx.Err() != nil {
					return
				}
				if errors.Is(err, errWorkerBusy) {
					// Saturated gate, not a broken worker: wait it out
					// rather than burn a dispatch attempt — worker
					// sweeps legally hold the gate for minutes, and the
					// coordinator sweep's own time limit (via ctx)
					// bounds how long this loop may pace.
					c.metrics.busyRetries.Inc()
					select {
					case <-time.After(c.cfg.RetryBackoff):
					case <-runCtx.Done():
						return
					}
					queue <- idx
					continue
				}
				if errors.Is(err, errDispatchRejected) {
					// Deterministic 4xx: every worker would refuse the
					// same spec (config skew between coordinator and
					// worker limits). Fail the sweep now; the worker is
					// fine.
					setFatal(fmt.Errorf("fleet: shard %d (%s): %w", idx, shards[idx].Key, err))
					return
				}
				sp.attempts++
				if sp.attempts >= c.cfg.ShardAttempts {
					setFatal(fmt.Errorf("fleet: shard %d (%s) failed after %d dispatch attempts: %w",
						idx, shards[idx].Key, sp.attempts, err))
					return
				}
				if errors.Is(err, errSweepIncomplete) {
					// The worker proved itself alive by streaming the
					// full canceled shape — a worker-side sweep time
					// limit or third-party cancellation — so it keeps
					// its health and this dispatcher stays in rotation;
					// each cycle cost real worker time, so it does
					// consume a dispatch attempt.
					queue <- idx
					continue
				}
				// The worker broke mid-shard: take it out of rotation
				// and hand the shard to whoever is still alive. If this
				// was the last live dispatcher, the requeued index sits
				// in the buffered queue and RunGrid reports ErrNoWorkers
				// once every dispatcher has drained out.
				w.setHealth(false, err.Error())
				c.metrics.shardsRedispatched.Inc()
				c.cfg.Logger.WarnContext(runCtx, "fleet worker broke mid-shard; re-dispatching",
					slog.String("worker", w.id), slog.Int("shard", idx),
					slog.String("error", err.Error()))
				redispatches.Add(1)
				queue <- idx
				return
			}
		}(w)
	}
	if len(replayed) > 0 {
		// The replayer is a local "dispatcher" for journaled shards: it
		// injects their recorded cells — global indexes, marked
		// FromCache (journal-recovered error cells keep their flags) —
		// into the same delivery stream live shards feed.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx, res := range replayed {
				for i, cell := range res.Cells {
					cell.Index = shards[idx].Offset + i
					if cell.Error == "" {
						cell.FromCache = true
					}
					select {
					case deliveries <- cell:
					case <-runCtx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(deliveries)
	}()

	// Merge: deliveries arrive shard-ordered per shard but interleaved
	// across shards; re-emit in global canonical order.
	next := 0
	buffered := make(map[int]Cell)
	for d := range deliveries {
		buffered[d.Index] = d
		for {
			cell, ok := buffered[next]
			if !ok {
				break
			}
			delete(buffered, next)
			emitCount(cell)
			next++
		}
	}
	sum.Redispatches = int(redispatches.Load())

	fatalMu.Lock()
	cause := fatalErr
	fatalMu.Unlock()
	switch {
	case ctx.Err() != nil:
		return fail(next, buffered, fmt.Errorf("fleet: sweep: %w", sim.ErrCanceled))
	case cause != nil:
		return fail(next, buffered, cause)
	case int(done.Load()) != len(shards):
		return fail(next, buffered, ErrNoWorkers)
	}
	return progress, nil
}
