package fleet

import (
	"log/slog"

	"adnet/internal/obs"
)

// fleetMetrics holds the coordinator's instruments. Every Coordinator
// owns its own set, registered on Config.Metrics — no package-global
// state, so parallel coordinators (tests) never share counters.
type fleetMetrics struct {
	log *slog.Logger

	// Dispatch outcomes. Dispatched counts every attempt posted to a
	// worker; redispatched counts shards handed to another worker after
	// theirs broke mid-shard; busy retries and stream resumes are the
	// two recoveries that do not change worker health.
	shardsDispatched   *obs.Counter
	shardsRedispatched *obs.Counter
	busyRetries        *obs.Counter
	streamResumes      *obs.Counter

	// healthTransitions counts state *changes* only — a worker probed
	// healthy a hundred times in a row moves the counter once.
	healthTransitions *obs.CounterVec

	// shardSeconds folds the wall-clock cost of each completed shard,
	// labeled by worker ID (bounded: registration is explicit).
	shardSeconds *obs.HistogramVec
}

// newFleetMetrics registers the coordinator's instruments, including
// scrape-time gauges over the registry counts.
func newFleetMetrics(reg *obs.Registry, logger *slog.Logger, c *Coordinator) *fleetMetrics {
	reg.GaugeFunc("adnet_fleet_workers",
		"Workers in the registry.",
		func() float64 { w, _ := c.Counts(); return float64(w) })
	reg.GaugeFunc("adnet_fleet_workers_healthy",
		"Registered workers healthy as of their last probe.",
		func() float64 { _, h := c.Counts(); return float64(h) })
	return &fleetMetrics{
		log: logger,
		shardsDispatched: reg.Counter("adnet_fleet_shards_dispatched_total",
			"Shard dispatch attempts posted to workers (re-dispatches and retries included)."),
		shardsRedispatched: reg.Counter("adnet_fleet_shards_redispatched_total",
			"Shards re-queued for another worker after theirs broke mid-shard."),
		busyRetries: reg.Counter("adnet_fleet_busy_retries_total",
			"Dispatches bounced by a worker's sweep gate (503) and requeued without penalty."),
		streamResumes: reg.Counter("adnet_fleet_stream_resumes_total",
			"Broken shard cell streams resumed from their ?cursor=N offset."),
		healthTransitions: reg.CounterVec("adnet_fleet_worker_health_transitions_total",
			"Worker health state changes, by the state entered.",
			"to"),
		shardSeconds: reg.HistogramVec("adnet_fleet_shard_duration_seconds",
			"Wall-clock duration of successfully completed shard dispatches, by worker ID.",
			obs.LatencyBuckets(),
			"worker"),
	}
}

// noteHealthTransition records a worker health flip. Called from
// worker.setHealth with the worker lock held, so the counter moves in
// the same order the registry state does.
func (fm *fleetMetrics) noteHealthTransition(healthy bool) {
	if fm == nil {
		return
	}
	if healthy {
		fm.healthTransitions.With("healthy").Inc()
	} else {
		fm.healthTransitions.With("unhealthy").Inc()
	}
}
