package fleet

import (
	"strings"
	"testing"

	"adnet/internal/expt"
)

// TestPlanShardsGroupAlignedDeterministic pins the planner's contract:
// shards are contiguous in canonical cell order, cover the grid
// exactly, align to (algorithm, workload, n) group boundaries, and
// carry stable runkey-derived identities.
func TestPlanShardsGroupAlignedDeterministic(t *testing.T) {
	t.Parallel()
	spec := expt.SweepSpec{
		Algorithms: []string{"graph-to-star", "flood"},
		Workloads:  []string{"line", "ring"},
		Sizes:      []int{16, 24},
		Seeds:      []int64{1, 2, 3},
		MaxRounds:  500,
	}
	shards := PlanShards(spec)
	if want := 2 * 2 * 2; len(shards) != want {
		t.Fatalf("shards = %d, want one per (algorithm, workload, n) row = %d", len(shards), want)
	}
	cells := spec.Cells()
	offset := 0
	for i, sh := range shards {
		if sh.Index != i || sh.Offset != offset {
			t.Fatalf("shard %d: index/offset = %d/%d, want %d/%d", i, sh.Index, sh.Offset, i, offset)
		}
		sub := sh.Spec.Cells()
		if len(sub) != 3 {
			t.Fatalf("shard %d: %d cells, want 3 seeds", i, len(sub))
		}
		for j, c := range sub {
			if c != cells[offset+j] {
				t.Fatalf("shard %d cell %d = %+v, want global cell %d = %+v", i, j, c, offset+j, cells[offset+j])
			}
		}
		// One aggregation group per shard.
		first := sub[0]
		for _, c := range sub {
			if c.Algorithm != first.Algorithm || c.Workload != first.Workload || c.N != first.N {
				t.Fatalf("shard %d spans groups: %+v vs %+v", i, first, c)
			}
		}
		if !strings.Contains(sh.Key, "|shard=") || sh.Spec.MaxRounds != 500 {
			t.Fatalf("shard %d: key %q / max rounds %d", i, sh.Key, sh.Spec.MaxRounds)
		}
		offset += len(sub)
	}
	if offset != len(cells) {
		t.Fatalf("shards cover %d cells, grid has %d", offset, len(cells))
	}
	// Pure function of the spec: the same plan every time.
	again := PlanShards(spec)
	for i := range shards {
		if shards[i].Key != again[i].Key || shards[i].Offset != again[i].Offset {
			t.Fatalf("plan not deterministic at shard %d", i)
		}
	}
}
