package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"adnet/internal/graph"
)

// floodMachine floods the maximum UID it has seen and halts after a
// fixed number of rounds; the node holding the max declares Leader.
type floodMachine struct {
	best   graph.ID
	rounds int
}

func newFloodFactory(rounds int) Factory {
	return func(id graph.ID, env Env) Machine {
		return &floodMachine{best: id, rounds: rounds}
	}
}

func (m *floodMachine) Init(ctx *Context) {}

func (m *floodMachine) Send(ctx *Context) { ctx.Broadcast(m.best) }

func (m *floodMachine) Receive(ctx *Context, inbox []Message) {
	for _, msg := range inbox {
		if v := msg.Payload.(graph.ID); v > m.best {
			m.best = v
		}
	}
	if ctx.Round() >= m.rounds {
		if m.best == ctx.ID() {
			ctx.SetStatus(StatusLeader)
		} else {
			ctx.SetStatus(StatusFollower)
		}
		ctx.Halt()
	}
}

// cliqueMachine implements §1.2's trivial strategy: every round
// activate edges to all potential neighbors; halt when none remain.
type cliqueMachine struct{}

func (cliqueMachine) Init(*Context) {}

func (cliqueMachine) Send(ctx *Context) {
	// Advertise the neighbor list so peers learn distance-2 nodes.
	nbrs := ctx.Neighbors()
	ctx.Broadcast(nbrs)
}

func (cliqueMachine) Receive(ctx *Context, inbox []Message) {
	seen := map[graph.ID]bool{ctx.ID(): true}
	for _, v := range ctx.Neighbors() {
		seen[v] = true
	}
	activated := false
	for _, msg := range inbox {
		for _, w := range msg.Payload.([]graph.ID) {
			if !seen[w] {
				seen[w] = true
				ctx.Activate(w)
				activated = true
			}
		}
	}
	if !activated && ctx.Degree() == ctx.N()-1 {
		ctx.Halt()
	}
}

func TestFloodElectsMaxUID(t *testing.T) {
	t.Parallel()
	g := graph.Line(10)
	res, err := Run(g, newFloodFactory(9))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	leader, ok := res.Leader()
	if !ok || leader != 9 {
		t.Fatalf("leader = %d, ok = %v; want 9, true", leader, ok)
	}
	if res.Metrics.TotalActivations != 0 {
		t.Fatalf("flooding should activate nothing, got %d", res.Metrics.TotalActivations)
	}
	if res.Rounds != 9 {
		t.Fatalf("rounds = %d, want 9", res.Rounds)
	}
}

func TestFloodTooFewRoundsIncompleteDissemination(t *testing.T) {
	t.Parallel()
	// 4 rounds cannot carry UID 9 across a 10-line: node 0 (distance 9
	// from the max) must still be unaware of it.
	res, err := Run(graph.Line(10), newFloodFactory(4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	aware := 0
	for _, m := range res.Machines {
		if m.(*floodMachine).best == 9 {
			aware++
		}
	}
	if aware >= 10 {
		t.Fatalf("all nodes learned the max UID in fewer rounds than the distance")
	}
	if aware != 5 { // nodes 5..9
		t.Fatalf("aware = %d, want 5 (information travels one hop per round)", aware)
	}
}

func TestCliqueFormationOnLine(t *testing.T) {
	t.Parallel()
	n := 17
	res, err := Run(graph.Line(n), func(graph.ID, Env) Machine { return cliqueMachine{} })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Metrics
	if m.FinalActiveEdges != n*(n-1)/2 {
		t.Fatalf("final edges = %d, want complete graph %d", m.FinalActiveEdges, n*(n-1)/2)
	}
	// Doubling radius: K_n within ~log2(n) + 2 rounds.
	if res.Rounds > 8 {
		t.Fatalf("clique formation took %d rounds, want O(log n) ~ <=8", res.Rounds)
	}
	if m.TotalActivations != n*(n-1)/2-(n-1) {
		t.Fatalf("activations = %d", m.TotalActivations)
	}
}

func TestRoundLimit(t *testing.T) {
	t.Parallel()
	_, err := Run(graph.Line(5), newFloodFactory(1000), WithMaxRounds(3))
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestRejectsEmptyAndDisconnected(t *testing.T) {
	t.Parallel()
	if _, err := Run(graph.New(), newFloodFactory(1)); err == nil {
		t.Fatalf("empty graph accepted")
	}
	g := graph.New()
	g.AddNode(0)
	g.AddNode(1)
	if _, err := Run(g, newFloodFactory(1)); err == nil {
		t.Fatalf("disconnected graph accepted")
	}
}

// badSender messages a non-neighbor.
type badSender struct{}

func (badSender) Init(*Context) {}
func (badSender) Send(ctx *Context) {
	if ctx.ID() == 0 {
		ctx.Send(99, "boo")
	}
}
func (badSender) Receive(ctx *Context, _ []Message) { ctx.Halt() }

func TestSendToNonNeighborFails(t *testing.T) {
	t.Parallel()
	g := graph.Line(3)
	g.AddNode(99)
	g.MustAddEdge(2, 99)
	_, err := Run(g, func(graph.ID, Env) Machine { return badSender{} })
	if err == nil {
		t.Fatalf("send to non-neighbor accepted")
	}
}

// badActivator violates the distance-2 rule.
type badActivator struct{}

func (badActivator) Init(*Context) {}
func (badActivator) Send(*Context) {}
func (badActivator) Receive(ctx *Context, _ []Message) {
	if ctx.ID() == 0 {
		ctx.Activate(3) // distance 3 on Line(4)
	}
	ctx.Halt()
}

func TestModelViolationSurfaces(t *testing.T) {
	t.Parallel()
	_, err := Run(graph.Line(4), func(graph.ID, Env) Machine { return badActivator{} })
	if err == nil {
		t.Fatalf("distance-3 activation accepted")
	}
}

// selfLooper tries a self-loop intent.
type selfLooper struct{}

func (selfLooper) Init(*Context) {}
func (selfLooper) Send(*Context) {}
func (selfLooper) Receive(ctx *Context, _ []Message) {
	ctx.Activate(ctx.ID())
	ctx.Halt()
}

func TestSelfLoopIntentFails(t *testing.T) {
	t.Parallel()
	_, err := Run(graph.Line(3), func(graph.ID, Env) Machine { return selfLooper{} })
	if err == nil {
		t.Fatalf("self-loop intent accepted")
	}
}

// disconnector cuts the line's middle edge.
type disconnector struct{}

func (disconnector) Init(*Context) {}
func (disconnector) Send(*Context) {}
func (disconnector) Receive(ctx *Context, _ []Message) {
	if ctx.ID() == 1 {
		ctx.Deactivate(2)
	}
	ctx.Halt()
}

func TestConnectivityCheck(t *testing.T) {
	t.Parallel()
	_, err := Run(graph.Line(4), func(graph.ID, Env) Machine { return disconnector{} },
		WithConnectivityCheck())
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	// Without the check the same program completes.
	if _, err := Run(graph.Line(4), func(graph.ID, Env) Machine { return disconnector{} }); err != nil {
		t.Fatalf("without check: %v", err)
	}
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	g := graph.RandomConnected(300, 200, rng)
	seq, err := Run(g, func(graph.ID, Env) Machine { return cliqueMachine{} }, WithParallelism(1))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Run(g, func(graph.ID, Env) Machine { return cliqueMachine{} }, WithParallelism(8))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(seq.Metrics, par.Metrics) {
		t.Fatalf("parallel execution diverged:\nseq %+v\npar %+v", seq.Metrics, par.Metrics)
	}
	if seq.Rounds != par.Rounds {
		t.Fatalf("rounds differ: %d vs %d", seq.Rounds, par.Rounds)
	}
}

func TestRoundHookSeesTraffic(t *testing.T) {
	t.Parallel()
	var rounds, msgs int
	_, err := Run(graph.Line(6), newFloodFactory(5), WithRoundHook(func(ev RoundEvent) {
		rounds++
		msgs += len(ev.Messages)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatalf("hook saw %d rounds, want 5", rounds)
	}
	// Each round: every node broadcasts to each neighbor: 2*(n-1) = 10
	// directed messages per round.
	if msgs != 5*10 {
		t.Fatalf("hook saw %d messages, want 50", msgs)
	}
}

func TestHaltedNodesStaySilent(t *testing.T) {
	t.Parallel()
	// Node 0 halts in round 1; other nodes flood until round 4. The
	// run must still terminate with everyone halted.
	factory := func(id graph.ID, env Env) Machine {
		if id == 0 {
			return &haltImmediately{}
		}
		return &floodMachine{best: id, rounds: 4}
	}
	res, err := Run(graph.Line(4), factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
	if res.Statuses[0] != StatusNone {
		t.Fatalf("halted node changed status")
	}
}

type haltImmediately struct{}

func (*haltImmediately) Init(*Context)                     {}
func (*haltImmediately) Send(*Context)                     {}
func (*haltImmediately) Receive(ctx *Context, _ []Message) { ctx.Halt() }

func TestStatusString(t *testing.T) {
	t.Parallel()
	if StatusLeader.String() != "leader" || StatusFollower.String() != "follower" || StatusNone.String() != "none" {
		t.Fatalf("Status.String broken")
	}
}

func TestInboxSenderSorted(t *testing.T) {
	t.Parallel()
	// On a star, the center receives from all leaves; senders must
	// arrive in ascending order.
	type recorder struct {
		floodMachine
		got []graph.ID
	}
	var center *recorder
	factory := func(id graph.ID, env Env) Machine {
		m := &recorder{floodMachine: floodMachine{best: id, rounds: 2}}
		if id == 0 {
			center = m
		}
		return m
	}
	_ = center
	g := graph.Star(6)
	res, err := Run(g, factory)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// The engine guarantee is structural; verify via a custom machine.
	order := make([]graph.ID, 0, 5)
	probe := func(id graph.ID, env Env) Machine {
		return &inboxProbe{order: &order}
	}
	if _, err := Run(g, probe); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("inbox not sender-sorted: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("center got %d messages, want 5", len(order))
	}
}

type inboxProbe struct {
	order *[]graph.ID
}

func (*inboxProbe) Init(*Context)       {}
func (p *inboxProbe) Send(ctx *Context) { ctx.Broadcast("hi") }
func (p *inboxProbe) Receive(ctx *Context, inbox []Message) {
	if ctx.ID() == 0 {
		for _, m := range inbox {
			*p.order = append(*p.order, m.From)
		}
	}
	ctx.Halt()
}

func TestMessageAccounting(t *testing.T) {
	t.Parallel()
	// One broadcast round on a star: the center sends 5, each leaf 1.
	res, err := Run(graph.Star(6), func(graph.ID, Env) Machine { return &inboxProbe{order: new([]graph.ID)} })
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMessages != 10 {
		t.Errorf("total messages = %d, want 10", res.TotalMessages)
	}
	if res.MaxMessagesPerRound != 10 {
		t.Errorf("max per round = %d, want 10", res.MaxMessagesPerRound)
	}
}
