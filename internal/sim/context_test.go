package sim

import (
	"testing"

	"adnet/internal/graph"
)

// probeMachine records context observations from inside a run.
type probeMachine struct {
	sawN       int
	origNbrs   []graph.ID
	isOrig01   bool
	isOrigNew  bool
	degreeAt2  int
	haltedEdge bool
}

func (p *probeMachine) Init(ctx *Context) {
	p.sawN = ctx.N()
	p.origNbrs = ctx.OrigNeighbors()
}

func (p *probeMachine) Send(ctx *Context) {}

func (p *probeMachine) Receive(ctx *Context, _ []Message) {
	switch ctx.Round() {
	case 1:
		if ctx.ID() == 0 {
			ctx.Activate(2) // chord via 1
		}
	case 2:
		if ctx.ID() == 0 {
			p.isOrig01 = ctx.IsOriginal(1)
			p.isOrigNew = ctx.IsOriginal(2)
			p.degreeAt2 = ctx.Degree()
		}
	default:
		if ctx.ID() == 0 {
			// Edge intents issued in the halting round still apply.
			ctx.Deactivate(2)
			p.haltedEdge = true
		}
		ctx.Halt()
	}
}

func TestContextObservations(t *testing.T) {
	t.Parallel()
	machines := map[graph.ID]*probeMachine{}
	res, err := Run(graph.Line(4), func(id graph.ID, env Env) Machine {
		m := &probeMachine{}
		machines[id] = m
		return m
	})
	if err != nil {
		t.Fatal(err)
	}
	m0 := machines[0]
	if m0.sawN != 4 {
		t.Errorf("N() = %d, want 4", m0.sawN)
	}
	if len(m0.origNbrs) != 1 || m0.origNbrs[0] != 1 {
		t.Errorf("OrigNeighbors = %v, want [1]", m0.origNbrs)
	}
	if !m0.isOrig01 {
		t.Error("IsOriginal(1) should be true for the line edge")
	}
	if m0.isOrigNew {
		t.Error("IsOriginal(2) should be false for the activated chord")
	}
	if m0.degreeAt2 != 2 {
		t.Errorf("Degree at round 2 = %d, want 2 (line edge + chord)", m0.degreeAt2)
	}
	// The deactivation issued in the halting round must have applied.
	if res.History.CurrentClone().HasEdge(0, 2) {
		t.Error("edge intent from the halting round was dropped")
	}
}

func TestContextBroadcastReachesAllNeighbors(t *testing.T) {
	t.Parallel()
	got := map[graph.ID]int{}
	factory := func(id graph.ID, env Env) Machine {
		return &countingMachine{got: got}
	}
	if _, err := Run(graph.Star(5), factory); err != nil {
		t.Fatal(err)
	}
	// The center (0) broadcast to 4 leaves; each leaf to the center.
	if got[0] != 4 {
		t.Errorf("center received %d messages, want 4", got[0])
	}
	for leaf := graph.ID(1); leaf < 5; leaf++ {
		if got[leaf] != 1 {
			t.Errorf("leaf %d received %d messages, want 1", leaf, got[leaf])
		}
	}
}

type countingMachine struct{ got map[graph.ID]int }

func (m *countingMachine) Init(*Context)     {}
func (m *countingMachine) Send(ctx *Context) { ctx.Broadcast("ping") }
func (m *countingMachine) Receive(ctx *Context, inbox []Message) {
	m.got[ctx.ID()] += len(inbox)
	ctx.Halt()
}

func TestResultLeaderHelper(t *testing.T) {
	t.Parallel()
	res := &Result{Statuses: map[graph.ID]Status{
		1: StatusFollower, 2: StatusLeader, 3: StatusFollower,
	}}
	if l, ok := res.Leader(); !ok || l != 2 {
		t.Errorf("Leader() = %d, %v", l, ok)
	}
	res.Statuses[3] = StatusLeader
	if _, ok := res.Leader(); ok {
		t.Error("two leaders should not be ok")
	}
}
