package sim

import (
	"reflect"
	"testing"

	"adnet/internal/graph"
)

// TestEngineSummaryWorkersAndBusy pins the observer's parallelism
// digest: parallel runs report the resolved worker count and a
// positive busy time bounded by Workers × Duration; sequential runs
// report one worker with BusyTime equal to the wall clock.
func TestEngineSummaryWorkersAndBusy(t *testing.T) {
	t.Parallel()
	var got RunSummary
	obs := WithRunObserver(func(s RunSummary) { got = s })

	if _, err := Run(graph.Ring(64), func(graph.ID, Env) Machine { return cliqueMachine{} },
		WithParallelism(4), obs); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if got.Workers != 4 {
		t.Fatalf("parallel run Workers = %d, want 4", got.Workers)
	}
	if got.BusyTime <= 0 {
		t.Fatalf("parallel run BusyTime = %v, want > 0", got.BusyTime)
	}
	if got.BusyTime > 4*got.Duration {
		t.Fatalf("BusyTime %v exceeds Workers×Duration %v", got.BusyTime, 4*got.Duration)
	}
	if eff := got.ParallelEfficiency(); eff <= 0 || eff > 1 {
		t.Fatalf("ParallelEfficiency() = %v, want in (0, 1]", eff)
	}

	if _, err := Run(graph.Ring(64), func(graph.ID, Env) Machine { return cliqueMachine{} },
		WithParallelism(1), obs); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if got.Workers != 1 {
		t.Fatalf("sequential run Workers = %d, want 1", got.Workers)
	}
	if got.BusyTime != got.Duration {
		t.Fatalf("sequential run BusyTime = %v, want Duration %v", got.BusyTime, got.Duration)
	}
}

// recycleFlood is floodMachine plus the Recycler extension, counting
// how many times it was restored in place.
type recycleFlood struct {
	floodMachine
	recycles int
}

func (m *recycleFlood) Recycle(id graph.ID, _ Env) {
	m.best = id
	m.recycles++
}

// TestEngineMachineRecycling checks the in-place machine reuse path:
// with a matching key the engine restores the previous run's machines
// (same pointers, correct results); a changed or absent key rebuilds.
func TestEngineMachineRecycling(t *testing.T) {
	t.Parallel()
	const rounds = 9
	f := func(id graph.ID, _ Env) Machine {
		return &recycleFlood{floodMachine: floodMachine{best: id, rounds: rounds}}
	}
	g := graph.Line(10)
	e := NewEngine()
	defer e.Close()

	first := runEngine(t, e, g, f, WithMachineRecycling("flood"))
	firstMachines := make(map[graph.ID]Machine, len(first.Machines))
	for id, m := range first.Machines {
		firstMachines[id] = m
	}
	want := summarize(first)

	second := runEngine(t, e, g, f, WithMachineRecycling("flood"))
	if !reflect.DeepEqual(want, summarize(second)) {
		t.Fatalf("recycled run diverged:\nfirst  %+v\nsecond %+v", want, summarize(second))
	}
	for id, m := range second.Machines {
		if m != firstMachines[id] {
			t.Fatalf("node %d: machine rebuilt despite matching recycle key", id)
		}
		if n := m.(*recycleFlood).recycles; n != 1 {
			t.Fatalf("node %d: recycles = %d, want 1", id, n)
		}
	}

	// A different key must rebuild.
	third := runEngine(t, e, g, f, WithMachineRecycling("flood-v2"))
	for id, m := range third.Machines {
		if m == firstMachines[id] {
			t.Fatalf("node %d: machine recycled across a key change", id)
		}
	}
	// No key must rebuild too (and must not poison the next keyed run).
	fourth := runEngine(t, e, g, f)
	for id, m := range fourth.Machines {
		if m.(*recycleFlood).recycles != 0 {
			t.Fatalf("node %d: unkeyed run reused a machine", id)
		}
	}
	if !reflect.DeepEqual(want, summarize(fourth)) {
		t.Fatalf("unkeyed run diverged from first")
	}
}

// TestEngineRecyclingAcrossSizes grows and shrinks the run under one
// recycle key: shrunk runs recycle a prefix, grown runs recycle the
// previous machines and build the rest, and every run stays correct.
func TestEngineRecyclingAcrossSizes(t *testing.T) {
	t.Parallel()
	f := func(id graph.ID, _ Env) Machine {
		return &recycleFlood{floodMachine: floodMachine{best: id, rounds: 31}}
	}
	e := NewEngine()
	defer e.Close()
	for _, n := range []int{16, 8, 32, 32} {
		res := runEngine(t, e, graph.Line(n), f, WithMachineRecycling("flood"),
			WithMaxRounds(31))
		leader, ok := res.Leader()
		if !ok || leader != graph.ID(n-1) {
			t.Fatalf("n=%d: leader = %d, ok=%v; want %d", n, leader, ok, n-1)
		}
	}
}
