package sim

import (
	"errors"
	"testing"

	"adnet/internal/graph"
)

func TestRunObserverFiresOncePerRun(t *testing.T) {
	t.Parallel()
	var got []RunSummary
	res, err := Run(graph.Line(10), newFloodFactory(9),
		WithRunObserver(func(s RunSummary) { got = append(got, s) }))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(got))
	}
	s := got[0]
	if s.Rounds != res.Rounds {
		t.Errorf("Rounds = %d, want %d", s.Rounds, res.Rounds)
	}
	if s.TotalMessages != res.TotalMessages {
		t.Errorf("TotalMessages = %d, want %d", s.TotalMessages, res.TotalMessages)
	}
	if s.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", s.Duration)
	}
}

func TestRunObserverFiresOnFailure(t *testing.T) {
	t.Parallel()
	var got []RunSummary
	// Never-halting machines hit the round limit; the observer still
	// sees the partial run.
	_, err := Run(graph.Line(4), newFloodFactory(1<<30),
		WithMaxRounds(5),
		WithRunObserver(func(s RunSummary) { got = append(got, s) }))
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if len(got) != 1 || got[0].Rounds != 5 {
		t.Fatalf("observer = %+v, want one summary with Rounds=5", got)
	}
}

func TestRunObserverAcrossEngineReuse(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	defer e.Close()
	fired := 0
	obs := WithRunObserver(func(RunSummary) { fired++ })
	for i := 0; i < 3; i++ {
		runEngine(t, e, graph.Line(6), newFloodFactory(5), obs)
	}
	if fired != 3 {
		t.Fatalf("observer fired %d times over 3 runs, want 3", fired)
	}
	// A run without the option must not inherit the previous observer.
	runEngine(t, e, graph.Line(6), newFloodFactory(5))
	if fired != 3 {
		t.Fatalf("observer leaked across Reset: fired %d", fired)
	}
}
