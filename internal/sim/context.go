package sim

import (
	"fmt"

	"adnet/internal/graph"
	"adnet/internal/temporal"
)

// Context is a node's window onto the network for the current round.
// One Context belongs to exactly one node and must not be retained
// beyond the current callback. All query methods read the snapshot
// E(i) frozen at the start of the round, so they are safe to call from
// concurrently stepped machines.
//
// Contexts are owned and recycled by the Engine: the struct carries
// the node's dense slot, and outgoing messages record their
// destination slot at Send time so delivery is pure slice indexing.
type Context struct {
	id   graph.ID
	slot int
	hist *temporal.History
	env  Env

	round  int
	outbox []outMsg
	acts   []graph.Edge
	deacts []graph.Edge
	halted bool
	status Status
	err    error
}

// outMsg is an outbox entry: the message plus its destination slot,
// resolved once at Send time (-1 when the destination is not a node;
// delivery reports it as a non-neighbor send).
type outMsg struct {
	m    Message
	slot int32
}

// reset rebinds the context to a node slot for a new run, recycling
// its buffers. Stale outbox entries — the full capacity, not just the
// last round's length — are zeroed so payloads from the previous run
// cannot leak through reused backing arrays.
func (c *Context) reset(id graph.ID, slot int, hist *temporal.History, env Env) {
	c.id, c.slot, c.hist, c.env = id, slot, hist, env
	c.round = 0
	c.scrub()
	c.halted = false
	c.status = StatusNone
	c.err = nil
}

// scrub empties the context's buffers and drops every payload
// reference they held, keeping the backing arrays for reuse.
func (c *Context) scrub() {
	outbox := c.outbox[:cap(c.outbox)]
	for i := range outbox {
		outbox[i] = outMsg{}
	}
	c.outbox = c.outbox[:0]
	c.acts = c.acts[:0]
	c.deacts = c.deacts[:0]
}

func (c *Context) beginRound(r int) {
	c.round = r
	c.outbox = c.outbox[:0]
	c.acts = c.acts[:0]
	c.deacts = c.deacts[:0]
}

// ID returns this node's UID.
func (c *Context) ID() graph.ID { return c.id }

// Round returns the current round number (1-based; 0 during Init).
func (c *Context) Round() int { return c.round }

// N returns the number of nodes, a model constant granted to nodes
// (explicitly assumed in the paper's §5; used elsewhere only for
// engineering-level scheduling, as documented in DESIGN.md).
func (c *Context) N() int { return c.env.N }

// Neighbors returns N1 at the start of the round, ascending. The slice
// is fresh and owned by the caller; prefer EachNeighbor or
// NeighborsInto in per-round hot paths.
func (c *Context) Neighbors() []graph.ID { return c.hist.NeighborsOf(c.id) }

// EachNeighbor calls fn for every current neighbor in ascending order,
// stopping early if fn returns false. It performs no allocation.
func (c *Context) EachNeighbor(fn func(v graph.ID) bool) {
	c.hist.EachNeighborOf(c.id, fn)
}

// NeighborsInto appends N1, ascending, to dst[:0] and returns it,
// reusing dst's backing array when it has capacity.
func (c *Context) NeighborsInto(dst []graph.ID) []graph.ID {
	return c.hist.NeighborsInto(c.id, dst)
}

// HasNeighbor reports whether v is currently a neighbor.
func (c *Context) HasNeighbor(v graph.ID) bool { return c.hist.Active(c.id, v) }

// Degree returns |N1|.
func (c *Context) Degree() int { return c.hist.DegreeOf(c.id) }

// IsOriginal reports whether the edge to v belongs to E(1). The
// paper's algorithms keep original edges active until termination and
// nodes can always distinguish them.
func (c *Context) IsOriginal(v graph.ID) bool { return c.hist.IsOriginal(c.id, v) }

// OrigNeighbors returns the node's neighbors in the initial graph Gs,
// ascending. (Static information: a node always knows who its original
// neighbors are.) The slice is a shared immutable view of the frozen
// initial neighborhood — it costs no allocation, and callers must not
// modify it.
func (c *Context) OrigNeighbors() []graph.ID {
	return c.hist.InitialNeighborsView(c.id)
}

// Send queues a message to neighbor v for delivery this round. The
// destination is resolved to its dense slot here, once, so the
// engine's delivery loop is pure slice indexing.
func (c *Context) Send(to graph.ID, payload any) {
	slot, ok := c.hist.SlotOf(to)
	if !ok {
		slot = -1
	}
	c.outbox = append(c.outbox, outMsg{
		m:    Message{From: c.id, To: to, Payload: payload},
		slot: int32(slot),
	})
}

// Broadcast queues the payload to every current neighbor. It iterates
// the sorted adjacency directly and does not allocate a neighbor slice.
func (c *Context) Broadcast(payload any) {
	c.hist.EachNeighborOf(c.id, func(v graph.ID) bool {
		c.Send(v, payload)
		return true
	})
}

// Activate requests activation of edge {self, v} this round. The model
// validates the distance-2 rule when the round is applied.
func (c *Context) Activate(v graph.ID) {
	if v == c.id {
		c.fail(fmt.Errorf("sim: node %d activated a self-loop", c.id))
		return
	}
	c.acts = append(c.acts, graph.NewEdge(c.id, v))
}

// Deactivate requests deactivation of edge {self, v} this round.
func (c *Context) Deactivate(v graph.ID) {
	if v == c.id {
		c.fail(fmt.Errorf("sim: node %d deactivated a self-loop", c.id))
		return
	}
	c.deacts = append(c.deacts, graph.NewEdge(c.id, v))
}

// SetStatus records the node's leader-election outcome.
func (c *Context) SetStatus(s Status) { c.status = s }

// Status returns the current recorded status.
func (c *Context) Status() Status { return c.status }

// Halt marks the node terminated. A halted node sends nothing,
// receives nothing and issues no further intents; the engine stops
// when every node has halted. Edge intents issued in the same round as
// Halt are still applied.
func (c *Context) Halt() { c.halted = true }

// Halted reports whether the node has halted.
func (c *Context) Halted() bool { return c.halted }

func (c *Context) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}
