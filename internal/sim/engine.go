package sim

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"adnet/internal/graph"
	"adnet/internal/temporal"
)

// Engine is a reusable execution core: one engine runs many
// simulations back to back, reusing its contexts, inboxes, intent
// buffers, temporal.History scratch, and worker pool across runs. The
// lifecycle is
//
//	e := NewEngine()
//	defer e.Close()
//	for each run {
//		e.Reset(gs, factory, opts...)   // rebind to a new execution
//		res, err := e.Run()             // execute it to completion
//	}
//
// Reset may change the graph, the size, the factory and the options
// freely between runs. Run consumes the Reset: calling Run twice
// without a Reset in between is an error.
//
// Ownership: the *Result returned by Run shares the engine's History;
// it is valid until the next Reset, so callers that keep results
// across runs must extract what they need (clones, Metrics, PerRound)
// before resetting. Engines are not safe for concurrent use; run one
// engine per goroutine (see expt.ExecuteSweep for the fleet pattern).
//
// Internally everything is slot-addressed: node slots are ascending-ID
// ranks 0..n-1 (the History keeps its snapshots canonical), contexts
// and machines live in slot-indexed slices, outbox entries resolve
// their destination to a slot at Send time, and delivery is pure slice
// indexing — no per-run ID→index map exists. The worker pool is
// persistent and pinned: each worker owns a fixed slot range
// [lo, hi) for the whole run and parks on its channel between phases
// and between runs instead of being respawned.
type Engine struct {
	cfg     config
	workers int
	pool    *workerPool

	hist      *temporal.History
	ids       []graph.ID // slot → ID, ascending
	ctxs      []*Context
	machines  []Machine
	inboxes   [][]Message
	delivered []Message
	acts      []graph.Edge
	deacts    []graph.Edge

	n        int
	ready    bool // a successful Reset has not yet been consumed by Run
	runStart time.Time
}

// NewEngine returns an idle engine. Close it when done to release the
// worker pool.
func NewEngine() *Engine { return &Engine{} }

// Close releases the persistent worker pool. The engine may be reused
// after Close (Reset recreates the pool on demand).
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
	e.ready = false
}

// Reset rebinds the engine to a fresh execution of the algorithm
// produced by factory on the initial graph gs. All per-run state from
// the previous execution is recycled; previously returned Results
// become invalid. Machines are rebuilt (they carry algorithm state),
// everything else is reused.
func (e *Engine) Reset(gs *graph.Graph, factory Factory, opts ...Option) error {
	e.ready = false
	n := gs.NumNodes()
	if n == 0 {
		return errors.New("sim: empty initial graph")
	}
	if !gs.IsConnected() {
		return errors.New("sim: initial graph must be connected")
	}
	cfg := config{maxRounds: 64*n + 64}
	for _, o := range opts {
		o(&cfg)
	}
	e.cfg = cfg
	e.n = n
	workers := cfg.parallelism
	if workers <= 0 {
		if n >= 512 {
			workers = runtime.GOMAXPROCS(0)
		} else {
			workers = 1
		}
	}
	e.workers = workers

	if e.hist == nil {
		e.hist = temporal.NewHistory(gs)
	} else {
		e.hist.Reset(gs)
	}
	if cfg.trace {
		e.hist.EnableTrace()
	}
	e.ids = e.hist.AppendNodeIDs(e.ids)

	// Contexts and machines, slot-indexed. Context structs are reused;
	// machines are algorithm state and must be rebuilt per run.
	e.ctxs = growPtrs(e.ctxs, n)
	e.machines = grow(e.machines, n)
	env := Env{N: n}
	for i := 0; i < n; i++ {
		e.ctxs[i].reset(e.ids[i], i, e.hist, env)
		m := factory(e.ids[i], env)
		if m == nil {
			return fmt.Errorf("sim: factory returned nil machine for node %d", e.ids[i])
		}
		e.machines[i] = m
	}
	// When the run shrank, scrub the tails beyond n too: slots past
	// the new size would otherwise pin the previous run's machines
	// and payloads through the slices' backing arrays.
	for _, c := range e.ctxs[n:cap(e.ctxs)] {
		if c != nil {
			c.scrub()
		}
	}
	machineTail := e.machines[n:cap(e.machines)]
	for i := range machineTail {
		machineTail[i] = nil
	}

	// Inboxes keep their backing arrays; stale Messages are cleared so
	// payloads from earlier runs do not stay reachable.
	e.inboxes = grow(e.inboxes, n)
	inboxAll := e.inboxes[:cap(e.inboxes)]
	for i := range inboxAll {
		clearMessages(inboxAll[i][:cap(inboxAll[i])])
		inboxAll[i] = inboxAll[i][:0]
	}
	clearMessages(e.delivered[:cap(e.delivered)])
	e.delivered = e.delivered[:0]
	e.acts, e.deacts = e.acts[:0], e.deacts[:0]

	if workers > 1 {
		if e.pool == nil || e.pool.size != workers {
			if e.pool != nil {
				e.pool.close()
			}
			e.pool = newWorkerPool(workers)
		}
		e.pool.setRanges(n)
	}
	e.ready = true
	return nil
}

// Run executes the round loop prepared by the last Reset until every
// node halts, the round limit is hit, or an error aborts the
// execution. On a runtime failure (model violation, round limit,
// connectivity check, cancellation) Run returns the partial Result
// alongside the error.
func (e *Engine) Run() (*Result, error) {
	if !e.ready {
		return nil, errors.New("sim: Engine.Run requires a successful Reset first")
	}
	e.ready = false
	cfg := &e.cfg
	if cfg.observer != nil {
		e.runStart = time.Now()
	}
	n := e.n
	hist := e.hist
	ctxs := e.ctxs[:n]
	machines := e.machines[:n]
	inboxes := e.inboxes[:n]

	// Init phase.
	for i := range machines {
		ctxs[i].round = 0
		machines[i].Init(ctxs[i])
	}

	checkCtxErrs := func() error {
		for i := range ctxs {
			if ctxs[i].err != nil {
				return ctxs[i].err
			}
		}
		return nil
	}

	totalMsgs, maxMsgs := 0, 0
	for round := 1; round <= cfg.maxRounds; round++ {
		if cfg.done != nil {
			select {
			case <-cfg.done:
				return e.finish(round-1, totalMsgs, maxMsgs),
					fmt.Errorf("%w after round %d", ErrCanceled, round-1)
			default:
			}
		}
		// --- Send ---
		e.step(func(i int) {
			ctx := ctxs[i]
			ctx.beginRound(round)
			if ctx.halted {
				return
			}
			machines[i].Send(ctx)
		})
		if err := checkCtxErrs(); err != nil {
			return e.finish(round, totalMsgs, maxMsgs), err
		}
		// --- Deliver: pure slot indexing; destination slots were
		// resolved at Send time. ---
		for i := range inboxes {
			inboxes[i] = inboxes[i][:0]
		}
		roundMsgs := 0
		for i := range ctxs {
			for _, om := range ctxs[i].outbox {
				if om.slot < 0 || !hist.ActiveSlots(i, int(om.slot)) {
					return e.finish(round, totalMsgs, maxMsgs),
						fmt.Errorf("sim: round %d: node %d sent to non-neighbor %d", round, om.m.From, om.m.To)
				}
				inboxes[om.slot] = append(inboxes[om.slot], om.m)
				roundMsgs++
			}
		}
		totalMsgs += roundMsgs
		if roundMsgs > maxMsgs {
			maxMsgs = roundMsgs
		}
		// Inboxes are already sender-sorted: senders are processed in
		// ascending slot (= ascending ID) order and each sender's
		// messages keep their queueing order.
		if len(cfg.hooks) > 0 {
			e.delivered = e.delivered[:0]
			for i := range inboxes {
				e.delivered = append(e.delivered, inboxes[i]...)
			}
		}

		// --- Receive + intents ---
		e.step(func(i int) {
			ctx := ctxs[i]
			if ctx.halted {
				return
			}
			machines[i].Receive(ctx, inboxes[i])
		})
		if err := checkCtxErrs(); err != nil {
			return e.finish(round, totalMsgs, maxMsgs), err
		}

		// --- Activate / Deactivate ---
		e.acts, e.deacts = e.acts[:0], e.deacts[:0]
		for i := range ctxs {
			e.acts = append(e.acts, ctxs[i].acts...)
			e.deacts = append(e.deacts, ctxs[i].deacts...)
		}
		stats, err := hist.Apply(e.acts, e.deacts)
		if err != nil {
			return e.finish(round, totalMsgs, maxMsgs), err
		}
		if cfg.checkConnect && !hist.CurrentClone().IsConnected() {
			return e.finish(round, totalMsgs, maxMsgs),
				fmt.Errorf("%w after round %d", ErrDisconnected, round)
		}
		for _, hook := range cfg.hooks {
			hook(RoundEvent{Round: round, Messages: e.delivered, Stats: stats})
		}

		allHalted := true
		for i := range ctxs {
			if !ctxs[i].halted {
				allHalted = false
				break
			}
		}
		if allHalted {
			return e.finish(round, totalMsgs, maxMsgs), nil
		}
	}
	return e.finish(cfg.maxRounds, totalMsgs, maxMsgs),
		fmt.Errorf("%w (limit %d)", ErrRoundLimit, cfg.maxRounds)
}

// step runs fn for every slot, sequentially or on the pinned pool.
func (e *Engine) step(fn func(i int)) {
	if e.workers <= 1 || e.n < 2*e.workers {
		for i := 0; i < e.n; i++ {
			fn(i)
		}
		return
	}
	e.pool.run(fn)
}

func (e *Engine) finish(rounds, totalMsgs, maxMsgs int) *Result {
	// The observer fires here — once per run, after the round loop —
	// so instrumentation never executes inside the hot loop.
	if e.cfg.observer != nil {
		e.cfg.observer(RunSummary{
			Rounds:        rounds,
			Duration:      time.Since(e.runStart),
			TotalMessages: totalMsgs,
		})
	}
	res := &Result{
		History:             e.hist,
		Metrics:             e.hist.Metrics(),
		Rounds:              rounds,
		Statuses:            make(map[graph.ID]Status, e.n),
		Machines:            make(map[graph.ID]Machine, e.n),
		TotalMessages:       totalMsgs,
		MaxMessagesPerRound: maxMsgs,
	}
	for i := 0; i < e.n; i++ {
		res.Statuses[e.ids[i]] = e.ctxs[i].status
		res.Machines[e.ids[i]] = e.machines[i]
	}
	return res
}

// workerPool is a persistent, pinned pool: size goroutines, each
// owning the fixed slot range [lo[w], hi[w]). Workers park on their
// start channel between phases and between runs; a phase is one
// channel send per worker, one completion receive per worker. Ranges
// are rewritten only between runs (Engine.Reset), which
// happens-before the next start send.
type workerPool struct {
	size   int
	lo, hi []int
	start  []chan func(i int)
	done   chan struct{}
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{
		size:  size,
		lo:    make([]int, size),
		hi:    make([]int, size),
		start: make([]chan func(i int), size),
		done:  make(chan struct{}, size),
	}
	for w := 0; w < size; w++ {
		p.start[w] = make(chan func(i int))
		go func(w int) {
			for fn := range p.start[w] {
				for i := p.lo[w]; i < p.hi[w]; i++ {
					fn(i)
				}
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// setRanges pins contiguous, near-equal slot ranges for n slots.
func (p *workerPool) setRanges(n int) {
	chunk := (n + p.size - 1) / p.size
	for w := 0; w < p.size; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		p.lo[w], p.hi[w] = lo, hi
	}
}

// run executes one phase: every worker steps its own range, and all
// workers are awaited before returning. Errors are recorded
// per-Context by fn and surfaced by the caller, keeping execution
// deterministic regardless of scheduling.
func (p *workerPool) run(fn func(i int)) {
	for w := 0; w < p.size; w++ {
		p.start[w] <- fn
	}
	for w := 0; w < p.size; w++ {
		<-p.done
	}
}

func (p *workerPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}

// grow resizes s to length n, reusing capacity (and, for slice
// elements, their backing arrays) when available.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]T, n)
	copy(out, s[:cap(s)])
	return out
}

// growPtrs is grow for the context slice, allocating structs for new
// slots.
func growPtrs(s []*Context, n int) []*Context {
	s = grow(s, n)
	for i := range s {
		if s[i] == nil {
			s[i] = &Context{}
		}
	}
	return s
}

// clearMessages zeroes a message slice so payload references from a
// finished run cannot leak into the next one via reused capacity.
func clearMessages(ms []Message) {
	for i := range ms {
		ms[i] = Message{}
	}
}
