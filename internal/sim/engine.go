package sim

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"adnet/internal/graph"
	"adnet/internal/temporal"
)

// Engine is a reusable execution core: one engine runs many
// simulations back to back, reusing its contexts, inboxes, intent
// buffers, temporal.History scratch, and worker pool across runs. The
// lifecycle is
//
//	e := NewEngine()
//	defer e.Close()
//	for each run {
//		e.Reset(gs, factory, opts...)   // rebind to a new execution
//		res, err := e.Run()             // execute it to completion
//	}
//
// Reset may change the graph, the size, the factory and the options
// freely between runs. Run consumes the Reset: calling Run twice
// without a Reset in between is an error.
//
// Ownership: the *Result returned by Run shares the engine's History
// (and, across runs, the engine reuses the Result struct itself); it
// is valid until the next Reset, so callers that keep results across
// runs must extract what they need (clones, Metrics, PerRound) before
// resetting. Engines are not safe for concurrent use; run one engine
// per goroutine (see expt.ExecuteSweep for the fleet pattern).
//
// Internally everything is slot-addressed: node slots are ascending-ID
// ranks 0..n-1 (the History keeps its snapshots canonical), contexts
// and machines live in slot-indexed slices, outbox entries resolve
// their destination to a slot at Send time, and delivery is pure slice
// indexing — no per-run ID→index map exists. The worker pool is
// persistent and pinned: each worker owns a fixed slot range
// [lo, hi) for the whole run and parks on its channel between phases
// and between runs instead of being respawned. Parallelism is
// intra-round end to end: workers step their slot ranges, collect
// their slots' edge intents into worker-local buffers (merged without
// locks — worker ranges are ascending and ordered, so batch
// concatenation is exactly the sequential slot order), and validate
// the resulting batches concurrently inside History.ApplyBatches.
type Engine struct {
	cfg     config
	workers int
	usePool bool // resolved per run: workers > 1 and n large enough
	pool    *workerPool

	hist      *temporal.History
	ids       []graph.ID // slot → ID, ascending
	ctxs      []*Context
	machines  []Machine
	inboxes   [][]Message
	delivered []Message

	// Per-worker intent buffers: worker w appends the intents of its
	// slot range into wacts[w]/wdeacts[w] during the Receive step, and
	// batches[w] hands them to History.ApplyBatches. Index 0 doubles
	// as the sequential path's single buffer.
	wacts   [][]graph.Edge
	wdeacts [][]graph.Edge
	batches []temporal.IntentBatch

	// Phase closures, bound once per engine so the round loop does not
	// allocate a closure per phase. They read curRound instead of
	// capturing the loop variable.
	sendFn   func(w, i int)
	recvFn   func(w, i int)
	applyPar func(k int, fn func(int))
	curRound int

	bfs graph.BFSScratch // connectivity checks without per-call allocation
	res *Result          // reused across runs; see Ownership above

	// delta and initSlots are the scratch behind WithDeltaHook /
	// WithStartHook: filled only when hooks are registered, reused
	// across rounds and runs.
	delta     temporal.RoundDelta
	initSlots []int32

	// Machine recycling (WithMachineRecycling): the key and size of the
	// previous run, used to decide whether machines can be Recycled in
	// place instead of rebuilt.
	lastRecycle string
	lastN       int

	// Environment state (WithEnvironment): the retained factory rebuilds
	// machines on reboot-restarts, crashed marks down slots, and
	// downCount gates every crash check so the env-absent hot loop pays
	// one integer compare. envEdits is the reused Perturb scratch.
	factory   Factory
	crashed   []bool
	downCount int
	envEdits  EnvEdits

	n        int
	ready    bool // a successful Reset has not yet been consumed by Run
	runStart time.Time
}

// NewEngine returns an idle engine. Close it when done to release the
// worker pool.
func NewEngine() *Engine {
	e := &Engine{}
	e.sendFn = func(_, i int) {
		ctx := e.ctxs[i]
		ctx.beginRound(e.curRound)
		if ctx.halted || (e.downCount > 0 && e.crashed[i]) {
			return
		}
		if e.cfg.env != nil {
			e.protect(ctx, i, func() { e.machines[i].Send(ctx) })
			return
		}
		e.machines[i].Send(ctx)
	}
	e.recvFn = func(w, i int) {
		ctx := e.ctxs[i]
		if !ctx.halted && !(e.downCount > 0 && e.crashed[i]) {
			if e.cfg.env != nil {
				e.protect(ctx, i, func() { e.machines[i].Receive(ctx, e.inboxes[i]) })
			} else {
				e.machines[i].Receive(ctx, e.inboxes[i])
			}
		}
		if len(ctx.acts) > 0 {
			e.wacts[w] = append(e.wacts[w], ctx.acts...)
		}
		if len(ctx.deacts) > 0 {
			e.wdeacts[w] = append(e.wdeacts[w], ctx.deacts...)
		}
	}
	e.applyPar = func(k int, fn func(int)) {
		e.pool.runSelf(fn)
	}
	return e
}

// Close releases the persistent worker pool. The engine may be reused
// after Close (Reset recreates the pool on demand).
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
	e.ready = false
}

// Reset rebinds the engine to a fresh execution of the algorithm
// produced by factory on the initial graph gs. All per-run state from
// the previous execution is recycled; previously returned Results
// become invalid. Machines are rebuilt (they carry algorithm state)
// unless WithMachineRecycling applies, in which case they are restored
// in place; everything else is reused.
func (e *Engine) Reset(gs *graph.Graph, factory Factory, opts ...Option) error {
	e.ready = false
	prevRecycle, prevN := e.lastRecycle, e.lastN
	e.lastRecycle = "" // a failed Reset must not leave stale machines recyclable
	n := gs.NumNodes()
	if n == 0 {
		return errors.New("sim: empty initial graph")
	}
	if !e.bfs.IsConnected(gs) {
		return errors.New("sim: initial graph must be connected")
	}
	// Options are applied straight into the engine-owned config: taking
	// the address of a local would force it to escape and cost one heap
	// allocation per Reset.
	e.cfg = config{maxRounds: 64*n + 64}
	for _, o := range opts {
		o(&e.cfg)
	}
	cfg := &e.cfg
	e.n = n
	workers := cfg.parallelism
	if workers <= 0 {
		if n >= 512 {
			workers = runtime.GOMAXPROCS(0)
		} else {
			workers = 1
		}
	}
	e.workers = workers
	e.usePool = workers > 1 && n >= 2*workers

	if e.hist == nil {
		e.hist = temporal.NewHistory(gs)
	} else {
		e.hist.Reset(gs)
	}
	if cfg.trace {
		e.hist.EnableTrace()
	}
	e.ids = e.hist.AppendNodeIDs(e.ids)

	// Contexts and machines, slot-indexed. Context structs are reused.
	// Machines are algorithm state: rebuilt per run, except that when
	// the caller vouches (via a matching recycle key) that the factory
	// is the same algorithm as last run and the previous machines can
	// restore themselves, they are Recycled in place — the difference
	// between a handful of allocations per run and none.
	e.ctxs = growPtrs(e.ctxs, n)
	e.machines = grow(e.machines, n)
	env := Env{N: n}
	recycle := cfg.recycle != "" && cfg.recycle == prevRecycle
	if recycle {
		for i := 0; i < prevN && i < n; i++ {
			if _, ok := e.machines[i].(Recycler); !ok {
				recycle = false
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		e.ctxs[i].reset(e.ids[i], i, e.hist, env)
		if recycle && i < prevN {
			e.machines[i].(Recycler).Recycle(e.ids[i], env)
			continue
		}
		m := factory(e.ids[i], env)
		if m == nil {
			return fmt.Errorf("sim: factory returned nil machine for node %d", e.ids[i])
		}
		e.machines[i] = m
	}
	// When the run shrank, scrub the tails beyond n too: slots past
	// the new size would otherwise pin the previous run's machines
	// and payloads through the slices' backing arrays.
	for _, c := range e.ctxs[n:cap(e.ctxs)] {
		if c != nil {
			c.scrub()
		}
	}
	machineTail := e.machines[n:cap(e.machines)]
	for i := range machineTail {
		machineTail[i] = nil
	}

	// Inboxes keep their backing arrays; stale Messages are cleared so
	// payloads from earlier runs do not stay reachable.
	e.inboxes = grow(e.inboxes, n)
	inboxAll := e.inboxes[:cap(e.inboxes)]
	for i := range inboxAll {
		clearMessages(inboxAll[i][:cap(inboxAll[i])])
		inboxAll[i] = inboxAll[i][:0]
	}
	clearMessages(e.delivered[:cap(e.delivered)])
	e.delivered = e.delivered[:0]

	// One intent buffer per worker (one total when sequential).
	k := 1
	if e.usePool {
		k = workers
	}
	e.wacts = growSlices(e.wacts, k)
	e.wdeacts = growSlices(e.wdeacts, k)
	e.batches = grow(e.batches[:0], k)

	if e.usePool {
		if e.pool == nil || e.pool.size != workers {
			if e.pool != nil {
				e.pool.close()
			}
			e.pool = newWorkerPool(workers)
		}
		e.pool.setRanges(n)
	}
	e.factory = factory
	e.downCount = 0
	if cfg.env != nil {
		// Crash tracking and the relaxed delivery/validation semantics
		// exist only on the environment path; without an environment the
		// round loop is byte-for-byte the strict, zero-alloc one.
		if cap(e.crashed) < n {
			e.crashed = make([]bool, n)
		} else {
			e.crashed = e.crashed[:n]
			clear(e.crashed)
		}
		e.hist.SetLenientActivation(true)
		cfg.env.Begin(n)
	}
	e.lastRecycle = cfg.recycle
	e.lastN = n
	e.ready = true
	return nil
}

// Run executes the round loop prepared by the last Reset until every
// node halts, the round limit is hit, or an error aborts the
// execution. On a runtime failure (model violation, round limit,
// connectivity check, cancellation) Run returns the partial Result
// alongside the error.
func (e *Engine) Run() (*Result, error) {
	if !e.ready {
		return nil, errors.New("sim: Engine.Run requires a successful Reset first")
	}
	e.ready = false
	cfg := &e.cfg
	if cfg.observer != nil {
		e.runStart = time.Now()
	}
	if e.usePool {
		e.pool.resetBusy()
	}
	n := e.n
	hist := e.hist
	ctxs := e.ctxs[:n]
	machines := e.machines[:n]
	inboxes := e.inboxes[:n]
	k := len(e.batches)

	// Init phase.
	for i := range machines {
		ctxs[i].round = 0
		machines[i].Init(ctxs[i])
	}
	if len(cfg.startHooks) > 0 {
		e.initSlots = hist.AppendInitialEdges(e.initSlots)
		for _, hook := range cfg.startHooks {
			hook(StartEvent{N: n, Edges: e.initSlots})
		}
	}

	totalMsgs, maxMsgs := 0, 0
	for round := 1; round <= cfg.maxRounds; round++ {
		if cfg.done != nil {
			select {
			case <-cfg.done:
				return e.finish(round-1, totalMsgs, maxMsgs),
					fmt.Errorf("%w after round %d", ErrCanceled, round-1)
			default:
			}
		}
		// --- Send ---
		e.curRound = round
		e.step(e.sendFn)
		if err := e.ctxErr(); err != nil {
			return e.finish(round, totalMsgs, maxMsgs), err
		}
		// --- Deliver: pure slot indexing; destination slots were
		// resolved at Send time. ---
		for i := range inboxes {
			inboxes[i] = inboxes[i][:0]
		}
		roundMsgs := 0
		for i := range ctxs {
			for _, om := range ctxs[i].outbox {
				if om.slot < 0 || !hist.ActiveSlots(i, int(om.slot)) {
					if cfg.env != nil {
						continue // the environment cut the edge: message lost
					}
					return e.finish(round, totalMsgs, maxMsgs),
						fmt.Errorf("sim: round %d: node %d sent to non-neighbor %d", round, om.m.From, om.m.To)
				}
				if e.downCount > 0 && e.crashed[om.slot] {
					continue // crashed destination drops its inbox
				}
				inboxes[om.slot] = append(inboxes[om.slot], om.m)
				roundMsgs++
			}
		}
		totalMsgs += roundMsgs
		if roundMsgs > maxMsgs {
			maxMsgs = roundMsgs
		}
		// Inboxes are already sender-sorted: senders are processed in
		// ascending slot (= ascending ID) order and each sender's
		// messages keep their queueing order.
		if len(cfg.hooks) > 0 {
			e.delivered = e.delivered[:0]
			for i := range inboxes {
				e.delivered = append(e.delivered, inboxes[i]...)
			}
		}

		// --- Receive + intents, collected per worker ---
		for w := 0; w < k; w++ {
			e.wacts[w] = e.wacts[w][:0]
			e.wdeacts[w] = e.wdeacts[w][:0]
		}
		e.step(e.recvFn)
		if err := e.ctxErr(); err != nil {
			return e.finish(round, totalMsgs, maxMsgs), err
		}

		// --- Activate / Deactivate ---
		// Worker ranges are contiguous ascending slot spans, so the
		// batches in worker order reproduce exactly the intent order a
		// sequential slot scan would have produced; ApplyBatches then
		// guarantees an outcome byte-identical to sequential Apply.
		for w := 0; w < k; w++ {
			e.batches[w] = temporal.IntentBatch{Activate: e.wacts[w], Deactivate: e.wdeacts[w]}
		}
		var par func(int, func(int))
		if e.usePool {
			par = e.applyPar
		}
		stats, err := hist.ApplyBatches(e.batches, par)
		if err != nil {
			return e.finish(round, totalMsgs, maxMsgs), err
		}
		if cfg.env != nil {
			// Environment boundary: perturbation runs on the round
			// driver after the algorithm's intents committed, so it is
			// deterministic regardless of worker count. Perturb runs
			// every round (with possibly empty output) to keep the
			// History's environment bookkeeping round-aligned.
			e.envEdits.Reset()
			cfg.env.Perturb(round, hist, &e.envEdits)
			stats, err = hist.ApplyEnvironment(e.envEdits.Activate, e.envEdits.Deactivate)
			if err != nil {
				return e.finish(round, totalMsgs, maxMsgs), err
			}
			if err := e.applyFaults(round); err != nil {
				return e.finish(round, totalMsgs, maxMsgs), err
			}
		}
		if cfg.checkConnect && !hist.CurrentIsConnected(&e.bfs) {
			return e.finish(round, totalMsgs, maxMsgs),
				fmt.Errorf("%w after round %d", ErrDisconnected, round)
		}
		for _, hook := range cfg.hooks {
			hook(RoundEvent{Round: round, Messages: e.delivered, Stats: stats})
		}
		if len(cfg.deltaHooks) > 0 {
			hist.AppendLastDelta(&e.delta)
			for _, hook := range cfg.deltaHooks {
				hook(e.delta)
			}
		}

		allHalted := true
		for i := range ctxs {
			if !ctxs[i].halted {
				allHalted = false
				break
			}
		}
		if allHalted {
			return e.finish(round, totalMsgs, maxMsgs), nil
		}
	}
	return e.finish(cfg.maxRounds, totalMsgs, maxMsgs),
		fmt.Errorf("%w (limit %d)", ErrRoundLimit, cfg.maxRounds)
}

// applyFaults commits the environment's crash/restart edits collected
// by the last Perturb. Restarts are processed first so a schedule may
// restart and re-crash a slot across consecutive boundaries without
// ordering surprises; out-of-range slots, crashes of already-down
// slots and restarts of up slots are ignored. A reboot-restart rebuilds
// the machine from the run's factory and re-runs Init (the node comes
// back blank, as after a power cycle); a sleep-restart resumes the
// machine with its state intact.
func (e *Engine) applyFaults(round int) error {
	n := e.n
	for _, s := range e.envEdits.Restart {
		i := int(s)
		if i < 0 || i >= n || !e.crashed[i] {
			continue
		}
		e.crashed[i] = false
		e.downCount--
		if e.envEdits.Reboot {
			ctx := e.ctxs[i]
			env := Env{N: n}
			ctx.reset(e.ids[i], i, e.hist, env)
			m := e.factory(e.ids[i], env)
			if m == nil {
				return fmt.Errorf("sim: round %d: factory returned nil machine rebooting node %d", round, e.ids[i])
			}
			e.machines[i] = m
			e.protect(ctx, i, func() { m.Init(ctx) })
			if ctx.err != nil {
				return ctx.err
			}
		}
	}
	for _, s := range e.envEdits.Crash {
		i := int(s)
		if i < 0 || i >= n || e.crashed[i] {
			continue
		}
		e.crashed[i] = true
		e.downCount++
		// Drop the inbox the slot had accumulated: a crashed node loses
		// in-flight state, so nothing delivered before the crash
		// survives to its restart round.
		e.inboxes[i] = e.inboxes[i][:0]
	}
	return nil
}

// protect runs one machine step under a recover, converting a panic
// into that slot's run error. Machines are written against the paper's
// model, where only the algorithm edits edges; an adversarial
// environment can break their internal invariants mid-run, and that
// must fail the run (honest robustness data) rather than kill the
// process. Environment runs only — the strict path stays defer-free.
func (e *Engine) protect(ctx *Context, i int, step func()) {
	defer func() {
		if r := recover(); r != nil {
			ctx.err = fmt.Errorf("sim: round %d: node %d panicked under environment perturbation: %v",
				e.curRound, ctx.id, r)
		}
	}()
	step()
}

// ctxErr returns the first per-context error recorded this phase.
func (e *Engine) ctxErr() error {
	for _, c := range e.ctxs[:e.n] {
		if c.err != nil {
			return c.err
		}
	}
	return nil
}

// step runs fn for every slot, sequentially or on the pinned pool.
// The first argument of fn is the executing worker index (0 when
// sequential), which is what routes intents to worker-local buffers.
func (e *Engine) step(fn func(w, i int)) {
	if !e.usePool {
		for i := 0; i < e.n; i++ {
			fn(0, i)
		}
		return
	}
	e.pool.run(fn)
}

func (e *Engine) finish(rounds, totalMsgs, maxMsgs int) *Result {
	// The observer fires here — once per run, after the round loop —
	// so instrumentation never executes inside the hot loop.
	if e.cfg.observer != nil {
		dur := time.Since(e.runStart)
		workers, busy := 1, dur
		if e.usePool {
			workers, busy = e.workers, e.pool.totalBusy()
		}
		e.cfg.observer(RunSummary{
			Rounds:        rounds,
			Duration:      dur,
			TotalMessages: totalMsgs,
			Workers:       workers,
			BusyTime:      busy,
		})
	}
	if e.res == nil {
		e.res = &Result{
			Statuses: make(map[graph.ID]Status, e.n),
			Machines: make(map[graph.ID]Machine, e.n),
		}
	} else {
		clear(e.res.Statuses)
		clear(e.res.Machines)
	}
	res := e.res
	res.History = e.hist
	res.Metrics = e.hist.Metrics()
	res.Rounds = rounds
	res.TotalMessages = totalMsgs
	res.MaxMessagesPerRound = maxMsgs
	for i := 0; i < e.n; i++ {
		res.Statuses[e.ids[i]] = e.ctxs[i].status
		res.Machines[e.ids[i]] = e.machines[i]
	}
	return res
}

// poolTask is one unit of work for the pool: either a range task
// (fn applied to every slot of the worker's range) or a self task
// (self applied once to the worker's own index — how ApplyBatches
// validation shards land on their workers). Exactly one field is set.
type poolTask struct {
	fn   func(w, i int)
	self func(w int)
}

// workerPool is a persistent, pinned pool: size goroutines, each
// owning the fixed slot range [lo[w], hi[w]). Workers park on their
// start channel between phases and between runs; a phase is one
// channel send per worker, one completion receive per worker. Ranges
// are rewritten only between runs (Engine.Reset), which
// happens-before the next start send. Each worker accumulates the
// wall-clock time it spends executing tasks in busy[w] (written only
// by worker w, read by the driver after the completion barrier), which
// is what RunSummary.BusyTime — and the parallel-efficiency metric
// built on it — reports.
type workerPool struct {
	size   int
	lo, hi []int
	busy   []time.Duration
	start  []chan poolTask
	done   chan struct{}
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{
		size:  size,
		lo:    make([]int, size),
		hi:    make([]int, size),
		busy:  make([]time.Duration, size),
		start: make([]chan poolTask, size),
		done:  make(chan struct{}, size),
	}
	for w := 0; w < size; w++ {
		p.start[w] = make(chan poolTask)
		go func(w int) {
			for t := range p.start[w] {
				t0 := time.Now()
				if t.self != nil {
					t.self(w)
				} else {
					for i := p.lo[w]; i < p.hi[w]; i++ {
						t.fn(w, i)
					}
				}
				p.busy[w] += time.Since(t0)
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// setRanges pins contiguous, near-equal slot ranges for n slots.
func (p *workerPool) setRanges(n int) {
	chunk := (n + p.size - 1) / p.size
	for w := 0; w < p.size; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		p.lo[w], p.hi[w] = lo, hi
	}
}

// run executes one range phase: every worker steps its own range, and
// all workers are awaited before returning. Errors are recorded
// per-Context by fn and surfaced by the caller, keeping execution
// deterministic regardless of scheduling.
func (p *workerPool) run(fn func(w, i int)) {
	t := poolTask{fn: fn}
	for w := 0; w < p.size; w++ {
		p.start[w] <- t
	}
	for w := 0; w < p.size; w++ {
		<-p.done
	}
}

// runSelf executes fn(w) once on every worker w and awaits them all.
func (p *workerPool) runSelf(fn func(w int)) {
	t := poolTask{self: fn}
	for w := 0; w < p.size; w++ {
		p.start[w] <- t
	}
	for w := 0; w < p.size; w++ {
		<-p.done
	}
}

func (p *workerPool) resetBusy() {
	for w := range p.busy {
		p.busy[w] = 0
	}
}

// totalBusy sums the per-worker busy time. Callers must have observed
// the completion barrier of every outstanding task.
func (p *workerPool) totalBusy() time.Duration {
	var total time.Duration
	for _, b := range p.busy {
		total += b
	}
	return total
}

func (p *workerPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}

// grow resizes s to length n, reusing capacity (and, for slice
// elements, their backing arrays) when available.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]T, n)
	copy(out, s[:cap(s)])
	return out
}

// growSlices is grow for the per-worker intent buffers, keeping each
// buffer's backing array and resetting lengths to zero.
func growSlices(s [][]graph.Edge, n int) [][]graph.Edge {
	s = grow(s, n)
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// growPtrs is grow for the context slice, allocating structs for new
// slots.
func growPtrs(s []*Context, n int) []*Context {
	s = grow(s, n)
	for i := range s {
		if s[i] == nil {
			s[i] = &Context{}
		}
	}
	return s
}

// clearMessages zeroes a message slice so payload references from a
// finished run cannot leak into the next one via reused capacity.
func clearMessages(ms []Message) {
	for i := range ms {
		ms[i] = Message{}
	}
}
