package sim

import (
	"strings"
	"testing"

	"adnet/internal/graph"
	"adnet/internal/temporal"
)

// scriptEnv replays a fixed per-round script of environment edits.
type scriptEnv struct {
	steps map[int]func(edits *EnvEdits)
}

func (s *scriptEnv) Begin(n int) {}

func (s *scriptEnv) Perturb(round int, hist *temporal.History, edits *EnvEdits) {
	if f, ok := s.steps[round]; ok {
		f(edits)
	}
}

// pingMachine: node 0 sends a ping to node 1 every round; node 1
// counts what arrives. Everyone halts after the given round.
type pingMachine struct {
	got    int
	rounds int
}

func (m *pingMachine) Init(*Context) {}

func (m *pingMachine) Send(ctx *Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, "ping")
	}
}

func (m *pingMachine) Receive(ctx *Context, inbox []Message) {
	m.got += len(inbox)
	if ctx.Round() >= m.rounds {
		ctx.Halt()
	}
}

func TestEnvironmentCutLosesMessages(t *testing.T) {
	t.Parallel()
	machines := map[graph.ID]*pingMachine{}
	factory := func(id graph.ID, env Env) Machine {
		m := &pingMachine{rounds: 5}
		machines[id] = m
		return m
	}
	env := &scriptEnv{steps: map[int]func(*EnvEdits){
		2: func(e *EnvEdits) { e.Deactivate = append(e.Deactivate, graph.NewEdge(0, 1)) },
	}}
	res, err := Run(graph.Ring(3), factory, WithEnvironment(env))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The cut commits after round 2, so pings land in rounds 1-2 and
	// are silently lost (not a run error) in rounds 3-5.
	if machines[1].got != 2 {
		t.Fatalf("node 1 received %d pings, want 2", machines[1].got)
	}
	if res.Metrics.EnvDeactivations != 1 {
		t.Fatalf("EnvDeactivations = %d, want 1", res.Metrics.EnvDeactivations)
	}
}

// degreeProbe records the node's degree at the start of each Send
// phase.
type degreeProbe struct {
	degrees []int
	rounds  int
}

func (m *degreeProbe) Init(*Context) {}

func (m *degreeProbe) Send(ctx *Context) { m.degrees = append(m.degrees, ctx.Degree()) }

func (m *degreeProbe) Receive(ctx *Context, inbox []Message) {
	if ctx.Round() >= m.rounds {
		ctx.Halt()
	}
}

func TestEnvironmentActivationVisibleNextRound(t *testing.T) {
	t.Parallel()
	machines := map[graph.ID]*degreeProbe{}
	factory := func(id graph.ID, env Env) Machine {
		m := &degreeProbe{rounds: 3}
		machines[id] = m
		return m
	}
	env := &scriptEnv{steps: map[int]func(*EnvEdits){
		1: func(e *EnvEdits) { e.Activate = append(e.Activate, graph.NewEdge(0, 2)) },
	}}
	res, err := Run(graph.Line(3), factory, WithEnvironment(env))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Node 0 starts with degree 1; the env edge {0,2} commits after
	// round 1 and is visible from round 2's Send phase on.
	want := []int{1, 2, 2}
	for i, w := range want {
		if machines[0].degrees[i] != w {
			t.Fatalf("node 0 degrees = %v, want %v", machines[0].degrees, want)
		}
	}
	if res.Metrics.EnvActivations != 1 {
		t.Fatalf("EnvActivations = %d, want 1", res.Metrics.EnvActivations)
	}
}

// chattyCounter broadcasts every round and counts receipts; inits
// counts how many times Init ran (distinguishes sleep from reboot).
type chattyCounter struct {
	got    int
	inits  int
	rounds int
}

func (m *chattyCounter) Init(*Context) { m.inits++ }

func (m *chattyCounter) Send(ctx *Context) { ctx.Broadcast(1) }

func (m *chattyCounter) Receive(ctx *Context, inbox []Message) {
	m.got += len(inbox)
	if ctx.Round() >= m.rounds {
		ctx.Halt()
	}
}

func runCrashRestart(t *testing.T, reboot bool) map[graph.ID]*chattyCounter {
	t.Helper()
	machines := map[graph.ID]*chattyCounter{}
	factory := func(id graph.ID, env Env) Machine {
		m := &chattyCounter{rounds: 8}
		machines[id] = m
		return m
	}
	env := &scriptEnv{steps: map[int]func(*EnvEdits){
		2: func(e *EnvEdits) { e.Crash = append(e.Crash, 2) },
		4: func(e *EnvEdits) {
			e.Restart = append(e.Restart, 2)
			e.Reboot = reboot
		},
	}}
	if _, err := Run(graph.Ring(3), factory, WithEnvironment(env)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return machines
}

func TestEnvironmentCrashSilencesNode(t *testing.T) {
	t.Parallel()
	machines := runCrashRestart(t, false)
	// Node 2 is down for rounds 3-4: it neither sends nor receives, and
	// messages addressed to it are dropped. Up rounds 1,2,5,6,7,8 give
	// it 2 messages each.
	if machines[2].got != 12 {
		t.Fatalf("crashed node received %d, want 12", machines[2].got)
	}
	// Node 0 hears node 1 all 8 rounds and node 2 only in its 6 up
	// rounds.
	if machines[0].got != 14 {
		t.Fatalf("node 0 received %d, want 14", machines[0].got)
	}
}

func TestEnvironmentSleepPreservesState(t *testing.T) {
	t.Parallel()
	machines := runCrashRestart(t, false)
	// Sleep restart: same machine resumes, Init ran once.
	if machines[2].inits != 1 {
		t.Fatalf("sleep restart: inits = %d, want 1", machines[2].inits)
	}
	if machines[2].got == 0 {
		t.Fatalf("sleep restart: pre-crash state lost")
	}
}

func TestEnvironmentRebootResetsState(t *testing.T) {
	t.Parallel()
	machines := runCrashRestart(t, true)
	// Reboot restart: the factory built a fresh machine for slot 2, so
	// the map entry was overwritten by the reboot-time instance, which
	// only saw rounds 5-8 (2 messages each) and one Init.
	if machines[2].inits != 1 || machines[2].got != 8 {
		t.Fatalf("reboot restart: inits = %d got = %d, want 1 and 8", machines[2].inits, machines[2].got)
	}
}

// panicMachine panics in Send at the trigger round.
type panicMachine struct {
	trigger int
	rounds  int
}

func (m *panicMachine) Init(*Context) {}

func (m *panicMachine) Send(ctx *Context) {
	if ctx.ID() == 1 && ctx.Round() == m.trigger {
		panic("invariant broken")
	}
}

func (m *panicMachine) Receive(ctx *Context, inbox []Message) {
	if ctx.Round() >= m.rounds {
		ctx.Halt()
	}
}

func TestEnvironmentContainsMachinePanic(t *testing.T) {
	t.Parallel()
	factory := func(id graph.ID, env Env) Machine {
		return &panicMachine{trigger: 3, rounds: 6}
	}
	env := &scriptEnv{steps: map[int]func(*EnvEdits){}}
	res, err := Run(graph.Ring(3), factory, WithEnvironment(env))
	if err == nil || !strings.Contains(err.Error(), "panicked under environment perturbation") {
		t.Fatalf("panic not converted to run error: %v", err)
	}
	if res == nil {
		t.Fatalf("result must remain usable on contained panic")
	}
	// Without an environment the strict path stays defer-free and the
	// panic propagates — the model contract, not a robustness run.
	defer func() {
		if recover() == nil {
			t.Fatalf("strict run should propagate machine panics")
		}
	}()
	Run(graph.Ring(3), factory) //nolint:errcheck // panics before returning
}
