// Package sim is the synchronous message-passing engine for actively
// dynamic networks (paper §2.1). Each round executes, in lock step:
// Send → Receive → Activate → Deactivate → Update. Nodes are state
// machines implementing Machine; the engine delivers messages over the
// current active edge set, arbitrates edge intents through
// temporal.History (which enforces the distance-2 rule and tracks the
// edge-complexity measures), and detects termination.
//
// Node steps may run on a bounded goroutine pool, but all intents are
// merged in ascending node order, so executions are deterministic.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"adnet/internal/graph"
	"adnet/internal/temporal"
)

// Status is a node's self-declared leader-election outcome (§2.2).
type Status int

// Node statuses. StatusNone is the pre-decision default.
const (
	StatusNone Status = iota
	StatusFollower
	StatusLeader
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusFollower:
		return "follower"
	case StatusLeader:
		return "leader"
	default:
		return "none"
	}
}

// Message is a point-to-point message delivered within the round it is
// sent. Payloads are algorithm-defined values; they are never copied or
// encoded, matching the model's unbounded local communication.
type Message struct {
	From    graph.ID
	To      graph.ID
	Payload any
}

// Machine is a node program. Implementations must confine themselves to
// their own state plus the Context: machines for different nodes are
// stepped concurrently.
type Machine interface {
	// Init runs once before round 1; the context exposes the node's
	// initial neighborhood.
	Init(ctx *Context)
	// Send runs at the start of each round; the machine queues
	// messages to current neighbors via ctx.Send / ctx.Broadcast.
	Send(ctx *Context)
	// Receive runs after delivery with this round's inbox sorted by
	// sender. Edge intents (ctx.Activate/ctx.Deactivate), status
	// changes and local state updates belong here.
	Receive(ctx *Context, inbox []Message)
}

// Factory builds the machine for one node. It receives the node's ID
// and the public model constants.
type Factory func(id graph.ID, env Env) Machine

// Env carries the model constants every node is granted by the paper:
// n (known to all nodes in §5; harmless elsewhere — machines that must
// not rely on it simply ignore it).
type Env struct {
	N int
}

// ErrRoundLimit is returned when the round limit is hit before every
// node halted.
var ErrRoundLimit = errors.New("sim: round limit exceeded before termination")

// ErrDisconnected is returned by the optional connectivity check.
var ErrDisconnected = errors.New("sim: active graph disconnected")

// ErrCanceled is returned when an execution is aborted between rounds
// via WithCancel.
var ErrCanceled = errors.New("sim: execution canceled")

// RoundEvent is passed to round hooks after each completed round.
type RoundEvent struct {
	Round int
	// Messages holds all messages delivered this round, sender-sorted
	// per recipient. The slice's backing array is reused by the engine
	// on the next round: hooks that retain messages must copy them.
	Messages []Message
	Stats    temporal.RoundStats
}

type config struct {
	maxRounds    int
	parallelism  int
	checkConnect bool
	hooks        []func(RoundEvent)
	trace        bool
	done         <-chan struct{}
}

// Option configures Run.
type Option func(*config)

// WithMaxRounds caps the execution length (default 64·n + 64 rounds).
func WithMaxRounds(r int) Option { return func(c *config) { c.maxRounds = r } }

// WithParallelism sets the worker-pool size for node stepping.
// 0 (default) picks sequential execution for small n and GOMAXPROCS
// workers otherwise.
func WithParallelism(p int) Option { return func(c *config) { c.parallelism = p } }

// WithConnectivityCheck asserts after every round that the active graph
// is connected, aborting with ErrDisconnected otherwise. The paper's
// algorithms never break connectivity; this is the failure-injection
// switch for tests.
func WithConnectivityCheck() Option { return func(c *config) { c.checkConnect = true } }

// WithRoundHook registers a callback invoked after every round with the
// delivered messages and round statistics (used by the lower-bound
// instrumentation in internal/bounds).
func WithRoundHook(fn func(RoundEvent)) Option {
	return func(c *config) { c.hooks = append(c.hooks, fn) }
}

// WithTrace records full per-round edge lists in the History.
func WithTrace() Option { return func(c *config) { c.trace = true } }

// WithCancel aborts the execution before the next round once done is
// closed, returning the partial Result alongside ErrCanceled. This is
// how callers impose deadlines or user-initiated cancellation on a
// running simulation (e.g. context.Context.Done from a server job).
func WithCancel(done <-chan struct{}) Option {
	return func(c *config) { c.done = done }
}

// Result is the outcome of an execution.
type Result struct {
	History  *temporal.History
	Metrics  temporal.Metrics
	Rounds   int
	Statuses map[graph.ID]Status
	Machines map[graph.ID]Machine
	// TotalMessages counts every delivered point-to-point message; the
	// paper does not bound communication (unlike the overlay-network
	// models of §1.4), but the measure makes the comparison concrete.
	TotalMessages int
	// MaxMessagesPerRound is the peak per-round message volume.
	MaxMessagesPerRound int
}

// Leader returns the unique node with StatusLeader, or (-1, false) if
// there is not exactly one.
func (r *Result) Leader() (graph.ID, bool) {
	leader := graph.ID(-1)
	count := 0
	for id, s := range r.Statuses {
		if s == StatusLeader {
			leader = id
			count++
		}
	}
	return leader, count == 1
}

// Run executes the distributed algorithm produced by factory on the
// initial graph gs until every node halts or the round limit is hit.
//
// On a runtime failure (model violation, round limit, connectivity
// check) Run returns the partial Result alongside the error so callers
// can post-mortem the history; on setup errors the Result is nil.
func Run(gs *graph.Graph, factory Factory, opts ...Option) (*Result, error) {
	n := gs.NumNodes()
	if n == 0 {
		return nil, errors.New("sim: empty initial graph")
	}
	if !gs.IsConnected() {
		return nil, errors.New("sim: initial graph must be connected")
	}
	cfg := config{maxRounds: 64*n + 64}
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.parallelism
	if workers <= 0 {
		if n >= 512 {
			workers = runtime.GOMAXPROCS(0)
		} else {
			workers = 1
		}
	}

	hist := temporal.NewHistory(gs)
	if cfg.trace {
		hist.EnableTrace()
	}
	ids := gs.Nodes()
	index := make(map[graph.ID]int, n)
	for i, id := range ids {
		index[id] = i
	}
	env := Env{N: n}
	ctxs := make([]*Context, n)
	machines := make([]Machine, n)
	for i, id := range ids {
		ctxs[i] = &Context{id: id, hist: hist, env: env}
		machines[i] = factory(id, env)
		if machines[i] == nil {
			return nil, fmt.Errorf("sim: factory returned nil machine for node %d", id)
		}
	}

	// Init phase.
	for i := range machines {
		ctxs[i].round = 0
		machines[i].Init(ctxs[i])
	}

	checkCtxErrs := func() error {
		for i := range ctxs {
			if ctxs[i].err != nil {
				return ctxs[i].err
			}
		}
		return nil
	}

	// Per-round buffers, allocated once and reused: the steady-state
	// round loop performs no allocation of its own (see bench_test.go's
	// BenchmarkRoundLoop).
	inboxes := make([][]Message, n)
	var delivered []Message
	var acts, deacts []graph.Edge
	totalMsgs, maxMsgs := 0, 0
	for round := 1; round <= cfg.maxRounds; round++ {
		if cfg.done != nil {
			select {
			case <-cfg.done:
				return finish(hist, ids, ctxs, machines, round-1, totalMsgs, maxMsgs),
					fmt.Errorf("%w after round %d", ErrCanceled, round-1)
			default:
			}
		}
		// --- Send ---
		runPhase(workers, n, func(i int) {
			ctx := ctxs[i]
			ctx.beginRound(round)
			if ctx.halted {
				return
			}
			machines[i].Send(ctx)
		})
		if err := checkCtxErrs(); err != nil {
			return finish(hist, ids, ctxs, machines, round, totalMsgs, maxMsgs), err
		}
		for i := range inboxes {
			inboxes[i] = inboxes[i][:0]
		}
		roundMsgs := 0
		for i := range ctxs {
			for _, m := range ctxs[i].outbox {
				if !hist.Active(m.From, m.To) {
					return finish(hist, ids, ctxs, machines, round, totalMsgs, maxMsgs),
						fmt.Errorf("sim: round %d: node %d sent to non-neighbor %d", round, m.From, m.To)
				}
				inboxes[index[m.To]] = append(inboxes[index[m.To]], m)
				roundMsgs++
			}
		}
		totalMsgs += roundMsgs
		if roundMsgs > maxMsgs {
			maxMsgs = roundMsgs
		}
		// Inboxes are already sender-sorted: senders are processed in
		// ascending node order and each sender's messages keep their
		// queueing order.
		if len(cfg.hooks) > 0 {
			delivered = delivered[:0]
			for i := range inboxes {
				delivered = append(delivered, inboxes[i]...)
			}
		}

		// --- Receive + intents ---
		runPhase(workers, n, func(i int) {
			ctx := ctxs[i]
			if ctx.halted {
				return
			}
			machines[i].Receive(ctx, inboxes[i])
		})
		if err := checkCtxErrs(); err != nil {
			return finish(hist, ids, ctxs, machines, round, totalMsgs, maxMsgs), err
		}

		// --- Activate / Deactivate ---
		acts, deacts = acts[:0], deacts[:0]
		for i := range ctxs {
			acts = append(acts, ctxs[i].acts...)
			deacts = append(deacts, ctxs[i].deacts...)
		}
		stats, err := hist.Apply(acts, deacts)
		if err != nil {
			return finish(hist, ids, ctxs, machines, round, totalMsgs, maxMsgs), err
		}
		if cfg.checkConnect && !hist.CurrentClone().IsConnected() {
			return finish(hist, ids, ctxs, machines, round, totalMsgs, maxMsgs),
				fmt.Errorf("%w after round %d", ErrDisconnected, round)
		}
		for _, hook := range cfg.hooks {
			hook(RoundEvent{Round: round, Messages: delivered, Stats: stats})
		}

		allHalted := true
		for i := range ctxs {
			if !ctxs[i].halted {
				allHalted = false
				break
			}
		}
		if allHalted {
			return finish(hist, ids, ctxs, machines, round, totalMsgs, maxMsgs), nil
		}
	}
	return finish(hist, ids, ctxs, machines, cfg.maxRounds, totalMsgs, maxMsgs),
		fmt.Errorf("%w (limit %d)", ErrRoundLimit, cfg.maxRounds)
}

func finish(hist *temporal.History, ids []graph.ID, ctxs []*Context, machines []Machine, rounds, totalMsgs, maxMsgs int) *Result {
	res := &Result{
		History:             hist,
		Metrics:             hist.Metrics(),
		Rounds:              rounds,
		Statuses:            make(map[graph.ID]Status, len(ids)),
		Machines:            make(map[graph.ID]Machine, len(ids)),
		TotalMessages:       totalMsgs,
		MaxMessagesPerRound: maxMsgs,
	}
	for i, id := range ids {
		res.Statuses[id] = ctxs[i].status
		res.Machines[id] = machines[i]
	}
	return res
}

// runPhase steps all n node slots through fn, sequentially or on a
// bounded worker pool; all workers are awaited before returning.
// Errors are recorded per-Context and surfaced by the caller, which
// keeps execution deterministic regardless of scheduling.
func runPhase(workers, n int, fn func(i int)) {
	if workers <= 1 || n < 2*workers {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
