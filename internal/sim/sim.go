// Package sim is the synchronous message-passing engine for actively
// dynamic networks (paper §2.1). Each round executes, in lock step:
// Send → Receive → Activate → Deactivate → Update. Nodes are state
// machines implementing Machine; the engine delivers messages over the
// current active edge set, arbitrates edge intents through
// temporal.History (which enforces the distance-2 rule and tracks the
// edge-complexity measures), and detects termination.
//
// Node steps may run on a persistent pinned worker pool (each worker
// owns a fixed slot range), but all intents are merged in ascending
// node order, so executions are deterministic regardless of
// parallelism. The reusable execution core lives in Engine
// (engine.go); Run is its single-use wrapper.
package sim

import (
	"errors"
	"time"

	"adnet/internal/graph"
	"adnet/internal/temporal"
)

// Status is a node's self-declared leader-election outcome (§2.2).
type Status int

// Node statuses. StatusNone is the pre-decision default.
const (
	StatusNone Status = iota
	StatusFollower
	StatusLeader
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusFollower:
		return "follower"
	case StatusLeader:
		return "leader"
	default:
		return "none"
	}
}

// Message is a point-to-point message delivered within the round it is
// sent. Payloads are algorithm-defined values; they are never copied or
// encoded, matching the model's unbounded local communication.
type Message struct {
	From    graph.ID
	To      graph.ID
	Payload any
}

// Machine is a node program. Implementations must confine themselves to
// their own state plus the Context: machines for different nodes are
// stepped concurrently.
type Machine interface {
	// Init runs once before round 1; the context exposes the node's
	// initial neighborhood.
	Init(ctx *Context)
	// Send runs at the start of each round; the machine queues
	// messages to current neighbors via ctx.Send / ctx.Broadcast.
	Send(ctx *Context)
	// Receive runs after delivery with this round's inbox sorted by
	// sender. Edge intents (ctx.Activate/ctx.Deactivate), status
	// changes and local state updates belong here.
	Receive(ctx *Context, inbox []Message)
}

// Factory builds the machine for one node. It receives the node's ID
// and the public model constants.
type Factory func(id graph.ID, env Env) Machine

// Recycler is an optional Machine extension for allocation-free reuse
// across runs. Recycle must restore the machine to exactly the state
// its factory would produce for (id, env), retaining internal capacity
// (maps, slices) instead of reallocating. Only machines whose
// factory-fresh state is a pure function of (id, env) — no captured
// per-run options — may implement it; the engine recycles machines
// only when the caller opts in via WithMachineRecycling.
type Recycler interface {
	Machine
	Recycle(id graph.ID, env Env)
}

// Env carries the model constants every node is granted by the paper:
// n (known to all nodes in §5; harmless elsewhere — machines that must
// not rely on it simply ignore it).
type Env struct {
	N int
}

// ErrRoundLimit is returned when the round limit is hit before every
// node halted.
var ErrRoundLimit = errors.New("sim: round limit exceeded before termination")

// ErrDisconnected is returned by the optional connectivity check.
var ErrDisconnected = errors.New("sim: active graph disconnected")

// ErrCanceled is returned when an execution is aborted between rounds
// via WithCancel.
var ErrCanceled = errors.New("sim: execution canceled")

// RoundEvent is passed to round hooks after each completed round.
type RoundEvent struct {
	Round int
	// Messages holds all messages delivered this round, sender-sorted
	// per recipient. The slice's backing array is reused by the engine
	// on the next round: hooks that retain messages must copy them.
	Messages []Message
	Stats    temporal.RoundStats
}

// StartEvent is passed to start hooks after the Init phase, before
// round 1: the static node count and the initial active edge set E(1)
// as flat slot pairs in ascending canonical order. The Edges slice is
// engine scratch — hooks that retain it must copy.
type StartEvent struct {
	N     int
	Edges []int32
}

// EnvEdits is one round boundary's batch of environment effects,
// filled by Environment.Perturb. Edge lists need not be canonical or
// deduplicated (temporal.History.ApplyEnvironment normalizes them);
// Crash/Restart name node slots. Restarts are processed before
// crashes, and Reboot selects the restart semantics for this boundary:
// true rebuilds each restarted machine from the factory and re-runs
// Init ("reboot"), false resumes it with its state intact ("sleep").
// The struct is engine scratch, reset before every Perturb call —
// implementations append and must not retain the slices.
type EnvEdits struct {
	Activate   []graph.Edge
	Deactivate []graph.Edge
	Crash      []int32
	Restart    []int32
	Reboot     bool
}

// Reset empties the edit lists for reuse, keeping capacity.
func (e *EnvEdits) Reset() {
	e.Activate = e.Activate[:0]
	e.Deactivate = e.Deactivate[:0]
	e.Crash = e.Crash[:0]
	e.Restart = e.Restart[:0]
	e.Reboot = false
}

// Environment is an adversarial or passively-dynamic underlay: a
// perturbation source the engine consults once per round, at the
// boundary after the algorithm's intents committed and before the
// next Send phase. Implementations must be deterministic functions of
// their own seeded state and the History they are shown — the engine
// calls Perturb from the round driver goroutine only, in round order,
// so executions stay byte-identical across worker counts.
// internal/dynamics provides the seeded schedule implementations.
type Environment interface {
	// Begin binds the environment to a run of n nodes; the engine
	// calls it from Reset, before any Perturb.
	Begin(n int)
	// Perturb appends this boundary's effects to edits. round is the
	// round that just completed (1-based). hist exposes the post-round
	// snapshot read-only; implementations must not call its mutating
	// methods.
	Perturb(round int, hist *temporal.History, edits *EnvEdits)
}

type config struct {
	maxRounds    int
	parallelism  int
	checkConnect bool
	hooks        []func(RoundEvent)
	startHooks   []func(StartEvent)
	deltaHooks   []func(temporal.RoundDelta)
	trace        bool
	done         <-chan struct{}
	observer     func(RunSummary)
	recycle      string
	env          Environment
}

// Option configures Run.
type Option func(*config)

// WithMaxRounds caps the execution length (default 64·n + 64 rounds).
func WithMaxRounds(r int) Option { return func(c *config) { c.maxRounds = r } }

// WithParallelism sets the worker-pool size for node stepping.
// 0 (default) picks sequential execution for small n and GOMAXPROCS
// workers otherwise.
func WithParallelism(p int) Option { return func(c *config) { c.parallelism = p } }

// WithConnectivityCheck asserts after every round that the active graph
// is connected, aborting with ErrDisconnected otherwise. The paper's
// algorithms never break connectivity; this is the failure-injection
// switch for tests.
func WithConnectivityCheck() Option { return func(c *config) { c.checkConnect = true } }

// WithRoundHook registers a callback invoked after every round with the
// delivered messages and round statistics (used by the lower-bound
// instrumentation in internal/bounds).
func WithRoundHook(fn func(RoundEvent)) Option {
	return func(c *config) { c.hooks = append(c.hooks, fn) }
}

// WithStartHook registers a callback invoked once per run, after Init
// and before round 1, with the node count and the initial edge set as
// slot pairs. Together with WithDeltaHook it gives stream producers
// everything a remote client needs to reconstruct D(i) live.
func WithStartHook(fn func(StartEvent)) Option {
	return func(c *config) { c.startHooks = append(c.startHooks, fn) }
}

// WithDeltaHook registers a callback invoked after every round with
// that round's committed activations/deactivations as slot pairs
// (temporal.RoundDelta). The delta's slices are History scratch reused
// on the next round: hooks that retain them must copy. The conversion
// runs only when at least one delta hook is registered, so the plain
// round loop stays untouched.
func WithDeltaHook(fn func(temporal.RoundDelta)) Option {
	return func(c *config) { c.deltaHooks = append(c.deltaHooks, fn) }
}

// WithEnvironment attaches an adversarial/passively-dynamic underlay
// to the run: after every round's intents commit, env.Perturb may flip
// edges (injected into the History as a distinct, separately-tagged
// delta source) and crash or restart nodes. A crashed slot's machine
// is not stepped, its outgoing messages are suppressed and messages
// addressed to it are dropped, until its restart boundary.
//
// Attaching an environment also relaxes two model rules that assume
// the algorithm alone edits edges: a message sent over an edge the
// environment has since cut is lost (not a non-neighbor-send error),
// and an activation whose distance-2 precondition the environment
// invalidated is void (not a Violation) — the algorithm did nothing
// wrong in either case. With no environment attached the strict
// semantics and the zero-allocation round loop are unchanged.
func WithEnvironment(env Environment) Option {
	return func(c *config) { c.env = env }
}

// WithTrace records full per-round edge lists in the History.
func WithTrace() Option { return func(c *config) { c.trace = true } }

// WithCancel aborts the execution before the next round once done is
// closed, returning the partial Result alongside ErrCanceled. This is
// how callers impose deadlines or user-initiated cancellation on a
// running simulation (e.g. context.Context.Done from a server job).
func WithCancel(done <-chan struct{}) Option {
	return func(c *config) { c.done = done }
}

// RunSummary is the once-per-run digest handed to a run observer when
// an execution finishes (successfully or not).
type RunSummary struct {
	// Rounds is the number of completed rounds.
	Rounds int
	// Duration is the wall-clock time of the round loop (Run entry to
	// finish), excluding Reset.
	Duration time.Duration
	// TotalMessages counts every delivered message across the run.
	TotalMessages int
	// Workers is the resolved intra-round worker count for this run
	// (1 when the run executed sequentially).
	Workers int
	// BusyTime is the cumulative wall-clock time workers spent
	// executing node steps and intent validation; for sequential runs
	// it equals Duration. BusyTime / (Workers × Duration) is the run's
	// parallel efficiency: 1.0 means no worker ever idled.
	BusyTime time.Duration
}

// ParallelEfficiency returns BusyTime/(Workers×Duration) clamped to
// [0, 1], or 0 when the run was too short to measure.
func (s RunSummary) ParallelEfficiency() float64 {
	if s.Workers <= 0 || s.Duration <= 0 {
		return 0
	}
	eff := float64(s.BusyTime) / (float64(s.Workers) * float64(s.Duration))
	if eff > 1 {
		eff = 1
	}
	if eff < 0 {
		eff = 0
	}
	return eff
}

// WithRunObserver registers fn to be called exactly once when the run
// finishes, with the run's round count, wall-clock duration and
// message total. This is the engine's metrics hook: folding the
// digest in after the loop keeps the per-round hot path free of
// instrumentation (and of allocations — the bench -compare gate
// enforces it). fn runs on the engine's goroutine; keep it cheap.
func WithRunObserver(fn func(RunSummary)) Option {
	return func(c *config) { c.observer = fn }
}

// WithMachineRecycling lets the engine restore machines in place
// (via the Recycler interface) instead of rebuilding them, when the
// previous Reset used the same non-empty key and every machine from
// that run implements Recycler. The key names the algorithm; callers
// must change it whenever they change the factory. This is what takes
// repeated same-algorithm runs (sweeps, benchmarks) to zero
// steady-state allocations.
func WithMachineRecycling(key string) Option {
	return func(c *config) { c.recycle = key }
}

// Result is the outcome of an execution.
type Result struct {
	History  *temporal.History
	Metrics  temporal.Metrics
	Rounds   int
	Statuses map[graph.ID]Status
	Machines map[graph.ID]Machine
	// TotalMessages counts every delivered point-to-point message; the
	// paper does not bound communication (unlike the overlay-network
	// models of §1.4), but the measure makes the comparison concrete.
	TotalMessages int
	// MaxMessagesPerRound is the peak per-round message volume.
	MaxMessagesPerRound int
}

// Leader returns the unique node with StatusLeader, or (-1, false) if
// there is not exactly one.
func (r *Result) Leader() (graph.ID, bool) {
	leader := graph.ID(-1)
	count := 0
	for id, s := range r.Statuses {
		if s == StatusLeader {
			leader = id
			count++
		}
	}
	return leader, count == 1
}

// Run executes the distributed algorithm produced by factory on the
// initial graph gs until every node halts or the round limit is hit.
// It is a thin wrapper over a single-use Engine; callers executing
// many runs should hold an Engine and Reset it between runs to reuse
// its buffers and worker pool.
//
// On a runtime failure (model violation, round limit, connectivity
// check) Run returns the partial Result alongside the error so callers
// can post-mortem the history; on setup errors the Result is nil.
func Run(gs *graph.Graph, factory Factory, opts ...Option) (*Result, error) {
	e := NewEngine()
	defer e.Close()
	if err := e.Reset(gs, factory, opts...); err != nil {
		return nil, err
	}
	return e.Run()
}
