package sim

import (
	"reflect"
	"runtime"
	"testing"

	"adnet/internal/graph"
)

// runEngine drives one Reset+Run cycle on e and fails the test on any
// error.
func runEngine(t *testing.T, e *Engine, gs *graph.Graph, f Factory, opts ...Option) *Result {
	t.Helper()
	if err := e.Reset(gs, f, opts...); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// summary extracts the Result fields that remain comparable after the
// engine is reset (everything except the shared History pointer and
// machine identities).
type resultSummary struct {
	Rounds              int
	Metrics             interface{}
	Statuses            map[graph.ID]Status
	TotalMessages       int
	MaxMessagesPerRound int
}

func summarize(r *Result) resultSummary {
	return resultSummary{
		Rounds:              r.Rounds,
		Metrics:             r.Metrics,
		Statuses:            r.Statuses,
		TotalMessages:       r.TotalMessages,
		MaxMessagesPerRound: r.MaxMessagesPerRound,
	}
}

// TestEngineReuseMatchesFreshRuns reuses one engine across runs of
// different algorithms, sizes and graph shapes — growing and shrinking
// — and checks each run against a fresh sim.Run. Any state leaking
// between runs (contexts, inboxes, history accounting, intent
// buffers) would diverge.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	defer e.Close()

	steps := []struct {
		name string
		gs   func() *graph.Graph
		f    Factory
	}{
		{"flood-line-20", func() *graph.Graph { return graph.Line(20) }, newFloodFactory(19)},
		{"clique-line-17", func() *graph.Graph { return graph.Line(17) },
			func(graph.ID, Env) Machine { return cliqueMachine{} }},
		{"flood-star-50", func() *graph.Graph { return graph.Star(50) }, newFloodFactory(2)},
		{"flood-line-5", func() *graph.Graph { return graph.Line(5) }, newFloodFactory(4)},
		{"clique-ring-12", func() *graph.Graph { return graph.Ring(12) },
			func(graph.ID, Env) Machine { return cliqueMachine{} }},
	}
	for _, st := range steps {
		reused := runEngine(t, e, st.gs(), st.f)
		fresh, err := Run(st.gs(), st.f)
		if err != nil {
			t.Fatalf("%s fresh: %v", st.name, err)
		}
		if !reflect.DeepEqual(summarize(reused), summarize(fresh)) {
			t.Errorf("%s: reused engine diverged\nreused %+v\nfresh  %+v",
				st.name, summarize(reused), summarize(fresh))
		}
	}
}

// TestEngineBackToBackIdenticalRuns checks that repeating the same
// spec on one engine is bit-for-bit repeatable (no hidden state
// accumulates across Reset).
func TestEngineBackToBackIdenticalRuns(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	defer e.Close()
	f := func(graph.ID, Env) Machine { return cliqueMachine{} }
	first := summarize(runEngine(t, e, graph.Ring(24), f))
	for i := 0; i < 3; i++ {
		again := summarize(runEngine(t, e, graph.Ring(24), f))
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("repeat %d diverged:\nfirst %+v\nagain %+v", i, first, again)
		}
	}
}

// TestEngineRunRequiresReset pins the one-Run-per-Reset contract.
func TestEngineRunRequiresReset(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	defer e.Close()
	if _, err := e.Run(); err == nil {
		t.Fatal("Run before Reset succeeded")
	}
	runEngine(t, e, graph.Line(4), newFloodFactory(3))
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run without Reset succeeded")
	}
}

// TestEnginePoolDeterminism runs the same workload across worker
// counts on reused engines and requires identical results, including
// the recorded trace.
func TestEnginePoolDeterminism(t *testing.T) {
	t.Parallel()
	g := graph.Ring(128)
	f := func(graph.ID, Env) Machine { return cliqueMachine{} }
	var base *Result
	for _, workers := range []int{1, 2, 3, runtime.GOMAXPROCS(0)} {
		e := NewEngine()
		res := runEngine(t, e, g, f, WithParallelism(workers), WithTrace())
		// A second run on the same engine must also agree.
		res2 := runEngine(t, e, g, f, WithParallelism(workers), WithTrace())
		if base == nil {
			base = res2
			e.Close() // base retains the engine's history; close the pool only
			continue
		}
		for _, r := range []*Result{res, res2} {
			if !reflect.DeepEqual(summarize(base), summarize(r)) {
				t.Fatalf("workers=%d diverged: %+v vs %+v", workers, summarize(base), summarize(r))
			}
			for i := 1; i <= base.Rounds; i++ {
				wa, wd, _ := base.History.TraceRound(i)
				ga, gd, ok := r.History.TraceRound(i)
				if !ok || !reflect.DeepEqual(wa, ga) || !reflect.DeepEqual(wd, gd) {
					t.Fatalf("workers=%d: trace of round %d diverged", workers, i)
				}
			}
		}
		e.Close()
	}
}

// TestEngineResetScrubsShrunkState is a white-box check of the
// no-leak invariant: after shrinking to a smaller run, no machine,
// inbox message or outbox payload from the larger previous run stays
// reachable through reused backing arrays.
func TestEngineResetScrubsShrunkState(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	defer e.Close()
	runEngine(t, e, graph.Star(64), newFloodFactory(2))
	runEngine(t, e, graph.Line(4), newFloodFactory(3))

	for _, m := range e.machines[4:cap(e.machines)] {
		if m != nil {
			t.Fatal("machine beyond the current size survived Reset")
		}
	}
	for _, c := range e.ctxs[4:cap(e.ctxs)] {
		if c == nil {
			continue
		}
		for _, om := range c.outbox[:cap(c.outbox)] {
			if om.m.Payload != nil {
				t.Fatal("outbox payload beyond the current size survived Reset")
			}
		}
	}
	for _, ib := range e.inboxes[4:cap(e.inboxes)] {
		for _, m := range ib[:cap(ib)] {
			if m.Payload != nil {
				t.Fatal("inbox payload beyond the current size survived Reset")
			}
		}
	}
}

// TestEngineReuseAllocs verifies the headline win: running through a
// reused engine allocates far less than back-to-back sim.Run. The
// strict ≥5× figure is demonstrated by BenchmarkEngineReuse; here a
// conservative 2× floor keeps the property pinned under -race and
// noisy CI.
func TestEngineReuseAllocs(t *testing.T) {
	g := graph.Ring(256)
	f := newFloodFactory(8)

	e := NewEngine()
	defer e.Close()
	if err := e.Reset(g, f, WithParallelism(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	reused := testing.AllocsPerRun(10, func() {
		if err := e.Reset(g, f, WithParallelism(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	fresh := testing.AllocsPerRun(10, func() {
		if _, err := Run(g, f, WithParallelism(1)); err != nil {
			t.Fatal(err)
		}
	})
	if reused*2 > fresh {
		t.Errorf("engine reuse allocs = %.0f/run, fresh run = %.0f/run; want ≥2× fewer", reused, fresh)
	}
	t.Logf("allocs/run: reused engine %.0f, fresh sim.Run %.0f (%.1f×)", reused, fresh, fresh/reused)
}
