package sim

import (
	"errors"
	"testing"

	"adnet/internal/graph"
)

// The round limit aborts the run, but the partial Result must still
// report the messages delivered up to that point (the flood machine
// broadcasts every round, so three rounds on a 5-line deliver 3·8).
func TestErrorResultKeepsMessageCounters(t *testing.T) {
	t.Parallel()
	res, err := Run(graph.Line(5), newFloodFactory(1000), WithMaxRounds(3))
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
	if res == nil {
		t.Fatal("round-limit failure must return the partial result")
	}
	// A line of 5 has 4 edges; a broadcast round delivers 2 messages
	// per edge.
	if want := 3 * 8; res.TotalMessages != want {
		t.Errorf("TotalMessages = %d, want %d", res.TotalMessages, want)
	}
	if want := 8; res.MaxMessagesPerRound != want {
		t.Errorf("MaxMessagesPerRound = %d, want %d", res.MaxMessagesPerRound, want)
	}
}

func TestModelViolationKeepsMessageCounters(t *testing.T) {
	t.Parallel()
	// badSender broadcasts nothing; pair flood traffic with a
	// violation on round 3 via a wrapper machine.
	factory := func(id graph.ID, env Env) Machine {
		return &violateLater{flood: &floodMachine{best: id, rounds: 1000}}
	}
	res, err := Run(graph.Line(4), factory)
	if err == nil {
		t.Fatal("want model-violation error")
	}
	if res == nil || res.TotalMessages == 0 {
		t.Fatalf("partial result must keep message counters, got %+v", res)
	}
}

type violateLater struct {
	flood *floodMachine
}

func (m *violateLater) Init(ctx *Context) { m.flood.Init(ctx) }
func (m *violateLater) Send(ctx *Context) { m.flood.Send(ctx) }
func (m *violateLater) Receive(ctx *Context, inbox []Message) {
	if ctx.Round() >= 3 && ctx.ID() == 0 {
		// Distance-2 violation: node 0 on a line cannot reach node 3.
		ctx.Activate(3)
		return
	}
	m.flood.Receive(ctx, inbox)
}

func TestWithCancelAbortsBetweenRounds(t *testing.T) {
	t.Parallel()
	done := make(chan struct{})
	stopAfter := 4
	var rounds int
	res, err := Run(graph.Line(6), newFloodFactory(1000),
		WithRoundHook(func(ev RoundEvent) {
			rounds = ev.Round
			if ev.Round == stopAfter {
				close(done)
			}
		}),
		WithCancel(done))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must return the partial result")
	}
	if rounds != stopAfter {
		t.Errorf("hook saw %d rounds, want %d", rounds, stopAfter)
	}
	if res.Rounds != stopAfter {
		t.Errorf("Rounds = %d, want %d", res.Rounds, stopAfter)
	}
	if res.TotalMessages == 0 {
		t.Error("canceled run must keep message counters")
	}
}

func TestWithCancelNeverClosedRunsToCompletion(t *testing.T) {
	t.Parallel()
	done := make(chan struct{})
	res, err := Run(graph.Line(5), newFloodFactory(9), WithCancel(done))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, ok := res.Leader(); !ok {
		t.Error("expected a unique leader")
	}
}
