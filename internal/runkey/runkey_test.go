package runkey

import "testing"

func TestKeyCanonicalAndInjectiveOnFields(t *testing.T) {
	t.Parallel()
	base := Key("graph-to-star", "line", 64, 7, 0)
	if base != "graph-to-star|line|n=64|seed=7|maxr=0" {
		t.Fatalf("key format changed: %q", base)
	}
	variants := []string{
		Key("graph-to-wreath", "line", 64, 7, 0),
		Key("graph-to-star", "ring", 64, 7, 0),
		Key("graph-to-star", "line", 65, 7, 0),
		Key("graph-to-star", "line", 64, 8, 0),
		Key("graph-to-star", "line", 64, 7, 1),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestShardKeyStableAndInjectiveOnFields(t *testing.T) {
	t.Parallel()
	sweep := SweepKey([]string{"flood"}, []string{"line"}, []int{16}, []int64{1, 2}, 0)
	base := ShardKey(sweep, 0, 0, 2)
	if base != sweep+"|shard=0|off=0|cells=2" {
		t.Fatalf("shard key format changed: %q", base)
	}
	variants := []string{
		ShardKey(sweep, 1, 0, 2),
		ShardKey(sweep, 0, 2, 2),
		ShardKey(sweep, 0, 0, 4),
		ShardKey(SweepKey([]string{"flood"}, []string{"ring"}, []int{16}, []int64{1, 2}, 0), 0, 0, 2),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestShortHashStable(t *testing.T) {
	t.Parallel()
	h := ShortHash("x")
	if len(h) != 8 {
		t.Fatalf("len = %d, want 8", len(h))
	}
	if ShortHash("x") != h {
		t.Fatal("hash not deterministic")
	}
	if ShortHash("y") == h {
		t.Fatal("distinct keys share a short hash (astronomically unlikely)")
	}
}

func TestWithDynamics(t *testing.T) {
	t.Parallel()
	base := Key("flood", "line", 16, 1, 0)
	// No dynamics: the key is byte-identical to the pre-dynamics
	// format, so existing caches and journals stay valid.
	if got := WithDynamics(base, ""); got != base {
		t.Fatalf("WithDynamics(base, \"\") = %q, want %q", got, base)
	}
	got := WithDynamics(base, "edge-churn,k=1,preserve=false,seed=0")
	want := base + "|dyn=edge-churn,k=1,preserve=false,seed=0"
	if got != want {
		t.Fatalf("WithDynamics = %q, want %q", got, want)
	}
	if WithDynamics(base, "crash,k=1,down=3,mode=sleep,seed=0") == got {
		t.Fatalf("different dynamics keys collide")
	}
}
