// Package runkey defines the single canonical cache/identity key for
// a deterministic simulation run. Every layer that names a run — the
// service's RunSpec, the sweep grid's cells, job IDs — renders its key
// through this package, so a sweep cell and an individually submitted
// run with the same parameters hit the same result-cache entry
// instead of re-simulating.
package runkey

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Key renders the canonical key of one run: every field that
// influences the simulation outcome, and nothing else. The format is
// stable — cached results and job IDs depend on it.
func Key(algorithm, workload string, n int, seed int64, maxRounds int) string {
	return fmt.Sprintf("%s|%s|n=%d|seed=%d|maxr=%d", algorithm, workload, n, seed, maxRounds)
}

// ShortHash is an 8-hex-digit digest of a key, used in human-visible
// identifiers (job IDs) where the full key is too long.
func ShortHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:4])
}

// Hash is a 16-hex-digit digest of a key, used where a key must name
// a filesystem object (journal files) — long enough that grids sharing
// a data dir never collide in practice, short enough for directory
// listings to stay readable.
func Hash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// ShardKey renders the canonical key of one planned shard of a sweep
// grid: the parent sweep key plus the shard's index and cell range in
// canonical cell order. The fleet coordinator names shards by hashes
// of this key, so a shard keeps its identity across re-dispatches to
// different workers. Like Key, the format is stable.
func ShardKey(sweepKey string, index, offset, cells int) string {
	return fmt.Sprintf("%s|shard=%d|off=%d|cells=%d", sweepKey, index, offset, cells)
}

// SweepKey renders the canonical key of a sweep grid: the dimension
// lists in submission order plus the shared round-limit override. Two
// sweeps with equal keys enumerate identical cells, cell for cell.
// Like Key, the format is stable — sweep job IDs hash it.
func SweepKey(algorithms, workloads []string, sizes []int, seeds []int64, maxRounds int) string {
	var b strings.Builder
	b.WriteString("sweep|a=")
	b.WriteString(strings.Join(algorithms, ","))
	b.WriteString("|w=")
	b.WriteString(strings.Join(workloads, ","))
	b.WriteString("|n=")
	for i, n := range sizes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteString("|seed=")
	for i, s := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	fmt.Fprintf(&b, "|maxr=%d", maxRounds)
	return b.String()
}

// WithDynamics extends a run or sweep key with a dynamics-environment
// key (dynamics.Spec.Key). An empty dyn returns the key unchanged, so
// every pre-dynamics key — cached results, journal names, job IDs —
// stays byte-identical.
func WithDynamics(key, dyn string) string {
	if dyn == "" {
		return key
	}
	return key + "|dyn=" + dyn
}
