package temporal

import (
	"math/rand"
	"reflect"
	"testing"

	"adnet/internal/graph"
)

// edgesSorted reports whether es is in ascending canonical order.
func edgesSorted(es []graph.Edge) bool {
	for i := 1; i < len(es); i++ {
		p, q := es[i-1], es[i]
		if p.A > q.A || (p.A == q.A && p.B >= q.B) {
			return false
		}
	}
	return true
}

// TestTraceRoundDeterministicOrder is the regression test for the
// nondeterministic trace order bug: Apply used to range over intent
// maps, so TraceRound returned edges in a random order across runs.
// The trace must now come back in ascending canonical edge order, and
// be identical no matter how callers permute their intent slices.
func TestTraceRoundDeterministicOrder(t *testing.T) {
	t.Parallel()
	n := 64
	baseActs := func() []graph.Edge {
		var acts []graph.Edge
		// Chords {u, u+2} are legal on a ring via the common neighbor u+1.
		for u := 0; u < n; u++ {
			acts = append(acts, graph.NewEdge(graph.ID(u), graph.ID((u+2)%n)))
		}
		return acts
	}

	var want []graph.Edge
	for trial := 0; trial < 10; trial++ {
		h := NewHistory(graph.Ring(n))
		h.EnableTrace()
		acts := baseActs()
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(acts), func(i, j int) { acts[i], acts[j] = acts[j], acts[i] })
		if _, err := h.Apply(acts, nil); err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		// Deactivate a shuffled half of them in round 2.
		deacts := acts[:len(acts)/2]
		if _, err := h.Apply(nil, deacts); err != nil {
			t.Fatalf("trial %d: Apply deacts: %v", trial, err)
		}

		act1, deact1, ok := h.TraceRound(1)
		if !ok {
			t.Fatalf("trial %d: no trace for round 1", trial)
		}
		if len(deact1) != 0 {
			t.Fatalf("trial %d: unexpected deactivations in round 1: %v", trial, deact1)
		}
		if !edgesSorted(act1) {
			t.Fatalf("trial %d: round-1 trace not in canonical order: %v", trial, act1)
		}
		_, deact2, ok := h.TraceRound(2)
		if !ok {
			t.Fatalf("trial %d: no trace for round 2", trial)
		}
		if !edgesSorted(deact2) {
			t.Fatalf("trial %d: round-2 deactivation trace not sorted: %v", trial, deact2)
		}
		if trial == 0 {
			want = act1
			continue
		}
		if !reflect.DeepEqual(act1, want) {
			t.Fatalf("trial %d: trace differs across permutations:\n got %v\nwant %v", trial, act1, want)
		}
	}
}

// TestApplyScratchReuseIsolation checks that the reusable scratch
// buffers never leak state between rounds: a round's stats and trace
// must be unaffected by what previous rounds requested.
func TestApplyScratchReuseIsolation(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(8))
	h.EnableTrace()
	// Round 1: activate {0,2} and {1,3}, with duplicates.
	acts := []graph.Edge{graph.NewEdge(0, 2), graph.NewEdge(1, 3), graph.NewEdge(2, 0)}
	st, err := h.Apply(acts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Activated != 2 {
		t.Fatalf("round 1 activated = %d, want 2", st.Activated)
	}
	// Round 2: no intents at all — nothing from round 1 may bleed in.
	st, err = h.Apply(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Activated != 0 || st.Deactivated != 0 {
		t.Fatalf("round 2 stats = %+v, want no activity", st)
	}
	act, deact, ok := h.TraceRound(2)
	if !ok || len(act) != 0 || len(deact) != 0 {
		t.Fatalf("round 2 trace = (%v, %v, %v), want empty", act, deact, ok)
	}
	// Round 3: disagreement — {0,2} requested both ways stays active.
	st, err = h.Apply([]graph.Edge{graph.NewEdge(0, 2)}, []graph.Edge{graph.NewEdge(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Activated != 0 || st.Deactivated != 0 {
		t.Fatalf("disagreement round stats = %+v, want no activity", st)
	}
	if !h.Active(0, 2) {
		t.Fatal("edge {0,2} should have survived the disagreement round")
	}
}
