package temporal

import (
	"math/rand"
	"reflect"
	"testing"

	"adnet/internal/graph"
)

// churn applies r rounds of randomized legal activate/deactivate
// intents and returns the final Metrics.
func churn(t *testing.T, h *History, rng *rand.Rand, rounds int) Metrics {
	t.Helper()
	for i := 0; i < rounds; i++ {
		var acts, deacts []graph.Edge
		for _, u := range h.CurrentClone().Nodes() {
			for _, w := range h.PotentialNeighbors(u) {
				if rng.Intn(4) == 0 {
					acts = append(acts, graph.NewEdge(u, w))
				}
			}
			for _, v := range h.NeighborsOf(u) {
				if !h.IsOriginal(u, v) && rng.Intn(3) == 0 {
					deacts = append(deacts, graph.NewEdge(u, v))
				}
			}
		}
		if _, err := h.Apply(acts, deacts); err != nil {
			t.Fatalf("round %d: %v", i+1, err)
		}
	}
	return h.Metrics()
}

func TestHistoryResetMatchesFresh(t *testing.T) {
	t.Parallel()
	g1 := graph.Ring(16)
	g2 := graph.Line(9)

	// One History reused across three executions...
	reused := NewHistory(g1)
	churn(t, reused, rand.New(rand.NewSource(1)), 6)
	reused.Reset(g2)
	mB := churn(t, reused, rand.New(rand.NewSource(2)), 5)
	reused.Reset(g1)
	mC := churn(t, reused, rand.New(rand.NewSource(3)), 6)

	// ...must match fresh Histories run with the same intents.
	wantB := churn(t, NewHistory(g2), rand.New(rand.NewSource(2)), 5)
	wantC := churn(t, NewHistory(g1), rand.New(rand.NewSource(3)), 6)
	if mB != wantB {
		t.Errorf("after reset: %+v, fresh: %+v", mB, wantB)
	}
	if mC != wantC {
		t.Errorf("after second reset: %+v, fresh: %+v", mC, wantC)
	}
}

func TestResetClearsTraceAndPerRound(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Ring(5))
	h.EnableTrace()
	if _, err := h.Apply([]graph.Edge{graph.NewEdge(0, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := h.TraceRound(1); !ok {
		t.Fatal("trace not recorded")
	}
	h.Reset(graph.Ring(5))
	if _, _, ok := h.TraceRound(1); ok {
		t.Fatal("trace survived Reset")
	}
	if len(h.PerRound()) != 0 {
		t.Fatal("per-round log survived Reset")
	}
	if h.Round() != 1 {
		t.Fatalf("Round() = %d after Reset", h.Round())
	}
	if m := h.Metrics(); m.TotalActivations != 0 || m.MaxActivatedDegree != 0 {
		t.Fatalf("metrics survived Reset: %+v", m)
	}
}

func TestSlotQueries(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	gs := graph.PermuteIDs(graph.RandomConnected(30, 20, rng), rng)
	h := NewHistory(gs)
	ids := h.AppendNodeIDs(nil)
	if !reflect.DeepEqual(ids, gs.Nodes()) {
		t.Fatalf("AppendNodeIDs = %v, want ascending %v", ids, gs.Nodes())
	}
	for i, u := range ids {
		s, ok := h.SlotOf(u)
		if !ok || s != i {
			t.Fatalf("SlotOf(%d) = %d,%v; want %d", u, s, ok, i)
		}
		if h.IDAtSlot(i) != u {
			t.Fatalf("IDAtSlot(%d) = %d, want %d", i, h.IDAtSlot(i), u)
		}
	}
	// ActiveSlots agrees with Active for every pair.
	for i, u := range ids {
		for j, v := range ids {
			if i == j {
				continue
			}
			if h.ActiveSlots(i, j) != h.Active(u, v) {
				t.Fatalf("ActiveSlots(%d,%d) disagrees with Active(%d,%d)", i, j, u, v)
			}
		}
	}
	// InitialNeighborsView matches InitialNeighborsOf.
	for _, u := range ids {
		if !reflect.DeepEqual(append([]graph.ID{}, h.InitialNeighborsView(u)...), h.InitialNeighborsOf(u)) {
			t.Fatalf("InitialNeighborsView(%d) = %v", u, h.InitialNeighborsView(u))
		}
	}
}

// TestActivatedDegreeDenseMatchesMap replays randomized churn and
// cross-checks the dense slot-indexed activated-degree accounting
// against an independent map model.
func TestActivatedDegreeDenseMatchesMap(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	h := NewHistory(graph.Ring(24))
	model := map[graph.ID]int{}
	maxDeg := 0
	for round := 0; round < 12; round++ {
		var acts, deacts []graph.Edge
		for _, u := range h.CurrentClone().Nodes() {
			for _, w := range h.PotentialNeighbors(u) {
				if rng.Intn(3) == 0 {
					acts = append(acts, graph.NewEdge(u, w))
				}
			}
			for _, v := range h.NeighborsOf(u) {
				if !h.IsOriginal(u, v) && rng.Intn(3) == 0 {
					deacts = append(deacts, graph.NewEdge(u, v))
				}
			}
		}
		before := h.CurrentClone()
		if _, err := h.Apply(acts, deacts); err != nil {
			t.Fatal(err)
		}
		after := h.CurrentClone()
		// Update the model from the snapshot delta. Activations apply
		// before deactivations within a round, so the degree peak is
		// sampled between the two phases — same as the ledger.
		for _, e := range after.Edges() {
			if !before.HasEdge(e.A, e.B) && !h.IsOriginal(e.A, e.B) {
				model[e.A]++
				model[e.B]++
			}
		}
		for _, d := range model {
			if d > maxDeg {
				maxDeg = d
			}
		}
		for _, e := range before.Edges() {
			if !after.HasEdge(e.A, e.B) && !h.IsOriginal(e.A, e.B) {
				model[e.A]--
				model[e.B]--
			}
		}
	}
	if got := h.Metrics().MaxActivatedDegree; got != maxDeg {
		t.Fatalf("MaxActivatedDegree = %d, model says %d", got, maxDeg)
	}
}
