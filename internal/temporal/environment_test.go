package temporal

import (
	"strings"
	"testing"

	"adnet/internal/graph"
)

func TestApplyEnvironmentBasic(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4)) // 0-1-2-3
	if _, err := h.ApplyEnvironment(nil, nil); err == nil {
		t.Fatalf("ApplyEnvironment before any round accepted")
	}
	if _, err := h.Apply(nil, nil); err != nil {
		t.Fatalf("empty round: %v", err)
	}
	// The environment is not bound by distance-2: {0,3} is at distance
	// 3 and must still commit.
	st, err := h.ApplyEnvironment([]graph.Edge{edge(3, 0)}, []graph.Edge{edge(1, 2)})
	if err != nil {
		t.Fatalf("ApplyEnvironment: %v", err)
	}
	if !h.Active(0, 3) || h.Active(1, 2) {
		t.Fatalf("env edits not committed: active(0,3)=%v active(1,2)=%v", h.Active(0, 3), h.Active(1, 2))
	}
	if st.ActiveEdges != 3 {
		t.Fatalf("patched ActiveEdges = %d, want 3", st.ActiveEdges)
	}
	m := h.Metrics()
	if m.EnvActivations != 1 || m.EnvDeactivations != 1 {
		t.Fatalf("env counters = %d/%d, want 1/1", m.EnvActivations, m.EnvDeactivations)
	}
	// The algorithm's own measures are untouched.
	if m.TotalActivations != 0 || m.TotalDeactivations != 0 {
		t.Fatalf("algorithm counters polluted: %d/%d", m.TotalActivations, m.TotalDeactivations)
	}
}

func TestApplyEnvironmentFilters(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3)) // 0-1-2
	if _, err := h.Apply(nil, nil); err != nil {
		t.Fatalf("empty round: %v", err)
	}
	// Activating an active edge and deactivating an inactive one are
	// silent no-ops; duplicates collapse.
	st, err := h.ApplyEnvironment(
		[]graph.Edge{edge(0, 1), edge(0, 2), edge(2, 0)},
		[]graph.Edge{edge(0, 2)})
	if err != nil {
		t.Fatalf("ApplyEnvironment: %v", err)
	}
	if st.ActiveEdges != 3 {
		t.Fatalf("ActiveEdges = %d, want 3 (one real activation)", st.ActiveEdges)
	}
	if m := h.Metrics(); m.EnvActivations != 1 || m.EnvDeactivations != 0 {
		t.Fatalf("env counters = %d/%d, want 1/0", m.EnvActivations, m.EnvDeactivations)
	}
}

func TestApplyEnvironmentErrors(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3))
	if _, err := h.Apply(nil, nil); err != nil {
		t.Fatalf("empty round: %v", err)
	}
	if _, err := h.ApplyEnvironment([]graph.Edge{edge(1, 1)}, nil); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("self-loop activation: %v", err)
	}
	if _, err := h.ApplyEnvironment(nil, []graph.Edge{edge(2, 2)}); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("self-loop deactivation: %v", err)
	}
	if _, err := h.ApplyEnvironment([]graph.Edge{edge(0, 9)}, nil); err == nil || !strings.Contains(err.Error(), "unknown endpoint") {
		t.Fatalf("unknown endpoint: %v", err)
	}
}

func TestApplyEnvironmentCutRemovesActivatedAlive(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4)) // 0-1-2-3
	st, err := h.Apply([]graph.Edge{edge(0, 2), edge(1, 3)}, nil)
	if err != nil || st.ActivatedAlive != 2 {
		t.Fatalf("setup round: %v %+v", err, st)
	}
	if got := h.ActivatedDegreeAtSlot(0); got != 1 {
		t.Fatalf("ActivatedDegreeAtSlot(0) = %d, want 1", got)
	}
	st, err = h.ApplyEnvironment(nil, []graph.Edge{edge(0, 2)})
	if err != nil {
		t.Fatalf("ApplyEnvironment: %v", err)
	}
	// Cutting an algorithm-activated edge removes it from the
	// activated-alive measure: "activated and still active" stays an
	// invariant.
	if st.ActivatedAlive != 1 {
		t.Fatalf("ActivatedAlive = %d, want 1 after env cut", st.ActivatedAlive)
	}
	if got := h.ActivatedDegreeAtSlot(0); got != 0 {
		t.Fatalf("ActivatedDegreeAtSlot(0) = %d, want 0 after env cut", got)
	}
	alive := h.AppendActivatedAlive(nil)
	if len(alive) != 1 || alive[0] != edge(1, 3) {
		t.Fatalf("AppendActivatedAlive = %v, want [{1 3}]", alive)
	}
	// Cutting an original (never algorithm-activated) edge leaves the
	// measure alone.
	st, err = h.ApplyEnvironment(nil, []graph.Edge{edge(2, 3)})
	if err != nil || st.ActivatedAlive != 1 {
		t.Fatalf("original-edge cut: %v %+v", err, st)
	}
}

func TestAppendLastDeltaEnvLists(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4))
	if _, err := h.Apply([]graph.Edge{edge(0, 2)}, nil); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if _, err := h.ApplyEnvironment([]graph.Edge{edge(1, 3)}, []graph.Edge{edge(2, 3)}); err != nil {
		t.Fatalf("env: %v", err)
	}
	var d RoundDelta
	h.AppendLastDelta(&d)
	if d.Round != 1 {
		t.Fatalf("Round = %d, want 1", d.Round)
	}
	if len(d.Activate) != 2 || len(d.EnvActivate) != 2 || len(d.EnvDeactivate) != 2 {
		t.Fatalf("delta lists: %+v", d)
	}
	// A no-edit round must export empty env lists (round-aligned).
	if _, err := h.Apply(nil, nil); err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if _, err := h.ApplyEnvironment(nil, nil); err != nil {
		t.Fatalf("empty env: %v", err)
	}
	h.AppendLastDelta(&d)
	if d.Round != 2 || len(d.EnvActivate) != 0 || len(d.EnvDeactivate) != 0 {
		t.Fatalf("empty-round delta: %+v", d)
	}
}

func TestTraceEnvRound(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4))
	h.EnableTrace()
	if _, err := h.Apply(nil, nil); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if _, err := h.ApplyEnvironment(nil, []graph.Edge{edge(1, 2)}); err != nil {
		t.Fatalf("env 1: %v", err)
	}
	if _, err := h.Apply(nil, nil); err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if _, err := h.ApplyEnvironment([]graph.Edge{edge(1, 2)}, nil); err != nil {
		t.Fatalf("env 2: %v", err)
	}
	act, deact, ok := h.TraceEnvRound(1)
	if !ok || len(act) != 0 || len(deact) != 1 || deact[0] != edge(1, 2) {
		t.Fatalf("TraceEnvRound(1) = %v %v %v", act, deact, ok)
	}
	act, deact, ok = h.TraceEnvRound(2)
	if !ok || len(act) != 1 || act[0] != edge(1, 2) || len(deact) != 0 {
		t.Fatalf("TraceEnvRound(2) = %v %v %v", act, deact, ok)
	}
	if _, _, ok := h.TraceEnvRound(3); ok {
		t.Fatalf("TraceEnvRound(3) should report !ok")
	}
}

func TestLenientActivationRelaxesDistance2(t *testing.T) {
	t.Parallel()
	// Strict mode: distance-3 activation is a violation (covered
	// elsewhere). Lenient mode voids it instead — the round commits
	// with the bad intent dropped.
	h := NewHistory(graph.Line(4))
	h.SetLenientActivation(true)
	st, err := h.Apply([]graph.Edge{edge(0, 3)}, nil)
	if err != nil {
		t.Fatalf("lenient distance-3: %v", err)
	}
	if st.Activated != 0 || h.Active(0, 3) {
		t.Fatalf("lenient distance-3 should be voided, not committed: %+v", st)
	}
	// Self-loops stay violations even in lenient mode.
	if _, err := h.Apply([]graph.Edge{edge(2, 2)}, nil); err == nil {
		t.Fatalf("lenient self-loop accepted")
	}
}
