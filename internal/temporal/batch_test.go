package temporal

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"adnet/internal/graph"
)

// goroutinePar runs fn(0) … fn(n-1) on real goroutines, the way the
// engine's worker pool drives ApplyBatches.
func goroutinePar(n int, fn func(k int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			fn(k)
		}(i)
	}
	wg.Wait()
}

// splitIntents cuts a global intent list into k batches at random
// boundaries, preserving order (batch concatenation == caller order).
func splitIntents(rng *rand.Rand, act, deact []graph.Edge, k int) []IntentBatch {
	batches := make([]IntentBatch, k)
	cutsA := randomCuts(rng, len(act), k)
	cutsD := randomCuts(rng, len(deact), k)
	for i := 0; i < k; i++ {
		batches[i].Activate = act[cutsA[i]:cutsA[i+1]]
		batches[i].Deactivate = deact[cutsD[i]:cutsD[i+1]]
	}
	return batches
}

func randomCuts(rng *rand.Rand, n, k int) []int {
	cuts := make([]int, k+1)
	for i := 1; i < k; i++ {
		cuts[i] = rng.Intn(n + 1)
	}
	cuts[k] = n
	inner := cuts[1:k]
	for i := range inner {
		for j := i; j > 0 && inner[j] < inner[j-1]; j-- {
			inner[j], inner[j-1] = inner[j-1], inner[j]
		}
	}
	return cuts
}

// TestApplyBatchesMatchesSequential drives a sequential Apply history
// and two ApplyBatches histories (k batches validated on real
// goroutines, and the k=1 fast path) through identical randomized
// rounds — including rounds with duplicate intents, disagreements and
// model violations — asserting identical stats, errors, metrics and
// byte-identical traces.
func TestApplyBatchesMatchesSequential(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		n := rng.Intn(24) + 8
		gs := graph.Line(n)
		seq := NewHistory(gs)
		par := NewHistory(gs)
		one := NewHistory(gs)
		seq.EnableTrace()
		par.EnableTrace()
		one.EnableTrace()
		k := rng.Intn(6) + 2
		for round := 0; round < 40; round++ {
			act, deact := randomRoundIntents(rng, seq)
			batches := splitIntents(rng, act, deact, k)
			wantStats, wantErr := seq.Apply(act, deact)
			gotStats, gotErr := par.ApplyBatches(batches, goroutinePar)
			oneStats, oneErr := one.ApplyBatches([]IntentBatch{{Activate: act, Deactivate: deact}}, nil)
			if (wantErr == nil) != (gotErr == nil) || (wantErr == nil) != (oneErr == nil) {
				t.Fatalf("seed %d round %d: err mismatch: seq=%v par=%v one=%v", seed, round, wantErr, gotErr, oneErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() || wantErr.Error() != oneErr.Error() {
					t.Fatalf("seed %d round %d: violation mismatch:\nseq: %v\npar: %v\none: %v",
						seed, round, wantErr, gotErr, oneErr)
				}
				continue
			}
			if wantStats != gotStats || wantStats != oneStats {
				t.Fatalf("seed %d round %d: stats mismatch: seq=%+v par=%+v one=%+v",
					seed, round, wantStats, gotStats, oneStats)
			}
		}
		if sm, pm, om := seq.Metrics(), par.Metrics(), one.Metrics(); sm != pm || sm != om {
			t.Fatalf("seed %d: metrics diverge: seq=%+v par=%+v one=%+v", seed, sm, pm, om)
		}
		for i := 1; i < seq.Round(); i++ {
			sa, sd, ok := seq.TraceRound(i)
			if !ok {
				continue
			}
			pa, pd, _ := par.TraceRound(i)
			oa, od, _ := one.TraceRound(i)
			if !reflect.DeepEqual(sa, pa) || !reflect.DeepEqual(sd, pd) {
				t.Fatalf("seed %d round %d: trace diverges (parallel): %v/%v vs %v/%v", seed, i, sa, sd, pa, pd)
			}
			if !reflect.DeepEqual(sa, oa) || !reflect.DeepEqual(sd, od) {
				t.Fatalf("seed %d round %d: trace diverges (k=1): %v/%v vs %v/%v", seed, i, sa, sd, oa, od)
			}
		}
	}
}

// randomRoundIntents builds one round of intents from h's snapshot:
// mostly legal distance-2 activations and active-edge deactivations,
// with duplicates and occasional disagreements, plus (in ~1/8 of
// rounds) a deliberate violation to exercise error parity.
func randomRoundIntents(rng *rand.Rand, h *History) (act, deact []graph.Edge) {
	var ids []graph.ID
	ids = h.AppendNodeIDs(ids)
	for i, tries := 0, rng.Intn(8); i < tries; i++ {
		u := ids[rng.Intn(len(ids))]
		cands := h.PotentialNeighbors(u)
		if len(cands) == 0 {
			continue
		}
		w := cands[rng.Intn(len(cands))]
		act = append(act, graph.NewEdge(u, w))
		if rng.Intn(4) == 0 {
			act = append(act, graph.NewEdge(w, u)) // duplicate from the other endpoint
		}
		if rng.Intn(5) == 0 {
			deact = append(deact, graph.NewEdge(u, w)) // disagreement
		}
	}
	edges := h.CurrentClone().Edges()
	for i, tries := 0, rng.Intn(4); i < tries && len(edges) > 0; i++ {
		deact = append(deact, edges[rng.Intn(len(edges))])
	}
	if rng.Intn(8) == 0 {
		// A violation: self-loop or a distant pair.
		u := ids[rng.Intn(len(ids))]
		if rng.Intn(2) == 0 {
			act = append(act, graph.Edge{A: u, B: u})
		} else {
			// The line's endpoints are at distance n-1 > 2 for n >= 8
			// unless earlier rounds shortened it; only inject when
			// it is actually illegal right now.
			a, b := ids[0], ids[len(ids)-1]
			if !h.Active(a, b) && !h.CurrentClone().HaveCommonNeighbor(a, b) {
				act = append(act, graph.NewEdge(a, b))
			}
		}
	}
	return act, deact
}
