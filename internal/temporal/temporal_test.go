package temporal

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"adnet/internal/graph"
)

func edge(u, v graph.ID) graph.Edge { return graph.NewEdge(u, v) }

func TestApplyDistance2Rule(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4)) // 0-1-2-3

	// 0 and 2 share neighbor 1: legal.
	stats, err := h.Apply([]graph.Edge{edge(0, 2)}, nil)
	if err != nil {
		t.Fatalf("legal activation rejected: %v", err)
	}
	if stats.Activated != 1 || !h.Active(0, 2) {
		t.Fatalf("edge {0,2} not activated: %+v", stats)
	}

	// 0 and 3 are now at distance 2 via 2: legal in the next round.
	if _, err := h.Apply([]graph.Edge{edge(0, 3)}, nil); err != nil {
		t.Fatalf("second-round activation rejected: %v", err)
	}
}

func TestApplyRejectsDistance3(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4))
	_, err := h.Apply([]graph.Edge{edge(0, 3)}, nil)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("distance-3 activation accepted, err=%v", err)
	}
	if v.Round != 1 || v.Op != "activate" {
		t.Fatalf("violation fields wrong: %+v", v)
	}
}

func TestApplyRejectsSelfLoop(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3))
	if _, err := h.Apply([]graph.Edge{edge(1, 1)}, nil); err == nil {
		t.Fatalf("self-loop accepted")
	}
}

func TestApplyNoOps(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3))
	// Activating an active (original) edge is a no-op, not an error.
	stats, err := h.Apply([]graph.Edge{edge(0, 1)}, nil)
	if err != nil || stats.Activated != 0 {
		t.Fatalf("activation of active edge should be a silent no-op: %v %+v", err, stats)
	}
	// Deactivating an inactive edge is a no-op.
	stats, err = h.Apply(nil, []graph.Edge{edge(0, 2)})
	if err != nil || stats.Deactivated != 0 {
		t.Fatalf("deactivation of inactive edge should be a no-op: %v %+v", err, stats)
	}
	if got := h.Metrics().TotalActivations; got != 0 {
		t.Fatalf("no-ops counted as activations: %d", got)
	}
}

func TestApplyDuplicateIntentsCoalesce(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3))
	// Both endpoints request the same activation: one edge results.
	stats, err := h.Apply([]graph.Edge{edge(0, 2), edge(2, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Activated != 1 {
		t.Fatalf("duplicate activation counted twice: %+v", stats)
	}
	if h.Metrics().TotalActivations != 1 {
		t.Fatalf("total activations = %d, want 1", h.Metrics().TotalActivations)
	}
}

func TestApplyConflictingIntentsCancel(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3))
	// Simultaneous activate+deactivate of the same (inactive) edge: the
	// endpoints disagree, so nothing happens to the edge.
	stats, err := h.Apply([]graph.Edge{edge(0, 2)}, []graph.Edge{edge(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Activated != 0 || stats.Deactivated != 0 || h.Active(0, 2) {
		t.Fatalf("conflicting intents should cancel: %+v active=%v", stats, h.Active(0, 2))
	}
}

func TestDeactivation(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3))
	if _, err := h.Apply([]graph.Edge{edge(0, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	stats, err := h.Apply(nil, []graph.Edge{edge(0, 2)})
	if err != nil || stats.Deactivated != 1 {
		t.Fatalf("deactivation failed: %v %+v", err, stats)
	}
	if h.Active(0, 2) {
		t.Fatalf("edge still active")
	}
	m := h.Metrics()
	if m.TotalActivations != 1 || m.TotalDeactivations != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.FinalActivatedAlive != 0 {
		t.Fatalf("activated-alive should be back to 0: %+v", m)
	}
}

func TestMetricsAccounting(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(5)) // 0-1-2-3-4
	// Round 1: two chords.
	if _, err := h.Apply([]graph.Edge{edge(0, 2), edge(2, 4)}, nil); err != nil {
		t.Fatal(err)
	}
	// Round 2: one more chord via {0,2},{2,4}; drop {0,2}.
	if _, err := h.Apply([]graph.Edge{edge(0, 4)}, []graph.Edge{edge(0, 2)}); err != nil {
		t.Fatal(err)
	}
	m := h.Metrics()
	if m.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", m.Rounds)
	}
	if m.TotalActivations != 3 {
		t.Errorf("total activations = %d, want 3", m.TotalActivations)
	}
	if m.MaxActivatedEdges != 2 {
		t.Errorf("max activated edges = %d, want 2", m.MaxActivatedEdges)
	}
	// Node 2 held chords {0,2} and {2,4} simultaneously after round 1.
	if m.MaxActivatedDegree != 2 {
		t.Errorf("max activated degree = %d, want 2", m.MaxActivatedDegree)
	}
	if m.FinalActivatedAlive != 2 { // {2,4} and {0,4}
		t.Errorf("final activated alive = %d, want 2", m.FinalActivatedAlive)
	}
}

func TestOriginalEdgesExcludedFromActivatedMeasures(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Ring(4))
	// Deactivate an original edge, then re-activate it next round
	// (0 and 1 share neighbor? after removing {0,1}: 0-3-2-1, common
	// neighbor of 0 and 1 is none at distance... 0's neighbors {3},
	// 1's neighbors {2}; so re-activate via two rounds).
	if _, err := h.Apply(nil, []graph.Edge{edge(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Apply([]graph.Edge{edge(0, 2)}, nil); err != nil { // via 3
		t.Fatal(err)
	}
	if _, err := h.Apply([]graph.Edge{edge(0, 1)}, nil); err != nil { // via 2
		t.Fatal(err)
	}
	m := h.Metrics()
	// Re-activation of an original edge counts toward total activations
	// but never toward the activated-subgraph measures.
	if m.TotalActivations != 2 {
		t.Errorf("total activations = %d, want 2", m.TotalActivations)
	}
	if m.MaxActivatedEdges != 1 { // only {0,2}
		t.Errorf("max activated edges = %d, want 1", m.MaxActivatedEdges)
	}
	act := h.ActivatedSubgraph()
	if act.NumEdges() != 1 || !act.HasEdge(0, 2) {
		t.Errorf("activated subgraph wrong: %v", act.Edges())
	}
}

func TestPotentialNeighbors(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(5))
	got := h.PotentialNeighbors(2)
	want := []graph.ID{0, 4}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("N2(2) = %v, want %v", got, want)
	}
	if n2 := h.PotentialNeighbors(0); len(n2) != 1 || n2[0] != 2 {
		t.Fatalf("N2(0) = %v, want [2]", n2)
	}
}

func TestTrace(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(3))
	h.EnableTrace()
	if _, err := h.Apply([]graph.Edge{edge(0, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	act, deact, ok := h.TraceRound(1)
	if !ok || len(act) != 1 || len(deact) != 0 || act[0] != edge(0, 2) {
		t.Fatalf("trace round 1: %v %v %v", act, deact, ok)
	}
	if _, _, ok := h.TraceRound(2); ok {
		t.Fatalf("trace of unplayed round should fail")
	}
}

func TestPerRoundStats(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4))
	if _, err := h.Apply([]graph.Edge{edge(0, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Apply(nil, nil); err != nil {
		t.Fatal(err)
	}
	pr := h.PerRound()
	if len(pr) != 2 {
		t.Fatalf("per-round records = %d, want 2", len(pr))
	}
	if pr[0].Activated != 1 || pr[1].Activated != 0 {
		t.Fatalf("per-round stats wrong: %+v", pr)
	}
	if pr[1].ActiveEdges != 4 { // 3 original + 1 chord
		t.Fatalf("active edges = %d, want 4", pr[1].ActiveEdges)
	}
}

func TestHistoryDoesNotAliasInput(t *testing.T) {
	t.Parallel()
	gs := graph.Line(3)
	h := NewHistory(gs)
	gs.RemoveEdge(0, 1)
	if !h.Active(0, 1) {
		t.Fatalf("History aliases the caller's graph")
	}
	c := h.CurrentClone()
	c.RemoveEdge(1, 2)
	if !h.Active(1, 2) {
		t.Fatalf("CurrentClone aliases internal state")
	}
}

// Property: the clique-formation process (activate all of N2 every
// round) maintains the invariant that every activation is legal, ends
// at the complete graph in ⌈log2(n-1)⌉ rounds on a line, and the metric
// ledger matches a recomputation from scratch.
func TestCliquePropertyOnLines(t *testing.T) {
	t.Parallel()
	f := func(rawN uint8) bool {
		n := int(rawN)%40 + 2
		h := NewHistory(graph.Line(n))
		recount := 0
		for r := 0; r < 5*n; r++ {
			var acts []graph.Edge
			for _, u := range h.CurrentClone().Nodes() {
				for _, w := range h.PotentialNeighbors(u) {
					acts = append(acts, graph.NewEdge(u, w))
				}
			}
			if len(acts) == 0 {
				break
			}
			stats, err := h.Apply(acts, nil)
			if err != nil {
				return false
			}
			recount += stats.Activated
		}
		m := h.Metrics()
		wantEdges := n * (n - 1) / 2
		return m.FinalActiveEdges == wantEdges &&
			m.TotalActivations == recount &&
			m.TotalActivations == wantEdges-(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: random legal mutation sequences keep the ledger's
// activated-alive set equal to E(i) \ E(1) recomputed from scratch.
func TestLedgerMatchesRecomputation(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gs := graph.RandomConnected(20, 10, rng)
		h := NewHistory(gs)
		for r := 0; r < 30; r++ {
			var acts, deacts []graph.Edge
			cur := h.CurrentClone()
			for _, u := range cur.Nodes() {
				if n2 := h.PotentialNeighbors(u); len(n2) > 0 && rng.Intn(3) == 0 {
					acts = append(acts, graph.NewEdge(u, n2[rng.Intn(len(n2))]))
				}
			}
			for _, e := range cur.Edges() {
				if !h.IsOriginal(e.A, e.B) && rng.Intn(4) == 0 {
					deacts = append(deacts, e)
				}
			}
			if _, err := h.Apply(acts, deacts); err != nil {
				return false
			}
		}
		// Recompute E(i) \ E(1) from snapshots.
		cur, init := h.CurrentClone(), h.InitialClone()
		alive := 0
		maxDeg := 0
		degs := map[graph.ID]int{}
		for _, e := range cur.Edges() {
			if !init.HasEdge(e.A, e.B) {
				alive++
				degs[e.A]++
				degs[e.B]++
			}
		}
		for _, d := range degs {
			if d > maxDeg {
				maxDeg = d
			}
		}
		m := h.Metrics()
		act := h.ActivatedSubgraph()
		return m.FinalActivatedAlive == alive &&
			act.NumEdges() == alive &&
			act.MaxDegree() == maxDeg &&
			m.MaxActivatedDegree >= maxDeg &&
			m.MaxActivatedEdges >= alive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func pairsEqual(got []int32, want ...int32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestDeltaExport(t *testing.T) {
	t.Parallel()
	h := NewHistory(graph.Line(4)) // 0-1-2-3; slots equal IDs

	var d RoundDelta
	h.AppendLastDelta(&d)
	if d.Round != 0 || len(d.Activate) != 0 || len(d.Deactivate) != 0 {
		t.Fatalf("pre-round delta = %+v, want empty round 0", d)
	}
	if init := h.AppendInitialEdges(nil); !pairsEqual(init, 0, 1, 1, 2, 2, 3) {
		t.Fatalf("initial edges = %v", init)
	}

	if _, err := h.Apply([]graph.Edge{edge(0, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	h.AppendLastDelta(&d)
	if d.Round != 1 || !pairsEqual(d.Activate, 0, 2) || len(d.Deactivate) != 0 {
		t.Fatalf("round-1 delta = %+v", d)
	}

	// A mixed round: activate {1,3}, deactivate the activated {0,2}.
	if _, err := h.Apply([]graph.Edge{edge(1, 3)}, []graph.Edge{edge(0, 2)}); err != nil {
		t.Fatal(err)
	}
	h.AppendLastDelta(&d)
	if d.Round != 2 || !pairsEqual(d.Activate, 1, 3) || !pairsEqual(d.Deactivate, 0, 2) {
		t.Fatalf("round-2 delta = %+v", d)
	}

	// No-op intents commit nothing and must export an empty delta.
	if _, err := h.Apply([]graph.Edge{edge(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	h.AppendLastDelta(&d)
	if d.Round != 3 || len(d.Activate) != 0 || len(d.Deactivate) != 0 {
		t.Fatalf("no-op round delta = %+v", d)
	}

	// Reset clears the last-round scratch.
	h.Reset(graph.Line(3))
	h.AppendLastDelta(&d)
	if d.Round != 0 || len(d.Activate) != 0 || len(d.Deactivate) != 0 {
		t.Fatalf("post-reset delta = %+v", d)
	}
}
